// Retention: the §4.3 storage-limitation story in miniature. The same
// expiring dataset is run under the three expiry strategies — Redis's lazy
// probabilistic sampling, the paper's fast full scan, and this
// repository's expiry-heap extension — on a virtual clock, showing how
// long expired personal data lingers under each. Run with:
//
//	go run ./examples/retention
package main

import (
	"fmt"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

func main() {
	const (
		totalKeys = 20000
		shortTTL  = 5 * time.Minute
		longTTL   = 5 * 24 * time.Hour
	)

	fmt.Printf("dataset: %d keys, 20%% expire at %v, 80%% at %v\n\n",
		totalKeys, shortTTL, longTTL)
	fmt.Printf("%-22s %14s %16s %12s\n", "strategy", "cycles to clear", "simulated delay", "work (keys)")

	for _, strat := range []store.ExpiryStrategy{
		store.ExpiryLazyProbabilistic,
		store.ExpiryFastScan,
		store.ExpiryHeap,
	} {
		cycles, sampled := runStrategy(strat, totalKeys, shortTTL, longTTL)
		fmt.Printf("%-22s %15d %16v %12d\n",
			strat, cycles, time.Duration(cycles)*store.ActiveExpireCyclePeriod, sampled)
	}

	fmt.Println("\nThe lazy strategy is Redis's: once every 100ms it samples 20 random")
	fmt.Println("keys from the expire set and only repeats immediately if ≥5 were dead.")
	fmt.Println("With 20% of a large keyspace expired, dead keys survive for hours —")
	fmt.Println("the paper measured ~3h at 128k keys (Figure 2). The paper's fix scans")
	fmt.Println("the whole expire set each cycle; our heap variant gets the same")
	fmt.Println("timeliness touching only the keys that are actually due.")
}

// runStrategy returns how many 100ms cycles clearing the expired keys took
// and how many keys the strategy examined in total.
func runStrategy(strat store.ExpiryStrategy, n int, shortTTL, longTTL time.Duration) (cycles int, sampled int) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	db := store.New(store.Options{Clock: vc, Seed: 7, Strategy: strat})
	due := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%08d", i)
		if i%5 == 0 {
			db.SetEX(key, []byte("profile"), shortTTL)
			due++
		} else {
			db.SetEX(key, []byte("profile"), longTTL)
		}
	}
	vc.Advance(shortTTL)
	exp := store.NewExpirer(db)
	for db.ExpiredCount() < uint64(due) {
		st := exp.Step()
		sampled += st.Sampled
		cycles++
		if cycles > 10_000_000 {
			panic("expiry never completed")
		}
	}
	return cycles, sampled
}
