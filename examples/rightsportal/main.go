// Rightsportal: the data-subject rights workflow a controller must expose
// under GDPR, end to end — access (Art. 15), portability between two
// controllers (Art. 20), objection (Art. 21), and erasure with
// crypto-shredding and log compaction (Art. 17). Run with:
//
//	go run ./examples/rightsportal
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/cryptoutil"
)

func main() {
	dir, err := os.MkdirTemp("", "rightsportal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Controller A: persistent, envelope-encrypted per-subject keys.
	master, err := cryptoutil.RandomKey()
	if err != nil {
		log.Fatal(err)
	}
	cfgA := core.Strict("")
	cfgA.AOFPath = filepath.Join(dir, "controllerA.aof")
	cfgA.Envelope = true
	cfgA.MasterKey = master
	cfgA.DefaultTTL = 365 * 24 * time.Hour
	ctrlA, err := core.Open(cfgA)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrlA.Close()

	// Controller B: the competitor Bob ports his data to.
	cfgB := core.EventualFull("")
	cfgB.DefaultTTL = 365 * 24 * time.Hour
	ctrlB, err := core.Open(cfgB)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrlB.Close()

	for _, st := range []*core.Store{ctrlA, ctrlB} {
		st.ACL().AddPrincipal(acl.Principal{ID: "svc", Role: acl.RoleController})
		st.ACL().AddPrincipal(acl.Principal{ID: "bob", Role: acl.RoleSubject})
	}
	svc := core.Ctx{Actor: "svc", Purpose: "account"}
	bob := core.Ctx{Actor: "bob"}

	// Controller A accumulates Bob's data.
	mustPut(ctrlA, svc, "bob:email", "bob@example.eu", "account", "marketing")
	mustPut(ctrlA, svc, "bob:playlist", "symphony no. 9", "recommendations")
	mustPut(ctrlA, svc, "bob:payment", "iban FR76...", "billing")

	// --- Art. 15: right of access ---
	rep, err := ctrlA.Access(bob, "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Art.15 access: %d records, purposes %v, retention until %s\n",
		rep.RecordCount, rep.Purposes, rep.LatestExpiry.Format("2006-01-02"))

	// --- Art. 21: Bob objects to marketing ---
	if err := ctrlA.Object(bob, "bob", "marketing"); err != nil {
		log.Fatal(err)
	}
	_, err = ctrlA.Get(core.Ctx{Actor: "svc", Purpose: "marketing"}, "bob:email")
	fmt.Printf("Art.21 objection enforced: marketing read -> %v\n", err)

	// --- Art. 20: portability from A to B ---
	payload, err := ctrlA.Export(bob, "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Art.20 export: %d bytes of machine-readable JSON\n", len(payload))
	n, err := ctrlB.ImportExport(core.Ctx{Actor: "svc", Purpose: "migration"}, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Art.20 import at controller B: %d records\n", n)
	v, err := ctrlB.Get(core.Ctx{Actor: "svc", Purpose: "recommendations"}, "bob:playlist")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller B serves ported data: %s\n", v)

	// --- Art. 17: right to be forgotten at controller A ---
	// Real-time timing: the deletion also compacts the AOF, and envelope
	// encryption crypto-shreds Bob's data key.
	erased, err := ctrlA.Forget(bob, "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Art.17 erased %d records at controller A\n", erased)

	raw, err := os.ReadFile(cfgA.AOFPath)
	if err != nil {
		log.Fatal(err)
	}
	if bytes.Contains(raw, []byte("bob@example.eu")) {
		log.Fatal("BUG: erased data still present in the log")
	}
	fmt.Println("Art.17 verified: no trace of bob's plaintext in the persistent log")
}

func mustPut(st *core.Store, ctx core.Ctx, key, val string, purposes ...string) {
	err := st.Put(ctx, key, []byte(val), core.PutOptions{
		Owner:    "bob",
		Purposes: purposes,
		Origin:   "signup",
	})
	if err != nil {
		log.Fatalf("put %s: %v", key, err)
	}
}
