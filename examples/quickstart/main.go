// Quickstart: open a GDPR-compliant store, write personal data with
// consent metadata, read it under a purpose, and exercise the basic
// subject rights. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
)

func main() {
	// Strict("") is full + real-time compliance with an in-memory audit
	// trail — the most protective (and most expensive) corner of the
	// paper's compliance spectrum.
	cfg := core.Strict("")
	cfg.DefaultTTL = 30 * 24 * time.Hour // Art. 5: no indefinite retention
	st, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Register who may do what (Art. 25: default deny).
	st.ACL().AddPrincipal(acl.Principal{ID: "shop-backend", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})

	backend := core.Ctx{Actor: "shop-backend", Purpose: "order-fulfilment"}

	// Write personal data WITH its GDPR metadata: owner, consented
	// purposes, origin, recipients, retention.
	err = st.Put(backend, "user:alice:address", []byte("1 Rue de Rivoli, Paris"), core.PutOptions{
		Owner:      "alice",
		Purposes:   []string{"order-fulfilment", "billing"},
		Origin:     "checkout-form",
		SharedWith: []string{"parcel-carrier"},
		TTL:        90 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reads must state their purpose; the store enforces purpose
	// limitation (Art. 5) and objections (Art. 21).
	addr, err := st.Get(backend, "user:alice:address")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fulfilment read: %s\n", addr)

	// A read for an un-consented purpose is refused.
	_, err = st.Get(core.Ctx{Actor: "shop-backend", Purpose: "marketing"}, "user:alice:address")
	fmt.Printf("marketing read: %v\n", err)

	// Alice exercises her right of access (Art. 15)...
	report, err := st.Access(core.Ctx{Actor: "alice"}, "alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("access report: %d record(s), purposes=%v, recipients=%v\n",
		report.RecordCount, report.Purposes, report.Recipients)

	// ...and her right to be forgotten (Art. 17).
	n, err := st.Forget(core.Ctx{Actor: "alice"}, "alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forgotten: %d record(s) erased\n", n)

	if _, err := st.Get(backend, "user:alice:address"); err != nil {
		fmt.Printf("post-erasure read: %v\n", err)
	}

	// Everything above — including the denial — is in the audit trail
	// (Art. 30).
	fmt.Printf("audit trail length: %d records\n", st.Trail().Seq())
}
