// Breachaudit: the Articles 30/33/34 monitoring workflow. A controller
// runs normal traffic, an attacker probes the store, and the regulator
// reconstructs the 72-hour breach notification from the audit trail —
// who was affected, by whom, through which operations. Run with:
//
//	go run ./examples/breachaudit
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "breachaudit")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Durable, encrypted audit trail: the evidence itself is personal
	// data and must be protected (Art. 32).
	cfg := core.Strict(filepath.Join(dir, "audit.log"))
	cfg.DefaultTTL = 30 * 24 * time.Hour
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	cfg.AtRestKey = key
	st, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	st.ACL().AddPrincipal(acl.Principal{ID: "api", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "dpa", Role: acl.RoleRegulator})
	st.ACL().AddPrincipal(acl.Principal{ID: "compromised-svc", Role: acl.RoleProcessor})
	st.ACL().AddGrant(acl.Grant{Principal: "compromised-svc", Purpose: "telemetry"})

	api := core.Ctx{Actor: "api", Purpose: "account"}
	for _, user := range []string{"alice", "bob", "carol", "dave"} {
		err := st.Put(api, "pd:"+user, []byte(user+"'s profile"), core.PutOptions{
			Owner: user, Purposes: []string{"account", "telemetry"},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Normal traffic.
	st.Get(api, "pd:alice")
	st.Get(api, "pd:bob")

	// The incident: a compromised processor sweeps the store under its
	// telemetry grant and probes beyond it.
	breachStart := time.Now()
	attacker := core.Ctx{Actor: "compromised-svc", Purpose: "telemetry"}
	for _, user := range []string{"alice", "bob", "carol", "dave"} {
		st.Get(attacker, "pd:"+user)
	}
	// Attempts outside the grant are denied — and recorded.
	st.Get(core.Ctx{Actor: "compromised-svc", Purpose: "account"}, "pd:alice")
	st.Forget(core.Ctx{Actor: "compromised-svc"}, "alice")
	breachEnd := time.Now().Add(time.Second)

	// The regulator (or the controller's DPO) reconstructs the incident.
	dpa := core.Ctx{Actor: "dpa"}
	rep, err := st.Breach(dpa, breachStart, breachEnd)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Breach report %s – %s\n", rep.From.Format(time.TimeOnly), rep.To.Format(time.TimeOnly))
	fmt.Printf("  operations in window: %d (denied: %d)\n", rep.Records, rep.Denied)
	fmt.Printf("  affected data subjects (Art. 34 notification list):\n")
	owners := make([]string, 0, len(rep.AffectedOwners))
	for o := range rep.AffectedOwners {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		fmt.Printf("    %-8s %d touch(es)\n", o, rep.AffectedOwners[o])
	}
	fmt.Printf("  actors: %v\n", rep.Actors)

	// Drill into exactly what the compromised service did.
	trail, err := st.Trail().Query(audit.Filter{Actor: "compromised-svc"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  compromised-svc activity:")
	for _, r := range trail {
		fmt.Printf("    seq=%-3d %-10s key=%-10s owner=%-8s outcome=%s\n",
			r.Seq, r.Op, r.Key, r.Owner, r.Outcome)
	}
}
