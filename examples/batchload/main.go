// Example batchload contrasts the per-operation compliance cost the paper
// measures with the amortised batch command family: it loads the same
// records through sequential GPUTs and through GMPUT batches over the
// public SDK, then reads them back with GMGET, printing the throughput of
// each path.
//
// Run with:
//
//	go run ./examples/batchload
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/pkg/gdprkv"
)

const (
	records   = 2048
	batchSize = 64
)

func main() {
	st, err := core.Open(core.Strict(""))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "importer", Role: acl.RoleController})

	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// The AUTH/PURPOSE handshake is a construction-time option: every
	// pooled connection speaks as the importer under the migration
	// purpose.
	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithActor("importer"),
		gdprkv.WithPurpose("migration"),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	meta := gdprkv.PutOptions{Owner: "subject42", Purposes: []string{"migration"}, TTL: time.Hour}

	// Sequential: one GPUT per record, each paying the full compliance
	// round trip (ACL decision, metadata write, AOF append, audit record).
	t0 := time.Now()
	for i := 0; i < records; i++ {
		if err := c.GPut(ctx, fmt.Sprintf("seq:%04d", i), []byte("payload"), meta); err != nil {
			log.Fatal(err)
		}
	}
	seq := time.Since(t0)

	// Batched: GMPUT groups batchSize records per command; the server takes
	// its lock once, appends to the AOF once and audits once per batch.
	keys := make([]string, batchSize)
	vals := make([][]byte, batchSize)
	t0 = time.Now()
	for base := 0; base < records; base += batchSize {
		for i := range keys {
			keys[i] = fmt.Sprintf("bat:%04d", base+i)
			vals[i] = []byte("payload")
		}
		if err := c.GMPut(ctx, keys, vals, meta); err != nil {
			log.Fatal(err)
		}
	}
	bat := time.Since(t0)

	// Read a batch back to show the positional result shape.
	got, err := c.GMGet(ctx, keys...)
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for _, g := range got {
		if g.Err == nil {
			ok++
		}
	}

	fmt.Printf("sequential GPUT : %6d records in %8v  (%7.0f op/s)\n",
		records, seq.Round(time.Millisecond), float64(records)/seq.Seconds())
	fmt.Printf("GMPUT batch=%2d  : %6d records in %8v  (%7.0f op/s, %.1fx)\n",
		batchSize, records, bat.Round(time.Millisecond),
		float64(records)/bat.Seconds(), seq.Seconds()/bat.Seconds())
	fmt.Printf("GMGET batch=%2d  : %d/%d readable\n", batchSize, ok, len(got))
}
