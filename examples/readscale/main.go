// Readscale: networked primary/replica replication with GDPR-aware
// erasure propagation. A primary server and a read replica run in-process
// over real TCP: the replica attaches with REPLICAOF (REPLCONF/PSYNC
// handshake, full-sync snapshot, live journal stream), serves reads, and
// rejects writes. FORGETUSER on the primary erases the subject on every
// copy — the Article 17 guarantee extended across machines. Run with:
//
//	go run ./examples/readscale
package main

import (
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"gdprstore/internal/client"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
)

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func main() {
	cfg := core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true}

	primaryStore, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer primaryStore.Close()
	replicaStore, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer replicaStore.Close()

	primary, err := server.Listen("127.0.0.1:0", primaryStore)
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()
	replica, err := server.Listen("127.0.0.1:0", replicaStore)
	if err != nil {
		log.Fatal(err)
	}
	defer replica.Close()
	fmt.Printf("primary  %s\nreplica  %s\n\n", primary.Addr(), replica.Addr())

	pc, err := client.Dial(primary.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	rc, err := client.Dial(replica.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()

	// Write some subjects' records on the primary, then attach the replica:
	// the pre-attach data arrives via the full-sync snapshot, everything
	// afterwards via the live stream.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("user:alice:doc%d", i)
		if err := pc.GPut(key, []byte(fmt.Sprintf("alice-doc-%d", i)),
			client.GDPRPutArgs{Owner: "alice", Purposes: "service"}); err != nil {
			log.Fatal(err)
		}
	}
	host, port, _ := net.SplitHostPort(primary.Addr())
	if err := rc.ReplicaOf(host, port); err != nil {
		log.Fatal(err)
	}
	waitFor("full sync", func() bool {
		v, err := rc.GGet("user:alice:doc2")
		return err == nil && string(v) == "alice-doc-2"
	})
	fmt.Println("full sync: replica serves alice's pre-attach records")

	if err := pc.GPut("user:bob:doc0", []byte("bob-doc"),
		client.GDPRPutArgs{Owner: "bob", Purposes: "service"}); err != nil {
		log.Fatal(err)
	}
	waitFor("live stream", func() bool {
		v, err := rc.GGet("user:bob:doc0")
		return err == nil && string(v) == "bob-doc"
	})
	fmt.Println("live stream: replica sees bob's post-attach write")

	// The replica is read-only: scale reads out, route writes to the
	// primary.
	if err := rc.GPut("user:eve:doc0", []byte("x"),
		client.GDPRPutArgs{Owner: "eve", Purposes: "service"}); err != nil &&
		strings.Contains(err.Error(), "READONLY") {
		fmt.Println("read-only: write on the replica rejected with READONLY")
	} else {
		log.Fatalf("replica accepted a write: %v", err)
	}

	// Article 17 on the primary reaches the replica: keys, metadata, and
	// an audit record evidencing the replicated erasure.
	n, err := pc.ForgetUser("alice")
	if err != nil {
		log.Fatal(err)
	}
	waitFor("erasure propagation", func() bool {
		_, err := rc.GGet("user:alice:doc0")
		return err != nil
	})
	fmt.Printf("erasure: FORGETUSER removed %d records on the primary and converged on the replica\n", n)

	info, err := rc.Info("replication")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreplica INFO replication:")
	for _, line := range strings.Split(strings.TrimSpace(info), "\r\n") {
		fmt.Println("  " + line)
	}
	info, err = pc.Info("replication")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("primary INFO replication:")
	for _, line := range strings.Split(strings.TrimSpace(info), "\r\n") {
		fmt.Println("  " + line)
	}
}
