// Readscale: networked primary/replica replication driven through the
// public SDK. A primary and two read replicas run in-process over real
// TCP; one pkg/gdprkv client pools connections to all three, routes
// writes and rights operations to the primary, and load-balances reads
// across the replicas with primary fallback. FORGETUSER on the primary
// erases the subject on every copy — the Article 17 guarantee extended
// across machines — and per-node INFO counters plus client stats show
// exactly where each command ran. Run with:
//
//	go run ./examples/readscale
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/replica"
	"gdprstore/internal/server"
	"gdprstore/pkg/gdprkv"
)

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func main() {
	ctx := context.Background()
	cfg := core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true}

	// One primary, two replicas, attached over TCP (REPLCONF/PSYNC
	// handshake, full-sync snapshot, live journal stream).
	primaryStore, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer primaryStore.Close()
	primary, err := server.Listen("127.0.0.1:0", primaryStore)
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()

	var replicaAddrs []string
	var replicaSrvs []*server.Server
	for i := 0; i < 2; i++ {
		st, err := core.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		srv, err := server.Listen("127.0.0.1:0", st)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		srv.ReplicaOf(primary.Addr(), replica.NodeOptions{})
		replicaAddrs = append(replicaAddrs, srv.Addr())
		replicaSrvs = append(replicaSrvs, srv)
	}
	fmt.Printf("primary  %s\nreplicas %s\n\n", primary.Addr(), strings.Join(replicaAddrs, " "))
	for _, srv := range replicaSrvs {
		srv := srv
		waitFor("replica link", func() bool {
			n := srv.ReplNode()
			return n != nil && n.Status().Link == replica.LinkUp
		})
	}

	// One client for the whole fleet: pooled, replica-aware, typed errors.
	c, err := gdprkv.Dial(ctx, primary.Addr(),
		gdprkv.WithPoolSize(4),
		gdprkv.WithReplicas(replicaAddrs...),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Writes go to the primary and replicate out.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("user:alice:doc%d", i)
		if err := c.GPut(ctx, key, []byte(fmt.Sprintf("alice-doc-%d", i)),
			gdprkv.PutOptions{Owner: "alice", Purposes: []string{"service"}}); err != nil {
			log.Fatal(err)
		}
	}
	// Per-node inspection clients: convergence checks and the INFO
	// counter printout below must ask each node directly, not the
	// round-robin client (which would only prove one replica caught up).
	nodeClients := make(map[string]*gdprkv.Client, len(replicaAddrs))
	for _, addr := range replicaAddrs {
		nc, err := gdprkv.Dial(ctx, addr, gdprkv.WithPoolSize(1))
		if err != nil {
			log.Fatal(err)
		}
		defer nc.Close()
		nodeClients[addr] = nc
	}
	for _, addr := range replicaAddrs {
		nc := nodeClients[addr]
		waitFor("replication to "+addr, func() bool {
			return nodeDBSize(ctx, nc) >= 3
		})
	}

	// Reads are served by the replicas: spread 12 GGETs and let each
	// node's own INFO commandstats testify where they ran.
	for i := 0; i < 12; i++ {
		if _, err := c.GGet(ctx, fmt.Sprintf("user:alice:doc%d", i%3)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("per-node GGET counts after the reads:")
	fmt.Printf("  primary   %s\n", ggetCalls(ctx, primary.Addr()))
	for i, addr := range replicaAddrs {
		fmt.Printf("  replica%d  %s\n", i, ggetCalls(ctx, addr))
	}
	st := c.Stats()
	fmt.Printf("client stats: primary_reads=%d replica_reads=%d writes=%d\n\n",
		st.PrimaryReads, st.ReplicaReads, st.Writes)

	// Article 17 through the same client: FORGETUSER routes to the
	// primary and converges on every replica.
	n, err := c.ForgetUser(ctx, "alice")
	if err != nil {
		log.Fatal(err)
	}
	for _, addr := range replicaAddrs {
		nc := nodeClients[addr]
		waitFor("erasure propagation to "+addr, func() bool {
			return nodeDBSize(ctx, nc) == 0
		})
	}
	if _, err := c.GGet(ctx, "user:alice:doc0"); !errors.Is(err, gdprkv.ErrNotFound) {
		log.Fatalf("post-erasure read = %v, want ErrNotFound", err)
	}
	fmt.Printf("erasure: FORGETUSER removed %d records on the primary and converged on the replicas\n", n)
	fmt.Println("typed errors: post-erasure read is errors.Is(err, gdprkv.ErrNotFound)")
}

// nodeDBSize reads the node's live key count from INFO gdprstore over an
// already-dialed per-node client (deliberately not a GGET, so the
// per-node cmdstat_gget counters printed above reflect only the routed
// reads; and one client per node, not per poll, so the wait loops don't
// churn connections).
func nodeDBSize(ctx context.Context, c *gdprkv.Client) int {
	info, err := c.Info(ctx, "gdprstore")
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(info, "\r\n") {
		if rest, ok := strings.CutPrefix(line, "dbsize:"); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}

// ggetCalls fetches one node's cmdstat_gget line (or reports none).
func ggetCalls(ctx context.Context, addr string) string {
	c, err := gdprkv.Dial(ctx, addr)
	if err != nil {
		return "unreachable: " + err.Error()
	}
	defer c.Close()
	info, err := c.Info(ctx, "commandstats")
	if err != nil {
		return err.Error()
	}
	for _, line := range strings.Split(info, "\r\n") {
		if strings.HasPrefix(line, "cmdstat_gget:") {
			return line
		}
	}
	return "cmdstat_gget: no calls"
}
