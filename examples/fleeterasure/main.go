// Fleeterasure: Article 17 across a whole deployment. The paper notes the
// right to be forgotten "demands that the requested data be erased in a
// timely manner including all its replicas and backups" — this example
// runs a primary with two replicas, a backup schedule, and a persistent
// log, erases a subject, and verifies no subsystem still holds the data.
// Run with:
//
//	go run ./examples/fleeterasure
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/backup"
	"gdprstore/internal/core"
	"gdprstore/internal/replica"
)

func main() {
	dir, err := os.MkdirTemp("", "fleeterasure")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := core.Strict("") // real-time: erasure propagates synchronously
	cfg.AOFPath = filepath.Join(dir, "primary.aof")
	cfg.DefaultTTL = 365 * 24 * time.Hour
	st, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "app", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "carol", Role: acl.RoleSubject})
	app := core.Ctx{Actor: "app", Purpose: "account"}

	// Replication: two read replicas on the journal stream.
	if _, err := st.EnableReplication(replica.Sync); err != nil {
		log.Fatal(err)
	}
	r1, err := st.AddReplica()
	if err != nil {
		log.Fatal(err)
	}
	r2, err := st.AddReplica()
	if err != nil {
		log.Fatal(err)
	}

	// Backups: nightly generations.
	mgr, err := backup.NewManager(filepath.Join(dir, "backups"), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	st.SetBackupManager(mgr)

	// Accumulate state and a couple of backup generations.
	secret := []byte("carol@example.eu")
	st.Put(app, "pd:carol:email", secret, core.PutOptions{Owner: "carol", Purposes: []string{"account"}})
	st.Put(app, "pd:dave:email", []byte("dave@example.eu"), core.PutOptions{Owner: "dave", Purposes: []string{"account"}})
	st.Backup()
	st.Put(app, "pd:carol:prefs", []byte("dark-mode"), core.PutOptions{Owner: "carol", Purposes: []string{"account"}})
	st.Backup()

	gens, _ := mgr.List()
	fmt.Printf("before erasure: primary=%d keys, replicas=[%d %d] keys, backups=%d generations\n",
		st.Engine().Len(), r1.DB.Len(), r2.DB.Len(), len(gens))

	// Carol invokes Article 17.
	n, err := st.Forget(core.Ctx{Actor: "carol"}, "carol")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Forget(carol): %d records erased\n", n)

	// Verify erasure in every subsystem.
	check := func(name string, present bool) {
		status := "clean"
		if present {
			status = "STILL HOLDS DATA"
		}
		fmt.Printf("  %-18s %s\n", name, status)
		if present {
			os.Exit(1)
		}
	}
	check("primary engine", st.Engine().Exists("pd:carol:email"))
	check("replica 1", r1.DB.Exists("pd:carol:email") || r1.DB.Exists("pd:carol:prefs"))
	check("replica 2", r2.DB.Exists("pd:carol:email") || r2.DB.Exists("pd:carol:prefs"))

	aofRaw, _ := os.ReadFile(cfg.AOFPath)
	check("persistent log", bytes.Contains(aofRaw, secret))

	gens, _ = mgr.List()
	holding := false
	for _, g := range gens {
		raw, _ := os.ReadFile(g)
		if bytes.Contains(raw, secret) {
			holding = true
		}
	}
	fmt.Printf("  backups            %d generation(s) after refresh\n", len(gens))
	check("backup contents", holding)

	// Dave is untouched everywhere.
	if !st.Engine().Exists("pd:dave:email") || !r1.DB.Exists("pd:dave:email") {
		log.Fatal("unrelated subject lost data")
	}
	fmt.Println("Article 17 verified across primary, replicas, log, and backups.")
}
