// Example opstour walks the HTTP ops surface end to end: it starts a
// compliant store with envelope encryption and retention machinery, mounts
// the ops server beside the RESP listener, then manufactures a small
// retention storm and an erasure so the compliance-lag gauges actually
// move. While the backlog drains it polls /metrics and /info the way a
// scrape loop or the embedded dashboard would, printing the
// gdprkv_retention_lag_seconds decay curve — the live view of the
// "timely deletion" obligation the paper argues storage systems must
// surface.
//
// Run with:
//
//	go run ./examples/opstour
//
// While it runs (it lingers ~10s), the dashboard is live at the printed
// ops URL.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/ops"
	"gdprstore/internal/server"
)

const expiringKeys = 60000

func main() {
	cfg := core.EventualFull("")
	cfg.Envelope = true
	cfg.MasterKey = bytes.Repeat([]byte{7}, 32)
	st, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})
	st.ACL().AddPrincipal(acl.Principal{ID: "bob", Role: acl.RoleSubject})

	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	o, err := ops.Listen("127.0.0.1:0", srv)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	base := "http://" + o.Addr()
	fmt.Printf("RESP on %s, ops surface on %s\n\n", srv.Addr(), base)

	// Seed a storm: thousands of bob-owned records sharing one expiry
	// deadline a moment from now, plus a separate subject (alice) whose
	// data we erase to move the erasure gauges too.
	ctl := core.Ctx{Actor: "controller", Purpose: "demo"}
	deadline := time.Now().Add(3 * time.Second)
	for i := 0; i < expiringKeys; i++ {
		key := fmt.Sprintf("session:%05d", i)
		err := st.Put(ctl, key, []byte("ephemeral"), core.PutOptions{
			Owner: "bob", Purposes: []string{"demo"}, ExpireAt: deadline,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("profile:alice:%03d", i)
		err := st.Put(ctl, key, []byte("personal"), core.PutOptions{
			Owner: "alice", Purposes: []string{"demo"}, TTL: time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := st.Forget(core.Ctx{Actor: "alice"}, "alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d records expiring at once and crypto-shredded alice's 100\n\n", expiringKeys)
	st.StartExpirer()
	defer st.StopExpirer()
	st.StartSweeper()
	defer st.StopSweeper()

	// Scrape loop: wait for the shared deadline, then watch the
	// retention-lag gauge spike and drain. This is exactly what a
	// Prometheus scrape sees.
	time.Sleep(time.Until(deadline))
	fmt.Println("scraping /metrics until the retention backlog drains:")
	fmt.Printf("  %-10s %22s %22s\n", "t", "retention_lag_seconds", "overdue_records")
	start := time.Now()
	for {
		m := scrape(base + "/metrics")
		fmt.Printf("  %-10v %22s %22s\n", time.Since(start).Round(10*time.Millisecond),
			m["gdprkv_retention_lag_seconds"], m["gdprkv_retention_overdue_records"])
		if m["gdprkv_retention_overdue_records"] == "0" || time.Since(start) > 15*time.Second {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The same facts, as the JSON the dashboard and gdprbench -ops-addr
	// consume.
	fmt.Println("\n/info/erasure after the shred:")
	resp, err := http.Get(base + "/info/erasure")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(strings.TrimRight(string(body), "\n"))

	fmt.Printf("\ndashboard live at %s for the next 10s\n", base)
	time.Sleep(10 * time.Second)
}

// scrape fetches a Prometheus exposition and returns label-less samples.
func scrape(url string) map[string]string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok && !strings.Contains(name, "{") {
			out[name] = val
		}
	}
	return out
}
