// Clustertour: hash-slot cluster mode end to end. Three primaries run
// in-process over real TCP, each owning a third of the 1024-slot space.
// One cluster-aware pkg/gdprkv client bootstraps the slot map via
// CLUSTER SLOTS and routes every key to its owner; a deliberately
// mis-routed GET is redirected transparently, exactly once. Then the
// GDPR part: a data subject whose records are spread over all three
// nodes is erased with a single FORGETUSER — the coordinator fans the
// erasure out to every primary, each node's audit trail independently
// evidences it, and per-node GETUSERDATA plus INFO commandstats prove
// nothing was left behind. The finale is elasticity: a slot is migrated
// live from n1 to n2 through the CLUSTER SETSLOT/MIGRATESLOT admin
// surface while the client keeps reading — in-flight requests hop via
// one-shot ASK redirects, the finalized map converges with exactly one
// MOVED, and the topology epoch records the change. Run with:
//
//	go run ./examples/clustertour
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"gdprstore/internal/audit"
	"gdprstore/internal/cluster"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/pkg/gdprkv"
)

func main() {
	ctx := context.Background()
	cfg := core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true}

	// --- three primaries, each owning a contiguous third of the slots ---
	const n = 3
	stores := make([]*core.Store, n)
	srvs := make([]*server.Server, n)
	nodes := make([]cluster.Node, n)
	splits := cluster.EvenSplit(n)
	for i := 0; i < n; i++ {
		st, err := core.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		srv, err := server.Listen("127.0.0.1:0", st)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		stores[i], srvs[i] = st, srv
		nodes[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: srv.Addr(), Ranges: splits[i]}
	}
	m, err := cluster.NewMap(nodes)
	if err != nil {
		log.Fatal(err)
	}
	for i, srv := range srvs {
		if err := srv.EnableCluster(server.ClusterConfig{Self: nodes[i].ID, Map: m}); err != nil {
			log.Fatal(err)
		}
	}
	for _, nd := range nodes {
		fmt.Printf("%s %s slots %v\n", nd.ID, nd.Addr, nd.Ranges)
	}

	// --- one cluster client for the whole fleet ---
	c, err := gdprkv.Dial(ctx, nodes[0].Addr, gdprkv.WithCluster(nodes[1].Addr, nodes[2].Addr))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Owner-tagged writes: each owner's records co-locate on the owner's
	// slot, and different owners spread across the fleet.
	owners := []string{ownerOn(m, "n1"), ownerOn(m, "n2"), ownerOn(m, "n3")}
	for _, o := range owners {
		for r := 0; r < 3; r++ {
			key := fmt.Sprintf("pd:{%s}:rec%d", o, r)
			if err := c.GPut(ctx, key, []byte(o+"-data"), gdprkv.PutOptions{
				Owner: o, Purposes: []string{"service"},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nkeys per node after 9 owner-tagged GPUTs (3 owners x 3 records):")
	for i, st := range stores {
		fmt.Printf("  %s dbsize=%d\n", nodes[i].ID, st.Engine().Len())
	}
	fmt.Printf("CLUSTER SLOTS served %d ranges; client followed %d redirects so far\n",
		len(mustSlots(ctx, c)), c.Stats().Redirects)

	// --- a mis-routed GET, redirected exactly once ---
	// Do carries no key knowledge, so the client sends it to its default
	// (bootstrap) node n1. The key below lives on n3: n1 answers
	// "MOVED <slot> <n3-addr>" and the client follows it transparently.
	key3 := fmt.Sprintf("pd:{%s}:rec0", owners[2])
	v, err := c.Do(ctx, "GGET", key3)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("\nmis-routed GGET %s = %q (redirects=%d, slot map refreshes=%d)\n",
		key3, v.Text(), st.Redirects, st.SlotRefreshes)
	if st.Redirects != 1 {
		log.Fatalf("expected exactly one redirect, saw %d", st.Redirects)
	}

	// --- cluster-wide erasure of a subject spread over every node ---
	// These keys are untagged, so they hash individually and land on
	// different nodes: the worst case for the right to be forgotten, and
	// exactly what the fan-out exists for.
	var daveKeys []string
	for _, nid := range []string{"n1", "n2", "n3"} {
		k := keyOn(m, nid, "dave-doc-%d")
		daveKeys = append(daveKeys, k)
		if err := c.GPut(ctx, k, []byte("dave-data"), gdprkv.PutOptions{
			Owner: "dave", Purposes: []string{"service"},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nwrote %d records for dave, one per node: %v\n", len(daveKeys), daveKeys)

	recs, err := c.GetUser(ctx, "dave")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GETUSER dave aggregates %d records across the cluster\n", len(recs))

	erased, err := c.ForgetUser(ctx, "dave")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FORGETUSER dave erased %d records cluster-wide\n\n", erased)

	// Proof, node by node: GETUSERDATA empty, the local erasure counted
	// in commandstats, and an audit record on every node's trail.
	for i, srv := range srvs {
		nc, err := gdprkv.Dial(ctx, srv.Addr(), gdprkv.WithPoolSize(1))
		if err != nil {
			log.Fatal(err)
		}
		gv, err := nc.Do(ctx, "GETUSERDATA", "dave")
		if err != nil || len(gv.Array) != 0 {
			log.Fatalf("node %s still reports %d records (%v)", nodes[i].ID, len(gv.Array), err)
		}
		info, err := nc.Info(ctx, "commandstats")
		if err != nil {
			log.Fatal(err)
		}
		audits, err := stores[i].Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: "dave"})
		if err != nil || len(audits) == 0 {
			log.Fatalf("node %s has no audit evidence of the erasure (%v)", nodes[i].ID, err)
		}
		fmt.Printf("  %s: GETUSERDATA dave -> 0 records, audit records=%d, %s\n",
			nodes[i].ID, len(audits), forgetStats(info))
		nc.Close()
	}
	if _, err := c.GGet(ctx, daveKeys[0]); !errors.Is(err, gdprkv.ErrNotFound) {
		log.Fatalf("post-erasure read = %v, want ErrNotFound", err)
	}
	fmt.Println("\npost-erasure reads are errors.Is(err, gdprkv.ErrNotFound) on every node")

	// --- live slot migration under traffic ---
	// Move the first owner's slot from n1 to n2 while the same cluster
	// client keeps reading. Destination imports, source migrates, the slot
	// streams across, and until the map is finalized every request for the
	// moved keys hops via a one-shot ASK redirect.
	slot := cluster.Slot(owners[0])
	ss := fmt.Sprintf("%d", slot)
	src, err := gdprkv.Dial(ctx, srvs[0].Addr(), gdprkv.WithPoolSize(1))
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	dst, err := gdprkv.Dial(ctx, srvs[1].Addr(), gdprkv.WithPoolSize(1))
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()
	if _, err := dst.Do(ctx, "CLUSTER", "SETSLOT", ss, "IMPORTING", "n1"); err != nil {
		log.Fatal(err)
	}
	if _, err := src.Do(ctx, "CLUSTER", "SETSLOT", ss, "MIGRATING", "n2"); err != nil {
		log.Fatal(err)
	}
	moved, err := src.Do(ctx, "CLUSTER", "MIGRATESLOT", ss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCLUSTER MIGRATESLOT %s streamed %d records n1 -> n2\n", ss, moved.Int)

	// The client's map still names n1, so a read of a migrated key earns
	// exactly one ASK: n1 answers "ASK <slot> <n2-addr>", the client
	// replays the command there one-shot, and the slot map is NOT updated
	// (ASK is per-request; only MOVED rewrites the map).
	hotKey := fmt.Sprintf("pd:{%s}:rec0", owners[0])
	asksBefore := c.Stats().Asks
	if v, err := c.GGet(ctx, hotKey); err != nil || string(v) != owners[0]+"-data" {
		log.Fatalf("GGet during migration = %q, %v", v, err)
	}
	fmt.Printf("mid-migration GGet %s served via ASK (asks=%d -> %d)\n",
		hotKey, asksBefore, c.Stats().Asks)
	if c.Stats().Asks != asksBefore+1 {
		log.Fatalf("expected exactly one ASK, saw %d", c.Stats().Asks-asksBefore)
	}

	// Finalize on every node; the client converges via one ordinary MOVED
	// and the destination's topology epoch records the whole exchange.
	for _, srv := range srvs {
		nc, err := gdprkv.Dial(ctx, srv.Addr(), gdprkv.WithPoolSize(1))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := nc.Do(ctx, "CLUSTER", "SETSLOT", ss, "NODE", "n2"); err != nil {
			log.Fatal(err)
		}
		nc.Close()
	}
	redirBefore := c.Stats().Redirects
	if _, err := c.GGet(ctx, hotKey); err != nil {
		log.Fatal(err)
	}
	if c.Stats().Redirects != redirBefore+1 {
		log.Fatalf("expected exactly one MOVED to converge, saw %d", c.Stats().Redirects-redirBefore)
	}
	top, err := dst.Topology(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finalized: slot %s now owned by n2, one MOVED to converge, topology epoch=%d\n",
		ss, top.Epoch)
}

// ownerOn finds an owner name whose slot the given node owns.
func ownerOn(m *cluster.Map, nodeID string) string {
	for i := 0; ; i++ {
		o := fmt.Sprintf("owner%05d", i)
		if m.NodeForKey(o).ID == nodeID {
			return o
		}
	}
}

// keyOn finds an untagged key (formatted from pattern) the node owns.
func keyOn(m *cluster.Map, nodeID, pattern string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf(pattern, i)
		if m.NodeForKey(k).ID == nodeID {
			return k
		}
	}
}

// mustSlots fetches the CLUSTER SLOTS entries through the client.
func mustSlots(ctx context.Context, c *gdprkv.Client) []string {
	v, err := c.Do(ctx, "CLUSTER", "SLOTS")
	if err != nil {
		log.Fatal(err)
	}
	out := make([]string, len(v.Array))
	for i, e := range v.Array {
		out[i] = fmt.Sprintf("%d-%d", e.Array[0].Int, e.Array[1].Int)
	}
	return out
}

// forgetStats extracts the erasure counters from a commandstats report.
func forgetStats(info string) string {
	var parts []string
	for _, line := range strings.Split(info, "\r\n") {
		if strings.HasPrefix(line, "cmdstat_forgetuser") {
			parts = append(parts, strings.SplitN(line, ",", 2)[0])
		}
	}
	if len(parts) == 0 {
		return "no forget calls"
	}
	return strings.Join(parts, " ")
}
