// Sdktour walks the public pkg/gdprkv SDK surface end to end against an
// in-process server: options-struct construction with an auto AUTH/
// PURPOSE handshake, per-call context deadlines (a dead server can never
// hang a caller), the typed error taxonomy under errors.Is, concurrent
// use of one pooled client, explicit pipelining, implicit micro-batching,
// and the generic Do escape hatch. Run with:
//
//	go run ./examples/sdktour
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/pkg/gdprkv"
)

func main() {
	// A strict store: full + real-time compliance, enforcing ACLs.
	st, err := core.Open(core.Strict(""))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "backend", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})

	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()

	// 1. Construction: functional options, handshake on every pooled conn.
	c, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithActor("backend"),
		gdprkv.WithPurpose("order-fulfilment"),
		gdprkv.WithPoolSize(8),
		gdprkv.WithDialTimeout(2*time.Second),
		gdprkv.WithIOTimeout(5*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Println("1. dialed: pool of 8, authenticated as backend/order-fulfilment")

	// 2. Writes carry GDPR metadata; reads state their purpose implicitly.
	err = c.GPut(ctx, "user:alice:address", []byte("1 Rue de Rivoli"), gdprkv.PutOptions{
		Owner:      "alice",
		Purposes:   []string{"order-fulfilment", "billing"},
		Origin:     "checkout-form",
		SharedWith: []string{"parcel-carrier"},
		TTL:        90 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, err := c.GGet(ctx, "user:alice:address")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. round trip: %s\n", v)

	// 3. Typed errors: every rejection class is an errors.Is sentinel.
	marketing, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithActor("backend"), gdprkv.WithPurpose("marketing"))
	if err != nil {
		log.Fatal(err)
	}
	defer marketing.Close()
	_, err = marketing.GGet(ctx, "user:alice:address")
	fmt.Printf("3. off-purpose read: ErrBadPurpose=%v (%v)\n", errors.Is(err, gdprkv.ErrBadPurpose), err)
	_, err = c.GGet(ctx, "user:nobody:email")
	fmt.Printf("   missing key:      ErrNotFound=%v\n", errors.Is(err, gdprkv.ErrNotFound))

	// 4. Deadlines: a black-hole server (accepts, never replies) cannot
	// hang a caller — the context deadline bounds the call.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	shortCtx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = gdprkv.Dial(shortCtx, ln.Addr().String())
	fmt.Printf("4. dead server: returned in %v, DeadlineExceeded=%v\n",
		time.Since(t0).Round(time.Millisecond), errors.Is(err, context.DeadlineExceeded))

	// 5. One client, many goroutines: the pool serialises each call on
	// its own connection, so replies never interleave.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("user:alice:g%d", g)
				if err := c.GPut(ctx, key, []byte(fmt.Sprintf("v%d", i)), gdprkv.PutOptions{
					Owner: "alice", Purposes: []string{"order-fulfilment"}, TTL: time.Hour,
				}); err != nil {
					log.Fatal(err)
				}
				if _, err := c.GGet(ctx, key); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Println("5. 8 goroutines x 50 calls on one client: no interleaving, race-clean")

	// 6. The Do escape hatch reaches any registered command.
	reply, err := c.Do(ctx, "COMMAND", "COUNT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6. Do(COMMAND COUNT): server registers %d commands\n", reply.Int)

	// 7. Explicit pipelining: queue N commands, pay ~1 round trip. Results
	// are positional, and an error reply mid-pipeline occupies only its
	// own slot — later replies stay aligned.
	p := c.Pipeline()
	p.GPut("user:alice:phone", []byte("+33 1 23 45 67 89"), gdprkv.PutOptions{
		Owner: "alice", Purposes: []string{"order-fulfilment"}, TTL: time.Hour,
	})
	p.GGet("user:alice:phone")
	p.GGet("user:nobody:email") // errors in-slot, does not desync
	p.GGet("user:alice:address")
	res, err := p.Exec(ctx)
	if err != nil {
		log.Fatal(err) // transport failure only; per-op errors are in the slots
	}
	phone, _ := res[1].Bytes()
	fmt.Printf("7. pipeline of %d: phone=%s, slot2 ErrNotFound=%v, slot3 ok=%v\n",
		len(res), phone, errors.Is(res[2].Err, gdprkv.ErrNotFound), res[3].Err == nil)

	// 8. Implicit micro-batching: a coalescing client turns concurrent
	// scalar calls into MGET/GMPUT batches — same API, fewer round trips.
	ab, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithActor("backend"),
		gdprkv.WithPurpose("order-fulfilment"),
		gdprkv.WithAutoBatch(gdprkv.DefaultAutoBatchWindow, gdprkv.DefaultAutoBatchMaxOps),
	)
	if err != nil {
		log.Fatal(err)
	}
	var awg sync.WaitGroup
	for g := 0; g < 8; g++ {
		awg.Add(1)
		go func(g int) {
			defer awg.Done()
			if _, err := ab.GGet(ctx, fmt.Sprintf("user:alice:g%d", g)); err != nil {
				log.Fatal(err)
			}
		}(g)
	}
	awg.Wait()
	abStats := ab.Stats()
	ab.Close() // flushes any writes still waiting in a window
	fmt.Printf("8. auto-batch: 8 concurrent GGets rode %d coalesced flush(es)\n",
		abStats.AutoBatchFlushes)

	// 9. Rights operations route to the primary and erase everything.
	n, err := c.ForgetUser(ctx, "alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("9. ForgetUser(alice): %d records erased; pool stats: %+v\n", n, c.Stats())
}
