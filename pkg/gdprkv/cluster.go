package gdprkv

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gdprstore/internal/cluster"
	"gdprstore/internal/resp"
)

// This file is the cluster half of the client: slot-map bootstrap via
// CLUSTER SLOTS, one connection pool per primary, slot-owner routing for
// key-addressed calls, transparent MOVED following within a bounded
// redirect budget (each redirect refreshing the slot map), and per-slot
// splitting of the batch helpers. See DESIGN.md §10.

// clusterRouter is the slot map plus the per-node pool set. The map is
// read on every routed call and replaced wholesale on refresh; pools are
// created lazily per address and live for the client's lifetime.
type clusterRouter struct {
	cfg     *config
	redials *atomic.Uint64

	mu          sync.RWMutex
	slots       [cluster.NumSlots]string // slot -> node addr
	defaultAddr string                   // bootstrap node: target for un-keyed commands
	pools       map[string]*pool
	closed      bool
}

func newClusterRouter(cfg *config, redials *atomic.Uint64) *clusterRouter {
	return &clusterRouter{cfg: cfg, redials: redials, pools: make(map[string]*pool)}
}

// poolFor returns (creating if needed) the pool for one node address.
func (r *clusterRouter) poolFor(addr string) (*pool, error) {
	r.mu.RLock()
	p, ok := r.pools[addr]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return p, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if p, ok = r.pools[addr]; !ok {
		p = newPool(addr, r.cfg, r.redials)
		r.pools[addr] = p
	}
	return p, nil
}

// addrForSlot resolves a slot to its owner's address; the bootstrap node
// answers for slots the map does not cover (it will reply MOVED and the
// redirect path corrects us).
func (r *clusterRouter) addrForSlot(s uint16) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if a := r.slots[s%cluster.NumSlots]; a != "" {
		return a
	}
	return r.defaultAddr
}

// defaultNode is the routing target for commands that carry no key
// (Do, Ping, Info, Scan): the node the map was bootstrapped from.
func (r *clusterRouter) defaultNode() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultAddr
}

func (r *clusterRouter) close() {
	r.mu.Lock()
	r.closed = true
	pools := make([]*pool, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	r.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
}

// applySlots installs a parsed CLUSTER SLOTS reply as the new map.
func (r *clusterRouter) applySlots(v resp.Value) error {
	var slots [cluster.NumSlots]string
	if len(v.Array) == 0 {
		return fmt.Errorf("gdprkv: empty CLUSTER SLOTS reply (is the server in cluster mode?)")
	}
	for _, e := range v.Array {
		if len(e.Array) < 3 || len(e.Array[2].Array) < 2 {
			return fmt.Errorf("gdprkv: malformed CLUSTER SLOTS entry")
		}
		start, end := e.Array[0].Int, e.Array[1].Int
		host := e.Array[2].Array[0].Text()
		port := strconv.FormatInt(e.Array[2].Array[1].Int, 10)
		if start < 0 || end < start || end >= cluster.NumSlots {
			return fmt.Errorf("gdprkv: CLUSTER SLOTS range %d-%d out of bounds", start, end)
		}
		addr := net.JoinHostPort(host, port)
		for s := start; s <= end; s++ {
			slots[s] = addr
		}
	}
	r.mu.Lock()
	r.slots = slots
	r.mu.Unlock()
	return nil
}

// bootstrap learns the slot map from the first seed that answers CLUSTER
// SLOTS, and records it as the default node for un-keyed commands.
func (c *Client) bootstrapCluster(ctx context.Context, seeds []string) error {
	var lastErr error
	for _, addr := range seeds {
		p, err := c.cl.poolFor(addr)
		if err != nil {
			return err
		}
		v, err := c.doNode(ctx, p, args("CLUSTER", "SLOTS"))
		if err == nil {
			err = c.cl.applySlots(v)
		}
		if err != nil {
			lastErr = err
			continue
		}
		c.cl.mu.Lock()
		c.cl.defaultAddr = addr
		c.cl.mu.Unlock()
		return nil
	}
	return fmt.Errorf("gdprkv: cluster bootstrap failed on every seed: %w", lastErr)
}

// refreshSlots re-fetches the slot map, preferring the node that just
// redirected us (it is authoritative for the move we collided with).
// Best-effort: a failed refresh keeps the old map; the redirect target
// still serves the in-flight call.
func (c *Client) refreshSlots(ctx context.Context, addr string) {
	p, err := c.cl.poolFor(addr)
	if err != nil {
		return
	}
	v, err := c.doNode(ctx, p, args("CLUSTER", "SLOTS"))
	if err != nil || c.cl.applySlots(v) != nil {
		return
	}
	c.stats.slotRefreshes.Add(1)
}

// doCluster runs one command against startAddr, transparently following
// MOVED redirects within the configured budget. Every redirect refreshes
// the slot map, so a stale client converges after one collision instead
// of bouncing on every call.
func (c *Client) doCluster(ctx context.Context, startAddr string, cmdArgs [][]byte) (resp.Value, error) {
	addr := startAddr
	for hops := 0; ; hops++ {
		p, err := c.cl.poolFor(addr)
		if err != nil {
			return resp.Value{}, err
		}
		v, err := c.doNode(ctx, p, cmdArgs)
		target, moved := parseMoved(err)
		if !moved {
			return v, err
		}
		if hops >= c.cfg.redirectBudget {
			// Budget exhausted: surface the MOVED itself (it matches
			// ErrMoved under errors.Is), pointing at a flapping map.
			return resp.Value{}, err
		}
		c.stats.redirects.Add(1)
		c.refreshSlots(ctx, target)
		addr = target
	}
}

// doSlot routes one key-addressed command to the key's slot owner.
func (c *Client) doSlot(ctx context.Context, key string, cmdArgs [][]byte) (resp.Value, error) {
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	return c.doCluster(ctx, c.cl.addrForSlot(cluster.Slot(key)), cmdArgs)
}

// parseMoved decodes a MOVED error reply ("MOVED <slot> <addr>") into its
// target address; ok is false for every other error.
func parseMoved(err error) (addr string, ok bool) {
	se, isServer := err.(*ServerError)
	if !isServer || se.Code != "MOVED" {
		return "", false
	}
	fields := strings.Fields(se.Message)
	if len(fields) != 2 {
		return "", false
	}
	return fields[1], true
}

// splitBySlot groups batch indices by slot in first-appearance order,
// preserving each group's relative order, so a cross-slot batch becomes
// one same-slot command per group (the server rejects mixed-slot batches
// with CROSSSLOT) and the replies reassemble positionally.
func splitBySlot(keys []string) [][]int {
	index := make(map[uint16]int)
	var groups [][]int
	for i, k := range keys {
		s := cluster.Slot(k)
		gi, ok := index[s]
		if !ok {
			gi = len(groups)
			index[s] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// --- per-slot batch splitting for the batch helpers ---

// msetCluster applies MSet per slot group. A failing group aborts the
// remaining groups and surfaces the error: earlier groups are already
// applied (a cross-node batch is not atomic — documented in MSet).
func (c *Client) msetCluster(ctx context.Context, keys []string, values [][]byte) error {
	for _, idxs := range splitBySlot(keys) {
		a := make([][]byte, 0, 1+2*len(idxs))
		a = append(a, []byte("MSET"))
		for _, i := range idxs {
			a = append(a, []byte(keys[i]), values[i])
		}
		if _, err := c.doWriteKey(ctx, keys[idxs[0]], a); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) mgetCluster(ctx context.Context, keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for _, idxs := range splitBySlot(keys) {
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		v, err := c.doReadKey(ctx, sub[0], args("MGET", sub...))
		if err != nil {
			return nil, err
		}
		if len(v.Array) != len(sub) {
			return nil, fmt.Errorf("gdprkv: malformed MGET reply: %d entries for %d keys", len(v.Array), len(sub))
		}
		for j, e := range v.Array {
			if !e.Null {
				out[idxs[j]] = e.Str
			}
		}
	}
	return out, nil
}

// delCluster deletes per slot group, summing the per-group counts.
func (c *Client) delCluster(ctx context.Context, keys []string) (int64, error) {
	var total int64
	for _, idxs := range splitBySlot(keys) {
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		v, err := c.doWriteKey(ctx, sub[0], args("DEL", sub...))
		if err != nil {
			return total, err
		}
		total += v.Int
	}
	return total, nil
}

// gmputCluster writes a GMPut per slot group, sharing the metadata
// options. Like msetCluster, a mid-batch failure leaves earlier groups
// applied and is surfaced.
func (c *Client) gmputCluster(ctx context.Context, keys []string, values [][]byte, opts PutOptions) error {
	optArgs := opts.optionArgs()
	for _, idxs := range splitBySlot(keys) {
		a := make([][]byte, 0, 2+2*len(idxs)+len(optArgs))
		a = append(a, []byte("GMPUT"), []byte(strconv.Itoa(len(idxs))))
		for _, i := range idxs {
			a = append(a, []byte(keys[i]), values[i])
		}
		a = append(a, optArgs...)
		if _, err := c.doWriteKey(ctx, keys[idxs[0]], a); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) gmgetCluster(ctx context.Context, keys []string) ([]BatchValue, error) {
	out := make([]BatchValue, len(keys))
	for _, idxs := range splitBySlot(keys) {
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		v, err := c.doReadKey(ctx, sub[0], args("GMGET", sub...))
		if err != nil {
			return nil, err
		}
		if len(v.Array) != len(sub) {
			return nil, fmt.Errorf("gdprkv: malformed GMGET reply: %d entries for %d keys", len(v.Array), len(sub))
		}
		for j, e := range v.Array {
			switch {
			case e.IsError():
				out[idxs[j]].Err = wireError(e.Text())
			case e.Null:
				out[idxs[j]].Err = ErrNotFound
			default:
				out[idxs[j]].Value = e.Str
			}
		}
	}
	return out, nil
}
