package gdprkv

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gdprstore/internal/cluster"
	"gdprstore/internal/resp"
)

// This file is the cluster half of the client: epoch-stamped topology
// bootstrap via CLUSTER TOPOLOGY (with CLUSTER SLOTS fallback), one
// connection pool per node, slot-owner routing for key-addressed calls,
// replica round-robin for key-addressed reads, transparent MOVED and ASK
// following within a bounded redirect budget, failover convergence
// (a dead node triggers an epoch-gated refresh from a surviving one),
// and per-slot splitting of the batch helpers. See DESIGN.md §10 and §15.

// slotOwner is one slot's routing entry: the primary's address plus the
// read-serving replica addresses behind it.
type slotOwner struct {
	addr     string
	replicas []string
}

// clusterRouter is the slot map plus the per-node pool set. The map is
// read on every routed call and replaced wholesale on refresh; pools are
// created lazily per address and live for the client's lifetime. epoch
// versions the installed view: a refresh carrying a lower epoch than the
// one already installed is a stale answer and is ignored.
type clusterRouter struct {
	cfg     *config
	redials *atomic.Uint64

	mu          sync.RWMutex
	slots       [cluster.NumSlots]slotOwner // slot -> primary + replicas
	epoch       uint64
	defaultAddr string // bootstrap node: target for un-keyed commands
	pools       map[string]*pool
	closed      bool
}

func newClusterRouter(cfg *config, redials *atomic.Uint64) *clusterRouter {
	return &clusterRouter{cfg: cfg, redials: redials, pools: make(map[string]*pool)}
}

// poolFor returns (creating if needed) the pool for one node address.
func (r *clusterRouter) poolFor(addr string) (*pool, error) {
	r.mu.RLock()
	p, ok := r.pools[addr]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return p, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if p, ok = r.pools[addr]; !ok {
		p = newPool(addr, r.cfg, r.redials)
		r.pools[addr] = p
	}
	return p, nil
}

// addrForSlot resolves a slot to its owner's address; the bootstrap node
// answers for slots the map does not cover (it will reply MOVED and the
// redirect path corrects us).
func (r *clusterRouter) addrForSlot(s uint16) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if a := r.slots[s%cluster.NumSlots].addr; a != "" {
		return a
	}
	return r.defaultAddr
}

// ownerForSlot resolves a slot to its primary plus replica addresses.
func (r *clusterRouter) ownerForSlot(s uint16) (addr string, replicas []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := r.slots[s%cluster.NumSlots]
	if e.addr == "" {
		return r.defaultAddr, nil
	}
	return e.addr, e.replicas
}

// knownAddrs lists every distinct primary address in the installed map
// (default node first): the candidate set for a failover refresh.
func (r *clusterRouter) knownAddrs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	if r.defaultAddr != "" {
		seen[r.defaultAddr] = true
		out = append(out, r.defaultAddr)
	}
	for _, e := range r.slots {
		if e.addr != "" && !seen[e.addr] {
			seen[e.addr] = true
			out = append(out, e.addr)
		}
	}
	return out
}

// defaultNode is the routing target for commands that carry no key
// (Do, Ping, Info, Scan): the node the map was bootstrapped from.
func (r *clusterRouter) defaultNode() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultAddr
}

func (r *clusterRouter) close() {
	r.mu.Lock()
	r.closed = true
	pools := make([]*pool, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	r.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
}

// parseSlotsValue decodes a CLUSTER SLOTS-shaped array (also the second
// element of CLUSTER TOPOLOGY) into a slot table. Address arrays beyond
// the primary's are its replicas.
func parseSlotsValue(v resp.Value) ([cluster.NumSlots]slotOwner, error) {
	var slots [cluster.NumSlots]slotOwner
	if len(v.Array) == 0 {
		return slots, fmt.Errorf("gdprkv: empty CLUSTER SLOTS reply (is the server in cluster mode?)")
	}
	for _, e := range v.Array {
		if len(e.Array) < 3 || len(e.Array[2].Array) < 2 {
			return slots, fmt.Errorf("gdprkv: malformed CLUSTER SLOTS entry")
		}
		start, end := e.Array[0].Int, e.Array[1].Int
		if start < 0 || end < start || end >= cluster.NumSlots {
			return slots, fmt.Errorf("gdprkv: CLUSTER SLOTS range %d-%d out of bounds", start, end)
		}
		entry := slotOwner{addr: joinAddrValue(e.Array[2])}
		for _, rv := range e.Array[3:] {
			if len(rv.Array) >= 2 {
				entry.replicas = append(entry.replicas, joinAddrValue(rv))
			}
		}
		for s := start; s <= end; s++ {
			slots[s] = entry
		}
	}
	return slots, nil
}

// joinAddrValue renders one [host, port, id] triple as host:port.
func joinAddrValue(v resp.Value) string {
	return net.JoinHostPort(v.Array[0].Text(), strconv.FormatInt(v.Array[1].Int, 10))
}

// install commits a parsed topology if it is at least as new as the one
// already installed. Equal epochs re-install (the same logical view, or
// an operator restarting numbering after re-pointing the map); lower
// epochs are stale answers from a node the rollout has not reached and
// are dropped.
func (r *clusterRouter) install(epoch uint64, slots [cluster.NumSlots]slotOwner) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch < r.epoch {
		return false
	}
	r.epoch = epoch
	r.slots = slots
	return true
}

// fetchTopology asks one node for its topology view: CLUSTER TOPOLOGY
// ([epoch, slots, migrations]) first, falling back to un-versioned
// CLUSTER SLOTS (treated as epoch 1) if the node predates it.
func (c *Client) fetchTopology(ctx context.Context, p *pool) (uint64, [cluster.NumSlots]slotOwner, error) {
	v, err := c.doNode(ctx, p, args("CLUSTER", "TOPOLOGY"))
	if err == nil && len(v.Array) >= 2 {
		slots, perr := parseSlotsValue(v.Array[1])
		return uint64(v.Array[0].Int), slots, perr
	}
	if err != nil && !isReply(err) {
		var none [cluster.NumSlots]slotOwner
		return 0, none, err
	}
	v, err = c.doNode(ctx, p, args("CLUSTER", "SLOTS"))
	if err != nil {
		var none [cluster.NumSlots]slotOwner
		return 0, none, err
	}
	slots, perr := parseSlotsValue(v)
	return 1, slots, perr
}

// bootstrap learns the topology from the first seed that answers, and
// records that seed as the default node for un-keyed commands.
func (c *Client) bootstrapCluster(ctx context.Context, seeds []string) error {
	var lastErr error
	for _, addr := range seeds {
		p, err := c.cl.poolFor(addr)
		if err != nil {
			return err
		}
		epoch, slots, err := c.fetchTopology(ctx, p)
		if err != nil {
			lastErr = err
			continue
		}
		c.cl.mu.Lock()
		c.cl.epoch, c.cl.slots, c.cl.defaultAddr = epoch, slots, addr
		c.cl.mu.Unlock()
		return nil
	}
	return fmt.Errorf("gdprkv: cluster bootstrap failed on every seed: %w", lastErr)
}

// refreshSlots re-fetches the topology, preferring the node that just
// redirected us (it is authoritative for the move we collided with).
// Best-effort and epoch-gated: a failed or stale refresh keeps the old
// map; the redirect target still serves the in-flight call.
func (c *Client) refreshSlots(ctx context.Context, addr string) {
	p, err := c.cl.poolFor(addr)
	if err != nil {
		return
	}
	epoch, slots, err := c.fetchTopology(ctx, p)
	if err != nil || !c.cl.install(epoch, slots) {
		return
	}
	c.stats.slotRefreshes.Add(1)
}

// failoverRefresh converges the client after a node stopped answering:
// ask each surviving primary for its topology and install the first
// fresh-enough view. The next call routes around the dead node (whose
// slots a promoted replica now serves at its own address).
func (c *Client) failoverRefresh(ctx context.Context, failed string) {
	for _, addr := range c.cl.knownAddrs() {
		if addr == failed {
			continue
		}
		p, err := c.cl.poolFor(addr)
		if err != nil {
			return
		}
		epoch, slots, err := c.fetchTopology(ctx, p)
		if err != nil {
			continue
		}
		if c.cl.install(epoch, slots) {
			c.stats.failovers.Add(1)
		}
		return
	}
}

// doCluster runs one command against startAddr, transparently following
// MOVED and ASK redirects within the configured budget. A MOVED refreshes
// the slot map (ownership changed; a stale client converges after one
// collision); an ASK is a one-shot hop — ASKING handshake on the target's
// connection, no map change, because ownership has not moved yet. A
// transport failure triggers a failover refresh from a surviving node
// before the error surfaces, so the *next* call converges even though
// this one is ambiguous and must not be retried.
func (c *Client) doCluster(ctx context.Context, startAddr string, cmdArgs [][]byte) (resp.Value, error) {
	addr, asked := startAddr, false
	for hops := 0; ; hops++ {
		var v resp.Value
		var err error
		if asked {
			v, err = c.doAsk(ctx, addr, cmdArgs)
			asked = false
		} else {
			p, perr := c.cl.poolFor(addr)
			if perr != nil {
				return resp.Value{}, perr
			}
			v, err = c.doNode(ctx, p, cmdArgs)
		}
		if err != nil && !isReply(err) && ctx.Err() == nil {
			c.failoverRefresh(ctx, addr)
			return resp.Value{}, err
		}
		if target, moved := parseRedirect(err, "MOVED"); moved {
			if hops >= c.cfg.redirectBudget {
				// Budget exhausted: surface the MOVED itself (it matches
				// ErrMoved under errors.Is), pointing at a flapping map.
				return resp.Value{}, err
			}
			c.stats.redirects.Add(1)
			c.refreshSlots(ctx, target)
			addr = target
			continue
		}
		if target, isAsk := parseRedirect(err, "ASK"); isAsk {
			if hops >= c.cfg.redirectBudget {
				return resp.Value{}, err
			}
			c.stats.asks.Add(1)
			addr, asked = target, true
			continue
		}
		return v, err
	}
}

// doAsk performs the one-shot ASK hop: ASKING plus the command on the
// same checked-out connection (the server's ASKING flag is
// per-connection and covers exactly the next command).
func (c *Client) doAsk(ctx context.Context, addr string, cmdArgs [][]byte) (resp.Value, error) {
	p, err := c.cl.poolFor(addr)
	if err != nil {
		return resp.Value{}, err
	}
	cn, err := p.get(ctx)
	if err != nil {
		return resp.Value{}, err
	}
	vs, err := cn.doMulti(ctx, c.cfg.ioTimeout, [][][]byte{args("ASKING"), cmdArgs})
	p.put(cn)
	if err != nil {
		return resp.Value{}, err
	}
	v := vs[1]
	if v.IsError() {
		return v, wireError(v.Text())
	}
	return v, nil
}

// doSlot routes one key-addressed command to the key's slot owner.
func (c *Client) doSlot(ctx context.Context, key string, cmdArgs [][]byte) (resp.Value, error) {
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	return c.doCluster(ctx, c.cl.addrForSlot(cluster.Slot(key)), cmdArgs)
}

// doSlotRead routes one key-addressed idempotent read, round-robin over
// the slot's replicas with the primary as final candidate — the cluster
// analogue of doRead. Replies (including redirects, which doCluster
// follows) are authoritative; only a transport failure moves the read to
// the next candidate.
func (c *Client) doSlotRead(ctx context.Context, key string, cmdArgs [][]byte) (resp.Value, error) {
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	primary, replicas := c.cl.ownerForSlot(cluster.Slot(key))
	if len(replicas) == 0 {
		c.stats.primaryReads.Add(1)
		return c.doCluster(ctx, primary, cmdArgs)
	}
	cands := append(append(make([]string, 0, len(replicas)+1), replicas...), primary)
	start := c.rr.Add(1) - 1
	var lastErr error
	for attempt := 0; attempt < len(cands); attempt++ {
		// Round-robin over the replicas; the primary always goes last so
		// it backstops rather than competes.
		var addr string
		if attempt == len(cands)-1 {
			addr = primary
		} else {
			addr = replicas[(start+uint32(attempt))%uint32(len(replicas))]
		}
		if attempt > 0 {
			c.stats.retries.Add(1)
		}
		v, err := c.doCluster(ctx, addr, cmdArgs)
		if err == nil || isReply(err) {
			if addr == primary {
				c.stats.primaryReads.Add(1)
			} else {
				c.stats.replicaReads.Add(1)
			}
			return v, err
		}
		if ctx.Err() != nil {
			return resp.Value{}, err
		}
		lastErr = err
	}
	return resp.Value{}, lastErr
}

// parseRedirect decodes a MOVED/ASK error reply ("<code> <slot> <addr>")
// into its target address; ok is false for every other error.
func parseRedirect(err error, code string) (addr string, ok bool) {
	se, isServer := err.(*ServerError)
	if !isServer || se.Code != code {
		return "", false
	}
	fields := strings.Fields(se.Message)
	if len(fields) != 2 {
		return "", false
	}
	return fields[1], true
}

// splitBySlot groups batch indices by slot in first-appearance order,
// preserving each group's relative order, so a cross-slot batch becomes
// one same-slot command per group (the server rejects mixed-slot batches
// with CROSSSLOT) and the replies reassemble positionally.
func splitBySlot(keys []string) [][]int {
	index := make(map[uint16]int)
	var groups [][]int
	for i, k := range keys {
		s := cluster.Slot(k)
		gi, ok := index[s]
		if !ok {
			gi = len(groups)
			index[s] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// --- per-slot batch splitting for the batch helpers ---

// msetCluster applies MSet per slot group. A failing group aborts the
// remaining groups and surfaces the error: earlier groups are already
// applied (a cross-node batch is not atomic — documented in MSet).
func (c *Client) msetCluster(ctx context.Context, keys []string, values [][]byte) error {
	for _, idxs := range splitBySlot(keys) {
		a := make([][]byte, 0, 1+2*len(idxs))
		a = append(a, []byte("MSET"))
		for _, i := range idxs {
			a = append(a, []byte(keys[i]), values[i])
		}
		if _, err := c.doWriteKey(ctx, keys[idxs[0]], a); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) mgetCluster(ctx context.Context, keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for _, idxs := range splitBySlot(keys) {
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		v, err := c.doReadKey(ctx, sub[0], args("MGET", sub...))
		if err != nil {
			return nil, err
		}
		if len(v.Array) != len(sub) {
			return nil, fmt.Errorf("gdprkv: malformed MGET reply: %d entries for %d keys", len(v.Array), len(sub))
		}
		for j, e := range v.Array {
			if !e.Null {
				out[idxs[j]] = e.Str
			}
		}
	}
	return out, nil
}

// delCluster deletes per slot group, summing the per-group counts.
func (c *Client) delCluster(ctx context.Context, keys []string) (int64, error) {
	var total int64
	for _, idxs := range splitBySlot(keys) {
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		v, err := c.doWriteKey(ctx, sub[0], args("DEL", sub...))
		if err != nil {
			return total, err
		}
		total += v.Int
	}
	return total, nil
}

// gmputCluster writes a GMPut per slot group, sharing the metadata
// options. Like msetCluster, a mid-batch failure leaves earlier groups
// applied and is surfaced.
func (c *Client) gmputCluster(ctx context.Context, keys []string, values [][]byte, opts PutOptions) error {
	optArgs := opts.optionArgs()
	for _, idxs := range splitBySlot(keys) {
		a := make([][]byte, 0, 2+2*len(idxs)+len(optArgs))
		a = append(a, []byte("GMPUT"), []byte(strconv.Itoa(len(idxs))))
		for _, i := range idxs {
			a = append(a, []byte(keys[i]), values[i])
		}
		a = append(a, optArgs...)
		if _, err := c.doWriteKey(ctx, keys[idxs[0]], a); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) gmgetCluster(ctx context.Context, keys []string) ([]BatchValue, error) {
	out := make([]BatchValue, len(keys))
	for _, idxs := range splitBySlot(keys) {
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		v, err := c.doReadKey(ctx, sub[0], args("GMGET", sub...))
		if err != nil {
			return nil, err
		}
		if len(v.Array) != len(sub) {
			return nil, fmt.Errorf("gdprkv: malformed GMGET reply: %d entries for %d keys", len(v.Array), len(sub))
		}
		for j, e := range v.Array {
			switch {
			case e.IsError():
				out[idxs[j]].Err = wireError(e.Text())
			case e.Null:
				out[idxs[j]].Err = ErrNotFound
			default:
				out[idxs[j]].Value = e.Str
			}
		}
	}
	return out, nil
}
