package gdprkv

import (
	"errors"

	"gdprstore/internal/wirecode"
)

// Sentinel errors. Server rejections decode to a *ServerError that
// matches exactly one of these under errors.Is, so callers branch on
// error class without parsing reply text:
//
//	if errors.Is(err, gdprkv.ErrDenied) { ... }
var (
	// ErrNotFound reports a missing (or expired) key. The server signals
	// it as a null bulk string; typed read helpers surface it as this
	// sentinel.
	ErrNotFound = errors.New("gdprkv: key not found")
	// ErrDenied reports an access-control rejection (Art. 25/32),
	// including GDPR commands issued before the AUTH handshake on a store
	// that enforces ACLs.
	ErrDenied = errors.New("gdprkv: access denied")
	// ErrBadPurpose reports a purpose-limitation rejection: the declared
	// purpose is not consented to, or the subject objected (Art. 5/21).
	ErrBadPurpose = errors.New("gdprkv: purpose not permitted")
	// ErrPolicy reports a write rejected by storage policy: no owner, no
	// retention bound, or a disallowed location (Art. 5/46).
	ErrPolicy = errors.New("gdprkv: policy violation")
	// ErrErased reports an operation against an owner whose data was
	// erased and whose key material was shredded (Art. 17).
	ErrErased = errors.New("gdprkv: owner data erased")
	// ErrBaseline reports a GDPR command against a store running in
	// baseline (non-compliant) mode.
	ErrBaseline = errors.New("gdprkv: store is running in baseline mode")
	// ErrReadOnly reports a write sent to a read-only replica. A
	// replica-aware client only sees it when the primary address itself
	// points at a replica (e.g. after a failover swapped roles).
	ErrReadOnly = errors.New("gdprkv: write against a read-only replica")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("gdprkv: client is closed")
	// ErrCrossSlot reports a batch whose keys hash to different cluster
	// slots. The client splits its own batch helpers per slot, so this
	// surfaces only from hand-built Do/DoArgs batches.
	ErrCrossSlot = errors.New("gdprkv: keys hash to different cluster slots")
	// ErrClusterDown reports a cluster-wide rights operation (FORGETUSER,
	// GETUSER) that could not reach every node: the outcome is partial and
	// reported, never silently incomplete.
	ErrClusterDown = errors.New("gdprkv: cluster rights operation incomplete")
	// ErrMoved reports a MOVED redirect the client did not (or could no
	// longer, budget exhausted) follow. Seeing it usually means the slot
	// map is flapping or the client is not in cluster mode.
	ErrMoved = errors.New("gdprkv: key moved to another cluster node")
	// ErrAsk reports an ASK redirect the client did not (or could no
	// longer, budget exhausted) follow: the key's slot is mid-migration
	// and this key already lives at the destination. The client normally
	// follows these transparently (ASKING handshake, no slot-map change).
	ErrAsk = errors.New("gdprkv: key is migrating to another cluster node")
)

// sentinelByCode maps a wire code to the sentinel its *ServerError
// matches. wirecode.Err deliberately has no entry: a generic ERR carries
// no class beyond its message.
var sentinelByCode = map[string]error{
	wirecode.Denied:        ErrDenied,
	wirecode.PurposeDenied: ErrBadPurpose,
	wirecode.Policy:        ErrPolicy,
	wirecode.Erased:        ErrErased,
	wirecode.Baseline:      ErrBaseline,
	wirecode.ReadOnly:      ErrReadOnly,
	wirecode.CrossSlot:     ErrCrossSlot,
	wirecode.ClusterDown:   ErrClusterDown,
	wirecode.Moved:         ErrMoved,
	wirecode.Ask:           ErrAsk,
}

// ServerError is a decoded error reply from the server. It preserves the
// wire code and the server's message, and matches the sentinel for its
// code under errors.Is.
type ServerError struct {
	// Code is the reply's wire code prefix (ERR, DENIED, POLICY, ...).
	Code string
	// Message is the reply text after the code.
	Message string
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.Message == "" {
		return "gdprkv: server: " + e.Code
	}
	return "gdprkv: server: " + e.Code + " " + e.Message
}

// Is reports whether target is the sentinel for this error's wire code,
// wiring *ServerError into errors.Is.
func (e *ServerError) Is(target error) bool {
	s, ok := sentinelByCode[e.Code]
	return ok && s == target
}

// wireError decodes an error reply's text into a *ServerError using the
// same code table the server encodes with (internal/wirecode). This is
// the single RESP-error → Go-error mapping point for the whole SDK: the
// scalar helpers, the batch helpers, and Do all route error replies here.
func wireError(text string) error {
	code, msg := wirecode.Split(text)
	return &ServerError{Code: code, Message: msg}
}
