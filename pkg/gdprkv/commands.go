package gdprkv

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gdprstore/internal/resp"
)

// args builds a raw argument vector from a command name and strings.
func args(name string, rest ...string) [][]byte {
	out := make([][]byte, 0, len(rest)+1)
	out = append(out, []byte(name))
	for _, a := range rest {
		out = append(out, []byte(a))
	}
	return out
}

// Do sends one command verbatim to the primary and returns the decoded
// reply. It is the escape hatch for commands without a typed helper
// (ACL, COMPACT, COMMAND, ...). Error replies come back as *ServerError.
func (c *Client) Do(ctx context.Context, cmd ...string) (resp.Value, error) {
	if len(cmd) == 0 {
		return resp.Value{}, errors.New("gdprkv: Do: empty command")
	}
	return c.doPrimary(ctx, args(cmd[0], cmd[1:]...))
}

// DoArgs sends one command with raw byte arguments to the primary.
func (c *Client) DoArgs(ctx context.Context, name string, raw ...[]byte) (resp.Value, error) {
	a := make([][]byte, 0, len(raw)+1)
	a = append(a, []byte(name))
	a = append(a, raw...)
	return c.doPrimary(ctx, a)
}

// Ping checks primary liveness.
func (c *Client) Ping(ctx context.Context) error {
	v, err := c.doPrimary(ctx, args("PING"))
	if err != nil {
		return err
	}
	if v.Text() != "PONG" {
		return fmt.Errorf("gdprkv: unexpected PING reply %q", v.Text())
	}
	return nil
}

// --- vanilla surface (baseline engine path) ---

// Set stores a raw key/value on the baseline path. Under WithAutoBatch,
// concurrent Sets coalesce into one MSET per flush window.
func (c *Client) Set(ctx context.Context, key string, value []byte) error {
	if c.batcher != nil {
		return c.batcher.set(ctx, key, value)
	}
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdSET, []byte(key), value)
	_, err := c.doWriteKey(ctx, key, av.a)
	return err
}

// SetEX stores a raw key/value with a TTL in seconds.
func (c *Client) SetEX(ctx context.Context, key string, value []byte, seconds int64) error {
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdSET, []byte(key), value, cmdEX, []byte(strconv.FormatInt(seconds, 10)))
	_, err := c.doWriteKey(ctx, key, av.a)
	return err
}

// Get fetches a raw value; ErrNotFound if missing. Replica-routed. Under
// WithAutoBatch, concurrent Gets coalesce into one MGET per flush window.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	if c.batcher != nil {
		return c.batcher.get(ctx, key)
	}
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdGET, []byte(key))
	v, err := c.doReadKey(ctx, key, av.a)
	if err != nil {
		return nil, err
	}
	if v.Null {
		return nil, ErrNotFound
	}
	return v.Str, nil
}

// MSet writes every key/value pair in one MSET command — one round
// trip, one server-side lock acquisition and one AOF record for the
// whole batch. keys and values must have equal length. In cluster mode
// the batch is split per slot (one MSET per slot group, reassembled
// transparently); a cross-node batch is then not atomic — a mid-batch
// failure leaves earlier groups applied and is reported.
func (c *Client) MSet(ctx context.Context, keys []string, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("gdprkv: MSet: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	if c.cl != nil {
		return c.msetCluster(ctx, keys, values)
	}
	a := make([][]byte, 0, 1+2*len(keys))
	a = append(a, []byte("MSET"))
	for i, k := range keys {
		a = append(a, []byte(k), values[i])
	}
	_, err := c.doPrimary(ctx, a)
	return err
}

// MGet reads every key in one MGET command. The result is positional; a
// missing key yields a nil entry. Replica-routed.
func (c *Client) MGet(ctx context.Context, keys ...string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if c.cl != nil {
		return c.mgetCluster(ctx, keys)
	}
	v, err := c.doRead(ctx, args("MGET", keys...))
	if err != nil {
		return nil, err
	}
	if len(v.Array) != len(keys) {
		return nil, fmt.Errorf("gdprkv: malformed MGET reply: %d entries for %d keys", len(v.Array), len(keys))
	}
	out := make([][]byte, len(keys))
	for i, e := range v.Array {
		if !e.Null {
			out[i] = e.Str
		}
	}
	return out, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(ctx context.Context, keys ...string) (int64, error) {
	if c.cl != nil && len(keys) > 0 {
		return c.delCluster(ctx, keys)
	}
	v, err := c.doPrimary(ctx, args("DEL", keys...))
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Expire sets a TTL in seconds, reporting whether the key existed.
func (c *Client) Expire(ctx context.Context, key string, seconds int64) (bool, error) {
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdEXPIRE, []byte(key), []byte(strconv.FormatInt(seconds, 10)))
	v, err := c.doWriteKey(ctx, key, av.a)
	if err != nil {
		return false, err
	}
	return v.Int == 1, nil
}

// TTL returns the TTL in seconds (-1 no TTL, -2 missing). Replica-routed.
func (c *Client) TTL(ctx context.Context, key string) (int64, error) {
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdTTL, []byte(key))
	v, err := c.doReadKey(ctx, key, av.a)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Scan iterates the keyspace; returns keys and the next cursor (0 =
// done). Cursors are positions into one node's sorted keyspace, so the
// whole iteration must run against one node: a client pins every Scan
// to its first replica (primary when none are configured), falling back
// to the primary only when that replica is unreachable — after such a
// fallback, restart from cursor 0 for a complete sweep.
func (c *Client) Scan(ctx context.Context, cursor uint64, match string, count int) ([]string, uint64, error) {
	v, err := c.doScan(ctx, args("SCAN",
		strconv.FormatUint(cursor, 10), "MATCH", match, "COUNT", strconv.Itoa(count)))
	if err != nil {
		return nil, 0, err
	}
	if len(v.Array) != 2 {
		return nil, 0, errors.New("gdprkv: malformed SCAN reply")
	}
	next, err := strconv.ParseUint(v.Array[0].Text(), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("gdprkv: bad SCAN cursor: %w", err)
	}
	keys := make([]string, len(v.Array[1].Array))
	for i, k := range v.Array[1].Array {
		keys[i] = k.Text()
	}
	return keys, next, nil
}

// Info returns the primary's INFO report; section may be empty for the
// full report, or one of "gdprstore", "replication", "commandstats".
// Primary-routed because the report is node-local state; dial a
// dedicated client per node to inspect replicas.
func (c *Client) Info(ctx context.Context, section string) (string, error) {
	a := args("INFO")
	if section != "" {
		a = append(a, []byte(section))
	}
	v, err := c.doPrimary(ctx, a)
	if err != nil {
		return "", err
	}
	return v.Text(), nil
}

// ReplicaOf makes the connected server replicate from the primary at
// host:port (operator command).
func (c *Client) ReplicaOf(ctx context.Context, host, port string) error {
	_, err := c.doPrimary(ctx, args("REPLICAOF", host, port))
	return err
}

// PromoteToPrimary stops the connected server's replication and makes
// it writable (REPLICAOF NO ONE).
func (c *Client) PromoteToPrimary(ctx context.Context) error {
	_, err := c.doPrimary(ctx, args("REPLICAOF", "NO", "ONE"))
	return err
}

// --- GDPR surface (compliance path) ---

// PutOptions carries a record's GDPR metadata for GPut and GMPut.
type PutOptions struct {
	// Owner is the data subject the record belongs to.
	Owner string
	// Purposes are the consented processing purposes.
	Purposes []string
	// TTL is the retention bound; rounded down to whole seconds.
	TTL time.Duration
	// Origin records where the data was collected (Art. 15(1)(g)).
	Origin string
	// Location constrains the storage region (Art. 46).
	Location string
	// SharedWith lists third-party recipients (Art. 15(1)(c)).
	SharedWith []string
	// AutoDecide flags automated decision-making (Art. 22).
	AutoDecide bool
}

// optionArgs renders the metadata as GPUT/GMPUT option tokens.
func (o PutOptions) optionArgs() [][]byte {
	var a [][]byte
	if o.Owner != "" {
		a = append(a, []byte("OWNER"), []byte(o.Owner))
	}
	if len(o.Purposes) > 0 {
		a = append(a, []byte("PURPOSES"), []byte(strings.Join(o.Purposes, ",")))
	}
	if secs := int64(o.TTL / time.Second); secs > 0 {
		a = append(a, []byte("TTL"), []byte(strconv.FormatInt(secs, 10)))
	}
	if o.Origin != "" {
		a = append(a, []byte("ORIGIN"), []byte(o.Origin))
	}
	if o.Location != "" {
		a = append(a, []byte("LOCATION"), []byte(o.Location))
	}
	if len(o.SharedWith) > 0 {
		a = append(a, []byte("SHAREDWITH"), []byte(strings.Join(o.SharedWith, ",")))
	}
	if o.AutoDecide {
		a = append(a, []byte("AUTODECIDE"))
	}
	return a
}

// GPut writes personal data with its metadata. Under WithAutoBatch,
// concurrent GPuts sharing identical options coalesce into one GMPUT per
// flush window.
func (c *Client) GPut(ctx context.Context, key string, value []byte, opts PutOptions) error {
	if c.batcher != nil {
		return c.batcher.gput(ctx, key, value, opts)
	}
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdGPUT, []byte(key), value)
	av.a = append(av.a, opts.optionArgs()...)
	_, err := c.doWriteKey(ctx, key, av.a)
	return err
}

// GMPut writes a batch of personal-data records sharing one metadata
// set in a single GMPUT command: one lock, one AOF append, one audit
// record for the whole batch. In cluster mode the batch is split per
// slot (owner-tagged keys stay one group); a mid-batch failure leaves
// earlier slot groups applied and is reported.
func (c *Client) GMPut(ctx context.Context, keys []string, values [][]byte, opts PutOptions) error {
	if len(keys) != len(values) {
		return fmt.Errorf("gdprkv: GMPut: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	if c.cl != nil {
		return c.gmputCluster(ctx, keys, values, opts)
	}
	a := make([][]byte, 0, 2+2*len(keys)+14)
	a = append(a, []byte("GMPUT"), []byte(strconv.Itoa(len(keys))))
	for i, k := range keys {
		a = append(a, []byte(k), values[i])
	}
	a = append(a, opts.optionArgs()...)
	_, err := c.doPrimary(ctx, a)
	return err
}

// GGet reads personal data under the client's actor and purpose.
// ErrNotFound if missing. Replica-routed. Under WithAutoBatch, concurrent
// GGets coalesce into one GMGET per flush window.
func (c *Client) GGet(ctx context.Context, key string) ([]byte, error) {
	if c.batcher != nil {
		return c.batcher.gget(ctx, key)
	}
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdGGET, []byte(key))
	v, err := c.doReadKey(ctx, key, av.a)
	if err != nil {
		return nil, err
	}
	if v.Null {
		return nil, ErrNotFound
	}
	return v.Str, nil
}

// BatchValue is one positional result of GMGet: the value on success,
// or the per-key error (ErrNotFound for a missing key, a *ServerError
// carrying the DENIED/PURPOSEDENIED/ERASED/... class for a refused one).
type BatchValue struct {
	Value []byte
	Err   error
}

// GMGet reads a batch of personal-data records in one GMGET command. A
// refused or missing key is reported in its slot without failing the
// rest of the batch. Replica-routed.
func (c *Client) GMGet(ctx context.Context, keys ...string) ([]BatchValue, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if c.cl != nil {
		return c.gmgetCluster(ctx, keys)
	}
	v, err := c.doRead(ctx, args("GMGET", keys...))
	if err != nil {
		return nil, err
	}
	if len(v.Array) != len(keys) {
		return nil, fmt.Errorf("gdprkv: malformed GMGET reply: %d entries for %d keys", len(v.Array), len(keys))
	}
	out := make([]BatchValue, len(keys))
	for i, e := range v.Array {
		switch {
		case e.IsError():
			out[i].Err = wireError(e.Text())
		case e.Null:
			out[i].Err = ErrNotFound
		default:
			out[i].Value = e.Str
		}
	}
	return out, nil
}

// GDel deletes personal data.
func (c *Client) GDel(ctx context.Context, key string) error {
	av := argvGet()
	defer argvPut(av)
	av.a = append(av.a, cmdGDEL, []byte(key))
	_, err := c.doWriteKey(ctx, key, av.a)
	return err
}

// GetUser returns all key/value pairs of a data subject (Art. 15 right
// of access). Rights operations are primary-routed: their answers must
// reflect the authoritative dataset, not a replica's convergence lag.
func (c *Client) GetUser(ctx context.Context, owner string) (map[string][]byte, error) {
	v, err := c.doRights(ctx, owner, args("GETUSER", owner))
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(v.Array)/2)
	for i := 0; i+1 < len(v.Array); i += 2 {
		out[v.Array[i].Text()] = v.Array[i+1].Str
	}
	return out, nil
}

// ExportUser returns the Art. 20 portability payload. Primary-routed.
func (c *Client) ExportUser(ctx context.Context, owner string) ([]byte, error) {
	v, err := c.doRights(ctx, owner, args("EXPORTUSER", owner))
	if err != nil {
		return nil, err
	}
	return v.Str, nil
}

// ForgetUser erases a data subject (Art. 17), returning the number of
// records erased on the primary; erasure propagates to replicas through
// the replication stream.
func (c *Client) ForgetUser(ctx context.Context, owner string) (int64, error) {
	v, err := c.doRights(ctx, owner, args("FORGETUSER", owner))
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Object records an Art. 21 objection to a processing purpose.
func (c *Client) Object(ctx context.Context, owner, purpose string) error {
	_, err := c.doRights(ctx, owner, args("OBJECT", owner, purpose))
	return err
}

// Unobject withdraws an Art. 21 objection.
func (c *Client) Unobject(ctx context.Context, owner, purpose string) error {
	_, err := c.doRights(ctx, owner, args("UNOBJECT", owner, purpose))
	return err
}
