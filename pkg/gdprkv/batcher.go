package gdprkv

import (
	"bytes"
	"context"
	"sync"
	"time"
)

// This file implements implicit micro-batching (WithAutoBatch): scalar
// Get/GGet/Set/GPut calls from concurrent goroutines that land within one
// flush window are coalesced into a single MGET/GMGET/MSET/GMPUT command
// and the reply is redistributed positionally. Callers keep the scalar
// API and its semantics — each one still gets its own value and typed
// error — but an N-goroutine burst pays ~1 round trip instead of N. In
// cluster mode the flush goes through the batch helpers, which already
// split per slot and reassemble in order, so coalescing composes with
// slot routing for free. See DESIGN.md §12.

// batchKind discriminates the four coalescable operation classes.
type batchKind uint8

const (
	kindGet batchKind = iota
	kindGGet
	kindSet
	kindGPut
)

// batchGroup is one in-flight coalescing bucket: every queued op of one
// kind (and, for GPut, one identical option set) waiting for the flush.
// Results are written by exactly one flusher, then done is closed; waiters
// read their slot only after done, so no per-op locking is needed.
type batchGroup struct {
	kind batchKind
	opts PutOptions // kindGPut: the shared metadata set

	skey []string // queued keys
	vals [][]byte // kindSet/kindGPut: queued values

	timer *time.Timer
	done  chan struct{}

	// results, one slot per queued op, valid after done is closed.
	res  [][]byte
	errs []error
	err  error // whole-group error (transport/MSET failure), when errs is nil
}

// wait blocks until the group flushes or ctx is done, then returns op i's
// result. An abandoned wait does not abandon the op: the flush still runs
// and, for writes, still applies — the caller just stops listening, the
// same contract a cancelled in-flight scalar write has.
func (g *batchGroup) wait(ctx context.Context, i int) ([]byte, error) {
	select {
	case <-g.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if g.err != nil {
		return nil, g.err
	}
	if g.errs != nil && g.errs[i] != nil {
		return nil, g.errs[i]
	}
	if g.res != nil {
		return g.res[i], nil
	}
	return nil, nil
}

// batcher owns the pending groups and their flush timers.
type batcher struct {
	c      *Client
	window time.Duration
	maxOps int

	mu     sync.Mutex
	closed bool
	groups map[string]*batchGroup
}

func newBatcher(c *Client, window time.Duration, maxOps int) *batcher {
	return &batcher{
		c:      c,
		window: window,
		maxOps: maxOps,
		groups: make(map[string]*batchGroup),
	}
}

// groupKey buckets ops so only same-command (and, for GPut, same-option)
// calls coalesce: a GMPUT carries exactly one metadata set.
func groupKey(kind batchKind, opts PutOptions) string {
	switch kind {
	case kindGet:
		return "g"
	case kindGGet:
		return "G"
	case kindSet:
		return "s"
	default:
		return "P" + string(bytes.Join(opts.optionArgs(), []byte{0x1f}))
	}
}

// enqueue adds one op to its coalescing bucket, arming the window timer on
// the bucket's first op and flushing inline when the bucket reaches
// maxOps. It returns the group and the caller's slot index.
func (b *batcher) enqueue(kind batchKind, opts PutOptions, key string, val []byte) (*batchGroup, int, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, 0, ErrClosed
	}
	gk := groupKey(kind, opts)
	g := b.groups[gk]
	if g == nil {
		g = &batchGroup{kind: kind, opts: opts, done: make(chan struct{})}
		b.groups[gk] = g
		g.timer = time.AfterFunc(b.window, func() { b.take(gk, g) })
	}
	i := len(g.skey)
	g.skey = append(g.skey, key)
	if kind == kindSet || kind == kindGPut {
		g.vals = append(g.vals, val)
	}
	full := len(g.skey) >= b.maxOps
	if full {
		delete(b.groups, gk)
	}
	b.mu.Unlock()
	if full {
		g.timer.Stop()
		b.flush(g)
	}
	return g, i, nil
}

// take removes g from the pending map (when still there — a maxOps flush
// may have raced the timer) and flushes it. Runs on the timer goroutine.
func (b *batcher) take(gk string, g *batchGroup) {
	b.mu.Lock()
	if b.groups[gk] != g {
		b.mu.Unlock()
		return
	}
	delete(b.groups, gk)
	b.mu.Unlock()
	b.flush(g)
}

// flush submits one group as its batch command and distributes the reply.
// It runs under context.Background(): the per-call I/O deadline
// (WithIOTimeout) still bounds the wire time, and each waiter's own ctx
// bounds its wait — but one caller's cancellation must not fail the
// other callers sharing the round trip.
func (b *batcher) flush(g *batchGroup) {
	defer close(g.done)
	ctx := context.Background()
	b.c.stats.autoBatchFlushes.Add(1)
	b.c.stats.autoBatchOps.Add(uint64(len(g.skey)))
	switch g.kind {
	case kindGet:
		vals, err := b.c.MGet(ctx, g.skey...)
		if err != nil {
			g.err = err
			return
		}
		g.res = vals
		g.errs = make([]error, len(vals))
		for i, v := range vals {
			if v == nil {
				g.errs[i] = ErrNotFound
			}
		}
	case kindGGet:
		bvs, err := b.c.GMGet(ctx, g.skey...)
		if err != nil {
			g.err = err
			return
		}
		g.res = make([][]byte, len(bvs))
		g.errs = make([]error, len(bvs))
		for i, bv := range bvs {
			g.res[i] = bv.Value
			g.errs[i] = bv.Err
		}
	case kindSet:
		g.err = b.c.MSet(ctx, g.skey, g.vals)
	case kindGPut:
		g.err = b.c.GMPut(ctx, g.skey, g.vals, g.opts)
	}
}

// close rejects new ops and synchronously flushes everything pending, so
// accepted writes are submitted before the pools tear down. Idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	pending := make([]*batchGroup, 0, len(b.groups))
	for gk, g := range b.groups {
		delete(b.groups, gk)
		pending = append(pending, g)
	}
	b.mu.Unlock()
	for _, g := range pending {
		g.timer.Stop()
		b.flush(g)
	}
}

// --- the scalar entry points Client routes through under WithAutoBatch ---

func (b *batcher) get(ctx context.Context, key string) ([]byte, error) {
	g, i, err := b.enqueue(kindGet, PutOptions{}, key, nil)
	if err != nil {
		return nil, err
	}
	return g.wait(ctx, i)
}

func (b *batcher) gget(ctx context.Context, key string) ([]byte, error) {
	g, i, err := b.enqueue(kindGGet, PutOptions{}, key, nil)
	if err != nil {
		return nil, err
	}
	return g.wait(ctx, i)
}

func (b *batcher) set(ctx context.Context, key string, value []byte) error {
	g, i, err := b.enqueue(kindSet, PutOptions{}, key, value)
	if err != nil {
		return err
	}
	_, err = g.wait(ctx, i)
	return err
}

func (b *batcher) gput(ctx context.Context, key string, value []byte, opts PutOptions) error {
	g, i, err := b.enqueue(kindGPut, opts, key, value)
	if err != nil {
		return err
	}
	_, err = g.wait(ctx, i)
	return err
}
