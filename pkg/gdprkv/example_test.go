package gdprkv_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/pkg/gdprkv"
)

// Example shows the SDK's lifecycle end to end: dial with options, write
// personal data with metadata, read it back, and exercise the right to
// be forgotten. The in-process server stands in for a deployment.
func Example() {
	st, _ := core.Open(core.Config{Compliant: true, Capability: core.CapabilityFull, AuditEnabled: true})
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "shop", Role: acl.RoleController})
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithActor("shop"),
		gdprkv.WithPurpose("order-fulfilment"),
		gdprkv.WithPoolSize(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	err = c.GPut(ctx, "user:alice:address", []byte("1 Rue de Rivoli"), gdprkv.PutOptions{
		Owner:    "alice",
		Purposes: []string{"order-fulfilment"},
		TTL:      90 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	v, _ := c.GGet(ctx, "user:alice:address")
	fmt.Printf("read: %s\n", v)

	n, _ := c.ForgetUser(ctx, "alice")
	fmt.Printf("forgotten: %d record(s)\n", n)

	// Output:
	// read: 1 Rue de Rivoli
	// forgotten: 1 record(s)
}

// ExampleClient_Get demonstrates the typed-sentinel error contract: a
// missing key is errors.Is(err, ErrNotFound), decoded from the wire by
// the same code table the server encodes with.
func ExampleClient_Get() {
	st, _ := core.Open(core.Baseline())
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	_, err = c.Get(ctx, "missing")
	fmt.Println(errors.Is(err, gdprkv.ErrNotFound))

	// Output:
	// true
}

// ExampleClient_GMGet reads a batch in one round trip; refused or
// missing keys are reported per slot without failing the batch.
func ExampleClient_GMGet() {
	st, _ := core.Open(core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true})
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr(), gdprkv.WithActor("importer"))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	_ = c.GMPut(ctx, []string{"k1", "k2"}, [][]byte{[]byte("v1"), []byte("v2")},
		gdprkv.PutOptions{Owner: "bob", Purposes: []string{"svc"}})

	batch, _ := c.GMGet(ctx, "k1", "k2", "missing")
	for i, r := range batch {
		if errors.Is(r.Err, gdprkv.ErrNotFound) {
			fmt.Printf("%d: not found\n", i)
			continue
		}
		fmt.Printf("%d: %s\n", i, r.Value)
	}

	// Output:
	// 0: v1
	// 1: v2
	// 2: not found
}

// ExampleClient_Pipeline queues commands client-side and submits them as
// one exchange: positional results, one round trip, and an error reply in
// the middle occupying only its own slot.
func ExampleClient_Pipeline() {
	st, _ := core.Open(core.Baseline())
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	p.Set("a", []byte("1")).Set("b", []byte("2")).Get("a").Get("missing").Get("b")
	res, err := p.Exec(ctx) // one flush, five ordered replies
	if err != nil {
		log.Fatal(err) // transport failure only; see the slots for the rest
	}
	for i, r := range res[2:] {
		if errors.Is(r.Err, gdprkv.ErrNotFound) {
			fmt.Printf("%d: not found\n", i)
			continue
		}
		v, _ := r.Bytes()
		fmt.Printf("%d: %s\n", i, v)
	}

	// Output:
	// 0: 1
	// 1: not found
	// 2: 2
}

// ExampleWithAutoBatch turns on implicit micro-batching: concurrent
// scalar calls coalesce into one batched command per flush window, with
// every caller keeping its own value and typed error.
func ExampleWithAutoBatch() {
	st, _ := core.Open(core.Baseline())
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithAutoBatch(gdprkv.DefaultAutoBatchWindow, gdprkv.DefaultAutoBatchMaxOps))
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// These concurrent Sets ride one coalesced MSET.
			_ = c.Set(ctx, fmt.Sprintf("k%d", i), []byte{byte('0' + i)})
		}()
	}
	wg.Wait()
	c.Close() // pending coalesced writes are flushed before teardown

	verify, _ := gdprkv.Dial(ctx, srv.Addr())
	defer verify.Close()
	v, _ := verify.Get(ctx, "k2")
	fmt.Printf("k2 = %s\n", v)

	// Output:
	// k2 = 2
}

// ExampleWithRetry bounds how many nodes an idempotent read tries after
// connection failures; server error replies are never retried.
func ExampleWithRetry() {
	st, _ := core.Open(core.Baseline())
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	c, err := gdprkv.Dial(context.Background(), srv.Addr(),
		gdprkv.WithReplicas("127.0.0.1:1"), // unreachable: reads fall back
		gdprkv.WithRetry(2, 10*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	_ = c.Set(context.Background(), "k", []byte("v"))
	v, _ := c.Get(context.Background(), "k")
	fmt.Printf("%s via fallback (retries=%d)\n", v, c.Stats().Retries)

	// Output:
	// v via fallback (retries=1)
}
