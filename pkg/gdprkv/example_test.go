package gdprkv_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
	"gdprstore/pkg/gdprkv"
)

// Example shows the SDK's lifecycle end to end: dial with options, write
// personal data with metadata, read it back, and exercise the right to
// be forgotten. The in-process server stands in for a deployment.
func Example() {
	st, _ := core.Open(core.Config{Compliant: true, Capability: core.CapabilityFull, AuditEnabled: true})
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "shop", Role: acl.RoleController})
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr(),
		gdprkv.WithActor("shop"),
		gdprkv.WithPurpose("order-fulfilment"),
		gdprkv.WithPoolSize(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	err = c.GPut(ctx, "user:alice:address", []byte("1 Rue de Rivoli"), gdprkv.PutOptions{
		Owner:    "alice",
		Purposes: []string{"order-fulfilment"},
		TTL:      90 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	v, _ := c.GGet(ctx, "user:alice:address")
	fmt.Printf("read: %s\n", v)

	n, _ := c.ForgetUser(ctx, "alice")
	fmt.Printf("forgotten: %d record(s)\n", n)

	// Output:
	// read: 1 Rue de Rivoli
	// forgotten: 1 record(s)
}

// ExampleClient_Get demonstrates the typed-sentinel error contract: a
// missing key is errors.Is(err, ErrNotFound), decoded from the wire by
// the same code table the server encodes with.
func ExampleClient_Get() {
	st, _ := core.Open(core.Baseline())
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	_, err = c.Get(ctx, "missing")
	fmt.Println(errors.Is(err, gdprkv.ErrNotFound))

	// Output:
	// true
}

// ExampleClient_GMGet reads a batch in one round trip; refused or
// missing keys are reported per slot without failing the batch.
func ExampleClient_GMGet() {
	st, _ := core.Open(core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true})
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, srv.Addr(), gdprkv.WithActor("importer"))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	_ = c.GMPut(ctx, []string{"k1", "k2"}, [][]byte{[]byte("v1"), []byte("v2")},
		gdprkv.PutOptions{Owner: "bob", Purposes: []string{"svc"}})

	batch, _ := c.GMGet(ctx, "k1", "k2", "missing")
	for i, r := range batch {
		if errors.Is(r.Err, gdprkv.ErrNotFound) {
			fmt.Printf("%d: not found\n", i)
			continue
		}
		fmt.Printf("%d: %s\n", i, r.Value)
	}

	// Output:
	// 0: v1
	// 1: v2
	// 2: not found
}

// ExampleWithRetry bounds how many nodes an idempotent read tries after
// connection failures; server error replies are never retried.
func ExampleWithRetry() {
	st, _ := core.Open(core.Baseline())
	defer st.Close()
	srv, _ := server.Listen("127.0.0.1:0", st)
	defer srv.Close()

	c, err := gdprkv.Dial(context.Background(), srv.Addr(),
		gdprkv.WithReplicas("127.0.0.1:1"), // unreachable: reads fall back
		gdprkv.WithRetry(2, 10*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	_ = c.Set(context.Background(), "k", []byte("v"))
	v, _ := c.Get(context.Background(), "k")
	fmt.Printf("%s via fallback (retries=%d)\n", v, c.Stats().Retries)

	// Output:
	// v via fallback (retries=1)
}
