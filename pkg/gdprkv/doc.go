// Package gdprkv is the public Go SDK for the gdprkv server: a
// context-first, connection-pooled, replica- and cluster-aware client
// over the RESP wire protocol, covering the vanilla Redis-style surface
// (Set/Get/Del/Expire/Scan/...), the GDPR command family (GPut/GGet/
// GetUser/ForgetUser/Object/...), and the amortising batch family
// (MSet/MGet/GMPut/GMGet).
//
// # Construction
//
// A Client is built with functional options and verified against the
// primary at dial time:
//
//	c, err := gdprkv.Dial(ctx, "db0:6380",
//		gdprkv.WithActor("shop-backend"),
//		gdprkv.WithPurpose("order-fulfilment"),
//		gdprkv.WithPoolSize(8),
//		gdprkv.WithReplicas("db1:6380", "db2:6380"),
//	)
//
// WithActor and WithPurpose run the AUTH/PURPOSE handshake on every
// pooled connection, so the whole client speaks as one authenticated
// principal under one declared processing purpose (Art. 5). Use one
// client per (actor, purpose) pair.
//
// # Deadlines and cancellation
//
// Every method takes a leading context.Context. The context's deadline
// becomes the connection's read/write deadline for the call; when the
// context has no (or a later) deadline, WithIOTimeout's default applies
// instead — a dead server surfaces as a timeout, never a hang. A
// context cancelled while a checkout is blocked on an exhausted pool
// unblocks immediately.
//
// # Pooling and concurrency
//
// The Client is safe for concurrent use from any number of goroutines.
// Each call checks a connection out of a per-node pool for exactly the
// call's duration; checkout health-checks idle connections and redials
// broken ones transparently.
//
// # Replica-aware routing
//
// Writes, GDPR rights operations, and Do go to the primary. Idempotent
// reads (Get, MGet, GGet, GMGet, TTL) round-robin across the
// WithReplicas set, retry on another node after a connection failure
// (bounded by WithRetry), and fall back to the primary when no replica
// is reachable. Scan is replica-served too but pinned to one node for
// the whole iteration — cursors are per-node keyspace positions and do
// not transfer between nodes. Server error replies are authoritative
// and never retried.
//
// # Errors
//
// Server rejections decode into *ServerError values that match typed
// sentinels under errors.Is — ErrNotFound, ErrDenied, ErrBadPurpose,
// ErrPolicy, ErrErased, ErrBaseline, ErrReadOnly — produced by a single
// RESP-error mapper that shares its code table with the server
// (internal/wirecode), so the two ends cannot drift.
//
// # Pipelining
//
// Pipeline queues commands client-side and submits them in one shot:
//
//	p := c.Pipeline()
//	p.Set("a", va).Set("b", vb).Get("a")
//	res, err := p.Exec(ctx) // 3 positional PipeResults, ~1 round trip
//
// Exec writes every queued command over one connection per target node,
// flushes once, and reads the replies back in order, so an N-deep
// pipeline pays one round trip instead of N. Results are positional:
// res[i] belongs to the i-th queued command, and an error reply in the
// middle fills its own slot without desyncing later replies. The
// returned error is reserved for transport-level failures; server
// rejections live only in the slots. In cluster mode the queue is split
// per slot owner, executed concurrently, and reassembled, following
// MOVED redirects per op. A Pipeline is not concurrency-safe — build
// and Exec from one goroutine.
//
// # Implicit micro-batching
//
// WithAutoBatch gives concurrent scalar callers the same amortisation
// with zero code change: Get/GGet/Set/GPut calls landing within the
// flush window (default 100µs, DefaultAutoBatchWindow) coalesce into
// one MGET/GMGET/MSET/GMPUT and the reply is redistributed per caller.
// Each caller keeps its own value and typed error; cancelling one
// caller never fails the batch for the rest; writes accepted before
// Close are flushed by Close. A lone call pays up to one window of
// extra latency — keep the window well under the round-trip time.
//
// # Cluster mode
//
// WithCluster turns on hash-slot routing against a fleet of primaries:
// the client bootstraps the slot map with CLUSTER SLOTS, pools
// connections per node, routes each key-addressed call to its slot owner
// (hash-tag aware: "pd:{alice}:email" routes with "alice"), splits the
// batch helpers per slot, and follows MOVED redirects within a bounded
// budget, refreshing the slot map on each one. GDPR rights calls
// (ForgetUser, GetUser, ...) go to the data subject's slot node, which
// coordinates the cluster-wide fan-out server-side. Per-primary replica
// addresses from the cluster map spread idempotent reads exactly as
// WithReplicas does on a single node; the explicit WithReplicas option
// and cluster mode remain mutually exclusive.
//
// During a live slot migration the client also follows ASK redirects:
// an ASK reply means "this one key has already moved" — the command is
// replayed on the destination behind a one-shot ASKING, counted in
// Stats().Asks, and the slot map is left untouched (only MOVED rewrites
// it). Pipelines follow ASK per operation. When a primary dies
// mid-call, the client refreshes its topology from the surviving nodes
// (counted in Stats().Failovers) and returns the transport error; the
// caller's retry lands on the promoted replica. Topology exposes the
// server's versioned view — epoch, slot ranges, active migrations — for
// operators and tests; refreshes carrying an older epoch than the
// installed one are ignored.
//
// # Migrating from internal/client
//
// The deprecated internal/client shim has been removed. Differences for
// code still on the old API:
//
//   - every method gained a leading ctx argument;
//   - Dial(addr) became Dial(ctx, addr, ...Option);
//   - Auth/Purpose methods became WithActor/WithPurpose options (session
//     state is per-connection, so a pooled client fixes it at dial);
//   - ErrNil became ErrNotFound; ServerError became a struct matching
//     typed sentinels with errors.Is instead of string prefixes;
//   - GDPRPutArgs became PutOptions with []string purposes/recipients
//     and a time.Duration TTL.
package gdprkv
