package gdprkv

import (
	"crypto/tls"
	"time"
)

// Defaults applied by Dial when the corresponding option is not given.
const (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// DefaultIOTimeout is the per-call I/O deadline used when the
	// context carries no (or a later) deadline, so a dead server can
	// never hang a caller forever.
	DefaultIOTimeout = 10 * time.Second
	// DefaultPoolSize is the number of connections kept per node.
	DefaultPoolSize = 4
	// DefaultRetryBackoff is the pause between read retry attempts.
	DefaultRetryBackoff = 20 * time.Millisecond
	// defaultHealthInterval is how long a connection may sit idle before
	// checkout re-verifies it with a PING.
	defaultHealthInterval = 30 * time.Second
)

// DefaultRedirectBudget is how many MOVED redirects one cluster-routed
// call may follow before giving up (a bound against redirect loops from
// inconsistent node maps).
const DefaultRedirectBudget = 3

// Auto-batching defaults applied by WithAutoBatch for zero arguments.
const (
	// DefaultAutoBatchWindow is how long the first queued call waits for
	// company before its coalesced batch flushes. ~100µs: far below a
	// LAN round trip (so latency cost is marginal) but long enough for a
	// concurrent burst to pile in.
	DefaultAutoBatchWindow = 100 * time.Microsecond
	// DefaultAutoBatchMaxOps flushes a batch early once this many calls
	// have coalesced, bounding both reply latency and command size.
	DefaultAutoBatchMaxOps = 64
)

// config is the resolved option set a Client is built from.
type config struct {
	dialTimeout    time.Duration
	ioTimeout      time.Duration
	tlsConfig      *tls.Config
	actor          string
	purpose        string
	poolSize       int
	replicas       []string
	retryAttempts  int
	retryBackoff   time.Duration
	healthInterval time.Duration
	clusterMode    bool
	clusterSeeds   []string
	redirectBudget int

	autoBatchWindow time.Duration
	autoBatchMaxOps int
}

func defaultConfig() config {
	return config{
		dialTimeout:    DefaultDialTimeout,
		ioTimeout:      DefaultIOTimeout,
		poolSize:       DefaultPoolSize,
		retryAttempts:  0, // resolved in Dial: one attempt per node
		retryBackoff:   DefaultRetryBackoff,
		healthInterval: defaultHealthInterval,
		redirectBudget: DefaultRedirectBudget,
	}
}

// Option customises a Client at construction.
type Option func(*config)

// WithDialTimeout bounds how long establishing one connection (TCP dial,
// TLS handshake, AUTH/PURPOSE) may take.
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithIOTimeout sets the default per-call I/O deadline applied when the
// call's context has no earlier deadline. It is the floor under every
// call: even ctx = context.Background() cannot hang past it.
func WithIOTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.ioTimeout = d
		}
	}
}

// WithTLS wraps every connection in TLS with cfg, the client half of the
// paper's §4.2 stunnel-style in-transit encryption. The server side is
// typically an internal/tlsproxy server proxy in front of the store.
func WithTLS(cfg *tls.Config) Option {
	return func(c *config) { c.tlsConfig = cfg }
}

// WithActor sends AUTH actor on every new connection before it enters
// the pool, so the whole pool speaks as one authenticated principal.
// Session identity is a construction-time property of a pooled client:
// per-call AUTH would leave the other pooled connections unauthenticated.
func WithActor(actor string) Option {
	return func(c *config) { c.actor = actor }
}

// WithPurpose sends PURPOSE purpose on every new connection before it
// enters the pool, declaring the processing purpose (Art. 5) all calls
// are made under. Use one client per purpose.
func WithPurpose(purpose string) Option {
	return func(c *config) { c.purpose = purpose }
}

// WithPoolSize sets how many connections the client keeps per node
// (primary and each replica). Checkout blocks when all are busy.
func WithPoolSize(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithReplicas adds read replica addresses. Idempotent reads (Get, MGet,
// GGet, GMGet, TTL) are load-balanced across them and fall back to the
// primary when none is reachable (Scan pins to one replica per
// iteration); writes and GDPR rights operations always go to the
// primary.
func WithReplicas(addrs ...string) Option {
	return func(c *config) { c.replicas = append(c.replicas, addrs...) }
}

// WithCluster enables cluster-aware routing. The client bootstraps the
// slot map with CLUSTER SLOTS from Dial's addr (falling back to the given
// extra seeds), keeps one connection pool per primary, routes every
// key-addressed call to the slot owner — hash-tag aware, so
// "pd:{alice}:email" routes with "alice" — and splits MSet/MGet/
// GMPut/GMGet batches per slot before reassembling replies in order.
// MOVED redirects are followed transparently within a bounded budget
// (DefaultRedirectBudget), each one refreshing the slot map. Cluster mode
// excludes WithReplicas: every node is a primary for its slots.
func WithCluster(seeds ...string) Option {
	return func(c *config) {
		c.clusterMode = true
		c.clusterSeeds = append(c.clusterSeeds, seeds...)
	}
}

// WithRedirectBudget overrides how many MOVED redirects one cluster call
// may follow (minimum 1 redirect; only meaningful with WithCluster).
func WithRedirectBudget(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.redirectBudget = n
		}
	}
}

// WithAutoBatch turns on implicit micro-batching: concurrent Get, GGet,
// Set, and GPut calls landing within window of each other (or the first
// maxOps of them, whichever fills first) are coalesced into a single
// MGET/GMGET/MSET/GMPUT command and the reply is redistributed
// positionally — existing scalar callers get amortised round trips with
// zero code change. GPut calls coalesce only with calls sharing an
// identical option set (a GMPUT carries one metadata set). In cluster
// mode the coalesced batch is split per slot and reassembled, exactly
// like the explicit batch helpers.
//
// Semantics preserved per call: each caller still receives its own value
// and typed error; a caller's context bounds its wait, but cancelling one
// caller never fails the batch for the others (the flush runs under the
// client's I/O timeout). Writes accepted before Close are flushed by
// Close.
//
// window <= 0 selects DefaultAutoBatchWindow; maxOps <= 0 selects
// DefaultAutoBatchMaxOps. Latency trade-off: a lone call pays up to one
// window of extra latency waiting for company — size the window well
// below your round-trip time.
func WithAutoBatch(window time.Duration, maxOps int) Option {
	return func(c *config) {
		if window <= 0 {
			window = DefaultAutoBatchWindow
		}
		if maxOps <= 0 {
			maxOps = DefaultAutoBatchMaxOps
		}
		c.autoBatchWindow = window
		c.autoBatchMaxOps = maxOps
	}
}

// WithRetry bounds connection-failure retries for idempotent reads:
// attempts is the total number of nodes tried per read (minimum 1),
// backoff the pause between tries. Error replies from the server are
// never retried — only dial and I/O failures are. Writes never retry.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(c *config) {
		if attempts > 0 {
			c.retryAttempts = attempts
		}
		if backoff >= 0 {
			c.retryBackoff = backoff
		}
	}
}
