package gdprkv

import (
	"context"
	"strconv"
	"sync"

	"gdprstore/internal/cluster"
	"gdprstore/internal/resp"
)

// Pipeline queues commands client-side and submits them in one shot:
// Exec checks out one connection per target node, writes every queued
// command, flushes once, and reads the replies back in order. An N-op
// pipeline therefore pays ~1 round trip instead of N — the server already
// coalesces its reply flushes per drained read buffer, so the whole
// exchange is two wire transfers.
//
// The queue methods mirror the Client's scalar surface but never touch
// the network; they return the Pipeline for chaining. Results come back
// positionally from Exec: result i belongs to the i-th queued command,
// and an error reply in the middle occupies its own slot without
// desyncing later replies (RESP replies are strictly ordered — an error
// is just a reply).
//
// A Pipeline is NOT safe for concurrent use; build and Exec it from one
// goroutine. For transparent cross-goroutine coalescing use WithAutoBatch
// instead. See DESIGN.md §12.
type Pipeline struct {
	c   *Client
	ops []pipeOp
}

// pipeOp is one queued command: its routing key (empty for un-keyed
// commands, which target the primary/default node) and raw arguments.
type pipeOp struct {
	key  string
	args [][]byte
	// nullIsMiss maps a null reply to ErrNotFound (Get/GGet semantics).
	nullIsMiss bool
}

// PipeResult is one positional outcome of Pipeline.Exec: the decoded
// reply and its typed error. Err carries the same taxonomy the scalar
// methods produce — *ServerError matching sentinels under errors.Is,
// ErrNotFound for a missing key on Get/GGet, or a transport error when
// the node's exchange failed.
type PipeResult struct {
	Value resp.Value
	Err   error
}

// Bytes returns the reply payload for value-shaped results (Get, GGet).
func (r PipeResult) Bytes() ([]byte, error) {
	if r.Err != nil {
		return nil, r.Err
	}
	return r.Value.Str, nil
}

// Int returns the reply for integer-shaped results (Del, Expire, TTL).
func (r PipeResult) Int() (int64, error) {
	if r.Err != nil {
		return 0, r.Err
	}
	return r.Value.Int, nil
}

// Pipeline returns an empty pipeline bound to the client. Exec routes
// each queued command like its scalar twin would in cluster mode (slot
// owner per key, grouped per node); on a non-cluster client the whole
// pipeline runs on the primary over a single connection.
func (c *Client) Pipeline() *Pipeline {
	return &Pipeline{c: c}
}

// Len reports how many commands are queued.
func (p *Pipeline) Len() int { return len(p.ops) }

func (p *Pipeline) queue(key string, nullIsMiss bool, args ...[]byte) *Pipeline {
	p.ops = append(p.ops, pipeOp{key: key, args: args, nullIsMiss: nullIsMiss})
	return p
}

// Get queues a GET; the result maps a null reply to ErrNotFound.
func (p *Pipeline) Get(key string) *Pipeline {
	return p.queue(key, true, cmdGET, []byte(key))
}

// Set queues a SET.
func (p *Pipeline) Set(key string, value []byte) *Pipeline {
	return p.queue(key, false, cmdSET, []byte(key), value)
}

// SetEX queues a SET with a TTL in seconds.
func (p *Pipeline) SetEX(key string, value []byte, seconds int64) *Pipeline {
	return p.queue(key, false, cmdSET, []byte(key), value, cmdEX,
		[]byte(strconv.FormatInt(seconds, 10)))
}

// Del queues a DEL. In cluster mode the keys must share a slot (the
// server rejects mixed-slot batches with CROSSSLOT); routing follows the
// first key.
func (p *Pipeline) Del(keys ...string) *Pipeline {
	a := make([][]byte, 0, len(keys)+1)
	a = append(a, cmdDEL)
	for _, k := range keys {
		a = append(a, []byte(k))
	}
	routeKey := ""
	if len(keys) > 0 {
		routeKey = keys[0]
	}
	return p.queue(routeKey, false, a...)
}

// Expire queues an EXPIRE (result Int is 1 when the key existed).
func (p *Pipeline) Expire(key string, seconds int64) *Pipeline {
	return p.queue(key, false, cmdEXPIRE, []byte(key), []byte(strconv.FormatInt(seconds, 10)))
}

// TTL queues a TTL (result Int is -1 no TTL, -2 missing).
func (p *Pipeline) TTL(key string) *Pipeline {
	return p.queue(key, false, cmdTTL, []byte(key))
}

// GPut queues a GPUT carrying the record's GDPR metadata.
func (p *Pipeline) GPut(key string, value []byte, opts PutOptions) *Pipeline {
	a := make([][]byte, 0, 3+14)
	a = append(a, cmdGPUT, []byte(key), value)
	a = append(a, opts.optionArgs()...)
	return p.queue(key, false, a...)
}

// GGet queues a GGET; the result maps a null reply to ErrNotFound.
func (p *Pipeline) GGet(key string) *Pipeline {
	return p.queue(key, true, cmdGGET, []byte(key))
}

// GDel queues a GDEL.
func (p *Pipeline) GDel(key string) *Pipeline {
	return p.queue(key, false, cmdGDEL, []byte(key))
}

// Do queues an arbitrary command verbatim. Un-keyed from the router's
// point of view: it targets the primary (the default node in cluster
// mode), exactly like Client.Do.
func (p *Pipeline) Do(cmd ...string) *Pipeline {
	a := make([][]byte, len(cmd))
	for i, s := range cmd {
		a[i] = []byte(s)
	}
	return p.queue("", false, a...)
}

// Exec submits the queued commands and returns one PipeResult per
// command, positionally. The returned error is nil unless a node's
// exchange failed at the transport level (dial, pool checkout, I/O,
// cancellation) — in that case every result of that node still carries
// the error in its slot and the first such error is also returned, so
// `res, err := p.Exec(ctx); if err != nil` keeps working for callers who
// don't inspect slots. Server error replies (DENIED, CROSSSLOT, ...) are
// per-slot only and never fail the pipeline.
//
// In cluster mode the queue is split per target node (preserving relative
// order per node; the positional mapping is restored in the result), the
// node exchanges run concurrently, and any op answered with MOVED is
// transparently retried against the redirect target after a slot-map
// refresh — a pipeline spanning a live slot migration completes with
// correct positional results.
//
// Exec drains the queue: the pipeline is empty afterwards and can be
// reused.
func (p *Pipeline) Exec(ctx context.Context) ([]PipeResult, error) {
	ops := p.ops
	p.ops = nil
	if len(ops) == 0 {
		return nil, nil
	}
	c := p.c
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.stats.pipelineExecs.Add(1)
	c.stats.pipelineOps.Add(uint64(len(ops)))
	results := make([]PipeResult, len(ops))

	if c.cl == nil {
		err := c.execOnPool(ctx, c.primary, ops, results, identityIdx(len(ops)))
		return results, err
	}

	// Cluster: bucket op indices per target node, preserving order.
	byAddr := make(map[string][]int)
	var order []string
	for i, op := range ops {
		addr := c.cl.defaultNode()
		if op.key != "" {
			addr = c.cl.addrForSlot(cluster.Slot(op.key))
		}
		if _, ok := byAddr[addr]; !ok {
			order = append(order, addr)
		}
		byAddr[addr] = append(byAddr[addr], i)
	}
	errs := make([]error, len(order))
	if len(order) == 1 {
		idxs := byAddr[order[0]]
		p0, err := c.cl.poolFor(order[0])
		if err == nil {
			err = c.execOnPool(ctx, p0, ops, results, idxs)
		} else {
			for _, i := range idxs {
				results[i].Err = err
			}
		}
		errs[0] = err
	} else {
		var wg sync.WaitGroup
		for gi, addr := range order {
			gi, addr := gi, addr
			wg.Add(1)
			go func() {
				defer wg.Done()
				idxs := byAddr[addr]
				pl, err := c.cl.poolFor(addr)
				if err == nil {
					err = c.execOnPool(ctx, pl, ops, results, idxs)
				} else {
					for _, i := range idxs {
						results[i].Err = err
					}
				}
				errs[gi] = err
			}()
		}
		wg.Wait()
	}

	// Follow MOVED and ASK answers individually: the slot map was stale
	// (or mid-migration) for those keys. doCluster refreshes the map on
	// MOVED and performs the ASKING handshake on ASK, retrying within the
	// redirect budget, so one migration costs one extra hop, not a failed
	// pipeline.
	for i := range results {
		if target, moved := parseRedirect(results[i].Err, "MOVED"); moved {
			c.stats.redirects.Add(1)
			c.refreshSlots(ctx, target)
			v, err := c.doCluster(ctx, target, ops[i].args)
			results[i] = decodeResult(v, err, ops[i].nullIsMiss)
		} else if target, isAsk := parseRedirect(results[i].Err, "ASK"); isAsk {
			c.stats.asks.Add(1)
			v, err := c.doAsk(ctx, target, ops[i].args)
			results[i] = decodeResult(v, err, ops[i].nullIsMiss)
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// execOnPool runs the ops selected by idxs over one connection of pl:
// checkout, write all, flush once, read in order, decode into results.
// A transport failure fills every not-yet-decoded slot of this node with
// the error; the conn is already marked broken by doMulti, so the pool
// discards it instead of handing desynced replies to the next caller.
func (c *Client) execOnPool(ctx context.Context, pl *pool, ops []pipeOp, results []PipeResult, idxs []int) error {
	cn, err := pl.get(ctx)
	if err != nil {
		for _, i := range idxs {
			results[i].Err = err
		}
		return err
	}
	cmds := make([][][]byte, len(idxs))
	for j, i := range idxs {
		cmds[j] = ops[i].args
	}
	vs, err := cn.doMulti(ctx, c.cfg.ioTimeout, cmds)
	pl.put(cn)
	for j, i := range idxs {
		if j < len(vs) {
			results[i] = decodeResult(vs[j], nil, ops[i].nullIsMiss)
		} else {
			results[i].Err = err
		}
	}
	return err
}

// decodeResult turns one raw reply (or transport error) into a PipeResult
// using the same error taxonomy as the scalar methods.
func decodeResult(v resp.Value, err error, nullIsMiss bool) PipeResult {
	switch {
	case err != nil:
		return PipeResult{Err: err}
	case v.IsError():
		return PipeResult{Value: v, Err: wireError(v.Text())}
	case nullIsMiss && v.Null:
		return PipeResult{Value: v, Err: ErrNotFound}
	default:
		return PipeResult{Value: v}
	}
}

// identityIdx returns [0, 1, ..., n-1] — the standalone case where the
// whole pipeline is one node group.
func identityIdx(n int) []int {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}
