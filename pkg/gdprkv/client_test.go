package gdprkv_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/replica"
	"gdprstore/internal/resp"
	"gdprstore/internal/server"
	"gdprstore/internal/testutil"
	"gdprstore/pkg/gdprkv"
)

const wait = 10 * time.Second

func ctxb() context.Context { return context.Background() }

// startServer boots one server over a fresh store.
func startServer(t *testing.T, cfg core.Config) (*server.Server, *core.Store) {
	t.Helper()
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, st
}

// cluster is a primary with two attached read replicas.
type cluster struct {
	psrv   *server.Server
	pst    *core.Store
	rsrvs  []*server.Server
	rstors []*core.Store
}

func (c *cluster) replicaAddrs() []string {
	out := make([]string, len(c.rsrvs))
	for i, s := range c.rsrvs {
		out[i] = s.Addr()
	}
	return out
}

// startCluster boots a compliant primary and n replicas attached over
// real TCP (REPLCONF/PSYNC handshake, full sync, live stream).
func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	cfg := core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true}
	psrv, pst := startServer(t, cfg)
	c := &cluster{psrv: psrv, pst: pst}
	for i := 0; i < n; i++ {
		rsrv, rst := startServer(t, cfg)
		rsrv.ReplicaOf(psrv.Addr(), replica.NodeOptions{})
		c.rsrvs = append(c.rsrvs, rsrv)
		c.rstors = append(c.rstors, rst)
	}
	for _, rsrv := range c.rsrvs {
		rsrv := rsrv
		testutil.Eventually(t, wait, 0, func() bool {
			nd := rsrv.ReplNode()
			return nd != nil && nd.Status().Link == replica.LinkUp
		}, "replica link never came up")
	}
	return c
}

// dial wraps gdprkv.Dial with test cleanup.
func dial(t *testing.T, addr string, opts ...gdprkv.Option) *gdprkv.Client {
	t.Helper()
	c, err := gdprkv.Dial(ctxb(), addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// --- typed errors over the wire ---

func TestTypedErrorsEndToEnd(t *testing.T) {
	srv, st := startServer(t, core.Config{
		Compliant: true, Capability: core.CapabilityFull, AuditEnabled: true,
	})
	st.ACL().AddPrincipal(acl.Principal{ID: "app", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})

	app := dial(t, srv.Addr(), gdprkv.WithActor("app"), gdprkv.WithPurpose("ads"))

	// Missing key → ErrNotFound, through GGet and Get alike.
	if _, err := app.GGet(ctxb(), "absent"); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("GGet(absent) = %v, want ErrNotFound", err)
	}
	if _, err := app.Get(ctxb(), "absent"); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}

	// A write without an owner violates policy.
	err := app.GPut(ctxb(), "k", []byte("v"), gdprkv.PutOptions{Purposes: []string{"ads"}, TTL: time.Hour})
	if !errors.Is(err, gdprkv.ErrPolicy) {
		t.Fatalf("ownerless GPut = %v, want ErrPolicy", err)
	}

	// A proper write succeeds; reading it under a non-consented purpose
	// is a purpose-limitation rejection.
	if err := app.GPut(ctxb(), "user:alice:email", []byte("a@ex.org"),
		gdprkv.PutOptions{Owner: "alice", Purposes: []string{"ads"}, TTL: time.Hour}); err != nil {
		t.Fatal(err)
	}
	marketing := dial(t, srv.Addr(), gdprkv.WithActor("app"), gdprkv.WithPurpose("telemetry"))
	if _, err := marketing.GGet(ctxb(), "user:alice:email"); !errors.Is(err, gdprkv.ErrBadPurpose) {
		t.Fatalf("off-purpose GGet = %v, want ErrBadPurpose", err)
	}

	// Unauthenticated GDPR commands are denied under an enforcing ACL.
	anon := dial(t, srv.Addr())
	if _, err := anon.GGet(ctxb(), "user:alice:email"); !errors.Is(err, gdprkv.ErrDenied) {
		t.Fatalf("unauthenticated GGet = %v, want ErrDenied", err)
	}

	// The decoded *ServerError preserves the wire code and message.
	var se *gdprkv.ServerError
	if _, err := anon.GGet(ctxb(), "user:alice:email"); !errors.As(err, &se) || se.Code != "DENIED" {
		t.Fatalf("err = %v, want *ServerError with code DENIED", err)
	}

	// Per-key errors inside a GMGET batch decode through the same mapper.
	batch, err := app.GMGet(ctxb(), "user:alice:email", "absent")
	if err != nil {
		t.Fatal(err)
	}
	if string(batch[0].Value) != "a@ex.org" {
		t.Fatalf("batch[0] = %q", batch[0].Value)
	}
	if !errors.Is(batch[1].Err, gdprkv.ErrNotFound) {
		t.Fatalf("batch[1].Err = %v, want ErrNotFound", batch[1].Err)
	}
}

func TestBaselineAndReadOnlyErrors(t *testing.T) {
	bsrv, _ := startServer(t, core.Baseline())
	bc := dial(t, bsrv.Addr())
	err := bc.GPut(ctxb(), "k", []byte("v"), gdprkv.PutOptions{Owner: "o"})
	if !errors.Is(err, gdprkv.ErrBaseline) {
		t.Fatalf("GPUT on baseline store = %v, want ErrBaseline", err)
	}

	c := startCluster(t, 1)
	rc := dial(t, c.rsrvs[0].Addr())
	if err := rc.Set(ctxb(), "k", []byte("v")); !errors.Is(err, gdprkv.ErrReadOnly) {
		t.Fatalf("write on replica = %v, want ErrReadOnly", err)
	}
}

// --- deadlines ---

// TestDeadServerDoesNotHang dials a black hole — a listener that accepts
// and never replies — and asserts both the context deadline and the
// default I/O timeout bound the call instead of hanging forever.
func TestDeadServerDoesNotHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold open, never reply
		}
	}()

	// Context deadline governs when it is the earlier bound.
	ctx, cancel := context.WithTimeout(ctxb(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = gdprkv.Dial(ctx, ln.Addr().String())
	if err == nil {
		t.Fatal("dial against a black hole succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("call took %v despite a 200ms context deadline", e)
	}

	// With no context deadline, the default I/O timeout is the floor.
	start = time.Now()
	_, err = gdprkv.Dial(ctxb(), ln.Addr().String(), gdprkv.WithIOTimeout(200*time.Millisecond))
	if err == nil {
		t.Fatal("dial against a black hole succeeded")
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("call took %v despite a 200ms I/O timeout", e)
	}
}

// --- replica-aware routing ---

// ggetCalls parses cmdstat_<name>:calls=N from a node's INFO commandstats.
func cmdCalls(t *testing.T, addr, cmd string) int {
	t.Helper()
	c := dial(t, addr)
	info, err := c.Info(ctxb(), "commandstats")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(info, "\r\n") {
		if rest, ok := strings.CutPrefix(line, "cmdstat_"+cmd+":calls="); ok {
			n, err := strconv.Atoi(strings.SplitN(rest, ",", 2)[0])
			if err != nil {
				t.Fatalf("bad commandstats line %q: %v", line, err)
			}
			return n
		}
	}
	return 0
}

func TestReplicaRoutingServesReadsFromReplicas(t *testing.T) {
	cl := startCluster(t, 2)
	c := dial(t, cl.psrv.Addr(),
		gdprkv.WithPoolSize(2), gdprkv.WithReplicas(cl.replicaAddrs()...))

	// Writes and rights operations go to the primary.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("user:alice:doc%d", i)
		if err := c.GPut(ctxb(), key, []byte("v"+strconv.Itoa(i)),
			gdprkv.PutOptions{Owner: "alice", Purposes: []string{"svc"}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, rst := range cl.rstors {
		rst := rst
		testutil.Eventually(t, wait, 0, func() bool {
			return rst.Engine().Exists("user:alice:doc3")
		}, "write did not replicate")
	}

	// Reads load-balance across the replicas, never touching the primary.
	const reads = 10
	for i := 0; i < reads; i++ {
		v, err := c.GGet(ctxb(), fmt.Sprintf("user:alice:doc%d", i%4))
		if err != nil {
			t.Fatal(err)
		}
		if want := "v" + strconv.Itoa(i%4); string(v) != want {
			t.Fatalf("GGet = %q, want %q", v, want)
		}
	}

	// Per-node INFO counters prove where each command ran.
	if n := cmdCalls(t, cl.psrv.Addr(), "gget"); n != 0 {
		t.Fatalf("primary served %d GGETs, want 0", n)
	}
	r0 := cmdCalls(t, cl.rsrvs[0].Addr(), "gget")
	r1 := cmdCalls(t, cl.rsrvs[1].Addr(), "gget")
	if r0+r1 != reads {
		t.Fatalf("replicas served %d+%d GGETs, want %d", r0, r1, reads)
	}
	if r0 == 0 || r1 == 0 {
		t.Fatalf("round robin skipped a replica: %d / %d", r0, r1)
	}
	if n := cmdCalls(t, cl.psrv.Addr(), "gput"); n != 4 {
		t.Fatalf("primary served %d GPUTs, want 4", n)
	}
	for i, rsrv := range cl.rsrvs {
		if n := cmdCalls(t, rsrv.Addr(), "gput"); n != 0 {
			t.Fatalf("replica %d served %d GPUTs, want 0", i, n)
		}
	}

	// FORGETUSER is a rights operation: primary only, and the erasure
	// still reaches every replica through the stream.
	if n, err := c.ForgetUser(ctxb(), "alice"); err != nil || n != 4 {
		t.Fatalf("ForgetUser = %d, %v", n, err)
	}
	if n := cmdCalls(t, cl.psrv.Addr(), "forgetuser"); n != 1 {
		t.Fatalf("primary served %d FORGETUSERs, want 1", n)
	}
	for _, rst := range cl.rstors {
		rst := rst
		testutil.Eventually(t, wait, 0, func() bool {
			return !rst.Engine().Exists("user:alice:doc0")
		}, "erasure did not reach a replica")
	}

	st := c.Stats()
	if st.ReplicaReads != reads || st.PrimaryReads != 0 {
		t.Fatalf("stats = %+v, want %d replica reads and 0 primary reads", st, reads)
	}
}

// TestScanPinsToOneNode asserts a client's whole Scan iteration runs on
// a single node: cursors are positions into one node's sorted keyspace
// and are not portable between nodes under replication lag.
func TestScanPinsToOneNode(t *testing.T) {
	cl := startCluster(t, 2)
	c := dial(t, cl.psrv.Addr(), gdprkv.WithReplicas(cl.replicaAddrs()...))
	for i := 0; i < 8; i++ {
		if err := c.Set(ctxb(), fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, rst := range cl.rstors {
		rst := rst
		testutil.Eventually(t, wait, 0, func() bool { return rst.Engine().Exists("k7") }, "replication")
	}

	var keys []string
	cursor := uint64(0)
	for {
		page, next, err := c.Scan(ctxb(), cursor, "k*", 3)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, page...)
		if next == 0 {
			break
		}
		cursor = next
	}
	if len(keys) < 8 {
		t.Fatalf("scan returned %d keys, want >= 8", len(keys))
	}
	// Every SCAN call landed on the pinned replica; none leaked to the
	// other replica or the primary mid-iteration.
	if n := cmdCalls(t, cl.rsrvs[0].Addr(), "scan"); n < 3 {
		t.Fatalf("pinned replica served %d SCANs, want the whole iteration (>= 3)", n)
	}
	if n := cmdCalls(t, cl.rsrvs[1].Addr(), "scan"); n != 0 {
		t.Fatalf("second replica served %d SCANs, want 0", n)
	}
	if n := cmdCalls(t, cl.psrv.Addr(), "scan"); n != 0 {
		t.Fatalf("primary served %d SCANs, want 0", n)
	}
}

func TestReplicaRoutingFallsBackToPrimary(t *testing.T) {
	srv, _ := startServer(t, core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true})

	// Two dead replica addresses: ports that were live once and closed.
	dead := make([]string, 2)
	for i := range dead {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead[i] = ln.Addr().String()
		ln.Close()
	}

	c := dial(t, srv.Addr(), gdprkv.WithReplicas(dead...),
		gdprkv.WithRetry(3, time.Millisecond))
	if err := c.Set(ctxb(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctxb(), "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get through fallback = %q, %v", v, err)
	}
	st := c.Stats()
	if st.PrimaryReads == 0 {
		t.Fatalf("stats = %+v, want primary fallback reads", st)
	}
	if st.Retries == 0 {
		t.Fatalf("stats = %+v, want recorded retries", st)
	}
}

// --- pool behaviour ---

// blockOn installs a command hook that parks the named command on a
// channel, keeping its connection busy server-side until released.
// entered receives one token per parked call.
func blockOn(srv *server.Server, cmd, key string) (entered chan struct{}, release func()) {
	block := make(chan struct{})
	entered = make(chan struct{}, 16)
	srv.SetCommandHook(func(name string, args [][]byte, _ resp.Value, _ time.Duration) {
		if name == cmd && len(args) > 0 && string(args[0]) == key {
			entered <- struct{}{}
			<-block
		}
	})
	var once sync.Once
	return entered, func() { once.Do(func() { close(block) }) }
}

func TestPoolExhaustionBlocksUntilCheckinOrCancel(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	entered, release := blockOn(srv, "GET", "slow")
	defer release()

	c := dial(t, srv.Addr(), gdprkv.WithPoolSize(1))
	if err := c.Set(ctxb(), "slow", []byte("x")); err != nil {
		t.Fatal(err)
	}

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Get(ctxb(), "slow") // holds the pool's only conn
		slowDone <- err
	}()
	// Wait until the slow call owns the connection (the server parked it).
	<-entered

	// Exhausted pool: checkout blocks, then honours ctx cancellation.
	ctx, cancel := context.WithTimeout(ctxb(), 150*time.Millisecond)
	defer cancel()
	if _, err := c.Get(ctx, "slow2"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked checkout = %v, want context.DeadlineExceeded", err)
	}

	// A blocked checkout with room to wait proceeds once the conn is
	// checked back in.
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Get(ctxb(), "k2")
		waiterDone <- err
	}()
	release()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
	if err := <-waiterDone; !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("waiter after checkin = %v, want ErrNotFound", err)
	}
}

func TestBrokenConnectionsAreEvictedAndRedialed(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	_, release := blockOn(srv, "GET", "slow")
	defer release()

	c := dial(t, srv.Addr(), gdprkv.WithPoolSize(1))
	if err := c.Set(ctxb(), "slow", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Time out a call mid-flight: its connection is now broken (a late
	// reply would desynchronise the stream) and must be evicted.
	ctx, cancel := context.WithTimeout(ctxb(), 150*time.Millisecond)
	defer cancel()
	if _, err := c.Get(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out call = %v, want context.DeadlineExceeded", err)
	}
	release()

	// The next call transparently redials a fresh connection.
	v, err := c.Get(ctxb(), "slow")
	if err != nil || string(v) != "x" {
		t.Fatalf("call after eviction = %q, %v", v, err)
	}
	if st := c.Stats(); st.Redials == 0 {
		t.Fatalf("stats = %+v, want a recorded redial", st)
	}
}

// --- concurrency guarantee ---

// TestConcurrentClientsDoNotInterleave hammers one shared pooled client
// from many goroutines and asserts every reply matches its request — the
// guarantee the unpooled internal/client could not make. Run with -race.
func TestConcurrentClientsDoNotInterleave(t *testing.T) {
	cl := startCluster(t, 2)
	c := dial(t, cl.psrv.Addr(),
		gdprkv.WithPoolSize(4), gdprkv.WithReplicas(cl.replicaAddrs()...))

	const goroutines = 8
	const opsEach = 40
	// Seed the dataset and let it replicate so replica-routed reads hit.
	for g := 0; g < goroutines; g++ {
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("g%d:k%d", g, i)
			if err := c.Set(ctxb(), key, []byte(key+":val")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, rst := range cl.rstors {
		rst := rst
		testutil.Eventually(t, wait, 0, func() bool {
			return rst.Engine().Exists(fmt.Sprintf("g%d:k%d", goroutines-1, 3))
		}, "seed data did not replicate")
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("g%d:k%d", g, i%4)
				want := key + ":val"
				switch i % 3 {
				case 0:
					v, err := c.Get(ctxb(), key)
					if err != nil || string(v) != want {
						errs <- fmt.Errorf("Get(%s) = %q, %v", key, v, err)
						return
					}
				case 1:
					vs, err := c.MGet(ctxb(), key)
					if err != nil || len(vs) != 1 || string(vs[0]) != want {
						errs <- fmt.Errorf("MGet(%s) = %v, %v", key, vs, err)
						return
					}
				case 2:
					if err := c.Set(ctxb(), key, []byte(want)); err != nil {
						errs <- fmt.Errorf("Set(%s): %v", key, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClosedClientRefusesCalls(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c, err := gdprkv.Dial(ctxb(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Get(ctxb(), "k"); !errors.Is(err, gdprkv.ErrClosed) {
		t.Fatalf("Get on closed client = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
