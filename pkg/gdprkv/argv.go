package gdprkv

import "sync"

// Pre-rendered command names for the hot scalar paths, so building an
// argument vector never re-converts a constant string per call.
var (
	cmdGET    = []byte("GET")
	cmdSET    = []byte("SET")
	cmdEX     = []byte("EX")
	cmdDEL    = []byte("DEL")
	cmdTTL    = []byte("TTL")
	cmdEXPIRE = []byte("EXPIRE")
	cmdGPUT   = []byte("GPUT")
	cmdGGET   = []byte("GGET")
	cmdGDEL   = []byte("GDEL")
)

// argvBox is a reusable [][]byte argument vector. The hot scalar commands
// (Get/Set/GGet/GPut/...) check one out, build their command in place,
// run the call, and return it — the per-call slice-header allocation
// conn.do used to force is gone. Safe because the write path consumes the
// arguments before the routed call returns; nothing retains them.
type argvBox struct{ a [][]byte }

var argvPool = sync.Pool{
	New: func() any { return &argvBox{a: make([][]byte, 0, 12)} },
}

func argvGet() *argvBox { return argvPool.Get().(*argvBox) }

func argvPut(b *argvBox) {
	// Drop the element references so a pooled vector cannot pin caller
	// payloads (values can be large) past the call that used them.
	for i := range b.a {
		b.a[i] = nil
	}
	b.a = b.a[:0]
	argvPool.Put(b)
}
