package gdprkv

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// pool is a fixed-capacity connection pool for one node. Capacity is
// modelled as poolSize slot tokens: a caller either reuses an idle conn
// or spends a slot to dial a fresh one; returning (or discarding) a conn
// returns its slot. Checkout blocks when every slot is in use, until a
// conn is checked in or the caller's context is done.
type pool struct {
	addr string
	cfg  *config

	// idle holds healthy checked-in conns; slots holds dial permits.
	// idle length + busy conns + slots length == poolSize, always.
	idle  chan *conn
	slots chan struct{}

	closed atomic.Bool
	// mu guards the drain in close against concurrent checkins.
	mu sync.Mutex

	// redials counts health-check evictions and broken-conn replacements,
	// surfaced through Client.Stats.
	redials *atomic.Uint64
}

func newPool(addr string, cfg *config, redials *atomic.Uint64) *pool {
	p := &pool{
		addr:    addr,
		cfg:     cfg,
		idle:    make(chan *conn, cfg.poolSize),
		slots:   make(chan struct{}, cfg.poolSize),
		redials: redials,
	}
	for i := 0; i < cfg.poolSize; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// get checks out one healthy connection: an idle one (health-checked if
// it sat unused past the health interval), or a freshly dialed one when
// a slot is free. With all slots busy it blocks until a checkin or
// ctx.Done.
func (p *pool) get(ctx context.Context) (*conn, error) {
	for {
		if p.closed.Load() {
			return nil, ErrClosed
		}
		select {
		case c := <-p.idle:
			if c := p.vet(c); c != nil {
				return c, nil
			}
			continue // evicted; its slot is free for the dial branch
		default:
		}
		select {
		case c := <-p.idle:
			if c := p.vet(c); c != nil {
				return c, nil
			}
		case <-p.slots:
			c, err := dialConn(ctx, p.addr, p.cfg)
			if err != nil {
				p.slots <- struct{}{}
				return nil, err
			}
			if p.closed.Load() {
				c.close()
				p.slots <- struct{}{}
				return nil, ErrClosed
			}
			return c, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// vet health-checks an idle conn at checkout: broken conns and conns
// that fail the idle PING are closed and their slot freed (the caller
// loops and redials). Returns nil when the conn was evicted.
func (p *pool) vet(c *conn) *conn {
	if !c.broken && time.Since(c.idleSince) >= p.cfg.healthInterval {
		probe := p.cfg.ioTimeout
		if probe > time.Second {
			probe = time.Second
		}
		if !c.ping(probe) {
			c.broken = true
		}
	}
	if c.broken {
		c.close()
		p.slots <- struct{}{}
		p.redials.Add(1)
		return nil
	}
	return c
}

// put checks a connection back in. Broken conns are closed and their
// slot freed so the next checkout redials.
func (p *pool) put(c *conn) {
	if c.broken || p.closed.Load() {
		c.close()
		p.slots <- struct{}{}
		if c.broken {
			p.redials.Add(1)
		}
		// A post-close checkin still drains: close() already emptied idle,
		// and this conn was not in it.
		return
	}
	c.idleSince = time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() { // closed between the check above and the lock
		c.close()
		p.slots <- struct{}{}
		return
	}
	p.idle <- c // never blocks: idle capacity == poolSize
}

// close marks the pool closed and closes every idle conn. Checked-out
// conns are closed as they are checked in.
func (p *pool) close() {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		select {
		case c := <-p.idle:
			c.close()
			p.slots <- struct{}{}
		default:
			return
		}
	}
}
