package gdprkv_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/pkg/gdprkv"
)

// --- explicit pipelining ---

func TestPipelineBasicPositionalResults(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c := dial(t, srv.Addr())

	p := c.Pipeline()
	p.Set("a", []byte("1")).Set("b", []byte("2")).Get("a").Get("b").
		Del("a").TTL("b").Get("a")
	if p.Len() != 7 {
		t.Fatalf("Len = %d, want 7", p.Len())
	}
	res, err := p.Exec(ctxb())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("len(res) = %d, want 7", len(res))
	}
	if v, err := res[2].Bytes(); err != nil || string(v) != "1" {
		t.Fatalf("res[2] = %q, %v", v, err)
	}
	if v, err := res[3].Bytes(); err != nil || string(v) != "2" {
		t.Fatalf("res[3] = %q, %v", v, err)
	}
	if n, err := res[4].Int(); err != nil || n != 1 {
		t.Fatalf("res[4] DEL = %d, %v", n, err)
	}
	if n, err := res[5].Int(); err != nil || n != -1 {
		t.Fatalf("res[5] TTL = %d, %v", n, err)
	}
	// The deleted key reads as a miss, in its own slot.
	if !errors.Is(res[6].Err, gdprkv.ErrNotFound) {
		t.Fatalf("res[6].Err = %v, want ErrNotFound", res[6].Err)
	}
	// Exec drained the queue; the pipeline is reusable.
	if p.Len() != 0 {
		t.Fatalf("Len after Exec = %d, want 0", p.Len())
	}
	if res, err := p.Exec(ctxb()); err != nil || res != nil {
		t.Fatalf("empty Exec = %v, %v; want nil, nil", res, err)
	}
	st := c.Stats()
	if st.PipelineExecs != 1 || st.PipelineOps != 7 {
		t.Fatalf("stats execs=%d ops=%d, want 1/7", st.PipelineExecs, st.PipelineOps)
	}
}

// TestPipelineErrorInMiddleKeepsLaterReplies is the desync test: an error
// reply mid-pipeline must occupy exactly its own slot, with every later
// reply still mapped to the right command.
func TestPipelineErrorInMiddleKeepsLaterReplies(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c := dial(t, srv.Addr())

	res, err := c.Pipeline().
		Set("k1", []byte("v1")).
		Do("BOGUSCMD", "x"). // -ERR unknown command
		Get("missing").      // null -> ErrNotFound
		Do("EXPIRE", "k1").  // -ERR wrong number of arguments
		Get("k1").           // must still be v1, in slot 4
		Exec(ctxb())
	if err != nil {
		t.Fatalf("Exec returned transport error %v for server-side error replies", err)
	}
	if res[0].Err != nil {
		t.Fatalf("res[0].Err = %v", res[0].Err)
	}
	var se *gdprkv.ServerError
	if res[1].Err == nil || !errors.As(res[1].Err, &se) {
		t.Fatalf("res[1].Err = %v, want *ServerError", res[1].Err)
	}
	if !errors.Is(res[2].Err, gdprkv.ErrNotFound) {
		t.Fatalf("res[2].Err = %v, want ErrNotFound", res[2].Err)
	}
	if res[3].Err == nil {
		t.Fatal("res[3].Err = nil, want arity error")
	}
	if v, err := res[4].Bytes(); err != nil || string(v) != "v1" {
		t.Fatalf("res[4] = %q, %v — replies desynced after mid-pipeline errors", v, err)
	}
}

// stallServer answers exactly one command per connection (the dial-time
// PING) with +PONG, then swallows everything: commands written after that
// are read and never answered.
func stallServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 4096)
				if _, err := conn.Read(buf); err != nil {
					return
				}
				conn.Write([]byte("+PONG\r\n"))
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

// TestPipelineCancelledExecDiscardsConn cancels an Exec after its commands
// were written but before the replies arrive. The connection now has
// replies in flight that nobody will read — reusing it would desync every
// later caller — so the pool must discard it and redial.
func TestPipelineCancelledExecDiscardsConn(t *testing.T) {
	ln := stallServer(t)
	c := dial(t, ln.Addr().String(), gdprkv.WithPoolSize(1))

	ctx, cancel := context.WithTimeout(ctxb(), 150*time.Millisecond)
	defer cancel()
	res, err := c.Pipeline().Get("a").Get("b").Exec(ctx)
	if err == nil {
		t.Fatal("Exec against a stalled server succeeded")
	}
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("res[%d].Err = nil after abandoned exchange", i)
		}
	}

	// The next call must not inherit the abandoned connection: with pool
	// size 1, a reuse would read the stalled exchange's dead air. A redial
	// gets a fresh conn whose one free +PONG answers the ping.
	pingCtx, pingCancel := context.WithTimeout(ctxb(), 2*time.Second)
	defer pingCancel()
	if err := c.Ping(pingCtx); err != nil {
		t.Fatalf("ping after abandoned pipeline: %v (broken conn reused?)", err)
	}
	if st := c.Stats(); st.Redials == 0 {
		t.Fatal("no redial recorded: the abandoned conn was returned to the pool")
	}
}

// --- implicit micro-batching ---

func TestAutoBatchCoalescesAndPreservesPerCallResults(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c := dial(t, srv.Addr(), gdprkv.WithAutoBatch(2*time.Millisecond, 16))

	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Set(ctxb(), fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Set %d: %v", i, err)
		}
	}

	got := make([][]byte, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Get(ctxb(), fmt.Sprintf("k%02d", i))
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil || string(got[i]) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("Get %d = %q, %v — coalesced reply misrouted", i, got[i], errs[i])
		}
	}

	// A missing key still reports its own ErrNotFound through the batch.
	if _, err := c.Get(ctxb(), "nope"); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}

	st := c.Stats()
	if st.AutoBatchOps < 2*n {
		t.Fatalf("AutoBatchOps = %d, want >= %d", st.AutoBatchOps, 2*n)
	}
	if st.AutoBatchFlushes >= st.AutoBatchOps {
		t.Fatalf("flushes=%d ops=%d: nothing coalesced", st.AutoBatchFlushes, st.AutoBatchOps)
	}
}

func TestAutoBatchGDPRPathAndOptionIsolation(t *testing.T) {
	srv, st := startServer(t, core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true})
	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})
	st.ACL().AddPrincipal(acl.Principal{ID: "bob", Role: acl.RoleSubject})
	c := dial(t, srv.Addr(),
		gdprkv.WithActor("controller"), gdprkv.WithPurpose("service"),
		gdprkv.WithAutoBatch(2*time.Millisecond, 16))

	// Two distinct option sets written concurrently: coalescing must not
	// leak one group's metadata onto the other's records.
	optsA := gdprkv.PutOptions{Owner: "alice", Purposes: []string{"service"}}
	optsB := gdprkv.PutOptions{Owner: "bob", Purposes: []string{"service"}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := c.GPut(ctxb(), fmt.Sprintf("a%d", i), []byte("A"), optsA); err != nil {
				t.Errorf("GPut a%d: %v", i, err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := c.GPut(ctxb(), fmt.Sprintf("b%d", i), []byte("B"), optsB); err != nil {
				t.Errorf("GPut b%d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	// Right-of-access per owner proves no record carried the other
	// group's metadata: a cross-coalesced GPut would file a's record
	// under bob (or vice versa).
	for prefix, owner := range map[string]string{"a": "alice", "b": "bob"} {
		recs, err := c.GetUser(ctxb(), owner)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 8 {
			t.Fatalf("%s owns %d records, want 8 — option sets cross-coalesced", owner, len(recs))
		}
		for i := 0; i < 8; i++ {
			if _, ok := recs[fmt.Sprintf("%s%d", prefix, i)]; !ok {
				t.Fatalf("%s missing record %s%d", owner, prefix, i)
			}
		}
	}

	// GGet rides the coalesced path too.
	v, err := c.GGet(ctxb(), "a0")
	if err != nil || string(v) != "A" {
		t.Fatalf("GGet a0 = %q, %v", v, err)
	}
}

// TestAutoBatchCancelOneWaiterKeepsBatchAlive cancels one caller while its
// batch is still collecting: that caller gets its ctx error immediately,
// the batch still flushes, and the other caller gets its value.
func TestAutoBatchCancelOneWaiterKeepsBatchAlive(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c := dial(t, srv.Addr())
	if err := c.Set(ctxb(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cb := dial(t, srv.Addr(), gdprkv.WithAutoBatch(80*time.Millisecond, 64))

	cancelled, cancel := context.WithCancel(ctxb())
	var wg sync.WaitGroup
	var err1, err2 error
	var v2 []byte
	wg.Add(2)
	go func() { defer wg.Done(); _, err1 = cb.Get(cancelled, "k") }()
	go func() { defer wg.Done(); v2, err2 = cb.Get(ctxb(), "k") }()
	time.Sleep(20 * time.Millisecond) // both enqueued, window still open
	cancel()
	wg.Wait()
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err1)
	}
	if err2 != nil || string(v2) != "v" {
		t.Fatalf("surviving waiter = %q, %v — one cancellation failed the batch", v2, err2)
	}
}

// TestAutoBatchCloseFlushesAcceptedWrites proves a write accepted before
// Close is on the server after Close returns, even when its window never
// fired.
func TestAutoBatchCloseFlushesAcceptedWrites(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	cb := dial(t, srv.Addr(), gdprkv.WithAutoBatch(time.Hour, 1<<20))

	var setErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); setErr = cb.Set(ctxb(), "pending", []byte("flushed")) }()
	// Wait until the op is queued (the waiter blocks on the 1h window).
	deadline := time.Now().Add(2 * time.Second)
	for cb.Stats().AutoBatchOps == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := cb.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if setErr != nil {
		t.Fatalf("Set accepted before Close failed: %v", setErr)
	}

	c := dial(t, srv.Addr())
	v, err := c.Get(ctxb(), "pending")
	if err != nil || string(v) != "flushed" {
		t.Fatalf("Get after Close = %q, %v — accepted write was dropped", v, err)
	}
	// Post-close calls are refused, not queued forever.
	if err := cb.Set(ctxb(), "late", nil); !errors.Is(err, gdprkv.ErrClosed) {
		t.Fatalf("Set after Close = %v, want ErrClosed", err)
	}
}

// TestAutoBatchRaceStress hammers one coalescing client from many
// goroutines; run with -race this is the batcher's memory-model check.
func TestAutoBatchRaceStress(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c := dial(t, srv.Addr(), gdprkv.WithAutoBatch(200*time.Microsecond, 8))

	const workers, rounds = 16, 40
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("w%02d", w)
			for r := 0; r < rounds; r++ {
				want := []byte(fmt.Sprintf("%d:%d", w, r))
				if err := c.Set(ctxb(), key, want); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				got, err := c.Get(ctxb(), key)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("get %s = %q, %v; want %q", key, got, err, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
