package gdprkv

import (
	"context"
	"fmt"
	"net"
	"strconv"

	"gdprstore/internal/cluster"
)

// Topology is the epoch-stamped cluster slot map as one node sees it,
// fetched with Client.Topology. It is a snapshot — the cluster may move
// on (the Epoch of a later snapshot will be higher).
type Topology struct {
	// Epoch versions the view: operators bump it with every CLUSTER
	// SETSLOT/SETNODE mutation, and clients never downgrade to a lower
	// epoch than they have seen.
	Epoch uint64
	// Slots lists the contiguous slot ranges in ascending order; together
	// they cover every slot exactly once.
	Slots []SlotRange
}

// SlotRange is one contiguous run of slots with a single owner.
type SlotRange struct {
	// Start and End bound the range, inclusive.
	Start, End uint16
	// ID is the owning node's operator-chosen id (stable across
	// failovers).
	ID string
	// Addr is the owning node's current client-facing address.
	Addr string
	// Replicas are the addresses of the read-serving replicas attached to
	// the owner, the promotion candidates when it dies.
	Replicas []string
}

// Topology fetches the current epoch-stamped topology from the client's
// default node (any node answers; views can differ transiently while an
// operator rolls a mutation across the fleet). It requires a server in
// cluster mode, but works on clients dialed with or without WithCluster —
// an operator tool can inspect a node without adopting its routing.
func (c *Client) Topology(ctx context.Context) (Topology, error) {
	if c.closed.Load() {
		return Topology{}, ErrClosed
	}
	v, err := c.doPrimary(ctx, args("CLUSTER", "TOPOLOGY"))
	if err != nil {
		return Topology{}, err
	}
	if len(v.Array) < 2 {
		return Topology{}, fmt.Errorf("gdprkv: malformed CLUSTER TOPOLOGY reply")
	}
	t := Topology{Epoch: uint64(v.Array[0].Int)}
	for _, e := range v.Array[1].Array {
		if len(e.Array) < 3 || len(e.Array[2].Array) < 3 {
			return Topology{}, fmt.Errorf("gdprkv: malformed CLUSTER TOPOLOGY slot entry")
		}
		start, end := e.Array[0].Int, e.Array[1].Int
		if start < 0 || end < start || end >= cluster.NumSlots {
			return Topology{}, fmt.Errorf("gdprkv: CLUSTER TOPOLOGY range %d-%d out of bounds", start, end)
		}
		sr := SlotRange{
			Start: uint16(start),
			End:   uint16(end),
			ID:    e.Array[2].Array[2].Text(),
			Addr:  net.JoinHostPort(e.Array[2].Array[0].Text(), strconv.FormatInt(e.Array[2].Array[1].Int, 10)),
		}
		for _, rv := range e.Array[3:] {
			if len(rv.Array) >= 2 {
				sr.Replicas = append(sr.Replicas, joinAddrValue(rv))
			}
		}
		t.Slots = append(t.Slots, sr)
	}
	return t, nil
}
