package gdprkv

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"time"

	"gdprstore/internal/resp"
)

// conn is one established connection: the transport plus its RESP
// encoder/decoder. A conn is owned by exactly one caller at a time (the
// pool hands it out and takes it back), so it needs no internal locking.
type conn struct {
	nc net.Conn
	r  *resp.Reader
	w  *resp.Writer

	// broken marks the connection unusable after an I/O failure; the pool
	// evicts and redials instead of returning it to a caller.
	broken bool
	// idleSince is when the conn was last checked in; checkout pings
	// conns that sat idle past the health interval.
	idleSince time.Time
}

// dialConn establishes, secures, and handshakes one connection. The
// whole sequence (TCP dial, TLS handshake, AUTH, PURPOSE) is bounded by
// cfg.dialTimeout and by ctx.
func dialConn(ctx context.Context, addr string, cfg *config) (*conn, error) {
	dctx, cancel := context.WithTimeout(ctx, cfg.dialTimeout)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdprkv: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if cfg.tlsConfig != nil {
		tlsConn := tls.Client(nc, cfg.tlsConfig)
		if err := tlsConn.HandshakeContext(dctx); err != nil {
			nc.Close()
			return nil, fmt.Errorf("gdprkv: tls handshake %s: %w", addr, err)
		}
		nc = tlsConn
	}
	c := &conn{nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc), idleSince: time.Now()}
	// Session handshake: the pool's whole population speaks as one
	// authenticated principal under one declared purpose.
	if cfg.actor != "" {
		if err := c.expectOK(dctx, cfg.dialTimeout, "AUTH", cfg.actor); err != nil {
			c.close()
			return nil, fmt.Errorf("gdprkv: auth %s: %w", addr, err)
		}
	}
	if cfg.purpose != "" {
		if err := c.expectOK(dctx, cfg.dialTimeout, "PURPOSE", cfg.purpose); err != nil {
			c.close()
			return nil, fmt.Errorf("gdprkv: purpose %s: %w", addr, err)
		}
	}
	return c, nil
}

func (c *conn) close() error { return c.nc.Close() }

// deadline resolves the per-call I/O deadline: now+timeout, tightened to
// the context's own deadline when that is earlier. Every call gets a
// deadline — a dead server surfaces as a timeout error, never a hang.
func deadline(ctx context.Context, timeout time.Duration) time.Time {
	dl := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	return dl
}

// do sends one command and reads its reply under the call deadline. I/O
// failures mark the conn broken (the pool will evict it); error replies
// decode through wireError and leave the conn healthy.
func (c *conn) do(ctx context.Context, timeout time.Duration, args [][]byte) (resp.Value, error) {
	if err := ctx.Err(); err != nil {
		return resp.Value{}, err
	}
	if err := c.nc.SetDeadline(deadline(ctx, timeout)); err != nil {
		c.broken = true
		return resp.Value{}, err
	}
	if err := c.w.WriteCommandBytes(args); err != nil {
		return resp.Value{}, c.ioError(ctx, err)
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, c.ioError(ctx, err)
	}
	v, err := c.r.ReadValue()
	if err != nil {
		return resp.Value{}, c.ioError(ctx, err)
	}
	if v.IsError() {
		return v, wireError(v.Text())
	}
	return v, nil
}

// doMulti writes every command in cmds, flushes once, and reads exactly
// one reply per command, in order — the wire half of Pipeline.Exec. Error
// replies are ordinary replies here (returned as Values for the caller to
// decode positionally); only transport failures return an error. The
// returned slice holds the replies read so far, so a mid-read failure
// still surfaces the completed prefix. Any early exit after the commands
// were written marks the conn broken: unread replies would desync the
// next caller, so the pool must discard it.
func (c *conn) doMulti(ctx context.Context, timeout time.Duration, cmds [][][]byte) ([]resp.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.nc.SetDeadline(deadline(ctx, timeout)); err != nil {
		c.broken = true
		return nil, err
	}
	for _, args := range cmds {
		if err := c.w.WriteCommandBytes(args); err != nil {
			return nil, c.ioError(ctx, err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.ioError(ctx, err)
	}
	out := make([]resp.Value, 0, len(cmds))
	for range cmds {
		if err := ctx.Err(); err != nil {
			c.broken = true
			return out, err
		}
		v, err := c.r.ReadValue()
		if err != nil {
			return out, c.ioError(ctx, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ioError marks the conn broken and, when the context expired, reports
// the context's error (wrapping the transport detail) so callers can
// errors.Is against context.DeadlineExceeded / context.Canceled. The
// socket deadline can fire a beat before ctx.Err() flips, so a passed
// context deadline classifies as DeadlineExceeded too.
func (c *conn) ioError(ctx context.Context, err error) error {
	c.broken = true
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("gdprkv: %w (%v)", ctxErr, err)
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return fmt.Errorf("gdprkv: %w (%v)", context.DeadlineExceeded, err)
	}
	return fmt.Errorf("gdprkv: io: %w", err)
}

// expectOK runs a command that must reply +OK (the handshake commands).
func (c *conn) expectOK(ctx context.Context, timeout time.Duration, args ...string) error {
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	v, err := c.do(ctx, timeout, raw)
	if err != nil {
		return err
	}
	if v.Text() != "OK" {
		return fmt.Errorf("unexpected reply %q", v.Text())
	}
	return nil
}

// ping verifies liveness with a short-deadline PING, used by the pool's
// health-checked checkout for conns that sat idle.
func (c *conn) ping(timeout time.Duration) bool {
	v, err := c.do(context.Background(), timeout, [][]byte{[]byte("PING")})
	return err == nil && v.Text() == "PONG"
}
