package gdprkv

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"gdprstore/internal/resp"
)

// Client is a concurrency-safe, pooled, replica-aware client for a
// gdprkv deployment. It is safe for use from any number of goroutines:
// every call checks a connection out of a per-node pool for exactly the
// call's duration, so replies can never interleave.
//
// Routing: writes, GDPR rights operations (GETUSER, EXPORTUSER,
// FORGETUSER, OBJECT, ...), and generic Do calls go to the primary.
// Idempotent reads (Get, MGet, GGet, GMGet, TTL) are load-balanced
// round-robin across the replica set and fall back to the primary when
// no replica is reachable; Scan is replica-served but pinned to one
// node per iteration (cursors are per-node positions). A client with no
// replicas sends everything to the primary.
type Client struct {
	cfg      config
	primary  *pool
	replicas []*pool
	rr       atomic.Uint32
	closed   atomic.Bool

	// cl is the cluster router (cluster.go); nil outside cluster mode. In
	// cluster mode primary aliases the default node's pool (owned by cl).
	cl *clusterRouter

	// batcher coalesces concurrent scalar calls (batcher.go); nil unless
	// WithAutoBatch was given.
	batcher *batcher

	stats struct {
		primaryReads, replicaReads, writes, retries, redials atomic.Uint64
		redirects, slotRefreshes, asks, failovers            atomic.Uint64
		pipelineExecs, pipelineOps                           atomic.Uint64
		autoBatchFlushes, autoBatchOps                       atomic.Uint64
	}
}

// Dial constructs a Client for the primary at addr, applying opts, and
// verifies the primary is reachable with one pooled PING. Replica
// addresses (WithReplicas) are dialed lazily — an unreachable replica
// costs a retry at read time, never a failed construction.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{cfg: cfg}
	if c.cfg.retryAttempts == 0 {
		// Default: one attempt per node in the read path.
		c.cfg.retryAttempts = len(cfg.replicas) + 1
	}
	if c.cfg.autoBatchWindow > 0 {
		c.batcher = newBatcher(c, c.cfg.autoBatchWindow, c.cfg.autoBatchMaxOps)
	}
	if cfg.clusterMode {
		if len(cfg.replicas) > 0 {
			return nil, errors.New("gdprkv: WithReplicas cannot be combined with WithCluster (every cluster node is a primary)")
		}
		c.cl = newClusterRouter(&c.cfg, &c.stats.redials)
		if err := c.bootstrapCluster(ctx, append([]string{addr}, cfg.clusterSeeds...)); err != nil {
			c.Close()
			return nil, err
		}
		// The default node's pool doubles as "primary" so the un-keyed
		// paths (Do, Ping, Info, Scan) have a stable target.
		p, err := c.cl.poolFor(c.cl.defaultNode())
		if err != nil {
			c.Close()
			return nil, err
		}
		c.primary = p
		return c, nil
	}
	c.primary = newPool(addr, &c.cfg, &c.stats.redials)
	for _, ra := range cfg.replicas {
		c.replicas = append(c.replicas, newPool(ra, &c.cfg, &c.stats.redials))
	}
	if err := c.Ping(ctx); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close releases every pooled connection. In-flight calls fail with
// ErrClosed or a transport error. With WithAutoBatch, pending coalesced
// operations are flushed first — an accepted write is submitted, never
// silently dropped.
func (c *Client) Close() error {
	if c.batcher != nil {
		// Drain before the closed flag flips: the flush still needs pools.
		c.batcher.close()
	}
	if c.closed.Swap(true) {
		return nil
	}
	if c.cl != nil {
		// The router owns every pool in cluster mode (primary aliases one
		// of them; pool.close is idempotent either way).
		c.cl.close()
		return nil
	}
	if c.primary != nil {
		c.primary.close()
	}
	for _, p := range c.replicas {
		p.close()
	}
	return nil
}

// Stats is a snapshot of the client's routing and pool counters.
type Stats struct {
	// PrimaryReads counts read-routed calls served by the primary
	// (because no replicas are configured, or as fallback).
	PrimaryReads uint64
	// ReplicaReads counts read-routed calls served by a replica.
	ReplicaReads uint64
	// Writes counts primary-routed calls (writes, rights ops, Do).
	Writes uint64
	// Retries counts read attempts that moved to another node after a
	// connection failure.
	Retries uint64
	// Redials counts pooled connections evicted as broken and replaced.
	Redials uint64
	// Redirects counts MOVED redirects followed in cluster mode.
	Redirects uint64
	// SlotRefreshes counts successful slot-map refreshes triggered by
	// MOVED redirects in cluster mode.
	SlotRefreshes uint64
	// Asks counts ASK redirects followed in cluster mode: one-shot hops
	// to a migration destination, taken without changing the slot map.
	Asks uint64
	// Failovers counts topology refreshes triggered by a node that
	// stopped answering: the client asked a surviving node for the
	// current epoch-stamped topology and installed a newer view.
	Failovers uint64
	// PipelineExecs counts Pipeline.Exec submissions.
	PipelineExecs uint64
	// PipelineOps counts commands submitted through pipelines.
	PipelineOps uint64
	// AutoBatchFlushes counts coalesced batches flushed by WithAutoBatch.
	AutoBatchFlushes uint64
	// AutoBatchOps counts scalar calls that rode an auto-batch flush; the
	// ratio AutoBatchOps/AutoBatchFlushes is the achieved coalescing
	// factor.
	AutoBatchOps uint64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		PrimaryReads:     c.stats.primaryReads.Load(),
		ReplicaReads:     c.stats.replicaReads.Load(),
		Writes:           c.stats.writes.Load(),
		Retries:          c.stats.retries.Load(),
		Redials:          c.stats.redials.Load(),
		Redirects:        c.stats.redirects.Load(),
		SlotRefreshes:    c.stats.slotRefreshes.Load(),
		Asks:             c.stats.asks.Load(),
		Failovers:        c.stats.failovers.Load(),
		PipelineExecs:    c.stats.pipelineExecs.Load(),
		PipelineOps:      c.stats.pipelineOps.Load(),
		AutoBatchFlushes: c.stats.autoBatchFlushes.Load(),
		AutoBatchOps:     c.stats.autoBatchOps.Load(),
	}
}

// doNode runs one command on one node's pool: checkout, call, checkin.
func (c *Client) doNode(ctx context.Context, p *pool, args [][]byte) (resp.Value, error) {
	cn, err := p.get(ctx)
	if err != nil {
		return resp.Value{}, err
	}
	v, err := cn.do(ctx, c.cfg.ioTimeout, args)
	p.put(cn)
	return v, err
}

// doPrimary routes writes, rights operations, and generic commands.
// They are never retried: a connection failure mid-write is ambiguous
// (the server may have applied it), so the ambiguity is surfaced. In
// cluster mode the target is the default node, with MOVED follow — the
// path generic Do commands take, since the client cannot slot them.
func (c *Client) doPrimary(ctx context.Context, args [][]byte) (resp.Value, error) {
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	c.stats.writes.Add(1)
	if c.cl != nil {
		return c.doCluster(ctx, c.cl.defaultNode(), args)
	}
	return c.doNode(ctx, c.primary, args)
}

// doWriteKey routes a key-addressed mutating command: slot owner in
// cluster mode, primary otherwise.
func (c *Client) doWriteKey(ctx context.Context, key string, args [][]byte) (resp.Value, error) {
	if c.cl == nil {
		return c.doPrimary(ctx, args)
	}
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	c.stats.writes.Add(1)
	return c.doSlot(ctx, key, args)
}

// doReadKey routes a key-addressed idempotent read: in cluster mode,
// round-robin over the slot's replicas with the slot owner as backstop
// (doSlotRead); replica round-robin otherwise.
func (c *Client) doReadKey(ctx context.Context, key string, args [][]byte) (resp.Value, error) {
	if c.cl == nil {
		return c.doRead(ctx, args)
	}
	return c.doSlotRead(ctx, key, args)
}

// doRead routes an idempotent read: round-robin over replicas first,
// primary last, moving on after connection failures (never after server
// error replies) until cfg.retryAttempts nodes have been tried.
func (c *Client) doRead(ctx context.Context, args [][]byte) (resp.Value, error) {
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	if c.cl != nil {
		// Key-addressed reads go through doReadKey; anything else lands on
		// the default node with MOVED follow.
		c.stats.primaryReads.Add(1)
		return c.doCluster(ctx, c.cl.defaultNode(), args)
	}
	if len(c.replicas) == 0 {
		c.stats.primaryReads.Add(1)
		return c.doNode(ctx, c.primary, args)
	}
	// Try order: each replica once starting at the round-robin cursor,
	// then the primary — bounded by the retry budget. Index arithmetic
	// stays in uint32 space so the cursor wrapping cannot go negative on
	// 32-bit platforms.
	start := c.rr.Add(1) - 1
	var lastErr error
	for attempt := 0; attempt < c.cfg.retryAttempts; attempt++ {
		var p *pool
		onPrimary := attempt >= len(c.replicas)
		if onPrimary {
			p = c.primary
		} else {
			p = c.replicas[(start+uint32(attempt))%uint32(len(c.replicas))]
		}
		if attempt > 0 {
			c.stats.retries.Add(1)
			if c.cfg.retryBackoff > 0 {
				t := time.NewTimer(c.cfg.retryBackoff)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return resp.Value{}, ctx.Err()
				}
			}
		}
		v, err := c.doNode(ctx, p, args)
		if err == nil || isReply(err) {
			if onPrimary {
				c.stats.primaryReads.Add(1)
			} else {
				c.stats.replicaReads.Add(1)
			}
			return v, err
		}
		if ctx.Err() != nil {
			return resp.Value{}, err
		}
		lastErr = err
	}
	return resp.Value{}, lastErr
}

// doRights routes a GDPR rights operation keyed by the data subject:
// the owner's slot node in cluster mode (that node coordinates the
// cluster-wide fan-out for FORGETUSER/GETUSER), the primary otherwise.
// Counted under Writes — rights calls are authoritative-path operations.
func (c *Client) doRights(ctx context.Context, owner string, args [][]byte) (resp.Value, error) {
	if c.cl == nil {
		return c.doPrimary(ctx, args)
	}
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	c.stats.writes.Add(1)
	return c.doSlot(ctx, owner, args)
}

// doScan routes one SCAN call. Unlike the other reads, a scan is a
// multi-call iteration whose cursor is a position into one node's sorted
// keyspace — cursors are not portable between nodes whose datasets
// differ (replication lag). So every Scan of this client is pinned to a
// single node: the first replica when replicas are configured, with
// primary fallback only when that replica is unreachable. A fallback
// mid-iteration switches nodes and invalidates the cursor sequence;
// callers observing it (the call still succeeds) should restart from
// cursor 0 for a complete sweep.
func (c *Client) doScan(ctx context.Context, args [][]byte) (resp.Value, error) {
	if c.closed.Load() {
		return resp.Value{}, ErrClosed
	}
	if c.cl != nil {
		// Cluster scans are node-local by design: the cursor walks the
		// default node's keyspace only. Sweep each node with a dedicated
		// client to enumerate the whole cluster.
		c.stats.primaryReads.Add(1)
		return c.doCluster(ctx, c.cl.defaultNode(), args)
	}
	if len(c.replicas) == 0 {
		c.stats.primaryReads.Add(1)
		return c.doNode(ctx, c.primary, args)
	}
	v, err := c.doNode(ctx, c.replicas[0], args)
	if err == nil || isReply(err) {
		c.stats.replicaReads.Add(1)
		return v, err
	}
	if ctx.Err() != nil {
		return resp.Value{}, err
	}
	c.stats.retries.Add(1)
	c.stats.primaryReads.Add(1)
	return c.doNode(ctx, c.primary, args)
}

// isReply reports whether err is a decoded server reply (as opposed to a
// dial or transport failure): replies are authoritative answers and must
// not trigger a retry on another node.
func isReply(err error) bool {
	_, ok := err.(*ServerError)
	return ok
}
