GO ?= go
STATICCHECK_VERSION ?= 2023.1.7
COVER_THRESHOLD ?= 75.0
FUZZTIME ?= 30s

.PHONY: all build test race bench bench-ci cover fuzz vet fmt lint apicheck api ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race mirrors the CI `race` job: the sharded engine and striped compliance
# layer must stay race-clean.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# bench-ci mirrors the CI `bench-smoke` job: the quick microbenchmarks with
# machine-readable output in BENCH_ci.json. Output goes straight to the
# file (not through tee) so a failing `go test` fails the target.
bench-ci:
	$(GO) test -run '^$$' \
		-bench 'Engine_|Core_G|RESPRoundTrip|FsyncSpectrum|ComplianceSpectrum' \
		-benchtime 100x -benchmem -json . > BENCH_ci.json
	$(GO) test -run '^$$' -bench . -benchtime 100x -benchmem -json \
		./internal/server >> BENCH_ci.json

# cover mirrors the CI `cover` job: coverage profile + ratchet threshold.
cover:
	$(GO) test -coverprofile=cover.out ./internal/... ./pkg/...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{sub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v min="$(COVER_THRESHOLD)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' \
		|| { echo "coverage $$total% fell below the $(COVER_THRESHOLD)% ratchet"; exit 1; }

# fuzz mirrors the CI `fuzz-smoke` job: a bounded mutation run per target.
fuzz:
	$(GO) test ./internal/resp -run '^$$' -fuzz '^FuzzReadValue$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/resp -run '^$$' -fuzz '^FuzzReadCommand$$' -fuzztime $(FUZZTIME)

vet:
	$(GO) vet ./...

# apicheck mirrors the CI `api surface` step: the exported surface of the
# public SDK must match the checked-in golden, so accidental breaking
# changes are caught in review. After an INTENDED surface change, run
# `make api` to regenerate the golden and commit it with the change.
apicheck:
	$(GO) run ./tools/apidump ./pkg/gdprkv | diff -u api/gdprkv.golden - \
		|| { echo "public API surface of pkg/gdprkv changed; if intended, run 'make api' and commit the golden"; exit 1; }

api:
	$(GO) run ./tools/apidump ./pkg/gdprkv > api/gdprkv.golden

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint mirrors the CI `staticcheck` job (pinned version; installed on demand).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

ci: fmt vet apicheck build test race lint
