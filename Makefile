GO ?= go

.PHONY: all build test bench vet fmt ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

ci: fmt vet build test
