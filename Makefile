GO ?= go
STATICCHECK_VERSION ?= 2023.1.7
GOVULNCHECK_VERSION ?= v1.1.3
COVER_THRESHOLD ?= 75.0
FUZZTIME ?= 30s
BENCH_THRESHOLD ?= 30

.PHONY: all build test race bench bench-ci bench-check bench-baseline cover fuzz vet fmt lint vulncheck apicheck api ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race mirrors the CI `race` job: the sharded engine and striped compliance
# layer must stay race-clean.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# bench-ci mirrors the CI `bench-smoke` job: the quick microbenchmarks with
# machine-readable output in BENCH_ci.json. Output goes straight to the
# file (not through tee) so a failing `go test` fails the target.
# 1000x iterations, best of 5 counts: the regression gate compares each
# side's best run, and single short runs swing well past the 30% gate on
# a shared box while minima are stable.
bench-ci:
	$(GO) test -run '^$$' \
		-bench 'Engine_|Core_G|RESPRoundTrip|Resp_|FsyncSpectrum|ComplianceSpectrum|Audit_' \
		-benchtime 1000x -count 5 -benchmem -json . > BENCH_ci.json
	$(GO) test -run '^$$' -bench 'Forget_KeysPerOwner/keys=(16|256)/' \
		-benchtime 1000x -count 5 -benchmem -json . >> BENCH_ci.json
	$(GO) test -run '^$$' -bench . -benchtime 1000x -count 5 -benchmem -json \
		./internal/server >> BENCH_ci.json
	$(GO) test -run '^$$' -bench . -benchtime 1000x -count 5 -benchmem -json \
		./internal/ops >> BENCH_ci.json

# bench-check mirrors the CI `bench regression gate` step: fresh smoke
# numbers diffed against the committed baseline, failing on any matching
# benchmark whose throughput dropped more than BENCH_THRESHOLD percent.
bench-check: bench-ci
	$(GO) run ./tools/benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json \
		-threshold $(BENCH_THRESHOLD) -skip 'Parallel$$'

# bench-baseline refreshes the committed baseline after an INTENDED perf
# change (or a benchmark-set change). Commit the result with the change
# that explains it.
bench-baseline: bench-ci
	cp BENCH_ci.json BENCH_baseline.json
	@echo "BENCH_baseline.json refreshed; commit it with the change that moved the numbers"

# cover mirrors the CI `cover` job: coverage profile + ratchet threshold.
cover:
	$(GO) test -coverprofile=cover.out ./internal/... ./pkg/...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{sub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v min="$(COVER_THRESHOLD)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' \
		|| { echo "coverage $$total% fell below the $(COVER_THRESHOLD)% ratchet"; exit 1; }

# fuzz mirrors the CI `fuzz-smoke` job: a bounded mutation run per target.
fuzz:
	$(GO) test ./internal/resp -run '^$$' -fuzz '^FuzzReadValue$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/resp -run '^$$' -fuzz '^FuzzReadCommand$$' -fuzztime $(FUZZTIME)

vet:
	$(GO) vet ./...

# apicheck mirrors the CI `api surface` step: the exported surface of the
# public SDK must match the checked-in golden, so accidental breaking
# changes are caught in review. After an INTENDED surface change, run
# `make api` to regenerate the golden and commit it with the change.
apicheck:
	$(GO) run ./tools/apidump ./pkg/gdprkv | diff -u api/gdprkv.golden - \
		|| { echo "public API surface of pkg/gdprkv changed; if intended, run 'make api' and commit the golden"; exit 1; }

api:
	$(GO) run ./tools/apidump ./pkg/gdprkv > api/gdprkv.golden

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint mirrors the CI `staticcheck` job (pinned version; installed on demand).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# vulncheck mirrors the CI `govulncheck` job (pinned version).
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

ci: fmt vet apicheck build test race lint
