module gdprstore

go 1.22
