// Command apidump prints the exported API surface of a Go package
// directory in a stable text form: one normalised declaration per
// exported const/var/type/func/method, sorted lexically, with bodies and
// comments stripped. The output is deliberately independent of the Go
// toolchain version (unlike `go doc -all`, whose formatting drifts), so
// it can be checked in as a golden file and diffed in CI — the
// API-stability gate that keeps pkg/gdprkv's public surface from
// changing unnoticed.
//
// Usage:
//
//	apidump <package-dir>    # e.g. apidump ./pkg/gdprkv
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: apidump <package-dir>")
		os.Exit(2)
	}
	decls, err := dump(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	for _, d := range decls {
		fmt.Println(d)
	}
}

// dump parses the non-test files of dir and renders every exported
// declaration, sorted.
func dump(dir string) ([]string, error) {
	fset := token.NewFileSet()
	notTest := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, dir, notTest, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				out = append(out, renderDecl(fset, decl)...)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// renderDecl returns the exported declarations within decl, normalised.
func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !exportedFunc(d) {
			return nil
		}
		d.Body = nil // signatures only
		d.Doc = nil
		return []string{render(fset, d)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				s.Doc, s.Comment = nil, nil
				stripFieldComments(s.Type)
				out = append(out, render(fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}))
			case *ast.ValueSpec:
				if !anyExported(s.Names) {
					continue
				}
				s.Doc, s.Comment = nil, nil
				// Values are part of the surface only by name and type;
				// initialiser expressions (e.g. a sentinel's message) may
				// evolve without breaking callers. Keep them anyway for
				// sentinels declared without a type — the expression IS the
				// visible contract there (errors.New message).
				out = append(out, render(fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}))
			}
		}
		return out
	}
	return nil
}

// exportedFunc reports whether d is an exported function, or an exported
// method on an exported receiver type.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

// stripFieldComments removes doc comments from struct fields and
// interface methods, and drops unexported struct fields entirely, so the
// golden tracks the public shape, not prose or internals.
func stripFieldComments(t ast.Expr) {
	clean := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			f.Doc, f.Comment = nil, nil
		}
	}
	switch tt := t.(type) {
	case *ast.StructType:
		if tt.Fields == nil {
			return
		}
		kept := tt.Fields.List[:0]
		for _, f := range tt.Fields.List {
			if anyExported(f.Names) || len(f.Names) == 0 { // embedded fields kept
				kept = append(kept, f)
			}
		}
		tt.Fields.List = kept
		clean(tt.Fields)
	case *ast.InterfaceType:
		clean(tt.Methods)
	}
}

// render prints one declaration on one line (internal newlines folded to
// "; " for struct bodies kept multi-line by the printer).
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("render error: %v", err)
	}
	lines := strings.Split(buf.String(), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(l)
	}
	return strings.Join(lines, " ")
}
