package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// stream renders benchmark result lines as a test2json output stream.
func stream(t *testing.T, lines ...string) string {
	t.Helper()
	var b strings.Builder
	for _, l := range lines {
		ev, err := json.Marshal(event{Action: "output", Output: l + "\n"})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(ev)
		b.WriteByte('\n')
	}
	return b.String()
}

func parse(t *testing.T, s string) map[string]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchExtractsBestRun(t *testing.T) {
	m := parse(t, stream(t,
		"BenchmarkEngine_Set-2   \t 1000 \t 1500.0 ns/op \t 120 B/op",
		"BenchmarkEngine_Set-2   \t 1000 \t 1200.0 ns/op \t 120 B/op", // best kept
		"BenchmarkEngine_Get     \t 5000 \t  300 ns/op",               // no -procs suffix
		"some unrelated output line",
	))
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks: %v", len(m), m)
	}
	if m["BenchmarkEngine_Set"] != 1200 {
		t.Fatalf("Engine_Set = %v, want best run 1200", m["BenchmarkEngine_Set"])
	}
	if m["BenchmarkEngine_Get"] != 300 {
		t.Fatalf("Engine_Get = %v", m["BenchmarkEngine_Get"])
	}
}

// TestParseBenchReassemblesSplitEvents mirrors real test2json output:
// the runner prints the benchmark name first and the numbers in a later
// event, interleaved with other packages' streams.
func TestParseBenchReassemblesSplitEvents(t *testing.T) {
	evs := []event{
		{Action: "output", Package: "a", Test: "BenchmarkSplit", Output: "BenchmarkSplit\n"},
		{Action: "output", Package: "a", Test: "BenchmarkSplit", Output: "BenchmarkSplit-2   \t"},
		{Action: "output", Package: "b", Test: "BenchmarkOther", Output: "BenchmarkOther-2 \t 10\t 50 ns/op\n"},
		{Action: "output", Package: "a", Test: "BenchmarkSplit", Output: "     100\t     32547 ns/op\t     711 B/op\n"},
		{Action: "pass", Package: "a"},
	}
	var b strings.Builder
	for _, ev := range evs {
		j, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	m := parse(t, b.String())
	if m["BenchmarkSplit"] != 32547 {
		t.Fatalf("split-event benchmark = %v, want 32547 (parsed: %v)", m["BenchmarkSplit"], m)
	}
	if m["BenchmarkOther"] != 50 {
		t.Fatalf("interleaved benchmark = %v", m["BenchmarkOther"])
	}
}

func TestParseBenchToleratesPlainText(t *testing.T) {
	// Raw `go test -bench` output (not JSON) still parses.
	m := parse(t, "BenchmarkRESPRoundTrip-2\t 2000\t 900 ns/op\n")
	if m["BenchmarkRESPRoundTrip"] != 900 {
		t.Fatalf("plain-text parse = %v", m)
	}
}

// TestInjectedRegressionFails is the gate's acceptance demonstration: a
// synthetic 2x slowdown (−50% throughput) on one benchmark must be
// flagged at the 30% threshold while an unchanged sibling passes.
func TestInjectedRegressionFails(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 1000}
	cur := map[string]float64{"BenchmarkA": 2000, "BenchmarkB": 1050}
	rows, _, _ := diff(base, cur, 30, nil)
	var sb strings.Builder
	regressed := render(&sb, rows, nil, nil, 30)
	if len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Fatalf("regressed = %v, want exactly BenchmarkA", regressed)
	}
	if !strings.Contains(sb.String(), "❌") {
		t.Fatalf("table does not mark the regression:\n%s", sb.String())
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	// A 25% throughput drop stays under the 30% gate; 31% does not.
	base := map[string]float64{"BenchmarkA": 1000}
	for _, tc := range []struct {
		curNs  float64
		expect bool
	}{
		{1000 / 0.75, false}, // -25%: pass
		{1000 / 0.69, true},  // -31%: fail
		{900, false},         // faster: pass
	} {
		rows, _, _ := diff(base, map[string]float64{"BenchmarkA": tc.curNs}, 30, nil)
		if rows[0].regressed != tc.expect {
			t.Errorf("curNs=%.0f: regressed=%v, want %v", tc.curNs, rows[0].regressed, tc.expect)
		}
	}
}

func TestUnmatchedBenchmarksNeverFail(t *testing.T) {
	base := map[string]float64{"BenchmarkOld": 1000, "BenchmarkBoth": 500}
	cur := map[string]float64{"BenchmarkNew": 1, "BenchmarkBoth": 510}
	rows, onlyBase, onlyCur := diff(base, cur, 30, nil)
	if len(rows) != 1 || rows[0].regressed {
		t.Fatalf("rows = %+v", rows)
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkOld" {
		t.Fatalf("onlyBase = %v", onlyBase)
	}
	if len(onlyCur) != 1 || onlyCur[0] != "BenchmarkNew" {
		t.Fatalf("onlyCur = %v", onlyCur)
	}
	var sb strings.Builder
	if regressed := render(&sb, rows, onlyBase, onlyCur, 30); len(regressed) != 0 {
		t.Fatalf("unmatched benchmarks failed the gate: %v", regressed)
	}
	for _, want := range []string{"BenchmarkOld", "BenchmarkNew"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report does not mention %s", want)
		}
	}
}

// TestSkippedBenchmarksAreInformational: a -skip match is reported but
// exempt from the gate, however far it swings.
func TestSkippedBenchmarksAreInformational(t *testing.T) {
	base := map[string]float64{"BenchmarkEngine_SetParallel": 100, "BenchmarkEngine_Set": 100}
	cur := map[string]float64{"BenchmarkEngine_SetParallel": 1000, "BenchmarkEngine_Set": 105}
	rows, _, _ := diff(base, cur, 30, regexp.MustCompile(`Parallel$`))
	var sb strings.Builder
	if regressed := render(&sb, rows, nil, nil, 30); len(regressed) != 0 {
		t.Fatalf("skipped benchmark failed the gate: %v", regressed)
	}
	if !strings.Contains(sb.String(), "(informational)") {
		t.Fatalf("report does not mark the exempt row:\n%s", sb.String())
	}
}
