// Command benchdiff compares two `go test -json` benchmark outputs and
// fails when any benchmark's throughput regressed past a threshold. It is
// the bench-regression gate of the CI bench-smoke job:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 30
//
// Both files are test2json streams (`go test -bench ... -json`); the
// benchmark result lines are extracted from their Output events. Only
// benchmarks present in both files are compared — renames and new
// benchmarks are reported but never fail the gate (refresh the committed
// baseline with `make bench-baseline` when the benchmark set changes or
// an intended perf change moves the floor). The comparison uses each
// side's best (lowest) ns/op across repeated runs, which discards
// one-sided scheduler noise; the threshold absorbs the rest.
//
// A markdown delta table is printed to stdout, ready for $GITHUB_STEP_SUMMARY.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches a benchmark result line, capturing the name (GOMAXPROCS
// suffix stripped) and its ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// event is the subset of a test2json record benchdiff reads.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// parseBench extracts name -> best (lowest) ns/op from a test2json
// stream. A benchmark's console line is often split over several Output
// events (the runner prints "BenchmarkX-2 \t" first and the numbers when
// the run finishes), so fragments are reassembled into complete lines per
// (package, test) stream before matching.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	record := func(line string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			return
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			return
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	pending := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate non-JSON noise (plain `go test -bench` output can be
			// diffed too).
			record(string(line))
			continue
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := pending[key] + ev.Output
		for {
			i := strings.IndexByte(buf, '\n')
			if i < 0 {
				break
			}
			record(buf[:i])
			buf = buf[i+1:]
		}
		pending[key] = buf
	}
	for _, buf := range pending {
		record(buf)
	}
	return out, sc.Err()
}

// row is one compared benchmark.
type row struct {
	name          string
	baseNs, curNs float64
	deltaPct      float64 // throughput change, + = faster
	regressed     bool
	informational bool // matched -skip: reported, never gated
}

// diff compares the two result sets. threshold is the tolerated
// throughput drop in percent: a benchmark regresses when its current
// throughput is more than threshold% below the baseline's, i.e.
// baseNs/curNs < 1 - threshold/100. Benchmarks matching skip are
// compared and reported but never fail the gate — the escape hatch for
// benchmarks whose minima are structurally unstable on shared CI runners
// (scheduler-bound *Parallel benchmarks).
func diff(base, cur map[string]float64, threshold float64, skip *regexp.Regexp) (rows []row, onlyBase, onlyCur []string) {
	for name, baseNs := range base {
		curNs, ok := cur[name]
		if !ok {
			onlyBase = append(onlyBase, name)
			continue
		}
		r := row{name: name, baseNs: baseNs, curNs: curNs}
		r.deltaPct = (baseNs/curNs - 1) * 100
		r.informational = skip != nil && skip.MatchString(name)
		r.regressed = !r.informational && baseNs/curNs < 1-threshold/100
		rows = append(rows, r)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			onlyCur = append(onlyCur, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)
	return rows, onlyBase, onlyCur
}

// render writes the markdown delta table and returns the regressed names.
func render(w io.Writer, rows []row, onlyBase, onlyCur []string, threshold float64) []string {
	fmt.Fprintf(w, "### Benchmark delta (threshold: -%.0f%% throughput)\n\n", threshold)
	fmt.Fprintln(w, "| benchmark | baseline ns/op | current ns/op | Δ throughput |")
	fmt.Fprintln(w, "|---|---:|---:|---:|")
	var regressed []string
	for _, r := range rows {
		mark := ""
		switch {
		case r.regressed:
			mark = " ❌"
			regressed = append(regressed, r.name)
		case r.informational:
			mark = " (informational)"
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%%%s |\n", r.name, r.baseNs, r.curNs, r.deltaPct, mark)
	}
	if len(onlyBase) > 0 {
		fmt.Fprintf(w, "\n%d baseline benchmark(s) missing from the current run: %s\n",
			len(onlyBase), strings.Join(onlyBase, ", "))
	}
	if len(onlyCur) > 0 {
		fmt.Fprintf(w, "\n%d new benchmark(s) not in the baseline: %s\n",
			len(onlyCur), strings.Join(onlyCur, ", "))
	}
	return regressed
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline (go test -json bench output)")
	current := flag.String("current", "BENCH_ci.json", "fresh run to compare (go test -json bench output)")
	threshold := flag.Float64("threshold", 30, "tolerated throughput drop in percent")
	skipPat := flag.String("skip", "", "regexp of benchmarks reported but exempt from the gate")
	flag.Parse()
	var skip *regexp.Regexp
	if *skipPat != "" {
		var err error
		if skip, err = regexp.Compile(*skipPat); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad -skip:", err)
			os.Exit(2)
		}
	}

	base, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(base) == 0 || len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark lines parsed (baseline=%d, current=%d)\n",
			len(base), len(cur))
		os.Exit(2)
	}
	rows, onlyBase, onlyCur := diff(base, cur, *threshold, skip)
	regressed := render(os.Stdout, rows, onlyBase, onlyCur, *threshold)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d benchmark(s) regressed more than %.0f%%: %s\n",
			len(regressed), *threshold, strings.Join(regressed, ", "))
		os.Exit(1)
	}
	fmt.Printf("\n%d benchmark(s) compared, none regressed more than %.0f%%.\n", len(rows), *threshold)
}
