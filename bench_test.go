// Repository-level benchmarks: one per table/figure of the paper, plus
// ablations for the design choices called out in DESIGN.md §5. Run with
//
//	go test -bench=. -benchmem
//
// Figure-scale notes: these are per-operation microbenchmarks over the
// same code paths the cmd/experiments harness drives end-to-end; the
// harness prints paper-shaped tables, the benchmarks make the costs
// visible to `go test -bench`.
package gdprstore

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/aof"
	"gdprstore/internal/audit"
	"gdprstore/internal/clock"
	"gdprstore/internal/core"
	"gdprstore/internal/cryptoutil"
	"gdprstore/internal/experiments"
	"gdprstore/internal/gdprbench"
	"gdprstore/internal/resp"
	"gdprstore/internal/server"
	"gdprstore/internal/store"
	"gdprstore/internal/tlsproxy"
	"gdprstore/internal/ycsb"
)

const (
	benchRecords   = 2000
	benchValueSize = 1000
)

// --- Table 1 ---

// BenchmarkTable1_Format regenerates the Table 1 mapping (the artifact is
// static; the benchmark keeps the table in the bench inventory and guards
// against accidental bloat in the hot article-registry path).
func BenchmarkTable1_Format(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.FormatTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figure 1: Unmodified vs AOF-w/-sync vs LUKS+TLS over the network ---

// fig1Env starts a server in one of Figure 1's three setups and preloads
// the YCSB dataset.
func fig1Env(b *testing.B, setup string) (addr string, cleanup func()) {
	b.Helper()
	dir := b.TempDir()
	var cfg core.Config
	tunneled := false
	switch setup {
	case "Unmodified":
		cfg = core.Baseline()
	case "AOFSync":
		cfg = core.Baseline()
		cfg.AOFPath = filepath.Join(dir, "sync.aof")
		cfg.AOFSync = core.Ptr(aof.SyncAlways)
		cfg.JournalReads = true
	case "LUKSTLS":
		cfg = core.Baseline()
		cfg.AOFPath = filepath.Join(dir, "luks.aof")
		cfg.AOFSync = core.Ptr(aof.SyncEverySec)
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(i)
		}
		cfg.AtRestKey = key
		tunneled = true
	default:
		b.Fatalf("unknown setup %s", setup)
	}
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		st.Close()
		b.Fatal(err)
	}
	addr = srv.Addr()
	var tun *tlsproxy.Tunnel
	if tunneled {
		tun, err = tlsproxy.NewTunnel(srv.Addr(), tlsproxy.Throttle{})
		if err != nil {
			srv.Close()
			st.Close()
			b.Fatal(err)
		}
		addr = tun.Addr()
	}
	// Preload outside the timer.
	_, err = ycsb.Load(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: benchRecords, ValueSize: benchValueSize,
		Workers: 4, Factory: func(int) (ycsb.DB, error) { return ycsb.DialNetworkDB(addr) },
	})
	if err != nil {
		b.Fatal(err)
	}
	return addr, func() {
		if tun != nil {
			tun.Close()
		}
		srv.Close()
		st.Close()
	}
}

// benchFig1 runs b.N operations of the given workload mix against the
// setup, with one connection per parallel worker (YCSB-thread style).
func benchFig1(b *testing.B, setup string, w ycsb.Workload) {
	addr, cleanup := fig1Env(b, setup)
	defer cleanup()
	chooser := ycsb.NewScrambledZipfian(benchRecords)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		db, err := ycsb.DialNetworkDB(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer db.Close()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		val := make([]byte, benchValueSize)
		for pb.Next() {
			key := ycsb.KeyName(chooser.Next(rng))
			if rng.Float64() < w.ReadProportion {
				if err := db.Read(key); err != nil {
					b.Error(err)
					return
				}
			} else {
				if err := db.Update(key, val); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

func BenchmarkFigure1_Unmodified_WorkloadA(b *testing.B) { benchFig1(b, "Unmodified", ycsb.WorkloadA) }
func BenchmarkFigure1_Unmodified_WorkloadB(b *testing.B) { benchFig1(b, "Unmodified", ycsb.WorkloadB) }
func BenchmarkFigure1_Unmodified_WorkloadC(b *testing.B) { benchFig1(b, "Unmodified", ycsb.WorkloadC) }
func BenchmarkFigure1_AOFSync_WorkloadA(b *testing.B)    { benchFig1(b, "AOFSync", ycsb.WorkloadA) }
func BenchmarkFigure1_AOFSync_WorkloadB(b *testing.B)    { benchFig1(b, "AOFSync", ycsb.WorkloadB) }
func BenchmarkFigure1_AOFSync_WorkloadC(b *testing.B)    { benchFig1(b, "AOFSync", ycsb.WorkloadC) }
func BenchmarkFigure1_LUKSTLS_WorkloadA(b *testing.B)    { benchFig1(b, "LUKSTLS", ycsb.WorkloadA) }
func BenchmarkFigure1_LUKSTLS_WorkloadB(b *testing.B)    { benchFig1(b, "LUKSTLS", ycsb.WorkloadB) }
func BenchmarkFigure1_LUKSTLS_WorkloadC(b *testing.B)    { benchFig1(b, "LUKSTLS", ycsb.WorkloadC) }

// --- §4.1: fsync spectrum (Figure 1's AOF bars, isolated, embedded) ---

func benchFsync(b *testing.B, policy aof.SyncPolicy, journalReads bool) {
	cfg := core.Baseline()
	cfg.AOFPath = filepath.Join(b.TempDir(), "bench.aof")
	cfg.AOFSync = core.Ptr(policy)
	cfg.JournalReads = journalReads
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := make([]byte, benchValueSize)
	for i := 0; i < benchRecords; i++ {
		st.Engine().Set(ycsb.KeyName(int64(i)), val)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ycsb.KeyName(rng.Int63n(benchRecords))
		if i%2 == 0 {
			st.Engine().GetNoCopy(key)
		} else {
			st.Engine().Set(key, val)
		}
	}
}

func BenchmarkFsyncSpectrum_NoLogging(b *testing.B) { benchFsync(b, aof.SyncNo, false) }
func BenchmarkFsyncSpectrum_EverySec(b *testing.B)  { benchFsync(b, aof.SyncEverySec, true) }
func BenchmarkFsyncSpectrum_Always(b *testing.B)    { benchFsync(b, aof.SyncAlways, true) }

// --- Figure 2: erasure delay ---

// BenchmarkFigure2_LazySimulation measures the cost of simulating the
// probabilistic expiry run at each datastore size and reports the paper's
// metrics (simulated erasure delay, cycle count) via ReportMetric.
func BenchmarkFigure2_LazySimulation(b *testing.B) {
	for _, n := range []int{1000, 8000, 64000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				vc := clock.NewVirtual(time.Unix(0, 0))
				db := store.New(store.Options{Clock: vc, Seed: int64(i + 1), Strategy: store.ExpiryLazyProbabilistic})
				due := populateExpiring(db, n)
				vc.Advance(5 * time.Minute)
				exp := store.NewExpirer(db)
				cycles = 0
				for db.ExpiredCount() < uint64(due) {
					exp.Step()
					cycles++
				}
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(cycles)*0.1, "sim-seconds")
		})
	}
}

// BenchmarkFigure2_FastScan measures the real wall cost of the paper's
// modification: one full-scan expiry cycle that erases all due keys.
func BenchmarkFigure2_FastScan(b *testing.B) {
	for _, n := range []int{1000, 8000, 64000, 1000000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vc := clock.NewVirtual(time.Unix(0, 0))
				db := store.New(store.Options{Clock: vc, Seed: 1, Strategy: store.ExpiryFastScan})
				due := populateExpiring(db, n)
				vc.Advance(5 * time.Minute)
				b.StartTimer()
				st := db.ActiveExpireCycle()
				if st.Expired != due {
					b.Fatalf("expired %d, want %d", st.Expired, due)
				}
			}
		})
	}
}

// BenchmarkFigure2_ExpiryHeap is the ablation: timely deletion via the
// deadline heap, touching only due keys.
func BenchmarkFigure2_ExpiryHeap(b *testing.B) {
	for _, n := range []int{1000, 8000, 64000, 1000000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vc := clock.NewVirtual(time.Unix(0, 0))
				db := store.New(store.Options{Clock: vc, Seed: 1, Strategy: store.ExpiryHeap})
				due := populateExpiring(db, n)
				vc.Advance(5 * time.Minute)
				b.StartTimer()
				st := db.ActiveExpireCycle()
				if st.Expired != due {
					b.Fatalf("expired %d, want %d", st.Expired, due)
				}
			}
		})
	}
}

func populateExpiring(db *store.DB, n int) (due int) {
	for i := 0; i < n; i++ {
		key := ycsb.KeyName(int64(i))
		if i%5 == 0 {
			db.SetEX(key, []byte("payload"), 5*time.Minute)
			due++
		} else {
			db.SetEX(key, []byte("payload"), 5*24*time.Hour)
		}
	}
	return due
}

// --- §3.2: compliance spectrum ---

func benchSpectrum(b *testing.B, cfg core.Config) {
	cfg.DefaultTTL = 24 * time.Hour
	if cfg.Compliant {
		cfg.AuditEnabled = true
		cfg.AuditPath = filepath.Join(b.TempDir(), "audit.log")
	}
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
	ctx := core.Ctx{Actor: "bench", Purpose: "benchmark"}
	opts := core.PutOptions{Owner: "subject", Purposes: []string{"benchmark"}}
	val := make([]byte, benchValueSize)
	for i := 0; i < benchRecords; i++ {
		if err := st.Put(ctx, ycsb.KeyName(int64(i)), val, opts); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ycsb.KeyName(rng.Int63n(benchRecords))
		if i%2 == 0 {
			if _, err := st.Get(ctx, key); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := st.Put(ctx, key, val, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkComplianceSpectrum_Baseline(b *testing.B) {
	benchSpectrum(b, core.Baseline())
}

func BenchmarkComplianceSpectrum_EventualPartial(b *testing.B) {
	benchSpectrum(b, core.Config{Compliant: true, Timing: core.TimingEventual, Capability: core.CapabilityPartial})
}

func BenchmarkComplianceSpectrum_EventualFull(b *testing.B) {
	benchSpectrum(b, core.Config{Compliant: true, Timing: core.TimingEventual, Capability: core.CapabilityFull})
}

func BenchmarkComplianceSpectrum_RealTimePartial(b *testing.B) {
	benchSpectrum(b, core.Config{Compliant: true, Timing: core.TimingRealTime, Capability: core.CapabilityPartial})
}

func BenchmarkComplianceSpectrum_RealTimeFull(b *testing.B) {
	benchSpectrum(b, core.Config{Compliant: true, Timing: core.TimingRealTime, Capability: core.CapabilityFull})
}

// --- §4.2: TLS tunnel bandwidth ---

// BenchmarkTLSProxyBandwidth reports bytes/sec through the stunnel
// stand-in; compare with BenchmarkDirectTCPBandwidth for the §4.2 collapse.
func BenchmarkTLSProxyBandwidth(b *testing.B) {
	rows, err := experiments.TLSBandwidth(int64(b.N) * 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rows[1].BytesPerSec/1e6, "tunnel-MB/s")
	b.ReportMetric(rows[0].BytesPerSec/1e6, "direct-MB/s")
	b.ReportMetric(rows[0].BytesPerSec/rows[1].BytesPerSec, "reduction-x")
}

// --- GDPR-persona workloads (GDPRbench-style) ---

func benchPersona(b *testing.B, role gdprbench.Role) {
	cfg := core.Strict("")
	cfg.DefaultTTL = 24 * time.Hour
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "processor", Role: acl.RoleProcessor})
	st.ACL().AddPrincipal(acl.Principal{ID: "regulator", Role: acl.RoleRegulator})
	const subjects = 100
	for i := 0; i < subjects; i++ {
		st.ACL().AddPrincipal(acl.Principal{ID: gdprbench.SubjectName(i), Role: acl.RoleSubject})
	}
	if err := st.ACL().AddGrant(acl.Grant{Principal: "processor", Purpose: "*"}); err != nil {
		b.Fatal(err)
	}
	bcfg := gdprbench.Config{Subjects: subjects, RecordsPerSubject: 5, Role: role}
	if err := gdprbench.Populate(st, core.Ctx{Actor: "controller", Purpose: "populate"}, bcfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	bcfg.Operations = b.N
	res, err := gdprbench.Run(st, bcfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d errors", res.Errors)
	}
}

func BenchmarkGDPRBench_Customer(b *testing.B)   { benchPersona(b, gdprbench.RoleCustomer) }
func BenchmarkGDPRBench_Controller(b *testing.B) { benchPersona(b, gdprbench.RoleController) }
func BenchmarkGDPRBench_Processor(b *testing.B)  { benchPersona(b, gdprbench.RoleProcessor) }
func BenchmarkGDPRBench_Regulator(b *testing.B)  { benchPersona(b, gdprbench.RoleRegulator) }

// BenchmarkForget_KeysPerOwner is the Article 17 cost-model benchmark:
// FORGETUSER latency as a function of the subject's key count, eager
// deletion (shred=false) vs the crypto-shred fast path (shred=true).
// Eager scales linearly with keys-per-owner; shredding stays flat — the
// erasure is one keyring mutation plus two journal appends regardless of
// cardinality, with physical reclamation deferred to the lazy-delete
// sweep (run off the timer here).
func BenchmarkForget_KeysPerOwner(b *testing.B) {
	for _, keys := range []int{16, 256, 4096} {
		for _, shred := range []bool{false, true} {
			b.Run(fmt.Sprintf("keys=%d/shred=%v", keys, shred), func(b *testing.B) {
				cfg := core.Config{
					Compliant:  true,
					Timing:     core.TimingEventual,
					Capability: core.CapabilityPartial,
				}
				if shred {
					cfg.Envelope = true
					key, _ := cryptoutil.RandomKey()
					cfg.MasterKey = key
				}
				st, err := core.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				ctx := core.Ctx{Actor: "bench", Purpose: "p"}
				val := make([]byte, 128)
				entries := make([]core.BatchEntry, keys)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					// Reclaim the previous iteration's dead ciphertext off
					// the timer so the engine does not grow across b.N.
					st.DrainErasure()
					owner := fmt.Sprintf("forget-subject-%d", i)
					for j := range entries {
						entries[j] = core.BatchEntry{
							Key: fmt.Sprintf("%s:rec%04d", owner, j), Value: val,
						}
					}
					if err := st.PutBatch(ctx, entries, core.PutOptions{
						Owner: owner, Purposes: []string{"p"},
					}); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := st.Forget(core.Ctx{Actor: owner}, owner); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_EnvelopeEncryption isolates the key-level encryption
// alternative of §4.2: per-record seal/open under per-owner keys.
func BenchmarkAblation_EnvelopeEncryption(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Strict("")
			cfg.DefaultTTL = 24 * time.Hour
			if on {
				cfg.Envelope = true
				key, _ := cryptoutil.RandomKey()
				cfg.MasterKey = key
			}
			st, err := core.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
			ctx := core.Ctx{Actor: "bench", Purpose: "p"}
			opts := core.PutOptions{Owner: "subject", Purposes: []string{"p"}}
			val := make([]byte, benchValueSize)
			if err := st.Put(ctx, "k", val, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if _, err := st.Get(ctx, "k"); err != nil {
						b.Fatal(err)
					}
				} else if err := st.Put(ctx, "k", val, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MetadataIndex compares the owner-index lookup behind
// Art. 15/17/20 against the full keyspace scan a store without metadata
// indexing would need.
func BenchmarkAblation_MetadataIndex(b *testing.B) {
	cfg := core.Strict("")
	cfg.DefaultTTL = 24 * time.Hour
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "ctl", Role: acl.RoleController})
	ctx := core.Ctx{Actor: "ctl", Purpose: "p"}
	const owners, each = 200, 20
	for o := 0; o < owners; o++ {
		owner := fmt.Sprintf("owner%04d", o)
		for j := 0; j < each; j++ {
			key := fmt.Sprintf("%s:rec%03d", owner, j)
			if err := st.Put(ctx, key, []byte("v"), core.PutOptions{Owner: owner, Purposes: []string{"p"}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			keys, err := st.OwnerKeys(ctx, fmt.Sprintf("owner%04d", i%owners))
			if err != nil || len(keys) != each {
				b.Fatalf("keys=%d err=%v", len(keys), err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			owner := fmt.Sprintf("owner%04d", i%owners)
			n := 0
			st.Engine().RangeKeys(func(k string, v []byte) bool {
				if len(k) >= len(owner) && k[:len(owner)] == owner {
					n++
				}
				return true
			})
			if n != each {
				b.Fatalf("scan found %d", n)
			}
		}
	})
}

// BenchmarkAblation_AuditModes isolates the audit trail cost (the §4.1
// monitoring feature) per durability mode.
func BenchmarkAblation_AuditModes(b *testing.B) {
	for _, mode := range []audit.SyncMode{audit.SyncNone, audit.SyncBatched, audit.SyncEveryOp} {
		b.Run(mode.String(), func(b *testing.B) {
			tr, err := audit.Open(audit.Options{
				Path: filepath.Join(b.TempDir(), "audit.log"),
				Mode: mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			rec := audit.Record{Actor: "svc", Op: "GET", Key: "k", Owner: "alice", Outcome: audit.OutcomeOK}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAudit_Enqueue measures the data-path cost of the async
// pipeline's Append alone: a bounded-queue enqueue, no handshake (batched
// mode), workers draining concurrently.
func BenchmarkAudit_Enqueue(b *testing.B) {
	tr, err := audit.Open(audit.Options{
		Path: filepath.Join(b.TempDir(), "audit.log"),
		Mode: audit.SyncBatched,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rec := audit.Record{Actor: "svc", Op: "GET", Key: "k", Owner: "alice", Outcome: audit.OutcomeOK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAudit_WorkerThroughput measures end-to-end pipeline throughput:
// enqueue everything, then drain to the file sink (the Sync barrier waits
// for the workers), so the figure includes masking off, serialization and
// buffered writes.
func BenchmarkAudit_WorkerThroughput(b *testing.B) {
	tr, err := audit.Open(audit.Options{
		Path: filepath.Join(b.TempDir(), "audit.log"),
		Mode: audit.SyncBatched,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rec := audit.Record{Actor: "svc", Op: "GET", Key: "k", Owner: "alice", Outcome: audit.OutcomeOK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAudit_StrictHandshake measures the strict-compliance ack path:
// each Append returns only after its record is fsynced (the §4.1 real-time
// cost, now paid through the pipeline's completion handshake).
func BenchmarkAudit_StrictHandshake(b *testing.B) {
	tr, err := audit.Open(audit.Options{
		Path: filepath.Join(b.TempDir(), "audit.log"),
		Mode: audit.SyncEveryOp,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rec := audit.Record{Actor: "svc", Op: "PUT", Key: "k", Owner: "alice", Outcome: audit.OutcomeOK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAudit_StrictGroupCommitParallel shows the group-commit upside:
// concurrent strict appends share fsyncs, so per-append cost falls with
// parallelism while each ack still implies durability.
func BenchmarkAudit_StrictGroupCommitParallel(b *testing.B) {
	tr, err := audit.Open(audit.Options{
		Path: filepath.Join(b.TempDir(), "audit.log"),
		Mode: audit.SyncEveryOp,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rec := audit.Record{Actor: "svc", Op: "PUT", Key: "k", Owner: "alice", Outcome: audit.OutcomeOK}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := tr.Append(rec); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkAudit_MaskedEnqueue adds the PII-masking stage, so the gate
// watches the HMAC cost too.
func BenchmarkAudit_MaskedEnqueue(b *testing.B) {
	tr, err := audit.Open(audit.Options{
		Path:    filepath.Join(b.TempDir(), "audit.log"),
		Mode:    audit.SyncBatched,
		MaskKey: []byte("bench-mask-key"),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rec := audit.Record{Actor: "svc", Op: "GET", Key: "k", Owner: "alice", Outcome: audit.OutcomeOK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblation_AtRestCipher measures the LUKS stand-in's raw
// throughput: XORing the offset-keyed AES-CTR keystream over data.
func BenchmarkAblation_AtRestCipher(b *testing.B) {
	key := make([]byte, 32)
	c, err := cryptoutil.NewOffsetCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Apply(buf, int64(i)*int64(len(buf)))
	}
}

// BenchmarkAblation_RightsOps measures the data-subject rights operations
// themselves (access, export, forget) at a fixed subject size.
func BenchmarkAblation_RightsOps(b *testing.B) {
	newStore := func(b *testing.B) (*core.Store, core.Ctx) {
		cfg := core.EventualFull("") // avoid per-op rewrite dominating Forget
		cfg.DefaultTTL = 24 * time.Hour
		st, err := core.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })
		st.ACL().AddPrincipal(acl.Principal{ID: "ctl", Role: acl.RoleController})
		return st, core.Ctx{Actor: "ctl", Purpose: "p"}
	}
	fill := func(b *testing.B, st *core.Store, ctx core.Ctx, owner string) {
		for j := 0; j < 20; j++ {
			key := fmt.Sprintf("%s:rec%03d", owner, j)
			if err := st.Put(ctx, key, []byte("value-payload"), core.PutOptions{Owner: owner, Purposes: []string{"p"}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("access", func(b *testing.B) {
		st, ctx := newStore(b)
		fill(b, st, ctx, "alice")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Access(ctx, "alice"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("export", func(b *testing.B) {
		st, ctx := newStore(b)
		fill(b, st, ctx, "alice")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Export(ctx, "alice"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forget", func(b *testing.B) {
		st, ctx := newStore(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			owner := fmt.Sprintf("owner%d", i)
			fill(b, st, ctx, owner)
			b.StartTimer()
			if _, err := st.Forget(ctx, owner); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- engine microbenchmarks ---

// benchGoroutines raises the goroutine count of the *Parallel benchmarks
// to at least 8: RunParallel spawns GOMAXPROCS×SetParallelism goroutines,
// so the actual count is the smallest multiple of GOMAXPROCS ≥ 8 (exactly
// 8 when GOMAXPROCS divides 8). Worker ids wrap modulo 8 onto the
// preloaded key ranges, so on other core counts some ranges carry one
// extra goroutine — fine for a contention benchmark, but compare numbers
// across machines with the same GOMAXPROCS.
func benchGoroutines(b *testing.B) int {
	procs := runtime.GOMAXPROCS(0)
	n := (8 + procs - 1) / procs
	b.SetParallelism(n)
	return n * procs
}

// BenchmarkEngine_SetParallel hammers SET from 8 goroutines over disjoint
// key ranges — the workload the sharded engine is built for: independent
// keys must proceed in parallel instead of convoying on one global mutex.
func BenchmarkEngine_SetParallel(b *testing.B) {
	db := store.New(store.Options{})
	val := make([]byte, benchValueSize)
	var worker atomic.Int64
	benchGoroutines(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		i := 0
		for pb.Next() {
			db.Set(fmt.Sprintf("w%d-%d", id, i%benchRecords), val)
			i++
		}
	})
}

// BenchmarkEngine_GetParallel is the read-side contention benchmark.
func BenchmarkEngine_GetParallel(b *testing.B) {
	db := store.New(store.Options{})
	val := make([]byte, benchValueSize)
	for w := 1; w <= 8; w++ {
		for i := 0; i < benchRecords; i++ {
			db.Set(fmt.Sprintf("w%d-%d", w, i), val)
		}
	}
	var worker atomic.Int64
	benchGoroutines(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)%8 + 1
		i := 0
		for pb.Next() {
			db.GetNoCopy(fmt.Sprintf("w%d-%d", id, i%benchRecords))
			i++
		}
	})
}

// BenchmarkCore_GPutParallel drives the compliance layer's GPUT path from 8
// goroutines, each writing records for a different data subject — the
// per-owner striping case: different owners must not contend.
func BenchmarkCore_GPutParallel(b *testing.B) {
	cfg := core.Config{Compliant: true, Timing: core.TimingEventual, Capability: core.CapabilityFull}
	cfg.DefaultTTL = 24 * time.Hour
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
	ctx := core.Ctx{Actor: "bench", Purpose: "benchmark"}
	val := make([]byte, benchValueSize)
	var worker atomic.Int64
	benchGoroutines(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		owner := fmt.Sprintf("subject%d", id)
		opts := core.PutOptions{Owner: owner, Purposes: []string{"benchmark"}}
		i := 0
		for pb.Next() {
			if err := st.Put(ctx, fmt.Sprintf("%s:rec%d", owner, i%benchRecords), val, opts); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkCore_GGetParallel is the owner-striped read path.
func BenchmarkCore_GGetParallel(b *testing.B) {
	cfg := core.Config{Compliant: true, Timing: core.TimingEventual, Capability: core.CapabilityFull}
	cfg.DefaultTTL = 24 * time.Hour
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
	ctx := core.Ctx{Actor: "bench", Purpose: "benchmark"}
	val := make([]byte, benchValueSize)
	for w := 1; w <= 8; w++ {
		owner := fmt.Sprintf("subject%d", w)
		opts := core.PutOptions{Owner: owner, Purposes: []string{"benchmark"}}
		for i := 0; i < 256; i++ {
			if err := st.Put(ctx, fmt.Sprintf("%s:rec%d", owner, i), val, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	var worker atomic.Int64
	benchGoroutines(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)%8 + 1
		owner := fmt.Sprintf("subject%d", id)
		i := 0
		for pb.Next() {
			if _, err := st.Get(ctx, fmt.Sprintf("%s:rec%d", owner, i%256)); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkEngine_Set(b *testing.B) {
	db := store.New(store.Options{})
	val := make([]byte, benchValueSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Set(ycsb.KeyName(int64(i%benchRecords)), val)
	}
}

func BenchmarkEngine_Get(b *testing.B) {
	db := store.New(store.Options{})
	val := make([]byte, benchValueSize)
	for i := 0; i < benchRecords; i++ {
		db.Set(ycsb.KeyName(int64(i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.GetNoCopy(ycsb.KeyName(int64(i % benchRecords)))
	}
}

func BenchmarkRESPRoundTrip(b *testing.B) {
	st, err := core.Open(core.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	db, err := ycsb.DialNetworkDB(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.Insert("k", []byte("v")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Read("k"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- RESP serialization hot path (PR: wire-speed client API) ---

// BenchmarkResp_WriteCommand measures the client's command-encode fast
// path: WriteCommandBytes straight into a bufio.Writer, no Value boxing.
// The allocation budget is asserted at 0 allocs/op by the resp package's
// TestWriteCommandBytesAllocFree; the benchmark tracks the cycle cost.
func BenchmarkResp_WriteCommand(b *testing.B) {
	w := resp.NewWriter(io.Discard)
	args := [][]byte{[]byte("SET"), []byte("user0000000042"), make([]byte, 100)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteCommandBytes(args); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResp_ReadReply measures decode of a typical small pipeline
// reply batch (+OK, an integer, a bulk string) from a pre-encoded buffer.
func BenchmarkResp_ReadReply(b *testing.B) {
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	for i := 0; i < 3; i++ {
		w.WriteValue(resp.SimpleStringValue("OK"))
		w.WriteValue(resp.IntegerValue(12345))
		w.WriteValue(resp.BulkValue(make([]byte, 100)))
	}
	w.Flush()
	wire := buf.Bytes()
	rd := bytes.NewReader(wire)
	r := resp.NewReader(rd)
	b.SetBytes(int64(len(wire) / 9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%9 == 0 {
			rd.Reset(wire)
			r.Reset(rd)
		}
		if _, err := r.ReadValue(); err != nil {
			b.Fatal(err)
		}
	}
}
