// Command gdprkv-server runs the GDPR-compliant key-value server.
//
// Usage:
//
//	gdprkv-server [flags]
//
//	-addr string        listen address (default "127.0.0.1:6380")
//	-compliant          enable the GDPR compliance layer
//	-timing string      "eventual" or "realtime" (default "eventual")
//	-capability string  "partial" or "full" (default "full")
//	-aof string         append-only file path ("" disables persistence)
//	-aof-sync string    "no", "everysec", or "always" (default by timing)
//	-journal-reads      log reads through the AOF (§4.1 retrofit)
//	-audit string       audit trail path ("" keeps it in memory)
//	-audit-workers int  audit pipeline worker goroutines (0 = default)
//	-audit-queue int    audit pipeline queue depth (0 = default)
//	-audit-backpressure "block" (default) or "drop" when the audit queue is full
//	-audit-mask         pseudonymize key/owner/detail in every audit record
//	-audit-sink string  export the trail to tcp://host:port or unix:///path
//	-atrest-hex string  64-hex-char at-rest encryption key (LUKS stand-in)
//	-envelope-hex string 64-hex-char master key for per-owner envelope
//	                    encryption (enables O(1) crypto-shredding erasure)
//	-erasure-sweep-interval dur  lazy-delete sweep cadence (default 100ms)
//	-erasure-sweep-budget int    max records one sweep cycle deletes (default 4096)
//	-tls                front the server with a TLS tunnel (stunnel stand-in)
//	-default-ttl dur    default retention bound for writes (e.g. 720h)
//	-locations string   comma-separated allowed storage regions
//	-expirer            run the background active-expiry loop (default true)
//	-shards int         engine lock-stripe count, power of two (0 = default; 1 = single mutex)
//	-replicaof string   replicate from the primary at host:port (server starts read-only)
//	-repl-actor string  actor presented during the replication handshake (AUTH)
//	-cluster-node v     cluster topology entry id=host:port:slots[/replica,...]
//	                    (repeatable; together the entries must cover all 1024
//	                    slots exactly once; the optional suffix lists the
//	                    primary's replica addresses)
//	-cluster-self id    this server's node id in the topology (enables cluster
//	                    mode; combined with -replicaof the server runs as a
//	                    cluster replica of that node, serving reads for its
//	                    slots and standing by for promotion)
//	-ops-addr string    serve the HTTP ops surface (dashboard, /info JSON,
//	                    /metrics Prometheus exposition, /events SSE) here
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gdprstore/internal/aof"
	"gdprstore/internal/audit"
	"gdprstore/internal/cluster"
	"gdprstore/internal/core"
	"gdprstore/internal/ops"
	"gdprstore/internal/replica"
	"gdprstore/internal/server"
	"gdprstore/internal/tlsproxy"
)

// stringList collects a repeatable flag value.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, " ") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:6380", "listen address")
		compliant    = flag.Bool("compliant", false, "enable the GDPR compliance layer")
		timing       = flag.String("timing", "eventual", `"eventual" or "realtime"`)
		capability   = flag.String("capability", "full", `"partial" or "full"`)
		aofPath      = flag.String("aof", "", "append-only file path (empty disables persistence)")
		aofSync      = flag.String("aof-sync", "", `"no", "everysec", or "always" (default derived from timing)`)
		journalReads = flag.Bool("journal-reads", false, "log reads through the AOF (the paper's §4.1 retrofit)")
		auditPath    = flag.String("audit", "", "audit trail path (empty keeps the trail in memory)")
		auditWorkers = flag.Int("audit-workers", 0, "audit pipeline worker goroutines (0 = default)")
		auditQueue   = flag.Int("audit-queue", 0, "audit pipeline queue depth (0 = default)")
		auditBP      = flag.String("audit-backpressure", "", `"block" (default) or "drop" when the audit queue is full`)
		auditMask    = flag.Bool("audit-mask", false, "pseudonymize key/owner/detail in every audit record")
		auditSink    = flag.String("audit-sink", "", "export the trail to tcp://host:port or unix:///path")
		atRestHex    = flag.String("atrest-hex", "", "64-hex-char at-rest encryption key (LUKS stand-in)")
		envelopeHex  = flag.String("envelope-hex", "", "64-hex-char envelope master key (per-owner encryption, O(1) crypto-shred erasure)")
		sweepEvery   = flag.Duration("erasure-sweep-interval", 0, "lazy-delete sweep cadence (0 = 100ms default)")
		sweepBudget  = flag.Int("erasure-sweep-budget", 0, "max records one sweep cycle deletes (0 = 4096 default)")
		withTLS      = flag.Bool("tls", false, "front the server with a TLS tunnel (stunnel stand-in)")
		defaultTTL   = flag.Duration("default-ttl", 0, "default retention bound for writes")
		locations    = flag.String("locations", "", "comma-separated allowed storage regions")
		expirer      = flag.Bool("expirer", true, "run the background active-expiry loop")
		shards       = flag.Int("shards", 0, "engine lock-stripe count, rounded up to a power of two (0 = default; 1 = single mutex)")
		replicaof    = flag.String("replicaof", "", "replicate from the primary at host:port (server starts read-only)")
		replActor    = flag.String("repl-actor", "", "actor presented during the replication handshake (AUTH)")
		clusterSelf  = flag.String("cluster-self", "", "this server's node id in the cluster topology (enables cluster mode)")
		opsAddrF     = flag.String("ops-addr", "", "serve the HTTP ops surface (dashboard, /info, /metrics, /events) at this address")
	)
	var clusterNodes stringList
	flag.Var(&clusterNodes, "cluster-node", "cluster topology entry id=host:port:slots[/replica,...] (repeat per node)")
	flag.Parse()
	if (*clusterSelf == "") != (len(clusterNodes) == 0) {
		log.Fatal("-cluster-self and -cluster-node must be given together")
	}
	// -cluster-self plus -replicaof together run a *cluster replica*: the
	// server announces its primary's node id and slots (serving reads for
	// them) while replicating from the primary, and is the promotion
	// candidate when the primary dies (REPLICAOF NO ONE + CLUSTER SETNODE
	// on the fleet re-point the id at this server's address).

	cfg := core.Config{
		Compliant:       *compliant,
		AOFPath:         *aofPath,
		JournalReads:    *journalReads,
		AuditEnabled:    *compliant,
		AuditPath:       *auditPath,
		AuditWorkers:    *auditWorkers,
		AuditQueueDepth: *auditQueue,
		AuditMask:       *auditMask,
		AuditSocket:     *auditSink,
		DefaultTTL:      *defaultTTL,
		Shards:          *shards,
	}
	switch *auditBP {
	case "":
	case "block":
		cfg.AuditBackpressure = core.Ptr(audit.BackpressureBlock)
	case "drop":
		cfg.AuditBackpressure = core.Ptr(audit.BackpressureDrop)
	default:
		log.Fatalf("unknown -audit-backpressure %q", *auditBP)
	}
	switch *timing {
	case "realtime":
		cfg.Timing = core.TimingRealTime
	case "eventual":
		cfg.Timing = core.TimingEventual
	default:
		log.Fatalf("unknown -timing %q", *timing)
	}
	switch *capability {
	case "full":
		cfg.Capability = core.CapabilityFull
	case "partial":
		cfg.Capability = core.CapabilityPartial
	default:
		log.Fatalf("unknown -capability %q", *capability)
	}
	switch *aofSync {
	case "":
	case "no":
		cfg.AOFSync = core.Ptr(aof.SyncNo)
	case "everysec":
		cfg.AOFSync = core.Ptr(aof.SyncEverySec)
	case "always":
		cfg.AOFSync = core.Ptr(aof.SyncAlways)
	default:
		log.Fatalf("unknown -aof-sync %q", *aofSync)
	}
	if *atRestHex != "" {
		key, err := hex.DecodeString(*atRestHex)
		if err != nil || len(key) != 32 {
			log.Fatalf("-atrest-hex must be 64 hex chars (32 bytes)")
		}
		cfg.AtRestKey = key
	}
	if *envelopeHex != "" {
		key, err := hex.DecodeString(*envelopeHex)
		if err != nil || len(key) != 32 {
			log.Fatalf("-envelope-hex must be 64 hex chars (32 bytes)")
		}
		cfg.Envelope = true
		cfg.MasterKey = key
		cfg.ErasureSweepInterval = *sweepEvery
		cfg.ErasureSweepBudget = *sweepBudget
	}
	if *locations != "" {
		cfg.AllowedLocations = strings.Split(*locations, ",")
		cfg.DefaultLocation = cfg.AllowedLocations[0]
	}

	st, err := core.Open(cfg)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer st.Close()
	// A replica receives its deletions (including retention expiry) from
	// the primary's journal stream; running a local active expirer too
	// would only race it, so replicas keep lazy expiry only.
	if *expirer && *replicaof == "" {
		st.StartExpirer()
		defer st.StopExpirer()
	}
	// Same reasoning for the lazy-delete sweeper: a replica receives the
	// primary sweep's DELs over the journal stream, so only primaries
	// physically reclaim crypto-shredded ciphertext themselves.
	if *envelopeHex != "" && *replicaof == "" {
		st.StartSweeper()
		defer st.StopSweeper()
	}

	srv, err := server.Listen(*addr, st)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("gdprkv-server listening on %s (compliant=%v timing=%s capability=%s)\n",
		srv.Addr(), cfg.Compliant, cfg.Timing, cfg.Capability)
	if *opsAddrF != "" {
		o, err := ops.Listen(*opsAddrF, srv)
		if err != nil {
			log.Fatalf("ops: %v", err)
		}
		defer o.Close()
		fmt.Printf("ops surface on http://%s (dashboard, /info, /metrics, /events)\n", o.Addr())
	}
	if *clusterSelf != "" {
		m, err := cluster.ParseNodes(clusterNodes)
		if err != nil {
			log.Fatalf("cluster topology: %v", err)
		}
		if err := srv.EnableCluster(server.ClusterConfig{Self: *clusterSelf, Map: m}); err != nil {
			log.Fatalf("cluster: %v", err)
		}
		self, _ := m.NodeByID(*clusterSelf)
		role := "node"
		if *replicaof != "" {
			role = "replica of"
		}
		fmt.Printf("cluster mode: %s %s serving slots %v of %d nodes\n",
			role, self.ID, self.Ranges, len(m.Nodes()))
	}
	if *replicaof != "" {
		srv.ReplicaOf(*replicaof, replica.NodeOptions{Actor: *replActor})
		if *expirer || *envelopeHex != "" {
			// The expirer and sweeper were withheld above while replicating;
			// a promotion (REPLICAOF NO ONE) resumes the primary's retention
			// and reclamation duties.
			runExpirer, runSweeper := *expirer, *envelopeHex != ""
			srv.SetPromoteHook(func() {
				if runExpirer {
					st.StartExpirer()
				}
				if runSweeper {
					st.StartSweeper()
				}
			})
		}
		fmt.Printf("replicating from %s (read-only until REPLICAOF NO ONE)\n", *replicaof)
	}

	var tun *tlsproxy.Tunnel
	if *withTLS {
		tun, err = tlsproxy.NewTunnel(srv.Addr(), tlsproxy.Throttle{})
		if err != nil {
			log.Fatalf("tls tunnel: %v", err)
		}
		defer tun.Close()
		fmt.Printf("TLS tunnel entry point: %s\n", tun.Addr())
	}

	// Periodic maintenance: ghost-metadata pruning, deferred compaction.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st.Maintain()
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	fmt.Println("shutting down")
}
