// Command gdprkv-cli is an interactive RESP client for gdprkv-server, in
// the spirit of redis-cli. Lines are split on whitespace (double quotes
// group arguments) and sent verbatim, so every server command — including
// the GDPR family (AUTH, PURPOSE, GPUT, GETUSER, FORGETUSER, OBJECT,
// BREACH, ...) — is reachable.
//
// Usage:
//
//	gdprkv-cli [-addr host:port] [-timeout 10s] [command args...]
//
// With a command, it runs once and exits; without, it reads a REPL. The
// REPL intentionally uses a pool of exactly one connection so stateful
// session commands typed interactively (AUTH, PURPOSE) keep affecting
// every subsequent command, as they would on a raw connection.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gdprstore/internal/resp"
	"gdprstore/pkg/gdprkv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "server address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command I/O timeout")
	flag.Parse()

	ctx := context.Background()
	c, err := gdprkv.Dial(ctx, *addr,
		gdprkv.WithPoolSize(1), gdprkv.WithIOTimeout(*timeout))
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		runOnce(ctx, c, args)
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	redials := c.Stats().Redials
	fmt.Printf("%s> ", *addr)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			args := splitArgs(line)
			if strings.EqualFold(args[0], "quit") || strings.EqualFold(args[0], "exit") {
				return
			}
			runOnce(ctx, c, args)
			// A redial replaces the REPL's only connection with a fresh,
			// unauthenticated one: AUTH/PURPOSE typed earlier are gone.
			// Say so instead of letting the next command fail mysteriously.
			if r := c.Stats().Redials; r != redials {
				redials = r
				fmt.Println("(reconnected — session state reset; re-issue AUTH/PURPOSE if you had set them)")
			}
		}
		fmt.Printf("%s> ", *addr)
	}
}

func runOnce(ctx context.Context, c *gdprkv.Client, args []string) {
	v, err := c.Do(ctx, args...)
	if err != nil {
		var se *gdprkv.ServerError
		if errors.As(err, &se) {
			fmt.Printf("(error) %s %s\n", se.Code, se.Message)
			return
		}
		fmt.Fprintf(os.Stderr, "io error: %v\n", err)
		os.Exit(1)
	}
	printValue(v, "")
}

func printValue(v resp.Value, indent string) {
	switch v.Type {
	case resp.SimpleString:
		fmt.Printf("%s%s\n", indent, v.Text())
	case resp.Error:
		// GMGET reports per-key failures as in-array errors.
		fmt.Printf("%s(error) %s\n", indent, v.Text())
	case resp.Integer:
		fmt.Printf("%s(integer) %d\n", indent, v.Int)
	case resp.BulkString:
		if v.Null {
			fmt.Printf("%s(nil)\n", indent)
			return
		}
		fmt.Printf("%s%q\n", indent, v.Text())
	case resp.Array:
		if v.Null {
			fmt.Printf("%s(nil)\n", indent)
			return
		}
		if len(v.Array) == 0 {
			fmt.Printf("%s(empty array)\n", indent)
			return
		}
		for i, e := range v.Array {
			fmt.Printf("%s%d) ", indent, i+1)
			printValue(e, "")
		}
	default:
		fmt.Printf("%s%v\n", indent, v)
	}
}

// splitArgs splits on spaces, honouring double quotes.
func splitArgs(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case ch == '"':
			inQuote = !inQuote
		case ch == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(ch)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
