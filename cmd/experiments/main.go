// Command experiments regenerates every table and figure of the paper.
//
// Usage:
//
//	experiments -run all                 # everything, CI scale
//	experiments -run fig1 -records 100000 -ops 2000000   # paper scale
//	experiments -run fig2
//	experiments -run table1
//	experiments -run fsync
//	experiments -run spectrum
//	experiments -run tls
//	experiments -run fastexpiry
//	experiments -run erasure
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "table1|fig1|fig2|fsync|spectrum|tls|fastexpiry|erasure|all")
		records = flag.Int64("records", 5000, "fig1/fsync/spectrum record count")
		ops     = flag.Int64("ops", 20000, "fig1/fsync/spectrum operation count")
		workers = flag.Int("workers", 8, "client parallelism")
		pool    = flag.Int("pool", 0, "fig1: share one pooled pkg/gdprkv client of N connections across workers (0 = one connection per worker)")
		dir     = flag.String("dir", "", "working directory for AOF/audit files")
	)
	flag.Parse()

	want := func(name string) bool { return *run == "all" || *run == name }

	if want("table1") {
		section("Table 1 — GDPR articles vs storage features")
		fmt.Print(core.FormatTable1())
	}

	if want("fig2") {
		section("Figure 2 — erasure delay of expired keys (20% of total)")
		rows, err := experiments.Figure2(experiments.Figure2Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFigure2(rows))
	}

	if want("fastexpiry") {
		section("§4.3 — fast active expiry up to 1M keys (paper: sub-second)")
		out, err := experiments.FastExpirySweep(nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range []int{100_000, 250_000, 500_000, 1_000_000} {
			fmt.Printf("%9d keys: erased in %v\n", n, out[n].Round(time.Microsecond))
		}
	}

	if want("fsync") {
		section("§4.1 — logging durability spectrum (YCSB-A, embedded)")
		rows, err := experiments.FsyncSpectrum(*dir, *records, *ops, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFsync(rows))
	}

	if want("fig1") {
		section("Figure 1 — YCSB throughput: Unmodified vs AOF-w/-sync vs LUKS+TLS")
		rows, err := experiments.Figure1(experiments.Figure1Config{
			RecordCount: *records, OperationCount: *ops, Workers: *workers, Dir: *dir,
			PoolSize: *pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFigure1(rows))
	}

	if want("spectrum") {
		section("§3.2 — compliance spectrum ablation (YCSB-A)")
		rows, err := experiments.ComplianceSpectrum(*dir, *records, *ops, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatSpectrum(rows))
	}

	if want("erasure") {
		section("Art. 17 — erasure latency across the compliance spectrum")
		d := *dir
		if d == "" {
			var err error
			d, err = mkTemp()
			if err != nil {
				log.Fatal(err)
			}
		}
		rows, err := experiments.ErasureLatency(d, 50, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatErasure(rows))
	}

	if want("tls") {
		section("§4.2 — TLS tunnel bandwidth collapse")
		rows, err := experiments.TLSBandwidth(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTLSBandwidth(rows))
	}
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func mkTemp() (string, error) { return os.MkdirTemp("", "gdpr-exp") }
