// Command gdprbench runs the GDPR-persona workloads (customer,
// controller, processor, regulator) against an embedded compliant store
// and prints per-operation latency summaries — the benchmark style of
// GDPRbench, this paper's follow-up.
//
// Example:
//
//	gdprbench -subjects 1000 -records 10 -ops 50000 -role customer
//	gdprbench -role all
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/gdprbench"
)

func main() {
	var (
		subjects = flag.Int("subjects", 200, "number of data subjects")
		records  = flag.Int("records", 10, "records per subject")
		ops      = flag.Int("ops", 10000, "operations per role run")
		roleStr  = flag.String("role", "all", "customer|controller|processor|regulator|all")
		timing   = flag.String("timing", "realtime", "eventual|realtime")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		batch    = flag.Int("batch", 1, "group data-path operations into PutBatch/GetBatch calls of N keys")
		shards   = flag.Int("shards", 0, "engine lock-stripe count, power of two (0 = default; 1 = single mutex)")
	)
	flag.Parse()

	cfg := core.Strict("")
	if *timing == "eventual" {
		cfg = core.EventualFull("")
	}
	cfg.DefaultTTL = 24 * time.Hour
	cfg.Shards = *shards
	st, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "processor", Role: acl.RoleProcessor})
	st.ACL().AddPrincipal(acl.Principal{ID: "regulator", Role: acl.RoleRegulator})
	for i := 0; i < *subjects; i++ {
		st.ACL().AddPrincipal(acl.Principal{ID: gdprbench.SubjectName(i), Role: acl.RoleSubject})
	}
	if err := st.ACL().AddGrant(acl.Grant{Principal: "processor", Purpose: "*"}); err != nil {
		log.Fatal(err)
	}

	bcfg := gdprbench.Config{
		Subjects: *subjects, RecordsPerSubject: *records,
		Operations: *ops, Seed: *seed, Batch: *batch,
	}
	ctl := core.Ctx{Actor: "controller", Purpose: "populate"}
	start := time.Now()
	if err := gdprbench.Populate(st, ctl, bcfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populated %d subjects x %d records in %v\n",
		*subjects, *records, time.Since(start).Round(time.Millisecond))

	roles := gdprbench.Roles
	if *roleStr != "all" {
		roles = []gdprbench.Role{gdprbench.Role(*roleStr)}
	}
	for _, role := range roles {
		rcfg := bcfg
		rcfg.Role = role
		res, err := gdprbench.Run(st, rcfg)
		if err != nil {
			log.Fatalf("%s: %v", role, err)
		}
		fmt.Println(res)
	}
}
