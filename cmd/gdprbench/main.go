// Command gdprbench runs the GDPR-persona workloads (customer,
// controller, processor, regulator) and prints per-operation latency
// summaries — the benchmark style of GDPRbench, this paper's follow-up.
// It runs against an embedded compliant store by default, a live server
// with -addr, or a cluster of primaries with -cluster; the network modes
// drive everything through the public SDK with one single-connection
// session per (persona actor, purpose).
//
// Examples:
//
//	gdprbench -subjects 1000 -records 10 -ops 50000 -role customer
//	gdprbench -role all
//	gdprbench -addr 127.0.0.1:6380 -role all
//	gdprbench -cluster 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/core"
	"gdprstore/internal/gdprbench"
	"gdprstore/pkg/gdprkv"
)

func main() {
	var (
		subjects = flag.Int("subjects", 200, "number of data subjects")
		records  = flag.Int("records", 10, "records per subject")
		ops      = flag.Int("ops", 10000, "operations per role run")
		roleStr  = flag.String("role", "all", "customer|controller|processor|regulator|all")
		timing   = flag.String("timing", "realtime", "embedded mode: eventual|realtime")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		batch    = flag.Int("batch", 1, "group data-path operations into batches of N keys")
		shards   = flag.Int("shards", 0, "embedded mode: engine lock-stripe count, power of two (0 = default; 1 = single mutex)")
		addr     = flag.String("addr", "", "network mode: run against the server at this address via pkg/gdprkv")
		clusterF = flag.String("cluster", "", "cluster mode: comma-separated primary addresses (implies network mode)")
		auditW   = flag.Int("audit-workers", 0, "embedded mode: audit pipeline workers (0 = default)")
		auditBP  = flag.String("audit-backpressure", "", `embedded mode: "block" (default) or "drop" when the audit queue is full`)
		auditM   = flag.Bool("audit-mask", false, "embedded mode: pseudonymize PII in audit records")
		autoB    = flag.Int("auto-batch", 0, "network mode: dial sessions with WithAutoBatch coalescing, maxOps N and the default window")
		scenario = flag.String("scenario", "personas", "personas|erasure|retention-storm|dsar-burst|multi-regulation|breach-replay")
		eraseKey = flag.String("erasure-keys", "16,256,4096", "erasure scenario: comma-separated keys-per-owner points")
		eraseOwn = flag.Int("erasure-owners", 8, "erasure scenario: owners erased per point")
		opsAddr  = flag.String("ops-addr", "", "sample a live server's ops surface (host:port of -ops-addr) mid-run and report observed compliance-lag maxima")

		stormKeys    = flag.Int("storm-keys", 20000, "retention-storm: records expiring simultaneously")
		stormHorizon = flag.Duration("storm-horizon", time.Second, "retention-storm: lead time before the shared expiry deadline")
		dsarReq      = flag.Int("dsar-requests", 2000, "dsar-burst: total GETUSER/EXPORTUSER requests")
		dsarConc     = flag.Int("dsar-concurrency", 32, "dsar-burst: concurrent DSAR requesters")
		dsarWriters  = flag.Int("dsar-writers", 4, "dsar-burst: background controller write loops")
		mrOps        = flag.Int("multireg-ops", 20000, "multi-regulation: reads per policy regime")
		mrOptOut     = flag.Float64("multireg-optout", 0.30, "multi-regulation: fraction of subjects filing the CCPA do-not-sell opt-out")
		brRecords    = flag.Int("breach-records", 2_000_000, "breach-replay: synthetic audit-trail size")
		brWriters    = flag.Int("breach-writers", 1, "breach-replay: live controller write loops during the replay")
		brUnmasked   = flag.Bool("breach-unmasked", false, "breach-replay: replay an unmasked trail instead of the pseudonymized default")
	)
	flag.Parse()

	switch *scenario {
	case "erasure":
		runErasure(*eraseKey, *eraseOwn, *seed)
		return
	case "retention-storm":
		sampleOps(*opsAddr, func() {
			res, err := gdprbench.RunStorm(gdprbench.StormConfig{
				Keys: *stormKeys, Horizon: *stormHorizon, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(gdprbench.FormatStorm(res))
		})
		return
	case "dsar-burst":
		sampleOps(*opsAddr, func() {
			res, err := gdprbench.RunDSAR(gdprbench.DSARConfig{
				Subjects: *subjects, RecordsPerSubject: *records,
				Requests: *dsarReq, Concurrency: *dsarConc,
				Writers: *dsarWriters, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(gdprbench.FormatDSAR(res))
		})
		return
	case "multi-regulation":
		sampleOps(*opsAddr, func() {
			points, err := gdprbench.RunMultiReg(gdprbench.MultiRegConfig{
				Subjects: *subjects, RecordsPerSubject: *records,
				Operations: *mrOps, CCPAOptOutPct: *mrOptOut, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(gdprbench.FormatMultiReg(points))
		})
		return
	case "breach-replay":
		sampleOps(*opsAddr, func() {
			res, err := gdprbench.RunBreach(gdprbench.BreachConfig{
				Records: *brRecords, Subjects: *subjects,
				Writers: *brWriters, Unmasked: *brUnmasked, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(gdprbench.FormatBreach(res))
		})
		return
	case "personas":
	default:
		log.Fatalf("unknown -scenario %q", *scenario)
	}

	bcfg := gdprbench.Config{
		Subjects: *subjects, RecordsPerSubject: *records,
		Operations: *ops, Seed: *seed, Batch: *batch,
	}
	roles := gdprbench.Roles
	if *roleStr != "all" {
		roles = []gdprbench.Role{gdprbench.Role(*roleStr)}
	}

	if *addr != "" || *clusterF != "" {
		runNetwork(bcfg, roles, *addr, *clusterF, *autoB, *opsAddr)
		return
	}
	if *autoB > 0 {
		log.Fatal("-auto-batch applies to network mode only (use -addr or -cluster)")
	}
	if *opsAddr != "" {
		log.Fatal("-ops-addr needs a live server to sample (use -addr/-cluster, or a scenario run against a server started with -ops-addr)")
	}
	runEmbedded(bcfg, roles, *timing, *shards, *auditW, *auditBP, *auditM)
}

// sampleOps wraps fn with an ops-surface sampler against addr when set,
// printing the aggregated compliance-lag maxima after the run. Scenario
// modes open their own embedded store, so the sampled server is whatever
// live gdprkv-server the operator pointed -ops-addr at — typically one
// under independent load, to watch its gauges move while this process
// stresses the same machine.
func sampleOps(addr string, fn func()) {
	if addr == "" {
		fn()
		return
	}
	s := gdprbench.NewOpsSampler(addr, 0)
	s.Start()
	fn()
	fmt.Println(s.Stop())
}

// runErasure runs the embedded erasure-latency scenario: FORGETUSER
// latency as a function of keys-per-owner, eager deletion vs the
// crypto-shred fast path.
func runErasure(keysCSV string, owners int, seed int64) {
	var points []int
	for _, f := range strings.Split(keysCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var k int
		if _, err := fmt.Sscanf(f, "%d", &k); err != nil || k <= 0 {
			log.Fatalf("bad -erasure-keys entry %q", f)
		}
		points = append(points, k)
	}
	res, err := gdprbench.RunErasure(gdprbench.ErasureConfig{
		KeysPerOwner: points, Owners: owners, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gdprbench.FormatErasure(res))
}

// runEmbedded is the original in-process mode: the personas call the
// compliance layer directly.
func runEmbedded(bcfg gdprbench.Config, roles []gdprbench.Role, timing string, shards, auditWorkers int, auditBP string, auditMask bool) {
	cfg := core.Strict("")
	if timing == "eventual" {
		cfg = core.EventualFull("")
	}
	cfg.DefaultTTL = 24 * time.Hour
	cfg.Shards = shards
	cfg.AuditWorkers = auditWorkers
	cfg.AuditMask = auditMask
	switch auditBP {
	case "":
	case "block":
		cfg.AuditBackpressure = core.Ptr(audit.BackpressureBlock)
	case "drop":
		cfg.AuditBackpressure = core.Ptr(audit.BackpressureDrop)
	default:
		log.Fatalf("unknown -audit-backpressure %q", auditBP)
	}
	st, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "processor", Role: acl.RoleProcessor})
	st.ACL().AddPrincipal(acl.Principal{ID: "regulator", Role: acl.RoleRegulator})
	for i := 0; i < bcfg.Subjects; i++ {
		st.ACL().AddPrincipal(acl.Principal{ID: gdprbench.SubjectName(i), Role: acl.RoleSubject})
	}
	if err := st.ACL().AddGrant(acl.Grant{Principal: "processor", Purpose: "*"}); err != nil {
		log.Fatal(err)
	}

	ctl := core.Ctx{Actor: "controller", Purpose: "populate"}
	start := time.Now()
	if err := gdprbench.Populate(st, ctl, bcfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populated %d subjects x %d records in %v\n",
		bcfg.Subjects, bcfg.RecordsPerSubject, time.Since(start).Round(time.Millisecond))

	for _, role := range roles {
		rcfg := bcfg
		rcfg.Role = role
		res, err := gdprbench.Run(st, rcfg)
		if err != nil {
			log.Fatalf("%s: %v", role, err)
		}
		fmt.Println(res)
	}
}

// runNetwork drives the personas through pkg/gdprkv against one server
// (-addr) or a cluster of primaries (-cluster).
func runNetwork(bcfg gdprbench.Config, roles []gdprbench.Role, addr, clusterSpec string, autoBatch int, opsAddr string) {
	ctx := context.Background()
	var nodes []string
	clustered := clusterSpec != ""
	if clustered {
		for _, a := range strings.Split(clusterSpec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				nodes = append(nodes, a)
			}
		}
		if len(nodes) == 0 {
			log.Fatal("-cluster needs at least one address")
		}
	} else {
		nodes = []string{addr}
	}

	// ACL state is node-local: install the principal population on every
	// node (the rights fan-out peers enforce it too).
	for _, n := range nodes {
		if err := gdprbench.InstallPrincipalsNet(ctx, n, bcfg.Subjects); err != nil {
			log.Fatalf("install principals on %s: %v", n, err)
		}
	}

	p := gdprbench.NewNetPool(nodes[0], clustered, nodes[1:]...)
	if autoBatch > 0 {
		p.Options(gdprkv.WithAutoBatch(0, autoBatch))
	}
	defer p.Close()

	start := time.Now()
	if err := gdprbench.PopulateNet(ctx, p, bcfg); err != nil {
		log.Fatal(err)
	}
	mode := "network"
	if clustered {
		mode = fmt.Sprintf("cluster of %d primaries", len(nodes))
	}
	fmt.Printf("populated %d subjects x %d records over the wire (%s) in %v\n",
		bcfg.Subjects, bcfg.RecordsPerSubject, mode, time.Since(start).Round(time.Millisecond))

	for _, role := range roles {
		rcfg := bcfg
		rcfg.Role = role
		var sampler *gdprbench.OpsSampler
		if opsAddr != "" {
			sampler = gdprbench.NewOpsSampler(opsAddr, 0)
			sampler.Start()
		}
		res, err := gdprbench.RunNet(ctx, p, rcfg)
		if sampler != nil {
			s := sampler.Stop()
			res.OpsObserved = &s
		}
		if err != nil {
			log.Fatalf("%s: %v", role, err)
		}
		fmt.Println(res)
	}
}
