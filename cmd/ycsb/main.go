// Command ycsb drives the YCSB core workloads against a gdprstore, either
// embedded in-process or over the network, mirroring how the paper
// benchmarks Redis.
//
// Examples:
//
//	ycsb -workload A -records 100000 -ops 2000000            # embedded baseline
//	ycsb -workload A -mode gdpr -timing realtime              # compliance path
//	ycsb -workload C -mode network -addr 127.0.0.1:6380       # over the wire
//	ycsb -workload C -mode network -pool 8 \
//	     -replicas 127.0.0.1:6381,127.0.0.1:6382              # pooled + replica reads
//	ycsb -workload C -mode network -addr 127.0.0.1:7001 -pool 8 \
//	     -cluster 127.0.0.1:7002,127.0.0.1:7003               # 3 hash-slot primaries
//	ycsb -workload C -mode network -pipeline 64               # explicit pipelining
//	ycsb -workload C -mode network -pool 4 -auto-batch 64     # implicit coalescing
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/aof"
	"gdprstore/internal/core"
	"gdprstore/internal/ycsb"
	"gdprstore/pkg/gdprkv"
)

func main() {
	var (
		workload   = flag.String("workload", "A", "core workload letter A-F")
		records    = flag.Int64("records", 100000, "record count (load phase)")
		ops        = flag.Int64("ops", 1000000, "operation count (run phase)")
		valueSize  = flag.Int("valuesize", 1000, "record payload bytes")
		workers    = flag.Int("workers", 8, "concurrent clients")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		mode       = flag.String("mode", "embedded", `"embedded", "gdpr", or "network"`)
		addr       = flag.String("addr", "127.0.0.1:6380", "server address (network mode)")
		timing     = flag.String("timing", "eventual", "gdpr mode: eventual|realtime")
		aofPath    = flag.String("aof", "", "gdpr/embedded mode: AOF path")
		aofSyncStr = flag.String("aof-sync", "", "no|everysec|always")
		auditPath  = flag.String("audit", "", "gdpr mode: audit trail path")
		loadOnly   = flag.Bool("load-only", false, "run only the load phase")
		skipLoad   = flag.Bool("skip-load", false, "skip the load phase")
		batch      = flag.Int("batch", 1, "group operations into batches of N (MSET/MGET over the network, PutBatch/GetBatch in-process)")
		pipeline   = flag.Int("pipeline", 1, "network mode: queue operations in an explicit client pipeline flushed every N ops")
		autoBatch  = flag.Int("auto-batch", 0, "network mode: enable WithAutoBatch coalescing with maxOps N and the default window (requires -pool)")
		shards     = flag.Int("shards", 0, "embedded/gdpr mode: engine lock-stripe count, power of two (0 = default; 1 = single mutex)")
		poolSize   = flag.Int("pool", 0, "network mode: share one pooled client of N connections across all workers (0 = one connection per worker)")
		replicas   = flag.String("replicas", "", "network mode: comma-separated replica addresses for read routing (requires -pool)")
		clusterF   = flag.String("cluster", "", "network mode: comma-separated extra primary addresses; -addr plus these form a hash-slot cluster (requires -pool)")
	)
	flag.Parse()

	w, ok := ycsb.CoreWorkloads[*workload]
	if !ok {
		log.Fatalf("unknown workload %q", *workload)
	}

	var factory func(int) (ycsb.DB, error)
	var cleanup func()

	switch *mode {
	case "network":
		cleanup = func() {}
		if *replicas != "" && *poolSize == 0 {
			// Refuse rather than silently benchmark an all-primary setup
			// the operator believes is replica-routed.
			log.Fatal("-replicas requires -pool N (replica routing is a shared-pooled-client feature)")
		}
		if *clusterF != "" && *poolSize == 0 {
			log.Fatal("-cluster requires -pool N (cluster routing is a shared-pooled-client feature)")
		}
		if *clusterF != "" && *replicas != "" {
			log.Fatal("-cluster and -replicas are mutually exclusive (every cluster node is a primary)")
		}
		if *pipeline > 1 && *batch > 1 {
			log.Fatal("-pipeline and -batch are mutually exclusive (both amortise round trips; pick one)")
		}
		if *autoBatch > 0 && *poolSize == 0 {
			// Coalescing needs concurrent callers on one client; per-worker
			// clients would each batch alone and measure nothing.
			log.Fatal("-auto-batch requires -pool N (coalescing is a shared-client feature)")
		}
		if *autoBatch > 0 && (*pipeline > 1 || *batch > 1) {
			log.Fatal("-auto-batch is mutually exclusive with -pipeline/-batch")
		}
		if *poolSize > 0 {
			// One shared pooled, replica- or cluster-aware client saturated
			// by every worker — the pkg/gdprkv deployment shape.
			opts := []gdprkv.Option{gdprkv.WithPoolSize(*poolSize)}
			// Trim shell-natural spacing and drop empties: a bogus node
			// entry would silently poison routed calls with dial failures.
			splitAddrs := func(s string) []string {
				var addrs []string
				for _, a := range strings.Split(s, ",") {
					if a = strings.TrimSpace(a); a != "" {
						addrs = append(addrs, a)
					}
				}
				return addrs
			}
			if *replicas != "" {
				opts = append(opts, gdprkv.WithReplicas(splitAddrs(*replicas)...))
			}
			if *clusterF != "" {
				opts = append(opts, gdprkv.WithCluster(splitAddrs(*clusterF)...))
			}
			if *autoBatch > 0 {
				opts = append(opts, gdprkv.WithAutoBatch(0, *autoBatch))
			}
			shared, err := gdprkv.Dial(context.Background(), *addr, opts...)
			if err != nil {
				log.Fatal(err)
			}
			cleanup = func() {
				st := shared.Stats()
				fmt.Printf("[client] pool=%d primary_reads=%d replica_reads=%d writes=%d retries=%d redials=%d redirects=%d\n",
					*poolSize, st.PrimaryReads, st.ReplicaReads, st.Writes, st.Retries, st.Redials, st.Redirects)
				if st.AutoBatchFlushes > 0 {
					fmt.Printf("[client] auto_batch_flushes=%d auto_batch_ops=%d (%.1f ops/flush)\n",
						st.AutoBatchFlushes, st.AutoBatchOps,
						float64(st.AutoBatchOps)/float64(st.AutoBatchFlushes))
				}
				if st.PipelineExecs > 0 {
					fmt.Printf("[client] pipeline_execs=%d pipeline_ops=%d (%.1f ops/exec)\n",
						st.PipelineExecs, st.PipelineOps,
						float64(st.PipelineOps)/float64(st.PipelineExecs))
				}
				shared.Close()
			}
			switch {
			case *batch > 1:
				factory = func(int) (ycsb.DB, error) { return ycsb.NewBatchNetworkDB(shared, *batch), nil }
			case *pipeline > 1:
				factory = func(int) (ycsb.DB, error) { return ycsb.NewPipelineNetworkDB(shared, *pipeline), nil }
			default:
				factory = func(int) (ycsb.DB, error) { return ycsb.NewNetworkDB(shared), nil }
			}
		} else if *batch > 1 {
			factory = func(int) (ycsb.DB, error) { return ycsb.DialBatchNetworkDB(*addr, *batch) }
		} else if *pipeline > 1 {
			factory = func(int) (ycsb.DB, error) { return ycsb.DialPipelineNetworkDB(*addr, *pipeline) }
		} else {
			factory = func(int) (ycsb.DB, error) { return ycsb.DialNetworkDB(*addr) }
		}
	case "embedded", "gdpr":
		cfg := core.Baseline()
		if *mode == "gdpr" {
			cfg = core.Config{
				Compliant:    true,
				Capability:   core.CapabilityFull,
				AuditEnabled: true,
				AuditPath:    *auditPath,
				DefaultTTL:   24 * time.Hour,
			}
			if *timing == "realtime" {
				cfg.Timing = core.TimingRealTime
			}
		}
		if *aofPath != "" {
			cfg.AOFPath = *aofPath
		} else if *mode == "gdpr" {
			dir, err := os.MkdirTemp("", "ycsb-gdpr")
			if err != nil {
				log.Fatal(err)
			}
			cfg.AOFPath = filepath.Join(dir, "gdpr.aof")
		}
		switch *aofSyncStr {
		case "":
		case "no":
			cfg.AOFSync = core.Ptr(aof.SyncNo)
		case "everysec":
			cfg.AOFSync = core.Ptr(aof.SyncEverySec)
		case "always":
			cfg.AOFSync = core.Ptr(aof.SyncAlways)
		default:
			log.Fatalf("unknown -aof-sync %q", *aofSyncStr)
		}
		cfg.Shards = *shards
		st, err := core.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cleanup = func() { st.Close() }
		if *mode == "gdpr" {
			st.ACL().AddPrincipal(acl.Principal{ID: "bench", Role: acl.RoleController})
			ctx := core.Ctx{Actor: "bench", Purpose: "benchmark"}
			opts := core.PutOptions{Owner: "subject", Purposes: []string{"benchmark"}}
			if *batch > 1 {
				factory = func(int) (ycsb.DB, error) { return ycsb.NewBatchDB(st, ctx, opts, *batch), nil }
			} else {
				factory = func(int) (ycsb.DB, error) { return ycsb.NewGDPRDB(st, ctx, opts), nil }
			}
		} else if *batch > 1 {
			factory = func(int) (ycsb.DB, error) {
				return ycsb.NewBatchDB(st, core.Ctx{}, core.PutOptions{}, *batch), nil
			}
		} else {
			factory = func(int) (ycsb.DB, error) { return ycsb.NewEmbeddedDB(st), nil }
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
	defer cleanup()

	cfg := ycsb.Config{
		Workload: w, RecordCount: *records, OperationCount: *ops,
		ValueSize: *valueSize, Workers: *workers, Seed: *seed, Factory: factory,
	}
	if !*skipLoad {
		res, err := ycsb.Load(cfg)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		fmt.Println(res)
	}
	if !*loadOnly {
		res, err := ycsb.Run(cfg)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Println(res)
	}
}
