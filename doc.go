// Package gdprstore is a reproduction of "Analyzing the Impact of GDPR on
// Storage Systems" (Shah, Banakar, Shastri, Wasserman, Chidambaram —
// HotStorage 2019): a Redis-like storage engine retrofitted with the six
// GDPR features the paper derives (timely deletion, monitoring, metadata
// indexing, access control, encryption, data-location management), the
// compliance spectrum it defines, and the benchmark harnesses (YCSB and
// GDPR-persona workloads) that regenerate its tables and figures.
//
// The RESP surface is served from a declarative command registry with a
// middleware pipeline (internal/server), and a batch command family
// (MSET/MGET, GMPUT/GMGET) amortises the per-operation compliance
// overhead the paper measures — one lock acquisition, one AOF append and
// one audit record per batch instead of per key.
//
// The storage engine is lock-striped into power-of-two shards (FNV-1a key
// routing), each owning its own dict, expires dict and expiry machinery,
// with journal records group-committed outside the shard locks; the
// compliance layer mirrors the design with per-owner and per-key lock
// stripes, so operations on independent keys and data subjects scale with
// GOMAXPROCS instead of serialising on a global mutex. Cross-shard
// operations (FLUSHALL, snapshot, batch writes) follow a deterministic
// lock order — see DESIGN.md §5.
//
// An HTTP ops surface (internal/ops, enabled with -ops-addr) exposes the
// same facts operationally: /info renders the shared INFO section
// registry as JSON, /metrics is a Prometheus text exposition whose core
// gauges are the paper's compliance promises as live lag numbers
// (gdprkv_retention_lag_seconds, gdprkv_erasure_lag_seconds,
// gdprkv_audit_queue_depth), /events streams SSE stats deltas, and / is
// an embedded auto-refreshing dashboard — see DESIGN.md §14. The
// gdprbench scenarios retention-storm, dsar-burst and multi-regulation
// drive those gauges to their extremes and report BENCH.md-able
// compliance-overhead numbers.
//
// Client applications import pkg/gdprkv, the public SDK: a
// context-first, connection-pooled, replica-aware client whose server
// rejections decode to typed sentinels (errors.Is) — see DESIGN.md §9
// for the architecture and api/gdprkv.golden for the frozen surface.
//
// The root package carries the repository-level benchmarks (bench_test.go,
// one per table/figure, plus the multi-goroutine contention pair
// BenchmarkEngine_SetParallel/BenchmarkCore_GPutParallel); the
// implementation lives under internal/ — see DESIGN.md for the system
// inventory (command table, middleware order, batch API, sharding) and
// EXPERIMENTS.md for paper-vs-measured results.
package gdprstore
