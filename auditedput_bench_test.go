// Audited data-path benchmarks: the GDPRbench-style GPUT/GMPUT operations
// against a file-backed trail, per audit durability mode — the numbers
// BENCH.md's async-pipeline table reports. Named outside the smoke-gate
// regex on purpose: every-op runs are fsync-bound and too noisy for the
// -30% throughput gate (the pipeline's own Audit_* benchmarks cover the
// gated surface).
package gdprstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/core"
)

func benchAuditedStore(b *testing.B, mode audit.SyncMode) (*core.Store, core.Ctx) {
	b.Helper()
	dir := b.TempDir()
	cfg := core.Config{
		Compliant:    true,
		Timing:       core.TimingEventual,
		Capability:   core.CapabilityFull,
		AuditEnabled: true,
		AuditPath:    filepath.Join(dir, "audit.log"),
		AuditMode:    core.Ptr(mode),
		DefaultTTL:   24 * time.Hour,
	}
	st, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	return st, core.Ctx{Actor: "controller", Purpose: "bench"}
}

func BenchmarkAuditedPut_GPut_EveryOp(b *testing.B)  { benchGPutMode(b, audit.SyncEveryOp) }
func BenchmarkAuditedPut_GPut_Batched(b *testing.B)  { benchGPutMode(b, audit.SyncBatched) }
func BenchmarkAuditedPut_GMPut_EveryOp(b *testing.B) { benchGMPutMode(b, audit.SyncEveryOp) }
func BenchmarkAuditedPut_GMPut_Batched(b *testing.B) { benchGMPutMode(b, audit.SyncBatched) }

func BenchmarkAuditedPut_GPut_EveryOp_Conc8(b *testing.B) { benchGPutModeConc(b, audit.SyncEveryOp) }
func BenchmarkAuditedPut_GPut_Batched_Conc8(b *testing.B) { benchGPutModeConc(b, audit.SyncBatched) }

// benchGPutModeConc drives 8 concurrent clients so strict-mode fsyncs can
// group-commit (even on one CPU, producers overlap the worker's fsync
// syscall).
func benchGPutModeConc(b *testing.B, mode audit.SyncMode) {
	st, ctx := benchAuditedStore(b, mode)
	val := make([]byte, 100)
	const conc = 8
	var n atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		owner := fmt.Sprintf("subj%d", g) // distinct owner stripes
		go func() {
			defer wg.Done()
			for {
				i := n.Add(1)
				if i > int64(b.N) {
					return
				}
				key := fmt.Sprintf("%s:k%d", owner, i%4096)
				if err := st.Put(ctx, key, val, core.PutOptions{Owner: owner}); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func benchGPutMode(b *testing.B, mode audit.SyncMode) {
	st, ctx := benchAuditedStore(b, mode)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%4096)
		if err := st.Put(ctx, key, val, core.PutOptions{Owner: "alice"}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGMPutMode(b *testing.B, mode audit.SyncMode) {
	st, ctx := benchAuditedStore(b, mode)
	val := make([]byte, 100)
	const batch = 64
	entries := make([]core.BatchEntry, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range entries {
			entries[j] = core.BatchEntry{Key: fmt.Sprintf("k%d", (i*batch+j)%4096), Value: val}
		}
		if err := st.PutBatch(ctx, entries, core.PutOptions{Owner: "alice"}); err != nil {
			b.Fatal(err)
		}
	}
}
