package client_test

import (
	"bytes"
	"errors"
	"testing"

	"gdprstore/internal/client"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
)

// startStrict spins up a full+real-time compliant server with principals.
func startStrict(t *testing.T) *client.Client {
	t.Helper()
	cfg := core.Strict("")
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); st.Close() })
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, cmd := range [][]string{
		{"ACL", "ADDPRINCIPAL", "ctl", "controller"},
		{"ACL", "ADDPRINCIPAL", "alice", "subject"},
		{"ACL", "ADDPRINCIPAL", "bob", "subject"},
	} {
		if _, err := c.Do(cmd...); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Auth("ctl"); err != nil {
		t.Fatal(err)
	}
	if err := c.Purpose("svc"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGPutAllFlags(t *testing.T) {
	c := startStrict(t)
	err := c.GPut("k", []byte("v"), client.GDPRPutArgs{
		Owner: "alice", Purposes: "svc,extra", TTLSeconds: 600,
		Origin: "import", Location: "eu-west", SharedWith: "partner1,partner2",
		AutoDecide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mv, err := c.Do("GETMETA", "k")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"owner":"alice"`, `"origin":"import"`, `"location":"eu-west"`,
		`"automated_decisions":true`, "partner1", "extra"} {
		if !bytes.Contains(mv.Str, []byte(want)) {
			t.Errorf("meta missing %s: %s", want, mv.Str)
		}
	}
	v, err := c.GGet("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("gget = %q, %v", v, err)
	}
}

func TestGDelOverWire(t *testing.T) {
	c := startStrict(t)
	c.GPut("k", []byte("v"), client.GDPRPutArgs{Owner: "alice", Purposes: "svc", TTLSeconds: 60})
	if err := c.GDel("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GGet("k"); !errors.Is(err, client.ErrNil) {
		t.Fatalf("gget after gdel: %v", err)
	}
	// Deleting again: not found maps to an error-free nil? Server replies
	// NullValue for ErrNotFound on GDEL path? It returns errReply →
	// NullValue for not-found; client.GDel sees no error.
	if err := c.GDel("k"); err != nil {
		t.Fatalf("double gdel: %v", err)
	}
}

func TestGetUserExportForgetHelpers(t *testing.T) {
	c := startStrict(t)
	c.GPut("a1", []byte("v1"), client.GDPRPutArgs{Owner: "alice", Purposes: "svc", TTLSeconds: 600})
	c.GPut("a2", []byte("v2"), client.GDPRPutArgs{Owner: "alice", Purposes: "svc", TTLSeconds: 600})
	recs, err := c.GetUser("alice")
	if err != nil || len(recs) != 2 || string(recs["a1"]) != "v1" {
		t.Fatalf("getuser = %v, %v", recs, err)
	}
	exp, err := c.ExportUser("alice")
	if err != nil || !bytes.Contains(exp, []byte(`"a1"`)) {
		t.Fatalf("export = %.80s, %v", exp, err)
	}
	n, err := c.ForgetUser("alice")
	if err != nil || n != 2 {
		t.Fatalf("forget = %d, %v", n, err)
	}
	recs, err = c.GetUser("alice")
	if err != nil || len(recs) != 0 {
		t.Fatalf("post-forget getuser = %v, %v", recs, err)
	}
}

func TestObjectUnobjectHelpers(t *testing.T) {
	c := startStrict(t)
	c.GPut("k", []byte("v"), client.GDPRPutArgs{Owner: "alice", Purposes: "svc,ads", TTLSeconds: 600})
	if err := c.Object("alice", "ads"); err != nil {
		t.Fatal(err)
	}
	c.Purpose("ads")
	if _, err := c.GGet("k"); err == nil {
		t.Fatal("objected purpose served")
	}
	if err := c.Unobject("alice", "ads"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GGet("k"); err != nil {
		t.Fatalf("after unobject: %v", err)
	}
}

func TestGDPRPolicyErrorsSurface(t *testing.T) {
	c := startStrict(t)
	// Full compliance: no owner → POLICY error.
	err := c.GPut("k", []byte("v"), client.GDPRPutArgs{TTLSeconds: 60})
	var se client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	// No TTL → POLICY error.
	err = c.GPut("k", []byte("v"), client.GDPRPutArgs{Owner: "alice"})
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
}
