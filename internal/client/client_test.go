package client_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gdprstore/internal/client"
	"gdprstore/internal/core"
	"gdprstore/internal/server"
)

func startBaseline(t *testing.T) *client.Client {
	t.Helper()
	st, err := core.Open(core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); st.Close() })
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDialRefused(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestPingAndEcho(t *testing.T) {
	c := startBaseline(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySafety(t *testing.T) {
	c := startBaseline(t)
	val := []byte{0, 1, 2, '\r', '\n', 0xFF, '$', '*'}
	if err := c.Set("bin", val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("bin")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestServerErrorPreservesCode(t *testing.T) {
	c := startBaseline(t)
	_, err := c.Do("GET") // wrong arity
	var se client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	if se.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestPipelineMixedResults(t *testing.T) {
	c := startBaseline(t)
	p := c.Pipeline()
	p.DoArgs("SET", []byte("k"), []byte("v"))
	p.Do("GET", "k")
	p.Do("GET") // arity error, must come back in-slice
	p.Do("GET", "missing")
	replies, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 4 {
		t.Fatalf("replies = %d", len(replies))
	}
	if replies[0].Text() != "OK" {
		t.Fatalf("set reply %+v", replies[0])
	}
	if replies[1].Text() != "v" {
		t.Fatalf("get reply %+v", replies[1])
	}
	if !replies[2].IsError() {
		t.Fatalf("error reply %+v", replies[2])
	}
	if !replies[3].Null {
		t.Fatalf("missing reply %+v", replies[3])
	}
}

func TestPipelineEmptyExec(t *testing.T) {
	c := startBaseline(t)
	replies, err := c.Pipeline().Exec()
	if err != nil || replies != nil {
		t.Fatalf("empty exec = %v, %v", replies, err)
	}
}

func TestPipelineReusable(t *testing.T) {
	c := startBaseline(t)
	p := c.Pipeline()
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			p.DoArgs("SET", []byte(fmt.Sprintf("r%d-k%d", round, i)), []byte("v"))
		}
		replies, err := p.Exec()
		if err != nil || len(replies) != 10 {
			t.Fatalf("round %d: %d replies, %v", round, len(replies), err)
		}
	}
}

func TestLargePipeline(t *testing.T) {
	c := startBaseline(t)
	p := c.Pipeline()
	const n = 5000
	for i := 0; i < n; i++ {
		p.DoArgs("SET", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	replies, err := p.Exec()
	if err != nil || len(replies) != n {
		t.Fatalf("%d replies, %v", len(replies), err)
	}
	v, _ := c.Do("DBSIZE")
	if v.Int != n {
		t.Fatalf("dbsize = %d", v.Int)
	}
}

func TestClientTTLHelpers(t *testing.T) {
	c := startBaseline(t)
	c.SetEX("k", []byte("v"), 50)
	ttl, err := c.TTL("k")
	if err != nil || ttl <= 0 {
		t.Fatalf("ttl = %d, %v", ttl, err)
	}
	ok, err := c.Expire("k", 100)
	if err != nil || !ok {
		t.Fatalf("expire = %v, %v", ok, err)
	}
	ok, err = c.Expire("missing", 100)
	if err != nil || ok {
		t.Fatalf("expire missing = %v, %v", ok, err)
	}
}

func TestGDPRHelpersAgainstBaselineFail(t *testing.T) {
	c := startBaseline(t)
	if _, err := c.ForgetUser("alice"); err == nil {
		t.Fatal("ForgetUser on baseline store accepted")
	}
	if err := c.Object("alice", "ads"); err == nil {
		t.Fatal("Object on baseline store accepted")
	}
}

func TestManySequentialCommands(t *testing.T) {
	c := startBaseline(t)
	start := time.Now()
	for i := 0; i < 2000; i++ {
		if err := c.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	t.Logf("2000 round trips in %v", time.Since(start))
}
