// Package client is the old single-connection Go client for the gdprstore
// RESP server.
//
// DEPRECATED — superseded by the public SDK pkg/gdprkv, which is
// context-first (per-call deadlines and cancellation), safe for
// concurrent use through a per-node connection pool, replica-aware, and
// reports server rejections as typed sentinels instead of string
// prefixes. This package survives one release as a compatibility shim
// for in-tree tests and is then removed; see the migration notes in
// pkg/gdprkv's package documentation. (The marker deliberately isn't the
// machine-parsed "Deprecated:" form: the shim's own tests must keep
// linting clean until the removal PR.) Unlike pkg/gdprkv, a Client here
// owns exactly one connection, has no I/O deadlines (a dead server hangs
// its caller), and must not be shared across goroutines (concurrent
// calls interleave replies).
package client

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"gdprstore/internal/resp"
)

// ErrNil is returned when the server replies with a null bulk string (key
// missing).
var ErrNil = errors.New("client: nil reply")

// ServerError is an error reply from the server, preserving its code
// prefix (ERR, DENIED, POLICY, PURPOSEDENIED, ERASED, BASELINE).
type ServerError string

// Error implements error.
func (e ServerError) Error() string { return "client: server: " + string(e) }

// Client is a single-connection client. It is not safe for concurrent use;
// benchmarks open one client per worker, like YCSB threads do.
// DEPRECATED — use gdprkv.Client from pkg/gdprkv.
type Client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

// Dial connects to a gdprstore server.
// DEPRECATED — use gdprkv.Dial, which takes a context and options.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one command and waits for its reply.
func (c *Client) Do(args ...string) (resp.Value, error) {
	if err := c.w.WriteCommand(args...); err != nil {
		return resp.Value{}, err
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.readReply()
}

// DoArgs sends one command with raw byte arguments.
func (c *Client) DoArgs(name string, args ...[]byte) (resp.Value, error) {
	vs := make([]resp.Value, 0, len(args)+1)
	vs = append(vs, resp.BulkStringValue(name))
	for _, a := range args {
		vs = append(vs, resp.BulkValue(a))
	}
	if err := c.w.WriteValue(resp.ArrayValue(vs...)); err != nil {
		return resp.Value{}, err
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.readReply()
}

func (c *Client) readReply() (resp.Value, error) {
	v, err := c.r.ReadValue()
	if err != nil {
		return resp.Value{}, err
	}
	if v.IsError() {
		return v, ServerError(v.Text())
	}
	return v, nil
}

// --- vanilla command helpers ---

// Ping checks liveness.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v.Text() != "PONG" {
		return fmt.Errorf("client: unexpected PING reply %q", v.Text())
	}
	return nil
}

// Auth sets the connection's principal.
func (c *Client) Auth(actor string) error {
	_, err := c.Do("AUTH", actor)
	return err
}

// Purpose sets the connection's processing purpose.
func (c *Client) Purpose(purpose string) error {
	_, err := c.Do("PURPOSE", purpose)
	return err
}

// Set stores a raw key/value (baseline path).
func (c *Client) Set(key string, value []byte) error {
	_, err := c.DoArgs("SET", []byte(key), value)
	return err
}

// SetEX stores a raw key/value with a TTL in seconds.
func (c *Client) SetEX(key string, value []byte, seconds int64) error {
	_, err := c.DoArgs("SET", []byte(key), value, []byte("EX"), []byte(strconv.FormatInt(seconds, 10)))
	return err
}

// Get fetches a raw value; ErrNil if missing.
func (c *Client) Get(key string) ([]byte, error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return nil, err
	}
	if v.Null {
		return nil, ErrNil
	}
	return v.Str, nil
}

// MSet writes every key/value pair in one MSET command — one network
// round trip and one server-side lock acquisition + AOF append for the
// whole batch. keys and values must have equal length.
func (c *Client) MSet(keys []string, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("client: MSet: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	args := make([][]byte, 0, 2*len(keys))
	for i, k := range keys {
		args = append(args, []byte(k), values[i])
	}
	_, err := c.DoArgs("MSET", args...)
	return err
}

// MGet reads every key in one MGET command. The result is positional; a
// missing key yields a nil entry.
func (c *Client) MGet(keys ...string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	v, err := c.DoArgs("MGET", args...)
	if err != nil {
		return nil, err
	}
	if len(v.Array) != len(keys) {
		return nil, fmt.Errorf("client: malformed MGET reply: %d entries for %d keys", len(v.Array), len(keys))
	}
	out := make([][]byte, len(keys))
	for i, e := range v.Array {
		if !e.Null {
			out[i] = e.Str
		}
	}
	return out, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	args := append([]string{"DEL"}, keys...)
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Expire sets a TTL in seconds, reporting whether the key existed.
func (c *Client) Expire(key string, seconds int64) (bool, error) {
	v, err := c.Do("EXPIRE", key, strconv.FormatInt(seconds, 10))
	if err != nil {
		return false, err
	}
	return v.Int == 1, nil
}

// TTL returns the TTL in seconds (-1 no TTL, -2 missing).
func (c *Client) TTL(key string) (int64, error) {
	v, err := c.Do("TTL", key)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Scan iterates the keyspace; returns keys and the next cursor (0 = done).
func (c *Client) Scan(cursor uint64, match string, count int) ([]string, uint64, error) {
	v, err := c.Do("SCAN", strconv.FormatUint(cursor, 10), "MATCH", match, "COUNT", strconv.Itoa(count))
	if err != nil {
		return nil, 0, err
	}
	if len(v.Array) != 2 {
		return nil, 0, errors.New("client: malformed SCAN reply")
	}
	next, err := strconv.ParseUint(v.Array[0].Text(), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("client: bad SCAN cursor: %w", err)
	}
	keys := make([]string, len(v.Array[1].Array))
	for i, k := range v.Array[1].Array {
		keys[i] = k.Text()
	}
	return keys, next, nil
}

// Info returns the server's INFO report; section may be empty for the
// full report, or one of "gdprstore", "replication", "commandstats".
func (c *Client) Info(section string) (string, error) {
	args := []string{"INFO"}
	if section != "" {
		args = append(args, section)
	}
	v, err := c.Do(args...)
	if err != nil {
		return "", err
	}
	return v.Text(), nil
}

// ReplicaOf makes the server replicate from the primary at host:port.
func (c *Client) ReplicaOf(host, port string) error {
	_, err := c.Do("REPLICAOF", host, port)
	return err
}

// PromoteToPrimary stops the server's replication and makes it writable
// (REPLICAOF NO ONE).
func (c *Client) PromoteToPrimary() error {
	_, err := c.Do("REPLICAOF", "NO", "ONE")
	return err
}

// --- GDPR command helpers ---

// GDPRPutArgs carries the metadata flags for GPut.
type GDPRPutArgs struct {
	Owner      string
	Purposes   string // comma-separated
	TTLSeconds int64
	Origin     string
	Location   string
	SharedWith string // comma-separated
	AutoDecide bool
}

// optionArgs renders the metadata flags as GPUT/GMPUT option tokens.
func (m GDPRPutArgs) optionArgs() [][]byte {
	var args [][]byte
	if m.Owner != "" {
		args = append(args, []byte("OWNER"), []byte(m.Owner))
	}
	if m.Purposes != "" {
		args = append(args, []byte("PURPOSES"), []byte(m.Purposes))
	}
	if m.TTLSeconds > 0 {
		args = append(args, []byte("TTL"), []byte(strconv.FormatInt(m.TTLSeconds, 10)))
	}
	if m.Origin != "" {
		args = append(args, []byte("ORIGIN"), []byte(m.Origin))
	}
	if m.Location != "" {
		args = append(args, []byte("LOCATION"), []byte(m.Location))
	}
	if m.SharedWith != "" {
		args = append(args, []byte("SHAREDWITH"), []byte(m.SharedWith))
	}
	if m.AutoDecide {
		args = append(args, []byte("AUTODECIDE"))
	}
	return args
}

// GPut writes personal data with metadata.
func (c *Client) GPut(key string, value []byte, m GDPRPutArgs) error {
	args := append([][]byte{[]byte(key), value}, m.optionArgs()...)
	_, err := c.DoArgs("GPUT", args...)
	return err
}

// GMPut writes a batch of personal-data records sharing one set of
// metadata flags in a single GMPUT command: the server takes its lock
// once, appends to the AOF once, and audits once for the whole batch.
func (c *Client) GMPut(keys []string, values [][]byte, m GDPRPutArgs) error {
	if len(keys) != len(values) {
		return fmt.Errorf("client: GMPut: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	args := make([][]byte, 0, 1+2*len(keys)+14)
	args = append(args, []byte(strconv.Itoa(len(keys))))
	for i, k := range keys {
		args = append(args, []byte(k), values[i])
	}
	args = append(args, m.optionArgs()...)
	_, err := c.DoArgs("GMPUT", args...)
	return err
}

// BatchValue is one positional result of GMGet: the value on success, or
// the per-key error (ErrNil for a missing key, a ServerError carrying the
// DENIED/PURPOSEDENIED/ERASED/... code for a refused one).
type BatchValue struct {
	Value []byte
	Err   error
}

// GMGet reads a batch of personal-data records in one GMGET command. A
// refused or missing key is reported in its slot without failing the rest
// of the batch.
func (c *Client) GMGet(keys ...string) ([]BatchValue, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	v, err := c.DoArgs("GMGET", args...)
	if err != nil {
		return nil, err
	}
	if len(v.Array) != len(keys) {
		return nil, fmt.Errorf("client: malformed GMGET reply: %d entries for %d keys", len(v.Array), len(keys))
	}
	out := make([]BatchValue, len(keys))
	for i, e := range v.Array {
		switch {
		case e.IsError():
			out[i].Err = ServerError(e.Text())
		case e.Null:
			out[i].Err = ErrNil
		default:
			out[i].Value = e.Str
		}
	}
	return out, nil
}

// GGet reads personal data under the connection's purpose.
func (c *Client) GGet(key string) ([]byte, error) {
	v, err := c.Do("GGET", key)
	if err != nil {
		return nil, err
	}
	if v.Null {
		return nil, ErrNil
	}
	return v.Str, nil
}

// GDel deletes personal data.
func (c *Client) GDel(key string) error {
	_, err := c.Do("GDEL", key)
	return err
}

// GetUser returns all key/value pairs of a data subject (Art. 15).
func (c *Client) GetUser(owner string) (map[string][]byte, error) {
	v, err := c.Do("GETUSER", owner)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(v.Array)/2)
	for i := 0; i+1 < len(v.Array); i += 2 {
		out[v.Array[i].Text()] = v.Array[i+1].Str
	}
	return out, nil
}

// ExportUser returns the Art. 20 portability payload.
func (c *Client) ExportUser(owner string) ([]byte, error) {
	v, err := c.Do("EXPORTUSER", owner)
	if err != nil {
		return nil, err
	}
	return v.Str, nil
}

// ForgetUser erases a data subject (Art. 17), returning records erased.
func (c *Client) ForgetUser(owner string) (int64, error) {
	v, err := c.Do("FORGETUSER", owner)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Object records an Art. 21 objection.
func (c *Client) Object(owner, purpose string) error {
	_, err := c.Do("OBJECT", owner, purpose)
	return err
}

// Unobject withdraws an Art. 21 objection.
func (c *Client) Unobject(owner, purpose string) error {
	_, err := c.Do("UNOBJECT", owner, purpose)
	return err
}

// --- pipelining ---

// Pipeline batches commands into one network round trip.
type Pipeline struct {
	c       *Client
	pending int
}

// Pipeline starts a new batch.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Do queues a command.
func (p *Pipeline) Do(args ...string) error {
	if err := p.c.w.WriteCommand(args...); err != nil {
		return err
	}
	p.pending++
	return nil
}

// DoArgs queues a command with raw byte arguments.
func (p *Pipeline) DoArgs(name string, args ...[]byte) error {
	vs := make([]resp.Value, 0, len(args)+1)
	vs = append(vs, resp.BulkStringValue(name))
	for _, a := range args {
		vs = append(vs, resp.BulkValue(a))
	}
	if err := p.c.w.WriteValue(resp.ArrayValue(vs...)); err != nil {
		return err
	}
	p.pending++
	return nil
}

// Exec flushes the batch and collects one reply per queued command. Error
// replies are returned in-slice (as Values with IsError true), not as a Go
// error, so one failed command does not mask the rest of the batch.
func (p *Pipeline) Exec() ([]resp.Value, error) {
	if p.pending == 0 {
		return nil, nil
	}
	if err := p.c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]resp.Value, 0, p.pending)
	for i := 0; i < p.pending; i++ {
		v, err := p.c.r.ReadValue()
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
	p.pending = 0
	return out, nil
}
