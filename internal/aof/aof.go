// Package aof implements Redis-style append-only-file persistence. It is
// the subsystem the paper's §4.1 piggybacks on for GDPR monitoring: every
// mutating command (and, in audit mode, every read) is appended to the file
// as a RESP-encoded command, replayable at startup.
//
// Like Redis, the log supports three fsync policies:
//
//   - SyncAlways:   fsync after every append — the "strict real-time
//     compliance" point that costs Redis 20× in the paper;
//   - SyncEverySec: a background flusher fsyncs once per second — the
//     "eventual compliance" point, 6× faster, risking ≤1 s of log loss;
//   - SyncNo:       leave flushing to the OS.
//
// The file can be transparently encrypted at rest through an
// cryptoutil.OffsetCipher (the LUKS stand-in), and compacted with Rewrite
// so that deleted personal data does not persist in the log (§4.3's second
// concern).
package aof

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gdprstore/internal/cryptoutil"
	"gdprstore/internal/resp"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

// Available fsync policies, mirroring Redis's appendfsync option.
const (
	// SyncNo lets the OS decide when to flush.
	SyncNo SyncPolicy = iota
	// SyncEverySec flushes and fsyncs once per second from a background
	// goroutine.
	SyncEverySec
	// SyncAlways flushes and fsyncs after every append.
	SyncAlways
)

// String returns the redis.conf spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEverySec:
		return "everysec"
	default:
		return "no"
	}
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy; default SyncNo.
	Policy SyncPolicy
	// Key, if non-nil, encrypts the file at rest with AES-256-CTR keyed by
	// byte offset (the LUKS/dm-crypt stand-in). Must be 32 bytes.
	Key []byte
	// BufSize is the in-memory write buffer size; default 64 KiB.
	BufSize int
}

// Log is an append-only command log. All methods are safe for concurrent
// use.
type Log struct {
	mu        sync.Mutex
	rewriteMu sync.Mutex // serialises Rewrite invocations
	path      string
	f         *os.File
	w         *bufio.Writer // wraps the (possibly encrypting) writer
	enc       *resp.Writer  // encodes commands into w
	cipher    *cryptoutil.OffsetCipher
	policy    SyncPolicy
	size      int64 // logical bytes appended (plaintext == ciphertext length)
	dirty     bool
	lastErr   error
	appends   uint64
	syncs     uint64

	stopFlusher chan struct{}
	flusherDone chan struct{}
	closed      bool
}

// Open opens (creating if necessary) the append-only file at path.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("aof: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("aof: stat: %w", err)
	}
	l := &Log{path: path, f: f, policy: opts.Policy, size: st.Size()}
	if opts.Key != nil {
		l.cipher, err = cryptoutil.NewOffsetCipher(opts.Key)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	bufSize := opts.BufSize
	if bufSize <= 0 {
		bufSize = 64 * 1024
	}
	l.initWriters(bufSize)
	if opts.Policy == SyncEverySec {
		l.stopFlusher = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) initWriters(bufSize int) {
	var sink io.Writer = l.f
	if l.cipher != nil {
		sink = cryptoutil.NewWriter(l.f, l.cipher, l.size)
	}
	l.w = bufio.NewWriterSize(sink, bufSize)
	l.enc = resp.NewWriter(countingWriter{l})
}

// countingWriter routes the RESP encoder's output into the buffered
// (possibly encrypted) sink while tracking the logical size.
type countingWriter struct{ l *Log }

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.l.w.Write(p)
	cw.l.size += int64(n)
	return n, err
}

// Append encodes one command and applies the fsync policy. It returns the
// first persistent error encountered, which is also retained for LastErr.
func (l *Log) Append(name string, args ...[]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("aof: closed")
	}
	vs := make([]resp.Value, 0, len(args)+1)
	vs = append(vs, resp.BulkStringValue(name))
	for _, a := range args {
		vs = append(vs, resp.BulkValue(a))
	}
	if err := l.enc.WriteValue(resp.ArrayValue(vs...)); err != nil {
		l.lastErr = err
		return err
	}
	if err := l.enc.Flush(); err != nil { // resp buffer -> bufio buffer
		l.lastErr = err
		return err
	}
	l.appends++
	l.dirty = true
	if l.policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync forces buffered data to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.lastErr = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.lastErr = err
		return err
	}
	l.dirty = false
	l.syncs++
	return nil
}

func (l *Log) flushLoop() {
	defer close(l.flusherDone)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlusher:
			return
		case <-t.C:
			l.mu.Lock()
			_ = l.syncLocked()
			l.mu.Unlock()
		}
	}
}

// Size returns the logical size of the log in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Appends returns the number of commands appended since Open.
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Syncs returns the number of fsync calls issued since Open.
func (l *Log) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// LastErr returns the most recent persistent error, if any.
func (l *Log) LastErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Path returns the file path backing the log.
func (l *Log) Path() string { return l.path }

// Close flushes, fsyncs, stops the background flusher, and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopFlusher
	done := l.flusherDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	errSync := l.syncLocked()
	errClose := l.f.Close()
	if errSync != nil {
		return errSync
	}
	return errClose
}

// ReplayFunc receives each command during Load. Returning an error aborts
// the replay.
type ReplayFunc func(name string, args [][]byte) error

// Load replays every command in the file at path. A truncated final record
// (torn write at crash) stops the replay without error, matching Redis's
// aof-load-truncated behaviour; corruption before the tail is reported.
func Load(path string, key []byte, fn ReplayFunc) (replayed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("aof: load: %w", err)
	}
	defer f.Close()

	var src io.Reader = f
	if key != nil {
		c, cerr := cryptoutil.NewOffsetCipher(key)
		if cerr != nil {
			return 0, cerr
		}
		src = cryptoutil.NewReader(f, c)
	}
	r := resp.NewReader(bufio.NewReaderSize(src, 64*1024))
	for {
		args, rerr := r.ReadCommand()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
				// torn tail: accept what we have
				return replayed, nil
			}
			return replayed, fmt.Errorf("aof: load after %d commands: %w", replayed, rerr)
		}
		name := string(args[0])
		if err := fn(name, args[1:]); err != nil {
			return replayed, err
		}
		replayed++
	}
}

// SnapshotFunc walks the current dataset, emitting one command per record
// through emit. It is supplied by the storage engine during Rewrite.
type SnapshotFunc func(emit func(name string, args ...[]byte) error) error

// Rewrite compacts the log: it writes a fresh file containing only the
// commands needed to reconstruct the current dataset (via snapshot),
// fsyncs it, and atomically renames it over the old file. After Rewrite
// returns, previously deleted data no longer persists anywhere in the log —
// the guarantee §4.3 calls out as required for GDPR deletion.
//
// Locking: the snapshot is generated and written to a temporary file
// *without* holding the log lock (so snapshot may freely read the engine,
// which itself journals into this log — no lock-order cycle); the lock is
// taken only for the final swap. Appends that land between snapshot
// generation and the swap are discarded with the old file. The compliance
// layer serialises its own writes around Rewrite, so the only records in
// that window are engine-generated expiry deletions, whose loss is benign:
// the rewritten file carries the keys' original deadlines and they expire
// again on replay.
func (l *Log) Rewrite(snapshot SnapshotFunc) error {
	l.rewriteMu.Lock()
	defer l.rewriteMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("aof: closed")
	}
	l.mu.Unlock()

	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".aof-rewrite-*")
	if err != nil {
		return fmt.Errorf("aof: rewrite temp: %w", err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op after successful rename

	var sink io.Writer = tmp
	if l.cipher != nil {
		sink = cryptoutil.NewWriter(tmp, l.cipher, 0)
	}
	bw := bufio.NewWriterSize(sink, 256*1024)
	var written int64
	enc := resp.NewWriter(writerFunc(func(p []byte) (int, error) {
		n, err := bw.Write(p)
		written += int64(n)
		return n, err
	}))
	emit := func(name string, args ...[]byte) error {
		vs := make([]resp.Value, 0, len(args)+1)
		vs = append(vs, resp.BulkStringValue(name))
		for _, a := range args {
			vs = append(vs, resp.BulkValue(a))
		}
		return enc.WriteValue(resp.ArrayValue(vs...))
	}
	if err := snapshot(emit); err != nil {
		tmp.Close()
		return fmt.Errorf("aof: rewrite snapshot: %w", err)
	}
	if err := enc.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	// Swap: flush old, rename new over it, reopen for append.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("aof: closed")
	}
	if err := l.w.Flush(); err != nil {
		l.lastErr = err
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("aof: rewrite rename: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("aof: rewrite reopen: %w", err)
	}
	l.f = f
	l.size = written
	l.dirty = false
	l.initWriters(64 * 1024)
	return nil
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
