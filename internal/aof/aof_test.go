package aof

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gdprstore/internal/testutil"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "appendonly.aof")
}

type rec struct {
	name string
	args [][]byte
}

func loadAll(t *testing.T, path string, key []byte) []rec {
	t.Helper()
	var out []rec
	n, err := Load(path, key, func(name string, args [][]byte) error {
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		out = append(out, rec{name, cp})
		return nil
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if n != len(out) {
		t.Fatalf("load count %d != %d", n, len(out))
	}
	return out
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := tempPath(t)
	l, err := Open(path, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("SET", []byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("DEL", []byte("k1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := loadAll(t, path, nil)
	if len(got) != 2 || got[0].name != "SET" || got[1].name != "DEL" {
		t.Fatalf("got %+v", got)
	}
	if string(got[0].args[1]) != "v1" {
		t.Fatalf("payload = %q", got[0].args[1])
	}
}

func TestLoadMissingFile(t *testing.T) {
	n, err := Load(filepath.Join(t.TempDir(), "absent.aof"), nil, func(string, [][]byte) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestReopenAppends(t *testing.T) {
	path := tempPath(t)
	l, _ := Open(path, Options{})
	l.Append("SET", []byte("a"), []byte("1"))
	l.Close()
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Append("SET", []byte("b"), []byte("2"))
	l2.Close()
	got := loadAll(t, path, nil)
	if len(got) != 2 {
		t.Fatalf("after reopen got %d records", len(got))
	}
}

func TestTruncatedTailTolerated(t *testing.T) {
	path := tempPath(t)
	l, _ := Open(path, Options{})
	l.Append("SET", []byte("k1"), []byte("v1"))
	l.Append("SET", []byte("k2"), []byte("v2"))
	l.Close()
	// Simulate a torn write: chop bytes off the end.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o600); err != nil {
		t.Fatal(err)
	}
	got := loadAll(t, path, nil)
	if len(got) != 1 || string(got[0].args[0]) != "k1" {
		t.Fatalf("torn-tail load = %+v", got)
	}
}

func TestCorruptionMidFileReported(t *testing.T) {
	path := tempPath(t)
	l, _ := Open(path, Options{})
	l.Append("SET", []byte("k1"), []byte("v1"))
	l.Append("SET", []byte("k2"), []byte("v2"))
	l.Close()
	b, _ := os.ReadFile(path)
	b[2] = 'Z' // clobber the first record's header
	os.WriteFile(path, b, 0o600)
	_, err := Load(path, nil, func(string, [][]byte) error { return nil })
	if err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}

func TestEncryptedRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	path := tempPath(t)
	l, err := Open(path, Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	l.Append("SET", []byte("secret-key"), []byte("secret-value"))
	l.Close()

	// Ciphertext must not leak plaintext.
	raw, _ := os.ReadFile(path)
	if bytes.Contains(raw, []byte("secret-value")) {
		t.Fatal("plaintext visible in encrypted AOF")
	}
	got := loadAll(t, path, key)
	if len(got) != 1 || string(got[0].args[1]) != "secret-value" {
		t.Fatalf("decrypted load = %+v", got)
	}
	// Wrong key must fail, not silently decode garbage.
	wrong := bytes.Repeat([]byte{8}, 32)
	if _, err := Load(path, wrong, func(string, [][]byte) error { return nil }); err == nil {
		t.Fatal("wrong key decoded successfully")
	}
}

func TestEncryptedReopenContinuesKeystream(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 32)
	path := tempPath(t)
	l, _ := Open(path, Options{Key: key})
	l.Append("SET", []byte("a"), []byte("1"))
	l.Close()
	l2, _ := Open(path, Options{Key: key})
	l2.Append("SET", []byte("b"), []byte("2"))
	l2.Close()
	got := loadAll(t, path, key)
	if len(got) != 2 || string(got[1].args[0]) != "b" {
		t.Fatalf("got %+v", got)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := tempPath(t)
	l, _ := Open(path, Options{})
	for i := 0; i < 100; i++ {
		l.Append("SET", []byte("churn"), []byte(fmt.Sprintf("v%d", i)))
	}
	l.Append("SET", []byte("deleted-user"), []byte("personal-data"))
	l.Append("DEL", []byte("deleted-user"))
	before := l.Size()
	err := l.Rewrite(func(emit func(string, ...[]byte) error) error {
		return emit("SET", []byte("churn"), []byte("v99"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("rewrite did not shrink: %d -> %d", before, l.Size())
	}
	// The deleted key's data must be gone from the file (§4.3).
	raw, _ := os.ReadFile(path)
	if bytes.Contains(raw, []byte("personal-data")) {
		t.Fatal("deleted personal data persists after compaction")
	}
	// Appends must keep working after the swap.
	if err := l.Append("SET", []byte("after"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got := loadAll(t, path, nil)
	if len(got) != 2 || string(got[1].args[0]) != "after" {
		t.Fatalf("post-rewrite log = %+v", got)
	}
}

func TestRewriteEncrypted(t *testing.T) {
	key := bytes.Repeat([]byte{3}, 32)
	path := tempPath(t)
	l, _ := Open(path, Options{Key: key})
	l.Append("SET", []byte("k"), []byte("old"))
	err := l.Rewrite(func(emit func(string, ...[]byte) error) error {
		return emit("SET", []byte("k"), []byte("new"))
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Append("SET", []byte("k2"), []byte("tail"))
	l.Close()
	got := loadAll(t, path, key)
	if len(got) != 2 || string(got[0].args[1]) != "new" || string(got[1].args[1]) != "tail" {
		t.Fatalf("got %+v", got)
	}
}

func TestSyncCounters(t *testing.T) {
	path := tempPath(t)
	l, _ := Open(path, Options{Policy: SyncAlways})
	l.Append("SET", []byte("a"), []byte("1"))
	l.Append("SET", []byte("b"), []byte("2"))
	if l.Syncs() != 2 {
		t.Fatalf("always policy syncs = %d, want 2", l.Syncs())
	}
	if l.Appends() != 2 {
		t.Fatalf("appends = %d", l.Appends())
	}
	l.Close()

	l2, _ := Open(tempPath(t), Options{Policy: SyncNo})
	l2.Append("SET", []byte("a"), []byte("1"))
	if l2.Syncs() != 0 {
		t.Fatalf("no policy syncs = %d, want 0", l2.Syncs())
	}
	l2.Close()
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := Open(tempPath(t), Options{})
	l.Close()
	if err := l.Append("SET", []byte("a"), []byte("1")); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEverySecFlusherSyncs(t *testing.T) {
	if testing.Short() {
		t.Skip("waits >1s for the background flusher")
	}
	l, _ := Open(tempPath(t), Options{Policy: SyncEverySec})
	defer l.Close()
	l.Append("SET", []byte("a"), []byte("1"))
	testutil.Eventually(t, 3*time.Second, 20*time.Millisecond, func() bool {
		return l.Syncs() > 0
	}, "background flusher never synced")
}

func TestConcurrentAppends(t *testing.T) {
	path := tempPath(t)
	l, _ := Open(path, Options{})
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append("SET", []byte(fmt.Sprintf("k%d", g)), []byte("v")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	l.Close()
	if got := loadAll(t, path, nil); len(got) != goroutines*per {
		t.Fatalf("got %d records, want %d", len(got), goroutines*per)
	}
}

func TestPropertyRoundTripArbitraryPayloads(t *testing.T) {
	// Property: arbitrary binary args survive append+load, in order, with
	// or without encryption.
	f := func(payloads [][]byte, encrypt bool) bool {
		if len(payloads) == 0 {
			return true
		}
		dir, err := os.MkdirTemp("", "aofprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "a.aof")
		var key []byte
		if encrypt {
			key = bytes.Repeat([]byte{0xAB}, 32)
		}
		l, err := Open(path, Options{Key: key})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if err := l.Append("OP", p); err != nil {
				return false
			}
		}
		if l.Close() != nil {
			return false
		}
		i := 0
		n, err := Load(path, key, func(name string, args [][]byte) error {
			if name != "OP" || len(args) != 1 || !bytes.Equal(args[0], payloads[i]) {
				return fmt.Errorf("mismatch at %d", i)
			}
			i++
			return nil
		})
		return err == nil && n == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if SyncAlways.String() != "always" || SyncEverySec.String() != "everysec" || SyncNo.String() != "no" {
		t.Fatal("policy names wrong")
	}
}
