package gdprbench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/metrics"
)

// The multi-regulation scenario layers a CCPA-style "do not sell"
// objection on top of the GDPR persona machinery, testing the paper's
// observation that purpose-limitation metadata generalises beyond GDPR:
// CCPA §1798.120's opt-out is, mechanically, a standing Art. 21 objection
// against the "sale" processing purpose. The scenario measures a
// processor read mix under three policy regimes — no objections, GDPR
// objections only, GDPR + CCPA do-not-sell — and reports how throughput,
// latency and denial rates move as each regulation layer is added: the
// compliance-overhead delta of supporting a second regulation with the
// same machinery.

// MultiRegConfig parameterises the multi-regulation scenario.
type MultiRegConfig struct {
	// Subjects is the data-subject population (default 300).
	Subjects int
	// RecordsPerSubject is each subject's record count (default 10).
	RecordsPerSubject int
	// Operations is the number of reads per regime (default 20000).
	Operations int
	// GDPRObjectPct is the fraction of subjects filing an Art. 21
	// objection against the "marketing" purpose (default 0.10).
	GDPRObjectPct float64
	// CCPAOptOutPct is the fraction of subjects filing the do-not-sell
	// opt-out, i.e. an objection against the "sale" purpose
	// (default 0.30 — CCPA opt-out rates run far above GDPR objection
	// rates because no justification is required).
	CCPAOptOutPct float64
	// ValueSize is the payload size in bytes (default 100).
	ValueSize int
	// Seed fixes the randomness (0 → 1).
	Seed int64
}

func (c *MultiRegConfig) defaults() {
	if c.Subjects <= 0 {
		c.Subjects = 300
	}
	if c.RecordsPerSubject <= 0 {
		c.RecordsPerSubject = 10
	}
	if c.Operations <= 0 {
		c.Operations = 20000
	}
	if c.GDPRObjectPct <= 0 {
		c.GDPRObjectPct = 0.10
	}
	if c.CCPAOptOutPct <= 0 {
		c.CCPAOptOutPct = 0.30
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// multiRegPurposes is the purpose vocabulary: "sale" is the CCPA
// dimension, the others are ordinary GDPR processing purposes.
var multiRegPurposes = []string{"billing", "marketing", "sale", "support"}

// MultiRegPoint is one regime's measurements.
type MultiRegPoint struct {
	// Regime is "baseline", "gdpr" or "gdpr+ccpa".
	Regime string
	// Objections is how many standing objections the regime installed.
	Objections int
	// Throughput is reads/sec over the run.
	Throughput float64
	// Read summarises read latency (allowed and denied alike — a denial
	// still costs a metadata check).
	Read metrics.Snapshot
	// Denied counts reads refused by purpose/objection checks; Errors
	// counts everything else.
	Denied int
	Errors int
}

// RunMultiReg measures the read mix under each regime against a fresh
// embedded store per regime (standing objections cannot be unwound
// mid-run, so reuse would leak one regime into the next).
func RunMultiReg(cfg MultiRegConfig) ([]MultiRegPoint, error) {
	cfg.defaults()
	var out []MultiRegPoint
	for _, regime := range []string{"baseline", "gdpr", "gdpr+ccpa"} {
		pt, err := runMultiRegPoint(cfg, regime)
		if err != nil {
			return out, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func runMultiRegPoint(cfg MultiRegConfig, regime string) (MultiRegPoint, error) {
	st, err := core.Open(core.Config{
		Compliant:  true,
		Timing:     core.TimingEventual,
		Capability: core.CapabilityFull, // purpose and objection checks on
		EnforceACL: core.Ptr(false),
		RequireTTL: core.Ptr(false),
	})
	if err != nil {
		return MultiRegPoint{}, err
	}
	defer st.Close()

	ctl := core.Ctx{Actor: "controller", Purpose: "populate"}
	pcfg := Config{
		Subjects: cfg.Subjects, RecordsPerSubject: cfg.RecordsPerSubject,
		ValueSize: cfg.ValueSize, Seed: cfg.Seed,
		Purposes: multiRegPurposes, TTL: 24 * time.Hour,
	}
	if err := Populate(st, ctl, pcfg); err != nil {
		return MultiRegPoint{}, err
	}

	// Install the regime's standing objections. Subjects are chosen
	// deterministically from the front of the population; CCPA opt-outs
	// overlap the GDPR objectors the way real populations do.
	pt := MultiRegPoint{Regime: regime}
	if regime != "baseline" {
		n := int(float64(cfg.Subjects) * cfg.GDPRObjectPct)
		for i := 0; i < n; i++ {
			owner := SubjectName(i)
			if err := st.Object(core.Ctx{Actor: owner}, owner, "marketing"); err != nil {
				return pt, fmt.Errorf("gdprbench: multireg object %s: %w", owner, err)
			}
			pt.Objections++
		}
	}
	if regime == "gdpr+ccpa" {
		n := int(float64(cfg.Subjects) * cfg.CCPAOptOutPct)
		for i := 0; i < n; i++ {
			owner := SubjectName(i)
			if err := st.Object(core.Ctx{Actor: owner}, owner, "sale"); err != nil {
				return pt, fmt.Errorf("gdprbench: multireg do-not-sell %s: %w", owner, err)
			}
			pt.Objections++
		}
	}

	// The read mix: a processor reads random records under the purpose
	// each record was written with — except that a quarter of reads come
	// from the ad-tech path and state "sale" regardless, which is exactly
	// the traffic do-not-sell must block.
	rng := rand.New(rand.NewSource(cfg.Seed * 17))
	h := metrics.NewHistogram()
	start := time.Now()
	for n := 0; n < cfg.Operations; n++ {
		subj := rng.Intn(cfg.Subjects)
		j := rng.Intn(cfg.RecordsPerSubject)
		rec := RecordKey(subj, j)
		purpose := multiRegPurposes[j%len(multiRegPurposes)]
		if rng.Float64() < 0.25 {
			purpose = "sale"
		}
		t0 := time.Now()
		_, err := st.Get(core.Ctx{Actor: "processor", Purpose: purpose}, rec)
		h.Record(time.Since(t0))
		switch {
		case err == nil:
		case errors.Is(err, core.ErrPurposeDenied):
			pt.Denied++
		case !isBenign(err):
			pt.Errors++
		}
	}
	elapsed := time.Since(start)
	pt.Throughput = float64(cfg.Operations) / elapsed.Seconds()
	pt.Read = h.Snapshot()
	return pt, nil
}

// FormatMultiReg renders the regime comparison BENCH.md tabulates. The
// final column is the headline: throughput relative to the
// no-objections baseline.
func FormatMultiReg(points []MultiRegPoint) string {
	var b strings.Builder
	b.WriteString("[gdprbench/multi-regulation] processor reads under layered policy regimes\n")
	fmt.Fprintf(&b, "  %-10s %-11s %12s %10s %10s %8s %10s\n",
		"regime", "objections", "reads/s", "p50", "p99", "denied", "vs-base")
	var base float64
	for _, pt := range points {
		if pt.Regime == "baseline" {
			base = pt.Throughput
		}
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.1f%%", 100*pt.Throughput/base)
		}
		fmt.Fprintf(&b, "  %-10s %-11d %12.0f %10v %10v %8d %10s\n",
			pt.Regime, pt.Objections, pt.Throughput,
			pt.Read.P50, pt.Read.P99, pt.Denied, rel)
	}
	return strings.TrimRight(b.String(), "\n")
}
