package gdprbench_test

import (
	"context"
	"fmt"
	"testing"

	"gdprstore/internal/cluster"
	"gdprstore/internal/core"
	"gdprstore/internal/gdprbench"
	"gdprstore/internal/server"
)

// startNode boots one compliant server and returns its address.
func startNode(t *testing.T) (*server.Server, string) {
	t.Helper()
	st, err := core.Open(core.Config{
		Compliant: true, Capability: core.CapabilityFull, AuditEnabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := server.Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

func runAllRoles(t *testing.T, p *gdprbench.NetPool, cfg gdprbench.Config) {
	t.Helper()
	ctx := context.Background()
	if err := gdprbench.PopulateNet(ctx, p, cfg); err != nil {
		t.Fatal(err)
	}
	for _, role := range gdprbench.Roles {
		rcfg := cfg
		rcfg.Role = role
		res, err := gdprbench.RunNet(ctx, p, rcfg)
		if err != nil {
			t.Fatalf("%s: %v", role, err)
		}
		if res.Errors != 0 {
			t.Errorf("%s: %d non-benign errors", role, res.Errors)
		}
		if len(res.PerOp) == 0 {
			t.Errorf("%s: no operations recorded", role)
		}
	}
}

// TestNetPersonasSingleNode runs every persona over the wire against one
// server — the SDK-backed replacement for the deleted internal/client
// personas, one single-connection session per (actor, purpose).
func TestNetPersonasSingleNode(t *testing.T) {
	_, addr := startNode(t)
	ctx := context.Background()
	cfg := gdprbench.Config{Subjects: 6, RecordsPerSubject: 8, Operations: 120, Seed: 7}
	if err := gdprbench.InstallPrincipalsNet(ctx, addr, cfg.Subjects); err != nil {
		t.Fatal(err)
	}
	p := gdprbench.NewNetPool(addr, false)
	defer p.Close()
	runAllRoles(t, p, cfg)
}

// TestNetPersonasCluster runs the personas against three primaries in
// cluster mode: owner-tagged record keys co-locate each subject, and the
// rights operations (GETUSER/FORGETUSER in the customer mix) exercise the
// coordinated fan-out.
func TestNetPersonasCluster(t *testing.T) {
	const nodes = 3
	srvs := make([]*server.Server, nodes)
	addrs := make([]string, nodes)
	cnodes := make([]cluster.Node, nodes)
	splits := cluster.EvenSplit(nodes)
	for i := 0; i < nodes; i++ {
		srv, addr := startNode(t)
		srvs[i], addrs[i] = srv, addr
		cnodes[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: addr, Ranges: splits[i]}
	}
	m, err := cluster.NewMap(cnodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Sequential subject names hash to nearby CRC16 values, so a handful
	// of subjects can legitimately share a node; 12 of them provably span
	// all three (subjects 0-7 -> n3, 8-9 -> n2, 10-11 -> n1).
	cfg := gdprbench.Config{Subjects: 12, RecordsPerSubject: 8, Operations: 120, Seed: 11}
	for i, srv := range srvs {
		if err := srv.EnableCluster(server.ClusterConfig{Self: cnodes[i].ID, Map: m}); err != nil {
			t.Fatal(err)
		}
		// ACL state is node-local: every node needs the principals, both
		// for slot-local data ops and for the rights fan-out peers.
		if err := gdprbench.InstallPrincipalsNet(ctx, addrs[i], cfg.Subjects); err != nil {
			t.Fatal(err)
		}
	}
	p := gdprbench.NewNetPool(addrs[0], true, addrs[1:]...)
	defer p.Close()
	runAllRoles(t, p, cfg)

	// The population genuinely spread: more than one node holds keys.
	holding := 0
	for _, srv := range srvs {
		if srv.Store().Engine().Len() > 0 {
			holding++
		}
	}
	if holding < 2 {
		t.Fatalf("population landed on %d node(s); expected a spread", holding)
	}
}
