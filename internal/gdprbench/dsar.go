package gdprbench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/metrics"
)

// The dsar-burst scenario measures the cost of data-subject access
// requests at scale: a burst of concurrent GETUSER (Art. 15 access) and
// EXPORTUSER (Art. 20 portability) requests lands on a store that is
// simultaneously serving a live controller write stream. Rights
// operations walk every record a subject owns, so a burst of them is the
// GDPR analogue of an analytics scan — the scenario reports their tail
// latency and what the burst did to foreground write throughput, the
// compliance-overhead number the paper's Figure 1 style of comparison
// needs.

// DSARConfig parameterises the dsar-burst scenario.
type DSARConfig struct {
	// Subjects is the data-subject population (default 200).
	Subjects int
	// RecordsPerSubject is each subject's record count — the size of one
	// DSAR answer (default 50).
	RecordsPerSubject int
	// Requests is the total number of DSAR operations in the burst
	// (default 2000).
	Requests int
	// Concurrency is how many requesters issue them in parallel
	// (default 32).
	Concurrency int
	// Writers is how many controller write loops run throughout
	// (default 4).
	Writers int
	// BaselineWindow is how long the write stream runs alone before the
	// burst, establishing the undisturbed throughput (default 500ms).
	BaselineWindow time.Duration
	// ValueSize is the payload size in bytes (default 100).
	ValueSize int
	// Seed fixes the randomness (0 → 1).
	Seed int64
}

func (c *DSARConfig) defaults() {
	if c.Subjects <= 0 {
		c.Subjects = 200
	}
	if c.RecordsPerSubject <= 0 {
		c.RecordsPerSubject = 50
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.BaselineWindow <= 0 {
		c.BaselineWindow = 500 * time.Millisecond
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DSARResult is one dsar-burst run's measurements.
type DSARResult struct {
	Subjects, RecordsPerSubject int
	Requests, Concurrency       int
	// Access and Export summarise GETUSER / EXPORTUSER latencies.
	Access metrics.Snapshot
	Export metrics.Snapshot
	// Elapsed is the burst duration; Throughput its DSAR ops/sec.
	Elapsed    time.Duration
	Throughput float64
	// WriteBaseline is writer throughput (op/s) with no burst running;
	// WriteDuring is the same stream measured during the burst;
	// WritePenaltyPct is the loss, the scenario's headline overhead number.
	WriteBaseline   float64
	WriteDuring     float64
	WritePenaltyPct float64
	Errors          int
}

// RunDSAR runs the dsar-burst scenario against a fresh embedded store.
func RunDSAR(cfg DSARConfig) (DSARResult, error) {
	cfg.defaults()
	st, err := core.Open(core.Config{
		Compliant:  true,
		Timing:     core.TimingEventual,
		Capability: core.CapabilityPartial,
	})
	if err != nil {
		return DSARResult{}, err
	}
	defer st.Close()

	ctl := core.Ctx{Actor: "controller", Purpose: "populate"}
	pcfg := Config{
		Subjects: cfg.Subjects, RecordsPerSubject: cfg.RecordsPerSubject,
		ValueSize: cfg.ValueSize, Seed: cfg.Seed,
	}
	pcfg.defaults()
	if err := Populate(st, ctl, pcfg); err != nil {
		return DSARResult{}, err
	}

	res := DSARResult{
		Subjects: cfg.Subjects, RecordsPerSubject: cfg.RecordsPerSubject,
		Requests: cfg.Requests, Concurrency: cfg.Concurrency,
	}

	// Live write stream: Writers goroutines overwrite random records as a
	// controller for the whole scenario; writes are counted per phase.
	var writes atomic.Uint64
	stopWriters := make(chan struct{})
	var writerWG sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*997))
			val := make([]byte, cfg.ValueSize)
			for {
				select {
				case <-stopWriters:
					return
				default:
				}
				subj := rng.Intn(cfg.Subjects)
				j := rng.Intn(cfg.RecordsPerSubject)
				rec := RecordKey(subj, j)
				rng.Read(val)
				err := st.Put(core.Ctx{Actor: "controller", Purpose: "stream"}, rec, val, core.PutOptions{
					Owner:    SubjectName(subj),
					Purposes: []string{pcfg.Purposes[j%len(pcfg.Purposes)]},
					TTL:      pcfg.TTL,
				})
				if err == nil {
					writes.Add(1)
				}
			}
		}(w)
	}

	// Phase 1: undisturbed write throughput.
	w0 := writes.Load()
	time.Sleep(cfg.BaselineWindow)
	res.WriteBaseline = float64(writes.Load()-w0) / cfg.BaselineWindow.Seconds()

	// Phase 2: the DSAR burst.
	accessH := metrics.NewHistogram()
	exportH := metrics.NewHistogram()
	var next atomic.Int64
	var errs atomic.Int64
	wBefore := writes.Load()
	start := time.Now()
	var burstWG sync.WaitGroup
	for g := 0; g < cfg.Concurrency; g++ {
		burstWG.Add(1)
		go func(g int) {
			defer burstWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(g)))
			for {
				n := next.Add(1)
				if n > int64(cfg.Requests) {
					return
				}
				subj := rng.Intn(cfg.Subjects)
				owner := SubjectName(subj)
				t0 := time.Now()
				var err error
				if n%2 == 0 {
					_, err = st.Export(core.Ctx{Actor: owner}, owner)
					exportH.Record(time.Since(t0))
				} else {
					_, err = st.Access(core.Ctx{Actor: owner}, owner)
					accessH.Record(time.Since(t0))
				}
				if err != nil && !isBenign(err) {
					errs.Add(1)
				}
			}
		}(g)
	}
	burstWG.Wait()
	res.Elapsed = time.Since(start)
	res.WriteDuring = float64(writes.Load()-wBefore) / res.Elapsed.Seconds()

	close(stopWriters)
	writerWG.Wait()

	res.Access = accessH.Snapshot()
	res.Export = exportH.Snapshot()
	res.Throughput = float64(cfg.Requests) / res.Elapsed.Seconds()
	res.Errors = int(errs.Load())
	if res.WriteBaseline > 0 {
		res.WritePenaltyPct = 100 * (1 - res.WriteDuring/res.WriteBaseline)
	}
	return res, nil
}

// FormatDSAR renders the run as the tail-latency/overhead summary
// BENCH.md tabulates.
func FormatDSAR(r DSARResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[gdprbench/dsar-burst] subjects=%d records=%d requests=%d concurrency=%d errors=%d\n",
		r.Subjects, r.RecordsPerSubject, r.Requests, r.Concurrency, r.Errors)
	fmt.Fprintf(&b, "  dsar: %.0f req/s over %v\n", r.Throughput, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  GETUSER    %s\n", r.Access.String())
	fmt.Fprintf(&b, "  EXPORTUSER %s\n", r.Export.String())
	fmt.Fprintf(&b, "  writes: baseline=%.0f op/s during-burst=%.0f op/s penalty=%.1f%%",
		r.WriteBaseline, r.WriteDuring, r.WritePenaltyPct)
	return b.String()
}
