package gdprbench

import (
	"strings"
	"testing"
	"time"

	"gdprstore/internal/core"
)

func TestRunStormDrains(t *testing.T) {
	res, err := RunStorm(StormConfig{
		Keys:        2000,
		Horizon:     400 * time.Millisecond,
		Timing:      core.TimingRealTime, // fast-scan: drains in a few cycles
		SampleEvery: 10 * time.Millisecond,
		Timeout:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("storm did not drain: %+v", res)
	}
	if res.PeakOverdue == 0 {
		t.Error("no overdue backlog observed — storm never happened")
	}
	if res.PeakLag == 0 {
		t.Error("retention lag never rose above zero")
	}
	if res.ExpiredTotal < uint64(res.PeakOverdue) {
		t.Errorf("expired_total=%d < peak backlog %d", res.ExpiredTotal, res.PeakOverdue)
	}
	// The last sample must show the drained state the gauge converges to.
	last := res.Samples[len(res.Samples)-1]
	if last.Overdue != 0 || last.Lag != 0 {
		t.Errorf("final sample not drained: %+v", last)
	}
	out := FormatStorm(res)
	for _, want := range []string{"retention-storm", "peak_overdue=", "drain=", "drained=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatStorm missing %q:\n%s", want, out)
		}
	}
}

func TestRunStormPopulateOverrun(t *testing.T) {
	_, err := RunStorm(StormConfig{Keys: 5000, Horizon: time.Nanosecond})
	if err == nil || !strings.Contains(err.Error(), "overran") {
		t.Fatalf("err = %v, want horizon-overrun error", err)
	}
}

func TestRunDSAR(t *testing.T) {
	res, err := RunDSAR(DSARConfig{
		Subjects:          40,
		RecordsPerSubject: 8,
		Requests:          200,
		Concurrency:       8,
		Writers:           2,
		BaselineWindow:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("dsar errors = %d", res.Errors)
	}
	if got := res.Access.Count + res.Export.Count; got != 200 {
		t.Errorf("access+export observations = %d, want 200", got)
	}
	if res.Throughput <= 0 || res.WriteBaseline <= 0 || res.WriteDuring <= 0 {
		t.Errorf("implausible rates: %+v", res)
	}
	out := FormatDSAR(res)
	for _, want := range []string{"dsar-burst", "GETUSER", "EXPORTUSER", "penalty="} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatDSAR missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiReg(t *testing.T) {
	points, err := RunMultiReg(MultiRegConfig{
		Subjects:          60,
		RecordsPerSubject: 8,
		Operations:        3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d regimes, want 3", len(points))
	}
	byName := map[string]MultiRegPoint{}
	for _, pt := range points {
		byName[pt.Regime] = pt
	}
	// "sale" reads against non-sale records are denied even at baseline
	// (purpose limitation is GDPR machinery); what the regimes add is
	// objection-driven denial, so denials must strictly rise as layers
	// stack.
	if !(byName["gdpr"].Denied > byName["baseline"].Denied) {
		t.Errorf("gdpr denials (%d) not above baseline (%d)",
			byName["gdpr"].Denied, byName["baseline"].Denied)
	}
	if !(byName["gdpr+ccpa"].Denied > byName["gdpr"].Denied) {
		t.Errorf("gdpr+ccpa denials (%d) not above gdpr (%d)",
			byName["gdpr+ccpa"].Denied, byName["gdpr"].Denied)
	}
	if byName["baseline"].Objections != 0 || byName["gdpr+ccpa"].Objections <= byName["gdpr"].Objections {
		t.Errorf("objection counts wrong: %+v", points)
	}
	for _, pt := range points {
		if pt.Errors != 0 {
			t.Errorf("%s: %d non-benign errors", pt.Regime, pt.Errors)
		}
		if pt.Read.Count == 0 || pt.Throughput <= 0 {
			t.Errorf("%s: empty measurements: %+v", pt.Regime, pt)
		}
	}
	out := FormatMultiReg(points)
	for _, want := range []string{"multi-regulation", "baseline", "gdpr+ccpa", "vs-base"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatMultiReg missing %q:\n%s", want, out)
		}
	}
}

func TestRunBreach(t *testing.T) {
	res, err := RunBreach(BreachConfig{
		Records:  9000,
		Subjects: 50,
		Writers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The full replay covers at least the synthetic trail (the seed puts
	// and live writes are audited on top of it).
	if res.ScanRecords < res.Records {
		t.Errorf("scan saw %d records, want >= %d", res.ScanRecords, res.Records)
	}
	// The window is the middle third: roughly a third of the trail, with
	// the whole subject population affected and some denied attempts.
	if res.WindowRecords < res.Records/4 || res.WindowRecords > res.Records/2 {
		t.Errorf("window records = %d, want ≈ %d", res.WindowRecords, res.Records/3)
	}
	if res.AffectedOwners != res.Subjects {
		t.Errorf("affected subjects = %d, want %d", res.AffectedOwners, res.Subjects)
	}
	if res.Denied == 0 {
		t.Error("no denied operations in the window")
	}
	if !res.Masked {
		t.Error("default run should replay a masked trail")
	}
	out := FormatBreach(res)
	for _, want := range []string{"breach-replay", "full_scan=", "affected_subjects=", "live_writes="} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatBreach missing %q:\n%s", want, out)
		}
	}
}

func TestRunBreachUnmaskedDistinctOwners(t *testing.T) {
	res, err := RunBreach(BreachConfig{Records: 3000, Subjects: 20, Unmasked: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Masked {
		t.Error("Unmasked run reported masked")
	}
	if res.AffectedOwners != 20 {
		t.Errorf("affected subjects = %d, want 20", res.AffectedOwners)
	}
}
