package gdprbench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/cryptoutil"
	"gdprstore/internal/metrics"
)

// The erasure scenario measures the paper's Article 17 cost model
// directly: how long does FORGETUSER take as a function of how much data
// the subject owns? Eager erasure walks and deletes every record, so
// latency grows linearly with keys-per-owner. Crypto-shredding (envelope
// encryption on) destroys the owner's data key instead — one keyring
// operation and two journal appends regardless of cardinality — and
// leaves physical reclamation to the background sweep, so the same figure
// stays flat.

// ErasureConfig parameterises the erasure-latency scenario.
type ErasureConfig struct {
	// KeysPerOwner lists the cardinality points to measure
	// (default 16, 256, 4096).
	KeysPerOwner []int
	// Owners is how many subjects are erased per point; each contributes
	// one FORGETUSER latency observation (default 8).
	Owners int
	// ValueSize is the payload size in bytes (default 100).
	ValueSize int
	// Seed fixes the randomness (0 → 1).
	Seed int64
}

func (c *ErasureConfig) defaults() {
	if len(c.KeysPerOwner) == 0 {
		c.KeysPerOwner = []int{16, 256, 4096}
	}
	if c.Owners <= 0 {
		c.Owners = 8
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ErasurePoint is one measured (keys-per-owner, mode) cell.
type ErasurePoint struct {
	// KeysPerOwner is the cardinality of every erased subject.
	KeysPerOwner int
	// Shred reports the mode: true = envelope encryption + crypto-shred
	// fast path, false = eager per-key deletion.
	Shred bool
	// Forget summarises the FORGETUSER latencies (one per owner).
	Forget metrics.Snapshot
	// SweepReclaimed counts records the lazy-delete sweep reclaimed
	// afterwards (0 in eager mode — the Forget already deleted them).
	SweepReclaimed int
	// SweepTook is how long the full off-critical-path drain took.
	SweepTook time.Duration
}

// RunErasure measures FORGETUSER latency across the configured
// keys-per-owner points, in both eager and crypto-shred modes. Each
// (point, mode) cell runs against a fresh embedded store so residue from
// earlier erasures cannot skew the next measurement.
func RunErasure(cfg ErasureConfig) ([]ErasurePoint, error) {
	cfg.defaults()
	var out []ErasurePoint
	for _, k := range cfg.KeysPerOwner {
		for _, shred := range []bool{false, true} {
			pt, err := runErasurePoint(cfg, k, shred)
			if err != nil {
				return out, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func runErasurePoint(cfg ErasureConfig, keysPerOwner int, shred bool) (ErasurePoint, error) {
	ccfg := core.Config{
		Compliant:  true,
		Timing:     core.TimingEventual,
		Capability: core.CapabilityPartial,
	}
	if shred {
		key, err := cryptoutil.RandomKey()
		if err != nil {
			return ErasurePoint{}, err
		}
		ccfg.Envelope = true
		ccfg.MasterKey = key
	}
	st, err := core.Open(ccfg)
	if err != nil {
		return ErasurePoint{}, err
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	val := make([]byte, cfg.ValueSize)
	ctl := core.Ctx{Actor: "controller", Purpose: "populate"}
	for i := 0; i < cfg.Owners; i++ {
		owner := SubjectName(i)
		entries := make([]core.BatchEntry, keysPerOwner)
		for j := range entries {
			rng.Read(val)
			entries[j] = core.BatchEntry{
				Key:   RecordKey(i, j),
				Value: append([]byte(nil), val...),
			}
		}
		err := st.PutBatch(ctl, entries, core.PutOptions{
			Owner:    owner,
			Purposes: []string{"billing"},
			Origin:   "gdprbench-erasure",
		})
		if err != nil {
			return ErasurePoint{}, fmt.Errorf("gdprbench: erasure populate %s: %w", owner, err)
		}
	}

	h := metrics.NewHistogram()
	for i := 0; i < cfg.Owners; i++ {
		owner := SubjectName(i)
		t0 := time.Now()
		if _, err := st.Forget(core.Ctx{Actor: owner}, owner); err != nil {
			return ErasurePoint{}, fmt.Errorf("gdprbench: erasure forget %s: %w", owner, err)
		}
		h.Record(time.Since(t0))
	}

	pt := ErasurePoint{KeysPerOwner: keysPerOwner, Shred: shred, Forget: h.Snapshot()}
	if shred {
		t0 := time.Now()
		sw := st.DrainErasure()
		pt.SweepTook = time.Since(t0)
		pt.SweepReclaimed = sw.Reclaimed
	}
	return pt, nil
}

// FormatErasure renders the points as the flat-vs-linear latency table the
// scenario exists to produce.
func FormatErasure(points []ErasurePoint) string {
	var b strings.Builder
	b.WriteString("[gdprbench/erasure] FORGETUSER latency vs keys-per-owner\n")
	fmt.Fprintf(&b, "  %-8s %-8s %12s %12s %12s %14s\n",
		"keys", "mode", "p50", "p99", "max", "sweep")
	for _, pt := range points {
		mode := "eager"
		sweep := "-"
		if pt.Shred {
			mode = "shred"
			sweep = fmt.Sprintf("%d in %v", pt.SweepReclaimed, pt.SweepTook.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "  %-8d %-8s %12v %12v %12v %14s\n",
			pt.KeysPerOwner, mode,
			pt.Forget.P50, pt.Forget.P99, pt.Forget.Max, sweep)
	}
	return strings.TrimRight(b.String(), "\n")
}
