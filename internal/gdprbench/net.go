package gdprbench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gdprstore/internal/metrics"
	"gdprstore/pkg/gdprkv"
)

// This file is the network mode of the GDPRbench personas: the same
// operation mixes as Run, but issued through the public SDK against a
// live server — or a cluster of primaries — instead of an embedded
// store. Each persona actor gets its own single-connection client
// (pool=1), the GDPRbench session model: one authenticated principal,
// one declared purpose per session. A persona that switches purpose gets
// a distinct session, so pooled connections never carry ambient state
// from another identity — the property that made per-op AUTH switching
// impossible on a shared pooled client.

// NetPool lazily dials one gdprkv client per (actor, purpose) session,
// each a single-connection pool authenticated at dial time.
type NetPool struct {
	addr    string
	cluster bool
	seeds   []string
	extra   []gdprkv.Option

	mu      sync.Mutex
	clients map[string]*gdprkv.Client
}

// NewNetPool targets a single server at addr; with cluster true the
// clients are cluster-aware, bootstrapping their slot map from addr and
// the extra seeds.
func NewNetPool(addr string, cluster bool, seeds ...string) *NetPool {
	return &NetPool{addr: addr, cluster: cluster, seeds: seeds,
		clients: make(map[string]*gdprkv.Client)}
}

// Options appends extra client options applied to every session dialed
// after the call (e.g. gdprkv.WithAutoBatch to measure implicit
// coalescing). Call before the first Client.
func (p *NetPool) Options(opts ...gdprkv.Option) {
	p.mu.Lock()
	p.extra = append(p.extra, opts...)
	p.mu.Unlock()
}

// Client returns (dialing on first use) the session client for an actor
// and declared purpose.
func (p *NetPool) Client(ctx context.Context, actor, purpose string) (*gdprkv.Client, error) {
	key := actor + "\x00" + purpose
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[key]; ok {
		return c, nil
	}
	opts := []gdprkv.Option{gdprkv.WithPoolSize(1), gdprkv.WithActor(actor)}
	if purpose != "" {
		opts = append(opts, gdprkv.WithPurpose(purpose))
	}
	if p.cluster {
		opts = append(opts, gdprkv.WithCluster(p.seeds...))
	}
	opts = append(opts, p.extra...)
	c, err := gdprkv.Dial(ctx, p.addr, opts...)
	if err != nil {
		return nil, fmt.Errorf("gdprbench: dial session %s/%s: %w", actor, purpose, err)
	}
	p.clients[key] = c
	return c, nil
}

// Close releases every session client.
func (p *NetPool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = make(map[string]*gdprkv.Client)
}

// InstallPrincipalsNet installs the benchmark's principal population on
// the node at addr: the controller/processor/regulator roles, one
// subject principal per data subject, and a wildcard purpose grant for
// the processor. In cluster mode call it once per node — ACL state is
// node-local.
func InstallPrincipalsNet(ctx context.Context, addr string, subjects int) error {
	c, err := gdprkv.Dial(ctx, addr, gdprkv.WithPoolSize(1))
	if err != nil {
		return err
	}
	defer c.Close()
	cmds := [][]string{
		{"ACL", "ADDPRINCIPAL", "controller", "controller"},
		{"ACL", "ADDPRINCIPAL", "processor", "processor"},
		{"ACL", "ADDPRINCIPAL", "regulator", "regulator"},
		{"ACL", "GRANT", "processor", "*"},
	}
	for i := 0; i < subjects; i++ {
		cmds = append(cmds, []string{"ACL", "ADDPRINCIPAL", SubjectName(i), "subject"})
	}
	for _, cmd := range cmds {
		if _, err := c.Do(ctx, cmd...); err != nil {
			return fmt.Errorf("gdprbench: %v on %s: %w", cmd[:2], addr, err)
		}
	}
	return nil
}

// PopulateNet loads the subject population over the wire as the
// controller, batching each subject's records per purpose class with
// GMPut (records sharing a purpose share one batch — and, keys being
// owner-tagged, one cluster slot).
func PopulateNet(ctx context.Context, p *NetPool, cfg Config) error {
	cfg.defaults()
	c, err := p.Client(ctx, "controller", "populate")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Subjects; i++ {
		owner := SubjectName(i)
		for class, purpose := range cfg.Purposes {
			var keys []string
			var vals [][]byte
			for j := class; j < cfg.RecordsPerSubject; j += len(cfg.Purposes) {
				val := make([]byte, cfg.ValueSize)
				rng.Read(val)
				keys = append(keys, RecordKey(i, j))
				vals = append(vals, val)
			}
			if len(keys) == 0 {
				continue
			}
			err := c.GMPut(ctx, keys, vals, gdprkv.PutOptions{
				Owner: owner, Purposes: []string{purpose}, TTL: cfg.TTL,
				Origin: "gdprbench-populate",
			})
			if err != nil {
				return fmt.Errorf("gdprbench: populate %s: %w", owner, err)
			}
		}
	}
	return nil
}

// RunNet executes cfg.Operations operations of the persona's mix through
// the SDK. The caller must have installed principals on every node
// (InstallPrincipalsNet) and populated the dataset (PopulateNet).
func RunNet(ctx context.Context, p *NetPool, cfg Config) (Result, error) {
	cfg.defaults()
	mix, ok := mixes[cfg.Role]
	if !ok {
		return Result{}, fmt.Errorf("gdprbench: unknown role %q", cfg.Role)
	}
	rng := rand.New(rand.NewSource(cfg.Seed * 31))
	hists := make(map[Op]*metrics.Histogram)
	for _, w := range mix {
		hists[w.op] = metrics.NewHistogram()
	}
	val := make([]byte, cfg.ValueSize)
	errs := 0
	erased := make(map[int]bool)

	start := time.Now()
	for n := 0; n < cfg.Operations; n++ {
		op := pick(mix, rng)
		subj := rng.Intn(cfg.Subjects)
		if erased[subj] && (op == OpReadOwn || op == OpUpdateOwn || op == OpErase) {
			for tries := 0; tries < 4 && erased[subj]; tries++ {
				subj = rng.Intn(cfg.Subjects)
			}
			if erased[subj] {
				continue
			}
		}
		owner := SubjectName(subj)
		recIdx := rng.Intn(cfg.RecordsPerSubject)
		rec := RecordKey(subj, recIdx)
		purpose := cfg.Purposes[rng.Intn(len(cfg.Purposes))]

		// Sessions are dialed outside the timed window: GDPRbench measures
		// operations, not connection establishment.
		session := func(actor, purpose string) (*gdprkv.Client, error) {
			return p.Client(ctx, actor, purpose)
		}

		var err error
		var c *gdprkv.Client
		t0 := time.Now()
		switch op {
		case OpReadOwn:
			if cfg.Batch > 1 {
				keys, pp := batchKeys(subj, recIdx, cfg)
				if c, err = session(owner, pp); err == nil {
					var res []gdprkv.BatchValue
					t0 = time.Now()
					res, err = c.GMGet(ctx, keys...)
					err = firstNetBatchErr(res, err)
				}
			} else if c, err = session(owner, purposeOf(rec, cfg)); err == nil {
				t0 = time.Now()
				_, err = c.GGet(ctx, rec)
			}
		case OpUpdateOwn:
			rng.Read(val)
			if cfg.Batch > 1 {
				keys, pp := batchKeys(subj, recIdx, cfg)
				if c, err = session(owner, pp); err == nil {
					t0 = time.Now()
					err = c.GMPut(ctx, keys, repeatVal(val, len(keys)), gdprkv.PutOptions{
						Owner: owner, Purposes: []string{pp}, TTL: cfg.TTL,
					})
				}
			} else if c, err = session(owner, purposeOf(rec, cfg)); err == nil {
				t0 = time.Now()
				err = c.GPut(ctx, rec, val, gdprkv.PutOptions{
					Owner: owner, Purposes: []string{purposeOf(rec, cfg)}, TTL: cfg.TTL,
				})
			}
		case OpAccess:
			if c, err = session(owner, ""); err == nil {
				t0 = time.Now()
				_, err = c.Do(ctx, "ACCESS", owner)
			}
		case OpPortab:
			if c, err = session(owner, ""); err == nil {
				t0 = time.Now()
				_, err = c.ExportUser(ctx, owner)
			}
		case OpObject:
			if c, err = session(owner, ""); err == nil {
				t0 = time.Now()
				err = c.Object(ctx, owner, purpose)
			}
		case OpErase:
			if c, err = session(owner, ""); err == nil {
				t0 = time.Now()
				_, err = c.ForgetUser(ctx, owner)
				if err == nil {
					erased[subj] = true
				}
			}
		case OpPut:
			rng.Read(val)
			if cfg.Batch > 1 {
				keys, pp := batchKeys(subj, recIdx, cfg)
				if c, err = session("controller", pp); err == nil {
					t0 = time.Now()
					err = c.GMPut(ctx, keys, repeatVal(val, len(keys)), gdprkv.PutOptions{
						Owner: owner, Purposes: []string{pp}, TTL: cfg.TTL,
					})
				}
			} else if c, err = session("controller", purpose); err == nil {
				t0 = time.Now()
				err = c.GPut(ctx, rec, val, gdprkv.PutOptions{
					Owner: owner, Purposes: []string{purposeOf(rec, cfg)}, TTL: cfg.TTL,
				})
			}
		case OpRetune:
			if c, err = session("controller", ""); err == nil {
				t0 = time.Now()
				_, err = c.Expire(ctx, rec, int64((cfg.TTL+time.Duration(rng.Intn(3600))*time.Second)/time.Second))
			}
		case OpPurposeQ:
			if c, err = session("controller", ""); err == nil {
				t0 = time.Now()
				_, err = c.Do(ctx, "KEYSBYPURPOSE", purpose)
			}
		case OpprocRead:
			if cfg.Batch > 1 {
				keys, pp := batchKeys(subj, recIdx, cfg)
				if c, err = session("processor", pp); err == nil {
					var res []gdprkv.BatchValue
					t0 = time.Now()
					res, err = c.GMGet(ctx, keys...)
					err = firstNetBatchErr(res, err)
				}
			} else if c, err = session("processor", purposeOf(rec, cfg)); err == nil {
				t0 = time.Now()
				_, err = c.GGet(ctx, rec)
			}
		case OpBreach:
			if c, err = session("regulator", ""); err == nil {
				from := start.Add(-time.Hour).UTC().Format(time.RFC3339)
				to := time.Now().Add(time.Hour).UTC().Format(time.RFC3339)
				t0 = time.Now()
				_, err = c.Do(ctx, "BREACH", from, to)
			}
		case OpMetaRead:
			if c, err = session("regulator", ""); err == nil {
				t0 = time.Now()
				_, err = c.Do(ctx, "GETMETA", rec)
			}
		}
		hists[op].Record(time.Since(t0))
		if err != nil && !isNetBenign(err) {
			errs++
		}
	}
	elapsed := time.Since(start)

	perOp := make(map[Op]metrics.Snapshot)
	for op, h := range hists {
		if h.Count() > 0 {
			perOp[op] = h.Snapshot()
		}
	}
	return Result{
		Role: cfg.Role, Ops: cfg.Operations, Elapsed: elapsed,
		Throughput: float64(cfg.Operations) / elapsed.Seconds(),
		PerOp:      perOp, Errors: errs,
	}, nil
}

func repeatVal(val []byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = val
	}
	return out
}

// firstNetBatchErr reduces a GMGet result to its first non-benign
// per-key error, matching the one-at-a-time path's reporting.
func firstNetBatchErr(res []gdprkv.BatchValue, err error) error {
	if err != nil {
		return err
	}
	for _, r := range res {
		if r.Err != nil && !isNetBenign(r.Err) {
			return r.Err
		}
	}
	return nil
}

// isNetBenign mirrors isBenign for the SDK's typed sentinels: missing or
// erased records and objected purposes are workload consequences, not
// failures.
func isNetBenign(err error) bool {
	return err == nil ||
		errors.Is(err, gdprkv.ErrNotFound) ||
		errors.Is(err, gdprkv.ErrBadPurpose) ||
		errors.Is(err, gdprkv.ErrErased)
}
