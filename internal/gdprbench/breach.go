package gdprbench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/core"
)

// The breach-replay scenario measures the regulator persona's worst day:
// reconstructing a breach window from a multi-million-record audit trail
// (Articles 33/34 — notify within 72 hours, tell the affected subjects).
// The trail is durable and, by default, masked (PII pseudonymized at
// append time), so the replay also demonstrates that "who was affected"
// is answerable — as a count of distinct subjects — without unmasking
// anyone. The store stays live throughout: a controller keeps writing
// while the regulator scans, so the numbers include the interference a
// real investigation would see.

// BreachConfig parameterises the breach-replay scenario.
type BreachConfig struct {
	// Records is the synthetic audit-trail size the regulator replays
	// (default 2,000,000 — "multi-million" territory at the default).
	Records int
	// Subjects is the data-subject population referenced by the trail and
	// seeded into the live store (default 10,000).
	Subjects int
	// Actors is the principal population appearing in the trail
	// (default 8).
	Actors int
	// Unmasked disables audit masking; the default (false) replays a
	// pseudonymized trail, the harder and more realistic case.
	Unmasked bool
	// Writers is how many live controller write loops run during the
	// replay (default 1).
	Writers int
	// ValueSize is the live writers' payload size in bytes (default 100).
	ValueSize int
	// Seed fixes the randomness (0 → 1).
	Seed int64
}

func (c *BreachConfig) defaults() {
	if c.Records <= 0 {
		c.Records = 2_000_000
	}
	if c.Subjects <= 0 {
		c.Subjects = 10_000
	}
	if c.Actors <= 0 {
		c.Actors = 8
	}
	if c.Writers <= 0 {
		c.Writers = 1
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BreachResult is one breach-replay run's measurements.
type BreachResult struct {
	Records  int
	Subjects int
	Masked   bool
	// Append is how long building the synthetic trail took, and its rate.
	Append     time.Duration
	AppendRate float64
	// Scan is the full-trail sequential replay: duration and records/s.
	Scan        time.Duration
	ScanRecords int
	ScanRate    float64
	// Breach is the Art. 33/34 window query: duration plus the report's
	// headline numbers.
	Breach         time.Duration
	WindowRecords  int
	AffectedOwners int
	Denied         int
	// LiveWrites is how many controller writes the store absorbed while
	// the regulator was scanning, and their rate.
	LiveWrites    uint64
	LiveWriteRate float64
}

// RunBreach runs the breach-replay scenario against a fresh embedded
// store with a durable (file-backed) audit trail: seed the subject
// population, append a synthetic multi-million-record trail with a known
// breach window in its middle third, then — under live write traffic —
// replay the full trail and build the breach report for the window.
func RunBreach(cfg BreachConfig) (BreachResult, error) {
	cfg.defaults()
	dir, err := os.MkdirTemp("", "gdprbench-breach-*")
	if err != nil {
		return BreachResult{}, err
	}
	defer os.RemoveAll(dir)

	st, err := core.Open(core.Config{
		Compliant:    true,
		Capability:   core.CapabilityPartial,
		AuditEnabled: true,
		AuditPath:    filepath.Join(dir, "audit.log"),
		AuditMask:    !cfg.Unmasked,
	})
	if err != nil {
		return BreachResult{}, err
	}
	defer st.Close()
	res := BreachResult{Records: cfg.Records, Subjects: cfg.Subjects, Masked: !cfg.Unmasked}

	// Seed the live population: one record per subject.
	ctl := core.Ctx{Actor: "controller", Purpose: "service"}
	for i := 0; i < cfg.Subjects; i++ {
		err := st.Put(ctl, RecordKey(i, 0), []byte("seed"), core.PutOptions{
			Owner: SubjectName(i), Purposes: []string{"service"},
		})
		if err != nil {
			return BreachResult{}, fmt.Errorf("gdprbench: breach seed: %w", err)
		}
	}

	// Build the synthetic trail. The middle third is the breach window;
	// Sync barriers around its edges pin the window's wall-clock bounds
	// (record timestamps are trail-assigned, and the pipeline is async).
	rng := rand.New(rand.NewSource(cfg.Seed))
	trailOps := []string{"GET", "SET", "GETUSER", "EXPORTUSER", "FORGETUSER"}
	trail := st.Trail()
	third := cfg.Records / 3
	var wFrom, wTo time.Time
	t0 := time.Now()
	for i := 0; i < cfg.Records; i++ {
		switch i {
		case third:
			if err := trail.Sync(); err != nil {
				return res, err
			}
			wFrom = time.Now()
		case 2 * third:
			if err := trail.Sync(); err != nil {
				return res, err
			}
			wTo = time.Now()
		}
		subj := rng.Intn(cfg.Subjects)
		rec := audit.Record{
			Actor:   fmt.Sprintf("actor%02d", rng.Intn(cfg.Actors)),
			Op:      trailOps[rng.Intn(len(trailOps))],
			Key:     RecordKey(subj, rng.Intn(16)),
			Owner:   SubjectName(subj),
			Purpose: "service",
			Outcome: audit.OutcomeOK,
		}
		if rng.Float64() < 0.02 {
			rec.Outcome = audit.OutcomeDenied
		}
		if _, err := trail.Append(rec); err != nil {
			return res, fmt.Errorf("gdprbench: breach trail append: %w", err)
		}
	}
	if err := trail.Sync(); err != nil {
		return res, err
	}
	res.Append = time.Since(t0)
	res.AppendRate = float64(cfg.Records) / res.Append.Seconds()

	// The store stays live: controllers keep writing while the regulator
	// works. Their writes are audited too — arriving after wTo, they are
	// outside the window and must not distort the report. The loops are
	// paced (a short sleep per write) so they model steady background
	// traffic rather than saturating the host and starving the replay —
	// on a single-core box an unpaced spin loop would do exactly that.
	var writes atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			val := make([]byte, cfg.ValueSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(200 * time.Microsecond):
				}
				wr.Read(val)
				subj := wr.Intn(cfg.Subjects)
				err := st.Put(ctl, RecordKey(subj, 1+i%15), val, core.PutOptions{
					Owner: SubjectName(subj), Purposes: []string{"service"},
				})
				if err == nil {
					writes.Add(1)
				}
			}
		}(w)
	}

	// Full-trail replay: the sequential scan a from-scratch forensic pass
	// pays, served from the durable file.
	t0 = time.Now()
	n := 0
	err = trail.Scan(func(audit.Record) error {
		n++
		return nil
	})
	if err != nil {
		close(stop)
		wg.Wait()
		return res, fmt.Errorf("gdprbench: breach scan: %w", err)
	}
	res.Scan = time.Since(t0)
	res.ScanRecords = n
	res.ScanRate = float64(n) / res.Scan.Seconds()

	// The Art. 33/34 question: who was affected in the window, by whom,
	// and were any of the operations denied attempts.
	t0 = time.Now()
	rep, err := st.Breach(core.Ctx{Actor: "regulator", Purpose: "audit"}, wFrom, wTo)
	if err != nil {
		close(stop)
		wg.Wait()
		return res, fmt.Errorf("gdprbench: breach report: %w", err)
	}
	res.Breach = time.Since(t0)
	res.WindowRecords = rep.Records
	res.AffectedOwners = len(rep.AffectedOwners)
	res.Denied = rep.Denied

	close(stop)
	wg.Wait()
	res.LiveWrites = writes.Load()
	elapsed := res.Scan + res.Breach
	if elapsed > 0 {
		res.LiveWriteRate = float64(res.LiveWrites) / elapsed.Seconds()
	}
	return res, nil
}

// FormatBreach renders the run in the one-scenario-per-block style
// BENCH.md tabulates.
func FormatBreach(r BreachResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[gdprbench/breach-replay] records=%d subjects=%d masked=%v\n",
		r.Records, r.Subjects, r.Masked)
	fmt.Fprintf(&b, "  trail_append=%v (%.0f rec/s)\n",
		r.Append.Round(time.Millisecond), r.AppendRate)
	fmt.Fprintf(&b, "  full_scan=%v (%d records, %.0f rec/s)\n",
		r.Scan.Round(time.Millisecond), r.ScanRecords, r.ScanRate)
	fmt.Fprintf(&b, "  breach_window=%v records=%d affected_subjects=%d denied=%d\n",
		r.Breach.Round(time.Millisecond), r.WindowRecords, r.AffectedOwners, r.Denied)
	fmt.Fprintf(&b, "  live_writes=%d (%.0f put/s sustained during the replay)\n",
		r.LiveWrites, r.LiveWriteRate)
	return strings.TrimRight(b.String(), "\n")
}
