package gdprbench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gdprstore/internal/core"
)

// The retention-storm scenario measures storage-limitation enforcement
// under the worst case the paper's §3.1 "timely deletion" requirement
// implies: a large population of records whose retention deadlines all
// land on the same instant. At the deadline the overdue backlog jumps
// from zero to the full population, and the active-expiry machinery works
// it off; the scenario samples retention lag (age of the oldest overdue
// record) and backlog through the decay and reports how long draining
// took — the live counterpart of Figure 2's expiry-lag plot, and exactly
// what the ops server's gdprkv_retention_lag_seconds gauge shows while
// this scenario runs against a server.

// StormConfig parameterises the retention-storm scenario.
type StormConfig struct {
	// Keys is how many records share the common deadline (default 20000).
	Keys int
	// Horizon is how far in the future the shared deadline is placed;
	// population must finish inside it (default 1s).
	Horizon time.Duration
	// Timing selects the embedded store's point on the compliance
	// spectrum, which drives the expiry strategy (eventual →
	// lazy-probabilistic, the decaying curve; realtime → fast-scan).
	Timing core.Timing
	// SampleEvery is the lag-sampling period during the drain
	// (default 25ms).
	SampleEvery time.Duration
	// Timeout bounds the drain wait (default 60s).
	Timeout time.Duration
	// ValueSize is the payload size in bytes (default 100).
	ValueSize int
	// Seed fixes the randomness (0 → 1).
	Seed int64
}

func (c *StormConfig) defaults() {
	if c.Keys <= 0 {
		c.Keys = 20000
	}
	if c.Horizon <= 0 {
		c.Horizon = time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// StormSample is one point on the drain curve.
type StormSample struct {
	// At is time since the shared deadline.
	At time.Duration
	// Overdue is the backlog: records past deadline but still present.
	Overdue int
	// Lag is the age of the oldest overdue record.
	Lag time.Duration
}

// StormResult is one retention-storm run's measurements.
type StormResult struct {
	Keys     int
	Timing   core.Timing
	Populate time.Duration
	// PeakOverdue is the largest backlog observed (≈ Keys at the deadline).
	PeakOverdue int
	// PeakLag is the largest retention lag observed before the drain
	// completed.
	PeakLag time.Duration
	// Drain is how long after the deadline the backlog reached zero.
	Drain time.Duration
	// Samples is the observed decay curve.
	Samples []StormSample
	// ExpiredTotal is the store's cumulative expiry counter afterwards.
	ExpiredTotal uint64
	// Drained reports whether the backlog reached zero inside Timeout.
	Drained bool
}

// RunStorm runs the retention-storm scenario against a fresh embedded
// store: populate Keys records that all expire at one instant, then
// sample the retention-lag gauges until enforcement has drained the
// backlog.
func RunStorm(cfg StormConfig) (StormResult, error) {
	cfg.defaults()
	st, err := core.Open(core.Config{
		Compliant:  true,
		Timing:     cfg.Timing,
		Capability: core.CapabilityPartial,
	})
	if err != nil {
		return StormResult{}, err
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	ctl := core.Ctx{Actor: "controller", Purpose: "populate"}
	deadline := time.Now().Add(cfg.Horizon)
	val := make([]byte, cfg.ValueSize)

	t0 := time.Now()
	const chunk = 512
	for base := 0; base < cfg.Keys; base += chunk {
		n := min(chunk, cfg.Keys-base)
		entries := make([]core.BatchEntry, n)
		for i := range entries {
			rng.Read(val)
			entries[i] = core.BatchEntry{
				Key:   fmt.Sprintf("storm:%07d", base+i),
				Value: append([]byte(nil), val...),
			}
		}
		err := st.PutBatch(ctl, entries, core.PutOptions{
			Owner:    "storm-population",
			Purposes: []string{"billing"},
			ExpireAt: deadline,
			Origin:   "gdprbench-storm",
		})
		if err != nil {
			return StormResult{}, fmt.Errorf("gdprbench: storm populate: %w", err)
		}
	}
	res := StormResult{Keys: cfg.Keys, Timing: cfg.Timing, Populate: time.Since(t0)}
	if remaining := time.Until(deadline); remaining < 0 {
		return res, fmt.Errorf("gdprbench: storm populate overran the %v horizon by %v — raise -storm-horizon",
			cfg.Horizon, -remaining)
	}

	st.StartExpirer()
	defer st.StopExpirer()
	time.Sleep(time.Until(deadline))

	// Sample the decay until the backlog drains or the timeout lapses.
	stop := time.Now().Add(cfg.Timeout)
	for {
		rt := st.RetentionStats()
		s := StormSample{At: time.Since(deadline), Overdue: rt.OverdueRecords, Lag: rt.Lag}
		res.Samples = append(res.Samples, s)
		if s.Overdue > res.PeakOverdue {
			res.PeakOverdue = s.Overdue
		}
		if s.Lag > res.PeakLag {
			res.PeakLag = s.Lag
		}
		if s.Overdue == 0 && s.At > 0 {
			res.Drained = true
			res.Drain = s.At
			break
		}
		if time.Now().After(stop) {
			res.Drain = time.Since(deadline)
			break
		}
		time.Sleep(cfg.SampleEvery)
	}
	res.ExpiredTotal = st.RetentionStats().ExpiredTotal
	return res, nil
}

// FormatStorm renders the run as the rise-then-drain summary BENCH.md
// tabulates.
func FormatStorm(r StormResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[gdprbench/retention-storm] keys=%d timing=%s populate=%v\n",
		r.Keys, r.Timing, r.Populate.Round(time.Millisecond))
	fmt.Fprintf(&b, "  peak_overdue=%d peak_lag=%v drain=%v drained=%v expired_total=%d\n",
		r.PeakOverdue, r.PeakLag.Round(time.Millisecond),
		r.Drain.Round(time.Millisecond), r.Drained, r.ExpiredTotal)
	b.WriteString("  t+ms     overdue      lag_ms\n")
	for i, s := range r.Samples {
		// Print at most ~12 curve points: first, last, and every stride-th.
		stride := max(1, len(r.Samples)/10)
		if i != 0 && i != len(r.Samples)-1 && i%stride != 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8d %-12d %d\n",
			s.At.Milliseconds(), s.Overdue, s.Lag.Milliseconds())
	}
	return strings.TrimRight(b.String(), "\n")
}
