package gdprbench

import (
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/clock"
	"gdprstore/internal/core"
)

// benchStore builds a full-compliance store with the persona principals
// the benchmark requires.
func benchStore(t *testing.T, subjects int) (*core.Store, core.Ctx) {
	t.Helper()
	cfg := core.Strict("")
	cfg.Clock = clock.NewVirtual(time.Date(2019, 5, 16, 0, 0, 0, 0, time.UTC))
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	st.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	st.ACL().AddPrincipal(acl.Principal{ID: "processor", Role: acl.RoleProcessor})
	st.ACL().AddPrincipal(acl.Principal{ID: "regulator", Role: acl.RoleRegulator})
	for i := 0; i < subjects; i++ {
		st.ACL().AddPrincipal(acl.Principal{ID: SubjectName(i), Role: acl.RoleSubject})
	}
	if err := st.ACL().AddGrant(acl.Grant{Principal: "processor", Purpose: "*"}); err != nil {
		t.Fatal(err)
	}
	return st, core.Ctx{Actor: "controller", Purpose: "populate"}
}

func TestPopulate(t *testing.T) {
	st, ctl := benchStore(t, 10)
	cfg := Config{Subjects: 10, RecordsPerSubject: 5}
	if err := Populate(st, ctl, cfg); err != nil {
		t.Fatal(err)
	}
	if st.Engine().Len() != 50 {
		t.Fatalf("populated %d keys, want 50", st.Engine().Len())
	}
	keys, err := st.OwnerKeys(ctl, SubjectName(3))
	if err != nil || len(keys) != 5 {
		t.Fatalf("subject3 keys = %v, %v", keys, err)
	}
}

func TestRunAllRoles(t *testing.T) {
	st, ctl := benchStore(t, 20)
	cfg := Config{Subjects: 20, RecordsPerSubject: 4}
	if err := Populate(st, ctl, cfg); err != nil {
		t.Fatal(err)
	}
	for _, role := range Roles {
		role := role
		t.Run(string(role), func(t *testing.T) {
			rcfg := cfg
			rcfg.Role = role
			rcfg.Operations = 300
			res, err := Run(st, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%s errors: %d\n%s", role, res.Errors, res)
			}
			if len(res.PerOp) == 0 {
				t.Fatalf("%s recorded no operations", role)
			}
			if res.Throughput <= 0 {
				t.Fatal("zero throughput")
			}
		})
	}
}

func TestCustomerEraseTakesEffect(t *testing.T) {
	st, ctl := benchStore(t, 5)
	cfg := Config{Subjects: 5, RecordsPerSubject: 3, Role: RoleCustomer, Operations: 2000, Seed: 42}
	if err := Populate(st, ctl, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 1% erase probability over 2000 ops on 5 subjects, at least one
	// subject should have been erased.
	if _, ok := res.PerOp[OpErase]; !ok {
		t.Skip("no erase drawn with this seed")
	}
	total := 0
	for i := 0; i < 5; i++ {
		keys, _ := st.OwnerKeys(ctl, SubjectName(i))
		total += len(keys)
	}
	if total == 15 {
		t.Fatal("erases recorded but no subject data removed")
	}
}

func TestUnknownRole(t *testing.T) {
	st, _ := benchStore(t, 1)
	if _, err := Run(st, Config{Role: "hacker", Subjects: 1, RecordsPerSubject: 1, Operations: 1}); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestMixWeightsSumToOne(t *testing.T) {
	for role, mix := range mixes {
		sum := 0.0
		for _, w := range mix {
			sum += w.w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("role %s mix sums to %v", role, sum)
		}
	}
}

func TestPurposeOfRoundTrip(t *testing.T) {
	cfg := Config{}
	cfg.defaults()
	rec := RecordKey(12, 7)
	want := cfg.Purposes[7%len(cfg.Purposes)]
	if got := purposeOf(rec, cfg); got != want {
		t.Fatalf("purposeOf(%q) = %q, want %q", rec, got, want)
	}
	if got := purposeOf("garbage", cfg); got != cfg.Purposes[0] {
		t.Fatalf("fallback purpose = %q", got)
	}
}
