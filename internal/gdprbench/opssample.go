package gdprbench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// OpsSample aggregates what a mid-run poll of the target server's ops
// surface observed: the worst compliance lag and audit pressure seen
// while the workload ran. Scenarios attach it to their Result when the
// benchmark is pointed at a live server's -ops-addr, proving the
// observability surface carries the paper's measurements end to end.
type OpsSample struct {
	// Samples is how many successful polls contributed.
	Samples int
	// Failures counts polls that errored (server restarting, etc.).
	Failures int
	// MaxErasureLag is the worst erasure sweep lag observed.
	MaxErasureLag time.Duration
	// MaxErasurePendingRecords is the deepest dead-ciphertext backlog.
	MaxErasurePendingRecords int
	// MaxRetentionLag is the worst retention-enforcement lag observed.
	MaxRetentionLag time.Duration
	// MaxRetentionOverdue is the deepest overdue-TTL backlog.
	MaxRetentionOverdue int
	// MaxAuditQueueDepth is the deepest audit pipeline queue.
	MaxAuditQueueDepth int
	// AuditDropped is the final shed-record count.
	AuditDropped uint64
}

// String renders the one-line summary appended to scenario output.
func (s OpsSample) String() string {
	return fmt.Sprintf("ops-observed: samples=%d failures=%d max_erasure_lag=%v max_erasure_pending=%d max_retention_lag=%v max_retention_overdue=%d max_audit_queue=%d audit_dropped=%d",
		s.Samples, s.Failures, s.MaxErasureLag.Round(time.Millisecond),
		s.MaxErasurePendingRecords, s.MaxRetentionLag.Round(time.Millisecond),
		s.MaxRetentionOverdue, s.MaxAuditQueueDepth, s.AuditDropped)
}

// OpsSampler polls a gdprkv-server ops endpoint (/info/erasure,
// /info/retention, /info/audit) in the background while a scenario runs,
// folding each poll into a running OpsSample.
type OpsSampler struct {
	base     string
	interval time.Duration
	client   *http.Client

	mu     sync.Mutex
	sample OpsSample
	stop   chan struct{}
	done   chan struct{}
}

// NewOpsSampler returns a sampler for the ops server at addr
// (host:port), polling every interval (≤0 → 100ms).
func NewOpsSampler(addr string, interval time.Duration) *OpsSampler {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &OpsSampler{
		base:     "http://" + addr,
		interval: interval,
		client:   &http.Client{Timeout: 2 * time.Second},
	}
}

// Start begins polling until Stop. It is a no-op if already running.
func (o *OpsSampler) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stop != nil {
		return
	}
	o.stop = make(chan struct{})
	o.done = make(chan struct{})
	go o.loop(o.stop, o.done)
}

func (o *OpsSampler) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(o.interval)
	defer t.Stop()
	o.poll()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			o.poll()
		}
	}
}

// Stop halts polling and returns the aggregated sample.
func (o *OpsSampler) Stop() OpsSample {
	o.mu.Lock()
	stop, done := o.stop, o.done
	o.stop, o.done = nil, nil
	o.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sample
}

// poll fetches the three compliance sections once and folds the maxima.
func (o *OpsSampler) poll() {
	erasure, err1 := o.section("erasure")
	retention, err2 := o.section("retention")
	auditSec, err3 := o.section("audit")
	o.mu.Lock()
	defer o.mu.Unlock()
	if err1 != nil || err2 != nil || err3 != nil {
		o.sample.Failures++
		return
	}
	o.sample.Samples++
	s := &o.sample
	if lag := dur(erasure["erasure_sweep_lag_ms"]); lag > s.MaxErasureLag {
		s.MaxErasureLag = lag
	}
	if n := num(erasure["erasure_pending_records"]); n > s.MaxErasurePendingRecords {
		s.MaxErasurePendingRecords = n
	}
	if lag := dur(retention["retention_lag_ms"]); lag > s.MaxRetentionLag {
		s.MaxRetentionLag = lag
	}
	if n := num(retention["retention_overdue_records"]); n > s.MaxRetentionOverdue {
		s.MaxRetentionOverdue = n
	}
	if n := num(auditSec["audit_queue_depth"]); n > s.MaxAuditQueueDepth {
		s.MaxAuditQueueDepth = n
	}
	if n, err := strconv.ParseUint(auditSec["audit_dropped"], 10, 64); err == nil {
		s.AuditDropped = n
	}
}

// section fetches one /info/{section} flat JSON object.
func (o *OpsSampler) section(name string) (map[string]string, error) {
	resp, err := o.client.Get(o.base + "/info/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gdprbench: ops /info/%s: status %d", name, resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("gdprbench: ops /info/%s: %w", name, err)
	}
	return out, nil
}

func num(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func dur(ms string) time.Duration {
	n, _ := strconv.ParseInt(ms, 10, 64)
	return time.Duration(n) * time.Millisecond
}
