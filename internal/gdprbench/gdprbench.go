// Package gdprbench implements GDPR-centric benchmark workloads in the
// style of GDPRbench, the follow-up benchmark this paper spawned. Where
// YCSB measures a store's plain data path, these workloads measure the
// GDPR surface itself through four personas:
//
//   - customer (data subject): reads own data, exercises the rights of
//     access (Art. 15), portability (Art. 20), objection (Art. 21) and
//     erasure (Art. 17);
//   - controller: writes personal data with metadata, retunes retention,
//     queries by purpose;
//   - processor: reads personal data under a granted purpose;
//   - regulator: audits — breach reports and metadata inspection.
package gdprbench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/core"
	"gdprstore/internal/metrics"
)

// Role is a GDPRbench persona.
type Role string

// Personas.
const (
	RoleCustomer   Role = "customer"
	RoleController Role = "controller"
	RoleProcessor  Role = "processor"
	RoleRegulator  Role = "regulator"
)

// Roles lists all personas in benchmark order.
var Roles = []Role{RoleCustomer, RoleController, RoleProcessor, RoleRegulator}

// Op names the GDPR operations measured.
type Op string

// Operations.
const (
	OpReadOwn   Op = "READ-OWN"
	OpUpdateOwn Op = "UPDATE-OWN"
	OpAccess    Op = "GETUSER"
	OpPortab    Op = "EXPORT"
	OpObject    Op = "OBJECT"
	OpErase     Op = "FORGET"
	OpPut       Op = "PUT-META"
	OpRetune    Op = "UPDATE-TTL"
	OpPurposeQ  Op = "KEYS-BY-PURPOSE"
	OpprocRead  Op = "READ-PURPOSE"
	OpBreach    Op = "BREACH-REPORT"
	OpMetaRead  Op = "READ-META"
)

// weightedOp pairs an operation with its share of the mix.
type weightedOp struct {
	op Op
	w  float64
}

// mixes defines each persona's operation mix. Shares follow GDPRbench's
// emphasis: personas mostly perform their primary operation with a tail of
// heavyweight rights operations.
var mixes = map[Role][]weightedOp{
	RoleCustomer: {
		{OpReadOwn, 0.60}, {OpUpdateOwn, 0.20}, {OpAccess, 0.10},
		{OpPortab, 0.05}, {OpObject, 0.04}, {OpErase, 0.01},
	},
	RoleController: {
		{OpPut, 0.60}, {OpRetune, 0.25}, {OpPurposeQ, 0.15},
	},
	RoleProcessor: {
		{OpprocRead, 1.00},
	},
	RoleRegulator: {
		{OpBreach, 0.20}, {OpMetaRead, 0.80},
	},
}

// Config parameterises a persona run.
type Config struct {
	// Role selects the persona.
	Role Role
	// Subjects is the number of data subjects in the population.
	Subjects int
	// RecordsPerSubject is how many keys each subject owns.
	RecordsPerSubject int
	// Operations is the number of operations to run.
	Operations int
	// ValueSize is the payload size in bytes (default 100 — GDPRbench
	// uses small personal records).
	ValueSize int
	// Seed fixes the randomness (0 → 1).
	Seed int64
	// Purposes is the purpose vocabulary (default: billing, analytics,
	// marketing, support).
	Purposes []string
	// TTL is the retention bound written on records (default 24h).
	TTL time.Duration
	// Batch groups data-path operations (reads, writes) into
	// PutBatch/GetBatch calls of this size, amortising the per-operation
	// compliance overhead. 0 or 1 keeps the one-key-at-a-time path; the
	// per-op latency then covers Batch keys per observation.
	Batch int
}

func (c *Config) defaults() {
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Purposes) == 0 {
		c.Purposes = []string{"billing", "analytics", "marketing", "support"}
	}
	if c.TTL <= 0 {
		c.TTL = 24 * time.Hour
	}
}

// SubjectName formats subject i's principal ID.
func SubjectName(i int) string { return fmt.Sprintf("subject%06d", i) }

// RecordKey formats subject i's j-th key. The owner is a cluster hash
// tag, so in cluster mode every record of one subject co-locates on the
// owner's slot — erasure and access stay node-local for the benchmark
// population (embedded mode ignores the braces).
func RecordKey(i, j int) string { return fmt.Sprintf("pd:{%s}:rec%04d", SubjectName(i), j) }

// Result is one persona run's measurements.
type Result struct {
	Role       Role
	Ops        int
	Elapsed    time.Duration
	Throughput float64
	PerOp      map[Op]metrics.Snapshot
	Errors     int
	// Audit snapshots the audit pipeline after the run (nil when auditing
	// is off): queue pressure and shed records are part of the measurement
	// — a high Dropped count means the throughput figure was bought by
	// discarding evidence.
	Audit *audit.Stats
	// OpsObserved is what a mid-run poll of the target server's ops
	// surface saw (nil unless the benchmark ran with -ops-addr): worst
	// erasure/retention lag and audit pressure while this persona was
	// driving load.
	OpsObserved *OpsSample
}

// String renders a summary block.
func (r Result) String() string {
	s := fmt.Sprintf("[gdprbench/%s] ops=%d elapsed=%v throughput=%.0f op/s errors=%d",
		r.Role, r.Ops, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Errors)
	for op, snap := range r.PerOp {
		s += fmt.Sprintf("\n  %-16s %s", op, snap.String())
	}
	if a := r.Audit; a != nil {
		s += fmt.Sprintf("\n  audit: mode=%s policy=%s workers=%d queue=%d/%d enqueued=%d processed=%d dropped=%d sink_errors=%d syncs=%d",
			a.Mode, a.Policy, a.Workers, a.QueueDepth, a.QueueCap,
			a.Enqueued, a.Processed, a.Dropped, a.SinkErrors, a.Syncs)
	}
	if r.OpsObserved != nil {
		s += "\n  " + r.OpsObserved.String()
	}
	return s
}

// Populate loads the subject population into st using controller identity
// ctl: every subject gets RecordsPerSubject records with purpose metadata
// drawn round-robin from the purpose vocabulary.
func Populate(st *core.Store, ctl core.Ctx, cfg Config) error {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	val := make([]byte, cfg.ValueSize)
	for i := 0; i < cfg.Subjects; i++ {
		owner := SubjectName(i)
		for j := 0; j < cfg.RecordsPerSubject; j++ {
			rng.Read(val)
			purpose := cfg.Purposes[j%len(cfg.Purposes)]
			err := st.Put(ctl, RecordKey(i, j), val, core.PutOptions{
				Owner:    owner,
				Purposes: []string{purpose},
				TTL:      cfg.TTL,
				Origin:   "gdprbench-populate",
			})
			if err != nil {
				return fmt.Errorf("gdprbench: populate %s: %w", RecordKey(i, j), err)
			}
		}
	}
	return nil
}

// Run executes cfg.Operations operations of the persona's mix against st.
// The caller must have installed matching principals:
// subjects as RoleSubject, "controller" as RoleController, "processor"
// with grants for every purpose, and "regulator" as RoleRegulator.
func Run(st *core.Store, cfg Config) (Result, error) {
	cfg.defaults()
	mix, ok := mixes[cfg.Role]
	if !ok {
		return Result{}, fmt.Errorf("gdprbench: unknown role %q", cfg.Role)
	}
	rng := rand.New(rand.NewSource(cfg.Seed * 31))
	hists := make(map[Op]*metrics.Histogram)
	for _, w := range mix {
		hists[w.op] = metrics.NewHistogram()
	}
	val := make([]byte, cfg.ValueSize)
	errs := 0
	erased := make(map[int]bool)

	start := time.Now()
	for n := 0; n < cfg.Operations; n++ {
		op := pick(mix, rng)
		subj := rng.Intn(cfg.Subjects)
		if erased[subj] && (op == OpReadOwn || op == OpUpdateOwn || op == OpErase) {
			// GDPRbench redraws erased subjects for data-path operations.
			for tries := 0; tries < 4 && erased[subj]; tries++ {
				subj = rng.Intn(cfg.Subjects)
			}
			if erased[subj] {
				continue
			}
		}
		owner := SubjectName(subj)
		rec := RecordKey(subj, rng.Intn(cfg.RecordsPerSubject))
		purpose := cfg.Purposes[rng.Intn(len(cfg.Purposes))]

		t0 := time.Now()
		var err error
		switch op {
		case OpReadOwn:
			if cfg.Batch > 1 {
				keys, p := batchKeys(subj, rng.Intn(cfg.RecordsPerSubject), cfg)
				err = firstBatchErr(st.GetBatch(core.Ctx{Actor: owner, Purpose: p}, keys))
			} else {
				_, err = st.Get(core.Ctx{Actor: owner, Purpose: purposeOf(rec, cfg)}, rec)
			}
		case OpUpdateOwn:
			rng.Read(val)
			if cfg.Batch > 1 {
				keys, p := batchKeys(subj, rng.Intn(cfg.RecordsPerSubject), cfg)
				err = st.PutBatch(core.Ctx{Actor: owner, Purpose: p}, batchEntries(keys, val), core.PutOptions{
					Owner: owner, Purposes: []string{p}, TTL: cfg.TTL,
				})
			} else {
				err = st.Put(core.Ctx{Actor: owner, Purpose: purposeOf(rec, cfg)}, rec, val, core.PutOptions{
					Owner: owner, Purposes: []string{purposeOf(rec, cfg)}, TTL: cfg.TTL,
				})
			}
		case OpAccess:
			_, err = st.Access(core.Ctx{Actor: owner}, owner)
		case OpPortab:
			_, err = st.Export(core.Ctx{Actor: owner}, owner)
		case OpObject:
			err = st.Object(core.Ctx{Actor: owner}, owner, purpose)
		case OpErase:
			_, err = st.Forget(core.Ctx{Actor: owner}, owner)
			if err == nil {
				erased[subj] = true
			}
		case OpPut:
			rng.Read(val)
			if cfg.Batch > 1 {
				keys, p := batchKeys(subj, rng.Intn(cfg.RecordsPerSubject), cfg)
				err = st.PutBatch(core.Ctx{Actor: "controller", Purpose: p}, batchEntries(keys, val), core.PutOptions{
					Owner: owner, Purposes: []string{p}, TTL: cfg.TTL,
				})
			} else {
				err = st.Put(core.Ctx{Actor: "controller", Purpose: purpose}, rec, val, core.PutOptions{
					Owner: owner, Purposes: []string{purposeOf(rec, cfg)}, TTL: cfg.TTL,
				})
			}
		case OpRetune:
			err = st.Expire(core.Ctx{Actor: "controller"}, rec, cfg.TTL+time.Duration(rng.Intn(3600))*time.Second)
		case OpPurposeQ:
			_, err = st.KeysByPurpose(core.Ctx{Actor: "controller"}, purpose)
		case OpprocRead:
			if cfg.Batch > 1 {
				keys, p := batchKeys(subj, rng.Intn(cfg.RecordsPerSubject), cfg)
				err = firstBatchErr(st.GetBatch(core.Ctx{Actor: "processor", Purpose: p}, keys))
			} else {
				_, err = st.Get(core.Ctx{Actor: "processor", Purpose: purposeOf(rec, cfg)}, rec)
			}
		case OpBreach:
			_, err = st.Breach(core.Ctx{Actor: "regulator"}, start.Add(-time.Hour), time.Now().Add(time.Hour))
		case OpMetaRead:
			_, err = st.Metadata(core.Ctx{Actor: "regulator"}, rec)
		}
		hists[op].Record(time.Since(t0))
		if err != nil && !isBenign(err) {
			errs++
		}
	}
	elapsed := time.Since(start)

	perOp := make(map[Op]metrics.Snapshot)
	for op, h := range hists {
		if h.Count() > 0 {
			perOp[op] = h.Snapshot()
		}
	}
	res := Result{
		Role: cfg.Role, Ops: cfg.Operations, Elapsed: elapsed,
		Throughput: float64(cfg.Operations) / elapsed.Seconds(),
		PerOp:      perOp, Errors: errs,
	}
	if t := st.Trail(); t != nil {
		st := t.Stats()
		res.Audit = &st
	}
	return res, nil
}

// batchKeys selects cfg.Batch record keys of the subject that share one
// populated purpose (record purposes are round-robin by index, so only
// indices congruent mod len(Purposes) can legally be read in one batch
// under a single declared purpose). Keys repeat when the subject has fewer
// congruent records than the batch size.
func batchKeys(subj, j0 int, cfg Config) ([]string, string) {
	stride := len(cfg.Purposes)
	class := j0 % stride
	members := make([]int, 0, (cfg.RecordsPerSubject+stride-1)/stride)
	for j := class; j < cfg.RecordsPerSubject; j += stride {
		members = append(members, j)
	}
	keys := make([]string, cfg.Batch)
	for i := range keys {
		keys[i] = RecordKey(subj, members[i%len(members)])
	}
	return keys, cfg.Purposes[class]
}

// batchEntries pairs every key with the shared payload.
func batchEntries(keys []string, val []byte) []core.BatchEntry {
	entries := make([]core.BatchEntry, len(keys))
	for i, k := range keys {
		entries[i] = core.BatchEntry{Key: k, Value: val}
	}
	return entries
}

// firstBatchErr reduces a GetBatch result to the first non-benign per-key
// error, matching how the one-at-a-time path reports.
func firstBatchErr(results []core.BatchGetResult, err error) error {
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil && !isBenign(r.Err) {
			return r.Err
		}
	}
	return nil
}

// purposeOf recovers the purpose a record was populated with (round-robin
// by record index), so reads state the right purpose.
func purposeOf(rec string, cfg Config) string {
	var i, j int
	if _, err := fmt.Sscanf(rec, "pd:{subject%06d}:rec%04d", &i, &j); err != nil {
		return cfg.Purposes[0]
	}
	return cfg.Purposes[j%len(cfg.Purposes)]
}

// isBenign filters errors that are expected consequences of the workload
// itself (reads of erased/expired subjects, objected purposes), which
// GDPRbench does not count as failures.
func isBenign(err error) bool {
	return err == nil ||
		errors.Is(err, core.ErrNotFound) ||
		errors.Is(err, core.ErrPurposeDenied) ||
		errors.Is(err, core.ErrErased)
}

func pick(mix []weightedOp, rng *rand.Rand) Op {
	f := rng.Float64()
	for _, w := range mix {
		if f < w.w {
			return w.op
		}
		f -= w.w
	}
	return mix[len(mix)-1].op
}
