package store

import (
	"bytes"
	"fmt"
	"time"
)

// Apply replays one journaled operation without re-journaling it. The AOF
// loader calls this for every record; unknown operation names are reported
// so higher layers (which journal their own record types into the same
// log) can claim them first.
//
// Deadlines that have already passed are applied as-is: the key becomes
// present-but-expired and is reclaimed by the normal lazy/active paths,
// mirroring how a restarted store re-discovers overdue keys.
func (db *DB) Apply(name string, args [][]byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch name {
	case "SET":
		if len(args) < 2 {
			return fmt.Errorf("store: apply SET: need 2+ args, got %d", len(args))
		}
		key := string(args[0])
		db.dict[key] = cloneBytes(args[1])
		keepTTL := len(args) >= 3 && bytes.Equal(args[2], []byte("KEEPTTL"))
		if !keepTTL {
			db.removeExpireLocked(key)
		}
	case "SETEX":
		if len(args) != 3 {
			return fmt.Errorf("store: apply SETEX: need 3 args, got %d", len(args))
		}
		deadline, err := DecodeDeadline(args[1])
		if err != nil {
			return fmt.Errorf("store: apply SETEX: %w", err)
		}
		key := string(args[0])
		db.dict[key] = cloneBytes(args[2])
		db.setExpireLocked(key, deadline)
	case "MSET":
		if len(args) == 0 || len(args)%2 != 0 {
			return fmt.Errorf("store: apply MSET: need even args, got %d", len(args))
		}
		for i := 0; i+1 < len(args); i += 2 {
			key := string(args[i])
			db.dict[key] = cloneBytes(args[i+1])
			db.removeExpireLocked(key)
		}
	case "MSETEX":
		if len(args) < 3 || len(args)%2 != 1 {
			return fmt.Errorf("store: apply MSETEX: need deadline + even pairs, got %d args", len(args))
		}
		deadline, err := DecodeDeadline(args[0])
		if err != nil {
			return fmt.Errorf("store: apply MSETEX: %w", err)
		}
		for i := 1; i+1 < len(args); i += 2 {
			key := string(args[i])
			db.dict[key] = cloneBytes(args[i+1])
			db.setExpireLocked(key, deadline)
		}
	case "EXPIREAT":
		if len(args) != 2 {
			return fmt.Errorf("store: apply EXPIREAT: need 2 args, got %d", len(args))
		}
		deadline, err := DecodeDeadline(args[1])
		if err != nil {
			return fmt.Errorf("store: apply EXPIREAT: %w", err)
		}
		key := string(args[0])
		if _, ok := db.dict[key]; ok {
			db.setExpireLocked(key, deadline)
		}
	case "PERSIST":
		if len(args) != 1 {
			return fmt.Errorf("store: apply PERSIST: need 1 arg, got %d", len(args))
		}
		db.removeExpireLocked(string(args[0]))
	case "READ":
		// Monitoring records from JournalReads mode: no state change.
	case "DEL":
		for _, a := range args {
			db.deleteLocked(string(a))
		}
	case "FLUSHALL":
		db.dict = make(map[string][]byte)
		db.expires = make(map[string]time.Time)
		db.expireKeys = db.expireKeys[:0]
		db.expireIdx = make(map[string]int)
		db.heap = db.heap[:0]
	default:
		return fmt.Errorf("store: apply: unknown op %q", name)
	}
	return nil
}

// Snapshot emits the minimal command sequence that reconstructs the current
// dataset, for AOF rewrite: one SET or SETEX per live key. Expired
// unreclaimed keys are dropped — after a rewrite, deleted and expired data
// no longer persists in the log (§4.3's requirement).
func (db *DB) Snapshot(emit func(name string, args ...[]byte) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clk.Now()
	for k, v := range db.dict {
		if t, ok := db.expires[k]; ok {
			if !t.After(now) {
				continue // expired: do not resurrect
			}
			if err := emit("SETEX", []byte(k), encodeDeadline(t), v); err != nil {
				return err
			}
			continue
		}
		if err := emit("SET", []byte(k), v); err != nil {
			return err
		}
	}
	return nil
}
