package store

import (
	"bytes"
	"fmt"
	"time"
)

// Apply replays one journaled operation without re-journaling it. The AOF
// loader calls this for every record; unknown operation names are reported
// so higher layers (which journal their own record types into the same
// log) can claim them first. Each key is applied under its owning shard's
// lock, so Apply is safe to call concurrently with reads (the replica
// streaming path does).
//
// Deadlines that have already passed are applied as-is: the key becomes
// present-but-expired and is reclaimed by the normal lazy/active paths,
// mirroring how a restarted store re-discovers overdue keys.
func (db *DB) Apply(name string, args [][]byte) error {
	switch name {
	case "SET":
		if len(args) < 2 {
			return fmt.Errorf("store: apply SET: need 2+ args, got %d", len(args))
		}
		key := string(args[0])
		keepTTL := len(args) >= 3 && bytes.Equal(args[2], []byte("KEEPTTL"))
		sh := db.shardFor(key)
		sh.mu.Lock()
		sh.dict[key] = cloneBytes(args[1])
		if !keepTTL {
			sh.removeExpireLocked(key)
		}
		sh.mu.Unlock()
	case "SETEX":
		if len(args) != 3 {
			return fmt.Errorf("store: apply SETEX: need 3 args, got %d", len(args))
		}
		deadline, err := DecodeDeadline(args[1])
		if err != nil {
			return fmt.Errorf("store: apply SETEX: %w", err)
		}
		key := string(args[0])
		sh := db.shardFor(key)
		sh.mu.Lock()
		sh.dict[key] = cloneBytes(args[2])
		db.setExpireLocked(sh, key, deadline)
		sh.mu.Unlock()
	case "MSET":
		if len(args) == 0 || len(args)%2 != 0 {
			return fmt.Errorf("store: apply MSET: need even args, got %d", len(args))
		}
		for i := 0; i+1 < len(args); i += 2 {
			key := string(args[i])
			sh := db.shardFor(key)
			sh.mu.Lock()
			sh.dict[key] = cloneBytes(args[i+1])
			sh.removeExpireLocked(key)
			sh.mu.Unlock()
		}
	case "MSETEX":
		if len(args) < 3 || len(args)%2 != 1 {
			return fmt.Errorf("store: apply MSETEX: need deadline + even pairs, got %d args", len(args))
		}
		deadline, err := DecodeDeadline(args[0])
		if err != nil {
			return fmt.Errorf("store: apply MSETEX: %w", err)
		}
		for i := 1; i+1 < len(args); i += 2 {
			key := string(args[i])
			sh := db.shardFor(key)
			sh.mu.Lock()
			sh.dict[key] = cloneBytes(args[i+1])
			db.setExpireLocked(sh, key, deadline)
			sh.mu.Unlock()
		}
	case "EXPIREAT":
		if len(args) != 2 {
			return fmt.Errorf("store: apply EXPIREAT: need 2 args, got %d", len(args))
		}
		deadline, err := DecodeDeadline(args[1])
		if err != nil {
			return fmt.Errorf("store: apply EXPIREAT: %w", err)
		}
		key := string(args[0])
		sh := db.shardFor(key)
		sh.mu.Lock()
		if _, ok := sh.dict[key]; ok {
			db.setExpireLocked(sh, key, deadline)
		}
		sh.mu.Unlock()
	case "PERSIST":
		if len(args) != 1 {
			return fmt.Errorf("store: apply PERSIST: need 1 arg, got %d", len(args))
		}
		key := string(args[0])
		sh := db.shardFor(key)
		sh.mu.Lock()
		sh.removeExpireLocked(key)
		sh.mu.Unlock()
	case "READ":
		// Monitoring records from JournalReads mode: no state change.
	case "DEL":
		for _, a := range args {
			key := string(a)
			sh := db.shardFor(key)
			sh.mu.Lock()
			sh.deleteLocked(key)
			sh.mu.Unlock()
		}
	case "FLUSHALL":
		db.lockAll()
		for _, sh := range db.shards {
			sh.dict = make(map[string][]byte)
			sh.expires = make(map[string]time.Time)
			sh.expireKeys = sh.expireKeys[:0]
			sh.expireIdx = make(map[string]int)
			sh.heap = sh.heap[:0]
		}
		db.unlockAll()
	default:
		return fmt.Errorf("store: apply: unknown op %q", name)
	}
	return nil
}

// Snapshot emits the minimal command sequence that reconstructs the current
// dataset, for AOF rewrite: one SET or SETEX per live key. Expired
// unreclaimed keys are dropped — after a rewrite, deleted and expired data
// no longer persists in the log (§4.3's requirement).
//
// Snapshot is the engine's one stop-the-world operation: it locks every
// shard (in index order, like all cross-shard operations) for the duration
// of the emit loop, so the snapshot is a globally consistent cut of the
// keyspace — an AOF rewrite or replica seed taken from it can be replayed
// against the journal stream without losing or resurrecting keys.
func (db *DB) Snapshot(emit func(name string, args ...[]byte) error) error {
	db.lockAll()
	defer db.unlockAll()
	now := db.clk.Now()
	for _, sh := range db.shards {
		for k, v := range sh.dict {
			if t, ok := sh.expires[k]; ok {
				if !t.After(now) {
					continue // expired: do not resurrect
				}
				if err := emit("SETEX", []byte(k), encodeDeadline(t), v); err != nil {
					return err
				}
				continue
			}
			if err := emit("SET", []byte(k), v); err != nil {
				return err
			}
		}
	}
	return nil
}
