package store

import "time"

// TTLStatus classifies a TTL query result, mirroring Redis's -2/-1/≥0
// convention.
type TTLStatus int

// TTL query results.
const (
	// TTLMissing means the key does not exist (Redis returns -2).
	TTLMissing TTLStatus = iota
	// TTLNone means the key exists without an expiry (Redis returns -1).
	TTLNone
	// TTLSet means the key has the returned time-to-live remaining.
	TTLSet
)

// Expire sets a relative TTL on an existing key. It reports whether the key
// existed.
func (db *DB) Expire(key string, ttl time.Duration) bool {
	return db.ExpireAt(key, db.clk.Now().Add(ttl))
}

// ExpireAt sets an absolute deadline on an existing key. It reports whether
// the key existed. A deadline in the past deletes the key immediately, as
// Redis does.
func (db *DB) ExpireAt(key string, deadline time.Time) bool {
	sh := db.shardFor(key)
	sh.mu.Lock()
	ok := db.expireAtLocked(sh, key, deadline)
	sh.mu.Unlock()
	db.jq.flush()
	return ok
}

func (db *DB) expireAtLocked(sh *shard, key string, deadline time.Time) bool {
	if db.expireIfNeededLocked(sh, key) {
		return false
	}
	if _, ok := sh.dict[key]; !ok {
		return false
	}
	if !deadline.After(db.clk.Now()) {
		sh.deleteLocked(key)
		sh.expired++
		db.jq.enqueue("DEL", []byte(key))
		return true
	}
	db.setExpireLocked(sh, key, deadline)
	db.jq.enqueue("EXPIREAT", []byte(key), encodeDeadline(deadline))
	return true
}

// Persist removes the TTL from key, reporting whether a TTL was removed.
func (db *DB) Persist(key string) bool {
	sh := db.shardFor(key)
	sh.mu.Lock()
	if db.expireIfNeededLocked(sh, key) {
		sh.mu.Unlock()
		db.jq.flush()
		return false
	}
	if _, ok := sh.expires[key]; !ok {
		sh.mu.Unlock()
		return false
	}
	sh.removeExpireLocked(key)
	db.jq.enqueue("PERSIST", []byte(key))
	sh.mu.Unlock()
	db.jq.flush()
	return true
}

// TTL returns the remaining time-to-live of key.
func (db *DB) TTL(key string) (time.Duration, TTLStatus) {
	sh := db.shardFor(key)
	sh.mu.Lock()
	if db.expireIfNeededLocked(sh, key) {
		sh.mu.Unlock()
		db.jq.flush()
		return 0, TTLMissing
	}
	if _, ok := sh.dict[key]; !ok {
		sh.mu.Unlock()
		return 0, TTLMissing
	}
	t, ok := sh.expires[key]
	sh.mu.Unlock()
	if !ok {
		return 0, TTLNone
	}
	return t.Sub(db.clk.Now()), TTLSet
}

// Deadline returns the absolute expiry deadline for key, if one is set.
func (db *DB) Deadline(key string) (time.Time, bool) {
	sh := db.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.expires[key]
	return t, ok
}

// setExpireLocked records a deadline for key. Callers hold sh.mu.
func (db *DB) setExpireLocked(sh *shard, key string, deadline time.Time) {
	if _, exists := sh.expires[key]; !exists {
		sh.expireIdx[key] = len(sh.expireKeys)
		sh.expireKeys = append(sh.expireKeys, key)
	}
	sh.expires[key] = deadline
	if db.Strategy() == ExpiryHeap {
		// Stale heap entries for the same key are tolerated: pop validates
		// against the expires dict before deleting.
		sh.heap.push(heapEntry{deadline: deadline, key: key})
	}
}

func (sh *shard) removeExpireLocked(key string) {
	if _, ok := sh.expires[key]; !ok {
		return
	}
	delete(sh.expires, key)
	// swap-remove from the sampling slice
	i := sh.expireIdx[key]
	last := len(sh.expireKeys) - 1
	if i != last {
		moved := sh.expireKeys[last]
		sh.expireKeys[i] = moved
		sh.expireIdx[moved] = i
	}
	sh.expireKeys = sh.expireKeys[:last]
	delete(sh.expireIdx, key)
	// heap entries are invalidated lazily
}

// CycleStats reports what one active-expire cycle did.
type CycleStats struct {
	// Sampled is the number of keys examined.
	Sampled int
	// Expired is the number of keys deleted.
	Expired int
	// Loops is the number of sampling iterations performed (the
	// probabilistic cycle repeats while ≥25% of a sample was expired).
	Loops int
}

// ActiveExpireCycle runs one invocation of the configured expiry strategy.
// Callers are expected to invoke it once per ActiveExpireCyclePeriod, which
// is what Expirer does. The fast-scan and heap strategies visit shards one
// at a time, so writers on other shards are never blocked by the cycle; the
// probabilistic strategy keeps Redis's global 20-keys-per-loop sampling
// budget (see probabilisticCycle).
func (db *DB) ActiveExpireCycle() CycleStats {
	var st CycleStats
	switch db.Strategy() {
	case ExpiryFastScan:
		st.Loops = 1
		for _, sh := range db.shards {
			db.fastScanShard(sh, &st)
			// Flush per shard: a Figure-2-scale backlog would otherwise
			// buffer the whole cycle's DEL records (O(backlog) memory)
			// before a single giant drain.
			db.jq.flush()
		}
	case ExpiryHeap:
		st.Loops = 1
		for _, sh := range db.shards {
			db.heapCycleShard(sh, &st)
			db.jq.flush()
		}
	default:
		st = db.probabilisticCycle()
	}
	db.jq.flush()
	return st
}

// probabilisticCycle is Redis 4.0's activeExpireCycle as described in the
// paper: sample 20 random keys from the expires dict, delete the expired
// ones, and repeat immediately while at least 5 of the 20 sampled keys
// were expired.
//
// The 20-key budget is deliberately global rather than per shard: each
// lookup picks a shard weighted by its expires-dict size, then a uniform
// key within it — uniform sampling over the whole expires set, exactly as
// the unsharded engine did. Sampling 20 keys per shard instead would
// reclaim shard-count times faster and silently erase the Figure 2 erasure
// lag this strategy exists to reproduce.
func (db *DB) probabilisticCycle() CycleStats {
	var st CycleStats
	sizes := make([]int, len(db.shards))
	for {
		st.Loops++
		total := 0
		for i, sh := range db.shards {
			sh.mu.Lock()
			sizes[i] = len(sh.expireKeys)
			sh.mu.Unlock()
			total += sizes[i]
		}
		if total == 0 {
			return st
		}
		lookups := ActiveExpireLookupsPerLoop
		if total < lookups {
			lookups = total
		}
		expiredThisLoop := 0
		now := db.clk.Now()
		for i := 0; i < lookups; i++ {
			// Weighted shard pick: index r into the concatenation of the
			// shards' expires sets (sizes are a per-loop snapshot; the
			// slight staleness only perturbs the sampling distribution).
			r := db.randIntn(total)
			shIdx := 0
			for r >= sizes[shIdx] {
				r -= sizes[shIdx]
				shIdx++
			}
			sh := db.shards[shIdx]
			sh.mu.Lock()
			if len(sh.expireKeys) == 0 {
				sh.mu.Unlock()
				continue
			}
			k := sh.expireKeys[db.randIntn(len(sh.expireKeys))]
			st.Sampled++
			if !sh.expires[k].After(now) {
				sh.deleteLocked(k)
				sh.expired++
				db.jq.enqueue("DEL", []byte(k))
				expiredThisLoop++
				st.Expired++
			}
			sh.mu.Unlock()
		}
		// Flush each loop's DELs (≤20 records) before deciding whether to
		// repeat, so a long dense-expiry run streams to the journal
		// instead of accumulating.
		db.jq.flush()
		if expiredThisLoop < ActiveExpireRepeatThreshold {
			return st
		}
	}
}

// fastScanShard is the paper's modification (§4.3) applied to one shard:
// iterate the shard's whole expires dict and erase every key that is due.
// One pass over every shard guarantees that no expired key survives the
// cycle.
func (db *DB) fastScanShard(sh *shard, st *CycleStats) {
	sh.mu.Lock()
	now := db.clk.Now()
	var due []string
	for k, t := range sh.expires {
		st.Sampled++
		if !t.After(now) {
			due = append(due, k)
		}
	}
	for _, k := range due {
		sh.deleteLocked(k)
		sh.expired++
		db.jq.enqueue("DEL", []byte(k))
		st.Expired++
	}
	sh.mu.Unlock()
}

// heapCycleShard pops due entries off one shard's deadline-ordered
// min-heap. Heap entries may be stale (the key was deleted or its TTL
// changed); they are validated against the expires dict before deletion.
func (db *DB) heapCycleShard(sh *shard, st *CycleStats) {
	sh.mu.Lock()
	now := db.clk.Now()
	for len(sh.heap) > 0 {
		top := sh.heap[0]
		if top.deadline.After(now) {
			break
		}
		sh.heap.pop()
		st.Sampled++
		cur, ok := sh.expires[top.key]
		if !ok || !cur.Equal(top.deadline) {
			continue // stale entry
		}
		sh.deleteLocked(top.key)
		sh.expired++
		db.jq.enqueue("DEL", []byte(top.key))
		st.Expired++
	}
	sh.mu.Unlock()
}

// ExpiredUnreclaimed returns how many keys are past their deadline but
// still physically present — the quantity whose decay Figure 2 plots.
func (db *DB) ExpiredUnreclaimed() int {
	now := db.clk.Now()
	n := 0
	for _, sh := range db.shards {
		sh.mu.Lock()
		for _, t := range sh.expires {
			if !t.After(now) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// RetentionLag walks every shard's expires dict and returns how many
// keys are past their deadline but still physically present, plus the
// age of the oldest overdue deadline — the retention analogue of
// replication lag: how far reclamation trails the storage-limitation
// deadlines the controller promised.
func (db *DB) RetentionLag() (overdue int, oldest time.Duration) {
	now := db.clk.Now()
	for _, sh := range db.shards {
		sh.mu.Lock()
		for _, t := range sh.expires {
			if !t.After(now) {
				overdue++
				if age := now.Sub(t); age > oldest {
					oldest = age
				}
			}
		}
		sh.mu.Unlock()
	}
	return overdue, oldest
}

// heapEntry is one (deadline, key) pair in the expiry min-heap.
type heapEntry struct {
	deadline time.Time
	key      string
}

// expiryHeap is a binary min-heap ordered by deadline. It is maintained
// inline (container/heap would force interface boxing on the hot path).
type expiryHeap []heapEntry

func (h *expiryHeap) push(e heapEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].deadline.Before((*h)[parent].deadline) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *expiryHeap) pop() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].deadline.Before((*h)[smallest].deadline) {
			smallest = l
		}
		if r < n && (*h)[r].deadline.Before((*h)[smallest].deadline) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
