package store

import "time"

// TTLStatus classifies a TTL query result, mirroring Redis's -2/-1/≥0
// convention.
type TTLStatus int

// TTL query results.
const (
	// TTLMissing means the key does not exist (Redis returns -2).
	TTLMissing TTLStatus = iota
	// TTLNone means the key exists without an expiry (Redis returns -1).
	TTLNone
	// TTLSet means the key has the returned time-to-live remaining.
	TTLSet
)

// Expire sets a relative TTL on an existing key. It reports whether the key
// existed.
func (db *DB) Expire(key string, ttl time.Duration) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.expireAtLocked(key, db.clk.Now().Add(ttl))
}

// ExpireAt sets an absolute deadline on an existing key. It reports whether
// the key existed. A deadline in the past deletes the key immediately, as
// Redis does.
func (db *DB) ExpireAt(key string, deadline time.Time) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.expireAtLocked(key, deadline)
}

func (db *DB) expireAtLocked(key string, deadline time.Time) bool {
	if db.expireIfNeededLocked(key) {
		return false
	}
	if _, ok := db.dict[key]; !ok {
		return false
	}
	if !deadline.After(db.clk.Now()) {
		db.deleteLocked(key)
		db.expiredCount++
		db.logOp("DEL", []byte(key))
		return true
	}
	db.setExpireLocked(key, deadline)
	db.logOp("EXPIREAT", []byte(key), encodeDeadline(deadline))
	return true
}

// Persist removes the TTL from key, reporting whether a TTL was removed.
func (db *DB) Persist(key string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.expireIfNeededLocked(key) {
		return false
	}
	if _, ok := db.expires[key]; !ok {
		return false
	}
	db.removeExpireLocked(key)
	db.logOp("PERSIST", []byte(key))
	return true
}

// TTL returns the remaining time-to-live of key.
func (db *DB) TTL(key string) (time.Duration, TTLStatus) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.expireIfNeededLocked(key) {
		return 0, TTLMissing
	}
	if _, ok := db.dict[key]; !ok {
		return 0, TTLMissing
	}
	t, ok := db.expires[key]
	if !ok {
		return 0, TTLNone
	}
	return t.Sub(db.clk.Now()), TTLSet
}

// Deadline returns the absolute expiry deadline for key, if one is set.
func (db *DB) Deadline(key string) (time.Time, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.expires[key]
	return t, ok
}

func (db *DB) setExpireLocked(key string, deadline time.Time) {
	if _, exists := db.expires[key]; !exists {
		db.expireIdx[key] = len(db.expireKeys)
		db.expireKeys = append(db.expireKeys, key)
	}
	db.expires[key] = deadline
	if db.strategy == ExpiryHeap {
		// Stale heap entries for the same key are tolerated: pop validates
		// against the expires dict before deleting.
		db.heap.push(heapEntry{deadline: deadline, key: key})
	}
}

func (db *DB) removeExpireLocked(key string) {
	if _, ok := db.expires[key]; !ok {
		return
	}
	delete(db.expires, key)
	// swap-remove from the sampling slice
	i := db.expireIdx[key]
	last := len(db.expireKeys) - 1
	if i != last {
		moved := db.expireKeys[last]
		db.expireKeys[i] = moved
		db.expireIdx[moved] = i
	}
	db.expireKeys = db.expireKeys[:last]
	delete(db.expireIdx, key)
	// heap entries are invalidated lazily
}

// CycleStats reports what one active-expire cycle did.
type CycleStats struct {
	// Sampled is the number of keys examined.
	Sampled int
	// Expired is the number of keys deleted.
	Expired int
	// Loops is the number of sampling iterations performed (the
	// probabilistic cycle repeats while ≥25% of a sample was expired).
	Loops int
}

// ActiveExpireCycle runs one invocation of the configured expiry strategy.
// Callers are expected to invoke it once per ActiveExpireCyclePeriod, which
// is what Expirer does.
func (db *DB) ActiveExpireCycle() CycleStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch db.strategy {
	case ExpiryFastScan:
		return db.fastScanCycleLocked()
	case ExpiryHeap:
		return db.heapCycleLocked()
	default:
		return db.probabilisticCycleLocked()
	}
}

// probabilisticCycleLocked is Redis 4.0's activeExpireCycle as described in
// the paper: sample 20 random keys from the expires dict, delete the
// expired ones, and repeat immediately while at least 5 of the 20 sampled
// keys were expired.
func (db *DB) probabilisticCycleLocked() CycleStats {
	var st CycleStats
	for {
		st.Loops++
		n := len(db.expireKeys)
		if n == 0 {
			return st
		}
		lookups := ActiveExpireLookupsPerLoop
		if n < lookups {
			lookups = n
		}
		expiredThisLoop := 0
		now := db.clk.Now()
		for i := 0; i < lookups; i++ {
			if len(db.expireKeys) == 0 {
				break
			}
			k := db.expireKeys[db.rnd.Intn(len(db.expireKeys))]
			st.Sampled++
			if !db.expires[k].After(now) {
				db.deleteLocked(k)
				db.expiredCount++
				db.logOp("DEL", []byte(k))
				expiredThisLoop++
				st.Expired++
			}
		}
		if expiredThisLoop < ActiveExpireRepeatThreshold {
			return st
		}
	}
}

// fastScanCycleLocked is the paper's modification (§4.3): iterate the whole
// expires dict and erase every key that is due. One pass guarantees that no
// expired key survives the cycle.
func (db *DB) fastScanCycleLocked() CycleStats {
	var st CycleStats
	st.Loops = 1
	now := db.clk.Now()
	var due []string
	for k, t := range db.expires {
		st.Sampled++
		if !t.After(now) {
			due = append(due, k)
		}
	}
	for _, k := range due {
		db.deleteLocked(k)
		db.expiredCount++
		db.logOp("DEL", []byte(k))
		st.Expired++
	}
	return st
}

// heapCycleLocked pops due entries off the deadline-ordered min-heap. Heap
// entries may be stale (the key was deleted or its TTL changed); they are
// validated against the expires dict before deletion.
func (db *DB) heapCycleLocked() CycleStats {
	var st CycleStats
	st.Loops = 1
	now := db.clk.Now()
	for len(db.heap) > 0 {
		top := db.heap[0]
		if top.deadline.After(now) {
			break
		}
		db.heap.pop()
		st.Sampled++
		cur, ok := db.expires[top.key]
		if !ok || !cur.Equal(top.deadline) {
			continue // stale entry
		}
		db.deleteLocked(top.key)
		db.expiredCount++
		db.logOp("DEL", []byte(top.key))
		st.Expired++
	}
	return st
}

// ExpiredUnreclaimed returns how many keys are past their deadline but
// still physically present — the quantity whose decay Figure 2 plots.
func (db *DB) ExpiredUnreclaimed() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clk.Now()
	n := 0
	for _, t := range db.expires {
		if !t.After(now) {
			n++
		}
	}
	return n
}

// heapEntry is one (deadline, key) pair in the expiry min-heap.
type heapEntry struct {
	deadline time.Time
	key      string
}

// expiryHeap is a binary min-heap ordered by deadline. It is maintained
// inline (container/heap would force interface boxing on the hot path).
type expiryHeap []heapEntry

func (h *expiryHeap) push(e heapEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].deadline.Before((*h)[parent].deadline) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *expiryHeap) pop() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].deadline.Before((*h)[smallest].deadline) {
			smallest = l
		}
		if r < n && (*h)[r].deadline.Before((*h)[smallest].deadline) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
