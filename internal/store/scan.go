package store

import "sort"

// Keys returns all live keys matching the Redis-style glob pattern, in
// unspecified order. Pattern "*" matches everything. Shards are visited one
// at a time, so the result is per-shard consistent rather than a global
// atomic snapshot — the same guarantee Redis KEYS gives under concurrent
// writers.
func (db *DB) Keys(pattern string) []string {
	now := db.clk.Now()
	var out []string
	for _, sh := range db.shards {
		sh.mu.Lock()
		for k := range sh.dict {
			if t, ok := sh.expires[k]; ok && !t.After(now) {
				continue // expired but unreclaimed: invisible, as in Redis
			}
			if MatchGlob(pattern, k) {
				out = append(out, k)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Scan returns up to count live keys matching pattern, starting from the
// opaque cursor. It returns the next cursor, or 0 when iteration is
// complete. Unlike Redis's reverse-binary cursor this implementation
// iterates a sorted snapshot of the keyspace, which gives the same
// guarantee the engine needs (every key present for the whole scan is
// returned at least once) with simpler semantics. The snapshot is collected
// shard by shard and then sorted, so keys moving between cursor positions
// under concurrent writers are possible — the usual SCAN caveat.
func (db *DB) Scan(cursor uint64, pattern string, count int) (keys []string, next uint64) {
	if count <= 0 {
		count = 10
	}
	now := db.clk.Now()
	var all []string
	for _, sh := range db.shards {
		sh.mu.Lock()
		// Grow once per shard (the dict size is known under the lock)
		// instead of paying append's doubling reallocations per key.
		if need := len(all) + len(sh.dict); need > cap(all) {
			grown := make([]string, len(all), need)
			copy(grown, all)
			all = grown
		}
		for k := range sh.dict {
			if t, ok := sh.expires[k]; ok && !t.After(now) {
				continue
			}
			all = append(all, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(all)
	// cursor is the index of the first key not yet returned on the sorted
	// snapshot; since the snapshot is rebuilt per call, the cursor is an
	// ordinal position which remains correct under insertions before it
	// only approximately — acceptable for the workloads here, and
	// documented as snapshot-ordinal semantics.
	start := int(cursor)
	if start >= len(all) {
		return nil, 0
	}
	end := start + count
	if end > len(all) {
		end = len(all)
	}
	for _, k := range all[start:end] {
		if MatchGlob(pattern, k) {
			keys = append(keys, k)
		}
	}
	if end == len(all) {
		return keys, 0
	}
	return keys, uint64(end)
}

// RangeKeys calls fn for every live key until fn returns false. Each
// shard's lock is held while its keys are visited; fn must not call back
// into the DB.
func (db *DB) RangeKeys(fn func(key string, value []byte) bool) {
	now := db.clk.Now()
	for _, sh := range db.shards {
		sh.mu.Lock()
		for k, v := range sh.dict {
			if t, ok := sh.expires[k]; ok && !t.After(now) {
				continue
			}
			if !fn(k, v) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// MatchGlob implements Redis's stringmatchlen glob: '*' matches any
// sequence, '?' any single byte, '[a-c]' character classes with optional
// leading '^' negation, and '\' escapes the next byte.
func MatchGlob(pattern, s string) bool {
	return matchGlob(pattern, s)
}

func matchGlob(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '*':
			// collapse consecutive stars
			for len(p) > 1 && p[1] == '*' {
				p = p[1:]
			}
			if len(p) == 1 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if matchGlob(p[1:], s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		case '[':
			if len(s) == 0 {
				return false
			}
			end := 1
			neg := false
			if end < len(p) && p[end] == '^' {
				neg = true
				end++
			}
			matched := false
			first := true
			for end < len(p) && (p[end] != ']' || first) {
				first = false
				if p[end] == '\\' && end+1 < len(p) {
					end++
					if p[end] == s[0] {
						matched = true
					}
					end++
					continue
				}
				if end+2 < len(p) && p[end+1] == '-' && p[end+2] != ']' {
					lo, hi := p[end], p[end+2]
					if lo > hi {
						lo, hi = hi, lo
					}
					if s[0] >= lo && s[0] <= hi {
						matched = true
					}
					end += 3
					continue
				}
				if p[end] == s[0] {
					matched = true
				}
				end++
			}
			if end >= len(p) {
				return false // unterminated class
			}
			if matched == neg {
				return false
			}
			p, s = p[end+1:], s[1:]
		case '\\':
			if len(p) >= 2 {
				p = p[1:]
			}
			fallthrough
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}
