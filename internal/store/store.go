// Package store implements the key-value storage engine that stands in for
// Redis v4.0.11 in this reproduction. It models the pieces of Redis that the
// paper's experiments depend on:
//
//   - a hash-table keyspace (dict) plus a separate expires dict, exactly
//     Redis's two-table layout;
//   - lazy expiration on access, plus Redis's probabilistic active-expire
//     cycle (every 100 ms sample 20 keys with TTLs, delete the expired ones,
//     and repeat immediately while ≥5 of the 20 were expired) — the
//     algorithm whose erasure lag Figure 2 measures;
//   - the paper's modification: a full-scan "fast active expiry" that erases
//     every expired key in one pass, giving sub-second erasure up to 1M keys;
//   - an expiry-heap strategy (our ablation) that achieves timely deletion
//     without full scans;
//   - deletion primitives DEL/UNLINK/FLUSHALL and TTL primitives
//     EXPIRE/EXPIREAT/PERSIST/TTL.
//
// The engine takes a clock.Clock so expiry behaviour can be driven by
// virtual time in tests and experiments.
package store

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"gdprstore/internal/clock"
)

// Journal receives every mutating operation the engine performs, including
// deletions generated internally by expiry. The AOF and audit subsystems
// attach here. Implementations must tolerate being called with the DB lock
// held and must not call back into the DB.
type Journal interface {
	AppendOp(name string, args ...[]byte) error
}

// JournalFunc adapts a function to the Journal interface.
type JournalFunc func(name string, args ...[]byte) error

// AppendOp implements Journal.
func (f JournalFunc) AppendOp(name string, args ...[]byte) error { return f(name, args...) }

// ExpiryStrategy selects how the active-expire cycle finds expired keys.
type ExpiryStrategy int

// Available expiry strategies.
const (
	// ExpiryLazyProbabilistic is Redis's algorithm: periodic random
	// sampling; expired keys may linger for hours (Figure 2).
	ExpiryLazyProbabilistic ExpiryStrategy = iota
	// ExpiryFastScan is the paper's modification: scan the entire expires
	// dict each cycle and erase everything due.
	ExpiryFastScan
	// ExpiryHeap is this repository's extension: a min-heap ordered by
	// deadline pops exactly the due keys in O(k log n).
	ExpiryHeap
)

// String returns the strategy name.
func (s ExpiryStrategy) String() string {
	switch s {
	case ExpiryLazyProbabilistic:
		return "lazy-probabilistic"
	case ExpiryFastScan:
		return "fast-scan"
	case ExpiryHeap:
		return "expiry-heap"
	default:
		return "unknown"
	}
}

// Constants of the Redis 4.0 active expire cycle, as described in §4.3 of
// the paper: once every 100 ms sample 20 random keys from the expires set;
// delete the expired ones; if ≥5 were deleted, repeat immediately.
const (
	// ActiveExpireCyclePeriod is the interval between cycle invocations.
	ActiveExpireCyclePeriod = 100 * time.Millisecond
	// ActiveExpireLookupsPerLoop is the sample size per loop iteration.
	ActiveExpireLookupsPerLoop = 20
	// ActiveExpireRepeatThreshold is the number of expired keys per sample
	// at which the loop repeats without waiting for the next period.
	ActiveExpireRepeatThreshold = ActiveExpireLookupsPerLoop / 4
)

// ErrNoKey is returned by operations that require an existing key.
var ErrNoKey = errors.New("store: no such key")

// DB is a single keyspace. All methods are safe for concurrent use; the
// engine serialises access with one lock, mirroring Redis's single-threaded
// command execution.
type DB struct {
	mu      sync.Mutex
	dict    map[string][]byte
	expires map[string]time.Time

	// expireKeys/expireIdx mirror the expires dict as a slice so the
	// probabilistic cycle can sample uniformly at random in O(1), the way
	// dictGetRandomKey does in Redis.
	expireKeys []string
	expireIdx  map[string]int

	heap expiryHeap // used only by ExpiryHeap strategy

	clk          clock.Clock
	rnd          *rand.Rand
	strategy     ExpiryStrategy
	journal      Journal
	journalReads bool

	// stats
	expiredCount uint64 // keys removed by expiry (lazy or active)
}

// Options configures a DB.
type Options struct {
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
	// Seed seeds the sampling RNG for deterministic experiments; 0 means a
	// fixed default seed (the engine is deterministic by default so that
	// Figure 2 runs are repeatable).
	Seed int64
	// Strategy selects the active-expiry algorithm.
	Strategy ExpiryStrategy
	// JournalReads reproduces the paper's §4.1 modification: the AOF
	// normally records only mutations, so the retrofit extends it to log
	// every interaction — each Get/Exists emits a READ record to the
	// journal, turning every read into a read followed by a logging write.
	JournalReads bool
}

// New creates an empty DB.
func New(opts Options) *DB {
	if opts.Clock == nil {
		opts.Clock = clock.NewWall()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &DB{
		dict:         make(map[string][]byte),
		expires:      make(map[string]time.Time),
		expireIdx:    make(map[string]int),
		clk:          opts.Clock,
		rnd:          rand.New(rand.NewSource(seed)),
		strategy:     opts.Strategy,
		journalReads: opts.JournalReads,
	}
}

// SetJournal attaches a journal that observes every mutation. Pass nil to
// detach.
func (db *DB) SetJournal(j Journal) {
	db.mu.Lock()
	db.journal = j
	db.mu.Unlock()
}

// Strategy returns the configured expiry strategy.
func (db *DB) Strategy() ExpiryStrategy {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.strategy
}

// SetStrategy switches the expiry strategy. Switching to ExpiryHeap
// rebuilds the heap from the expires dict.
func (db *DB) SetStrategy(s ExpiryStrategy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.strategy = s
	if s == ExpiryHeap {
		db.heap = db.heap[:0]
		for k, t := range db.expires {
			db.heap.push(heapEntry{deadline: t, key: k})
		}
	}
}

func (db *DB) logOp(name string, args ...[]byte) {
	if db.journal != nil {
		// Journal errors are surfaced by the journal's own health API (the
		// AOF keeps its last error); the engine keeps serving, as Redis does
		// with appendfsync errors.
		_ = db.journal.AppendOp(name, args...)
	}
}

// Set stores value under key, clearing any TTL (Redis SET semantics).
func (db *DB) Set(key string, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dict[key] = cloneBytes(value)
	db.removeExpireLocked(key)
	db.logOp("SET", []byte(key), value)
}

// SetEX stores value under key with a relative TTL.
func (db *DB) SetEX(key string, value []byte, ttl time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dict[key] = cloneBytes(value)
	db.setExpireLocked(key, db.clk.Now().Add(ttl))
	db.logOp("SETEX", []byte(key), encodeDeadline(db.expires[key]), value)
}

// SetBatch stores every key/value pair under a single lock acquisition and
// journals one MSET record for the whole batch — the amortisation the batch
// command family (MSET, GMPUT) is built on. Any TTLs on the keys are
// cleared, matching Set. keys and values must have equal length.
func (db *DB) SetBatch(keys []string, values [][]byte) {
	if len(keys) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	args := make([][]byte, 0, 2*len(keys))
	for i, k := range keys {
		db.dict[k] = cloneBytes(values[i])
		db.removeExpireLocked(k)
		args = append(args, []byte(k), values[i])
	}
	db.logOp("MSET", args...)
}

// SetBatchEX is SetBatch with one shared absolute retention deadline. It
// journals a single MSETEX record carrying the deadline once.
func (db *DB) SetBatchEX(keys []string, values [][]byte, deadline time.Time) {
	if len(keys) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	args := make([][]byte, 0, 2*len(keys)+1)
	args = append(args, encodeDeadline(deadline))
	for i, k := range keys {
		db.dict[k] = cloneBytes(values[i])
		db.setExpireLocked(k, deadline)
		args = append(args, []byte(k), values[i])
	}
	db.logOp("MSETEX", args...)
}

// GetBatch reads every key under a single lock acquisition. The returned
// slices are positional: present[i] reports whether keys[i] existed (lazy
// expiry applies per key, as in Get).
func (db *DB) GetBatch(keys []string) (values [][]byte, present []bool) {
	values = make([][]byte, len(keys))
	present = make([]bool, len(keys))
	db.mu.Lock()
	defer db.mu.Unlock()
	for i, k := range keys {
		if db.expireIfNeededLocked(k) {
			db.logReadLocked(k)
			continue
		}
		v, ok := db.dict[k]
		db.logReadLocked(k)
		if ok {
			values[i] = cloneBytes(v)
			present[i] = true
		}
	}
	return values, present
}

// SetKeepTTL stores value under key preserving an existing TTL (Redis SET
// ... KEEPTTL).
func (db *DB) SetKeepTTL(key string, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dict[key] = cloneBytes(value)
	db.logOp("SET", []byte(key), value, []byte("KEEPTTL"))
}

// Get returns the value stored at key. Expired keys are lazily deleted on
// access and reported as missing, exactly as Redis does.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.expireIfNeededLocked(key) {
		db.logReadLocked(key)
		return nil, false
	}
	v, ok := db.dict[key]
	db.logReadLocked(key)
	if !ok {
		return nil, false
	}
	return cloneBytes(v), true
}

// GetNoCopy is Get without the defensive copy; callers must not retain or
// mutate the returned slice. It exists for the benchmark hot path.
func (db *DB) GetNoCopy(key string) ([]byte, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.expireIfNeededLocked(key) {
		db.logReadLocked(key)
		return nil, false
	}
	v, ok := db.dict[key]
	db.logReadLocked(key)
	return v, ok
}

// logReadLocked emits a READ record when read-journaling is on (§4.1's
// "every read operation now has to be followed by a logging-write").
func (db *DB) logReadLocked(key string) {
	if db.journalReads {
		db.logOp("READ", []byte(key))
	}
}

// Exists reports whether key exists (and is not expired).
func (db *DB) Exists(key string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.expireIfNeededLocked(key) {
		return false
	}
	_, ok := db.dict[key]
	return ok
}

// Del removes the given keys and returns how many existed. It matches both
// DEL and UNLINK (the engine frees memory synchronously either way; the
// distinction matters only for real Redis's background reclamation).
func (db *DB) Del(keys ...string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, k := range keys {
		if db.expireIfNeededLocked(k) {
			continue
		}
		if _, ok := db.dict[k]; ok {
			db.deleteLocked(k)
			db.logOp("DEL", []byte(k))
			n++
		}
	}
	return n
}

// FlushAll removes every key.
func (db *DB) FlushAll() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dict = make(map[string][]byte)
	db.expires = make(map[string]time.Time)
	db.expireKeys = db.expireKeys[:0]
	db.expireIdx = make(map[string]int)
	db.heap = db.heap[:0]
	db.logOp("FLUSHALL")
}

// Len returns the number of live keys, not counting keys that have expired
// but not yet been reclaimed (to observe the reclamation lag itself, use
// RawLen).
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clk.Now()
	n := len(db.dict)
	for _, t := range db.expires {
		if !t.After(now) {
			n--
		}
	}
	return n
}

// RawLen returns the number of keys physically present in the dict,
// including expired-but-unreclaimed keys. Figure 2 measures how long
// RawLen stays above Len.
func (db *DB) RawLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.dict)
}

// ExpireLen returns the number of keys carrying a TTL (expired or not).
func (db *DB) ExpireLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.expires)
}

// ExpiredCount returns the cumulative number of keys reclaimed by expiry.
func (db *DB) ExpiredCount() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.expiredCount
}

// RandomKey returns a uniformly random live key, or false if the DB is
// empty. Used by workloads and by tests.
func (db *DB) RandomKey() (string, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for k := range db.dict {
		if db.expireIfNeededLocked(k) {
			continue
		}
		return k, true
	}
	return "", false
}

// deleteLocked removes key from every internal structure.
func (db *DB) deleteLocked(key string) {
	delete(db.dict, key)
	db.removeExpireLocked(key)
}

// expireIfNeededLocked lazily deletes key if its TTL has passed. It returns
// true if the key was expired (and is now gone).
func (db *DB) expireIfNeededLocked(key string) bool {
	t, ok := db.expires[key]
	if !ok {
		return false
	}
	if t.After(db.clk.Now()) {
		return false
	}
	db.deleteLocked(key)
	db.expiredCount++
	db.logOp("DEL", []byte(key))
	return true
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func encodeDeadline(t time.Time) []byte {
	return []byte(t.UTC().Format(time.RFC3339Nano))
}

// DecodeDeadline parses a deadline encoded by the journal (SETEX/EXPIREAT
// records). It is exported for the AOF loader.
func DecodeDeadline(b []byte) (time.Time, error) {
	return time.Parse(time.RFC3339Nano, string(b))
}
