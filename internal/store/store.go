// Package store implements the key-value storage engine that stands in for
// Redis v4.0.11 in this reproduction. It models the pieces of Redis that the
// paper's experiments depend on:
//
//   - a hash-table keyspace (dict) plus a separate expires dict, exactly
//     Redis's two-table layout — here split across N lock-striped shards so
//     operations on independent keys proceed in parallel;
//   - lazy expiration on access, plus Redis's probabilistic active-expire
//     cycle (every 100 ms sample 20 keys with TTLs, delete the expired ones,
//     and repeat immediately while ≥5 of the 20 were expired) — the
//     algorithm whose erasure lag Figure 2 measures;
//   - the paper's modification: a full-scan "fast active expiry" that erases
//     every expired key in one pass, giving sub-second erasure up to 1M keys;
//   - an expiry-heap strategy (our ablation) that achieves timely deletion
//     without full scans;
//   - deletion primitives DEL/UNLINK/FLUSHALL and TTL primitives
//     EXPIRE/EXPIREAT/PERSIST/TTL.
//
// Concurrency model: keys are routed to shards by FNV-1a hash; each shard
// owns its own dict, expires dict, sampling slice, and expiry heap, guarded
// by one mutex. Journal records are enqueued under the owning shard's lock
// (fixing per-key order) but written to the Journal outside any shard lock
// via a group-commit queue (see journalQueue). Cross-shard operations
// (FLUSHALL, Snapshot) lock every shard in index order — the one
// deterministic multi-shard protocol — and Scan/Keys/Len lock one shard at
// a time, giving per-shard-consistent (not globally atomic) views, as
// Redis's SCAN guarantees do.
//
// The engine takes a clock.Clock so expiry behaviour can be driven by
// virtual time in tests and experiments.
package store

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/clock"
)

// Journal receives every mutating operation the engine performs, including
// deletions generated internally by expiry. The AOF and audit subsystems
// attach here. Records are appended outside the shard locks, but
// implementations must still not call back into the DB.
type Journal interface {
	AppendOp(name string, args ...[]byte) error
}

// JournalFunc adapts a function to the Journal interface.
type JournalFunc func(name string, args ...[]byte) error

// AppendOp implements Journal.
func (f JournalFunc) AppendOp(name string, args ...[]byte) error { return f(name, args...) }

// ExpiryStrategy selects how the active-expire cycle finds expired keys.
type ExpiryStrategy int

// Available expiry strategies.
const (
	// ExpiryLazyProbabilistic is Redis's algorithm: periodic random
	// sampling; expired keys may linger for hours (Figure 2).
	ExpiryLazyProbabilistic ExpiryStrategy = iota
	// ExpiryFastScan is the paper's modification: scan the entire expires
	// dict each cycle and erase everything due.
	ExpiryFastScan
	// ExpiryHeap is this repository's extension: a min-heap ordered by
	// deadline pops exactly the due keys in O(k log n).
	ExpiryHeap
)

// String returns the strategy name.
func (s ExpiryStrategy) String() string {
	switch s {
	case ExpiryLazyProbabilistic:
		return "lazy-probabilistic"
	case ExpiryFastScan:
		return "fast-scan"
	case ExpiryHeap:
		return "expiry-heap"
	default:
		return "unknown"
	}
}

// Constants of the Redis 4.0 active expire cycle, as described in §4.3 of
// the paper: once every 100 ms sample 20 random keys from the expires set;
// delete the expired ones; if ≥5 were deleted, repeat immediately. The
// budget is global, not per shard: the sharded engine samples 20 keys per
// loop across all shards combined, so the reclamation rate (and the
// Figure 2 erasure lag it produces) matches unsharded Redis.
const (
	// ActiveExpireCyclePeriod is the interval between cycle invocations.
	ActiveExpireCyclePeriod = 100 * time.Millisecond
	// ActiveExpireLookupsPerLoop is the sample size per loop iteration.
	ActiveExpireLookupsPerLoop = 20
	// ActiveExpireRepeatThreshold is the number of expired keys per sample
	// at which the loop repeats without waiting for the next period.
	ActiveExpireRepeatThreshold = ActiveExpireLookupsPerLoop / 4
)

// DefaultShards is the shard count used when Options.Shards is zero.
const DefaultShards = 16

// ErrNoKey is returned by operations that require an existing key.
var ErrNoKey = errors.New("store: no such key")

// shard is one lock stripe of the keyspace: a dict plus expires pair with
// the sampling slice and expiry heap that serve it. Every field is guarded
// by mu.
type shard struct {
	mu      sync.Mutex
	dict    map[string][]byte
	expires map[string]time.Time

	// expireKeys/expireIdx mirror the expires dict as a slice so the
	// probabilistic cycle can sample uniformly at random in O(1), the way
	// dictGetRandomKey does in Redis.
	expireKeys []string
	expireIdx  map[string]int

	heap expiryHeap // used only by ExpiryHeap strategy

	expired uint64 // keys removed by expiry (lazy or active)
}

// DB is a single keyspace, lock-striped across shards. All methods are safe
// for concurrent use; operations on keys in different shards proceed in
// parallel.
type DB struct {
	shards []*shard
	mask   uint32

	clk          clock.Clock
	jq           journalQueue
	journalReads bool

	// strategy is DB-wide; it is atomic so shard-locked paths
	// (setExpireLocked) and the cycle dispatcher read it without a
	// DB-level lock.
	strategy atomic.Int32

	// rnd drives the probabilistic cycle's shard-weighted sampling; it has
	// its own lock because cycles may run concurrently with everything.
	rndMu sync.Mutex
	rnd   *rand.Rand
}

// Options configures a DB.
type Options struct {
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
	// Seed seeds the sampling RNG for deterministic experiments; 0 means a
	// fixed default seed (the engine is deterministic by default so that
	// Figure 2 runs are repeatable).
	Seed int64
	// Strategy selects the active-expiry algorithm.
	Strategy ExpiryStrategy
	// JournalReads reproduces the paper's §4.1 modification: the AOF
	// normally records only mutations, so the retrofit extends it to log
	// every interaction — each Get/Exists emits a READ record to the
	// journal, turning every read into a read followed by a logging write.
	JournalReads bool
	// Shards is the lock-stripe count, rounded up to a power of two;
	// 0 means DefaultShards. 1 reproduces the old single-mutex engine.
	Shards int
}

// New creates an empty DB.
func New(opts Options) *DB {
	if opts.Clock == nil {
		opts.Clock = clock.NewWall()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	n := nextPow2(opts.Shards)
	if opts.Shards <= 0 {
		n = DefaultShards
	}
	db := &DB{
		shards:       make([]*shard, n),
		mask:         uint32(n - 1),
		clk:          opts.Clock,
		journalReads: opts.JournalReads,
		rnd:          rand.New(rand.NewSource(seed)),
	}
	db.strategy.Store(int32(opts.Strategy))
	for i := range db.shards {
		db.shards[i] = &shard{
			dict:      make(map[string][]byte),
			expires:   make(map[string]time.Time),
			expireIdx: make(map[string]int),
		}
	}
	return db
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fnv32a is FNV-1a over the key bytes — the shard router.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// shardFor routes a key to its owning shard.
func (db *DB) shardFor(key string) *shard {
	return db.shards[fnv32a(key)&db.mask]
}

// ShardCount returns the number of lock stripes.
func (db *DB) ShardCount() int { return len(db.shards) }

// lockAll acquires every shard lock in index order — the deterministic
// ordering every cross-shard operation uses, so two concurrent cross-shard
// operations can never deadlock.
func (db *DB) lockAll() {
	for _, sh := range db.shards {
		sh.mu.Lock()
	}
}

func (db *DB) unlockAll() {
	for i := len(db.shards) - 1; i >= 0; i-- {
		db.shards[i].mu.Unlock()
	}
}

// SetJournal attaches a journal that observes every mutation. Pass nil to
// detach.
func (db *DB) SetJournal(j Journal) { db.jq.set(j) }

// Strategy returns the configured expiry strategy.
func (db *DB) Strategy() ExpiryStrategy {
	return ExpiryStrategy(db.strategy.Load())
}

// SetStrategy switches the expiry strategy. Switching to ExpiryHeap
// rebuilds each shard's heap from its expires dict; the strategy flips
// first so TTL writes concurrent with the rebuild push their heap entries
// (a duplicate entry is harmless — pops validate against the expires
// dict), and a cycle racing the switch may miss not-yet-rebuilt shards
// for that one cycle.
func (db *DB) SetStrategy(s ExpiryStrategy) {
	db.strategy.Store(int32(s))
	if s != ExpiryHeap {
		return
	}
	for _, sh := range db.shards {
		sh.mu.Lock()
		sh.heap = sh.heap[:0]
		for k, t := range sh.expires {
			sh.heap.push(heapEntry{deadline: t, key: k})
		}
		sh.mu.Unlock()
	}
}

// Set stores value under key, clearing any TTL (Redis SET semantics).
func (db *DB) Set(key string, value []byte) {
	sh := db.shardFor(key)
	sh.mu.Lock()
	sh.dict[key] = cloneBytes(value)
	sh.removeExpireLocked(key)
	db.jq.enqueue("SET", []byte(key), value)
	sh.mu.Unlock()
	db.jq.flush()
}

// SetEX stores value under key with a relative TTL.
func (db *DB) SetEX(key string, value []byte, ttl time.Duration) {
	deadline := db.clk.Now().Add(ttl)
	sh := db.shardFor(key)
	sh.mu.Lock()
	sh.dict[key] = cloneBytes(value)
	db.setExpireLocked(sh, key, deadline)
	db.jq.enqueue("SETEX", []byte(key), encodeDeadline(deadline), value)
	sh.mu.Unlock()
	db.jq.flush()
}

// SetKeepTTL stores value under key preserving an existing TTL (Redis SET
// ... KEEPTTL).
func (db *DB) SetKeepTTL(key string, value []byte) {
	sh := db.shardFor(key)
	sh.mu.Lock()
	sh.dict[key] = cloneBytes(value)
	db.jq.enqueue("SET", []byte(key), value, []byte("KEEPTTL"))
	sh.mu.Unlock()
	db.jq.flush()
}

// batchGroup splits batch indices by owning shard, preserving input order
// within each shard.
func (db *DB) batchGroup(keys []string) map[*shard][]int {
	groups := make(map[*shard][]int, len(db.shards))
	for i, k := range keys {
		sh := db.shardFor(k)
		groups[sh] = append(groups[sh], i)
	}
	return groups
}

// SetBatch stores every key/value pair, grouping work by shard: one lock
// acquisition and one MSET journal record per touched shard — the
// amortisation the batch command family (MSET, GMPUT) is built on. Any TTLs
// on the keys are cleared, matching Set. keys and values must have equal
// length. The batch is atomic per shard, not globally: a concurrent reader
// may observe a cross-shard batch partially applied.
func (db *DB) SetBatch(keys []string, values [][]byte) {
	if len(keys) == 0 {
		return
	}
	journal := db.jq.active()
	for sh, idxs := range db.batchGroup(keys) {
		sh.mu.Lock()
		var args [][]byte
		if journal {
			args = make([][]byte, 0, 2*len(idxs))
		}
		for _, i := range idxs {
			sh.dict[keys[i]] = cloneBytes(values[i])
			sh.removeExpireLocked(keys[i])
			if journal {
				args = append(args, []byte(keys[i]), values[i])
			}
		}
		if journal {
			db.jq.enqueue("MSET", args...)
		}
		sh.mu.Unlock()
	}
	db.jq.flush()
}

// SetBatchEX is SetBatch with one shared absolute retention deadline. It
// journals one MSETEX record (carrying the deadline once) per touched
// shard.
func (db *DB) SetBatchEX(keys []string, values [][]byte, deadline time.Time) {
	if len(keys) == 0 {
		return
	}
	journal := db.jq.active()
	encoded := encodeDeadline(deadline)
	for sh, idxs := range db.batchGroup(keys) {
		sh.mu.Lock()
		var args [][]byte
		if journal {
			args = append(make([][]byte, 0, 2*len(idxs)+1), encoded)
		}
		for _, i := range idxs {
			sh.dict[keys[i]] = cloneBytes(values[i])
			db.setExpireLocked(sh, keys[i], deadline)
			if journal {
				args = append(args, []byte(keys[i]), values[i])
			}
		}
		if journal {
			db.jq.enqueue("MSETEX", args...)
		}
		sh.mu.Unlock()
	}
	db.jq.flush()
}

// GetBatch reads every key, grouping work by shard (one lock acquisition
// per touched shard). The returned slices are positional: present[i]
// reports whether keys[i] existed (lazy expiry applies per key, as in Get).
func (db *DB) GetBatch(keys []string) (values [][]byte, present []bool) {
	values = make([][]byte, len(keys))
	present = make([]bool, len(keys))
	for sh, idxs := range db.batchGroup(keys) {
		sh.mu.Lock()
		for _, i := range idxs {
			k := keys[i]
			if db.expireIfNeededLocked(sh, k) {
				db.logReadLocked(k)
				continue
			}
			v, ok := sh.dict[k]
			db.logReadLocked(k)
			if ok {
				values[i] = cloneBytes(v)
				present[i] = true
			}
		}
		sh.mu.Unlock()
	}
	db.jq.flush()
	return values, present
}

// Get returns the value stored at key. Expired keys are lazily deleted on
// access and reported as missing, exactly as Redis does.
func (db *DB) Get(key string) ([]byte, bool) {
	sh := db.shardFor(key)
	sh.mu.Lock()
	if db.expireIfNeededLocked(sh, key) {
		db.logReadLocked(key)
		sh.mu.Unlock()
		db.jq.flush()
		return nil, false
	}
	v, ok := sh.dict[key]
	db.logReadLocked(key)
	if ok {
		v = cloneBytes(v)
	}
	sh.mu.Unlock()
	db.jq.flush()
	return v, ok
}

// GetNoCopy is Get without the defensive copy; callers must not retain or
// mutate the returned slice. It exists for the benchmark hot path.
func (db *DB) GetNoCopy(key string) ([]byte, bool) {
	sh := db.shardFor(key)
	sh.mu.Lock()
	if db.expireIfNeededLocked(sh, key) {
		db.logReadLocked(key)
		sh.mu.Unlock()
		db.jq.flush()
		return nil, false
	}
	v, ok := sh.dict[key]
	db.logReadLocked(key)
	sh.mu.Unlock()
	db.jq.flush()
	return v, ok
}

// logReadLocked emits a READ record when read-journaling is on (§4.1's
// "every read operation now has to be followed by a logging-write").
func (db *DB) logReadLocked(key string) {
	if db.journalReads {
		db.jq.enqueue("READ", []byte(key))
	}
}

// Exists reports whether key exists (and is not expired).
func (db *DB) Exists(key string) bool {
	sh := db.shardFor(key)
	sh.mu.Lock()
	if db.expireIfNeededLocked(sh, key) {
		sh.mu.Unlock()
		db.jq.flush()
		return false
	}
	_, ok := sh.dict[key]
	sh.mu.Unlock()
	db.jq.flush()
	return ok
}

// Del removes the given keys and returns how many existed. It matches both
// DEL and UNLINK (the engine frees memory synchronously either way; the
// distinction matters only for real Redis's background reclamation).
func (db *DB) Del(keys ...string) int {
	n := 0
	for _, k := range keys {
		sh := db.shardFor(k)
		sh.mu.Lock()
		if db.expireIfNeededLocked(sh, k) {
			sh.mu.Unlock()
			continue
		}
		if _, ok := sh.dict[k]; ok {
			sh.deleteLocked(k)
			db.jq.enqueue("DEL", []byte(k))
			n++
		}
		sh.mu.Unlock()
	}
	db.jq.flush()
	return n
}

// FlushAll removes every key. It locks all shards (in index order) so the
// flush is a single atomic point in the journal stream.
func (db *DB) FlushAll() {
	db.lockAll()
	for _, sh := range db.shards {
		sh.dict = make(map[string][]byte)
		sh.expires = make(map[string]time.Time)
		sh.expireKeys = sh.expireKeys[:0]
		sh.expireIdx = make(map[string]int)
		sh.heap = sh.heap[:0]
	}
	db.jq.enqueue("FLUSHALL")
	db.unlockAll()
	db.jq.flush()
}

// Len returns the number of live keys, not counting keys that have expired
// but not yet been reclaimed (to observe the reclamation lag itself, use
// RawLen). Shards are counted one at a time; concurrent writers make the
// total approximate, as in any sharded store.
func (db *DB) Len() int {
	now := db.clk.Now()
	n := 0
	for _, sh := range db.shards {
		sh.mu.Lock()
		n += len(sh.dict)
		for _, t := range sh.expires {
			if !t.After(now) {
				n--
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// RawLen returns the number of keys physically present in the dict,
// including expired-but-unreclaimed keys. Figure 2 measures how long
// RawLen stays above Len.
func (db *DB) RawLen() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.Lock()
		n += len(sh.dict)
		sh.mu.Unlock()
	}
	return n
}

// ExpireLen returns the number of keys carrying a TTL (expired or not).
func (db *DB) ExpireLen() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.Lock()
		n += len(sh.expires)
		sh.mu.Unlock()
	}
	return n
}

// ExpiredCount returns the cumulative number of keys reclaimed by expiry.
func (db *DB) ExpiredCount() uint64 {
	var n uint64
	for _, sh := range db.shards {
		sh.mu.Lock()
		n += sh.expired
		sh.mu.Unlock()
	}
	return n
}

// RandomKey returns a live key, or false if the DB is empty. The shard is
// chosen at random (so all shards are reachable); within the shard, Go's
// map iteration supplies the randomness, as dictGetRandomKey does in
// Redis. Used by workloads and by tests.
func (db *DB) RandomKey() (string, bool) {
	start := db.randIntn(len(db.shards))
	for i := 0; i < len(db.shards); i++ {
		sh := db.shards[(start+i)%len(db.shards)]
		sh.mu.Lock()
		for k := range sh.dict {
			if db.expireIfNeededLocked(sh, k) {
				continue
			}
			sh.mu.Unlock()
			db.jq.flush()
			return k, true
		}
		sh.mu.Unlock()
	}
	db.jq.flush()
	return "", false
}

// randIntn returns a sample from the DB-level RNG, which has its own lock
// so sampling never piggybacks on a shard lock.
func (db *DB) randIntn(n int) int {
	db.rndMu.Lock()
	v := db.rnd.Intn(n)
	db.rndMu.Unlock()
	return v
}

// deleteLocked removes key from every structure of its shard. Callers hold
// sh.mu.
func (sh *shard) deleteLocked(key string) {
	delete(sh.dict, key)
	sh.removeExpireLocked(key)
}

// expireIfNeededLocked lazily deletes key if its TTL has passed. It returns
// true if the key was expired (and is now gone). Callers hold sh.mu and
// must flush the journal queue after releasing it.
func (db *DB) expireIfNeededLocked(sh *shard, key string) bool {
	t, ok := sh.expires[key]
	if !ok {
		return false
	}
	if t.After(db.clk.Now()) {
		return false
	}
	sh.deleteLocked(key)
	sh.expired++
	db.jq.enqueue("DEL", []byte(key))
	return true
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func encodeDeadline(t time.Time) []byte {
	return []byte(t.UTC().Format(time.RFC3339Nano))
}

// DecodeDeadline parses a deadline encoded by the journal (SETEX/EXPIREAT
// records). It is exported for the AOF loader.
func DecodeDeadline(b []byte) (time.Time, error) {
	return time.Parse(time.RFC3339Nano, string(b))
}
