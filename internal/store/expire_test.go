package store

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"gdprstore/internal/clock"
	"gdprstore/internal/testutil"
)

// populate loads n keys; fraction shortFrac get shortTTL, the rest longTTL.
// This is the Figure 2 population: 20% short-term (5 min), 80% long-term
// (5 days).
func populate(db *DB, n int, shortFrac float64, shortTTL, longTTL time.Duration) (short int) {
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%08d", i)
		if float64(i%100)/100 < shortFrac {
			db.SetEX(k, []byte("payload"), shortTTL)
			short++
		} else {
			db.SetEX(k, []byte("payload"), longTTL)
		}
	}
	return short
}

func TestProbabilisticCycleReclaimsSome(t *testing.T) {
	db, vc := newTestDB()
	populate(db, 1000, 0.2, 5*time.Minute, 5*24*time.Hour)
	vc.Advance(5*time.Minute + time.Second)
	st := db.ActiveExpireCycle()
	if st.Expired == 0 {
		t.Fatal("cycle reclaimed nothing despite 200 expired keys")
	}
	if st.Expired >= 200 {
		t.Fatalf("one probabilistic cycle reclaimed all %d — too aggressive", st.Expired)
	}
}

func TestProbabilisticCycleRepeatsWhenDense(t *testing.T) {
	db, vc := newTestDB()
	// 100% expired: the loop should repeat (≥5 of 20 expired per sample).
	populate(db, 500, 1.0, time.Minute, time.Minute)
	vc.Advance(2 * time.Minute)
	st := db.ActiveExpireCycle()
	if st.Loops < 2 {
		t.Fatalf("loops = %d, want repeats under dense expiry", st.Loops)
	}
	// With everything expired the loop only exits once the sample finds
	// <5 expired, i.e. when nearly everything is gone.
	if db.ExpiredUnreclaimed() > 20 {
		t.Fatalf("dense cycle left %d expired keys", db.ExpiredUnreclaimed())
	}
}

func TestProbabilisticLagGrowsWithDBSize(t *testing.T) {
	// The core claim of Figure 2: with a fixed 20% expired fraction, the
	// number of 100 ms cycles needed to clear the expired keys grows with
	// total DB size.
	cyclesFor := func(n int) int {
		vc := clock.NewVirtual(time.Unix(0, 0))
		db := New(Options{Clock: vc, Seed: 7, Strategy: ExpiryLazyProbabilistic})
		populate(db, n, 0.2, 5*time.Minute, 5*24*time.Hour)
		vc.Advance(5*time.Minute + time.Second)
		e := NewExpirer(db)
		cycles := 0
		for db.ExpiredUnreclaimed() > 0 {
			e.Step()
			cycles++
			if cycles > 2_000_000 {
				t.Fatal("expiry never completed")
			}
		}
		return cycles
	}
	small := cyclesFor(1000)
	large := cyclesFor(8000)
	if large <= small {
		t.Fatalf("erasure lag did not grow with DB size: 1k→%d cycles, 8k→%d cycles", small, large)
	}
}

func TestFastScanReclaimsAllInOneCycle(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	db := New(Options{Clock: vc, Seed: 7, Strategy: ExpiryFastScan})
	short := populate(db, 5000, 0.2, 5*time.Minute, 5*24*time.Hour)
	vc.Advance(5*time.Minute + time.Second)
	st := db.ActiveExpireCycle()
	if st.Expired != short {
		t.Fatalf("fast scan reclaimed %d, want %d", st.Expired, short)
	}
	if db.ExpiredUnreclaimed() != 0 {
		t.Fatal("fast scan left expired keys")
	}
	if st.Loops != 1 {
		t.Fatalf("fast scan loops = %d", st.Loops)
	}
}

func TestHeapStrategyReclaimsAllInOneCycle(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	db := New(Options{Clock: vc, Seed: 7, Strategy: ExpiryHeap})
	short := populate(db, 5000, 0.2, 5*time.Minute, 5*24*time.Hour)
	vc.Advance(5*time.Minute + time.Second)
	st := db.ActiveExpireCycle()
	if st.Expired != short {
		t.Fatalf("heap reclaimed %d, want %d", st.Expired, short)
	}
	// The heap must not have touched the long-term keys.
	if db.RawLen() != 5000-short {
		t.Fatalf("raw len = %d", db.RawLen())
	}
}

func TestHeapStaleEntriesSkipped(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	db := New(Options{Clock: vc, Seed: 7, Strategy: ExpiryHeap})
	db.SetEX("k", []byte("v"), time.Minute)
	db.Expire("k", time.Hour) // heap now has a stale 1-minute entry
	vc.Advance(2 * time.Minute)
	st := db.ActiveExpireCycle()
	if st.Expired != 0 {
		t.Fatal("stale heap entry deleted a live key")
	}
	if !db.Exists("k") {
		t.Fatal("key with extended TTL vanished")
	}
	vc.Advance(time.Hour)
	st = db.ActiveExpireCycle()
	if st.Expired != 1 {
		t.Fatalf("heap missed the real deadline, expired=%d", st.Expired)
	}
}

func TestSetStrategyRebuildsHeap(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	db := New(Options{Clock: vc, Seed: 7, Strategy: ExpiryLazyProbabilistic})
	populate(db, 100, 1.0, time.Minute, time.Minute)
	db.SetStrategy(ExpiryHeap)
	vc.Advance(2 * time.Minute)
	st := db.ActiveExpireCycle()
	if st.Expired != 100 {
		t.Fatalf("rebuilt heap reclaimed %d, want 100", st.Expired)
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Property: popping the expiry heap yields deadlines in nondecreasing
	// order regardless of push order.
	f := func(offsets []int16) bool {
		var h expiryHeap
		base := time.Unix(10000, 0)
		for i, off := range offsets {
			h.push(heapEntry{deadline: base.Add(time.Duration(off) * time.Second), key: fmt.Sprint(i)})
		}
		var got []time.Time
		for len(h) > 0 {
			got = append(got, h.pop().deadline)
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Before(got[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpirerStep(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	db := New(Options{Clock: vc, Seed: 7, Strategy: ExpiryFastScan})
	db.SetEX("k", []byte("v"), 150*time.Millisecond)
	e := NewExpirer(db)
	e.Step() // advances to 100ms: not yet due
	if db.RawLen() != 1 {
		t.Fatal("expired too early")
	}
	e.Step() // 200ms: due
	if db.RawLen() != 0 {
		t.Fatal("fast scan step missed the key")
	}
	if e.Cycles() != 2 || e.Expired() != 1 {
		t.Fatalf("cycles=%d expired=%d", e.Cycles(), e.Expired())
	}
}

func TestExpirerStepPanicsOnWallClock(t *testing.T) {
	db := New(Options{})
	e := NewExpirer(db)
	defer func() {
		if recover() == nil {
			t.Fatal("Step on wall clock did not panic")
		}
	}()
	e.Step()
}

func TestExpirerRunStop(t *testing.T) {
	db := New(Options{Strategy: ExpiryFastScan})
	db.SetEX("k", []byte("v"), 50*time.Millisecond)
	e := NewExpirerPeriod(db, 10*time.Millisecond)
	e.Run()
	e.Run() // idempotent
	testutil.Eventually(t, 10*time.Second, 0, func() bool {
		return db.RawLen() == 0
	}, "background expirer never reclaimed the key")
	e.Stop()
	e.Stop() // idempotent
}

func TestDeadlineAccessor(t *testing.T) {
	db, vc := newTestDB()
	db.SetEX("k", []byte("v"), time.Minute)
	d, ok := db.Deadline("k")
	if !ok || !d.Equal(vc.Now().Add(time.Minute)) {
		t.Fatalf("Deadline = %v, %v", d, ok)
	}
	if _, ok := db.Deadline("missing"); ok {
		t.Fatal("Deadline for missing key")
	}
}
