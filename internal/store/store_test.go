package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gdprstore/internal/clock"
)

func newTestDB() (*DB, *clock.Virtual) {
	vc := clock.NewVirtual(time.Date(2019, 5, 16, 0, 0, 0, 0, time.UTC))
	return New(Options{Clock: vc, Seed: 42}), vc
}

func TestSetGet(t *testing.T) {
	db, _ := newTestDB()
	db.Set("k", []byte("v"))
	got, ok := db.Get("k")
	if !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestGetMissing(t *testing.T) {
	db, _ := newTestDB()
	if _, ok := db.Get("nope"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db, _ := newTestDB()
	db.Set("k", []byte("abc"))
	v, _ := db.Get("k")
	v[0] = 'X'
	again, _ := db.Get("k")
	if !bytes.Equal(again, []byte("abc")) {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestSetClearsTTL(t *testing.T) {
	db, vc := newTestDB()
	db.SetEX("k", []byte("v"), time.Minute)
	db.Set("k", []byte("v2")) // plain SET must clear TTL, as in Redis
	vc.Advance(2 * time.Minute)
	if _, ok := db.Get("k"); !ok {
		t.Fatal("SET did not clear TTL")
	}
}

func TestSetKeepTTL(t *testing.T) {
	db, vc := newTestDB()
	db.SetEX("k", []byte("v"), time.Minute)
	db.SetKeepTTL("k", []byte("v2"))
	if _, st := db.TTL("k"); st != TTLSet {
		t.Fatal("KEEPTTL dropped the TTL")
	}
	vc.Advance(2 * time.Minute)
	if _, ok := db.Get("k"); ok {
		t.Fatal("key survived its kept TTL")
	}
}

func TestDel(t *testing.T) {
	db, _ := newTestDB()
	db.Set("a", []byte("1"))
	db.Set("b", []byte("2"))
	if n := db.Del("a", "b", "c"); n != 2 {
		t.Fatalf("Del = %d, want 2", n)
	}
	if db.Exists("a") || db.Exists("b") {
		t.Fatal("deleted keys still exist")
	}
}

func TestLazyExpiry(t *testing.T) {
	db, vc := newTestDB()
	db.SetEX("k", []byte("v"), time.Minute)
	if !db.Exists("k") {
		t.Fatal("key should exist before expiry")
	}
	vc.Advance(61 * time.Second)
	if db.RawLen() != 1 {
		t.Fatal("key should still be physically present (lazy)")
	}
	if _, ok := db.Get("k"); ok {
		t.Fatal("expired key served")
	}
	if db.RawLen() != 0 {
		t.Fatal("lazy expiry did not reclaim on access")
	}
	if db.ExpiredCount() != 1 {
		t.Fatalf("expired count = %d", db.ExpiredCount())
	}
}

func TestExpireOnMissingKey(t *testing.T) {
	db, _ := newTestDB()
	if db.Expire("nope", time.Minute) {
		t.Fatal("Expire on missing key returned true")
	}
}

func TestExpirePastDeadlineDeletesImmediately(t *testing.T) {
	db, vc := newTestDB()
	db.Set("k", []byte("v"))
	if !db.ExpireAt("k", vc.Now().Add(-time.Second)) {
		t.Fatal("ExpireAt returned false for existing key")
	}
	if db.RawLen() != 0 {
		t.Fatal("past deadline must delete immediately")
	}
}

func TestPersist(t *testing.T) {
	db, vc := newTestDB()
	db.SetEX("k", []byte("v"), time.Minute)
	if !db.Persist("k") {
		t.Fatal("Persist returned false")
	}
	vc.Advance(time.Hour)
	if !db.Exists("k") {
		t.Fatal("persisted key expired")
	}
	if db.Persist("k") {
		t.Fatal("second Persist should return false (no TTL)")
	}
}

func TestTTLStatuses(t *testing.T) {
	db, _ := newTestDB()
	if _, st := db.TTL("missing"); st != TTLMissing {
		t.Fatalf("status = %v, want missing", st)
	}
	db.Set("plain", []byte("v"))
	if _, st := db.TTL("plain"); st != TTLNone {
		t.Fatalf("status = %v, want none", st)
	}
	db.SetEX("ttl", []byte("v"), time.Minute)
	d, st := db.TTL("ttl")
	if st != TTLSet || d != time.Minute {
		t.Fatalf("TTL = %v, %v", d, st)
	}
}

func TestFlushAll(t *testing.T) {
	db, _ := newTestDB()
	db.Set("a", []byte("1"))
	db.SetEX("b", []byte("2"), time.Minute)
	db.FlushAll()
	if db.RawLen() != 0 || db.ExpireLen() != 0 {
		t.Fatal("FlushAll left residue")
	}
}

func TestLenExcludesExpired(t *testing.T) {
	db, vc := newTestDB()
	db.Set("live", []byte("1"))
	db.SetEX("dead", []byte("2"), time.Second)
	vc.Advance(2 * time.Second)
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	if db.RawLen() != 2 {
		t.Fatalf("RawLen = %d, want 2", db.RawLen())
	}
}

func TestRandomKey(t *testing.T) {
	db, _ := newTestDB()
	if _, ok := db.RandomKey(); ok {
		t.Fatal("RandomKey on empty DB")
	}
	db.Set("only", []byte("1"))
	k, ok := db.RandomKey()
	if !ok || k != "only" {
		t.Fatalf("RandomKey = %q, %v", k, ok)
	}
}

func TestJournalReceivesOps(t *testing.T) {
	db, vc := newTestDB()
	var ops []string
	db.SetJournal(JournalFunc(func(name string, args ...[]byte) error {
		ops = append(ops, name)
		return nil
	}))
	db.Set("a", []byte("1"))
	db.SetEX("b", []byte("2"), time.Second)
	db.Del("a")
	vc.Advance(2 * time.Second)
	db.Get("b") // lazy expiry emits DEL
	want := []string{"SET", "SETEX", "DEL", "DEL"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("journal ops = %v, want %v", ops, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New(Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d-%d", g, i)
				db.Set(k, []byte("v"))
				db.Get(k)
				db.Expire(k, time.Hour)
				db.Del(k)
			}
		}(g)
	}
	wg.Wait()
	if db.RawLen() != 0 {
		t.Fatalf("residue after concurrent churn: %d", db.RawLen())
	}
}

func TestExpireSampleSliceConsistency(t *testing.T) {
	// Property: after an arbitrary interleaving of SetEX/Del/Persist, the
	// sampling slice and the expires dict must describe the same key set.
	f := func(ops []uint8) bool {
		db, _ := newTestDB()
		for i, op := range ops {
			k := fmt.Sprintf("k%d", int(op)%10)
			switch i % 4 {
			case 0:
				db.SetEX(k, []byte("v"), time.Hour)
			case 1:
				db.Set(k, []byte("v"))
			case 2:
				db.Del(k)
			case 3:
				db.Persist(k)
			}
		}
		for _, sh := range db.shards {
			sh.mu.Lock()
			ok := len(sh.expireKeys) == len(sh.expires)
			if ok {
				for _, k := range sh.expireKeys {
					if _, present := sh.expires[k]; !present {
						ok = false
						break
					}
				}
			}
			if ok {
				for k, i := range sh.expireIdx {
					if sh.expireKeys[i] != k {
						ok = false
						break
					}
				}
			}
			sh.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[ExpiryStrategy]string{
		ExpiryLazyProbabilistic: "lazy-probabilistic",
		ExpiryFastScan:          "fast-scan",
		ExpiryHeap:              "expiry-heap",
		ExpiryStrategy(99):      "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
