package store

import (
	"sync"
	"time"

	"gdprstore/internal/clock"
)

// Expirer drives the active-expire cycle, either from a background
// goroutine against the wall clock (Run/Stop) or step-by-step against a
// virtual clock (Step), which is how the Figure 2 experiment compresses
// hours of expiry lag into milliseconds.
type Expirer struct {
	db     *DB
	period time.Duration

	mu      sync.Mutex
	stopped chan struct{}
	done    chan struct{}

	cycles  uint64
	expired uint64
}

// NewExpirer creates an expirer for db using Redis's 100 ms cycle period.
func NewExpirer(db *DB) *Expirer {
	return &Expirer{db: db, period: ActiveExpireCyclePeriod}
}

// NewExpirerPeriod creates an expirer with a custom cycle period.
func NewExpirerPeriod(db *DB, period time.Duration) *Expirer {
	if period <= 0 {
		period = ActiveExpireCyclePeriod
	}
	return &Expirer{db: db, period: period}
}

// Run starts the background cycle against real time. It is a no-op if
// already running.
func (e *Expirer) Run() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped != nil {
		return
	}
	e.stopped = make(chan struct{})
	e.done = make(chan struct{})
	go e.loop(e.stopped, e.done)
}

func (e *Expirer) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(e.period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			st := e.db.ActiveExpireCycle()
			e.mu.Lock()
			e.cycles++
			e.expired += uint64(st.Expired)
			e.mu.Unlock()
		}
	}
}

// Stop halts the background cycle and waits for it to exit.
func (e *Expirer) Stop() {
	e.mu.Lock()
	stopped, done := e.stopped, e.done
	e.stopped, e.done = nil, nil
	e.mu.Unlock()
	if stopped == nil {
		return
	}
	close(stopped)
	<-done
}

// Step advances the virtual clock by one period and runs one cycle. It
// returns the cycle stats. Step panics if the expirer's DB is not on a
// virtual clock, because stepping real time is meaningless.
func (e *Expirer) Step() CycleStats {
	vc, ok := e.db.clk.(*clock.Virtual)
	if !ok {
		panic("store: Expirer.Step requires a virtual clock")
	}
	vc.Advance(e.period)
	st := e.db.ActiveExpireCycle()
	e.mu.Lock()
	e.cycles++
	e.expired += uint64(st.Expired)
	e.mu.Unlock()
	return st
}

// Cycles returns how many cycles have run.
func (e *Expirer) Cycles() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cycles
}

// Expired returns how many keys the expirer has reclaimed.
func (e *Expirer) Expired() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.expired
}

// Running reports whether the background cycle is active.
func (e *Expirer) Running() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stopped != nil
}

// Period returns the configured cycle period.
func (e *Expirer) Period() time.Duration { return e.period }
