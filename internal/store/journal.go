package store

import (
	"sync"
	"sync/atomic"
)

// journalRec is one buffered journal record awaiting its group commit.
type journalRec struct {
	name string
	args [][]byte
}

// journalQueue decouples journal I/O from the shard locks. Mutating
// operations enqueue their records while still holding the shard lock —
// that is what fixes the per-key record order — and drain the queue to the
// attached Journal only after the shard lock is released.
//
// The drain is a group commit: whichever caller acquires writeMu first
// writes every pending record (its own and any enqueued concurrently by
// other shards); callers that lose the race block on writeMu until their
// record has been written, so by the time a mutating method returns, its
// record has been handed to the Journal — the same guarantee the old
// single-mutex engine gave, without holding any shard lock across I/O.
//
// Lock order: shard.mu → mu. writeMu is only taken with no shard lock
// held, and mu is never held across a Journal call.
type journalQueue struct {
	// attached mirrors sink != nil so the no-journal fast path can skip
	// the queue's locks entirely — with no journal, the engine must not
	// funnel every shard through a shared mutex.
	attached atomic.Bool

	// pendingN counts records enqueued but not yet handed to the sink. It
	// is decremented only AFTER a drain has written its batch, so a
	// flusher that observes pendingN == 0 knows every record it enqueued
	// earlier has already been written — that is what lets flush be a
	// lock-free no-op on the common read path.
	pendingN atomic.Int64

	mu      sync.Mutex // guards pending and sink
	pending []journalRec
	sink    Journal

	writeMu sync.Mutex // serialises drains (held across Journal I/O)
}

// enqueue buffers one record. Callers hold the shard lock of the mutated
// shard (or every shard lock, for cross-shard records such as FLUSHALL),
// which fixes the order of records for any given key.
func (q *journalQueue) enqueue(name string, args ...[]byte) {
	if !q.attached.Load() {
		return
	}
	q.mu.Lock()
	if q.sink != nil {
		q.pending = append(q.pending, journalRec{name: name, args: args})
		q.pendingN.Add(1)
	}
	q.mu.Unlock()
}

// active reports whether a journal is attached; mutating paths use it to
// skip enqueueing, flushing, and building record payloads when nobody is
// listening.
func (q *journalQueue) active() bool { return q.attached.Load() }

// flush drains every pending record to the sink, in enqueue order. Callers
// must not hold any shard lock. Journal errors are dropped, as before: the
// journal's own health API (e.g. the AOF's last-error) reports them, and
// the engine keeps serving, as Redis does with appendfsync errors.
func (q *journalQueue) flush() {
	if !q.attached.Load() || q.pendingN.Load() == 0 {
		return
	}
	q.writeMu.Lock()
	defer q.writeMu.Unlock()
	q.mu.Lock()
	batch := q.pending
	q.pending = nil
	sink := q.sink
	q.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if sink != nil {
		for _, r := range batch {
			_ = sink.AppendOp(r.name, r.args...)
		}
	}
	q.pendingN.Add(-int64(len(batch)))
}

// multiJournal fans one record out to several sinks in order. It is the
// composition point that lets the engine's group-commit queue feed the AOF,
// an in-process replica fan-out, and a network replication stream at once:
// the queue drains each record to the multiJournal exactly once, and the
// multiJournal hands it to every leg before returning, so all legs observe
// the same record order.
type multiJournal struct {
	legs []Journal
}

// NewMultiJournal composes journals into one sink. Nil legs are skipped; a
// single non-nil leg is returned unwrapped; all-nil returns nil (so callers
// can pass the result straight to SetJournal and keep the engine's
// no-journal fast path).
func NewMultiJournal(legs ...Journal) Journal {
	nonNil := make([]Journal, 0, len(legs))
	for _, j := range legs {
		if j != nil {
			nonNil = append(nonNil, j)
		}
	}
	switch len(nonNil) {
	case 0:
		return nil
	case 1:
		return nonNil[0]
	default:
		return &multiJournal{legs: nonNil}
	}
}

// AppendOp implements Journal: every leg receives the record, in leg order;
// the first error is returned after all legs have been offered the record
// (a failing AOF must not starve the replication stream, or vice versa).
func (m *multiJournal) AppendOp(name string, args ...[]byte) error {
	var first error
	for _, j := range m.legs {
		if err := j.AppendOp(name, args...); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// set attaches (or detaches, with nil) the journal. It waits out any
// in-flight drain, then drains records still buffered for the previous
// sink to that sink — a mutation whose enqueue won the race against the
// swap must not lose its record (its flush may observe pendingN == 0 and
// trust that someone wrote it).
func (q *journalQueue) set(j Journal) {
	q.writeMu.Lock()
	defer q.writeMu.Unlock()
	q.mu.Lock()
	batch := q.pending
	old := q.sink
	q.pending = nil
	q.sink = j
	q.attached.Store(j != nil)
	q.mu.Unlock()
	if old != nil {
		for _, r := range batch {
			_ = old.AppendOp(r.name, r.args...)
		}
	}
	q.pendingN.Add(-int64(len(batch)))
}
