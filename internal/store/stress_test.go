package store

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentStressJournalReplay is the sharded engine's integration
// invariant: hammer every shard from GOMAXPROCS-scaled goroutines with a
// mixed SET/SETEX/GET/DEL/EXPIRE/batch workload — with a FLUSHALL and SCANs
// mid-flight — while capturing the journal stream, then replay the stream
// into a fresh DB and assert the keyspaces are identical.
//
// This is exactly the property the group-commit journal queue must
// preserve: per-key record order matches apply order (enqueue happens under
// the shard lock), and FLUSHALL is a single consistent point (enqueued
// under all shard locks). If either ordering broke, the replayed keyspace
// would diverge.
func TestConcurrentStressJournalReplay(t *testing.T) {
	db := New(Options{})

	var jmu sync.Mutex
	var recs []journalRec
	db.SetJournal(JournalFunc(func(name string, args ...[]byte) error {
		// Copy: journal args may alias caller buffers.
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		jmu.Lock()
		recs = append(recs, journalRec{name: name, args: cp})
		jmu.Unlock()
		return nil
	}))

	workers := runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	const iters = 1500
	var wg sync.WaitGroup

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g == 0 && i == iters/2 {
					// One FLUSHALL mid-flight, racing every other
					// worker — the cross-shard consistent-point protocol
					// under real contention.
					db.FlushAll()
				}
				// Half the keys are worker-private, half shared across
				// workers, so both the contended and uncontended shard
				// paths are exercised.
				var key string
				if i%2 == 0 {
					key = fmt.Sprintf("w%d-k%d", g, i%50)
				} else {
					key = fmt.Sprintf("shared-k%d", i%97)
				}
				val := []byte(fmt.Sprintf("v%d-%d", g, i))
				switch i % 11 {
				case 0, 1, 2, 3:
					db.Set(key, val)
				case 4:
					db.SetEX(key, val, time.Hour)
				case 5:
					db.Get(key)
				case 6:
					db.Del(key)
				case 7:
					db.Expire(key, time.Hour)
				case 8:
					keys := []string{key + "-b0", key + "-b1", key + "-b2"}
					db.SetBatch(keys, [][]byte{val, val, val})
				case 9:
					db.GetBatch([]string{key, key + "-b1"})
				case 10:
					// SCAN mid-flight: walk a page and sanity-check the
					// cursor contract — next is 0 (snapshot exhausted) or
					// exactly start+count (the page may still be empty:
					// the pattern filter applies after pagination).
					if _, next := db.Scan(0, "w*", 25); next != 0 && next != 25 {
						t.Errorf("Scan cursor = %d, want 0 or 25", next)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Replay the captured stream into a fresh engine.
	fresh := New(Options{})
	jmu.Lock()
	defer jmu.Unlock()
	for _, r := range recs {
		if err := fresh.Apply(r.name, r.args); err != nil {
			t.Fatalf("replaying %s: %v", r.name, err)
		}
	}

	gotVals, gotExps := dumpState(db)
	wantVals, wantExps := dumpState(fresh)
	if len(gotVals) == 0 {
		t.Fatal("stress run left an empty keyspace; workload is broken")
	}
	if len(gotVals) != len(wantVals) {
		t.Fatalf("replayed dict has %d keys, live dict has %d", len(wantVals), len(gotVals))
	}
	for k, v := range gotVals {
		if wantVals[k] != v {
			t.Fatalf("key %q: live %q, replayed %q", k, v, wantVals[k])
		}
	}
	if len(gotExps) != len(wantExps) {
		t.Fatalf("replayed expires has %d keys, live expires has %d", len(wantExps), len(gotExps))
	}
	for k, d := range gotExps {
		if !wantExps[k].Equal(d) {
			t.Fatalf("key %q deadline: live %v, replayed %v", k, d, wantExps[k])
		}
	}
}

// dumpState snapshots the physical keyspace (including any
// expired-but-unreclaimed keys) shard by shard.
func dumpState(db *DB) (map[string]string, map[string]time.Time) {
	vals := make(map[string]string)
	exps := make(map[string]time.Time)
	for _, sh := range db.shards {
		sh.mu.Lock()
		for k, v := range sh.dict {
			vals[k] = string(v)
		}
		for k, d := range sh.expires {
			exps[k] = d
		}
		sh.mu.Unlock()
	}
	return vals, exps
}

// TestShardOptions pins the shard-count contract: rounding up to a power
// of two, a single-shard fallback, and correct routing whatever the count.
func TestShardOptions(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		db := New(Options{Shards: tc.in})
		if got := db.ShardCount(); got != tc.want {
			t.Errorf("Shards=%d: got %d shards, want %d", tc.in, got, tc.want)
		}
		// Every key must round-trip regardless of shard count.
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key%d", i)
			db.Set(k, []byte("v"))
			if _, ok := db.Get(k); !ok {
				t.Fatalf("Shards=%d: key %q lost", tc.in, k)
			}
		}
		if n := db.RawLen(); n != 100 {
			t.Errorf("Shards=%d: RawLen = %d, want 100", tc.in, n)
		}
	}
}

// TestFlushAllJournalConsistentPoint pins the cross-shard protocol: a
// FLUSHALL racing single-key writers must land in the journal at a point
// such that replay converges (keys journaled before it vanish, keys after
// it survive) — which the replay-equivalence stress test checks in bulk;
// here the record order itself is asserted for a deterministic small case.
func TestFlushAllJournalConsistentPoint(t *testing.T) {
	db := New(Options{})
	var ops []string
	db.SetJournal(JournalFunc(func(name string, args ...[]byte) error {
		ops = append(ops, name)
		return nil
	}))
	db.Set("a", []byte("1"))
	db.FlushAll()
	db.Set("b", []byte("2"))
	want := []string{"SET", "FLUSHALL", "SET"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("journal order = %v, want %v", ops, want)
	}
	if db.RawLen() != 1 || !db.Exists("b") {
		t.Fatal("post-flush state wrong")
	}
}
