package store

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestKeysAll(t *testing.T) {
	db, _ := newTestDB()
	for i := 0; i < 5; i++ {
		db.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	got := db.Keys("*")
	if len(got) != 5 {
		t.Fatalf("Keys(*) = %d keys", len(got))
	}
}

func TestKeysPattern(t *testing.T) {
	db, _ := newTestDB()
	db.Set("user:1", []byte("a"))
	db.Set("user:2", []byte("b"))
	db.Set("order:1", []byte("c"))
	got := db.Keys("user:*")
	sort.Strings(got)
	if strings.Join(got, ",") != "user:1,user:2" {
		t.Fatalf("got %v", got)
	}
}

func TestKeysSkipsExpired(t *testing.T) {
	db, vc := newTestDB()
	db.Set("live", []byte("a"))
	db.SetEX("dead", []byte("b"), time.Second)
	vc.Advance(2 * time.Second)
	got := db.Keys("*")
	if len(got) != 1 || got[0] != "live" {
		t.Fatalf("got %v", got)
	}
}

func TestScanCompleteness(t *testing.T) {
	db, _ := newTestDB()
	want := map[string]bool{}
	for i := 0; i < 137; i++ {
		k := fmt.Sprintf("key%04d", i)
		db.Set(k, []byte("v"))
		want[k] = true
	}
	var cursor uint64
	seen := map[string]bool{}
	iterations := 0
	for {
		keys, next := db.Scan(cursor, "*", 10)
		for _, k := range keys {
			seen[k] = true
		}
		iterations++
		if iterations > 100 {
			t.Fatal("scan did not terminate")
		}
		if next == 0 {
			break
		}
		cursor = next
	}
	if len(seen) != len(want) {
		t.Fatalf("scan saw %d keys, want %d", len(seen), len(want))
	}
}

func TestScanDefaultsCount(t *testing.T) {
	db, _ := newTestDB()
	db.Set("a", []byte("v"))
	keys, next := db.Scan(0, "*", 0)
	if len(keys) != 1 || next != 0 {
		t.Fatalf("keys=%v next=%d", keys, next)
	}
}

func TestRangeKeysEarlyStop(t *testing.T) {
	db, _ := newTestDB()
	for i := 0; i < 10; i++ {
		db.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	n := 0
	db.RangeKeys(func(k string, v []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d keys, want 3", n)
	}
}

func TestMatchGlobBasics(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"a*c", "ac", true},
		{"a*c", "abbbc", true},
		{"a*c", "abbbd", false},
		{"**", "whatever", true},
		{"user:*:profile", "user:42:profile", true},
		{"user:*:profile", "user:42:orders", false},
		{"[abc]", "b", true},
		{"[abc]", "d", false},
		{"[^abc]", "d", true},
		{"[^abc]", "a", false},
		{"[a-c]x", "bx", true},
		{"[a-c]x", "dx", false},
		{"\\*", "*", true},
		{"\\*", "x", false},
		{"h[ae]llo", "hello", true},
		{"h[ae]llo", "hallo", true},
		{"h[ae]llo", "hillo", false},
		{"[", "x", false},  // unterminated class
		{"[]", "x", false}, // empty-ish class
	}
	for _, c := range cases {
		if got := MatchGlob(c.pattern, c.s); got != c.want {
			t.Errorf("MatchGlob(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestMatchGlobAgainstRegexp(t *testing.T) {
	// Property: for patterns made only of literals, '?' and '*', MatchGlob
	// agrees with the equivalent regexp.
	toRe := func(p string) *regexp.Regexp {
		var b strings.Builder
		b.WriteString("^")
		for _, r := range p {
			switch r {
			case '*':
				b.WriteString(".*")
			case '?':
				b.WriteString(".")
			default:
				b.WriteString(regexp.QuoteMeta(string(r)))
			}
		}
		b.WriteString("$")
		return regexp.MustCompile(b.String())
	}
	alphabet := []byte("ab*?")
	f := func(pSeed, sSeed []byte) bool {
		var p, s strings.Builder
		for _, x := range pSeed {
			p.WriteByte(alphabet[int(x)%len(alphabet)])
		}
		for _, x := range sSeed {
			s.WriteByte(alphabet[int(x)%2]) // subject only a/b
		}
		if len(p.String()) > 8 || len(s.String()) > 12 {
			return true // keep backtracking bounded
		}
		return MatchGlob(p.String(), s.String()) == toRe(p.String()).MatchString(s.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRoundTrip(t *testing.T) {
	// Every journaled op must be replayable via Apply to the same state.
	src, vc := newTestDB()
	dst := New(Options{Clock: vc, Seed: 42})
	src.SetJournal(JournalFunc(func(name string, args ...[]byte) error {
		return dst.Apply(name, args)
	}))
	src.Set("plain", []byte("1"))
	src.SetEX("ttl", []byte("2"), time.Hour)
	src.Set("gone", []byte("3"))
	src.Del("gone")
	src.SetEX("persisted", []byte("4"), time.Minute)
	src.Persist("persisted")
	src.Expire("plain", 30*time.Minute)

	for _, k := range []string{"plain", "ttl", "persisted"} {
		sv, sok := src.Get(k)
		dv, dok := dst.Get(k)
		if sok != dok || string(sv) != string(dv) {
			t.Fatalf("key %q diverged: src=%q,%v dst=%q,%v", k, sv, sok, dv, dok)
		}
		sd, sst := src.TTL(k)
		dd, dst := dst.TTL(k)
		if sst != dst || sd != dd {
			t.Fatalf("key %q TTL diverged: src=%v,%v dst=%v,%v", k, sd, sst, dd, dst)
		}
	}
	if dst.Exists("gone") {
		t.Fatal("deleted key resurrected in replica")
	}
}

func TestApplyUnknownOp(t *testing.T) {
	db, _ := newTestDB()
	if err := db.Apply("NONSENSE", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestApplyBadArity(t *testing.T) {
	db, _ := newTestDB()
	for _, c := range []struct {
		name string
		args [][]byte
	}{
		{"SET", [][]byte{[]byte("k")}},
		{"SETEX", [][]byte{[]byte("k"), []byte("v")}},
		{"EXPIREAT", [][]byte{[]byte("k")}},
		{"PERSIST", nil},
	} {
		if err := db.Apply(c.name, c.args); err == nil {
			t.Errorf("Apply(%s) with bad arity accepted", c.name)
		}
	}
}

func TestSnapshotSkipsExpired(t *testing.T) {
	db, vc := newTestDB()
	db.Set("live", []byte("1"))
	db.SetEX("ttl", []byte("2"), time.Hour)
	db.SetEX("dead", []byte("3"), time.Second)
	vc.Advance(2 * time.Second)
	var ops []string
	err := db.Snapshot(func(name string, args ...[]byte) error {
		ops = append(ops, name+":"+string(args[0]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ops)
	want := "SET:live,SETEX:ttl"
	if strings.Join(ops, ",") != want {
		t.Fatalf("snapshot = %v, want %s", ops, want)
	}
}
