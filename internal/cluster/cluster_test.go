package cluster

import (
	"strings"
	"testing"
)

// TestCRC16Vectors pins the hash to the Redis Cluster CRC16 (CCITT/XModem)
// reference values, so our slot placement stays bit-compatible with the
// ecosystem's tooling.
func TestCRC16Vectors(t *testing.T) {
	vectors := []struct {
		in   string
		want uint16
	}{
		{"", 0x0000},
		{"123456789", 0x31C3}, // the classic CCITT check value
		{"foo", 0xAF96},       // redis: CLUSTER KEYSLOT foo == 0xAF96 % 16384 == 12182
	}
	for _, v := range vectors {
		if got := crc16([]byte(v.in)); got != v.want {
			t.Errorf("crc16(%q) = %#04x, want %#04x", v.in, got, v.want)
		}
	}
}

func TestSlotHashTags(t *testing.T) {
	// All of one owner's tagged keys share the owner's own slot.
	owner := "subject000042"
	want := Slot(owner)
	for _, key := range []string{
		"pd:{subject000042}:rec0001",
		"pd:{subject000042}:rec0999",
		"x{subject000042}y",
	} {
		if got := Slot(key); got != want {
			t.Errorf("Slot(%q) = %d, want owner slot %d", key, got, want)
		}
	}
	// Empty or unterminated tags hash the whole key (Redis semantics).
	if Slot("a{}b") == Slot("") {
		t.Error("empty tag must hash the whole key, not the empty tag")
	}
	if Slot("a{open") != crc16([]byte("a{open"))%NumSlots {
		t.Error("unterminated tag must hash the whole key")
	}
	// Only the first tag counts.
	if Slot("{a}{b}") != Slot("a") {
		t.Error("first hash tag must win")
	}
	// Slots stay in range across arbitrary keys.
	for _, k := range []string{"a", "user:1", strings.Repeat("x", 1000)} {
		if s := Slot(k); int(s) >= NumSlots {
			t.Errorf("Slot(%q) = %d out of range", k, s)
		}
	}
}

func TestParseNodesRoundTrip(t *testing.T) {
	m, err := ParseNodes([]string{
		"n1=127.0.0.1:7001:0-341",
		"n2=127.0.0.1:7002:342-682,1000-1023",
		"n3=127.0.0.1:7003:683-999",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.NodeForSlot(0); n.ID != "n1" {
		t.Errorf("slot 0 -> %s", n.ID)
	}
	if n := m.NodeForSlot(1023); n.ID != "n2" {
		t.Errorf("slot 1023 -> %s", n.ID)
	}
	if n := m.NodeForSlot(683); n.ID != "n3" {
		t.Errorf("slot 683 -> %s", n.ID)
	}
	if n, ok := m.NodeByID("n2"); !ok || n.Addr != "127.0.0.1:7002" {
		t.Errorf("NodeByID(n2) = %+v, %v", n, ok)
	}
	// Every key routes to some node and agrees with NodeForSlot.
	for _, k := range []string{"alice", "pd:{bob}:rec1", "user:0001"} {
		if m.NodeForKey(k).ID != m.NodeForSlot(Slot(k)).ID {
			t.Errorf("NodeForKey(%q) disagrees with NodeForSlot", k)
		}
	}
	// SlotRanges is sorted and covers the space.
	rs := m.SlotRanges()
	covered := 0
	for i, sr := range rs {
		if i > 0 && rs[i-1].Range.Start >= sr.Range.Start {
			t.Fatal("SlotRanges not sorted")
		}
		covered += int(sr.Range.End-sr.Range.Start) + 1
	}
	if covered != NumSlots {
		t.Fatalf("SlotRanges cover %d slots", covered)
	}
}

func TestParseNodesRejectsBadTopologies(t *testing.T) {
	bad := [][]string{
		{},                          // empty
		{"n1=127.0.0.1:7001:0-341"}, // gap: slots 342+ unassigned
		{"n1=127.0.0.1:7001:0-1023", "n2=127.0.0.1:7002:500-600"}, // overlap
		{"n1=127.0.0.1:7001:0-2000"},                              // out of range
		{"n1=127.0.0.1:7001:5-1"},                                 // inverted range
		{"garbage"},                                               // no '='
		{"n1=127.0.0.1:0-1023"},                                   // missing port or slots
		{"n1=nocolon:0-1023"},                                     // addr without port
		{"=127.0.0.1:7001:0-1023"},                                // empty id
		{"n1=127.0.0.1:7001:0-511", "n1=127.0.0.1:7002:512-1023"}, // dup id
		{"n1=127.0.0.1:7001:0-511", "n2=127.0.0.1:7001:512-1023"}, // dup addr
		{"n1=127.0.0.1:7001:0-x"},                                 // bad range token
	}
	for _, specs := range bad {
		if _, err := ParseNodes(specs); err == nil {
			t.Errorf("ParseNodes(%v) accepted", specs)
		}
	}
}

func TestEvenSplit(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7} {
		ranges := EvenSplit(n)
		if len(ranges) != n {
			t.Fatalf("EvenSplit(%d) returned %d nodes", n, len(ranges))
		}
		total := 0
		next := uint16(0)
		for _, rs := range ranges {
			for _, r := range rs {
				if r.Start != next {
					t.Fatalf("EvenSplit(%d): gap before slot %d", n, r.Start)
				}
				total += int(r.End-r.Start) + 1
				next = r.End + 1
			}
		}
		if total != NumSlots {
			t.Fatalf("EvenSplit(%d) covers %d slots", n, total)
		}
	}
}
