package cluster

import "fmt"

// This file makes the topology live. PR 5's Map is a static parsed
// assignment; elasticity needs three more facts per fleet: a version
// (the epoch — so clients and peers can order two topology views), the
// per-slot migration state (MIGRATING on the source, IMPORTING on the
// destination — the window during which a slot's keys exist on two nodes
// and ASK redirects bridge them), and mutability by derivation (every
// admin action produces a new immutable *Topology with the epoch bumped,
// installed with one atomic pointer swap — readers never lock).
//
// Epochs are per-node counters starting at 1. There is no consensus
// layer: the operator (or orchestrator) applies the same mutation
// sequence to every node, so epochs agree across the fleet in steady
// state, and clients use them only to reject stale refreshes — a client
// never downgrades to a topology with a lower epoch than it has seen.

// MigrationState is a slot's position in the migration state machine.
type MigrationState uint8

// Migration states.
const (
	// StateNone: the slot is stable — exactly one owner, no redirects
	// beyond the ordinary MOVED.
	StateNone MigrationState = iota
	// StateMigrating: set on the slot's current owner. Keys are being
	// streamed away; a key no longer present locally earns an ASK redirect
	// to the destination.
	StateMigrating
	// StateImporting: set on the destination. The node accepts commands
	// for the slot it does not own yet, but only when the client announced
	// the hop with ASKING.
	StateImporting
)

// String renders the state in CLUSTER SETSLOT vocabulary.
func (s MigrationState) String() string {
	switch s {
	case StateMigrating:
		return "migrating"
	case StateImporting:
		return "importing"
	default:
		return "stable"
	}
}

// Migration is one slot's in-flight migration as seen by one node.
type Migration struct {
	// State is this node's role in the migration.
	State MigrationState
	// PeerID names the other end: the destination when State is
	// StateMigrating, the source when State is StateImporting.
	PeerID string
}

// Topology is one node's versioned view of the cluster: an immutable slot
// map plus this node's in-flight slot migrations, stamped with an epoch.
// All mutators return a derived copy with the epoch bumped; a *Topology
// is safe to share without locking.
type Topology struct {
	epoch      uint64
	m          *Map
	migrations map[uint16]Migration
}

// NewTopology wraps a validated Map as epoch-1 topology with no
// migrations in flight.
func NewTopology(m *Map) *Topology {
	return &Topology{epoch: 1, m: m}
}

// Epoch returns the topology version.
func (t *Topology) Epoch() uint64 { return t.epoch }

// Map returns the slot map.
func (t *Topology) Map() *Map { return t.m }

// Migration returns slot's migration state, if any is in flight.
func (t *Topology) Migration(slot uint16) (Migration, bool) {
	mg, ok := t.migrations[slot%NumSlots]
	return mg, ok
}

// Migrations returns a copy of all in-flight migrations keyed by slot.
func (t *Topology) Migrations() map[uint16]Migration {
	out := make(map[uint16]Migration, len(t.migrations))
	for s, mg := range t.migrations {
		out[s] = mg
	}
	return out
}

// derive clones t with the epoch bumped, ready for one mutation.
func (t *Topology) derive() *Topology {
	next := &Topology{epoch: t.epoch + 1, m: t.m}
	if len(t.migrations) > 0 {
		next.migrations = make(map[uint16]Migration, len(t.migrations))
		for s, mg := range t.migrations {
			next.migrations[s] = mg
		}
	}
	return next
}

func (t *Topology) setMigration(slot uint16, mg Migration) *Topology {
	next := t.derive()
	if next.migrations == nil {
		next.migrations = make(map[uint16]Migration, 1)
	}
	next.migrations[slot] = mg
	return next
}

// WithMigrating marks slot as migrating to destID (issued on the source).
// The destination must be a known node other than the current owner.
func (t *Topology) WithMigrating(slot uint16, destID string) (*Topology, error) {
	slot %= NumSlots
	if _, ok := t.m.NodeByID(destID); !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", destID)
	}
	if t.m.NodeForSlot(slot).ID == destID {
		return nil, fmt.Errorf("cluster: slot %d already owned by %q", slot, destID)
	}
	return t.setMigration(slot, Migration{State: StateMigrating, PeerID: destID}), nil
}

// WithImporting marks slot as importing from srcID (issued on the
// destination). The source must be the slot's current owner.
func (t *Topology) WithImporting(slot uint16, srcID string) (*Topology, error) {
	slot %= NumSlots
	if _, ok := t.m.NodeByID(srcID); !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", srcID)
	}
	if owner := t.m.NodeForSlot(slot).ID; owner != srcID {
		return nil, fmt.Errorf("cluster: slot %d is owned by %q, not %q", slot, owner, srcID)
	}
	return t.setMigration(slot, Migration{State: StateImporting, PeerID: srcID}), nil
}

// WithStable clears slot's migration state without changing ownership
// (aborting a migration, or acknowledging one finalized elsewhere).
func (t *Topology) WithStable(slot uint16) *Topology {
	slot %= NumSlots
	next := t.derive()
	delete(next.migrations, slot)
	return next
}

// WithSlotOwner finalizes a slot transfer: id becomes the owner and any
// migration state on the slot is cleared. Issued on every node once the
// keys have moved.
func (t *Topology) WithSlotOwner(slot uint16, id string) (*Topology, error) {
	slot %= NumSlots
	idx := -1
	for i, n := range t.m.Nodes() {
		if n.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("cluster: unknown node %q", id)
	}
	next := t.derive()
	next.m = t.m.withOwner(slot, idx)
	delete(next.migrations, slot)
	return next, nil
}

// WithNodeAddr re-points node id at a new address — the failover step
// after promoting one of its replicas, which then serves the primary's
// slots at its own address. The address is removed from the node's
// replica list if it was one.
func (t *Topology) WithNodeAddr(id, addr string) (*Topology, error) {
	m, ok := t.m.withAddr(id, addr)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", id)
	}
	next := t.derive()
	next.m = m
	return next, nil
}
