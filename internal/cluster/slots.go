// Package cluster implements the hash-slot partitioning layer of cluster
// mode: a fixed space of 1024 slots, a Redis-compatible CRC16 key hash
// with hash-tag extraction, and a static topology map assigning slot
// ranges to named primary nodes.
//
// GDPR placement rationale: personal-data keys follow the convention
// "pd:{owner}:rest" (any key with a {tag} hashes on the tag alone), so
// every record of one data subject lands in one slot — and the rights
// operations keyed by the bare owner name (FORGETUSER alice) hash to that
// same slot, because Slot("alice") == Slot("pd:{alice}:rec1"). Erasure
// and access therefore stay node-local for tagged data; untagged keys
// spread for throughput and are covered by the server's cluster-wide
// rights fan-out instead. See DESIGN.md §10.
package cluster

import "strings"

// NumSlots is the size of the hash-slot space. 1024 (not Redis's 16384)
// keeps CLUSTER SLOTS replies and per-slot bookkeeping small at the fleet
// sizes this system targets while still dividing evenly across any
// realistic node count.
const NumSlots = 1024

// Slot maps a key to its hash slot. When the key contains a non-empty
// hash tag — a "{...}" section, first occurrence wins — only the tag
// content is hashed, so callers control co-location exactly like in Redis
// Cluster: "pd:{alice}:email" and "pd:{alice}:phone" share a slot, and
// both share it with the bare owner key "alice".
func Slot(key string) uint16 {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if j := strings.IndexByte(key[i+1:], '}'); j > 0 {
			key = key[i+1 : i+1+j]
		}
	}
	return crc16([]byte(key)) % NumSlots
}
