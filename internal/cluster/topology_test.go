package cluster

import "testing"

// twoNodeTopology builds a fresh epoch-1 topology over two nodes with an
// even slot split: n1 owns the lower half, n2 the upper.
func twoNodeTopology(t *testing.T) *Topology {
	t.Helper()
	splits := EvenSplit(2)
	m, err := NewMap([]Node{
		{ID: "n1", Addr: "127.0.0.1:7001", Ranges: splits[0]},
		{ID: "n2", Addr: "127.0.0.1:7002", Ranges: splits[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewTopology(m)
}

func TestTopologyMigrationLifecycle(t *testing.T) {
	top := twoNodeTopology(t)
	if top.Epoch() != 1 {
		t.Fatalf("fresh topology epoch = %d, want 1", top.Epoch())
	}
	const slot = uint16(0) // owned by n1

	// Source marks the slot MIGRATING; the epoch bumps exactly once.
	mig, err := top.WithMigrating(slot, "n2")
	if err != nil {
		t.Fatal(err)
	}
	if mig.Epoch() != 2 {
		t.Fatalf("epoch after MIGRATING = %d, want 2", mig.Epoch())
	}
	mg, ok := mig.Migration(slot)
	if !ok || mg.State != StateMigrating || mg.PeerID != "n2" {
		t.Fatalf("migration = %+v, %v; want migrating to n2", mg, ok)
	}

	// Destination marks the same slot IMPORTING from the owner.
	imp, err := top.WithImporting(slot, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if mg, ok := imp.Migration(slot); !ok || mg.State != StateImporting || mg.PeerID != "n1" {
		t.Fatalf("migration = %+v, %v; want importing from n1", mg, ok)
	}

	// STABLE aborts: migration state cleared, ownership untouched.
	stable := mig.WithStable(slot)
	if _, ok := stable.Migration(slot); ok {
		t.Fatal("STABLE left migration state behind")
	}
	if stable.Epoch() != 3 {
		t.Fatalf("epoch after STABLE = %d, want 3", stable.Epoch())
	}
	if stable.Map().NodeForSlot(slot).ID != "n1" {
		t.Fatal("STABLE changed slot ownership")
	}

	// NODE finalizes: ownership moves and the migration state goes with it.
	done, err := mig.WithSlotOwner(slot, "n2")
	if err != nil {
		t.Fatal(err)
	}
	if done.Map().NodeForSlot(slot).ID != "n2" {
		t.Fatalf("finalized owner = %q, want n2", done.Map().NodeForSlot(slot).ID)
	}
	if _, ok := done.Migration(slot); ok {
		t.Fatal("finalize left migration state behind")
	}
	if done.Epoch() != 3 {
		t.Fatalf("epoch after finalize = %d, want 3", done.Epoch())
	}

	// The original topology never mutated: derivation is copy-on-write.
	if top.Epoch() != 1 {
		t.Fatalf("original epoch drifted to %d", top.Epoch())
	}
	if _, ok := top.Migration(slot); ok {
		t.Fatal("original topology gained migration state")
	}
	if top.Map().NodeForSlot(slot).ID != "n1" {
		t.Fatal("original topology lost slot ownership")
	}
}

func TestTopologyMutatorValidation(t *testing.T) {
	top := twoNodeTopology(t)
	const slot = uint16(0) // owned by n1

	if _, err := top.WithMigrating(slot, "nope"); err == nil {
		t.Error("MIGRATING to unknown node did not fail")
	}
	if _, err := top.WithMigrating(slot, "n1"); err == nil {
		t.Error("MIGRATING to the current owner did not fail")
	}
	if _, err := top.WithImporting(slot, "n2"); err == nil {
		t.Error("IMPORTING from a non-owner did not fail")
	}
	if _, err := top.WithImporting(slot, "nope"); err == nil {
		t.Error("IMPORTING from unknown node did not fail")
	}
	if _, err := top.WithSlotOwner(slot, "nope"); err == nil {
		t.Error("NODE with unknown node did not fail")
	}
	if _, err := top.WithNodeAddr("nope", "127.0.0.1:9999"); err == nil {
		t.Error("SETNODE with unknown node did not fail")
	}
}

func TestTopologyNodeAddrPromotesReplica(t *testing.T) {
	splits := EvenSplit(2)
	m, err := NewMap([]Node{
		{ID: "n1", Addr: "127.0.0.1:7001", Ranges: splits[0],
			Replicas: []string{"127.0.0.1:7101", "127.0.0.1:7102"}},
		{ID: "n2", Addr: "127.0.0.1:7002", Ranges: splits[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	top := NewTopology(m)

	// Failover: re-point n1 at its first replica. The promoted address
	// leaves the replica list (it is the primary now); the second replica
	// stays attached.
	next, err := top.WithNodeAddr("n1", "127.0.0.1:7101")
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 2 {
		t.Fatalf("epoch after SETNODE = %d, want 2", next.Epoch())
	}
	n, ok := next.Map().NodeByID("n1")
	if !ok || n.Addr != "127.0.0.1:7101" {
		t.Fatalf("n1 addr = %q, want promoted replica address", n.Addr)
	}
	if len(n.Replicas) != 1 || n.Replicas[0] != "127.0.0.1:7102" {
		t.Fatalf("n1 replicas = %v, want the one remaining replica", n.Replicas)
	}
	// n1 still owns its slots under the new address.
	if next.Map().NodeForSlot(0).Addr != "127.0.0.1:7101" {
		t.Fatal("slot 0 does not route to the promoted address")
	}
	// Original untouched.
	if o, _ := top.Map().NodeByID("n1"); o.Addr != "127.0.0.1:7001" || len(o.Replicas) != 2 {
		t.Fatal("WithNodeAddr mutated the original map")
	}
}

func TestParseNodesReplicas(t *testing.T) {
	m, err := ParseNodes([]string{
		"n1=127.0.0.1:7001:0-511/127.0.0.1:7101,127.0.0.1:7102",
		"n2=127.0.0.1:7002:512-1023",
	})
	if err != nil {
		t.Fatal(err)
	}
	n, ok := m.NodeByID("n1")
	if !ok || len(n.Replicas) != 2 || n.Replicas[0] != "127.0.0.1:7101" {
		t.Fatalf("n1 replicas = %v, want two parsed replica addresses", n.Replicas)
	}
	if n2, _ := m.NodeByID("n2"); len(n2.Replicas) != 0 {
		t.Fatalf("n2 replicas = %v, want none", n2.Replicas)
	}

	if _, err := ParseNodes([]string{"n1=127.0.0.1:7001:0-1023/"}); err == nil {
		t.Error("empty replica suffix did not fail")
	}
	if _, err := ParseNodes([]string{"n1=127.0.0.1:7001:0-1023/,127.0.0.1:7101"}); err == nil {
		t.Error("empty replica in list did not fail")
	}
}

func TestMigrationStateString(t *testing.T) {
	for state, want := range map[MigrationState]string{
		StateNone: "stable", StateMigrating: "migrating", StateImporting: "importing",
	} {
		if got := state.String(); got != want {
			t.Errorf("state %d String() = %q, want %q", state, got, want)
		}
	}
}
