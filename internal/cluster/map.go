package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Range is an inclusive slot interval.
type Range struct {
	Start, End uint16
}

// String renders the range in config syntax ("12-340", or "12" when the
// range is a single slot).
func (r Range) String() string {
	if r.Start == r.End {
		return strconv.Itoa(int(r.Start))
	}
	return fmt.Sprintf("%d-%d", r.Start, r.End)
}

// Node is one primary in the cluster topology.
type Node struct {
	// ID is the operator-chosen node name ("n1").
	ID string
	// Addr is the node's client-facing host:port.
	Addr string
	// Ranges are the slot intervals the node owns.
	Ranges []Range
	// Replicas are the client-facing addresses of the replicas attached to
	// this primary (possibly empty). Replicas serve reads and are the
	// promotion candidates when the primary dies; they own no slots of
	// their own.
	Replicas []string
}

// Map is an immutable assignment of every slot to exactly one node. Build
// one with NewMap or ParseNodes; a nil Map means cluster mode is off.
type Map struct {
	nodes []Node
	owner [NumSlots]int // slot -> index into nodes
}

// NewMap validates and indexes a topology: every slot in [0, NumSlots)
// must be owned by exactly one node — a gap would silently drop a shard
// of the keyspace, an overlap would split-brain it.
func NewMap(nodes []Node) (*Map, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	m := &Map{nodes: append([]Node(nil), nodes...)}
	for i := range m.owner {
		m.owner[i] = -1
	}
	seenID := make(map[string]bool, len(nodes))
	seenAddr := make(map[string]bool, len(nodes))
	for ni, n := range m.nodes {
		if n.ID == "" || n.Addr == "" {
			return nil, fmt.Errorf("cluster: node %d needs both id and addr", ni)
		}
		if seenID[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		if seenAddr[n.Addr] {
			return nil, fmt.Errorf("cluster: duplicate node addr %q", n.Addr)
		}
		seenID[n.ID], seenAddr[n.Addr] = true, true
		if len(n.Ranges) == 0 {
			return nil, fmt.Errorf("cluster: node %q owns no slots", n.ID)
		}
		for _, rep := range n.Replicas {
			if !strings.Contains(rep, ":") {
				return nil, fmt.Errorf("cluster: node %q: replica address %q is not host:port", n.ID, rep)
			}
		}
		for _, r := range n.Ranges {
			if r.Start > r.End || int(r.End) >= NumSlots {
				return nil, fmt.Errorf("cluster: node %q: invalid range %s (slots are 0-%d)",
					n.ID, r, NumSlots-1)
			}
			for s := int(r.Start); s <= int(r.End); s++ {
				if prev := m.owner[s]; prev >= 0 {
					return nil, fmt.Errorf("cluster: slot %d owned by both %q and %q",
						s, m.nodes[prev].ID, n.ID)
				}
				m.owner[s] = ni
			}
		}
	}
	for s, o := range m.owner {
		if o < 0 {
			return nil, fmt.Errorf("cluster: slot %d is unassigned (the map must cover all %d slots)",
				s, NumSlots)
		}
	}
	return m, nil
}

// ParseNodes builds a Map from static config specs of the form
//
//	id=host:port:slots[/replica,replica,...]
//
// where slots is a comma-separated list of inclusive ranges ("0-341" or
// single slots "512") and the optional suffix after "/" lists the
// host:port addresses of replicas attached to the primary, e.g.
// "n1=127.0.0.1:7001:0-341,1000-1023/127.0.0.1:7101". One spec per node;
// together they must cover every slot exactly once.
func ParseNodes(specs []string) (*Map, error) {
	nodes := make([]Node, 0, len(specs))
	for _, spec := range specs {
		id, rest, ok := strings.Cut(spec, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("cluster: bad node spec %q (want id=host:port:slots[/replicas])", spec)
		}
		// Replica addresses contain colons too, so peel the "/replicas"
		// suffix off before locating the slot list.
		var replicas []string
		if main, reps, hasReps := strings.Cut(rest, "/"); hasReps {
			rest = main
			for _, rep := range strings.Split(reps, ",") {
				if rep == "" {
					return nil, fmt.Errorf("cluster: bad node spec %q: empty replica address", spec)
				}
				replicas = append(replicas, rep)
			}
		}
		// The address itself contains a colon, so the slot list is
		// everything after the last one.
		cut := strings.LastIndexByte(rest, ':')
		if cut <= 0 || cut == len(rest)-1 {
			return nil, fmt.Errorf("cluster: bad node spec %q (want id=host:port:slots[/replicas])", spec)
		}
		addr, slotSpec := rest[:cut], rest[cut+1:]
		if !strings.Contains(addr, ":") {
			return nil, fmt.Errorf("cluster: bad node spec %q: address %q is not host:port", spec, addr)
		}
		ranges, err := parseRanges(slotSpec)
		if err != nil {
			return nil, fmt.Errorf("cluster: node spec %q: %w", spec, err)
		}
		nodes = append(nodes, Node{ID: id, Addr: addr, Ranges: ranges, Replicas: replicas})
	}
	return NewMap(nodes)
}

func parseRanges(spec string) ([]Range, error) {
	var out []Range
	for _, part := range strings.Split(spec, ",") {
		lo, hi, isRange := strings.Cut(part, "-")
		start, err := strconv.ParseUint(lo, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad slot %q", part)
		}
		end := start
		if isRange {
			if end, err = strconv.ParseUint(hi, 10, 16); err != nil {
				return nil, fmt.Errorf("bad slot range %q", part)
			}
		}
		out = append(out, Range{Start: uint16(start), End: uint16(end)})
	}
	return out, nil
}

// NodeForSlot returns the node owning slot s.
func (m *Map) NodeForSlot(s uint16) Node { return m.nodes[m.owner[s%NumSlots]] }

// NodeForKey returns the node owning the key's slot.
func (m *Map) NodeForKey(key string) Node { return m.NodeForSlot(Slot(key)) }

// NodeByID looks a node up by its operator-chosen id.
func (m *Map) NodeByID(id string) (Node, bool) {
	for _, n := range m.nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Nodes returns the topology in declaration order. The slice is a copy.
func (m *Map) Nodes() []Node { return append([]Node(nil), m.nodes...) }

// EvenSplit builds the ranges for a NumSlots space divided as evenly as
// possible over n nodes: the canonical topology tests, examples and quick
// deployments use. Node i of n gets the i-th contiguous chunk.
func EvenSplit(n int) [][]Range {
	out := make([][]Range, n)
	per := NumSlots / n
	extra := NumSlots % n
	start := 0
	for i := 0; i < n; i++ {
		size := per
		if i < extra {
			size++
		}
		out[i] = []Range{{Start: uint16(start), End: uint16(start + size - 1)}}
		start += size
	}
	return out
}

// SlotRanges renders every node's ranges sorted by start slot, the shape
// CLUSTER SLOTS serves: one (Range, Node) pair per contiguous interval.
type SlotRange struct {
	Range Range
	Node  Node
}

// withOwner derives a new Map identical to m except that slot is owned by
// nodes[toIdx], with every node's Ranges rebuilt from the new assignment.
// Unlike NewMap it tolerates a node ending up with zero slots — migrating
// the last slot off a node is exactly how a drain finishes.
func (m *Map) withOwner(slot uint16, toIdx int) *Map {
	next := &Map{nodes: append([]Node(nil), m.nodes...), owner: m.owner}
	next.owner[slot%NumSlots] = toIdx
	next.rebuildRanges()
	return next
}

// withAddr derives a new Map with node id's address replaced (the failover
// re-point: a promoted replica takes over its dead primary's identity) and
// the promoted address removed from the node's replica list.
func (m *Map) withAddr(id, addr string) (*Map, bool) {
	next := &Map{nodes: append([]Node(nil), m.nodes...), owner: m.owner}
	for i := range next.nodes {
		if next.nodes[i].ID != id {
			continue
		}
		next.nodes[i].Addr = addr
		var reps []string
		for _, rep := range next.nodes[i].Replicas {
			if rep != addr {
				reps = append(reps, rep)
			}
		}
		next.nodes[i].Replicas = reps
		return next, true
	}
	return nil, false
}

// rebuildRanges recomputes every node's contiguous Ranges from the owner
// array, so derived maps keep Ranges and owner consistent.
func (m *Map) rebuildRanges() {
	for i := range m.nodes {
		m.nodes[i].Ranges = nil
	}
	start := 0
	for s := 1; s <= NumSlots; s++ {
		if s == NumSlots || m.owner[s] != m.owner[start] {
			ni := m.owner[start]
			m.nodes[ni].Ranges = append(m.nodes[ni].Ranges,
				Range{Start: uint16(start), End: uint16(s - 1)})
			start = s
		}
	}
}

// SlotRanges lists every contiguous owned interval, sorted by start slot.
func (m *Map) SlotRanges() []SlotRange {
	var out []SlotRange
	for _, n := range m.nodes {
		for _, r := range n.Ranges {
			out = append(out, SlotRange{Range: r, Node: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Range.Start < out[j].Range.Start })
	return out
}
