package cluster

// CRC16-CCITT (XModem variant): polynomial 0x1021, zero initial value, no
// reflection, no final XOR. This is the exact checksum Redis Cluster uses
// for key-to-slot hashing, kept bit-compatible so operators can reason
// about placement with familiar tooling (redis-cli CLUSTER KEYSLOT agrees
// with ours modulo the slot count).

var crc16Table [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crc16Table[i] = crc
	}
}

// crc16 computes the CCITT/XModem checksum of data.
func crc16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}
