package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/cluster"
	"gdprstore/internal/core"
	"gdprstore/pkg/gdprkv"
)

// startCluster boots n compliant primaries over real TCP, builds an
// even-split slot map over their addresses, and enables cluster mode on
// every node. Node i is named "n<i+1>".
func startCluster(t *testing.T, n int) ([]*Server, []*core.Store, *cluster.Map) {
	t.Helper()
	cfg := core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true}
	srvs := make([]*Server, n)
	stores := make([]*core.Store, n)
	nodes := make([]cluster.Node, n)
	splits := cluster.EvenSplit(n)
	for i := 0; i < n; i++ {
		st, err := core.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		srv, err := Listen("127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i], stores[i] = srv, st
		nodes[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: srv.Addr(), Ranges: splits[i]}
	}
	m, err := cluster.NewMap(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range srvs {
		if err := srv.EnableCluster(ClusterConfig{Self: nodes[i].ID, Map: m}); err != nil {
			t.Fatal(err)
		}
	}
	return srvs, stores, m
}

// nodeClient dials a plain (non-cluster) single-connection client to one
// node, for talking to that node and no other.
func nodeClient(t *testing.T, addr string) *gdprkv.Client {
	t.Helper()
	c, err := gdprkv.Dial(context.Background(), addr, gdprkv.WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// clusterClient dials a cluster-aware client bootstrapped from the first
// node.
func clusterClient(t *testing.T, srvs []*Server) *gdprkv.Client {
	t.Helper()
	seeds := make([]string, 0, len(srvs)-1)
	for _, s := range srvs[1:] {
		seeds = append(seeds, s.Addr())
	}
	c, err := gdprkv.Dial(context.Background(), srvs[0].Addr(), gdprkv.WithCluster(seeds...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// ownerOn finds an owner name whose slot is owned by the given node.
func ownerOn(t *testing.T, m *cluster.Map, nodeID string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		o := fmt.Sprintf("owner%05d", i)
		if m.NodeForKey(o).ID == nodeID {
			return o
		}
	}
	t.Fatalf("no owner hashes to node %s", nodeID)
	return ""
}

func TestClusterIntrospection(t *testing.T) {
	srvs, _, m := startCluster(t, 3)
	ctx := context.Background()
	c := nodeClient(t, srvs[0].Addr())

	v, err := c.Do(ctx, "CLUSTER", "SLOTS")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Array) != 3 {
		t.Fatalf("CLUSTER SLOTS entries = %d, want 3", len(v.Array))
	}
	covered := 0
	for _, e := range v.Array {
		covered += int(e.Array[1].Int-e.Array[0].Int) + 1
	}
	if covered != cluster.NumSlots {
		t.Fatalf("CLUSTER SLOTS cover %d slots, want %d", covered, cluster.NumSlots)
	}

	kv, err := c.Do(ctx, "CLUSTER", "KEYSLOT", "pd:{alice}:email")
	if err != nil {
		t.Fatal(err)
	}
	if uint16(kv.Int) != cluster.Slot("alice") {
		t.Fatalf("KEYSLOT tagged = %d, want owner slot %d", kv.Int, cluster.Slot("alice"))
	}

	id, err := c.Do(ctx, "CLUSTER", "MYID")
	if err != nil || id.Text() != "n1" {
		t.Fatalf("MYID = %q, %v", id.Text(), err)
	}

	info, err := c.Info(ctx, "cluster")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cluster_enabled:1", "cluster_known_nodes:3", "cluster_self:n1",
		"cluster_slots:1024"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO cluster missing %q:\n%s", want, info)
		}
	}
	if _, ok := m.NodeByID("n3"); !ok {
		t.Fatal("map lost a node")
	}
}

// TestClusterMovedAndCrossSlot drives mis-routed and mixed-slot commands
// at a single node and checks the Redis-shaped rejections.
func TestClusterMovedAndCrossSlot(t *testing.T) {
	srvs, _, m := startCluster(t, 3)
	ctx := context.Background()
	c := nodeClient(t, srvs[0].Addr())

	// A key owned by another node is refused with MOVED naming the owner.
	foreign := ownerOn(t, m, "n2")
	err := c.Set(ctx, foreign, []byte("v"))
	if !errors.Is(err, gdprkv.ErrMoved) {
		t.Fatalf("mis-routed SET err = %v, want ErrMoved", err)
	}
	var se *gdprkv.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Message, m.NodeForKey(foreign).Addr) {
		t.Fatalf("MOVED reply %v does not name the owner %s", err, m.NodeForKey(foreign).Addr)
	}

	// A batch spanning slots is refused with CROSSSLOT...
	local1, local2 := ownerOn(t, m, "n1"), ownerOn(t, m, "n2")
	err = c.MSet(ctx, []string{local1, local2}, [][]byte{[]byte("1"), []byte("2")})
	if !errors.Is(err, gdprkv.ErrCrossSlot) {
		t.Fatalf("cross-slot MSET err = %v, want ErrCrossSlot", err)
	}
	// ...while owner-tagged keys co-locate and pass.
	tagged := []string{"pd:{" + local1 + "}:a", "pd:{" + local1 + "}:b"}
	if err := c.MSet(ctx, tagged, [][]byte{[]byte("1"), []byte("2")}); err != nil {
		t.Fatalf("same-slot MSET: %v", err)
	}

	// GMPUT cross-slot is caught too (key extractor parses the pair count).
	_, err = c.Do(ctx, "GMPUT", "2", local1, "v1", local2, "v2", "OWNER", "x")
	if !errors.Is(err, gdprkv.ErrCrossSlot) {
		t.Fatalf("cross-slot GMPUT err = %v, want ErrCrossSlot", err)
	}
}

// TestClusterClientRouting checks the cluster client spreads keys across
// all primaries and reassembles split batches in order.
func TestClusterClientRouting(t *testing.T) {
	srvs, _, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	// One owner per node, several records each, owner-tagged.
	owners := []string{ownerOn(t, m, "n1"), ownerOn(t, m, "n2"), ownerOn(t, m, "n3")}
	var keys []string
	for _, o := range owners {
		for r := 0; r < 4; r++ {
			k := fmt.Sprintf("pd:{%s}:rec%d", o, r)
			keys = append(keys, k)
			if err := c.GPut(ctx, k, []byte(k+"-val"), gdprkv.PutOptions{
				Owner: o, Purposes: []string{"service"},
			}); err != nil {
				t.Fatalf("GPut %s: %v", k, err)
			}
		}
	}
	// Every node served writes (the keyspace is genuinely partitioned).
	for i, srv := range srvs {
		if srv.CommandStats().Snapshots()["GPUT"].Count == 0 {
			t.Errorf("node %d served no GPUTs", i+1)
		}
	}
	// Reads route to the right owners with zero redirects.
	for _, k := range keys {
		v, err := c.GGet(ctx, k)
		if err != nil || string(v) != k+"-val" {
			t.Fatalf("GGet %s = %q, %v", k, v, err)
		}
	}
	// A batch read spanning all three nodes reassembles positionally.
	got, err := c.GMGet(ctx, keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g.Err != nil || string(g.Value) != keys[i]+"-val" {
			t.Fatalf("GMGet[%d] = %q, %v", i, g.Value, g.Err)
		}
	}
	// Vanilla MGet splits the same way.
	if err := c.MSet(ctx, []string{owners[0], owners[1]}, [][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Fatal(err)
	}
	vals, err := c.MGet(ctx, owners[1], owners[0], "pd:{missing}:x")
	if err != nil || string(vals[0]) != "b" || string(vals[1]) != "a" || vals[2] != nil {
		t.Fatalf("MGet = %q, %v", vals, err)
	}
	if st := c.Stats(); st.Redirects != 0 {
		t.Fatalf("bootstrapped client followed %d redirects, want 0", st.Redirects)
	}
}

// TestClusterClientRedirectRefresh re-points the fleet's slot map under a
// live client: the next touch of a moved slot is redirected exactly once,
// the client refreshes its map from the redirect, and subsequent calls
// route straight to the new owner.
func TestClusterClientRedirectRefresh(t *testing.T) {
	srvs, _, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	owner := ownerOn(t, m, "n3")
	key := "pd:{" + owner + "}:rec"
	if err := c.Set(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Reassign: swap n2's and n3's ranges fleet-wide (a static map
	// rollout). The owner's slot now lives on n2; n3 still holds the data
	// bytes, so move them so the read has something to find.
	nodes := m.Nodes()
	nodes[1].Ranges, nodes[2].Ranges = nodes[2].Ranges, nodes[1].Ranges
	m2, err := cluster.NewMap(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range srvs {
		if err := srv.EnableCluster(ClusterConfig{Self: nodes[i].ID, Map: m2}); err != nil {
			t.Fatal(err)
		}
	}
	srvs[1].Store().Engine().Set(key, []byte("v1"))

	// The stale client hits old owner n3, gets MOVED to n2, follows it
	// transparently — exactly one redirect — and refreshes its map.
	v, err := c.Get(ctx, key)
	if err != nil || string(v) != "v1" {
		t.Fatalf("redirected GET = %q, %v", v, err)
	}
	st := c.Stats()
	if st.Redirects != 1 {
		t.Fatalf("redirects = %d, want exactly 1", st.Redirects)
	}
	if st.SlotRefreshes != 1 {
		t.Fatalf("slot refreshes = %d, want 1", st.SlotRefreshes)
	}
	// The refreshed map routes the second read directly: no new redirect.
	if _, err := c.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Redirects != 1 {
		t.Fatalf("refreshed client still redirected: %d", st.Redirects)
	}
}

// TestClusterRightsFanout spreads one subject's records over every node
// (untagged keys), then exercises the cluster-wide right of access and
// erasure through a single node.
func TestClusterRightsFanout(t *testing.T) {
	srvs, stores, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	// Find untagged keys landing on each of the three nodes.
	keyOn := func(nodeID string) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("dave-doc-%d", i)
			if m.NodeForKey(k).ID == nodeID {
				return k
			}
		}
	}
	keys := []string{keyOn("n1"), keyOn("n2"), keyOn("n3")}
	for _, k := range keys {
		if err := c.GPut(ctx, k, []byte("dave-"+k), gdprkv.PutOptions{
			Owner: "dave", Purposes: []string{"service"},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// GETUSER through any single node aggregates all three nodes.
	recs, err := nodeClient(t, srvs[0].Addr()).GetUser(ctx, "dave")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("cluster GETUSER returned %d records, want 3", len(recs))
	}
	// EXPORTUSER merges every node's records into one Art. 20 payload.
	exp, err := c.ExportUser(ctx, "dave")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Format  string            `json:"format"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(exp, &payload); err != nil {
		t.Fatalf("export payload: %v", err)
	}
	if payload.Format != "gdprstore-export/v1" || len(payload.Records) != 3 {
		t.Fatalf("cluster export = format %q with %d records, want 3", payload.Format, len(payload.Records))
	}
	// OBJECT applies the Art. 21 objection on every node, so untagged
	// records elsewhere are covered too.
	if err := c.Object(ctx, "dave", "service"); err != nil {
		t.Fatal(err)
	}
	for i, st := range stores {
		objs := st.Objections("dave")
		if len(objs) != 1 || objs[0] != "service" {
			t.Errorf("node %d objections = %v, want [service]", i+1, objs)
		}
	}
	if err := c.Unobject(ctx, "dave", "service"); err != nil {
		t.Fatal(err)
	}
	for i, st := range stores {
		if objs := st.Objections("dave"); len(objs) != 0 {
			t.Errorf("node %d objections after withdrawal = %v", i+1, objs)
		}
	}

	// FORGETUSER through the cluster client erases everywhere and reports
	// the cluster-wide count.
	n, err := c.ForgetUser(ctx, "dave")
	if err != nil || n != 3 {
		t.Fatalf("cluster FORGETUSER = %d, %v; want 3", n, err)
	}
	for i, st := range stores {
		for _, k := range keys {
			if st.Engine().Exists(k) {
				t.Errorf("node %d still holds %s after cluster erasure", i+1, k)
			}
		}
		// Every node independently evidences the erasure (Art. 30).
		recs, err := st.Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: "dave"})
		if err != nil || len(recs) == 0 {
			t.Errorf("node %d has no FORGETUSER audit record (%v)", i+1, err)
		}
	}
	// Per-node GETUSERDATA (the GDPRbench alias) reports the subject gone.
	for _, srv := range srvs {
		v, err := nodeClient(t, srv.Addr()).Do(ctx, "GETUSERDATA", "dave")
		if err != nil || len(v.Array) != 0 {
			t.Fatalf("post-erasure GETUSERDATA on %s = %d records, %v", srv.Addr(), len(v.Array), err)
		}
	}
}

// TestClusterForgetWithNodeDown kills one primary and checks erasure is
// all-or-reported: the coordinator returns CLUSTERDOWN naming the dead
// node and audits the partial outcome instead of claiming success.
func TestClusterForgetWithNodeDown(t *testing.T) {
	srvs, stores, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	keyOn := func(nodeID string) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("erin-doc-%d", i)
			if m.NodeForKey(k).ID == nodeID {
				return k
			}
		}
	}
	for _, nid := range []string{"n1", "n2", "n3"} {
		if err := c.GPut(ctx, keyOn(nid), []byte("erin-data"), gdprkv.PutOptions{
			Owner: "erin", Purposes: []string{"service"},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Kill n3, then ask n1 directly for cluster-wide erasure.
	srvs[2].Close()
	n1 := nodeClient(t, srvs[0].Addr())
	_, err := n1.Do(ctx, "FORGETUSER", "erin")
	if !errors.Is(err, gdprkv.ErrClusterDown) {
		t.Fatalf("fan-out with node down: err = %v, want ErrClusterDown", err)
	}
	if !strings.Contains(err.Error(), "n3") {
		t.Fatalf("error does not name the failed node: %v", err)
	}
	// The coordinator audited the partial outcome.
	recs, qerr := stores[0].Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: "erin"})
	if qerr != nil {
		t.Fatal(qerr)
	}
	audited := false
	for _, r := range recs {
		if r.Outcome == audit.OutcomeError && strings.Contains(r.Detail, "n3") {
			audited = true
		}
	}
	if !audited {
		t.Fatalf("no audit record of the partial fan-out; trail: %+v", recs)
	}
	// GETUSER is equally honest about the gap.
	if _, err := n1.GetUser(ctx, "erin"); !errors.Is(err, gdprkv.ErrClusterDown) {
		t.Fatalf("GETUSER with node down: err = %v, want ErrClusterDown", err)
	}
}

// TestClusterFanoutLocalRefusalKeepsWireCode: a refusal by the
// coordinator's own store must surface with its true code (DENIED), not
// be masked as CLUSTERDOWN — callers branch on the error class and the
// class must not depend on the deployment topology.
func TestClusterFanoutLocalRefusalKeepsWireCode(t *testing.T) {
	srvs, stores, _ := startCluster(t, 3)
	ctx := context.Background()
	// Enforce ACLs on the coordinator: a subject may not erase another
	// subject's data.
	stores[0].ACL().SetEnforce(true)
	stores[0].ACL().AddPrincipal(acl.Principal{ID: "mallory", Role: acl.RoleSubject})
	stores[0].ACL().AddPrincipal(acl.Principal{ID: "victim", Role: acl.RoleSubject})

	c := nodeClient(t, srvs[0].Addr())
	if _, err := c.Do(ctx, "AUTH", "mallory"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Do(ctx, "FORGETUSER", "victim")
	if !errors.Is(err, gdprkv.ErrDenied) {
		t.Fatalf("local refusal surfaced as %v, want ErrDenied", err)
	}
	if errors.Is(err, gdprkv.ErrClusterDown) {
		t.Fatalf("local refusal masked as CLUSTERDOWN: %v", err)
	}
}

// TestClusterPipelineSplitsAndReassembles queues a pipeline whose keys
// span all three primaries: Exec must split it per node, run the node
// exchanges, and stitch the replies back in queue order.
func TestClusterPipelineSplitsAndReassembles(t *testing.T) {
	srvs, _, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	owners := []string{ownerOn(t, m, "n1"), ownerOn(t, m, "n2"), ownerOn(t, m, "n3")}
	p := c.Pipeline()
	// Interleave nodes deliberately so per-node grouping must reorder and
	// the positional mapping must undo it.
	for r := 0; r < 3; r++ {
		for _, o := range owners {
			p.Set(fmt.Sprintf("{%s}:r%d", o, r), []byte(fmt.Sprintf("%s-%d", o, r)))
		}
	}
	for r := 0; r < 3; r++ {
		for _, o := range owners {
			p.Get(fmt.Sprintf("{%s}:r%d", o, r))
		}
	}
	p.Get("{" + owners[0] + "}:missing")
	res, err := p.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 19 {
		t.Fatalf("len(res) = %d, want 19", len(res))
	}
	for i := 0; i < 9; i++ {
		if res[i].Err != nil {
			t.Fatalf("set res[%d].Err = %v", i, res[i].Err)
		}
	}
	for r := 0; r < 3; r++ {
		for j, o := range owners {
			i := 9 + r*3 + j
			v, err := res[i].Bytes()
			if err != nil || string(v) != fmt.Sprintf("%s-%d", o, r) {
				t.Fatalf("res[%d] = %q, %v; want %s-%d — cluster reassembly misordered", i, v, err, o, r)
			}
		}
	}
	if !errors.Is(res[18].Err, gdprkv.ErrNotFound) {
		t.Fatalf("res[18].Err = %v, want ErrNotFound", res[18].Err)
	}
	// Every node served its share of the split.
	for i, srv := range srvs {
		if srv.CommandStats().Snapshots()["SET"].Count == 0 {
			t.Errorf("node %d served no pipelined SETs", i+1)
		}
	}
}

// TestClusterPipelineFollowsMovedMidPipeline re-points a slot between
// queueing and Exec: the op answered with MOVED must be retried against
// the new owner individually while every other slot keeps its reply.
func TestClusterPipelineFollowsMovedMidPipeline(t *testing.T) {
	srvs, _, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	stay := ownerOn(t, m, "n1")
	move := ownerOn(t, m, "n3")
	stayKey, moveKey := "{"+stay+"}:k", "{"+move+"}:k"
	if err := c.Set(ctx, stayKey, []byte("stay")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(ctx, moveKey, []byte("moved")); err != nil {
		t.Fatal(err)
	}

	// Swap n2's and n3's ranges fleet-wide; the client's map is now stale
	// for moveKey. Copy the bytes so the new owner can serve the read.
	nodes := m.Nodes()
	nodes[1].Ranges, nodes[2].Ranges = nodes[2].Ranges, nodes[1].Ranges
	m2, err := cluster.NewMap(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range srvs {
		if err := srv.EnableCluster(ClusterConfig{Self: nodes[i].ID, Map: m2}); err != nil {
			t.Fatal(err)
		}
	}
	srvs[1].Store().Engine().Set(moveKey, []byte("moved"))

	res, err := c.Pipeline().Get(stayKey).Get(moveKey).Get(stayKey).Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"stay", "moved", "stay"} {
		v, err := res[i].Bytes()
		if err != nil || string(v) != want {
			t.Fatalf("res[%d] = %q, %v; want %q", i, v, err, want)
		}
	}
	st := c.Stats()
	if st.Redirects == 0 {
		t.Fatal("pipeline followed no redirect despite a stale slot map")
	}
}
