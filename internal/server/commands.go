package server

import (
	"encoding/json"
	"strconv"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/internal/store"
)

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// cmdSet implements SET key value [EX seconds] [KEEPTTL] against the raw
// engine (the non-GDPR path, used by baseline benchmarks).
func (s *Server) cmdSet(a [][]byte) resp.Value {
	if len(a) < 2 {
		return wrongArity("SET")
	}
	key, val := string(a[0]), a[1]
	var ex time.Duration
	keepTTL := false
	for i := 2; i < len(a); i++ {
		switch strings.ToUpper(string(a[i])) {
		case "EX":
			if i+1 >= len(a) {
				return resp.ErrorValue("ERR syntax error")
			}
			secs, err := strconv.ParseInt(string(a[i+1]), 10, 64)
			if err != nil || secs <= 0 {
				return resp.ErrorValue("ERR invalid expire time")
			}
			ex = time.Duration(secs) * time.Second
			i++
		case "KEEPTTL":
			keepTTL = true
		default:
			return resp.ErrorValue("ERR syntax error")
		}
	}
	switch {
	case ex > 0:
		s.store.Engine().SetEX(key, val, ex)
	case keepTTL:
		s.store.Engine().SetKeepTTL(key, val)
	default:
		s.store.Engine().Set(key, val)
	}
	return resp.SimpleStringValue("OK")
}

func cmdTTLReply(s *Server, key string) resp.Value {
	d, st := s.store.Engine().TTL(key)
	switch st {
	case store.TTLMissing:
		return resp.IntegerValue(-2)
	case store.TTLNone:
		return resp.IntegerValue(-1)
	default:
		return resp.IntegerValue(int64(d / time.Second))
	}
}

// cmdScan implements SCAN cursor [MATCH pattern] [COUNT n].
func (s *Server) cmdScan(a [][]byte) resp.Value {
	if len(a) < 1 {
		return wrongArity("SCAN")
	}
	cursor, err := strconv.ParseUint(string(a[0]), 10, 64)
	if err != nil {
		return resp.ErrorValue("ERR invalid cursor")
	}
	pattern := "*"
	count := 10
	for i := 1; i < len(a); i++ {
		switch strings.ToUpper(string(a[i])) {
		case "MATCH":
			if i+1 >= len(a) {
				return resp.ErrorValue("ERR syntax error")
			}
			pattern = string(a[i+1])
			i++
		case "COUNT":
			if i+1 >= len(a) {
				return resp.ErrorValue("ERR syntax error")
			}
			n, err := strconv.Atoi(string(a[i+1]))
			if err != nil || n <= 0 {
				return resp.ErrorValue("ERR invalid count")
			}
			count = n
			i++
		default:
			return resp.ErrorValue("ERR syntax error")
		}
	}
	keys, next := s.store.Engine().Scan(cursor, pattern, count)
	return resp.ArrayValue(
		resp.BulkStringValue(strconv.FormatUint(next, 10)),
		stringsArray(keys),
	)
}

// cmdGPut implements
//
//	GPUT key value OWNER o [PURPOSES p1,p2] [TTL secs] [ORIGIN x]
//	     [LOCATION l] [SHAREDWITH a,b] [AUTODECIDE]
func (s *Server) cmdGPut(ctx core.Ctx, a [][]byte) resp.Value {
	if len(a) < 2 {
		return wrongArity("GPUT")
	}
	key, val := string(a[0]), a[1]
	var opts core.PutOptions
	for i := 2; i < len(a); i++ {
		tok := strings.ToUpper(string(a[i]))
		need := func() bool { return i+1 < len(a) }
		switch tok {
		case "OWNER":
			if !need() {
				return resp.ErrorValue("ERR syntax error")
			}
			opts.Owner = string(a[i+1])
			i++
		case "PURPOSES":
			if !need() {
				return resp.ErrorValue("ERR syntax error")
			}
			opts.Purposes = splitNonEmpty(string(a[i+1]))
			i++
		case "TTL":
			if !need() {
				return resp.ErrorValue("ERR syntax error")
			}
			secs, err := strconv.ParseInt(string(a[i+1]), 10, 64)
			if err != nil || secs <= 0 {
				return resp.ErrorValue("ERR invalid ttl")
			}
			opts.TTL = time.Duration(secs) * time.Second
			i++
		case "ORIGIN":
			if !need() {
				return resp.ErrorValue("ERR syntax error")
			}
			opts.Origin = string(a[i+1])
			i++
		case "LOCATION":
			if !need() {
				return resp.ErrorValue("ERR syntax error")
			}
			opts.Location = string(a[i+1])
			i++
		case "SHAREDWITH":
			if !need() {
				return resp.ErrorValue("ERR syntax error")
			}
			opts.SharedWith = splitNonEmpty(string(a[i+1]))
			i++
		case "AUTODECIDE":
			opts.AutomatedDecisions = true
		default:
			return resp.ErrorValue("ERR syntax error near '" + string(a[i]) + "'")
		}
	}
	if err := s.store.Put(ctx, key, val, opts); err != nil {
		return errReply(err)
	}
	return resp.SimpleStringValue("OK")
}

func splitNonEmpty(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cmdACL implements
//
//	ACL ADDPRINCIPAL id subject|processor|controller|regulator
//	ACL DELPRINCIPAL id
//	ACL GRANT principal purpose [OWNER o] [TTL secs]
//	ACL REVOKE principal purpose [OWNER o]
func (s *Server) cmdACL(a [][]byte) resp.Value {
	if len(a) < 1 {
		return wrongArity("ACL")
	}
	sub := strings.ToUpper(string(a[0]))
	rest := a[1:]
	switch sub {
	case "ADDPRINCIPAL":
		if len(rest) != 2 {
			return wrongArity("ACL ADDPRINCIPAL")
		}
		role, ok := parseRole(string(rest[1]))
		if !ok {
			return resp.ErrorValue("ERR unknown role '" + string(rest[1]) + "'")
		}
		s.store.ACL().AddPrincipal(acl.Principal{ID: string(rest[0]), Role: role})
		return resp.SimpleStringValue("OK")
	case "DELPRINCIPAL":
		if len(rest) != 1 {
			return wrongArity("ACL DELPRINCIPAL")
		}
		s.store.ACL().RemovePrincipal(string(rest[0]))
		return resp.SimpleStringValue("OK")
	case "GRANT":
		if len(rest) < 2 {
			return wrongArity("ACL GRANT")
		}
		g := acl.Grant{Principal: string(rest[0]), Purpose: string(rest[1])}
		for i := 2; i < len(rest); i++ {
			switch strings.ToUpper(string(rest[i])) {
			case "OWNER":
				if i+1 >= len(rest) {
					return resp.ErrorValue("ERR syntax error")
				}
				g.Owner = string(rest[i+1])
				i++
			case "TTL":
				if i+1 >= len(rest) {
					return resp.ErrorValue("ERR syntax error")
				}
				secs, err := strconv.ParseInt(string(rest[i+1]), 10, 64)
				if err != nil || secs <= 0 {
					return resp.ErrorValue("ERR invalid ttl")
				}
				g.Expires = time.Now().Add(time.Duration(secs) * time.Second)
				i++
			default:
				return resp.ErrorValue("ERR syntax error")
			}
		}
		if err := s.store.ACL().AddGrant(g); err != nil {
			return resp.ErrorValue("ERR " + err.Error())
		}
		return resp.SimpleStringValue("OK")
	case "REVOKE":
		if len(rest) < 2 {
			return wrongArity("ACL REVOKE")
		}
		owner := ""
		if len(rest) >= 4 && strings.ToUpper(string(rest[2])) == "OWNER" {
			owner = string(rest[3])
		}
		n := s.store.ACL().RevokeGrants(string(rest[0]), string(rest[1]), owner)
		return resp.IntegerValue(int64(n))
	default:
		return resp.ErrorValue("ERR unknown ACL subcommand '" + string(a[0]) + "'")
	}
}

func parseRole(s string) (acl.Role, bool) {
	switch strings.ToLower(s) {
	case "subject":
		return acl.RoleSubject, true
	case "processor":
		return acl.RoleProcessor, true
	case "controller":
		return acl.RoleController, true
	case "regulator":
		return acl.RoleRegulator, true
	default:
		return 0, false
	}
}

// cmdInfo reports server and store health in Redis INFO style.
func (s *Server) cmdInfo() resp.Value {
	var b strings.Builder
	cfg := s.store.Config()
	b.WriteString("# gdprstore\r\n")
	b.WriteString("compliant:" + strconv.FormatBool(cfg.Compliant) + "\r\n")
	b.WriteString("timing:" + cfg.Timing.String() + "\r\n")
	b.WriteString("capability:" + cfg.Capability.String() + "\r\n")
	b.WriteString("dbsize:" + strconv.Itoa(s.store.Engine().Len()) + "\r\n")
	b.WriteString("expires:" + strconv.Itoa(s.store.Engine().ExpireLen()) + "\r\n")
	b.WriteString("expired_total:" + strconv.FormatUint(s.store.Engine().ExpiredCount(), 10) + "\r\n")
	if l := s.store.Log(); l != nil {
		b.WriteString("aof_size:" + strconv.FormatInt(l.Size(), 10) + "\r\n")
		b.WriteString("aof_appends:" + strconv.FormatUint(l.Appends(), 10) + "\r\n")
		b.WriteString("aof_syncs:" + strconv.FormatUint(l.Syncs(), 10) + "\r\n")
	}
	if t := s.store.Trail(); t != nil {
		b.WriteString("audit_seq:" + strconv.FormatUint(t.Seq(), 10) + "\r\n")
		b.WriteString("audit_syncs:" + strconv.FormatUint(t.Syncs(), 10) + "\r\n")
	}
	return resp.BulkStringValue(b.String())
}
