package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/internal/store"
)

// This file registers every command in the table. Handlers return
// (resp.Value, error); errors are mapped to wire codes by errReply in one
// place, so the vanilla, GDPR and batch families emit consistent
// ERR/DENIED/POLICY/PURPOSEDENIED/ERASED/BASELINE prefixes.

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

func init() {
	// --- session / connection ---
	register(Command{Name: "PING", MinArgs: 0, MaxArgs: 1, Flags: FlagReadonly,
		Summary: "liveness probe; echoes an optional argument",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			if len(ctx.Args) == 1 {
				return resp.BulkValue(ctx.Args[0]), nil
			}
			return resp.SimpleStringValue("PONG"), nil
		}})
	register(Command{Name: "ECHO", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly,
		Summary: "echo the argument",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			return resp.BulkValue(ctx.Args[0]), nil
		}})
	register(Command{Name: "AUTH", MinArgs: 1, MaxArgs: 1,
		Summary: "set the connection's authenticated principal",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			ctx.Sess.actor = string(ctx.Args[0])
			return resp.SimpleStringValue("OK"), nil
		}})
	register(Command{Name: "PURPOSE", MinArgs: 1, MaxArgs: 1,
		Summary: "declare the connection's processing purpose (Art. 5)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			ctx.Sess.purpose = string(ctx.Args[0])
			return resp.SimpleStringValue("OK"), nil
		}})

	// --- vanilla engine surface (baseline benchmarks) ---
	register(Command{Name: "SET", MinArgs: 2, MaxArgs: -1, Flags: FlagWrite | FlagNoCompliance, Keys: keysFirst,
		Summary: "SET key value [EX seconds] [KEEPTTL] on the raw engine",
		Handler: cmdSet})
	register(Command{Name: "GET", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagNoCompliance, Keys: keysFirst,
		Summary: "read a raw value",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			v, ok := ctx.Srv.store.Engine().Get(string(ctx.Args[0]))
			if !ok {
				return resp.NullValue(), nil
			}
			return resp.BulkValue(v), nil
		}})
	register(Command{Name: "MSET", MinArgs: 2, MaxArgs: -1, Flags: FlagWrite | FlagNoCompliance, Keys: keysPairs,
		Summary: "MSET key value [key value ...]: batch write, one lock + one AOF record",
		Handler: cmdMSet})
	register(Command{Name: "MGET", MinArgs: 1, MaxArgs: -1, Flags: FlagReadonly | FlagNoCompliance, Keys: keysAll,
		Summary: "MGET key [key ...]: batch read, one lock acquisition",
		Handler: cmdMGet})
	register(Command{Name: "DEL", MinArgs: 1, MaxArgs: -1, Flags: FlagWrite | FlagNoCompliance, Keys: keysAll,
		Summary: "delete keys, returning how many existed",
		Handler: cmdDel})
	register(Command{Name: "UNLINK", MinArgs: 1, MaxArgs: -1, Flags: FlagWrite | FlagNoCompliance, Keys: keysAll,
		Summary: "alias of DEL (reclamation is synchronous either way)",
		Handler: cmdDel})
	register(Command{Name: "EXISTS", MinArgs: 1, MaxArgs: -1, Flags: FlagReadonly | FlagNoCompliance, Keys: keysAll,
		Summary: "count how many of the given keys exist",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			n := 0
			for _, k := range ctx.Args {
				if ctx.Srv.store.Engine().Exists(string(k)) {
					n++
				}
			}
			return resp.IntegerValue(int64(n)), nil
		}})
	register(Command{Name: "EXPIRE", MinArgs: 2, MaxArgs: 2, Flags: FlagWrite | FlagNoCompliance, Keys: keysFirst,
		Summary: "set a TTL in seconds",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			secs, err := strconv.ParseInt(string(ctx.Args[1]), 10, 64)
			if err != nil {
				return resp.Value{}, errors.New("value is not an integer")
			}
			if ctx.Srv.store.Engine().Expire(string(ctx.Args[0]), time.Duration(secs)*time.Second) {
				return resp.IntegerValue(1), nil
			}
			return resp.IntegerValue(0), nil
		}})
	register(Command{Name: "EXPIREAT", MinArgs: 2, MaxArgs: 2, Flags: FlagWrite | FlagNoCompliance, Keys: keysFirst,
		Summary: "set an absolute unix-seconds retention deadline",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			unix, err := strconv.ParseInt(string(ctx.Args[1]), 10, 64)
			if err != nil {
				return resp.Value{}, errors.New("value is not an integer")
			}
			if ctx.Srv.store.Engine().ExpireAt(string(ctx.Args[0]), time.Unix(unix, 0)) {
				return resp.IntegerValue(1), nil
			}
			return resp.IntegerValue(0), nil
		}})
	register(Command{Name: "PERSIST", MinArgs: 1, MaxArgs: 1, Flags: FlagWrite | FlagNoCompliance, Keys: keysFirst,
		Summary: "drop a key's TTL",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			if ctx.Srv.store.Engine().Persist(string(ctx.Args[0])) {
				return resp.IntegerValue(1), nil
			}
			return resp.IntegerValue(0), nil
		}})
	register(Command{Name: "TTL", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagNoCompliance, Keys: keysFirst,
		Summary: "remaining TTL in seconds (-1 none, -2 missing)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			d, st := ctx.Srv.store.Engine().TTL(string(ctx.Args[0]))
			switch st {
			case store.TTLMissing:
				return resp.IntegerValue(-2), nil
			case store.TTLNone:
				return resp.IntegerValue(-1), nil
			default:
				return resp.IntegerValue(int64(d / time.Second)), nil
			}
		}})
	register(Command{Name: "KEYS", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagNoCompliance,
		Summary: "glob-match the whole keyspace",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			keys := ctx.Srv.store.Engine().Keys(string(ctx.Args[0]))
			return stringsArray(visibleKeys(ctx.Srv.store, keys)), nil
		}})
	register(Command{Name: "SCAN", MinArgs: 1, MaxArgs: -1, Flags: FlagReadonly | FlagNoCompliance,
		Summary: "SCAN cursor [MATCH pattern] [COUNT n]: incremental keyspace iteration",
		Handler: cmdScan})
	register(Command{Name: "DBSIZE", MinArgs: 0, MaxArgs: 0, Flags: FlagReadonly | FlagNoCompliance,
		Summary: "number of live keys",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			return resp.IntegerValue(int64(ctx.Srv.store.Engine().Len())), nil
		}})
	register(Command{Name: "FLUSHALL", MinArgs: 0, MaxArgs: 0, Flags: FlagWrite | FlagAdmin | FlagNoCompliance,
		Summary: "remove every key (and all GDPR metadata)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			// Store-level flush: clears the engine AND the metadata index in
			// one cut, so the live primary agrees with replicas and with
			// replay (which both reset metadata on the FLUSHALL record).
			ctx.Srv.store.FlushAll()
			return resp.SimpleStringValue("OK"), nil
		}})
	register(Command{Name: "INFO", MinArgs: 0, MaxArgs: 1, Flags: FlagReadonly | FlagAdmin,
		// The summary regenerates from the section registry, so it can
		// never again go stale when a PR adds a section.
		Summary: "INFO [section]: server and store health, Redis INFO style (sections: " +
			strings.Join(InfoSectionNames(), ", ") + ")",
		Handler: cmdInfo})

	// --- GDPR command family (compliance path) ---
	register(Command{Name: "GPUT", MinArgs: 2, MaxArgs: -1, Flags: FlagWrite | FlagGDPR, Keys: keysFirst,
		Summary: "GPUT key value OWNER o [PURPOSES p,..] [TTL s] [ORIGIN x] [LOCATION l] [SHAREDWITH a,..] [AUTODECIDE]",
		Handler: cmdGPut})
	register(Command{Name: "GGET", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Keys: keysFirst,
		Summary: "read personal data under the session's actor and purpose",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			v, err := ctx.Srv.store.Get(ctx.Core, string(ctx.Args[0]))
			if err != nil {
				return resp.Value{}, err
			}
			return resp.BulkValue(v), nil
		}})
	register(Command{Name: "GDEL", MinArgs: 1, MaxArgs: 1, Flags: FlagWrite | FlagGDPR, Keys: keysFirst,
		Summary: "delete personal data (real-time timing compacts the AOF)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			if err := ctx.Srv.store.Delete(ctx.Core, string(ctx.Args[0])); err != nil {
				return resp.Value{}, err
			}
			return resp.IntegerValue(1), nil
		}})
	register(Command{Name: "GMPUT", MinArgs: 3, MaxArgs: -1, Flags: FlagWrite | FlagGDPR, Keys: keysGMPut,
		Summary: "GMPUT npairs k1 v1 ... kN vN [put options]: batch write with shared metadata, one AOF append + one audit record",
		Handler: cmdGMPut})
	register(Command{Name: "GMGET", MinArgs: 1, MaxArgs: -1, Flags: FlagReadonly | FlagGDPR, Keys: keysAll,
		Summary: "GMGET key [key ...]: batch compliance-path read; per-key errors reported in-array",
		Handler: cmdGMGet})
	register(Command{Name: "GETMETA", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Keys: keysFirst,
		Summary: "read a record's GDPR metadata as JSON",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			m, err := ctx.Srv.store.Metadata(ctx.Core, string(ctx.Args[0]))
			if err != nil {
				return resp.Value{}, err
			}
			return jsonValue(m)
		}})
	register(Command{Name: "GETUSER", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Fanout: true,
		Summary: "Art. 15 right of access: every record of a data subject (cluster-wide in cluster mode)",
		Handler: handleGetUserLocal})
	register(Command{Name: "GETUSERDATA", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Fanout: true,
		Summary: "alias of GETUSER (GDPRbench's name for the right of access)",
		Handler: handleGetUserLocal})
	register(Command{Name: "ACCESS", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Keys: keysFirst,
		Summary: "Art. 15 disclosure report (purposes, recipients, storage periods)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			rep, err := ctx.Srv.store.Access(ctx.Core, string(ctx.Args[0]))
			if err != nil {
				return resp.Value{}, err
			}
			return jsonValue(rep)
		}})
	register(Command{Name: "EXPORTUSER", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Fanout: true,
		Summary: "Art. 20 portability payload (JSON; merged cluster-wide in cluster mode)",
		Handler: handleExportLocal})
	register(Command{Name: "FORGETUSER", MinArgs: 1, MaxArgs: 1, Flags: FlagWrite | FlagGDPR, Fanout: true,
		Summary: "Art. 17 erasure of a data subject; returns records erased (cluster-wide in cluster mode)",
		Handler: handleForgetLocal})
	register(Command{Name: "OBJECT", MinArgs: 2, MaxArgs: 2, Flags: FlagWrite | FlagGDPR, Fanout: true,
		Summary: "Art. 21 objection: OBJECT owner purpose (applied on every node in cluster mode)",
		Handler: handleObjectLocal})
	register(Command{Name: "UNOBJECT", MinArgs: 2, MaxArgs: 2, Flags: FlagWrite | FlagGDPR, Fanout: true,
		Summary: "withdraw an Art. 21 objection (applied on every node in cluster mode)",
		Handler: handleUnobjectLocal})
	register(Command{Name: "OWNERKEYS", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR, Keys: keysFirst,
		Summary: "keys owned by a data subject (metadata index lookup)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			keys, err := ctx.Srv.store.OwnerKeys(ctx.Core, string(ctx.Args[0]))
			if err != nil {
				return resp.Value{}, err
			}
			return stringsArray(keys), nil
		}})
	register(Command{Name: "KEYSBYPURPOSE", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR,
		Summary: "keys processable under a purpose, objections applied",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			keys, err := ctx.Srv.store.KeysByPurpose(ctx.Core, string(ctx.Args[0]))
			if err != nil {
				return resp.Value{}, err
			}
			return stringsArray(keys), nil
		}})
	register(Command{Name: "BREACH", MinArgs: 2, MaxArgs: 2, Flags: FlagReadonly | FlagGDPR,
		Summary: "Art. 33/34 breach report over [from, to) (RFC3339 timestamps)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			from, err1 := time.Parse(time.RFC3339, string(ctx.Args[0]))
			to, err2 := time.Parse(time.RFC3339, string(ctx.Args[1]))
			if err1 != nil || err2 != nil {
				return resp.Value{}, errors.New("timestamps must be RFC3339")
			}
			rep, err := ctx.Srv.store.Breach(ctx.Core, from, to)
			if err != nil {
				return resp.Value{}, err
			}
			return jsonValue(rep)
		}})

	// --- operations ---
	register(Command{Name: "COMPACT", MinArgs: 0, MaxArgs: 0, Flags: FlagWrite | FlagAdmin,
		Summary: "force an AOF compaction now",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			if err := ctx.Srv.store.Compact(ctx.Core); err != nil {
				return resp.Value{}, err
			}
			return resp.SimpleStringValue("OK"), nil
		}})
	register(Command{Name: "MAINTAIN", MinArgs: 0, MaxArgs: 0, Flags: FlagWrite | FlagAdmin,
		Summary: "run one maintenance pass (ghost metadata, grants, deferred compaction)",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			st := ctx.Srv.store.Maintain()
			return resp.SimpleStringValue(fmt.Sprintf(
				"ghosts=%d grants=%d rewrote=%v", st.GhostMetaPruned, st.GrantsPurged, st.Rewrote)), nil
		}})
	register(Command{Name: "ACL", MinArgs: 1, MaxArgs: -1, Flags: FlagWrite | FlagAdmin,
		Summary: "ACL ADDPRINCIPAL|DELPRINCIPAL|GRANT|REVOKE: principal and grant management",
		Handler: cmdACL})
}

func jsonValue(v any) (resp.Value, error) {
	b, err := jsonMarshal(v)
	if err != nil {
		return resp.Value{}, err
	}
	return resp.BulkValue(b), nil
}

// cmdSet implements SET key value [EX seconds] [KEEPTTL] against the raw
// engine (the non-GDPR path, used by baseline benchmarks).
func cmdSet(ctx *Ctx) (resp.Value, error) {
	a := ctx.Args
	key, val := string(a[0]), a[1]
	var ex time.Duration
	keepTTL := false
	for i := 2; i < len(a); i++ {
		switch strings.ToUpper(string(a[i])) {
		case "EX":
			if i+1 >= len(a) {
				return resp.Value{}, errSyntax
			}
			secs, err := strconv.ParseInt(string(a[i+1]), 10, 64)
			if err != nil || secs <= 0 {
				return resp.Value{}, errors.New("invalid expire time")
			}
			ex = time.Duration(secs) * time.Second
			i++
		case "KEEPTTL":
			keepTTL = true
		default:
			return resp.Value{}, errSyntax
		}
	}
	eng := ctx.Srv.store.Engine()
	switch {
	case ex > 0:
		eng.SetEX(key, val, ex)
	case keepTTL:
		eng.SetKeepTTL(key, val)
	default:
		eng.Set(key, val)
	}
	return resp.SimpleStringValue("OK"), nil
}

// cmdMSet implements MSET key value [key value ...]: the whole batch is
// applied under one engine lock and journaled as a single AOF record.
func cmdMSet(ctx *Ctx) (resp.Value, error) {
	if len(ctx.Args)%2 != 0 {
		return resp.Value{}, wrongArityErr("MSET")
	}
	n := len(ctx.Args) / 2
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = string(ctx.Args[2*i])
		vals[i] = ctx.Args[2*i+1]
	}
	ctx.Srv.store.Engine().SetBatch(keys, vals)
	return resp.SimpleStringValue("OK"), nil
}

// cmdMGet implements MGET key [key ...]; missing keys reply null.
func cmdMGet(ctx *Ctx) (resp.Value, error) {
	keys := make([]string, len(ctx.Args))
	for i, k := range ctx.Args {
		keys[i] = string(k)
	}
	vals, present := ctx.Srv.store.Engine().GetBatch(keys)
	vs := make([]resp.Value, len(keys))
	for i := range keys {
		if present[i] {
			vs[i] = resp.BulkValue(vals[i])
		} else {
			vs[i] = resp.NullValue()
		}
	}
	return resp.ArrayValue(vs...), nil
}

func cmdDel(ctx *Ctx) (resp.Value, error) {
	keys := make([]string, len(ctx.Args))
	for i, k := range ctx.Args {
		keys[i] = string(k)
	}
	return resp.IntegerValue(int64(ctx.Srv.store.Engine().Del(keys...))), nil
}

// cmdScan implements SCAN cursor [MATCH pattern] [COUNT n].
func cmdScan(ctx *Ctx) (resp.Value, error) {
	a := ctx.Args
	cursor, err := strconv.ParseUint(string(a[0]), 10, 64)
	if err != nil {
		return resp.Value{}, errors.New("invalid cursor")
	}
	pattern := "*"
	count := 10
	for i := 1; i < len(a); i++ {
		switch strings.ToUpper(string(a[i])) {
		case "MATCH":
			if i+1 >= len(a) {
				return resp.Value{}, errSyntax
			}
			pattern = string(a[i+1])
			i++
		case "COUNT":
			if i+1 >= len(a) {
				return resp.Value{}, errSyntax
			}
			n, err := strconv.Atoi(string(a[i+1]))
			if err != nil || n <= 0 {
				return resp.Value{}, errors.New("invalid count")
			}
			count = n
			i++
		default:
			return resp.Value{}, errSyntax
		}
	}
	keys, next := ctx.Srv.store.Engine().Scan(cursor, pattern, count)
	return resp.ArrayValue(
		resp.BulkStringValue(strconv.FormatUint(next, 10)),
		stringsArray(visibleKeys(ctx.Srv.store, keys)),
	), nil
}

// visibleKeys drops keys whose records were crypto-erased but not yet
// reclaimed by the lazy-delete sweep: keyspace iteration must not reveal
// that dead ciphertext still physically exists.
func visibleKeys(st *core.Store, keys []string) []string {
	out := keys[:0]
	for _, k := range keys {
		if st.KeyVisible(k) {
			out = append(out, k)
		}
	}
	return out
}

// parsePutOptions parses the GPUT/GMPUT option tail:
//
//	[OWNER o] [PURPOSES p1,p2] [TTL secs] [ORIGIN x] [LOCATION l]
//	[SHAREDWITH a,b] [AUTODECIDE]
func parsePutOptions(a [][]byte) (core.PutOptions, error) {
	var opts core.PutOptions
	for i := 0; i < len(a); i++ {
		tok := strings.ToUpper(string(a[i]))
		need := func() bool { return i+1 < len(a) }
		switch tok {
		case "OWNER":
			if !need() {
				return opts, errSyntax
			}
			opts.Owner = string(a[i+1])
			i++
		case "PURPOSES":
			if !need() {
				return opts, errSyntax
			}
			opts.Purposes = splitNonEmpty(string(a[i+1]))
			i++
		case "TTL":
			if !need() {
				return opts, errSyntax
			}
			secs, err := strconv.ParseInt(string(a[i+1]), 10, 64)
			if err != nil || secs <= 0 {
				return opts, errors.New("invalid ttl")
			}
			opts.TTL = time.Duration(secs) * time.Second
			i++
		case "ORIGIN":
			if !need() {
				return opts, errSyntax
			}
			opts.Origin = string(a[i+1])
			i++
		case "LOCATION":
			if !need() {
				return opts, errSyntax
			}
			opts.Location = string(a[i+1])
			i++
		case "SHAREDWITH":
			if !need() {
				return opts, errSyntax
			}
			opts.SharedWith = splitNonEmpty(string(a[i+1]))
			i++
		case "AUTODECIDE":
			opts.AutomatedDecisions = true
		default:
			return opts, fmt.Errorf("syntax error near '%s'", string(a[i]))
		}
	}
	return opts, nil
}

// cmdGPut implements
//
//	GPUT key value [put options]
func cmdGPut(ctx *Ctx) (resp.Value, error) {
	key, val := string(ctx.Args[0]), ctx.Args[1]
	opts, err := parsePutOptions(ctx.Args[2:])
	if err != nil {
		return resp.Value{}, err
	}
	if err := ctx.Srv.store.Put(ctx.Core, key, val, opts); err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}

// cmdGMPut implements
//
//	GMPUT npairs key1 value1 ... keyN valueN [put options]
//
// The metadata options are shared by the whole batch; the store applies
// them with one lock acquisition, one AOF append and one audit record.
func cmdGMPut(ctx *Ctx) (resp.Value, error) {
	n, err := strconv.Atoi(string(ctx.Args[0]))
	if err != nil || n <= 0 {
		return resp.Value{}, errors.New("invalid pair count")
	}
	// Compare against the argument count without multiplying n, which a
	// huge pair count could overflow.
	if n > (len(ctx.Args)-1)/2 {
		return resp.Value{}, wrongArityErr("GMPUT")
	}
	entries := make([]core.BatchEntry, n)
	for i := 0; i < n; i++ {
		entries[i] = core.BatchEntry{Key: string(ctx.Args[1+2*i]), Value: ctx.Args[2+2*i]}
	}
	opts, err := parsePutOptions(ctx.Args[1+2*n:])
	if err != nil {
		return resp.Value{}, err
	}
	if err := ctx.Srv.store.PutBatch(ctx.Core, entries, opts); err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}

// cmdGMGet implements GMGET key [key ...]: one reply per key, positional.
// Missing keys reply null; refused keys reply their usual error code
// in-array, so one denial does not mask the rest of the batch.
func cmdGMGet(ctx *Ctx) (resp.Value, error) {
	keys := make([]string, len(ctx.Args))
	for i, k := range ctx.Args {
		keys[i] = string(k)
	}
	results, err := ctx.Srv.store.GetBatch(ctx.Core, keys)
	if err != nil {
		return resp.Value{}, err
	}
	vs := make([]resp.Value, len(results))
	for i, r := range results {
		if r.Err != nil {
			vs[i] = errReply(r.Err) // NullValue for not-found, coded error otherwise
		} else {
			vs[i] = resp.BulkValue(r.Value)
		}
	}
	return resp.ArrayValue(vs...), nil
}

// wrongArityErr lets a handler that discovers an arity violation after
// deeper parsing (GMPUT's pair count) emit the standard message.
func wrongArityErr(cmd string) error {
	return fmt.Errorf("wrong number of arguments for '%s'", strings.ToLower(cmd))
}

func splitNonEmpty(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cmdACL implements
//
//	ACL ADDPRINCIPAL id subject|processor|controller|regulator
//	ACL DELPRINCIPAL id
//	ACL GRANT principal purpose [OWNER o] [TTL secs]
//	ACL REVOKE principal purpose [OWNER o]
func cmdACL(ctx *Ctx) (resp.Value, error) {
	s := ctx.Srv
	a := ctx.Args
	sub := strings.ToUpper(string(a[0]))
	rest := a[1:]
	switch sub {
	case "ADDPRINCIPAL":
		if len(rest) != 2 {
			return wrongArity("ACL ADDPRINCIPAL"), nil
		}
		role, ok := parseRole(string(rest[1]))
		if !ok {
			return resp.Value{}, fmt.Errorf("unknown role '%s'", string(rest[1]))
		}
		s.store.ACL().AddPrincipal(acl.Principal{ID: string(rest[0]), Role: role})
		return resp.SimpleStringValue("OK"), nil
	case "DELPRINCIPAL":
		if len(rest) != 1 {
			return wrongArity("ACL DELPRINCIPAL"), nil
		}
		s.store.ACL().RemovePrincipal(string(rest[0]))
		return resp.SimpleStringValue("OK"), nil
	case "GRANT":
		if len(rest) < 2 {
			return wrongArity("ACL GRANT"), nil
		}
		g := acl.Grant{Principal: string(rest[0]), Purpose: string(rest[1])}
		for i := 2; i < len(rest); i++ {
			switch strings.ToUpper(string(rest[i])) {
			case "OWNER":
				if i+1 >= len(rest) {
					return resp.Value{}, errSyntax
				}
				g.Owner = string(rest[i+1])
				i++
			case "TTL":
				if i+1 >= len(rest) {
					return resp.Value{}, errSyntax
				}
				secs, err := strconv.ParseInt(string(rest[i+1]), 10, 64)
				if err != nil || secs <= 0 {
					return resp.Value{}, errors.New("invalid ttl")
				}
				g.Expires = time.Now().Add(time.Duration(secs) * time.Second)
				i++
			default:
				return resp.Value{}, errSyntax
			}
		}
		if err := s.store.ACL().AddGrant(g); err != nil {
			return resp.Value{}, err
		}
		return resp.SimpleStringValue("OK"), nil
	case "REVOKE":
		if len(rest) < 2 {
			return wrongArity("ACL REVOKE"), nil
		}
		owner := ""
		if len(rest) >= 4 && strings.ToUpper(string(rest[2])) == "OWNER" {
			owner = string(rest[3])
		}
		n := s.store.ACL().RevokeGrants(string(rest[0]), string(rest[1]), owner)
		return resp.IntegerValue(int64(n)), nil
	default:
		return resp.Value{}, fmt.Errorf("unknown ACL subcommand '%s'", string(a[0]))
	}
}

func parseRole(s string) (acl.Role, bool) {
	switch strings.ToLower(s) {
	case "subject":
		return acl.RoleSubject, true
	case "processor":
		return acl.RoleProcessor, true
	case "controller":
		return acl.RoleController, true
	case "regulator":
		return acl.RoleRegulator, true
	default:
		return 0, false
	}
}

// cmdInfo reports server and store health in Redis INFO style, rendered
// from the shared section registry (sections.go) that also feeds the ops
// server's HTTP /info — one source of truth for both protocols. An
// optional section argument restricts the report.
func cmdInfo(ctx *Ctx) (resp.Value, error) {
	section := ""
	if len(ctx.Args) == 1 {
		section = strings.ToLower(string(ctx.Args[0]))
	}
	snaps, err := ctx.Srv.InfoSnapshot(section)
	if err != nil {
		return resp.Value{}, err
	}
	return resp.BulkStringValue(renderInfoText(snaps)), nil
}
