package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gdprstore/internal/audit"
	"gdprstore/internal/cluster"
	"gdprstore/internal/core"
	"gdprstore/internal/replica"
	"gdprstore/internal/testutil"
	"gdprstore/pkg/gdprkv"
)

// End-to-end tests for cluster elasticity: the CLUSTER admin surface,
// live slot migration with ASK redirects, erasure racing a migration,
// and primary failover with replica promotion.

func TestClusterAdminSurface(t *testing.T) {
	srvs, _, m := startCluster(t, 2)
	ctx := context.Background()
	c := nodeClient(t, srvs[0].Addr())

	// CLUSTER HELP is generated from the dispatch table, so every
	// subcommand must appear in it.
	hv, err := c.Do(ctx, "CLUSTER", "HELP")
	if err != nil {
		t.Fatal(err)
	}
	var help []string
	for _, l := range hv.Array {
		help = append(help, l.Text())
	}
	joined := strings.Join(help, "\n")
	for _, sub := range []string{"SLOTS", "INFO", "MYID", "KEYSLOT", "TOPOLOGY",
		"SETSLOT", "SETNODE", "COUNTKEYSINSLOT", "GETKEYSINSLOT", "MIGRATESLOT", "HELP"} {
		if !strings.Contains(joined, "CLUSTER "+sub) {
			t.Errorf("CLUSTER HELP missing %s:\n%s", sub, joined)
		}
	}

	// Unknown subcommands point at HELP; arity errors name the usage.
	if _, err := c.Do(ctx, "CLUSTER", "BOGUS"); err == nil ||
		!strings.Contains(err.Error(), "CLUSTER HELP") {
		t.Errorf("unknown subcommand error = %v, want a pointer to CLUSTER HELP", err)
	}
	if _, err := c.Do(ctx, "CLUSTER", "KEYSLOT"); err == nil ||
		!strings.Contains(err.Error(), "CLUSTER KEYSLOT key") {
		t.Errorf("arity error = %v, want the KEYSLOT usage string", err)
	}

	owner := ownerOn(t, m, "n1")
	slot := cluster.Slot(owner)
	ss := strconv.Itoa(int(slot))

	// SETSLOT validation: bad slots, unknown or nonsensical peers, and
	// verb/argument mismatches are all rejected.
	for _, bad := range [][]string{
		{"CLUSTER", "SETSLOT", "4096", "MIGRATING", "n2"}, // slot out of range
		{"CLUSTER", "SETSLOT", ss, "MIGRATING", "nope"},   // unknown destination
		{"CLUSTER", "SETSLOT", ss, "MIGRATING", "n1"},     // destination owns it already
		{"CLUSTER", "SETSLOT", ss, "IMPORTING", "n2"},     // source is not the owner
		{"CLUSTER", "SETSLOT", ss, "STABLE", "n1"},        // STABLE takes no id
		{"CLUSTER", "SETSLOT", ss, "NODE"},                // NODE needs an id
		{"CLUSTER", "SETNODE", "n1", "noport"},            // not host:port
	} {
		if _, err := c.Do(ctx, bad...); err == nil {
			t.Errorf("%v did not fail", bad)
		}
	}

	// The epoch starts at 1 and bumps exactly once per mutation, visible
	// in INFO and CLUSTER TOPOLOGY alike.
	info, err := c.Info(ctx, "cluster")
	if err != nil || !strings.Contains(info, "cluster_epoch:1") {
		t.Fatalf("fresh INFO cluster (%v):\n%s", err, info)
	}
	if _, err := c.Do(ctx, "CLUSTER", "SETSLOT", ss, "MIGRATING", "n2"); err != nil {
		t.Fatal(err)
	}
	info, _ = c.Info(ctx, "cluster")
	for _, want := range []string{"cluster_epoch:2", "cluster_migrating_slots:1"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO cluster missing %q after SETSLOT:\n%s", want, info)
		}
	}
	tv, err := c.Do(ctx, "CLUSTER", "TOPOLOGY")
	if err != nil {
		t.Fatal(err)
	}
	if tv.Array[0].Int != 2 {
		t.Errorf("TOPOLOGY epoch = %d, want 2", tv.Array[0].Int)
	}
	migs := tv.Array[2].Array
	if len(migs) != 1 || migs[0].Array[0].Int != int64(slot) ||
		migs[0].Array[1].Text() != "migrating" || migs[0].Array[2].Text() != "n2" {
		t.Errorf("TOPOLOGY migrations = %v, want [[%d migrating n2]]", migs, slot)
	}

	// STABLE aborts the migration and bumps again.
	if _, err := c.Do(ctx, "CLUSTER", "SETSLOT", ss, "STABLE"); err != nil {
		t.Fatal(err)
	}
	info, _ = c.Info(ctx, "cluster")
	for _, want := range []string{"cluster_epoch:3", "cluster_migrating_slots:0"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO cluster missing %q after STABLE:\n%s", want, info)
		}
	}

	// COUNTKEYSINSLOT/GETKEYSINSLOT see live keys only: a crypto-erased
	// ghost is not data anymore.
	k1, k2 := fmt.Sprintf("pd:{%s}:a", owner), fmt.Sprintf("pd:{%s}:b", owner)
	for _, k := range []string{k1, k2} {
		if err := c.GPut(ctx, k, []byte("x"), gdprkv.PutOptions{
			Owner: owner, Purposes: []string{"service"}}); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := c.Do(ctx, "CLUSTER", "COUNTKEYSINSLOT", ss); err != nil || v.Int != 2 {
		t.Fatalf("COUNTKEYSINSLOT = %d, %v; want 2", v.Int, err)
	}
	if v, err := c.Do(ctx, "CLUSTER", "GETKEYSINSLOT", ss, "1"); err != nil ||
		len(v.Array) != 1 || v.Array[0].Text() != k1 {
		t.Fatalf("GETKEYSINSLOT limit 1 = %v, %v; want [%s] (sorted)", v.Array, err, k1)
	}
	if _, err := c.ForgetUser(ctx, owner); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Do(ctx, "CLUSTER", "COUNTKEYSINSLOT", ss); err != nil || v.Int != 0 {
		t.Fatalf("COUNTKEYSINSLOT after erasure = %d, %v; want 0", v.Int, err)
	}
}

func TestClusterSlotMigrationWithAsk(t *testing.T) {
	srvs, stores, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	owner := ownerOn(t, m, "n1")
	slot := cluster.Slot(owner)
	ss := strconv.Itoa(int(slot))
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = fmt.Sprintf("pd:{%s}:rec%d", owner, i)
		if err := c.GPut(ctx, keys[i], []byte("v-"+keys[i]), gdprkv.PutOptions{
			Owner: owner, Purposes: []string{"service"}}); err != nil {
			t.Fatal(err)
		}
	}

	// Operator sequence: destination imports, source migrates.
	src := nodeClient(t, srvs[0].Addr())
	dst := nodeClient(t, srvs[1].Addr())
	if _, err := dst.Do(ctx, "CLUSTER", "SETSLOT", ss, "IMPORTING", "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Do(ctx, "CLUSTER", "SETSLOT", ss, "MIGRATING", "n2"); err != nil {
		t.Fatal(err)
	}

	// While the keys are still on the source, it serves them directly —
	// no redirect for present keys.
	if v, err := c.GGet(ctx, keys[0]); err != nil || string(v) != "v-"+keys[0] {
		t.Fatalf("GGet during MIGRATING = %q, %v", v, err)
	}
	if asks := c.Stats().Asks; asks != 0 {
		t.Fatalf("present key triggered %d ASKs", asks)
	}
	// A key absent from the source earns an ASK to the destination; the
	// client follows it transparently and maps the miss as usual.
	if _, err := c.GGet(ctx, fmt.Sprintf("pd:{%s}:nope", owner)); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("GGet missing key during MIGRATING = %v, want ErrNotFound", err)
	}
	if asks := c.Stats().Asks; asks != 1 {
		t.Fatalf("Stats.Asks = %d, want exactly 1", asks)
	}

	// Stream the slot. Every record lands on the destination, re-sealed
	// and individually audited; the source keeps one aggregate record.
	mv, err := src.Do(ctx, "CLUSTER", "MIGRATESLOT", ss)
	if err != nil || mv.Int != 3 {
		t.Fatalf("MIGRATESLOT = %d, %v; want 3 moved", mv.Int, err)
	}
	for _, k := range keys {
		if stores[0].Engine().Exists(k) {
			t.Errorf("source still holds %s after migration", k)
		}
		if !stores[1].Engine().Exists(k) {
			t.Errorf("destination missing %s after migration", k)
		}
	}
	if meta, err := stores[1].Metadata(core.Ctx{Actor: "app", Purpose: "service"}, keys[0]); err != nil || meta.Owner != owner {
		t.Fatalf("migrated metadata = %+v, %v; want owner %s", meta, err, owner)
	}
	if recs, err := stores[1].Trail().Query(audit.Filter{Op: "RESTOREKEY", Owner: owner}); err != nil || len(recs) != 3 {
		t.Fatalf("destination RESTOREKEY audit records = %d, %v; want 3", len(recs), err)
	}
	aggr, err := stores[0].Trail().Query(audit.Filter{Op: "MIGRATESLOT"})
	if err != nil || len(aggr) != 1 || !strings.Contains(aggr[0].Detail, "moved=3") {
		t.Fatalf("source MIGRATESLOT audit = %+v, %v; want one record with moved=3", aggr, err)
	}

	// The slot map still names the source, so reads and writes now hop via
	// ASK: reads come back from the destination, writes land there.
	if v, err := c.GGet(ctx, keys[0]); err != nil || string(v) != "v-"+keys[0] {
		t.Fatalf("GGet after migration = %q, %v", v, err)
	}
	newKey := fmt.Sprintf("pd:{%s}:late", owner)
	if err := c.GPut(ctx, newKey, []byte("late"), gdprkv.PutOptions{
		Owner: owner, Purposes: []string{"service"}}); err != nil {
		t.Fatal(err)
	}
	if stores[0].Engine().Exists(newKey) || !stores[1].Engine().Exists(newKey) {
		t.Fatal("ASK-redirected write did not land on the destination")
	}
	if asks := c.Stats().Asks; asks != 3 {
		t.Fatalf("Stats.Asks = %d, want 3 (miss, read, write)", asks)
	}
	// Pipelines follow ASK per-op too.
	res, err := c.Pipeline().Get(keys[1]).Get(keys[2]).Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if v, err := r.Bytes(); err != nil || string(v) != "v-"+keys[i+1] {
			t.Fatalf("pipelined GGet %d via ASK = %q, %v", i, v, err)
		}
	}

	// Finalize everywhere; clients converge via one ordinary MOVED.
	for _, srv := range srvs {
		if _, err := nodeClient(t, srv.Addr()).Do(ctx, "CLUSTER", "SETSLOT", ss, "NODE", "n2"); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats().Redirects
	if v, err := c.GGet(ctx, keys[0]); err != nil || string(v) != "v-"+keys[0] {
		t.Fatalf("GGet after finalize = %q, %v", v, err)
	}
	if c.Stats().Redirects != before+1 {
		t.Fatalf("Redirects = %d, want %d (one MOVED to converge)", c.Stats().Redirects, before+1)
	}

	// The public topology API reports the new owner and the bumped epoch
	// (IMPORTING then NODE on the destination: epoch 3).
	top, err := dst.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if top.Epoch != 3 {
		t.Errorf("topology epoch = %d, want 3", top.Epoch)
	}
	found := false
	for _, sr := range top.Slots {
		if sr.Start <= slot && slot <= sr.End {
			found = true
			if sr.ID != "n2" {
				t.Errorf("slot %d owner = %s, want n2", slot, sr.ID)
			}
		}
	}
	if !found {
		t.Errorf("slot %d missing from topology %+v", slot, top.Slots)
	}
}

func TestClusterForgetMidMigration(t *testing.T) {
	srvs, stores, m := startCluster(t, 3)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	owner := ownerOn(t, m, "n1")
	slot := cluster.Slot(owner)
	ss := strconv.Itoa(int(slot))
	keys := []string{
		fmt.Sprintf("pd:{%s}:rec0", owner),
		fmt.Sprintf("pd:{%s}:rec1", owner),
	}
	for _, k := range keys {
		if err := c.GPut(ctx, k, []byte("data"), gdprkv.PutOptions{
			Owner: owner, Purposes: []string{"service"}}); err != nil {
			t.Fatal(err)
		}
	}

	src := nodeClient(t, srvs[0].Addr())
	dst := nodeClient(t, srvs[1].Addr())
	if _, err := dst.Do(ctx, "CLUSTER", "SETSLOT", ss, "IMPORTING", "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Do(ctx, "CLUSTER", "SETSLOT", ss, "MIGRATING", "n2"); err != nil {
		t.Fatal(err)
	}
	if mv, err := src.Do(ctx, "CLUSTER", "MIGRATESLOT", ss); err != nil || mv.Int != 2 {
		t.Fatalf("MIGRATESLOT = %d, %v; want 2", mv.Int, err)
	}
	// One more record arrives mid-window via ASK: it exists only on the
	// destination while the slot map still names the source.
	late := fmt.Sprintf("pd:{%s}:late", owner)
	if err := c.GPut(ctx, late, []byte("late"), gdprkv.PutOptions{
		Owner: owner, Purposes: []string{"service"}}); err != nil {
		t.Fatal(err)
	}

	// The subject invokes erasure in the middle of the migration. The
	// fan-out reaches every node regardless of slot state, so all three
	// records die and BOTH ends of the migration evidence the erasure.
	n, err := c.ForgetUser(ctx, owner)
	if err != nil || n != 3 {
		t.Fatalf("FORGETUSER mid-migration = %d, %v; want 3", n, err)
	}
	for i, st := range stores {
		for _, k := range append(keys, late) {
			if st.Engine().Exists(k) {
				t.Errorf("node %d still holds %s after mid-migration erasure", i+1, k)
			}
		}
	}
	for _, end := range []struct {
		name string
		st   *core.Store
	}{{"source", stores[0]}, {"destination", stores[1]}} {
		recs, err := end.st.Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: owner})
		if err != nil || len(recs) == 0 {
			t.Errorf("%s has no FORGETUSER audit record (%v)", end.name, err)
		}
	}
	// Reads through the still-open migration window agree the subject is
	// gone (the miss travels via ASK).
	if _, err := c.GGet(ctx, late); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("GGet after erasure = %v, want ErrNotFound", err)
	}
}

// startEnvelopeCluster is startCluster with envelope encryption on, so
// erasure is a crypto-shred and the erasure-wins guarantees of the
// migration protocol are exercised for real.
func startEnvelopeCluster(t *testing.T, n int) ([]*Server, []*core.Store, *cluster.Map) {
	t.Helper()
	cfg := core.Config{
		Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true,
		Envelope: true, MasterKey: bytes.Repeat([]byte{0x5a}, 32),
	}
	srvs := make([]*Server, n)
	stores := make([]*core.Store, n)
	nodes := make([]cluster.Node, n)
	splits := cluster.EvenSplit(n)
	for i := 0; i < n; i++ {
		st, err := core.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		srv, err := Listen("127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i], stores[i] = srv, st
		nodes[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: srv.Addr(), Ranges: splits[i]}
	}
	m, err := cluster.NewMap(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range srvs {
		if err := srv.EnableCluster(ClusterConfig{Self: nodes[i].ID, Map: m}); err != nil {
			t.Fatal(err)
		}
	}
	return srvs, stores, m
}

func TestClusterForgetDuringMigrationRace(t *testing.T) {
	srvs, stores, m := startEnvelopeCluster(t, 2)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	owner := ownerOn(t, m, "n1")
	slot := cluster.Slot(owner)
	ss := strconv.Itoa(int(slot))
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("pd:{%s}:rec%02d", owner, i)
		if err := c.GPut(ctx, keys[i], []byte("data"), gdprkv.PutOptions{
			Owner: owner, Purposes: []string{"service"}}); err != nil {
			t.Fatal(err)
		}
	}
	src := nodeClient(t, srvs[0].Addr())
	dst := nodeClient(t, srvs[1].Addr())
	if _, err := dst.Do(ctx, "CLUSTER", "SETSLOT", ss, "IMPORTING", "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Do(ctx, "CLUSTER", "SETSLOT", ss, "MIGRATING", "n2"); err != nil {
		t.Fatal(err)
	}

	// Race the slot stream against the subject's erasure, issued through a
	// second connection. Whatever the interleaving, no record of the
	// subject may survive visibly on either node: a record the erasure
	// beat to the destination is refused with ERASED (the destination's
	// keyring is shredded), one it trailed is erased by the fan-out.
	var wg sync.WaitGroup
	wg.Add(2)
	var migErr, forgetErr error
	go func() {
		defer wg.Done()
		_, migErr = src.Do(ctx, "CLUSTER", "MIGRATESLOT", ss)
	}()
	go func() {
		defer wg.Done()
		_, forgetErr = c.ForgetUser(ctx, owner)
	}()
	wg.Wait()
	if migErr != nil {
		t.Fatalf("MIGRATESLOT racing erasure: %v", migErr)
	}
	if forgetErr != nil {
		t.Fatalf("FORGETUSER racing migration: %v", forgetErr)
	}

	for i, st := range stores {
		for _, k := range keys {
			// KeyVisible alone is vacuously true for absent keys; a record
			// survived only if its ciphertext is present AND still served.
			if st.Engine().Exists(k) && st.KeyVisible(k) {
				t.Errorf("node %d still serves %s after racing erasure", i+1, k)
			}
		}
	}
	// Both ends evidence the erasure independently.
	for i, st := range stores {
		recs, err := st.Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: owner})
		if err != nil || len(recs) == 0 {
			t.Errorf("node %d has no FORGETUSER audit record (%v)", i+1, err)
		}
	}
	// And the client, wherever it is routed, agrees the subject is gone.
	for _, k := range keys {
		if _, err := c.GGet(ctx, k); !errors.Is(err, gdprkv.ErrNotFound) {
			t.Fatalf("GGet %s after racing erasure = %v, want ErrNotFound", k, err)
		}
	}
}

// startClusterWithReplica boots a 3-primary cluster where n1 carries one
// attached replica: announced in the slot map, fed over live replication,
// and ready for promotion.
func startClusterWithReplica(t *testing.T) (srvs []*Server, stores []*core.Store, rsrv *Server, rst *core.Store, m *cluster.Map) {
	t.Helper()
	cfg := core.Config{Compliant: true, Capability: core.CapabilityPartial, AuditEnabled: true}
	open := func() (*core.Store, *Server) {
		st, err := core.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		srv, err := Listen("127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return st, srv
	}
	srvs = make([]*Server, 3)
	stores = make([]*core.Store, 3)
	for i := range srvs {
		stores[i], srvs[i] = open()
	}
	rst, rsrv = open()

	splits := cluster.EvenSplit(3)
	nodes := []cluster.Node{
		{ID: "n1", Addr: srvs[0].Addr(), Ranges: splits[0], Replicas: []string{rsrv.Addr()}},
		{ID: "n2", Addr: srvs[1].Addr(), Ranges: splits[1]},
		{ID: "n3", Addr: srvs[2].Addr(), Ranges: splits[2]},
	}
	var err error
	m, err = cluster.NewMap(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range srvs {
		if err := srv.EnableCluster(ClusterConfig{Self: nodes[i].ID, Map: m}); err != nil {
			t.Fatal(err)
		}
	}
	// The replica announces its primary's identity: same node id, same
	// slots. It serves reads for them and is the promotion candidate.
	if err := rsrv.EnableCluster(ClusterConfig{Self: "n1", Map: m}); err != nil {
		t.Fatal(err)
	}

	rc := nodeClient(t, rsrv.Addr())
	host, port, err := net.SplitHostPort(srvs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.ReplicaOf(context.Background(), host, port); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		n := rsrv.ReplNode()
		return n != nil && n.Status().Link == replica.LinkUp
	}, "cluster replica link never came up")
	return srvs, stores, rsrv, rst, m
}

func TestClusterFailoverPromoteReplica(t *testing.T) {
	srvs, _, rsrv, rst, m := startClusterWithReplica(t)
	ctx := context.Background()
	c := clusterClient(t, srvs)

	owner := ownerOn(t, m, "n1")
	key := fmt.Sprintf("pd:{%s}:profile", owner)
	if err := c.GPut(ctx, key, []byte("precious"), gdprkv.PutOptions{
		Owner: owner, Purposes: []string{"service"}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the record reaches the replica, then read through the
	// cluster client: the slot has a replica, so the read is served there.
	rc := nodeClient(t, rsrv.Addr())
	testutil.Eventually(t, replWait, 0, func() bool {
		v, err := rc.GGet(ctx, key)
		return err == nil && string(v) == "precious"
	}, "replication never delivered the record")
	if v, err := c.GGet(ctx, key); err != nil || string(v) != "precious" {
		t.Fatalf("cluster GGet = %q, %v", v, err)
	}
	if c.Stats().ReplicaReads == 0 {
		t.Fatal("read was not served by the announced cluster replica")
	}
	// Writes against the replica bounce: it is read-only until promoted.
	if err := rc.GPut(ctx, key, []byte("nope"), gdprkv.PutOptions{
		Owner: owner, Purposes: []string{"service"}}); err == nil ||
		!strings.Contains(err.Error(), "read only replica") {
		t.Fatalf("write on cluster replica = %v, want READONLY", err)
	}

	// The primary dies under live traffic.
	srvs[0].Close()

	// Operator failover: promote the replica, then re-point n1 at it on
	// every surviving node and on the promoted replica itself.
	if err := rc.PromoteToPrimary(ctx); err != nil {
		t.Fatal(err)
	}
	for _, cl := range []*gdprkv.Client{rc, nodeClient(t, srvs[1].Addr()), nodeClient(t, srvs[2].Addr())} {
		if _, err := cl.Do(ctx, "CLUSTER", "SETNODE", "n1", rsrv.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// The client's installed topology still names the dead address. The
	// first erasure attempt fails in transport, triggers a failover
	// refresh from a surviving node, and the retry lands on the promoted
	// replica — the erasure is not lost.
	testutil.Eventually(t, replWait, 0, func() bool {
		n, err := c.ForgetUser(ctx, owner)
		return err == nil && n == 1
	}, "erasure never landed after failover")
	if c.Stats().Failovers == 0 {
		t.Fatal("client converged without recording a failover refresh")
	}
	if rst.Engine().Exists(key) {
		t.Fatal("promoted replica still holds the record after erasure")
	}
	recs, err := rst.Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: owner})
	if err != nil || len(recs) == 0 {
		t.Fatalf("promoted replica has no FORGETUSER audit record (%v)", err)
	}
	// Post-failover the cluster serves normally: reads of the erased key
	// miss cleanly and new writes for the slot land on the new primary.
	if _, err := c.GGet(ctx, key); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("GGet after failover = %v, want ErrNotFound", err)
	}
	if err := c.GPut(ctx, key, []byte("fresh"), gdprkv.PutOptions{
		Owner: owner, Purposes: []string{"service"}}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if !rst.Engine().Exists(key) {
		t.Fatal("post-failover write did not land on the promoted replica")
	}
}
