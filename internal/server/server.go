// Package server exposes a core.Store over TCP using the RESP protocol, so
// the benchmark harness can exercise the same network path the paper's YCSB
// setup did against Redis. Alongside the familiar Redis command set (GET,
// SET, DEL, EXPIRE, TTL, SCAN, ...) it adds the GDPR command family
// (GPUT/GGET/GETUSER/FORGETUSER/OBJECT/...), with per-connection actor and
// purpose state established by AUTH and PURPOSE.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/resp"
)

// Server serves RESP connections backed by a core.Store.
type Server struct {
	store *core.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// stats
	commands uint64
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, st *core.Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{store: st, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store returns the backing store.
func (s *Server) Store() *core.Store { return s.store }

// Commands returns the number of commands served.
func (s *Server) Commands() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commands
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to finish. The store itself is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// connState is the per-connection authentication and purpose context.
type connState struct {
	actor   string
	purpose string
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	r := resp.NewReader(c)
	w := resp.NewWriter(c)
	st := &connState{}
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if !errors.Is(err, io.EOF) && errors.Is(err, resp.ErrProtocol) {
				// Tell the client what went wrong before dropping it.
				_ = w.WriteValue(resp.ErrorValue("ERR protocol error: " + err.Error()))
				_ = w.Flush()
			}
			return
		}
		reply := s.dispatch(st, args)
		s.mu.Lock()
		s.commands++
		s.mu.Unlock()
		if err := w.WriteValue(reply); err != nil {
			return
		}
		// Flush only when the pipelined batch has drained, so batched
		// clients get batched replies.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func errReply(err error) resp.Value {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return resp.NullValue()
	case errors.Is(err, core.ErrDenied):
		return resp.ErrorValue("DENIED " + err.Error())
	case errors.Is(err, core.ErrPurposeDenied):
		return resp.ErrorValue("PURPOSEDENIED " + err.Error())
	case errors.Is(err, core.ErrNoOwner), errors.Is(err, core.ErrNoTTL),
		errors.Is(err, core.ErrLocationDenied):
		return resp.ErrorValue("POLICY " + err.Error())
	case errors.Is(err, core.ErrErased):
		return resp.ErrorValue("ERASED " + err.Error())
	case errors.Is(err, core.ErrNotCompliant):
		return resp.ErrorValue("BASELINE " + err.Error())
	default:
		return resp.ErrorValue("ERR " + err.Error())
	}
}

func wrongArity(cmd string) resp.Value {
	return resp.ErrorValue("ERR wrong number of arguments for '" + strings.ToLower(cmd) + "'")
}

func (s *Server) dispatch(st *connState, args [][]byte) resp.Value {
	cmd := strings.ToUpper(string(args[0]))
	a := args[1:]
	ctx := core.Ctx{Actor: st.actor, Purpose: st.purpose}
	switch cmd {
	case "PING":
		if len(a) == 1 {
			return resp.BulkValue(a[0])
		}
		return resp.SimpleStringValue("PONG")
	case "ECHO":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		return resp.BulkValue(a[0])
	case "AUTH":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		st.actor = string(a[0])
		return resp.SimpleStringValue("OK")
	case "PURPOSE":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		st.purpose = string(a[0])
		return resp.SimpleStringValue("OK")
	case "SET":
		return s.cmdSet(a)
	case "GET":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		v, ok := s.store.Engine().Get(string(a[0]))
		if !ok {
			return resp.NullValue()
		}
		return resp.BulkValue(v)
	case "DEL", "UNLINK":
		if len(a) == 0 {
			return wrongArity(cmd)
		}
		keys := make([]string, len(a))
		for i, k := range a {
			keys[i] = string(k)
		}
		return resp.IntegerValue(int64(s.store.Engine().Del(keys...)))
	case "EXISTS":
		if len(a) == 0 {
			return wrongArity(cmd)
		}
		n := 0
		for _, k := range a {
			if s.store.Engine().Exists(string(k)) {
				n++
			}
		}
		return resp.IntegerValue(int64(n))
	case "EXPIRE":
		if len(a) != 2 {
			return wrongArity(cmd)
		}
		secs, err := strconv.ParseInt(string(a[1]), 10, 64)
		if err != nil {
			return resp.ErrorValue("ERR value is not an integer")
		}
		if s.store.Engine().Expire(string(a[0]), time.Duration(secs)*time.Second) {
			return resp.IntegerValue(1)
		}
		return resp.IntegerValue(0)
	case "EXPIREAT":
		if len(a) != 2 {
			return wrongArity(cmd)
		}
		unix, err := strconv.ParseInt(string(a[1]), 10, 64)
		if err != nil {
			return resp.ErrorValue("ERR value is not an integer")
		}
		if s.store.Engine().ExpireAt(string(a[0]), time.Unix(unix, 0)) {
			return resp.IntegerValue(1)
		}
		return resp.IntegerValue(0)
	case "PERSIST":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		if s.store.Engine().Persist(string(a[0])) {
			return resp.IntegerValue(1)
		}
		return resp.IntegerValue(0)
	case "TTL":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		return cmdTTLReply(s, string(a[0]))
	case "KEYS":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		keys := s.store.Engine().Keys(string(a[0]))
		vs := make([]resp.Value, len(keys))
		for i, k := range keys {
			vs[i] = resp.BulkStringValue(k)
		}
		return resp.ArrayValue(vs...)
	case "SCAN":
		return s.cmdScan(a)
	case "DBSIZE":
		return resp.IntegerValue(int64(s.store.Engine().Len()))
	case "FLUSHALL":
		s.store.Engine().FlushAll()
		return resp.SimpleStringValue("OK")
	case "INFO":
		return s.cmdInfo()

	// --- GDPR command family ---
	case "GPUT":
		return s.cmdGPut(ctx, a)
	case "GGET":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		v, err := s.store.Get(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		return resp.BulkValue(v)
	case "GDEL":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		if err := s.store.Delete(ctx, string(a[0])); err != nil {
			return errReply(err)
		}
		return resp.IntegerValue(1)
	case "GETMETA":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		m, err := s.store.Metadata(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		b, err := jsonMarshal(m)
		if err != nil {
			return errReply(err)
		}
		return resp.BulkValue(b)
	case "GETUSER":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		recs, err := s.store.GetUser(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		vs := make([]resp.Value, 0, 2*len(recs))
		for _, r := range recs {
			vs = append(vs, resp.BulkStringValue(r.Key), resp.BulkValue(r.Value))
		}
		return resp.ArrayValue(vs...)
	case "ACCESS":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		rep, err := s.store.Access(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		b, err := jsonMarshal(rep)
		if err != nil {
			return errReply(err)
		}
		return resp.BulkValue(b)
	case "EXPORTUSER":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		b, err := s.store.Export(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		return resp.BulkValue(b)
	case "FORGETUSER":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		n, err := s.store.Forget(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		return resp.IntegerValue(int64(n))
	case "OBJECT":
		if len(a) != 2 {
			return wrongArity(cmd)
		}
		if err := s.store.Object(ctx, string(a[0]), string(a[1])); err != nil {
			return errReply(err)
		}
		return resp.SimpleStringValue("OK")
	case "UNOBJECT":
		if len(a) != 2 {
			return wrongArity(cmd)
		}
		if err := s.store.Unobject(ctx, string(a[0]), string(a[1])); err != nil {
			return errReply(err)
		}
		return resp.SimpleStringValue("OK")
	case "OWNERKEYS":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		keys, err := s.store.OwnerKeys(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		return stringsArray(keys)
	case "KEYSBYPURPOSE":
		if len(a) != 1 {
			return wrongArity(cmd)
		}
		keys, err := s.store.KeysByPurpose(ctx, string(a[0]))
		if err != nil {
			return errReply(err)
		}
		return stringsArray(keys)
	case "BREACH":
		if len(a) != 2 {
			return wrongArity(cmd)
		}
		from, err1 := time.Parse(time.RFC3339, string(a[0]))
		to, err2 := time.Parse(time.RFC3339, string(a[1]))
		if err1 != nil || err2 != nil {
			return resp.ErrorValue("ERR timestamps must be RFC3339")
		}
		rep, err := s.store.Breach(ctx, from, to)
		if err != nil {
			return errReply(err)
		}
		b, err := jsonMarshal(rep)
		if err != nil {
			return errReply(err)
		}
		return resp.BulkValue(b)
	case "COMPACT":
		if err := s.store.Compact(ctx); err != nil {
			return errReply(err)
		}
		return resp.SimpleStringValue("OK")
	case "MAINTAIN":
		st := s.store.Maintain()
		return resp.SimpleStringValue(fmt.Sprintf(
			"ghosts=%d grants=%d rewrote=%v", st.GhostMetaPruned, st.GrantsPurged, st.Rewrote))
	case "ACL":
		return s.cmdACL(a)
	default:
		return resp.ErrorValue("ERR unknown command '" + strings.ToLower(cmd) + "'")
	}
}

func stringsArray(ss []string) resp.Value {
	vs := make([]resp.Value, len(ss))
	for i, s := range ss {
		vs[i] = resp.BulkStringValue(s)
	}
	return resp.ArrayValue(vs...)
}
