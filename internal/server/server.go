// Package server exposes a core.Store over TCP using the RESP protocol, so
// the benchmark harness can exercise the same network path the paper's YCSB
// setup did against Redis. Alongside the familiar Redis command set (GET,
// SET, DEL, EXPIRE, TTL, SCAN, ...) it adds the GDPR command family
// (GPUT/GGET/GETUSER/FORGETUSER/OBJECT/...) and the amortising batch family
// (MSET/MGET/GMPUT/GMGET), with per-connection actor and purpose state
// established by AUTH and PURPOSE.
//
// Every command is served from a declarative registry (registry.go) through
// a middleware pipeline — panic recovery, per-command metrics, GDPR flag
// enforcement, a pluggable command hook, and a single error-to-reply
// mapping. See DESIGN.md for the architecture.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"gdprstore/internal/core"
	"gdprstore/internal/metrics"
	"gdprstore/internal/replica"
	"gdprstore/internal/resp"
)

// Server serves RESP connections backed by a core.Store.
type Server struct {
	store *core.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// pipeline is the composed middleware chain every command runs
	// through; built once at Listen.
	pipeline Handler
	// cmdStats holds per-command latency histograms and call counts
	// (INFO commandstats).
	cmdStats *metrics.OpSet
	// hook is the pluggable command observation point (audit/tracing).
	hook atomic.Pointer[CommandHook]

	// replication role state (replication.go): replNode is non-nil while
	// this server replicates from a primary; isReplica mirrors that for
	// the read-only middleware's lock-free check.
	replMu    sync.Mutex
	replNode  *replica.Node
	onPromote func()
	isReplica atomic.Bool

	// clusterSt holds the cluster-mode topology (cluster.go); nil while
	// the server runs standalone. Swapped atomically so slot checks on the
	// command hot path are lock-free. clusterMu serializes the
	// derive-and-swap of admin mutations (CLUSTER SETSLOT/SETNODE) so two
	// concurrent topology changes cannot lose each other's epoch bump.
	clusterSt clusterStatePtr
	clusterMu sync.Mutex

	// stats
	commands atomic.Uint64
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, st *core.Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{
		store:    st,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		cmdStats: metrics.NewOpSet(),
	}
	s.pipeline = s.buildPipeline()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store returns the backing store.
func (s *Server) Store() *core.Store { return s.store }

// Commands returns the number of commands served.
func (s *Server) Commands() uint64 { return s.commands.Load() }

// CommandStats exposes the per-command metrics the pipeline records.
func (s *Server) CommandStats() *metrics.OpSet { return s.cmdStats }

// SetCommandHook installs (or, with nil, removes) the hook invoked after
// every executed command with its name, arguments, final reply and
// latency. The hook runs on the connection's goroutine; keep it fast.
func (s *Server) SetCommandHook(h CommandHook) {
	if h == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&h)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to finish. The store itself is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.replMu.Lock()
	node := s.replNode
	s.replNode = nil
	s.replMu.Unlock()
	if node != nil {
		node.Close()
	}
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// connState is the per-connection authentication and purpose context, plus
// the transport handles a hijacking command (PSYNC) needs to take over the
// connection.
type connState struct {
	actor   string
	purpose string

	// asking is the one-shot ASKING flag: set by the ASKING command,
	// consumed by the next command's cluster-middleware slot check, exactly
	// like Redis Cluster's per-connection ASKING state.
	asking bool

	conn     net.Conn
	w        *resp.Writer
	hijacked bool
}

// hijack marks the connection as taken over by the current handler: the
// read loop stands down (no reply is written) and the handler owns the
// connection's I/O until it returns, after which the connection closes.
// Pending replies are flushed first so the handler starts from a clean
// stream.
func (cs *connState) hijack() net.Conn {
	cs.hijacked = true
	_ = cs.w.Flush()
	return cs.conn
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	r := resp.NewReader(c)
	w := resp.NewWriter(c)
	sess := &connState{conn: c, w: w}
	for {
		args, err := r.ReadCommand()
		if err != nil {
			// A clean disconnect surfaces as io.EOF, never as ErrProtocol,
			// so a protocol error alone decides whether to send a reply.
			if errors.Is(err, resp.ErrProtocol) {
				// Tell the client what went wrong before dropping it.
				_ = w.WriteValue(resp.ErrorValue("ERR protocol error: " + err.Error()))
				_ = w.Flush()
			}
			return
		}
		reply := s.execute(sess, args)
		s.commands.Add(1)
		if sess.hijacked {
			// The handler owned the connection (PSYNC) and has returned:
			// the link is done; close rather than resume command parsing.
			return
		}
		if err := w.WriteValue(reply); err != nil {
			return
		}
		// Flush only when the pipelined batch has drained, so batched
		// clients get batched replies.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func stringsArray(ss []string) resp.Value {
	vs := make([]resp.Value, len(ss))
	for i, s := range ss {
		vs[i] = resp.BulkStringValue(s)
	}
	return resp.ArrayValue(vs...)
}
