package server

import (
	"strings"
	"testing"

	"gdprstore/internal/core"
)

// The INFO help text regenerates from the registry, so it names every
// section — the stale-summary bug (sections added by later PRs missing
// from the list) cannot recur.
func TestInfoSummaryListsEverySection(t *testing.T) {
	summary := commandTable["INFO"].Summary
	for _, name := range InfoSectionNames() {
		if !strings.Contains(summary, name) {
			t.Errorf("INFO summary omits section %q: %s", name, summary)
		}
	}
}

func TestInfoSnapshotUnknownSection(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	if _, err := srv.InfoSnapshot("nonsense"); err == nil ||
		!strings.Contains(err.Error(), "unknown INFO section") {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderInfoText(t *testing.T) {
	got := renderInfoText([]InfoSnapshot{
		{Name: "alpha", Fields: []InfoField{fstr("a", "1"), fstr("b", "x")}},
		{Name: "beta", Fields: []InfoField{fbool("on", true)}},
	})
	want := "# alpha\r\na:1\r\nb:x\r\n# beta\r\non:true\r\n"
	if got != want {
		t.Fatalf("renderInfoText = %q, want %q", got, want)
	}
}

// Every registered section must render through an explicit request even
// when its feature is disabled (the one-line stub behaviour).
func TestInfoSnapshotExplicitSectionAlwaysRenders(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	for _, name := range InfoSectionNames() {
		snaps, err := srv.InfoSnapshot(name)
		if err != nil {
			t.Fatalf("InfoSnapshot(%q): %v", name, err)
		}
		if len(snaps) != 1 || snaps[0].Name != name {
			t.Fatalf("InfoSnapshot(%q) = %+v", name, snaps)
		}
	}
}
