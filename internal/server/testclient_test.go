package server

import (
	"context"
	"testing"

	"gdprstore/internal/resp"
	"gdprstore/pkg/gdprkv"
)

// tclient wraps the public SDK with the no-context, single-connection
// ergonomics the server tests want: pool size 1, so a mid-test AUTH or
// PURPOSE issued through Do binds to the one pooled connection exactly
// like a redis-cli session. It replaced the deprecated internal/client
// shim when that package was removed — the tests now drive the server
// through the same code path real SDK users do.
type tclient struct {
	c *gdprkv.Client
}

func tdial(t testing.TB, addr string) *tclient {
	t.Helper()
	c, err := gdprkv.Dial(context.Background(), addr, gdprkv.WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &tclient{c: c}
}

func ctxb() context.Context { return context.Background() }

func (c *tclient) SDK() *gdprkv.Client { return c.c }
func (c *tclient) Close() error        { return c.c.Close() }

func (c *tclient) Do(args ...string) (resp.Value, error) { return c.c.Do(ctxb(), args...) }
func (c *tclient) Ping() error                           { return c.c.Ping(ctxb()) }

// Auth and Purpose rebind the single pooled connection's session state.
func (c *tclient) Auth(actor string) error {
	_, err := c.Do("AUTH", actor)
	return err
}

func (c *tclient) Purpose(p string) error {
	_, err := c.Do("PURPOSE", p)
	return err
}

func (c *tclient) Set(key string, val []byte) error { return c.c.Set(ctxb(), key, val) }
func (c *tclient) SetEX(key string, val []byte, secs int64) error {
	return c.c.SetEX(ctxb(), key, val, secs)
}
func (c *tclient) Get(key string) ([]byte, error)    { return c.c.Get(ctxb(), key) }
func (c *tclient) Del(keys ...string) (int64, error) { return c.c.Del(ctxb(), keys...) }
func (c *tclient) TTL(key string) (int64, error)     { return c.c.TTL(ctxb(), key) }
func (c *tclient) Expire(key string, secs int64) (bool, error) {
	return c.c.Expire(ctxb(), key, secs)
}
func (c *tclient) Scan(cursor uint64, match string, count int) ([]string, uint64, error) {
	return c.c.Scan(ctxb(), cursor, match, count)
}
func (c *tclient) MSet(keys []string, vals [][]byte) error { return c.c.MSet(ctxb(), keys, vals) }
func (c *tclient) MGet(keys ...string) ([][]byte, error)   { return c.c.MGet(ctxb(), keys...) }

func (c *tclient) GPut(key string, val []byte, opts gdprkv.PutOptions) error {
	return c.c.GPut(ctxb(), key, val, opts)
}
func (c *tclient) GGet(key string) ([]byte, error) { return c.c.GGet(ctxb(), key) }
func (c *tclient) GMPut(keys []string, vals [][]byte, opts gdprkv.PutOptions) error {
	return c.c.GMPut(ctxb(), keys, vals, opts)
}
func (c *tclient) GMGet(keys ...string) ([]gdprkv.BatchValue, error) {
	return c.c.GMGet(ctxb(), keys...)
}
func (c *tclient) GetUser(owner string) (map[string][]byte, error) {
	return c.c.GetUser(ctxb(), owner)
}
func (c *tclient) ExportUser(owner string) ([]byte, error) { return c.c.ExportUser(ctxb(), owner) }
func (c *tclient) ForgetUser(owner string) (int64, error)  { return c.c.ForgetUser(ctxb(), owner) }
func (c *tclient) Object(owner, purpose string) error      { return c.c.Object(ctxb(), owner, purpose) }
func (c *tclient) Unobject(owner, purpose string) error {
	return c.c.Unobject(ctxb(), owner, purpose)
}
func (c *tclient) Info(section string) (string, error) { return c.c.Info(ctxb(), section) }
func (c *tclient) ReplicaOf(host, port string) error   { return c.c.ReplicaOf(ctxb(), host, port) }
func (c *tclient) PromoteToPrimary() error             { return c.c.PromoteToPrimary(ctxb()) }
