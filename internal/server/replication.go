package server

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"gdprstore/internal/core"
	"gdprstore/internal/replica"
	"gdprstore/internal/resp"
)

// This file is the replication surface of the RESP server: the handshake
// commands a replica speaks against a primary (REPLCONF, PSYNC), the
// operator command that turns a running server into a replica or back
// (REPLICAOF), the replica-side read-only enforcement, and the INFO
// replication section. The protocol mechanics live in internal/replica
// (Hub on the primary, Node on the replica); this file wires them to
// connections and to the command registry.

// readOnlyError rejects writes on a replica; errReply passes its text
// through verbatim (it carries its own READONLY code prefix, Redis's exact
// replica-mode error, rather than the lowercase ERR convention).
type readOnlyError struct{}

func (readOnlyError) Error() string {
	return "READONLY You can't write against a read only replica."
}

var errReadOnly error = readOnlyError{}

// readOnlyMiddleware rejects mutating commands while the server is a
// replica: the only writer of a replica's dataset is its replication link,
// which applies records directly to the store, not through the command
// surface. REPLICAOF itself is exempt (it is how the operator promotes).
func (s *Server) readOnlyMiddleware(next Handler) Handler {
	return func(ctx *Ctx) (resp.Value, error) {
		if ctx.Cmd.Flags&FlagWrite != 0 && s.isReplica.Load() {
			return resp.Value{}, errReadOnly
		}
		return next(ctx)
	}
}

// ReplicaOf makes this server replicate from the primary at addr: the
// current link (if any) is torn down and a new Node dials, handshakes, and
// syncs into the server's store. The server becomes read-only for clients
// until PromoteToPrimary. opts.Actor is presented during the handshake
// when the primary enforces access control.
func (s *Server) ReplicaOf(addr string, opts replica.NodeOptions) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replNode != nil {
		s.replNode.Close()
	}
	s.replNode = replica.DialPrimary(s.store, addr, opts)
	s.isReplica.Store(true)
}

// PromoteToPrimary stops replicating and makes the server writable again.
// The dataset stays as last synced — the promotion path after a primary
// failure. The promote hook (SetPromoteHook) runs after the role flips, so
// the operator can resume primary-only duties such as the active expirer.
func (s *Server) PromoteToPrimary() {
	s.replMu.Lock()
	wasReplica := s.replNode != nil
	if s.replNode != nil {
		s.replNode.Close()
		s.replNode = nil
	}
	s.isReplica.Store(false)
	hook := s.onPromote
	s.replMu.Unlock()
	if wasReplica && hook != nil {
		hook()
	}
}

// SetPromoteHook registers a callback invoked when a replica is promoted
// to primary (REPLICAOF NO ONE). Replicas receive retention deletions from
// the primary's stream and therefore run without an active expirer; a
// deployment that wants expiry to resume on promotion registers
// store.StartExpirer here — the server itself stays policy-free about
// background loops.
func (s *Server) SetPromoteHook(fn func()) {
	s.replMu.Lock()
	s.onPromote = fn
	s.replMu.Unlock()
}

// ReplNode returns the replica-side link state, or nil when the server is
// a primary.
func (s *Server) ReplNode() *replica.Node {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replNode
}

func init() {
	register(Command{
		Name: "REPLCONF", MinArgs: 1, MaxArgs: -1, Flags: FlagReadonly,
		Summary: "replication handshake options (LISTENING-PORT, CAPA, ACK)",
		Handler: cmdReplConf,
	})
	register(Command{
		Name: "PSYNC", MinArgs: 2, MaxArgs: 2, Flags: FlagReadonly | FlagAdmin,
		Summary: "PSYNC replid offset: attach as a replica (full or partial resync + live stream)",
		Handler: cmdPSync,
	})
	register(Command{
		Name: "REPLICAOF", MinArgs: 2, MaxArgs: 2, Flags: FlagAdmin,
		Summary: "REPLICAOF host port | NO ONE: become a replica of a primary, or promote",
		Handler: cmdReplicaOf,
	})
}

func cmdReplConf(ctx *Ctx) (resp.Value, error) {
	switch strings.ToUpper(string(ctx.Args[0])) {
	case "LISTENING-PORT":
		if len(ctx.Args) != 2 {
			return resp.Value{}, errSyntax
		}
		// Accepted for wire compatibility; link identity in INFO comes
		// from the connection's remote address.
		return resp.SimpleStringValue("OK"), nil
	case "CAPA", "GETACK", "ACK":
		// Capabilities are accepted as-is; ACKs normally arrive on the
		// replication link (the hub's ack reader), so one landing here is
		// acknowledged and ignored.
		return resp.SimpleStringValue("OK"), nil
	default:
		return resp.Value{}, fmt.Errorf("unknown REPLCONF option '%s'", string(ctx.Args[0]))
	}
}

// cmdPSync attaches the calling connection as a replica link: it hijacks
// the connection and blocks for the life of the link, streaming a full or
// partial resync followed by the live journal stream. When the store
// enforces access control, the replica must have presented an actor via
// AUTH first — a replica receives every record, so an unauthenticated one
// would be a bulk exfiltration channel.
func cmdPSync(ctx *Ctx) (resp.Value, error) {
	s := ctx.Srv
	if s.isReplica.Load() {
		// A replica applies records below the journal, so it has no stream
		// to serve; accepting PSYNC here would hand out a silent, frozen
		// feed. Chain replicas off the primary instead.
		return resp.Value{}, errors.New("chained replication is not supported; PSYNC the primary")
	}
	if s.store.ACL().Enforcing() && ctx.Core.Actor == "" {
		return resp.Value{}, fmt.Errorf("%w: AUTH required before PSYNC", core.ErrDenied)
	}
	replid, offset, err := replica.ParsePSYNCArgs(ctx.Args)
	if err != nil {
		return resp.Value{}, err
	}
	hub, err := s.store.EnableStreamReplication(replica.HubOptions{})
	if err != nil {
		return resp.Value{}, err
	}
	conn := ctx.Sess.hijack()
	_ = hub.Serve(conn, replid, offset, s.store.StreamSnapshot)
	return resp.Value{}, nil
}

func cmdReplicaOf(ctx *Ctx) (resp.Value, error) {
	host, port := string(ctx.Args[0]), string(ctx.Args[1])
	if strings.EqualFold(host, "NO") && strings.EqualFold(port, "ONE") {
		ctx.Srv.PromoteToPrimary()
		return resp.SimpleStringValue("OK"), nil
	}
	if _, err := strconv.Atoi(port); err != nil {
		return resp.Value{}, errors.New("invalid port")
	}
	// The admin's authenticated actor propagates into the replication
	// handshake, so a primary enforcing ACLs sees who attached the replica.
	ctx.Srv.ReplicaOf(net.JoinHostPort(host, port), replica.NodeOptions{Actor: ctx.Core.Actor})
	return resp.SimpleStringValue("OK"), nil
}

// ReplStatus is a compact replication summary for the ops surface's
// gauges, sparing it from parsing the INFO replication text back apart.
type ReplStatus struct {
	Role              string
	Offset            int64
	ConnectedReplicas int
}

// ReplStatus reports this node's replication role, journal offset, and
// replica fan-out.
func (s *Server) ReplStatus() ReplStatus {
	s.replMu.Lock()
	node := s.replNode
	s.replMu.Unlock()
	if node != nil {
		return ReplStatus{Role: "replica", Offset: node.Status().Offset}
	}
	if hub := s.store.Hub(); hub != nil {
		return ReplStatus{Role: "master", Offset: hub.Offset(), ConnectedReplicas: len(hub.Links())}
	}
	return ReplStatus{Role: "master"}
}
