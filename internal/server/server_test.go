package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/pkg/gdprkv"
)

// startServer spins up a server over a store built from cfg, with standard
// principals installed.
func startServer(t *testing.T, cfg core.Config) (*Server, *tclient) {
	t.Helper()
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv, tdial(t, srv.Addr())
}

func setupPrincipals(t *testing.T, c *tclient) {
	t.Helper()
	for _, cmd := range [][]string{
		{"ACL", "ADDPRINCIPAL", "controller", "controller"},
		{"ACL", "ADDPRINCIPAL", "svc", "processor"},
		{"ACL", "ADDPRINCIPAL", "alice", "subject"},
		{"ACL", "GRANT", "svc", "billing"},
	} {
		if _, err := c.Do(cmd...); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
}

func TestPingEcho(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("ECHO", "hello")
	if err != nil || v.Text() != "hello" {
		t.Fatalf("echo = %q, %v", v.Text(), err)
	}
}

func TestVanillaSetGetDel(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	n, err := c.Del("k", "missing")
	if err != nil || n != 1 {
		t.Fatalf("del = %d, %v", n, err)
	}
	if _, err := c.Get("k"); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("get deleted = %v", err)
	}
}

func TestSetEXAndTTL(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	if err := c.SetEX("k", []byte("v"), 100); err != nil {
		t.Fatal(err)
	}
	ttl, err := c.TTL("k")
	if err != nil || ttl <= 0 || ttl > 100 {
		t.Fatalf("ttl = %d, %v", ttl, err)
	}
	if ttl, _ := c.TTL("missing"); ttl != -2 {
		t.Fatalf("missing ttl = %d", ttl)
	}
	c.Set("plain", []byte("v"))
	if ttl, _ := c.TTL("plain"); ttl != -1 {
		t.Fatalf("plain ttl = %d", ttl)
	}
	ok, err := c.Expire("plain", 60)
	if err != nil || !ok {
		t.Fatalf("expire = %v, %v", ok, err)
	}
}

func TestScanThroughClient(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	for i := 0; i < 25; i++ {
		c.Set(fmt.Sprintf("user:%02d", i), []byte("v"))
	}
	var cursor uint64
	seen := 0
	for {
		keys, next, err := c.Scan(cursor, "user:*", 7)
		if err != nil {
			t.Fatal(err)
		}
		seen += len(keys)
		if next == 0 {
			break
		}
		cursor = next
	}
	if seen != 25 {
		t.Fatalf("scan saw %d keys", seen)
	}
}

func TestGDPRFlowOverNetwork(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	if err := c.Auth("controller"); err != nil {
		t.Fatal(err)
	}
	if err := c.Purpose("billing"); err != nil {
		t.Fatal(err)
	}
	err := c.GPut("user:alice:email", []byte("a@x.eu"), gdprkv.PutOptions{
		Owner: "alice", Purposes: []string{"billing"}, TTL: 3600 * time.Second, Origin: "signup",
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.GGet("user:alice:email")
	if err != nil || string(v) != "a@x.eu" {
		t.Fatalf("gget = %q, %v", v, err)
	}
	// Metadata round trip.
	mv, err := c.Do("GETMETA", "user:alice:email")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(mv.Str, []byte(`"owner":"alice"`)) {
		t.Fatalf("meta = %s", mv.Str)
	}
	// Subject rights over the wire.
	recs, err := c.GetUser("alice")
	if err != nil || len(recs) != 1 {
		t.Fatalf("getuser = %v, %v", recs, err)
	}
	exp, err := c.ExportUser("alice")
	if err != nil || !bytes.Contains(exp, []byte("gdprstore-export/v1")) {
		t.Fatalf("export = %.60s, %v", exp, err)
	}
	n, err := c.ForgetUser("alice")
	if err != nil || n != 1 {
		t.Fatalf("forget = %d, %v", n, err)
	}
	if _, err := c.GGet("user:alice:email"); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("forgotten gget = %v", err)
	}
}

func TestPurposeDeniedOverNetwork(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	c.Purpose("billing")
	c.GPut("k", []byte("v"), gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Minute})
	c.Purpose("marketing")
	_, err := c.GGet("k")
	if !errors.Is(err, gdprkv.ErrBadPurpose) {
		t.Fatalf("err = %v, want ErrBadPurpose (PURPOSEDENIED)", err)
	}
}

func TestACLDeniedOverNetwork(t *testing.T) {
	srv, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	c.Purpose("billing")
	c.GPut("k", []byte("v"), gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Minute})
	// A fresh connection that never AUTHs is an unknown principal: denied.
	c2 := tdial(t, srv.Addr())
	c2.Purpose("billing")
	_, gerr := c2.GGet("k")
	if !errors.Is(gerr, gdprkv.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied (DENIED)", gerr)
	}
}

func TestObjectionOverNetwork(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	c.Purpose("billing")
	c.GPut("k", []byte("v"), gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing", "ads"}, TTL: time.Minute})
	if err := c.Auth("alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.Object("alice", "ads"); err != nil {
		t.Fatal(err)
	}
	c.Auth("controller")
	c.Purpose("ads")
	if _, err := c.GGet("k"); err == nil {
		t.Fatal("objected purpose served")
	}
	c.Auth("alice")
	if err := c.Unobject("alice", "ads"); err != nil {
		t.Fatal(err)
	}
	c.Auth("controller")
	if _, err := c.GGet("k"); err != nil {
		t.Fatalf("after unobject: %v", err)
	}
}

// TestPipelinedCommands writes a burst of commands before reading any
// reply, over a raw connection (the SDK is strictly request/reply; the
// wire protocol itself allows pipelining and the server must serve it).
func TestPipelinedCommands(t *testing.T) {
	srv, c := startServer(t, core.Baseline())
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	for i := 0; i < 100; i++ {
		if err := w.WriteCommand("SET", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := resp.NewReader(conn)
	for i := 0; i < 100; i++ {
		v, err := r.ReadValue()
		if err != nil || v.Text() != "OK" {
			t.Fatalf("reply %d = %+v, %v", i, v, err)
		}
	}
	v, _ := c.Do("DBSIZE")
	if v.Int != 100 {
		t.Fatalf("dbsize = %d", v.Int)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	_, err := c.Do("BOGUS")
	var se *gdprkv.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
}

func TestWrongArity(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	for _, cmd := range [][]string{
		{"GET"}, {"SET", "k"}, {"EXPIRE", "k"}, {"GETUSER"}, {"OBJECT", "o"},
	} {
		if _, err := c.Do(cmd...); err == nil {
			t.Errorf("%v accepted", cmd)
		}
	}
}

func TestInfo(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	v, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"compliant:true", "timing:real-time", "capability:full"} {
		if !strings.Contains(v.Text(), want) {
			t.Fatalf("INFO missing %q:\n%s", want, v.Text())
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc, err := gdprkv.Dial(ctx, srv.Addr(), gdprkv.WithPoolSize(1))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cc.Close()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				if err := cc.Set(ctx, k, []byte("v")); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				if _, err := cc.Get(ctx, k); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if srv.Commands() < 1600 {
		t.Fatalf("commands = %d", srv.Commands())
	}
}

func TestBreachOverNetwork(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Do("ACL", "ADDPRINCIPAL", "dpa", "regulator")
	c.Auth("controller")
	c.Purpose("billing")
	c.GPut("k", []byte("v"), gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Minute})
	c.GGet("k")
	c.Auth("dpa")
	from := time.Now().Add(-time.Hour).UTC().Format(time.RFC3339)
	to := time.Now().Add(time.Hour).UTC().Format(time.RFC3339)
	v, err := c.Do("BREACH", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(v.Str, []byte("alice")) {
		t.Fatalf("breach report: %s", v.Str)
	}
}

func TestBaselineRejectsGDPRCommands(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	_, err := c.GetUser("alice")
	if !errors.Is(err, gdprkv.ErrBaseline) {
		t.Fatalf("err = %v, want ErrBaseline (BASELINE)", err)
	}
}
