package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/internal/testutil"
	"gdprstore/pkg/gdprkv"
)

// rawDial opens a plain TCP connection to the server for protocol abuse.
func rawDial(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestGarbageBytesDoNotCrashServer(t *testing.T) {
	srv, cl := startServer(t, core.Baseline())
	payloads := []string{
		"GET key\r\n",               // inline commands unsupported
		"\x00\x01\x02\x03",          // binary noise
		"*2\r\n$3\r\nGET\r\n:5\r\n", // non-bulk arg in command
		"$-2\r\n",                   // invalid negative bulk
		"*1000000000\r\n",           // absurd array header
		"$99999999999999\r\n",       // absurd bulk header
	}
	for _, p := range payloads {
		c := rawDial(t, srv)
		if _, err := io.WriteString(c, p); err != nil {
			t.Fatalf("write %q: %v", p, err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, c) // drain whatever comes back until close
		c.Close()
	}
	// The server must still serve well-formed clients.
	if err := cl.Ping(); err != nil {
		t.Fatalf("server unhealthy after garbage: %v", err)
	}
}

// TestMalformedCommandGetsErrorReplyBeforeDisconnect pins the read loop's
// farewell contract: a protocol violation is answered with a -ERR reply,
// then the connection closes (EOF). A silent drop would leave clients
// diagnosing "connection reset" instead of the actual parse failure.
func TestMalformedCommandGetsErrorReplyBeforeDisconnect(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	for _, payload := range []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n", // non-bulk argument inside a command
		"GET key\r\n",               // inline commands unsupported
		"$-2\r\n",                   // invalid negative bulk length
	} {
		c := rawDial(t, srv)
		if _, err := io.WriteString(c, payload); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		br := bufio.NewReader(c)
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("payload %q: no reply before disconnect: %v", payload, err)
		}
		if !strings.HasPrefix(line, "-ERR protocol error") {
			t.Fatalf("payload %q: reply = %q, want -ERR protocol error ...", payload, line)
		}
		// After the farewell the server hangs up.
		if _, err := br.ReadByte(); err != io.EOF {
			t.Fatalf("payload %q: connection stayed open after protocol error (err=%v)", payload, err)
		}
		c.Close()
	}
}

func TestHalfCommandThenDisconnect(t *testing.T) {
	srv, cl := startServer(t, core.Baseline())
	c := rawDial(t, srv)
	io.WriteString(c, "*3\r\n$3\r\nSET\r\n$1\r\nk") // cut mid-arg
	c.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("server unhealthy after torn command: %v", err)
	}
	// The torn SET must never be applied — the parser only dispatches
	// complete commands, so no wait is needed before checking.
	if _, err := cl.Get("k"); err == nil {
		t.Fatal("partial command applied")
	}
}

func TestSlowClientDoesNotBlockOthers(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	// A client that connects and goes silent.
	idle := rawDial(t, srv)
	defer idle.Close()

	done := make(chan error, 1)
	go func() {
		c, err := gdprkv.Dial(context.Background(), srv.Addr(), gdprkv.WithPoolSize(1))
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		done <- c.Ping(context.Background())
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("idle client starved an active one")
	}
}

func TestCloseWhileClientsActive(t *testing.T) {
	st, err := core.Open(core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			c, err := gdprkv.Dial(ctx, srv.Addr(), gdprkv.WithPoolSize(1))
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; ; j++ {
				if err := c.Set(ctx, fmt.Sprintf("k%d", j), []byte("v")); err != nil {
					return // server closed underneath us: expected
				}
			}
		}()
	}
	// Close only after the writers have demonstrably started.
	testutil.Eventually(t, 5*time.Second, 0, func() bool {
		return srv.Commands() > 0
	}, "no client command reached the server")
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait() // must terminate: Close closed the connections
}

func TestVeryLongKeyAndValue(t *testing.T) {
	_, cl := startServer(t, core.Baseline())
	key := strings.Repeat("k", 10_000)
	val := make([]byte, 1<<20) // 1 MiB value
	for i := range val {
		val[i] = byte(i)
	}
	if err := cl.Set(key, val); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(key)
	if err != nil || len(got) != len(val) {
		t.Fatalf("len = %d, %v", len(got), err)
	}
}

// TestPipeliningConformance locks in the PR-1 batching behaviour: a client
// may write N commands before reading any reply; the server must answer
// every one, in order, and coalesce the replies into few flushes (replies
// for a pipelined batch arrive together, not one write per command).
func TestPipeliningConformance(t *testing.T) {
	const n = 200
	srv, _ := startServer(t, core.Baseline())
	c := rawDial(t, srv)
	w := resp.NewWriter(c)

	// Write the entire batch before reading a single byte: SET k_i v_i
	// interleaved with GET k_i and an echoing PING carrying the index.
	for i := 0; i < n; i++ {
		if err := w.WriteCommand("SET", fmt.Sprintf("p%03d", i), fmt.Sprintf("val%03d", i)); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCommand("GET", fmt.Sprintf("p%03d", i)); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCommand("PING", fmt.Sprintf("mark%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replies must arrive in command order: OK, the value just set, the
	// echoed marker — any reordering or loss fails positionally. (The
	// server coalesces the batch's replies into buffered flushes — see
	// handle()'s Buffered()==0 rule; the observable contract asserted here
	// is that writing 3N commands before reading anything yields exactly
	// 3N in-order replies.)
	r := resp.NewReader(bufio.NewReader(c))
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < n; i++ {
		ok, err := r.ReadValue()
		if err != nil {
			t.Fatalf("reply %d (SET): %v", i, err)
		}
		if ok.Text() != "OK" {
			t.Fatalf("reply %d: SET answered %q", i, ok.Text())
		}
		got, err := r.ReadValue()
		if err != nil {
			t.Fatalf("reply %d (GET): %v", i, err)
		}
		if want := fmt.Sprintf("val%03d", i); got.Text() != want {
			t.Fatalf("reply %d: GET answered %q, want %q — replies out of order", i, got.Text(), want)
		}
		mark, err := r.ReadValue()
		if err != nil {
			t.Fatalf("reply %d (PING): %v", i, err)
		}
		if want := fmt.Sprintf("mark%03d", i); mark.Text() != want {
			t.Fatalf("reply %d: PING echoed %q, want %q", i, mark.Text(), want)
		}
	}
}

func TestReconnectAfterServerError(t *testing.T) {
	srv, _ := startServer(t, core.Baseline())
	c := rawDial(t, srv)
	io.WriteString(c, "!bogus\r\n")
	c.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(io.Discard, c)
	c.Close()
	c2 := tdial(t, srv.Addr())
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
}
