package server

import (
	"fmt"
	"strings"
	"time"

	"gdprstore/internal/cluster"
	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/internal/wirecode"
)

// This file is the key-streaming half of live slot migration. The
// operator marks the slot IMPORTING on the destination and MIGRATING on
// the source (cluster_admin.go); CLUSTER MIGRATESLOT on the source then
// drives, per key: DumpForMigration (decrypt under the source keyring,
// metadata verbatim) → RESTOREKEY on the destination (re-seal, re-index,
// journal, audit) → RemoveMigrated on the source, guarded so a write that
// raced in between re-dumps instead of being lost. Erasures win over
// migration in both directions: a key shredded on the source is never
// dumped, and a record whose owner is shredded on the destination is
// refused with ERASED — the source skips it and lets the sweep reclaim
// the dead ciphertext.

// migrateRetries bounds re-dumps of a key that keeps being written while
// it is being moved before the slot migration reports failure.
const migrateRetries = 5

// cmdClusterMigrateSlot is the CLUSTER MIGRATESLOT handler (run on the
// source). The slot must already be MIGRATING; the reply is the number of
// records that landed on the destination. One aggregate audit record
// captures the outcome on the source; the destination audits each
// arriving record itself.
func cmdClusterMigrateSlot(ctx *Ctx, cs *clusterState, args [][]byte) (resp.Value, error) {
	slot, err := parseSlot(args[0])
	if err != nil {
		return resp.Value{}, err
	}
	mg, ok := cs.topo.Migration(slot)
	if !ok || mg.State != cluster.StateMigrating {
		return resp.Value{}, fmt.Errorf("slot %d is not MIGRATING on this node (CLUSTER SETSLOT %d MIGRATING <dest-id> first)", slot, slot)
	}
	if owner := cs.m.NodeForSlot(slot); owner.ID != cs.selfID {
		return resp.Value{}, fmt.Errorf("slot %d is owned by %q, not this node", slot, owner.ID)
	}
	dest, ok := cs.m.NodeByID(mg.PeerID)
	if !ok {
		return resp.Value{}, fmt.Errorf("migration destination %q is not in the map", mg.PeerID)
	}
	if err := ctx.Srv.store.AuthorizeMigration(ctx.Core); err != nil {
		return resp.Value{}, err
	}
	moved, skipped, err := ctx.Srv.migrateSlot(ctx.Core, slot, dest, cs.timeout)
	detail := fmt.Sprintf("slot=%d dest=%s moved=%d skipped=%d", slot, dest.ID, moved, skipped)
	if err != nil {
		detail += " error=" + err.Error()
	}
	ctx.Srv.store.AuditMigration(ctx.Core, detail, err == nil)
	if err != nil {
		return resp.Value{}, err
	}
	return resp.IntegerValue(int64(moved)), nil
}

// migrateSlot streams every live key of slot to dest. skipped counts keys
// that did not need to move: erased ghosts, keys deleted or expired
// mid-stream, and records the destination refused with ERASED because the
// owner was already shredded there.
func (s *Server) migrateSlot(cctx core.Ctx, slot uint16, dest cluster.Node, timeout time.Duration) (moved, skipped int, err error) {
	for _, key := range s.keysInSlot(slot, -1) {
	attempts:
		for attempt := 0; ; attempt++ {
			if attempt >= migrateRetries {
				return moved, skipped, fmt.Errorf("key %q kept changing while migrating", key)
			}
			rec, raw, ok, derr := s.store.DumpForMigration(key)
			if derr != nil {
				return moved, skipped, fmt.Errorf("dump %q: %w", key, derr)
			}
			if !ok {
				skipped++
				break attempts
			}
			b, eerr := core.EncodeMigrationRecord(rec)
			if eerr != nil {
				return moved, skipped, eerr
			}
			if _, cerr := clusterCall(dest.Addr, cctx.Actor, cctx.Purpose, timeout, "RESTOREKEY", string(b)); cerr != nil {
				if strings.HasPrefix(cerr.Error(), wirecode.Erased) {
					// An erasure raced ahead of the migration and already
					// reached the destination: the record is dead. Leave
					// the source copy for the sweep; do not resurrect.
					skipped++
					break attempts
				}
				return moved, skipped, fmt.Errorf("restore %q on %s: %w", key, dest.ID, cerr)
			}
			removed, changed := s.store.RemoveMigrated(key, raw)
			if changed {
				// A write landed between dump and removal; the destination
				// holds a stale copy. Re-dump so the newer value wins.
				continue
			}
			if removed {
				moved++
			} else {
				// Deleted or erased between dump and removal; the restored
				// copy on the destination is dead or will be erased by the
				// same fan-out that removed it here.
				skipped++
			}
			break attempts
		}
	}
	return moved, skipped, nil
}

// handleRestoreKey is the destination half: ingest one migration record.
// The record's slot must be one this node owns or is importing — the
// internal streaming path does not use ASKING, so the check lives here
// rather than in the cluster middleware (Keys is nil for RESTOREKEY).
func handleRestoreKey(ctx *Ctx) (resp.Value, error) {
	rec, err := core.DecodeMigrationRecord(ctx.Args[0])
	if err != nil {
		return resp.Value{}, err
	}
	if cs := ctx.Srv.clusterInfo(); cs != nil {
		slot := cluster.Slot(rec.Key)
		if owner := cs.m.NodeForSlot(slot); owner.ID != cs.selfID {
			mg, ok := cs.topo.Migration(slot)
			if !ok || mg.State != cluster.StateImporting {
				return resp.Value{}, fmt.Errorf("slot %d is neither owned nor importing here", slot)
			}
		}
	}
	if err := ctx.Srv.store.RestoreRecord(ctx.Core, rec); err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}
