package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/internal/wirecode"
)

// This file is the command registry: the declarative table every RESP
// command is served from, and the middleware pipeline each invocation runs
// through. Commands are registered at package init (see commands.go);
// the table is immutable afterwards, so lookups are lock-free. The old
// monolithic dispatch switch is gone — COMMAND, COMMAND COUNT and
// COMMAND DOCS are generated from the same table, so the introspection
// surface can never drift from the implementation.

// Flag classifies a command for the middleware pipeline and for COMMAND
// introspection.
type Flag uint8

// Command flags.
const (
	// FlagReadonly marks commands that do not mutate the store.
	FlagReadonly Flag = 1 << iota
	// FlagWrite marks commands that mutate the store.
	FlagWrite
	// FlagGDPR marks the compliance-path family: rejected with BASELINE on
	// a non-compliant store, and with DENIED before AUTH when the store
	// enforces access control.
	FlagGDPR
	// FlagAdmin marks operational commands (ACL, FLUSHALL, COMPACT, ...).
	FlagAdmin
	// FlagNoCompliance marks commands that bypass the compliance layer and
	// hit the raw engine (the baseline benchmark surface).
	FlagNoCompliance
)

var flagNames = []struct {
	f    Flag
	name string
}{
	{FlagReadonly, "readonly"},
	{FlagWrite, "write"},
	{FlagGDPR, "gdpr"},
	{FlagAdmin, "admin"},
	{FlagNoCompliance, "nocompliance"},
}

// Names lists the set flags as their COMMAND-reply names.
func (f Flag) Names() []string {
	var out []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// Ctx is the per-invocation context a handler receives: the server, the
// connection's session state, the command's declaration, the arguments
// (after the command name), and the resolved core context.
type Ctx struct {
	Srv  *Server
	Sess *connState
	Cmd  *Command
	Args [][]byte
	// Core carries the session's actor and purpose, resolved by the
	// session middleware before the handler runs.
	Core core.Ctx
	// Asking is true when the previous command on this connection was
	// ASKING: the client is following a one-shot ASK redirect, so the
	// cluster middleware admits the command for a slot this node is
	// importing but does not own yet.
	Asking bool
}

// Handler executes one command. Returning an error routes it through the
// single errReply mapping, so every command family emits the same
// ERR/DENIED/POLICY/PURPOSEDENIED/ERASED/BASELINE code prefixes.
type Handler func(*Ctx) (resp.Value, error)

// Middleware wraps a Handler with cross-cutting behaviour.
type Middleware func(next Handler) Handler

// Command is one row of the registry.
type Command struct {
	// Name is the canonical (upper-case) command name.
	Name string
	// MinArgs/MaxArgs bound the argument count after the name; MaxArgs -1
	// means variadic. Violations get the standard wrong-arity error before
	// the pipeline runs.
	MinArgs, MaxArgs int
	// Flags classify the command (see Flag).
	Flags Flag
	// Summary is the one-line description COMMAND DOCS reports.
	Summary string
	// Keys extracts the arguments cluster mode routes on (data keys, or
	// the owner name for owner-scoped GDPR commands). nil marks the
	// command node-local: it is served wherever it lands, never redirected
	// (PING, INFO, SCAN, CLUSTER, ...). Arity is already validated when it
	// runs. See cluster.go.
	Keys func(args [][]byte) [][]byte
	// Fanout marks the cluster-coordinated rights commands (FORGETUSER,
	// GETUSER): any node accepts them and fans out to the whole fleet
	// instead of slot-checking, because a data subject's records may span
	// slots when keys are not owner-tagged. See clusterFanout.
	Fanout bool
	// Handler is the command body.
	Handler Handler
}

// arity reports the Redis-convention arity (command name included;
// negative means "at least").
func (c *Command) arity() int64 {
	if c.MaxArgs < 0 || c.MaxArgs != c.MinArgs {
		return -int64(c.MinArgs + 1)
	}
	return int64(c.MinArgs + 1)
}

// commandTable is the registry. Populated by register() at init; read-only
// afterwards.
var commandTable = make(map[string]*Command)

// register adds a command to the table; duplicate names are a programming
// error and panic at init.
func register(c Command) {
	if c.Name != strings.ToUpper(c.Name) {
		panic("server: command name must be upper-case: " + c.Name)
	}
	if _, dup := commandTable[c.Name]; dup {
		panic("server: duplicate command " + c.Name)
	}
	cc := c
	commandTable[c.Name] = &cc
}

// commandNames returns every registered name, sorted.
func commandNames() []string {
	out := make([]string, 0, len(commandTable))
	for n := range commandTable {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// errSyntax is the generic syntax-error sentinel; errReply maps it (like
// every non-core error) to the ERR prefix.
var errSyntax = errors.New("syntax error")

// errReply is the single place a handler error becomes a RESP reply, so
// the error-code prefixes are consistent across the whole surface: the
// vanilla family, the GDPR family and the batch family all route here.
// The code table itself lives in internal/wirecode, shared with the
// public SDK's decoder (pkg/gdprkv), so the two ends cannot drift.
func errReply(err error) resp.Value {
	var coded codedError
	switch {
	case errors.Is(err, errReadOnly):
		// Carries its own READONLY code prefix (Redis's exact text).
		return resp.ErrorValue(err.Error())
	case errors.As(err, &coded):
		// Cluster errors (MOVED/CROSSSLOT/CLUSTERDOWN) carry their own
		// complete reply text, Redis's exact shapes.
		return resp.ErrorValue(coded.text)
	case errors.Is(err, core.ErrNotFound):
		// Missing keys are null bulk strings, not error replies.
		return resp.NullValue()
	default:
		return resp.ErrorValue(wirecode.Code(err) + " " + err.Error())
	}
}

func wrongArity(cmd string) resp.Value {
	return resp.ErrorValue("ERR wrong number of arguments for '" + strings.ToLower(cmd) + "'")
}

// CommandHook observes every executed command after its middleware ran:
// name, arguments, the reply (post-errReply), and the handler latency.
// Deployments attach audit/tracing sinks here.
type CommandHook func(name string, args [][]byte, reply resp.Value, d time.Duration)

// --- middleware pipeline ---
//
// Order (outermost first):
//  1. recover      — a panicking handler becomes an ERR reply, not a dead
//     connection
//  2. metrics      — per-command call count + latency histogram
//  3. hook         — the pluggable audit/tracing observation point; sits
//     outside compliance so enforcement rejections are observed too
//  4. read-only    — rejects writes while the server is a replica (the
//     replication link applies records directly, below the registry)
//  5. compliance   — FlagGDPR enforcement (BASELINE on non-compliant
//     stores, DENIED before AUTH under ACL enforcement)
//  6. cluster      — slot ownership (MOVED), cross-slot batch rejection
//     (CROSSSLOT), and the rights fan-out coordinator; inert unless
//     EnableCluster was called
//  7. the handler itself; its error return is mapped by errReply
func (s *Server) buildPipeline() Handler {
	h := func(ctx *Ctx) (resp.Value, error) { return ctx.Cmd.Handler(ctx) }
	h = s.clusterMiddleware(h)
	h = complianceMiddleware(h)
	h = s.readOnlyMiddleware(h)
	h = s.hookMiddleware(h)
	h = s.metricsMiddleware(h)
	h = recoverMiddleware(h)
	return h
}

// recoverMiddleware converts a handler panic into an ERR reply so one bad
// command cannot take down the connection (or the server).
func recoverMiddleware(next Handler) Handler {
	return func(ctx *Ctx) (v resp.Value, err error) {
		defer func() {
			if r := recover(); r != nil {
				v = resp.Value{}
				err = fmt.Errorf("internal error in '%s': %v", strings.ToLower(ctx.Cmd.Name), r)
			}
		}()
		return next(ctx)
	}
}

// metricsMiddleware records per-command latency and call counts into the
// server's OpSet (INFO's commandstats section reports them).
func (s *Server) metricsMiddleware(next Handler) Handler {
	return func(ctx *Ctx) (resp.Value, error) {
		t0 := time.Now()
		v, err := next(ctx)
		s.cmdStats.Get(ctx.Cmd.Name).Record(time.Since(t0))
		return v, err
	}
}

// complianceMiddleware enforces FlagGDPR before the handler runs: the
// whole GDPR family shares one gate instead of each handler re-checking.
func complianceMiddleware(next Handler) Handler {
	return func(ctx *Ctx) (resp.Value, error) {
		if ctx.Cmd.Flags&FlagGDPR != 0 {
			if !ctx.Srv.store.Config().Compliant {
				return resp.Value{}, fmt.Errorf("%w: %s needs the compliance layer", core.ErrNotCompliant, ctx.Cmd.Name)
			}
			if ctx.Core.Actor == "" && ctx.Srv.store.ACL().Enforcing() {
				return resp.Value{}, fmt.Errorf("%w: AUTH required before %s", core.ErrDenied, ctx.Cmd.Name)
			}
		}
		return next(ctx)
	}
}

// hookMiddleware invokes the server's CommandHook, if set, with the final
// reply (errors already mapped) and the handler latency.
func (s *Server) hookMiddleware(next Handler) Handler {
	return func(ctx *Ctx) (resp.Value, error) {
		hook := s.hook.Load()
		if hook == nil {
			return next(ctx)
		}
		t0 := time.Now()
		v, err := next(ctx)
		reply := v
		if err != nil {
			reply = errReply(err)
		}
		(*hook)(ctx.Cmd.Name, ctx.Args, reply, time.Since(t0))
		return v, err
	}
}

// execute runs one parsed command through the registry: lookup, arity
// check, middleware pipeline, error mapping.
func (s *Server) execute(sess *connState, args [][]byte) resp.Value {
	name := strings.ToUpper(string(args[0]))
	cmd, ok := commandTable[name]
	if !ok {
		return resp.ErrorValue("ERR unknown command '" + strings.ToLower(name) + "'")
	}
	a := args[1:]
	if len(a) < cmd.MinArgs || (cmd.MaxArgs >= 0 && len(a) > cmd.MaxArgs) {
		return wrongArity(cmd.Name)
	}
	// The ASKING flag covers exactly one following command: consume it
	// here so an early return (arity error upstream, redirect, refusal)
	// cannot leak it onto a later command.
	asking := sess.asking
	sess.asking = false
	ctx := &Ctx{
		Srv:    s,
		Sess:   sess,
		Cmd:    cmd,
		Args:   a,
		Core:   core.Ctx{Actor: sess.actor, Purpose: sess.purpose},
		Asking: asking,
	}
	v, err := s.pipeline(ctx)
	if err != nil {
		return errReply(err)
	}
	return v
}

// --- COMMAND introspection, generated from the table ---

func init() {
	register(Command{
		Name: "COMMAND", MinArgs: 0, MaxArgs: -1, Flags: FlagReadonly,
		Summary: "introspect the command table (COMMAND [COUNT|DOCS [name ...]|INFO name ...])",
		Handler: cmdCommand,
	})
}

func cmdCommand(ctx *Ctx) (resp.Value, error) {
	if len(ctx.Args) == 0 {
		vs := make([]resp.Value, 0, len(commandTable))
		for _, name := range commandNames() {
			vs = append(vs, commandInfoValue(commandTable[name]))
		}
		return resp.ArrayValue(vs...), nil
	}
	switch strings.ToUpper(string(ctx.Args[0])) {
	case "COUNT":
		if len(ctx.Args) != 1 {
			return resp.Value{}, errSyntax
		}
		return resp.IntegerValue(int64(len(commandTable))), nil
	case "INFO":
		vs := make([]resp.Value, 0, len(ctx.Args)-1)
		for _, a := range ctx.Args[1:] {
			c, ok := commandTable[strings.ToUpper(string(a))]
			if !ok {
				vs = append(vs, resp.NullArrayValue())
				continue
			}
			vs = append(vs, commandInfoValue(c))
		}
		return resp.ArrayValue(vs...), nil
	case "DOCS":
		names := commandNames()
		if len(ctx.Args) > 1 {
			names = names[:0]
			for _, a := range ctx.Args[1:] {
				if _, ok := commandTable[strings.ToUpper(string(a))]; ok {
					names = append(names, strings.ToUpper(string(a)))
				}
			}
		}
		vs := make([]resp.Value, 0, 2*len(names))
		for _, name := range names {
			c := commandTable[name]
			vs = append(vs,
				resp.BulkStringValue(strings.ToLower(c.Name)),
				resp.ArrayValue(
					resp.BulkStringValue("summary"),
					resp.BulkStringValue(c.Summary),
					resp.BulkStringValue("arity"),
					resp.IntegerValue(c.arity()),
					resp.BulkStringValue("flags"),
					stringsArray(c.Flags.Names()),
				))
		}
		return resp.ArrayValue(vs...), nil
	default:
		return resp.Value{}, fmt.Errorf("unknown COMMAND subcommand '%s'", string(ctx.Args[0]))
	}
}

// commandInfoValue renders one table row in Redis COMMAND reply shape:
// [name, arity, [flags...]].
func commandInfoValue(c *Command) resp.Value {
	return resp.ArrayValue(
		resp.BulkStringValue(strings.ToLower(c.Name)),
		resp.IntegerValue(c.arity()),
		stringsArray(c.Flags.Names()),
	)
}
