package server

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"gdprstore/internal/cluster"
)

// This file is the shared INFO section registry: every section (name,
// applicability, ordered key/value fields) is declared exactly once, and
// both renderings — the RESP `INFO` text reply and the ops server's
// `GET /info` JSON — are generated from it. Adding a section here is the
// whole job: the INFO summary line, the `INFO <section>` argument
// validation, the full-INFO composition and the HTTP surface all follow,
// so the two protocols cannot drift (ops asserts parity in its tests).

// InfoField is one key:value line of an INFO section.
type InfoField struct {
	Key   string
	Value string
}

// InfoSnapshot is one rendered section: its name and its fields in
// report order.
type InfoSnapshot struct {
	Name   string
	Fields []InfoField
}

// infoSection declares one section of the registry. present gates
// inclusion in the argument-less full INFO report; an explicitly
// requested section always renders (typically to a one-line "disabled"
// stub), matching Redis's behaviour for inapplicable sections.
type infoSection struct {
	name    string
	present func(s *Server) bool
	fields  func(s *Server) []InfoField
}

// infoRegistry lists every section in report order.
var infoRegistry = []infoSection{
	{"gdprstore", func(*Server) bool { return true }, (*Server).gdprstoreFields},
	{"audit", func(s *Server) bool { return s.store.Trail() != nil }, (*Server).auditFields},
	{"erasure", func(s *Server) bool { return s.store.ErasureStats().Enabled }, (*Server).erasureFields},
	{"retention", func(*Server) bool { return true }, (*Server).retentionFields},
	{"replication", func(*Server) bool { return true }, (*Server).replicationFields},
	{"cluster", func(s *Server) bool { return s.clusterInfo() != nil }, (*Server).clusterFields},
	{"commandstats", func(s *Server) bool { return len(s.cmdStats.Snapshots()) > 0 }, (*Server).commandStatsFields},
}

// InfoSectionNames returns the registered section names in report order.
func InfoSectionNames() []string {
	names := make([]string, len(infoRegistry))
	for i, sec := range infoRegistry {
		names[i] = sec.name
	}
	return names
}

// InfoSnapshot renders the named section ("" = every currently applicable
// section) as structured data. Unknown names error with the same message
// the RESP INFO command reports.
func (s *Server) InfoSnapshot(section string) ([]InfoSnapshot, error) {
	if section != "" {
		for _, sec := range infoRegistry {
			if sec.name == section {
				return []InfoSnapshot{{Name: sec.name, Fields: sec.fields(s)}}, nil
			}
		}
		return nil, fmt.Errorf("unknown INFO section '%s'", section)
	}
	out := make([]InfoSnapshot, 0, len(infoRegistry))
	for _, sec := range infoRegistry {
		if sec.present(s) {
			out = append(out, InfoSnapshot{Name: sec.name, Fields: sec.fields(s)})
		}
	}
	return out, nil
}

// renderInfoText renders snapshots in Redis INFO text style.
func renderInfoText(snaps []InfoSnapshot) string {
	var b strings.Builder
	for _, snap := range snaps {
		b.WriteString("# " + snap.Name + "\r\n")
		for _, f := range snap.Fields {
			b.WriteString(f.Key + ":" + f.Value + "\r\n")
		}
	}
	return b.String()
}

// Field-building shorthands.

func fstr(k, v string) InfoField { return InfoField{Key: k, Value: v} }
func fbool(k string, v bool) InfoField {
	return InfoField{Key: k, Value: strconv.FormatBool(v)}
}
func fint(k string, v int) InfoField {
	return InfoField{Key: k, Value: strconv.Itoa(v)}
}
func fint64(k string, v int64) InfoField {
	return InfoField{Key: k, Value: strconv.FormatInt(v, 10)}
}
func fuint(k string, v uint64) InfoField {
	return InfoField{Key: k, Value: strconv.FormatUint(v, 10)}
}

// gdprstoreFields renders the store-health section.
func (s *Server) gdprstoreFields() []InfoField {
	cfg := s.store.Config()
	fs := []InfoField{
		fbool("compliant", cfg.Compliant),
		fstr("timing", cfg.Timing.String()),
		fstr("capability", cfg.Capability.String()),
		fuint("commands", s.Commands()),
		fint("dbsize", s.store.Engine().Len()),
		fint("expires", s.store.Engine().ExpireLen()),
		fuint("expired_total", s.store.Engine().ExpiredCount()),
	}
	if l := s.store.Log(); l != nil {
		fs = append(fs,
			fint64("aof_size", l.Size()),
			fuint("aof_appends", l.Appends()),
			fuint("aof_syncs", l.Syncs()),
		)
	}
	if t := s.store.Trail(); t != nil {
		fs = append(fs,
			fuint("audit_seq", t.Seq()),
			fuint("audit_syncs", t.Syncs()),
		)
	}
	return fs
}

// auditFields renders the audit-pipeline section: queue pressure, drop
// and sink-error counters, and the last sink error, so operators can see
// a failing or shedding trail without grepping logs.
func (s *Server) auditFields() []InfoField {
	t := s.store.Trail()
	if t == nil {
		return []InfoField{fbool("audit_enabled", false)}
	}
	st := t.Stats()
	return []InfoField{
		fbool("audit_enabled", true),
		fstr("audit_mode", st.Mode.String()),
		fstr("audit_backpressure", st.Policy.String()),
		fint("audit_workers", st.Workers),
		fint("audit_queue_depth", st.QueueDepth),
		fint("audit_queue_cap", st.QueueCap),
		fuint("audit_seq", st.Seq),
		fuint("audit_enqueued", st.Enqueued),
		fuint("audit_processed", st.Processed),
		fuint("audit_dropped", st.Dropped),
		fuint("audit_sink_errors", st.SinkErrors),
		fuint("audit_syncs", st.Syncs),
		fbool("audit_mask", st.MaskEnabled),
		fuint("audit_masked", st.Masked),
		fstr("audit_last_error", st.LastErr),
	}
}

// erasureFields renders the crypto-shredding/lazy-delete sweep section:
// how many owners are logically erased, how much dead ciphertext still
// awaits physical reclamation, and how far the sweep trails the shreds.
func (s *Server) erasureFields() []InfoField {
	st := s.store.ErasureStats()
	if !st.Enabled {
		return []InfoField{fbool("erasure_envelope", false)}
	}
	return []InfoField{
		fbool("erasure_envelope", true),
		fint("erasure_shredded_owners", st.ShreddedOwners),
		fint("erasure_pending_owners", st.PendingOwners),
		fint("erasure_pending_records", st.PendingRecords),
		fuint("erasure_reclaimed_total", st.Reclaimed),
		fuint("erasure_sweep_cycles", st.SweepCycles),
		fuint("erasure_owners_drained", st.OwnersDrained),
		fint64("erasure_sweep_lag_ms", st.SweepLag.Milliseconds()),
		fint64("erasure_last_cycle_us", st.LastCycle.Microseconds()),
		fbool("erasure_sweeper_running", st.SweeperRunning),
	}
}

// retentionFields renders the retention-enforcement section — the
// compliance analogue of replication lag: how many records are past
// their storage-limitation deadline but still physically present, and
// how old the oldest overdue deadline is.
func (s *Server) retentionFields() []InfoField {
	st := s.store.RetentionStats()
	return []InfoField{
		fint("retention_tracked_deadlines", st.TrackedDeadlines),
		fint("retention_overdue_records", st.OverdueRecords),
		fint64("retention_lag_ms", st.Lag.Milliseconds()),
		fuint("retention_expired_total", st.ExpiredTotal),
		fbool("retention_expirer_running", st.ExpirerRunning),
	}
}

// replicationFields renders the replication topology as seen from this
// node: replica-side link state, or primary-side connected replicas and
// their acknowledged offsets.
func (s *Server) replicationFields() []InfoField {
	s.replMu.Lock()
	node := s.replNode
	s.replMu.Unlock()
	if node != nil {
		st := node.Status()
		host, port, _ := net.SplitHostPort(st.PrimaryAddr)
		return []InfoField{
			fstr("role", "replica"),
			fstr("master_host", host),
			fstr("master_port", port),
			fstr("master_link_status", st.Link.String()),
			fstr("master_replid", st.ReplID),
			fint64("replica_repl_offset", st.Offset),
			fuint("replica_applied", st.Applied),
			fuint("full_syncs", st.FullSyncs),
			fuint("reconnects", st.Reconnects),
		}
	}
	hub := s.store.Hub()
	if hub == nil {
		return []InfoField{
			fstr("role", "master"),
			fint("connected_replicas", 0),
			fint64("master_repl_offset", 0),
		}
	}
	links := hub.Links()
	offset := hub.Offset()
	fs := []InfoField{
		fstr("role", "master"),
		fstr("master_replid", hub.ID()),
		fint64("master_repl_offset", offset),
		fint("connected_replicas", len(links)),
	}
	for i, l := range links {
		fs = append(fs, fstr(fmt.Sprintf("replica%d", i),
			fmt.Sprintf("addr=%s,ack_offset=%d,lag=%d", l.Addr, l.AckOffset, offset-l.AckOffset)))
	}
	return fs
}

// clusterFields renders the cluster topology section.
func (s *Server) clusterFields() []InfoField {
	cs := s.clusterInfo()
	if cs == nil {
		return []InfoField{fstr("cluster_enabled", "0")}
	}
	nodes := cs.m.Nodes()
	migrating, importing := 0, 0
	for _, mg := range cs.topo.Migrations() {
		switch mg.State {
		case cluster.StateMigrating:
			migrating++
		case cluster.StateImporting:
			importing++
		}
	}
	fs := []InfoField{
		fstr("cluster_enabled", "1"),
		fstr("cluster_state", "ok"),
		fint("cluster_slots", cluster.NumSlots),
		fint("cluster_known_nodes", len(nodes)),
		fstr("cluster_self", cs.selfID),
		fint64("cluster_epoch", int64(cs.topo.Epoch())),
		fint("cluster_migrating_slots", migrating),
		fint("cluster_importing_slots", importing),
	}
	for _, n := range nodes {
		rs := make([]string, len(n.Ranges))
		for i, r := range n.Ranges {
			rs[i] = r.String()
		}
		slots := strings.Join(rs, ",")
		if slots == "" {
			slots = "none"
		}
		line := fmt.Sprintf("addr=%s,slots=%s", n.Addr, slots)
		if len(n.Replicas) > 0 {
			line += ",replicas=" + strings.Join(n.Replicas, "+")
		}
		fs = append(fs, fstr("cluster_node_"+n.ID, line))
	}
	return fs
}

// commandStatsFields renders the per-command metrics the middleware
// pipeline records (empty when no commands have run).
func (s *Server) commandStatsFields() []InfoField {
	snaps := s.cmdStats.Snapshots()
	names := make([]string, 0, len(snaps))
	for n := range snaps {
		names = append(names, n)
	}
	sort.Strings(names)
	fs := make([]InfoField, 0, len(names))
	for _, name := range names {
		snap := snaps[name]
		fs = append(fs, fstr("cmdstat_"+strings.ToLower(name),
			fmt.Sprintf("calls=%d,usec=%d,usec_per_call=%.2f,p99_usec=%d",
				snap.Count,
				int64(snap.Mean)*int64(snap.Count)/1000,
				float64(snap.Mean)/float64(time.Microsecond),
				snap.P99.Microseconds())))
	}
	return fs
}
