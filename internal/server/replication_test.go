package server

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/clock"
	"gdprstore/internal/core"
	"gdprstore/internal/replica"
	"gdprstore/internal/store"
	"gdprstore/internal/testutil"
	"gdprstore/pkg/gdprkv"
)

const replWait = 10 * time.Second

// replPair is a primary and a replica server attached over real TCP.
type replPair struct {
	pst, rst *core.Store
	psrv     *Server
	rsrv     *Server
	pcl, rcl *tclient
	clk      *clock.Virtual
}

// startReplPair boots a compliant primary and an empty replica server and
// attaches the replica over TCP via REPLICAOF. Both stores share one
// virtual clock so retention behaviour is deterministic.
func startReplPair(t *testing.T) *replPair {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := core.Config{
		Compliant:      true,
		Capability:     core.CapabilityPartial,
		AuditEnabled:   true,
		Clock:          clk,
		ExpiryStrategy: core.Ptr(store.ExpiryFastScan),
	}
	pst, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pst.Close() })
	rst, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rst.Close() })

	psrv, err := Listen("127.0.0.1:0", pst)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psrv.Close() })
	rsrv, err := Listen("127.0.0.1:0", rst)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close() })

	pcl := tdial(t, psrv.Addr())
	rcl := tdial(t, rsrv.Addr())

	host, port, err := net.SplitHostPort(psrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := rcl.ReplicaOf(host, port); err != nil {
		t.Fatal(err)
	}
	return &replPair{pst: pst, rst: rst, psrv: psrv, rsrv: rsrv, pcl: pcl, rcl: rcl, clk: clk}
}

// waitLinkUp blocks until the replica's link reports up.
func (p *replPair) waitLinkUp(t *testing.T) {
	t.Helper()
	testutil.Eventually(t, replWait, 0, func() bool {
		n := p.rsrv.ReplNode()
		return n != nil && n.Status().Link == replica.LinkUp
	}, "replica link never came up")
}

func TestReplicationEndToEnd(t *testing.T) {
	p := startReplPair(t)

	// Data written before the replica attaches arrives via full sync...
	if err := p.pcl.GPut("user:alice:profile", []byte("alice-data"),
		gdprkv.PutOptions{Owner: "alice", Purposes: []string{"ads"}}); err != nil {
		t.Fatal(err)
	}
	p.waitLinkUp(t)
	testutil.Eventually(t, replWait, 0, func() bool {
		v, err := p.rcl.GGet("user:alice:profile")
		return err == nil && string(v) == "alice-data"
	}, "full sync did not deliver pre-attach write")

	// ...and data written after it arrives via the live stream, metadata
	// included.
	if err := p.pcl.GPut("user:bob:profile", []byte("bob-data"),
		gdprkv.PutOptions{Owner: "bob", Purposes: []string{"ads"}}); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		v, err := p.rcl.GGet("user:bob:profile")
		return err == nil && string(v) == "bob-data"
	}, "live stream did not deliver post-attach write")
	testutil.Eventually(t, replWait, 0, func() bool {
		m, err := p.rst.Metadata(core.Ctx{}, "user:bob:profile")
		return err == nil && m.Owner == "bob"
	}, "metadata did not replicate")

	// FORGETUSER on the primary erases the subject's keys, metadata, and
	// leaves an audit record on the replica.
	if n, err := p.pcl.ForgetUser("alice"); err != nil || n != 1 {
		t.Fatalf("forget: n=%d err=%v", n, err)
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		return !p.rst.Engine().Exists("user:alice:profile")
	}, "erasure did not reach the replica's engine")
	testutil.Eventually(t, replWait, 0, func() bool {
		_, err := p.rst.Metadata(core.Ctx{}, "user:alice:profile")
		return err != nil
	}, "erased subject's metadata survived on the replica")
	testutil.Eventually(t, replWait, 0, func() bool {
		recs, err := p.rst.Trail().Query(audit.Filter{Op: "FORGETUSER", Owner: "alice"})
		return err == nil && len(recs) == 1 && recs[0].Actor == "system:replication"
	}, "replica audit trail does not evidence the erasure")

	// Unrelated data is untouched.
	if v, err := p.rcl.GGet("user:bob:profile"); err != nil || string(v) != "bob-data" {
		t.Fatalf("unrelated record damaged: %q %v", v, err)
	}
}

func TestReplicationRetentionExpiryPropagates(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)
	if err := p.pcl.GPut("ttl:key", []byte("short-lived"),
		gdprkv.PutOptions{Owner: "carol", Purposes: []string{"ads"}, TTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		return p.rst.Engine().Exists("ttl:key")
	}, "TTL'd key did not replicate")

	// Advance time past the deadline and run the primary's expiry cycle:
	// the generated DEL must stream to the replica.
	p.clk.Advance(2 * time.Minute)
	p.pst.ExpiryCycle()
	testutil.Eventually(t, replWait, 0, func() bool {
		return !p.rst.Engine().Exists("ttl:key")
	}, "retention-expiry deletion did not reach the replica")
}

func TestReplicationReconnectResumesWithoutLoss(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)
	if err := p.pcl.GPut("k:pre", []byte("1"), gdprkv.PutOptions{Owner: "o", Purposes: []string{"p"}}); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		return p.rst.Engine().Exists("k:pre")
	}, "pre-drop write")

	// Sever every link; writes continue while the replica is down.
	p.pst.Hub().DisconnectReplicas()
	for i := 0; i < 10; i++ {
		if err := p.pcl.GPut(fmt.Sprintf("k:during%d", i), []byte("2"),
			gdprkv.PutOptions{Owner: "o", Purposes: []string{"p"}}); err != nil {
			t.Fatal(err)
		}
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		for i := 0; i < 10; i++ {
			if !p.rst.Engine().Exists(fmt.Sprintf("k:during%d", i)) {
				return false
			}
		}
		return true
	}, "writes during the drop were lost")
	// The resume must have been a partial resync, not a second snapshot.
	if st := p.rsrv.ReplNode().Status(); st.FullSyncs != 1 {
		t.Fatalf("full syncs = %d, want 1 (backlog should have covered the gap)", st.FullSyncs)
	}
}

func TestReplicaRejectsWritesUntilPromoted(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)

	err := p.rcl.GPut("direct", []byte("x"), gdprkv.PutOptions{Owner: "o", Purposes: []string{"p"}})
	if err == nil || !strings.Contains(err.Error(), "READONLY") {
		t.Fatalf("write on replica: err = %v, want READONLY", err)
	}
	if err := p.rcl.Set("raw", []byte("x")); err == nil || !strings.Contains(err.Error(), "READONLY") {
		t.Fatalf("raw write on replica: err = %v, want READONLY", err)
	}
	// Reads are served.
	if err := p.rcl.Ping(); err != nil {
		t.Fatal(err)
	}

	// Promotion makes it writable again.
	if err := p.rcl.PromoteToPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := p.rcl.Set("raw", []byte("x")); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if p.rsrv.ReplNode() != nil {
		t.Fatal("node still attached after promotion")
	}
}

func TestInfoReplicationSections(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)
	if err := p.pcl.GPut("k", []byte("v"), gdprkv.PutOptions{Owner: "o", Purposes: []string{"p"}}); err != nil {
		t.Fatal(err)
	}

	testutil.Eventually(t, replWait, 0, func() bool {
		info, err := p.pcl.Info("replication")
		return err == nil && strings.Contains(info, "role:master") &&
			strings.Contains(info, "connected_replicas:1") &&
			strings.Contains(info, "master_replid:"+p.pst.Hub().ID())
	}, "primary INFO replication incomplete")

	testutil.Eventually(t, replWait, 0, func() bool {
		info, err := p.rcl.Info("replication")
		return err == nil && strings.Contains(info, "role:replica") &&
			strings.Contains(info, "master_link_status:up") &&
			strings.Contains(info, "master_replid:"+p.pst.Hub().ID())
	}, "replica INFO replication incomplete")

	// Ack offsets converge to the master offset (lag drains to 0).
	testutil.Eventually(t, replWait, 0, func() bool {
		links := p.pst.Hub().Links()
		return len(links) == 1 && links[0].AckOffset == p.pst.Hub().Offset()
	}, "replica ack never converged")

	if _, err := p.pcl.Info("bogus"); err == nil {
		t.Fatal("unknown INFO section accepted")
	}
}

func TestPSYNCRequiresAuthUnderACL(t *testing.T) {
	st, err := core.Open(core.Config{
		Compliant:    true,
		Capability:   core.CapabilityFull,
		AuditEnabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	st.ACL().AddPrincipal(acl.Principal{ID: "dpo", Role: acl.RoleController})
	srv, err := Listen("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cl := tdial(t, srv.Addr())
	if _, err := cl.Do("PSYNC", "?", "-1"); err == nil || !strings.Contains(err.Error(), "DENIED") {
		t.Fatalf("unauthenticated PSYNC: err = %v, want DENIED", err)
	}
}

func TestPromoteHookFires(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)
	var fired atomic.Bool
	p.rsrv.SetPromoteHook(func() { fired.Store(true) })
	if err := p.rcl.PromoteToPrimary(); err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("promote hook did not fire")
	}
	// Promoting a server that is already primary must not re-fire it.
	fired.Store(false)
	if err := p.rcl.PromoteToPrimary(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() {
		t.Fatal("promote hook fired on a no-op promotion")
	}
}

func TestFlushAllClearsMetadataEverywhere(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)
	if err := p.pcl.GPut("f:k", []byte("v"), gdprkv.PutOptions{Owner: "o", Purposes: []string{"p"}}); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, replWait, 0, func() bool {
		return p.rst.Engine().Exists("f:k")
	}, "write did not replicate")

	if _, err := p.pcl.Do("FLUSHALL"); err != nil {
		t.Fatal(err)
	}
	// The live primary must not serve ghost metadata after the flush...
	if n := p.pst.MetaCount(); n != 0 {
		t.Fatalf("primary metadata survived FLUSHALL: %d entries", n)
	}
	// ...and the replica converges to the same reset.
	testutil.Eventually(t, replWait, 0, func() bool {
		return !p.rst.Engine().Exists("f:k") && p.rst.MetaCount() == 0
	}, "FLUSHALL did not converge on the replica")
}

func TestChainedReplicationRejected(t *testing.T) {
	p := startReplPair(t)
	p.waitLinkUp(t)
	if _, err := p.rcl.Do("PSYNC", "?", "-1"); err == nil ||
		!strings.Contains(err.Error(), "chained replication") {
		t.Fatalf("PSYNC against a replica: err = %v, want chained-replication rejection", err)
	}
}

func TestReplicaOfValidation(t *testing.T) {
	_, cl := startServer(t, core.Baseline())
	if _, err := cl.Do("REPLICAOF", "localhost", "not-a-port"); err == nil {
		t.Fatal("bad port accepted")
	}
	// NO ONE on a primary is a harmless no-op.
	if err := cl.PromoteToPrimary(); err != nil {
		t.Fatal(err)
	}
}
