package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/core"
	"gdprstore/internal/resp"
	"gdprstore/pkg/gdprkv"
)

func TestUnknownCommandErrors(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	_, err := c.Do("NOSUCHCMD", "a", "b")
	var se *gdprkv.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Message, "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

// TestArityEnforcedFromTable sweeps the whole registry: every command with
// a minimum argument count must reject an empty invocation, and every
// command with a maximum must reject an oversized one, with the standard
// wrong-arity message.
func TestArityEnforcedFromTable(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	for name, cmd := range commandTable {
		if cmd.MinArgs > 0 {
			_, err := c.Do(name)
			if err == nil || !strings.Contains(err.Error(), "wrong number of arguments") {
				t.Errorf("%s with 0 args: err = %v, want wrong-arity", name, err)
			}
		}
		if cmd.MaxArgs >= 0 {
			args := make([]string, cmd.MaxArgs+2)
			args[0] = name
			for i := 1; i < len(args); i++ {
				args[i] = "x"
			}
			_, err := c.Do(args...)
			if err == nil || !strings.Contains(err.Error(), "wrong number of arguments") {
				t.Errorf("%s with %d args: err = %v, want wrong-arity", name, cmd.MaxArgs+1, err)
			}
		}
	}
}

// TestGDPRFlagEnforcement checks the compliance middleware: every
// gdpr-flagged command is refused with DENIED before AUTH on an enforcing
// store, and with BASELINE on a non-compliant store — before its handler
// runs.
func TestGDPRFlagEnforcement(t *testing.T) {
	gdprCmds := [][]string{
		{"GGET", "k"}, {"GPUT", "k", "v"}, {"GDEL", "k"}, {"GETMETA", "k"},
		{"GETUSER", "alice"}, {"ACCESS", "alice"}, {"EXPORTUSER", "alice"},
		{"FORGETUSER", "alice"}, {"OBJECT", "alice", "ads"}, {"UNOBJECT", "alice", "ads"},
		{"OWNERKEYS", "alice"}, {"KEYSBYPURPOSE", "billing"},
		{"GMPUT", "1", "k", "v"}, {"GMGET", "k"},
		{"GETUSERDATA", "alice"}, {"FORGETUSERLOCAL", "alice"}, {"GETUSERLOCAL", "alice"},
		{"EXPORTUSERLOCAL", "alice"}, {"OBJECTLOCAL", "alice", "ads"}, {"UNOBJECTLOCAL", "alice", "ads"},
	}

	t.Run("denied before AUTH on strict store", func(t *testing.T) {
		_, c := startServer(t, core.Strict(""))
		for _, cmd := range gdprCmds {
			_, err := c.Do(cmd...)
			if !errors.Is(err, gdprkv.ErrDenied) {
				t.Errorf("%v before AUTH: err = %v, want ErrDenied", cmd, err)
			}
		}
	})

	t.Run("baseline store replies BASELINE", func(t *testing.T) {
		_, c := startServer(t, core.Baseline())
		for _, cmd := range gdprCmds {
			_, err := c.Do(cmd...)
			if !errors.Is(err, gdprkv.ErrBaseline) {
				t.Errorf("%v on baseline: err = %v, want ErrBaseline", cmd, err)
			}
		}
	})
}

func TestCommandCountMatchesTable(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	v, err := c.Do("COMMAND", "COUNT")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != int64(len(commandTable)) {
		t.Fatalf("COMMAND COUNT = %d, table has %d", v.Int, len(commandTable))
	}
	// The full listing must agree with COUNT.
	lv, err := c.Do("COMMAND")
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Array) != len(commandTable) {
		t.Fatalf("COMMAND listed %d entries, table has %d", len(lv.Array), len(commandTable))
	}
	// Spot-check one row: [name, arity, [flags...]].
	var gput []resp.Value
	for _, row := range lv.Array {
		if row.Array[0].Text() == "gput" {
			gput = row.Array
		}
	}
	if gput == nil {
		t.Fatal("GPUT missing from COMMAND")
	}
	if gput[1].Int != -3 {
		t.Fatalf("GPUT arity = %d, want -3", gput[1].Int)
	}
	flags := make(map[string]bool)
	for _, f := range gput[2].Array {
		flags[f.Text()] = true
	}
	if !flags["write"] || !flags["gdpr"] {
		t.Fatalf("GPUT flags = %v", flags)
	}
}

func TestCommandDocs(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	v, err := c.Do("COMMAND", "DOCS", "GMPUT")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Array) != 2 || v.Array[0].Text() != "gmput" {
		t.Fatalf("docs = %v", v.Array)
	}
	doc := v.Array[1].Array
	found := false
	for i := 0; i+1 < len(doc); i += 2 {
		if doc[i].Text() == "summary" && strings.Contains(doc[i+1].Text(), "batch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("GMPUT summary missing: %v", doc)
	}
	if _, err := c.Do("COMMAND", "NOPE"); err == nil {
		t.Fatal("bogus subcommand accepted")
	}
}

// TestBatchRoundTrip writes 100 keys with one GMPUT and reads them back
// with one GMGET through a real TCP server.
func TestBatchRoundTrip(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	if err := c.Auth("controller"); err != nil {
		t.Fatal(err)
	}
	if err := c.Purpose("billing"); err != nil {
		t.Fatal(err)
	}
	const n = 100
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch:%03d", i)
		vals[i] = []byte(fmt.Sprintf("value-%03d", i))
	}
	err := c.GMPut(keys, vals, gdprkv.PutOptions{
		Owner: "alice", Purposes: []string{"billing"}, TTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.GMGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results", len(got))
	}
	for i, g := range got {
		if g.Err != nil {
			t.Fatalf("key %s: %v", keys[i], g.Err)
		}
		if string(g.Value) != string(vals[i]) {
			t.Fatalf("key %s = %q, want %q", keys[i], g.Value, vals[i])
		}
	}
	// Metadata landed for every key (owner index sees all 100).
	okeys, err := c.Do("OWNERKEYS", "alice")
	if err != nil || len(okeys.Array) != n {
		t.Fatalf("ownerkeys = %d, %v", len(okeys.Array), err)
	}
	// Missing and denied keys report positionally without failing the batch.
	c.Purpose("marketing")
	mixed, err := c.GMGet("batch:000", "absent")
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(mixed[0].Err, gdprkv.ErrBadPurpose) {
		t.Fatalf("denied slot = %v", mixed[0].Err)
	}
	if !errors.Is(mixed[1].Err, gdprkv.ErrNotFound) {
		t.Fatalf("missing slot = %v", mixed[1].Err)
	}
}

func TestMSetMGetVanilla(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	keys := []string{"a", "b", "c"}
	vals := [][]byte{[]byte("1"), []byte("2"), []byte("3")}
	if err := c.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := c.MGet("a", "missing", "c")
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "1" || got[1] != nil || string(got[2]) != "3" {
		t.Fatalf("mget = %q", got)
	}
	// Odd argument count is a syntax error.
	if _, err := c.Do("MSET", "a", "1", "b"); err == nil {
		t.Fatal("odd MSET accepted")
	}
}

// TestPanicRecoveryMiddleware registers a throwaway command whose handler
// panics and checks the connection survives with an ERR reply.
func TestPanicRecoveryMiddleware(t *testing.T) {
	register(Command{
		Name: "PANICTEST", MinArgs: 0, MaxArgs: 0,
		Summary: "test-only panicking command",
		Handler: func(*Ctx) (resp.Value, error) { panic("boom") },
	})
	defer delete(commandTable, "PANICTEST")

	_, c := startServer(t, core.Baseline())
	_, err := c.Do("PANICTEST")
	var se *gdprkv.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Message, "internal error") {
		t.Fatalf("err = %v, want internal error", err)
	}
	// The connection must still work.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

// TestCommandHookObservesReplies installs a hook and checks it sees names,
// final replies (post error mapping) and latencies.
func TestCommandHookObservesReplies(t *testing.T) {
	srv, c := startServer(t, core.Strict(""))
	var mu sync.Mutex
	type obs struct {
		name  string
		reply string
	}
	var seen []obs
	srv.SetCommandHook(func(name string, args [][]byte, reply resp.Value, d time.Duration) {
		mu.Lock()
		seen = append(seen, obs{name, reply.Text()})
		mu.Unlock()
		if d < 0 {
			t.Error("negative latency")
		}
	})
	c.Ping()
	c.Do("GGET", "k") // denied pre-AUTH: hook must see the mapped error
	srv.SetCommandHook(nil)
	c.Ping() // not observed

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("hook saw %d commands: %v", len(seen), seen)
	}
	if seen[0].name != "PING" || seen[0].reply != "PONG" {
		t.Fatalf("first = %+v", seen[0])
	}
	if seen[1].name != "GGET" || !strings.HasPrefix(seen[1].reply, "DENIED") {
		t.Fatalf("second = %+v", seen[1])
	}
}

// TestCommandStatsRecorded checks the metrics middleware feeds INFO's
// commandstats section.
func TestCommandStatsRecorded(t *testing.T) {
	srv, c := startServer(t, core.Baseline())
	for i := 0; i < 5; i++ {
		c.Ping()
	}
	c.Set("k", []byte("v"))
	snaps := srv.CommandStats().Snapshots()
	// The SDK pings once at dial time, so the five explicit pings are a
	// floor, not an exact count.
	if snaps["PING"].Count < 5 {
		t.Fatalf("PING count = %d", snaps["PING"].Count)
	}
	if snaps["SET"].Count != 1 {
		t.Fatalf("SET count = %d", snaps["SET"].Count)
	}
	v, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Text(), "cmdstat_ping:calls=") {
		t.Fatalf("INFO missing commandstats:\n%s", v.Text())
	}
}

// TestBatchSurvivesRestart checks the batched AOF records (MSETEX +
// GMETAB) replay into identical state.
func TestBatchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Strict("")
	cfg.AOFPath = dir + "/batch.aof"
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]core.BatchEntry, 50)
	for i := range entries {
		entries[i] = core.BatchEntry{
			Key:   fmt.Sprintf("k%02d", i),
			Value: []byte(fmt.Sprintf("v%02d", i)),
		}
	}
	ctx := core.Ctx{Actor: "ctl", Purpose: "svc"}
	st.ACL().SetEnforce(false)
	if err := st.PutBatch(ctx, entries, core.PutOptions{
		Owner: "alice", Purposes: []string{"svc"}, TTL: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	st2.ACL().SetEnforce(false)
	results, err := st2.GetBatch(core.Ctx{Actor: "ctl", Purpose: "svc"}, []string{"k00", "k49"})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"v00", "v49"} {
		if results[i].Err != nil || string(results[i].Value) != want {
			t.Fatalf("replayed slot %d = %q, %v", i, results[i].Value, results[i].Err)
		}
	}
	m, err := st2.Metadata(core.Ctx{Actor: "ctl"}, "k25")
	if err != nil || m.Owner != "alice" {
		t.Fatalf("replayed meta = %+v, %v", m, err)
	}
}

// --- amortisation benchmarks (acceptance: GMPUT batch-of-64 ≥ 3× the
// throughput of 64 sequential GPUTs over the same connection) ---

func benchServer(b *testing.B) *tclient {
	b.Helper()
	st, err := core.Open(core.Strict(""))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", st)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close(); st.Close() })
	c := tdial(b, srv.Addr())
	for _, cmd := range [][]string{
		{"ACL", "ADDPRINCIPAL", "bench", "controller"},
		{"AUTH", "bench"}, {"PURPOSE", "billing"},
	} {
		if _, err := c.Do(cmd...); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

const benchBatch = 64

// BenchmarkGPutSequential64 writes 64 records as 64 GPUT round trips per
// iteration: the paper's one-key-at-a-time compliance cost.
func BenchmarkGPutSequential64(b *testing.B) {
	c := benchServer(b)
	meta := gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Hour}
	val := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			if err := c.GPut(fmt.Sprintf("k%02d", j), val, meta); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "keys/s")
}

// BenchmarkGMPutBatch64 writes the same 64 records as a single GMPUT per
// iteration: one round trip, one lock, one AOF append, one audit record.
func BenchmarkGMPutBatch64(b *testing.B) {
	c := benchServer(b)
	meta := gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Hour}
	keys := make([]string, benchBatch)
	vals := make([][]byte, benchBatch)
	for j := range keys {
		keys[j] = fmt.Sprintf("k%02d", j)
		vals[j] = []byte("0123456789abcdef")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.GMPut(keys, vals, meta); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "keys/s")
}

// BenchmarkGGetSequential64 and BenchmarkGMGetBatch64 are the read-side
// pair.
func BenchmarkGGetSequential64(b *testing.B) {
	c := benchServer(b)
	seedBenchKeys(b, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			if _, err := c.GGet(fmt.Sprintf("k%02d", j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkGMGetBatch64(b *testing.B) {
	c := benchServer(b)
	seedBenchKeys(b, c)
	keys := make([]string, benchBatch)
	for j := range keys {
		keys[j] = fmt.Sprintf("k%02d", j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GMGet(keys...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "keys/s")
}

func seedBenchKeys(b *testing.B, c *tclient) {
	b.Helper()
	meta := gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Hour}
	keys := make([]string, benchBatch)
	vals := make([][]byte, benchBatch)
	for j := range keys {
		keys[j] = fmt.Sprintf("k%02d", j)
		vals[j] = []byte("0123456789abcdef")
	}
	if err := c.GMPut(keys, vals, meta); err != nil {
		b.Fatal(err)
	}
}
