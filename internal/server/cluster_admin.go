package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gdprstore/internal/cluster"
	"gdprstore/internal/resp"
)

// This file is the CLUSTER admin command: one declarative subcommand
// table, mirroring the top-level command registry, that every subcommand
// — introspection (SLOTS/INFO/MYID/KEYSLOT/TOPOLOGY), slot bookkeeping
// (COUNTKEYSINSLOT/GETKEYSINSLOT), and the elasticity verbs
// (SETSLOT/SETNODE/MIGRATESLOT) — dispatches through. CLUSTER HELP is
// generated from the same table, so the help text can never drift from
// the dispatch.

// clusterSub is one row of the CLUSTER subcommand table.
type clusterSub struct {
	// name is the canonical (upper-case) subcommand token.
	name string
	// usage is the argument tail rendered in CLUSTER HELP ("" when the
	// subcommand takes none).
	usage string
	// minArgs/maxArgs bound the arguments after the subcommand token.
	minArgs, maxArgs int
	// summary is the one-line description HELP reports.
	summary string
	// needsCluster rejects the subcommand while cluster mode is off (cs
	// is non-nil in the handler when set).
	needsCluster bool
	handler      func(ctx *Ctx, cs *clusterState, args [][]byte) (resp.Value, error)
}

// clusterSubs is the table, in HELP display order.
var clusterSubs = []clusterSub{
	{
		name: "SLOTS", summary: "slot ranges with their primary and replicas",
		handler: func(ctx *Ctx, cs *clusterState, _ [][]byte) (resp.Value, error) {
			if cs == nil {
				return resp.ArrayValue(), nil
			}
			return clusterSlotsValue(cs.m), nil
		},
	},
	{
		name: "INFO", summary: "cluster state in INFO field format",
		handler: func(ctx *Ctx, _ *clusterState, _ [][]byte) (resp.Value, error) {
			snap := InfoSnapshot{Name: "cluster", Fields: ctx.Srv.clusterFields()}
			return resp.BulkStringValue(renderInfoText([]InfoSnapshot{snap})), nil
		},
	},
	{
		name: "MYID", summary: "this node's id", needsCluster: true,
		handler: func(_ *Ctx, cs *clusterState, _ [][]byte) (resp.Value, error) {
			return resp.BulkStringValue(cs.selfID), nil
		},
	},
	{
		name: "KEYSLOT", usage: "key", minArgs: 1, maxArgs: 1,
		summary: "the hash slot a key maps to",
		handler: func(_ *Ctx, _ *clusterState, args [][]byte) (resp.Value, error) {
			return resp.IntegerValue(int64(cluster.Slot(string(args[0])))), nil
		},
	},
	{
		name: "TOPOLOGY", summary: "epoch-stamped topology: [epoch, slots, migrations]",
		needsCluster: true,
		handler: func(_ *Ctx, cs *clusterState, _ [][]byte) (resp.Value, error) {
			return clusterTopologyValue(cs.topo), nil
		},
	},
	{
		name: "SETSLOT", usage: "slot MIGRATING|IMPORTING node-id | STABLE | NODE node-id",
		minArgs: 2, maxArgs: 3, needsCluster: true,
		summary: "advance a slot through the migration state machine (bumps the epoch)",
		handler: cmdClusterSetSlot,
	},
	{
		name: "SETNODE", usage: "node-id addr", minArgs: 2, maxArgs: 2, needsCluster: true,
		summary: "re-point a node id at a new address after failover (bumps the epoch)",
		handler: cmdClusterSetNode,
	},
	{
		name: "COUNTKEYSINSLOT", usage: "slot", minArgs: 1, maxArgs: 1, needsCluster: true,
		summary: "number of live local keys in a slot",
		handler: func(ctx *Ctx, _ *clusterState, args [][]byte) (resp.Value, error) {
			slot, err := parseSlot(args[0])
			if err != nil {
				return resp.Value{}, err
			}
			return resp.IntegerValue(int64(len(ctx.Srv.keysInSlot(slot, -1)))), nil
		},
	},
	{
		name: "GETKEYSINSLOT", usage: "slot count", minArgs: 2, maxArgs: 2, needsCluster: true,
		summary: "up to count live local keys in a slot",
		handler: func(ctx *Ctx, _ *clusterState, args [][]byte) (resp.Value, error) {
			slot, err := parseSlot(args[0])
			if err != nil {
				return resp.Value{}, err
			}
			n, err := strconv.Atoi(string(args[1]))
			if err != nil || n < 0 {
				return resp.Value{}, fmt.Errorf("invalid count %q", string(args[1]))
			}
			return stringsArray(ctx.Srv.keysInSlot(slot, n)), nil
		},
	},
	{
		name: "MIGRATESLOT", usage: "slot", minArgs: 1, maxArgs: 1, needsCluster: true,
		summary: "stream a MIGRATING slot's keys to its destination (run on the source)",
		handler: cmdClusterMigrateSlot,
	},
	// HELP's handler is wired in init(): it renders this very table, which
	// would otherwise be an initialization cycle.
	{name: "HELP", summary: "this listing"},
}

// clusterSubByName is the dispatch index, built from the table at init.
var clusterSubByName = func() map[string]*clusterSub {
	m := make(map[string]*clusterSub, len(clusterSubs))
	for i := range clusterSubs {
		sub := &clusterSubs[i]
		if sub.name != strings.ToUpper(sub.name) {
			panic("server: CLUSTER subcommand must be upper-case: " + sub.name)
		}
		if _, dup := m[sub.name]; dup {
			panic("server: duplicate CLUSTER subcommand " + sub.name)
		}
		m[sub.name] = sub
	}
	return m
}()

func init() {
	clusterSubByName["HELP"].handler = cmdClusterHelp
	register(Command{
		Name: "CLUSTER", MinArgs: 1, MaxArgs: -1, Flags: FlagReadonly | FlagAdmin,
		Summary: "cluster administration (see CLUSTER HELP)",
		Handler: cmdCluster,
	})
}

func cmdCluster(ctx *Ctx) (resp.Value, error) {
	sub, ok := clusterSubByName[strings.ToUpper(string(ctx.Args[0]))]
	if !ok {
		return resp.Value{}, fmt.Errorf("unknown CLUSTER subcommand '%s' (see CLUSTER HELP)", string(ctx.Args[0]))
	}
	args := ctx.Args[1:]
	if len(args) < sub.minArgs || (sub.maxArgs >= 0 && len(args) > sub.maxArgs) {
		return resp.Value{}, fmt.Errorf("wrong number of arguments for 'CLUSTER %s' (usage: CLUSTER %s)",
			sub.name, strings.TrimSpace(sub.name+" "+sub.usage))
	}
	cs := ctx.Srv.clusterInfo()
	if sub.needsCluster && cs == nil {
		return resp.Value{}, errors.New("this instance has cluster support disabled")
	}
	return sub.handler(ctx, cs, args)
}

// cmdClusterHelp renders the table as CLUSTER HELP lines.
func cmdClusterHelp(_ *Ctx, _ *clusterState, _ [][]byte) (resp.Value, error) {
	lines := make([]string, 0, len(clusterSubs))
	for _, sub := range clusterSubs {
		u := sub.name
		if sub.usage != "" {
			u += " " + sub.usage
		}
		lines = append(lines, fmt.Sprintf("CLUSTER %s — %s", u, sub.summary))
	}
	return stringsArray(lines), nil
}

// parseSlot parses a slot argument, bounds-checked against NumSlots.
func parseSlot(arg []byte) (uint16, error) {
	n, err := strconv.ParseUint(string(arg), 10, 16)
	if err != nil || n >= cluster.NumSlots {
		return 0, fmt.Errorf("invalid slot %q (slots are 0-%d)", string(arg), cluster.NumSlots-1)
	}
	return uint16(n), nil
}

// keysInSlot lists this node's live keys hashing to slot, sorted; max
// bounds the result (negative means all). Crypto-erased ghosts are
// excluded — they are not data anymore.
func (s *Server) keysInSlot(slot uint16, max int) []string {
	var out []string
	for _, k := range s.store.Engine().Keys("*") {
		if cluster.Slot(k) != slot || !s.store.KeyVisible(k) {
			continue
		}
		out = append(out, k)
	}
	sort.Strings(out)
	if max >= 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// clusterTopologyValue renders the full versioned topology:
// [epoch, slots (CLUSTER SLOTS shape, replicas included), migrations],
// where migrations is a list of [slot, state, peer-id] triples for this
// node's in-flight slot transfers.
func clusterTopologyValue(t *cluster.Topology) resp.Value {
	migs := t.Migrations()
	slots := make([]uint16, 0, len(migs))
	for s := range migs {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	mvs := make([]resp.Value, 0, len(slots))
	for _, s := range slots {
		mg := migs[s]
		mvs = append(mvs, resp.ArrayValue(
			resp.IntegerValue(int64(s)),
			resp.BulkStringValue(mg.State.String()),
			resp.BulkStringValue(mg.PeerID),
		))
	}
	return resp.ArrayValue(
		resp.IntegerValue(int64(t.Epoch())),
		clusterSlotsValue(t.Map()),
		resp.ArrayValue(mvs...),
	)
}

// cmdClusterSetSlot advances one slot through the migration state
// machine. The operator issues the same sequence on both ends:
//
//	dest:   CLUSTER SETSLOT <slot> IMPORTING <src-id>
//	source: CLUSTER SETSLOT <slot> MIGRATING <dest-id>
//	source: CLUSTER MIGRATESLOT <slot>
//	all:    CLUSTER SETSLOT <slot> NODE <dest-id>
func cmdClusterSetSlot(ctx *Ctx, _ *clusterState, args [][]byte) (resp.Value, error) {
	slot, err := parseSlot(args[0])
	if err != nil {
		return resp.Value{}, err
	}
	verb := strings.ToUpper(string(args[1]))
	needsID := verb == "MIGRATING" || verb == "IMPORTING" || verb == "NODE"
	if needsID != (len(args) == 3) {
		return resp.Value{}, errSyntax
	}
	err = ctx.Srv.swapTopology(func(t *cluster.Topology) (*cluster.Topology, error) {
		switch verb {
		case "MIGRATING":
			return t.WithMigrating(slot, string(args[2]))
		case "IMPORTING":
			return t.WithImporting(slot, string(args[2]))
		case "STABLE":
			return t.WithStable(slot), nil
		case "NODE":
			return t.WithSlotOwner(slot, string(args[2]))
		default:
			return nil, fmt.Errorf("unknown SETSLOT verb '%s'", string(args[1]))
		}
	})
	if err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}

// cmdClusterSetNode re-points a node id at a new address: the failover
// finalizer, issued on every surviving node (and the promoted replica)
// after REPLICAOF NO ONE.
func cmdClusterSetNode(ctx *Ctx, _ *clusterState, args [][]byte) (resp.Value, error) {
	addr := string(args[1])
	if !strings.Contains(addr, ":") {
		return resp.Value{}, fmt.Errorf("address %q is not host:port", addr)
	}
	err := ctx.Srv.swapTopology(func(t *cluster.Topology) (*cluster.Topology, error) {
		return t.WithNodeAddr(string(args[0]), addr)
	})
	if err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}
