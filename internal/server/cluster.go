package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/cluster"
	"gdprstore/internal/resp"
	"gdprstore/internal/wirecode"
)

// This file is the cluster-mode surface of the server: slot-ownership
// enforcement (MOVED redirects and CROSSSLOT batch rejection) as a
// middleware stage, the CLUSTER introspection command, and the
// cluster-wide rights coordinator that fans FORGETUSER/GETUSER out to
// every primary so Article 15/17 guarantees hold across the whole
// partitioned keyspace. The slot math and topology map live in
// internal/cluster; this file wires them to the command pipeline.

// DefaultClusterFanoutTimeout bounds each peer call of a rights fan-out.
const DefaultClusterFanoutTimeout = 5 * time.Second

// ClusterConfig enables cluster mode on a server.
type ClusterConfig struct {
	// Self is this server's node id in the map.
	Self string
	// Map is the static slot topology shared by every node.
	Map *cluster.Map
	// FanoutTimeout bounds each peer call of a rights fan-out
	// (DefaultClusterFanoutTimeout when zero).
	FanoutTimeout time.Duration
}

// clusterState is the resolved cluster configuration, swapped atomically
// so the hot path reads it lock-free. topo is this node's versioned view
// (epoch, slot map, in-flight migrations); m caches topo.Map() so the
// slot check dereferences one pointer. selfID is stable across topology
// mutations — the node's address in the map may change (failover), its
// identity does not.
type clusterState struct {
	selfID  string
	topo    *cluster.Topology
	m       *cluster.Map
	timeout time.Duration
}

// self returns this node's current entry in the map.
func (cs *clusterState) self() cluster.Node {
	n, _ := cs.m.NodeByID(cs.selfID)
	return n
}

// EnableCluster puts the server in cluster mode (or re-points the slot
// map when already enabled — the new map starts a fresh epoch-1
// topology). Self must name a node of the map, and that node's Addr
// should be how *other* nodes and clients reach this server.
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	if cfg.Map == nil {
		return errors.New("server: cluster: nil slot map")
	}
	if _, ok := cfg.Map.NodeByID(cfg.Self); !ok {
		return fmt.Errorf("server: cluster: self id %q is not in the map", cfg.Self)
	}
	timeout := cfg.FanoutTimeout
	if timeout <= 0 {
		timeout = DefaultClusterFanoutTimeout
	}
	topo := cluster.NewTopology(cfg.Map)
	s.clusterMu.Lock()
	s.clusterSt.Store(&clusterState{selfID: cfg.Self, topo: topo, m: topo.Map(), timeout: timeout})
	s.clusterMu.Unlock()
	return nil
}

// clusterInfo returns the current cluster state, nil when cluster mode is
// off.
func (s *Server) clusterInfo() *clusterState { return s.clusterSt.Load() }

// swapTopology applies one admin mutation to the current topology under
// clusterMu, so concurrent CLUSTER SETSLOT/SETNODE commands serialize and
// every accepted mutation bumps the epoch exactly once.
func (s *Server) swapTopology(mutate func(*cluster.Topology) (*cluster.Topology, error)) error {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	cs := s.clusterSt.Load()
	if cs == nil {
		return errors.New("this instance has cluster support disabled")
	}
	next, err := mutate(cs.topo)
	if err != nil {
		return err
	}
	s.clusterSt.Store(&clusterState{selfID: cs.selfID, topo: next, m: next.Map(), timeout: cs.timeout})
	return nil
}

// codedError is an error whose text is the complete RESP error reply,
// wire-code prefix included (MOVED/CROSSSLOT/CLUSTERDOWN). errReply
// passes it through verbatim.
type codedError struct{ text string }

func (e codedError) Error() string { return e.text }

func movedError(slot uint16, addr string) error {
	return codedError{text: fmt.Sprintf("%s %d %s", wirecode.Moved, slot, addr)}
}

// askError is the one-shot migration redirect: retry this command (only)
// at addr after an ASKING handshake; ownership has not changed.
func askError(slot uint16, addr string) error {
	return codedError{text: fmt.Sprintf("%s %d %s", wirecode.Ask, slot, addr)}
}

var errCrossSlot = codedError{text: wirecode.CrossSlot + " Keys in request don't hash to the same slot"}

// clusterMiddleware enforces slot ownership once cluster mode is on:
//
//   - commands with a Keys extractor must have every key in one slot
//     (CROSSSLOT otherwise) and that slot must be owned by this node
//     (MOVED otherwise);
//   - Fanout commands (FORGETUSER/GETUSER) are accepted on any node and
//     coordinated cluster-wide;
//   - commands without Keys are node-local and pass through.
//
// It sits inside the compliance stage, so AUTH/BASELINE rejections keep
// precedence over redirects.
func (s *Server) clusterMiddleware(next Handler) Handler {
	return func(ctx *Ctx) (resp.Value, error) {
		cs := s.clusterInfo()
		if cs == nil {
			return next(ctx)
		}
		if ctx.Cmd.Fanout {
			return s.clusterFanout(ctx, cs)
		}
		if ctx.Cmd.Keys == nil {
			return next(ctx)
		}
		keys := ctx.Cmd.Keys(ctx.Args)
		if len(keys) == 0 {
			return next(ctx)
		}
		slot := cluster.Slot(string(keys[0]))
		for _, k := range keys[1:] {
			if cluster.Slot(string(k)) != slot {
				return resp.Value{}, errCrossSlot
			}
		}
		owner := cs.m.NodeForSlot(slot)
		if owner.ID == cs.selfID {
			// We own the slot. While it is MIGRATING away, keys that have
			// already moved (or were never here — new writes must land at
			// the destination) earn a one-shot ASK redirect; keys still
			// present are served locally until their turn to move.
			if mg, ok := cs.topo.Migration(slot); ok && mg.State == cluster.StateMigrating {
				if !s.anyKeyPresent(keys) {
					if dest, ok := cs.m.NodeByID(mg.PeerID); ok {
						return resp.Value{}, askError(slot, dest.Addr)
					}
				}
			}
			return next(ctx)
		}
		// Not the owner: admit only ASK-following clients for a slot this
		// node is importing; everything else is redirected to the owner.
		if mg, ok := cs.topo.Migration(slot); ok && mg.State == cluster.StateImporting && ctx.Asking {
			return next(ctx)
		}
		return resp.Value{}, movedError(slot, owner.Addr)
	}
}

// anyKeyPresent reports whether at least one of the requested keys is
// live locally — the MIGRATING-state test for serving locally vs ASK.
// Crypto-erased ghosts awaiting the sweep do not count: they will never
// migrate, so commands on them belong at the destination.
func (s *Server) anyKeyPresent(keys [][]byte) bool {
	for _, k := range keys {
		key := string(k)
		if s.store.Exists(key) && s.store.KeyVisible(key) {
			return true
		}
	}
	return false
}

// --- key extractors (Command.Keys) ---

// keysFirst routes on the first argument (GET key, GPUT key value, ...,
// and the owner-scoped GDPR commands, whose owner argument hashes to the
// same slot as the owner's tagged keys).
func keysFirst(a [][]byte) [][]byte { return a[:1] }

// keysAll routes on every argument (MGET, GMGET, DEL, EXISTS).
func keysAll(a [][]byte) [][]byte { return a }

// keysPairs routes on every even-indexed argument (MSET k v k v ...).
func keysPairs(a [][]byte) [][]byte {
	out := make([][]byte, 0, len(a)/2)
	for i := 0; i < len(a); i += 2 {
		out = append(out, a[i])
	}
	return out
}

// keysGMPut routes on the key of every pair of GMPUT npairs k1 v1 ... kN
// vN [options]. The pair count was validated against the arity bounds by
// the handler's own parse; here a malformed count degrades to fewer keys
// and the handler reports the real error.
func keysGMPut(a [][]byte) [][]byte {
	n, err := strconv.Atoi(string(a[0]))
	if err != nil || n <= 0 || n > (len(a)-1)/2 {
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, a[1+2*i])
	}
	return out
}

// --- cluster-internal command registrations ---
//
// The CLUSTER admin command itself lives in cluster_admin.go, dispatched
// through a declarative subcommand table.

func init() {
	register(Command{
		Name: "ASKING", MinArgs: 0, MaxArgs: 0, Flags: FlagReadonly,
		Summary: "announce that the next command follows an ASK redirect",
		Handler: func(ctx *Ctx) (resp.Value, error) {
			ctx.Sess.asking = true
			return resp.SimpleStringValue("OK"), nil
		},
	})
	// RESTOREKEY is the destination half of slot migration: it ingests one
	// portable record streamed by the source's CLUSTER MIGRATESLOT. Keys is
	// nil on purpose — the record's key belongs to a slot this node does
	// not own yet, so the handler does its own owns-or-imports check
	// instead of the middleware's MOVED logic.
	register(Command{
		Name: "RESTOREKEY", MinArgs: 1, MaxArgs: 1, Flags: FlagWrite | FlagAdmin,
		Summary: "ingest one migrated record (cluster-internal; driven by CLUSTER MIGRATESLOT)",
		Handler: handleRestoreKey,
	})
	// Cluster-internal rights primitives: the node-local halves of the
	// coordinated rights commands. The coordinator invokes them on every
	// peer; they never fan out themselves, which is what makes the
	// fan-out terminate. They are registered unconditionally (harmless
	// aliases of local execution off-cluster) so operators can also use
	// them to inspect a single node.
	register(Command{
		Name: "FORGETUSERLOCAL", MinArgs: 1, MaxArgs: 1, Flags: FlagWrite | FlagGDPR,
		Summary: "node-local Art. 17 erasure (cluster-internal; use FORGETUSER)",
		Handler: handleForgetLocal,
	})
	register(Command{
		Name: "GETUSERLOCAL", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR,
		Summary: "node-local Art. 15 access (cluster-internal; use GETUSER)",
		Handler: handleGetUserLocal,
	})
	register(Command{
		Name: "EXPORTUSERLOCAL", MinArgs: 1, MaxArgs: 1, Flags: FlagReadonly | FlagGDPR,
		Summary: "node-local Art. 20 export (cluster-internal; use EXPORTUSER)",
		Handler: handleExportLocal,
	})
	register(Command{
		Name: "OBJECTLOCAL", MinArgs: 2, MaxArgs: 2, Flags: FlagWrite | FlagGDPR,
		Summary: "node-local Art. 21 objection (cluster-internal; use OBJECT)",
		Handler: handleObjectLocal,
	})
	register(Command{
		Name: "UNOBJECTLOCAL", MinArgs: 2, MaxArgs: 2, Flags: FlagWrite | FlagGDPR,
		Summary: "node-local objection withdrawal (cluster-internal; use UNOBJECT)",
		Handler: handleUnobjectLocal,
	})
}

// clusterSlotsValue renders the topology in Redis CLUSTER SLOTS shape:
// one entry per contiguous range, [start, end, [host, port, id],
// [host, port, addr]...] — the first address array is the primary, any
// further ones are its replicas (their id field carries the replica's
// address, the only identity a replica has). Clients that read only the
// primary entry are unaffected by the extra elements.
func clusterSlotsValue(m *cluster.Map) resp.Value {
	ranges := m.SlotRanges()
	vs := make([]resp.Value, 0, len(ranges))
	for _, sr := range ranges {
		entry := make([]resp.Value, 0, 3+len(sr.Node.Replicas))
		entry = append(entry,
			resp.IntegerValue(int64(sr.Range.Start)),
			resp.IntegerValue(int64(sr.Range.End)),
			clusterAddrValue(sr.Node.Addr, sr.Node.ID),
		)
		for _, rep := range sr.Node.Replicas {
			entry = append(entry, clusterAddrValue(rep, rep))
		}
		vs = append(vs, resp.ArrayValue(entry...))
	}
	return resp.ArrayValue(vs...)
}

// clusterAddrValue renders one [host, port, id] address triple.
func clusterAddrValue(addr, id string) resp.Value {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		host, portStr = addr, "0"
	}
	port, _ := strconv.ParseInt(portStr, 10, 64)
	return resp.ArrayValue(
		resp.BulkStringValue(host),
		resp.IntegerValue(port),
		resp.BulkStringValue(id),
	)
}

// --- node-local rights primitives ---

func handleForgetLocal(ctx *Ctx) (resp.Value, error) {
	n, err := ctx.Srv.store.Forget(ctx.Core, string(ctx.Args[0]))
	if err != nil {
		return resp.Value{}, err
	}
	return resp.IntegerValue(int64(n)), nil
}

func handleGetUserLocal(ctx *Ctx) (resp.Value, error) {
	recs, err := ctx.Srv.store.GetUser(ctx.Core, string(ctx.Args[0]))
	if err != nil {
		return resp.Value{}, err
	}
	vs := make([]resp.Value, 0, 2*len(recs))
	for _, r := range recs {
		vs = append(vs, resp.BulkStringValue(r.Key), resp.BulkValue(r.Value))
	}
	return resp.ArrayValue(vs...), nil
}

func handleExportLocal(ctx *Ctx) (resp.Value, error) {
	b, err := ctx.Srv.store.Export(ctx.Core, string(ctx.Args[0]))
	if err != nil {
		return resp.Value{}, err
	}
	return resp.BulkValue(b), nil
}

func handleObjectLocal(ctx *Ctx) (resp.Value, error) {
	if err := ctx.Srv.store.Object(ctx.Core, string(ctx.Args[0]), string(ctx.Args[1])); err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}

func handleUnobjectLocal(ctx *Ctx) (resp.Value, error) {
	if err := ctx.Srv.store.Unobject(ctx.Core, string(ctx.Args[0]), string(ctx.Args[1])); err != nil {
		return resp.Value{}, err
	}
	return resp.SimpleStringValue("OK"), nil
}

// --- the rights fan-out coordinator ---

// fanoutSpec describes how one rights command distributes: the node-local
// primitive its peers run, and how the per-node replies merge.
type fanoutSpec struct {
	localCmd string
	merge    func(local resp.Value, peers []resp.Value) (resp.Value, error)
	// audited writes an aggregate coordinator record on success (erasure
	// only; read-path rights are audited per node by the store itself).
	audited bool
	// readonly marks the access-path rights (Art. 15/20): when a primary
	// is unreachable the coordinator retries its replicas, preferring the
	// surviving majority over a CLUSTERDOWN. Mutating rights (erasure,
	// objections) never fall back — a replica cannot accept the write, and
	// claiming success without every primary would be a lie in the audit
	// trail.
	readonly bool
}

var fanoutSpecs = map[string]fanoutSpec{
	"FORGETUSER":  {localCmd: "FORGETUSERLOCAL", merge: mergeSum, audited: true},
	"GETUSER":     {localCmd: "GETUSERLOCAL", merge: mergeConcat, readonly: true},
	"GETUSERDATA": {localCmd: "GETUSERLOCAL", merge: mergeConcat, readonly: true},
	"EXPORTUSER":  {localCmd: "EXPORTUSERLOCAL", merge: mergeExport, readonly: true},
	"OBJECT":      {localCmd: "OBJECTLOCAL", merge: mergeOK},
	"UNOBJECT":    {localCmd: "UNOBJECTLOCAL", merge: mergeOK},
}

// mergeSum adds integer replies (erasure counts).
func mergeSum(local resp.Value, peers []resp.Value) (resp.Value, error) {
	total := local.Int
	for _, v := range peers {
		total += v.Int
	}
	return resp.IntegerValue(total), nil
}

// mergeConcat appends array replies (key/value record lists).
func mergeConcat(local resp.Value, peers []resp.Value) (resp.Value, error) {
	merged := append([]resp.Value(nil), local.Array...)
	for _, v := range peers {
		merged = append(merged, v.Array...)
	}
	return resp.ArrayValue(merged...), nil
}

// mergeOK collapses unanimous OK replies (objections).
func mergeOK(resp.Value, []resp.Value) (resp.Value, error) {
	return resp.SimpleStringValue("OK"), nil
}

// exportPayload is the Article 20 portability envelope core.Export emits
// (format gdprstore-export/v1); the coordinator merges the per-node
// record lists into one payload so a cluster export is as complete as a
// single-node one.
type exportPayload struct {
	Format  string            `json:"format"`
	Owner   string            `json:"owner"`
	Records []json.RawMessage `json:"records"`
}

func mergeExport(local resp.Value, peers []resp.Value) (resp.Value, error) {
	var out exportPayload
	if err := json.Unmarshal(local.Str, &out); err != nil {
		return resp.Value{}, fmt.Errorf("cluster export merge: %w", err)
	}
	for _, v := range peers {
		var p exportPayload
		if err := json.Unmarshal(v.Str, &p); err != nil {
			return resp.Value{}, fmt.Errorf("cluster export merge: %w", err)
		}
		out.Records = append(out.Records, p.Records...)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return resp.Value{}, err
	}
	return resp.BulkValue(b), nil
}

// clusterFanout coordinates a rights command across every primary: the
// local half runs through the command's own handler, the remote halves
// through the *LOCAL primitives on each peer, and the replies merge per
// the command's fanoutSpec. A local refusal (DENIED, ERASED, ...) is
// returned verbatim — its wire code is the authoritative answer and the
// peers are not consulted. After a successful local half the operation is
// all-or-reported: any unreachable or refusing peer turns the reply into
// a CLUSTERDOWN error naming the nodes that did not confirm, and the
// partial outcome is written to the audit trail — never silently dropped.
func (s *Server) clusterFanout(ctx *Ctx, cs *clusterState) (resp.Value, error) {
	owner := string(ctx.Args[0])
	spec := fanoutSpecs[ctx.Cmd.Name]
	localV, err := ctx.Cmd.Handler(ctx)
	if err != nil {
		return resp.Value{}, err
	}

	peers := make([]cluster.Node, 0, len(cs.m.Nodes())-1)
	for _, n := range cs.m.Nodes() {
		if n.ID != cs.selfID {
			peers = append(peers, n)
		}
	}
	peerArgs := make([]string, 0, 1+len(ctx.Args))
	peerArgs = append(peerArgs, spec.localCmd)
	for _, a := range ctx.Args {
		peerArgs = append(peerArgs, string(a))
	}

	type peerReply struct {
		node cluster.Node
		v    resp.Value
		err  error
	}
	replies := make([]peerReply, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p cluster.Node) {
			defer wg.Done()
			v, err := clusterCall(p.Addr, ctx.Core.Actor, ctx.Core.Purpose, cs.timeout, peerArgs...)
			if err != nil && spec.readonly {
				// Access-path rights prefer the surviving majority: a dead
				// primary's replicas hold the same records (and audit their
				// own serving of them), so try each before reporting the
				// node failed.
				for _, rep := range p.Replicas {
					if rv, rerr := clusterCall(rep, ctx.Core.Actor, ctx.Core.Purpose, cs.timeout, peerArgs...); rerr == nil {
						v, err = rv, nil
						break
					}
				}
			}
			replies[i] = peerReply{node: p, v: v, err: err}
		}(i, p)
	}
	wg.Wait()

	var failed []string
	peerVals := make([]resp.Value, 0, len(replies))
	for _, r := range replies {
		if r.err != nil {
			failed = append(failed, fmt.Sprintf("%s (%s): %v", r.node.ID, r.node.Addr, r.err))
			continue
		}
		peerVals = append(peerVals, r.v)
	}

	if len(failed) > 0 {
		sort.Strings(failed)
		detail := fmt.Sprintf("cluster fan-out incomplete (%d/%d nodes failed): %s",
			len(failed), len(peers)+1, strings.Join(failed, "; "))
		s.auditCluster(audit.Record{
			Actor: ctx.Core.Actor, Op: ctx.Cmd.Name, Owner: owner, Purpose: ctx.Core.Purpose,
			Outcome: audit.OutcomeError, Detail: detail,
		})
		return resp.Value{}, codedError{text: wirecode.ClusterDown + " " + detail}
	}

	merged, err := spec.merge(localV, peerVals)
	if err != nil {
		return resp.Value{}, err
	}
	if spec.audited {
		s.auditCluster(audit.Record{
			Actor: ctx.Core.Actor, Op: ctx.Cmd.Name, Owner: owner, Purpose: ctx.Core.Purpose,
			Outcome: audit.OutcomeOK,
			Detail:  fmt.Sprintf("cluster fan-out: nodes=%d erased=%d", len(peers)+1, merged.Int),
		})
	}
	return merged, nil
}

// auditCluster writes a coordinator-side audit record when the store has
// a trail (fan-out outcomes are part of the Article 30 evidence; each
// node additionally audits its own local half).
func (s *Server) auditCluster(r audit.Record) {
	if t := s.store.Trail(); t != nil {
		_, _ = t.Append(r)
	}
}

// clusterCall runs one command against a peer node over a short-lived
// connection, presenting the coordinator session's actor and purpose so
// the peer's ACL and audit trail see the real principal. Rights
// operations are rare enough that a per-call dial keeps the peer path
// free of pooled-connection identity problems.
func clusterCall(addr, actor, purpose string, timeout time.Duration, args ...string) (resp.Value, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return resp.Value{}, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	r, w := resp.NewReader(conn), resp.NewWriter(conn)
	run := func(cmd ...string) (resp.Value, error) {
		if err := w.WriteCommand(cmd...); err != nil {
			return resp.Value{}, err
		}
		if err := w.Flush(); err != nil {
			return resp.Value{}, err
		}
		v, err := r.ReadValue()
		if err != nil {
			return resp.Value{}, err
		}
		if v.IsError() {
			return resp.Value{}, errors.New(v.Text())
		}
		return v, nil
	}
	if actor != "" {
		if _, err := run("AUTH", actor); err != nil {
			return resp.Value{}, fmt.Errorf("auth: %w", err)
		}
	}
	if purpose != "" {
		if _, err := run("PURPOSE", purpose); err != nil {
			return resp.Value{}, fmt.Errorf("purpose: %w", err)
		}
	}
	return run(args...)
}

// clusterStatePtr is the atomic holder type (declared here to keep the
// cluster surface in one file; the field lives on Server).
type clusterStatePtr = atomic.Pointer[clusterState]
