package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gdprstore/internal/core"
	"gdprstore/pkg/gdprkv"
)

// --- client pipelining benchmarks (PR: wire-speed client API) ---
//
// One baseline server over loopback TCP, driven through the public SDK.
// The depth sweep quantifies what an N-deep explicit pipeline buys over
// N sequential round trips; the auto-batch benchmark measures the same
// amortisation reached implicitly by concurrent scalar callers.

func benchPipelineClient(b *testing.B, opts ...gdprkv.Option) *gdprkv.Client {
	b.Helper()
	st, err := core.Open(core.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", st)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close(); st.Close() })
	c, err := gdprkv.Dial(context.Background(), srv.Addr(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	ctx := context.Background()
	for j := 0; j < 64; j++ {
		if err := c.Set(ctx, fmt.Sprintf("k%02d", j), []byte("0123456789abcdef")); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// benchPipelineDepth reads 64 hot keys per iteration through pipelines of
// the given depth; depth 1 degenerates to sequential GETs and anchors the
// sweep.
func benchPipelineDepth(b *testing.B, depth int) {
	c := benchPipelineClient(b, gdprkv.WithPoolSize(1))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for base := 0; base < 64; base += depth {
			p := c.Pipeline()
			for j := 0; j < depth; j++ {
				p.Get(fmt.Sprintf("k%02d", base+j))
			}
			res, err := p.Exec(ctx)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range res {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkPipeline_Depth1(b *testing.B)  { benchPipelineDepth(b, 1) }
func BenchmarkPipeline_Depth8(b *testing.B)  { benchPipelineDepth(b, 8) }
func BenchmarkPipeline_Depth64(b *testing.B) { benchPipelineDepth(b, 64) }

// BenchmarkPipeline_AutoBatch drives scalar Gets from 8 concurrent
// goroutines through a coalescing client: the batcher turns the burst
// into MGETs without any caller opting in.
func BenchmarkPipeline_AutoBatch(b *testing.B) {
	// maxOps matches the goroutine count so a full burst flushes inline
	// instead of waiting out the window timer.
	c := benchPipelineClient(b,
		gdprkv.WithPoolSize(2),
		gdprkv.WithAutoBatch(100*time.Microsecond, 8))
	ctx := context.Background()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := 0
		for pb.Next() {
			if _, err := c.Get(ctx, fmt.Sprintf("k%02d", j%64)); err != nil {
				b.Fatal(err)
			}
			j++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}
