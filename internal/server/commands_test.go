package server

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"gdprstore/internal/core"
	"gdprstore/pkg/gdprkv"
)

func TestSetSyntaxVariants(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	if _, err := c.Do("SET", "k", "v", "EX", "100"); err != nil {
		t.Fatal(err)
	}
	if ttl, _ := c.TTL("k"); ttl <= 0 {
		t.Fatalf("EX not applied: %d", ttl)
	}
	if _, err := c.Do("SET", "k", "v2", "KEEPTTL"); err != nil {
		t.Fatal(err)
	}
	if ttl, _ := c.TTL("k"); ttl <= 0 {
		t.Fatalf("KEEPTTL dropped ttl: %d", ttl)
	}
	if _, err := c.Do("SET", "k", "v3"); err != nil {
		t.Fatal(err)
	}
	if ttl, _ := c.TTL("k"); ttl != -1 {
		t.Fatalf("plain SET kept ttl: %d", ttl)
	}
	// Syntax errors.
	for _, bad := range [][]string{
		{"SET", "k", "v", "EX"},
		{"SET", "k", "v", "EX", "abc"},
		{"SET", "k", "v", "EX", "-5"},
		{"SET", "k", "v", "BOGUS"},
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestExpireAtAndPersist(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	c.Set("k", []byte("v"))
	future := time.Now().Add(time.Hour).Unix()
	v, err := c.Do("EXPIREAT", "k", itoa(future))
	if err != nil || v.Int != 1 {
		t.Fatalf("expireat = %d, %v", v.Int, err)
	}
	if ttl, _ := c.TTL("k"); ttl <= 0 {
		t.Fatalf("ttl = %d", ttl)
	}
	v, err = c.Do("PERSIST", "k")
	if err != nil || v.Int != 1 {
		t.Fatalf("persist = %d, %v", v.Int, err)
	}
	if ttl, _ := c.TTL("k"); ttl != -1 {
		t.Fatalf("ttl after persist = %d", ttl)
	}
	if v, _ := c.Do("PERSIST", "k"); v.Int != 0 {
		t.Fatalf("second persist = %d", v.Int)
	}
	if _, err := c.Do("EXPIREAT", "k", "notanumber"); err == nil {
		t.Fatal("bad expireat accepted")
	}
}

func TestExistsMultiple(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	c.Set("a", []byte("1"))
	c.Set("b", []byte("2"))
	v, err := c.Do("EXISTS", "a", "b", "missing")
	if err != nil || v.Int != 2 {
		t.Fatalf("exists = %d, %v", v.Int, err)
	}
}

func TestKeysCommand(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	c.Set("user:1", []byte("a"))
	c.Set("user:2", []byte("b"))
	c.Set("other", []byte("c"))
	v, err := c.Do("KEYS", "user:*")
	if err != nil || len(v.Array) != 2 {
		t.Fatalf("keys = %v, %v", v.Array, err)
	}
}

func TestScanSyntaxErrors(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	for _, bad := range [][]string{
		{"SCAN", "abc"},
		{"SCAN", "0", "MATCH"},
		{"SCAN", "0", "COUNT", "0"},
		{"SCAN", "0", "COUNT", "x"},
		{"SCAN", "0", "NOPE", "1"},
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestACLCommandSurface(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	// Role parsing.
	for _, role := range []string{"subject", "processor", "controller", "regulator"} {
		if _, err := c.Do("ACL", "ADDPRINCIPAL", "p-"+role, role); err != nil {
			t.Fatalf("role %s: %v", role, err)
		}
	}
	if _, err := c.Do("ACL", "ADDPRINCIPAL", "x", "superuser"); err == nil {
		t.Fatal("bogus role accepted")
	}
	// Grant with owner scope and TTL.
	if _, err := c.Do("ACL", "GRANT", "p-processor", "billing", "OWNER", "alice", "TTL", "3600"); err != nil {
		t.Fatal(err)
	}
	// Grant for unknown principal fails.
	if _, err := c.Do("ACL", "GRANT", "ghost", "billing"); err == nil {
		t.Fatal("grant to ghost accepted")
	}
	// Revoke reports count.
	v, err := c.Do("ACL", "REVOKE", "p-processor", "billing", "OWNER", "alice")
	if err != nil || v.Int != 1 {
		t.Fatalf("revoke = %d, %v", v.Int, err)
	}
	// Delete principal.
	if _, err := c.Do("ACL", "DELPRINCIPAL", "p-subject"); err != nil {
		t.Fatal(err)
	}
	// Bad syntax.
	for _, bad := range [][]string{
		{"ACL"},
		{"ACL", "NOPE"},
		{"ACL", "GRANT", "p-processor"},
		{"ACL", "GRANT", "p-processor", "x", "TTL", "-1"},
		{"ACL", "GRANT", "p-processor", "x", "OWNER"},
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestGPutSyntaxErrors(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	c.Purpose("billing")
	for _, bad := range [][]string{
		{"GPUT", "k"},
		{"GPUT", "k", "v", "OWNER"},
		{"GPUT", "k", "v", "TTL", "abc"},
		{"GPUT", "k", "v", "TTL", "-1"},
		{"GPUT", "k", "v", "WHATEVER", "x"},
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestCompactAndMaintainCommands(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	c.Purpose("billing")
	c.GPut("k", []byte("v"), gdprkv.PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Minute})
	if _, err := c.Do("COMPACT"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("MAINTAIN")
	if err != nil || !strings.Contains(v.Text(), "ghosts=") {
		t.Fatalf("maintain = %q, %v", v.Text(), err)
	}
}

func TestBreachBadTimestamps(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	if _, err := c.Do("BREACH", "yesterday", "today"); err == nil {
		t.Fatal("bad timestamps accepted")
	}
}

func TestPingWithArgument(t *testing.T) {
	_, c := startServer(t, core.Baseline())
	v, err := c.Do("PING", "hello")
	if err != nil || v.Text() != "hello" {
		t.Fatalf("ping arg = %q, %v", v.Text(), err)
	}
}

func TestGGetMissingIsNil(t *testing.T) {
	_, c := startServer(t, core.Strict(""))
	setupPrincipals(t, c)
	c.Auth("controller")
	c.Purpose("billing")
	if _, err := c.GGet("absent"); !errors.Is(err, gdprkv.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }
