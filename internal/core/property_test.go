package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

// TestMetadataEncodeDecodeRoundTrip is the property behind GMETA journal
// records: any metadata survives encode/decode byte-identically in
// semantics.
func TestMetadataEncodeDecodeRoundTrip(t *testing.T) {
	f := func(owner, origin, loc string, purposes, objections, shared []string, auto bool, expUnix int64, creUnix int64) bool {
		m := Metadata{
			Owner: owner, Origin: origin, Location: loc,
			Purposes: purposes, Objections: objections, SharedWith: shared,
			AutomatedDecisions: auto,
			Expiry:             time.Unix(expUnix%1e9, 0).UTC(),
			Created:            time.Unix(creUnix%1e9, 0).UTC(),
		}
		b, err := m.encode()
		if err != nil {
			return false
		}
		got, err := decodeMetadata(b)
		if err != nil {
			return false
		}
		// JSON drops nil-vs-empty distinctions; normalise.
		norm := func(s []string) []string {
			if len(s) == 0 {
				return nil
			}
			return s
		}
		m.Purposes, got.Purposes = norm(m.Purposes), norm(got.Purposes)
		m.Objections, got.Objections = norm(m.Objections), norm(got.Objections)
		m.SharedWith, got.SharedWith = norm(m.SharedWith), norm(got.SharedWith)
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayEquivalenceProperty is the central durability invariant: for
// any random sequence of compliance-layer operations, closing the store
// and replaying its AOF reconstructs an equivalent store — same live
// keys, values, metadata owners, TTL presence, and objections.
func TestReplayEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20190516))
	for trial := 0; trial < 15; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "prop.aof")
			vc := clock.NewVirtual(time.Unix(1_000_000, 0))
			cfg := persistentCfg(path, vc, func(c *Config) {
				if trial%3 == 1 {
					c.Envelope = true
					c.MasterKey = bytes.Repeat([]byte{byte(trial + 1)}, 32)
				}
				if trial%3 == 2 {
					c.AtRestKey = bytes.Repeat([]byte{byte(trial + 101)}, 32)
				}
			})
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			addPrincipals(s)
			owners := []string{"alice", "bob", "carol"}
			for _, o := range owners {
				s.ACL().AddPrincipal(acl.Principal{ID: o, Role: acl.RoleSubject})
			}

			nOps := 40 + rng.Intn(80)
			for i := 0; i < nOps; i++ {
				owner := owners[rng.Intn(len(owners))]
				key := fmt.Sprintf("pd:%s:%d", owner, rng.Intn(12))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					opts := PutOptions{Owner: owner, Purposes: []string{"p1", "p2"}[0 : 1+rng.Intn(2)]}
					if rng.Intn(2) == 0 {
						opts.TTL = time.Duration(1+rng.Intn(48)) * time.Hour
					}
					if err := s.Put(ctlCtx, key, []byte(fmt.Sprintf("v%d", i)), opts); err != nil {
						t.Fatalf("put: %v", err)
					}
				case 5:
					s.Delete(ctlCtx, key)
				case 6:
					s.Expire(ctlCtx, key, time.Duration(1+rng.Intn(24))*time.Hour)
				case 7:
					s.Object(Ctx{Actor: owner}, owner, "p2")
				case 8:
					s.Unobject(Ctx{Actor: owner}, owner, "p2")
				case 9:
					vc.Advance(time.Duration(rng.Intn(120)) * time.Minute)
				}
			}
			before := snapshotState(t, s, owners)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			addPrincipals(s2)
			after := snapshotState(t, s2, owners)
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("replay diverged:\nbefore: %#v\nafter:  %#v", before, after)
			}
		})
	}
}

// state is the observable essence of a store for equivalence checking.
type state struct {
	Keys       []string
	Values     map[string]string
	Owners     map[string]string
	HasTTL     map[string]bool
	Objections map[string][]string
}

func snapshotState(t *testing.T, s *Store, owners []string) state {
	t.Helper()
	st := state{
		Values:     map[string]string{},
		Owners:     map[string]string{},
		HasTTL:     map[string]bool{},
		Objections: map[string][]string{},
	}
	for _, o := range owners {
		keys, err := s.OwnerKeys(ctlCtx, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			st.Keys = append(st.Keys, k)
			v, err := s.Get(Ctx{Actor: "controller", Purpose: "p1"}, k)
			if err != nil {
				// p1-objected or purpose mismatch: read as raw presence
				v = []byte("<unreadable:" + err.Error() + ">")
			}
			st.Values[k] = string(v)
			if m, err := s.Metadata(ctlCtx, k); err == nil {
				st.Owners[k] = m.Owner
			}
			_, ttlStatus := s.TTL(k)
			st.HasTTL[k] = ttlStatus == store.TTLSet
		}
		if obj := s.Objections(o); len(obj) > 0 {
			st.Objections[o] = obj
		}
	}
	sort.Strings(st.Keys)
	return st
}
