package core

import "sync"

// The compliance layer used to serialise every operation on one Store-wide
// mutex; GPUT/GGET for different data subjects contended even though they
// share no state. It now uses striped locking at two granularities, chosen
// per operation:
//
//   - ownerStripes serialise owner-scoped state: the standing objections
//     map, the keyring entry, and the owner's key set (Put/PutBatch,
//     Forget, Object, GetUser, ...). Operations for different owners take
//     different stripes and proceed in parallel.
//   - keyStripes serialise the per-key compound invariant "engine value and
//     metadata-index entry agree" (Put, Get, Delete, Expire, ...). An
//     operation that knows its owner takes the owner stripe first, then
//     the key stripe(s); key-only operations (Get, Delete — the owner is
//     discovered from the metadata) take just the key stripe.
//
// Whole-store operations (AOF rewrite/snapshot, Maintain, Close, replay)
// take gmu and then every stripe, in index order — the deterministic
// lock-ordering protocol that makes cross-stripe operations deadlock-free:
//
//	gmu → ownerStripes (ascending) → keyStripes (ascending) → subsystem locks
//
// No operation takes more than one owner stripe, key stripes are always
// acquired after the (single) owner stripe and in ascending index order
// when more than one is held, and the engine/AOF/audit/ACL/keyring locks
// are leaves. The engine below has its own shard locks; the audit trail,
// AOF, ACL and keyring have their own internal locks.
//
// The erasure sweeper (maintain.go) deliberately stays at the bottom of
// this ordering: it holds ONE key stripe at a time while reclaiming a
// dead record and never takes an owner stripe or gmu, so it can run
// concurrently with the foreground compliance path without joining the
// stop-the-world protocol. erasureState.mu (pending-owner set and sweep
// counters) is a leaf like the keyring's internal lock: it is only ever
// acquired last and nothing is called while holding it.
const stripeCount = 64 // power of two

// ownerStripe guards one stripe of owner-scoped compliance state. The
// standing objections of owners hashing to this stripe live here, so
// different stripes never share a map.
type ownerStripe struct {
	mu sync.Mutex
	// objections holds standing per-owner objections applied to future
	// records (Art. 21 "object at any time"), for owners in this stripe.
	objections map[string]map[string]struct{}
}

func stripeIndex(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h & (stripeCount - 1)
}

func (s *Store) ownerStripeFor(owner string) *ownerStripe {
	return s.owners[stripeIndex(owner)]
}

func (s *Store) keyStripeFor(key string) *sync.Mutex {
	return &s.keys[stripeIndex(key)]
}

// keyStripesFor returns the distinct key-stripe indexes covering keys, in
// ascending order — the acquisition order for multi-key operations.
func (s *Store) keyStripesFor(keys []string) []int {
	var seen [stripeCount]bool
	for _, k := range keys {
		seen[stripeIndex(k)] = true
	}
	idxs := make([]int, 0, len(keys))
	for i, hit := range seen {
		if hit {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

func (s *Store) lockKeyStripes(idxs []int) {
	for _, i := range idxs {
		s.keys[i].Lock()
	}
}

func (s *Store) unlockKeyStripes(idxs []int) {
	for i := len(idxs) - 1; i >= 0; i-- {
		s.keys[idxs[i]].Unlock()
	}
}

// lockAll acquires the whole-store write lock: gmu, every owner stripe,
// every key stripe, in the global order. It is the stop-the-world half of
// the protocol, used by snapshot/rewrite, Maintain, Close and replay-time
// state swaps.
func (s *Store) lockAll() {
	s.gmu.Lock()
	for _, os := range s.owners {
		os.mu.Lock()
	}
	for i := range s.keys {
		s.keys[i].Lock()
	}
}

func (s *Store) unlockAll() {
	for i := len(s.keys) - 1; i >= 0; i-- {
		s.keys[i].Unlock()
	}
	for i := len(s.owners) - 1; i >= 0; i-- {
		s.owners[i].mu.Unlock()
	}
	s.gmu.Unlock()
}

func newOwnerStripes() []*ownerStripe {
	out := make([]*ownerStripe, stripeCount)
	for i := range out {
		out[i] = &ownerStripe{objections: make(map[string]map[string]struct{})}
	}
	return out
}
