package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/aof"
	"gdprstore/internal/clock"
)

// Tests for O(1) erasure via crypto-shredding: the FORGETUSER fast path
// destroys the owner's key and returns; dead ciphertext is invisible to
// every read path immediately and reclaimed physically by the lazy-delete
// sweep.

func erasureCfg(mutate func(*Config)) Config {
	cfg := Config{
		Compliant:  true,
		Capability: CapabilityPartial,
		Envelope:   true,
		MasterKey:  bytes.Repeat([]byte{0x5a}, 32),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func putOwnerKeys(t *testing.T, s *Store, owner string, n int) []string {
	t.Helper()
	ctx := Ctx{Actor: "app", Purpose: "service"}
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s:rec%03d", owner, i)
		keys[i] = k
		err := s.Put(ctx, k, []byte("payload-"+k), PutOptions{
			Owner: owner, Purposes: []string{"service"},
		})
		if err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	return keys
}

// TestShredInvisibleBeforeSweep pins the tentpole contract: after the
// crypto-shred Forget, the owner's records are invisible to GET, SCAN
// visibility, GETUSER, ACCESS, EXPORTUSER, OWNERKEYS, KEYS-BY-PURPOSE and
// METADATA — even though the ciphertext physically remains until the sweep.
func TestShredInvisibleBeforeSweep(t *testing.T) {
	s, err := Open(erasureCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := Ctx{Actor: "app", Purpose: "service"}
	aliceKeys := putOwnerKeys(t, s, "alice", 8)
	bobKeys := putOwnerKeys(t, s, "bob", 4)

	n, err := s.Forget(Ctx{Actor: "alice"}, "alice")
	if err != nil || n != 8 {
		t.Fatalf("Forget = %d, %v; want 8, nil", n, err)
	}
	// No sweep has run: the ciphertext is still physically present.
	if got := s.Engine().Len(); got != 12 {
		t.Fatalf("engine len after shred = %d, want 12 (lazy delete)", got)
	}

	for _, k := range aliceKeys {
		if _, err := s.Get(ctx, k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%s) after shred = %v, want ErrNotFound", k, err)
		}
		if s.KeyVisible(k) {
			t.Fatalf("KeyVisible(%s) = true after shred", k)
		}
		if _, err := s.Metadata(ctx, k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Metadata(%s) after shred = %v, want ErrNotFound", k, err)
		}
	}
	if recs, err := s.GetUser(Ctx{Actor: "alice"}, "alice"); err != nil || len(recs) != 0 {
		t.Fatalf("GetUser(alice) = %d recs, %v; want 0, nil", len(recs), err)
	}
	if rep, err := s.Access(Ctx{Actor: "alice"}, "alice"); err != nil || rep.RecordCount != 0 {
		t.Fatalf("Access(alice) = %d records, %v; want 0, nil", rep.RecordCount, err)
	}
	if keys, err := s.OwnerKeys(ctx, "alice"); err != nil || len(keys) != 0 {
		t.Fatalf("OwnerKeys(alice) = %v, %v; want empty", keys, err)
	}
	if keys, err := s.KeysByPurpose(ctx, "service"); err != nil || len(keys) != 4 {
		t.Fatalf("KeysByPurpose = %d keys, %v; want bob's 4", len(keys), err)
	}
	// Bob is untouched.
	for _, k := range bobKeys {
		if v, err := s.Get(ctx, k); err != nil || !bytes.HasPrefix(v, []byte("payload-")) {
			t.Fatalf("Get(%s) = %q, %v; bob's data damaged by alice's erasure", k, v, err)
		}
	}

	st := s.ErasureStats()
	if !st.Enabled || st.ShreddedOwners != 1 || st.PendingOwners != 1 || st.PendingRecords != 8 {
		t.Fatalf("ErasureStats before sweep = %+v", st)
	}

	sw := s.DrainErasure()
	if sw.Reclaimed != 8 || sw.OwnersDrained != 1 {
		t.Fatalf("DrainErasure = %+v; want 8 reclaimed, 1 drained", sw)
	}
	if got := s.Engine().Len(); got != 4 {
		t.Fatalf("engine len after sweep = %d, want 4", got)
	}
	if got := s.MetaCount(); got != 4 {
		t.Fatalf("meta count after sweep = %d, want 4", got)
	}
	st = s.ErasureStats()
	if st.PendingOwners != 0 || st.PendingRecords != 0 || st.Reclaimed != 8 || st.OwnersDrained != 1 {
		t.Fatalf("ErasureStats after sweep = %+v", st)
	}
	if !s.PendingRewrite() {
		t.Fatal("sweep reclamation did not owe an AOF compaction")
	}
}

// TestErasureSweepBudget pins that one cycle deletes at most
// ErasureSweepBudget records and that repeated cycles converge.
func TestErasureSweepBudget(t *testing.T) {
	s, err := Open(erasureCfg(func(c *Config) { c.ErasureSweepBudget = 3 }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putOwnerKeys(t, s, "alice", 10)
	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	st := s.ErasureSweepCycle()
	if st.Reclaimed != 3 || st.OwnersDrained != 0 {
		t.Fatalf("first budgeted cycle = %+v; want 3 reclaimed, 0 drained", st)
	}
	total := st.Reclaimed
	for cycles := 1; total < 10 || s.ErasureStats().PendingOwners > 0; cycles++ {
		if cycles > 10 {
			t.Fatalf("sweep did not converge: reclaimed %d of 10", total)
		}
		st = s.ErasureSweepCycle()
		if st.Reclaimed > 3 {
			t.Fatalf("cycle exceeded budget: %+v", st)
		}
		total += st.Reclaimed
	}
	if total != 10 || s.Engine().Len() != 0 {
		t.Fatalf("converged at reclaimed=%d len=%d; want 10, 0", total, s.Engine().Len())
	}
}

// TestReinstateMidSweep pins that a subject who returns mid-sweep gets a
// fresh key epoch: their new records live while the pre-shred residue
// stays dead and is still reclaimed.
func TestReinstateMidSweep(t *testing.T) {
	s, err := Open(erasureCfg(func(c *Config) { c.ErasureSweepBudget = 2 }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := Ctx{Actor: "app", Purpose: "service"}
	oldKeys := putOwnerKeys(t, s, "alice", 6)
	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	s.ErasureSweepCycle() // partial: reclaims 2 of 6

	if err := s.Reinstate(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "alice:fresh", []byte("new life"), PutOptions{
		Owner: "alice", Purposes: []string{"service"},
	}); err != nil {
		t.Fatalf("put after reinstate: %v", err)
	}
	if v, err := s.Get(ctx, "alice:fresh"); err != nil || string(v) != "new life" {
		t.Fatalf("fresh record = %q, %v", v, err)
	}
	for _, k := range oldKeys {
		if _, err := s.Get(ctx, k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("pre-shred record %s resurrected by reinstate: %v", k, err)
		}
	}
	s.DrainErasure()
	if v, err := s.Get(ctx, "alice:fresh"); err != nil || string(v) != "new life" {
		t.Fatalf("fresh record after sweep = %q, %v", v, err)
	}
	if got := s.Engine().Len(); got != 1 {
		t.Fatalf("engine len after sweep = %d, want only the fresh record", got)
	}
	if st := s.ErasureStats(); st.PendingOwners != 0 {
		t.Fatalf("reinstated owner never drained: %+v", st)
	}
}

func erasureAOFCfg(path string, vc *clock.Virtual, budget int) Config {
	return erasureCfg(func(c *Config) {
		c.AOFPath = path
		c.AOFSync = Ptr(aof.SyncNo)
		c.Clock = vc
		c.ErasureSweepBudget = budget
	})
}

// TestCrashMidSweepReplay extends the crash matrix to the sweep: a crash
// after the shred but mid-reclamation must replay to a store that — once
// both sides finish sweeping — matches the uninterrupted one exactly.
func TestCrashMidSweepReplay(t *testing.T) {
	dir := t.TempDir()
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	path := filepath.Join(dir, "live.aof")
	live, err := Open(erasureAOFCfg(path, vc, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	putOwnerKeys(t, live, "alice", 8)
	putOwnerKeys(t, live, "bob", 3)
	if _, err := live.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	live.ErasureSweepCycle() // partial: 2 of 8 DELs journaled, then "crash"
	if err := live.Log().Sync(); err != nil {
		t.Fatal(err)
	}
	killPath := filepath.Join(t.TempDir(), "crash.aof")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(killPath, b, 0o600); err != nil {
		t.Fatal(err)
	}

	re, err := Open(erasureAOFCfg(killPath, vc, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Replay must rediscover the interrupted sweep.
	if st := re.ErasureStats(); st.PendingOwners != 1 || st.PendingRecords != 6 {
		t.Fatalf("replayed erasure state = %+v; want 1 pending owner, 6 records", st)
	}
	// Dead residue stays invisible on the replayed store too.
	if _, err := re.Get(Ctx{Actor: "app"}, "alice:rec005"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replayed dead record visible: %v", err)
	}

	live.DrainErasure()
	re.DrainErasure()
	want := crashDump(t, live)
	got := crashDump(t, re)
	if got != want {
		t.Fatalf("post-sweep states diverged\n--- live ---\n%s--- replayed ---\n%s", want, got)
	}
	if l, r := live.Engine().Len(), re.Engine().Len(); l != 3 || r != 3 {
		t.Fatalf("post-sweep engine lens = %d, %d; want 3, 3", l, r)
	}
}

// TestCompactionPurgesDeadCiphertext pins that an AOF rewrite drops
// shredded-but-unswept records: the replayed store has no residue and no
// pending sweep work.
func TestCompactionPurgesDeadCiphertext(t *testing.T) {
	dir := t.TempDir()
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	path := filepath.Join(dir, "c.aof")
	s, err := Open(erasureAOFCfg(path, vc, 4096))
	if err != nil {
		t.Fatal(err)
	}
	putOwnerKeys(t, s, "alice", 5)
	putOwnerKeys(t, s, "bob", 2)
	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	// Compact with the sweep not yet run: the snapshot must filter the
	// dead records even though they are still in the engine.
	if err := s.Compact(Ctx{Actor: "admin"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := Open(erasureAOFCfg(path, vc, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Engine().Len(); got != 2 {
		t.Fatalf("replay after compaction holds %d keys, want bob's 2", got)
	}
	if st := re.ErasureStats(); st.PendingOwners != 0 || st.ShreddedOwners != 1 {
		t.Fatalf("replayed state = %+v; want 0 pending, shred mark kept", st)
	}
	// Bob's data survived the compaction and still decrypts.
	if v, err := re.Get(Ctx{Actor: "app"}, "bob:rec000"); err != nil || !bytes.HasPrefix(v, []byte("payload-")) {
		t.Fatalf("bob after compaction = %q, %v", v, err)
	}
}

// TestBackgroundSweeper exercises the StartSweeper/StopSweeper loop: the
// goroutine drains a shredded owner on its own, and start/stop are
// idempotent.
func TestBackgroundSweeper(t *testing.T) {
	s, err := Open(erasureCfg(func(c *Config) { c.ErasureSweepInterval = time.Millisecond }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putOwnerKeys(t, s, "alice", 32)
	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	s.StartSweeper()
	s.StartSweeper() // idempotent
	if !s.ErasureStats().SweeperRunning {
		t.Fatal("sweeper not reported running")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.ErasureStats().PendingOwners > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background sweeper never drained: %+v", s.ErasureStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Engine().Len(); got != 0 {
		t.Fatalf("engine len after background sweep = %d", got)
	}
	s.StopSweeper()
	s.StopSweeper() // idempotent
	if s.ErasureStats().SweeperRunning {
		t.Fatal("sweeper still reported running after stop")
	}
}

// TestErasureConcurrentStress hammers the shred/sweep/write paths
// concurrently; run under -race it pins the locking protocol (owner
// stripe → key stripe → erasureState leaf).
func TestErasureConcurrentStress(t *testing.T) {
	s, err := Open(erasureCfg(func(c *Config) {
		c.ErasureSweepInterval = time.Millisecond
		c.ErasureSweepBudget = 8
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.StartSweeper()
	defer s.StopSweeper()

	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // writers
			defer wg.Done()
			ctx := Ctx{Actor: "app", Purpose: "service"}
			for i := 0; i < iters; i++ {
				owner := fmt.Sprintf("subj%d", i%4)
				k := fmt.Sprintf("w%d:%d", g, i%32)
				// ErrErased while the owner is shredded is expected.
				_ = s.Put(ctx, k, []byte("v"), PutOptions{Owner: owner, Purposes: []string{"service"}})
				_, _ = s.Get(ctx, k)
			}
		}(g)
	}
	wg.Add(1)
	go func() { // forgetter/reinstater
		defer wg.Done()
		for i := 0; i < iters; i++ {
			owner := fmt.Sprintf("subj%d", i%4)
			_, _ = s.Forget(Ctx{Actor: owner}, owner)
			_ = s.Reinstate(Ctx{Actor: "admin"}, owner)
		}
	}()
	wg.Add(1)
	go func() { // explicit sweeps racing the background sweeper
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			s.ErasureSweepCycle()
			_ = s.ErasureStats()
		}
	}()
	wg.Wait()
	// Everything still converges once the churn stops.
	for i := 0; i < 4; i++ {
		_ = s.Reinstate(Ctx{Actor: "admin"}, fmt.Sprintf("subj%d", i))
	}
	s.DrainErasure()
	if st := s.ErasureStats(); st.PendingOwners != 0 {
		t.Fatalf("stress left pending owners: %+v", st)
	}
}
