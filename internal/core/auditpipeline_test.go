package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdprstore/internal/audit"
)

// TestMaskedAuditRoundTrip drives masked auditing through the full store:
// raw key/owner bytes must never reach the on-disk trail, while the
// regulator-facing breach report and trail queries still resolve real
// subjects through the engine-held reverse table.
func TestMaskedAuditRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	s := newFullStore(t, func(c *Config) {
		c.AuditPath = path
		c.AuditMask = true
		c.AuditMaskKey = []byte("mask-key-for-test")
	})

	const key = "user:alice:email"
	if err := s.Put(svcCtx, key, []byte("a@x.eu"), PutOptions{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(svcCtx, key); err != nil {
		t.Fatal(err)
	}
	if err := s.Trail().Sync(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pii := range [][]byte{[]byte(key), []byte("alice")} {
		if bytes.Contains(raw, pii) {
			t.Fatalf("on-disk audit trail contains raw PII %q", pii)
		}
	}

	// Engine-side query resolves the pseudonyms: filters match real names.
	recs, err := s.Trail().Query(audit.Filter{Owner: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("expected put+get audit records for alice, got %d", len(recs))
	}
	for _, r := range recs {
		if r.Key != key || r.Owner != "alice" {
			t.Fatalf("record not unmasked: %+v", r)
		}
	}

	// The regulator's breach report aggregates by real owner.
	now := vclock(s).Now()
	rep, err := s.Breach(Ctx{Actor: "dpa"}, now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rep.AffectedOwners["alice"] == 0 {
		t.Fatalf("breach report lost the unmasked owner: %+v", rep.AffectedOwners)
	}

	st := s.Trail().Stats()
	if !st.MaskEnabled || st.Masked == 0 {
		t.Fatalf("masking not active in pipeline stats: %+v", st)
	}
}

// TestAuditPipelineConfigWiring checks the new config knobs reach the
// pipeline: worker count, queue depth and back-pressure policy show up in
// the trail's stats.
func TestAuditPipelineConfigWiring(t *testing.T) {
	s := newFullStore(t, func(c *Config) {
		c.AuditWorkers = 3
		c.AuditQueueDepth = 128
		c.AuditBackpressure = Ptr(audit.BackpressureDrop)
	})
	st := s.Trail().Stats()
	if st.Workers != 3 {
		t.Fatalf("workers = %d, want 3", st.Workers)
	}
	if st.QueueCap != 128 {
		t.Fatalf("queue cap = %d, want 128", st.QueueCap)
	}
	if st.Policy != audit.BackpressureDrop {
		t.Fatalf("policy = %v, want drop", st.Policy)
	}
	// Strict timing still derives every-op durability.
	if st.Mode != audit.SyncEveryOp {
		t.Fatalf("mode = %v, want every-op", st.Mode)
	}
}

// TestAuditBackpressureDefaultsToBlock: shedding evidence must be an
// explicit opt-in on both timings.
func TestAuditBackpressureDefaultsToBlock(t *testing.T) {
	for _, cfg := range []Config{Strict(""), EventualFull("")} {
		n := cfg.normalize()
		if n.auditBP != audit.BackpressureBlock {
			t.Fatalf("%s timing derived policy %v, want block", cfg.Timing, n.auditBP)
		}
	}
}
