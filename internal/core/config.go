// Package core implements the paper's primary contribution: the GDPR
// compliance layer that turns a fast-but-oblivious key-value engine into a
// GDPR-compliant store, and the configuration spectrum (§3.2) along which
// compliance can be traded against performance.
//
// The layer provides the six features of §3.1 — timely deletion,
// monitoring/logging, metadata indexing, access control, encryption, and
// data-location management — plus the data-subject rights operations of
// §2.1 (access, erasure, portability, objection) on top of
// internal/store, internal/aof, internal/audit, internal/acl and
// internal/cryptoutil.
package core

import (
	"time"

	"gdprstore/internal/aof"
	"gdprstore/internal/audit"
	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

// Timing is the response-time dimension of the compliance spectrum (§3.2):
// does the system complete GDPR tasks synchronously or eventually?
type Timing int

// Timing values.
const (
	// TimingEventual batches GDPR work: audit records flush once per
	// second, expiry stays probabilistic or heap-based on a cycle, AOF
	// compaction after erasure is deferred.
	TimingEventual Timing = iota
	// TimingRealTime completes GDPR tasks synchronously: audit records are
	// fsynced per operation, expiry scans run eagerly, erasure compacts the
	// AOF before returning.
	TimingRealTime
)

// String returns the spectrum label.
func (t Timing) String() string {
	if t == TimingRealTime {
		return "real-time"
	}
	return "eventual"
}

// Capability is the feature-granularity dimension of the spectrum (§3.2):
// does the system natively support every GDPR feature, or only some, with
// the rest delegated to external components?
type Capability int

// Capability values.
const (
	// CapabilityPartial enables the cheap features only (TTL, deletion)
	// and leaves access control, purpose checks, location checks and read
	// auditing to external infrastructure.
	CapabilityPartial Capability = iota
	// CapabilityFull enforces every feature natively: ACLs, purpose and
	// objection checks, location policy, mandatory retention limits, and
	// full data+control path auditing.
	CapabilityFull
)

// String returns the spectrum label.
func (c Capability) String() string {
	if c == CapabilityFull {
		return "full"
	}
	return "partial"
}

// Config assembles a point on the compliance spectrum. Zero value +
// Normalize is the unmodified baseline. Use the preset constructors for the
// paper's configurations.
type Config struct {
	// Timing and Capability position the store on the §3.2 spectrum and
	// drive the defaults of the per-feature knobs below.
	Timing     Timing
	Capability Capability

	// Compliant enables the GDPR layer at all; false reproduces
	// unmodified Redis (no metadata, no audit, no checks) for baselines.
	Compliant bool

	// AOFPath enables command-log persistence when non-empty.
	AOFPath string
	// AOFSync overrides the fsync policy; nil means derive from Timing
	// (real-time → always, eventual → everysec).
	AOFSync *aof.SyncPolicy
	// JournalReads reproduces the paper's §4.1 retrofit exactly: the AOF
	// records every interaction including reads, so monitoring rides the
	// journal. Combined with AOFSync=always this is Figure 1's
	// "AOF w/ sync" configuration.
	JournalReads bool

	// AuditEnabled turns the monitoring feature on (Art. 30).
	AuditEnabled bool
	// AuditPath stores the trail durably when non-empty; empty keeps it in
	// memory (no durability — partial compliance).
	AuditPath string
	// AuditMode overrides durability; nil derives from Timing
	// (real-time → every-op, eventual → batched).
	AuditMode *audit.SyncMode
	// AuditReads controls whether the data read path is audited too. The
	// paper's strict reading of Art. 30 demands it ("every read operation
	// now has to be followed by a logging-write operation"); nil derives
	// from Capability (full → true).
	AuditReads *bool
	// AuditWorkers is the audit pipeline's worker-goroutine count
	// (0 = pipeline default).
	AuditWorkers int
	// AuditQueueDepth bounds the audit pipeline's enqueue ring
	// (0 = pipeline default).
	AuditQueueDepth int
	// AuditBackpressure overrides the full-queue policy; nil derives
	// Block (shedding audit records is an explicit opt-in, whatever the
	// timing).
	AuditBackpressure *audit.Backpressure
	// AuditMask pseudonymizes Key/Owner/Detail in every audit record
	// under a trail key before any sink sees it, so the trail is not a
	// second plaintext copy of personal data. Engine-side queries
	// (Breach, Query) still resolve real names through the in-memory
	// reverse table.
	AuditMask bool
	// AuditMaskKey keys the pseudonymization; nil derives AtRestKey, or
	// a random per-process key when that is unset too.
	AuditMaskKey []byte
	// AuditSocket, when non-empty ("tcp://host:port" or "unix:///path"),
	// exports the (masked) trail line-delimited to an external collector.
	AuditSocket string
	// AuditDrainTimeout bounds how long Close waits for queued audit
	// records to reach the sinks (0 = pipeline default).
	AuditDrainTimeout time.Duration

	// AtRestKey encrypts AOF and audit files (32 bytes) — the LUKS
	// stand-in of §4.2.
	AtRestKey []byte
	// Envelope encrypts each value under a per-owner data key (the
	// key-level alternative of §4.2). Enables crypto-shredding on erasure.
	Envelope bool
	// MasterKey roots the envelope keyring; required when Envelope is set.
	MasterKey []byte
	// ErasureSweepInterval is how often the background sweeper (StartSweeper)
	// runs a lazy-delete cycle reclaiming crypto-shredded ciphertext;
	// 0 derives 100ms. Only meaningful with Envelope set.
	ErasureSweepInterval time.Duration
	// ErasureSweepBudget caps how many records one sweep cycle may examine,
	// bounding the latency impact of each cycle; 0 derives 4096.
	ErasureSweepBudget int

	// ExpiryStrategy overrides the active-expiry algorithm; nil derives
	// from Timing (real-time → fast-scan, eventual → lazy-probabilistic).
	ExpiryStrategy *store.ExpiryStrategy
	// DefaultTTL applies to records written without an explicit TTL.
	DefaultTTL time.Duration
	// RequireTTL rejects writes with no retention bound (Art. 5 storage
	// limitation); nil derives from Capability (full → true).
	RequireTTL *bool

	// AllowedLocations whitelists storage regions (Art. 46); empty means
	// unrestricted. DefaultLocation tags records written without one.
	AllowedLocations []string
	DefaultLocation  string

	// EnforceACL turns on access control (Art. 25/32); nil derives from
	// Capability (full → true).
	EnforceACL *bool

	// Clock drives TTLs, audit timestamps and grant expiry; nil = wall.
	Clock clock.Clock
	// Seed makes expiry sampling deterministic (0 = fixed default).
	Seed int64
	// Shards is the engine's lock-stripe count (rounded up to a power of
	// two); 0 means the engine default, 1 reproduces the old single-mutex
	// engine for baseline comparisons.
	Shards int
}

// normalized is Config with every derived knob resolved.
type normalized struct {
	Config
	aofSync    aof.SyncPolicy
	auditMode  audit.SyncMode
	auditReads bool
	auditBP    audit.Backpressure
	strategy   store.ExpiryStrategy
	requireTTL bool
	enforceACL bool

	sweepInterval time.Duration
	sweepBudget   int
}

func (c Config) normalize() normalized {
	n := normalized{Config: c}
	if c.Clock == nil {
		n.Config.Clock = clock.NewWall()
	}
	if c.AOFSync != nil {
		n.aofSync = *c.AOFSync
	} else if c.Timing == TimingRealTime {
		n.aofSync = aof.SyncAlways
	} else {
		n.aofSync = aof.SyncEverySec
	}
	if c.AuditMode != nil {
		n.auditMode = *c.AuditMode
	} else if c.Timing == TimingRealTime {
		n.auditMode = audit.SyncEveryOp
	} else {
		n.auditMode = audit.SyncBatched
	}
	if c.AuditReads != nil {
		n.auditReads = *c.AuditReads
	} else {
		n.auditReads = c.Capability == CapabilityFull
	}
	if c.AuditBackpressure != nil {
		n.auditBP = *c.AuditBackpressure
	} else {
		// Both timings default to Block: shedding compliance evidence is
		// never implied, only requested.
		n.auditBP = audit.BackpressureBlock
	}
	if c.ExpiryStrategy != nil {
		n.strategy = *c.ExpiryStrategy
	} else if c.Timing == TimingRealTime {
		n.strategy = store.ExpiryFastScan
	} else {
		n.strategy = store.ExpiryLazyProbabilistic
	}
	if c.RequireTTL != nil {
		n.requireTTL = *c.RequireTTL
	} else {
		n.requireTTL = c.Capability == CapabilityFull
	}
	if c.EnforceACL != nil {
		n.enforceACL = *c.EnforceACL
	} else {
		n.enforceACL = c.Capability == CapabilityFull
	}
	n.sweepInterval = c.ErasureSweepInterval
	if n.sweepInterval <= 0 {
		n.sweepInterval = 100 * time.Millisecond
	}
	n.sweepBudget = c.ErasureSweepBudget
	if n.sweepBudget <= 0 {
		n.sweepBudget = 4096
	}
	return n
}

// Baseline returns the unmodified-Redis configuration: no GDPR features at
// all. Figure 1's "Unmodified" bars run against this.
func Baseline() Config {
	return Config{Compliant: false}
}

// Strict returns full + real-time compliance — the most expensive corner of
// the spectrum (§3.2 "strict compliance"). Figure 1's "AOF w/ sync" bars
// correspond to Strict with auditing as the only enabled feature.
func Strict(auditPath string) Config {
	return Config{
		Compliant:    true,
		Timing:       TimingRealTime,
		Capability:   CapabilityFull,
		AuditEnabled: true,
		AuditPath:    auditPath,
	}
}

// EventualFull returns full-capability, eventual-timing compliance — every
// feature on, batched durability. This is the "fsync once per second" 6×
// configuration of §4.1.
func EventualFull(auditPath string) Config {
	return Config{
		Compliant:    true,
		Timing:       TimingEventual,
		Capability:   CapabilityFull,
		AuditEnabled: true,
		AuditPath:    auditPath,
	}
}

// Ptr returns a pointer to v; a helper for the override fields.
func Ptr[T any](v T) *T { return &v }
