package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

var (
	ctlCtx = Ctx{Actor: "controller", Purpose: "admin"}
	svcCtx = Ctx{Actor: "svc", Purpose: "billing"}
)

// newFullStore builds a full+real-time compliant store with standard
// principals: a controller, a billing-purpose processor "svc", and data
// subjects alice/bob.
func newFullStore(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Strict("") // in-memory audit
	cfg.Clock = clock.NewVirtual(time.Date(2019, 5, 16, 0, 0, 0, 0, time.UTC))
	cfg.DefaultTTL = 24 * time.Hour
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	s.ACL().AddPrincipal(acl.Principal{ID: "svc", Role: acl.RoleProcessor})
	s.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})
	s.ACL().AddPrincipal(acl.Principal{ID: "bob", Role: acl.RoleSubject})
	s.ACL().AddPrincipal(acl.Principal{ID: "dpa", Role: acl.RoleRegulator})
	if err := s.ACL().AddGrant(acl.Grant{Principal: "svc", Purpose: "billing"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func vclock(s *Store) *clock.Virtual { return s.Config().Clock.(*clock.Virtual) }

func TestBaselinePutGet(t *testing.T) {
	s, err := Open(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Ctx{}, "k", []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(Ctx{}, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q, %v", v, err)
	}
	if _, err := s.GetUser(Ctx{}, "alice"); !errors.Is(err, ErrNotCompliant) {
		t.Fatalf("GDPR op on baseline: %v", err)
	}
}

func TestPutGetWithCompliance(t *testing.T) {
	s := newFullStore(t, nil)
	err := s.Put(svcCtx, "user:alice:email", []byte("a@x.eu"), PutOptions{Owner: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(svcCtx, "user:alice:email")
	if err != nil || string(v) != "a@x.eu" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestFullRequiresOwner(t *testing.T) {
	s := newFullStore(t, nil)
	if err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{}); !errors.Is(err, ErrNoOwner) {
		t.Fatalf("err = %v, want ErrNoOwner", err)
	}
}

func TestFullRequiresTTL(t *testing.T) {
	s := newFullStore(t, func(c *Config) { c.DefaultTTL = 0 })
	err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice"})
	if !errors.Is(err, ErrNoTTL) {
		t.Fatalf("err = %v, want ErrNoTTL", err)
	}
	if err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", TTL: time.Hour}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialAllowsNoTTL(t *testing.T) {
	s := newFullStore(t, func(c *Config) {
		c.Capability = CapabilityPartial
		c.DefaultTTL = 0
	})
	if err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice"}); err != nil {
		t.Fatalf("partial compliance rejected TTL-less write: %v", err)
	}
}

func TestPurposeLimitation(t *testing.T) {
	s := newFullStore(t, nil)
	err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", Purposes: []string{"billing"}})
	if err != nil {
		t.Fatal(err)
	}
	// svc reads under billing: allowed.
	if _, err := s.Get(svcCtx, "k"); err != nil {
		t.Fatalf("billing read denied: %v", err)
	}
	// Controller reads under an un-consented purpose: purpose check fires
	// even for the controller (purpose limitation binds the data, not the
	// principal).
	_, err = s.Get(Ctx{Actor: "controller", Purpose: "marketing"}, "k")
	if !errors.Is(err, ErrPurposeDenied) {
		t.Fatalf("err = %v, want ErrPurposeDenied", err)
	}
}

func TestACLDenied(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", Purposes: []string{"marketing"}})
	// svc has only a billing grant; reading for marketing must be denied
	// at the ACL layer.
	_, err := s.Get(Ctx{Actor: "svc", Purpose: "marketing"}, "k")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	// Denials land in the audit trail.
	recs, _ := s.Trail().Query(auditDeniedFilter())
	if len(recs) == 0 {
		t.Fatal("denied access not audited")
	}
}

func TestSubjectReadsOwnData(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", Purposes: []string{"*"}})
	if _, err := s.Get(Ctx{Actor: "alice", Purpose: "*"}, "k"); err != nil {
		t.Fatalf("subject denied own data: %v", err)
	}
	if _, err := s.Get(Ctx{Actor: "bob", Purpose: "*"}, "k"); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob reading alice's data: %v", err)
	}
}

func TestLocationPolicy(t *testing.T) {
	s := newFullStore(t, func(c *Config) {
		c.AllowedLocations = []string{"eu-west", "eu-central"}
		c.DefaultLocation = "eu-west"
	})
	if err := s.Put(ctlCtx, "k1", []byte("v"), PutOptions{Owner: "alice"}); err != nil {
		t.Fatalf("default location rejected: %v", err)
	}
	err := s.Put(ctlCtx, "k2", []byte("v"), PutOptions{Owner: "alice", Location: "us-east"})
	if !errors.Is(err, ErrLocationDenied) {
		t.Fatalf("err = %v, want ErrLocationDenied", err)
	}
}

func TestMetadataReporting(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{
		Owner:              "alice",
		Purposes:           []string{"billing", "analytics"},
		Origin:             "signup-form",
		SharedWith:         []string{"payment-gw"},
		TTL:                time.Hour,
		AutomatedDecisions: true,
	})
	m, err := s.Metadata(ctlCtx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if m.Owner != "alice" || m.Origin != "signup-form" || !m.AutomatedDecisions {
		t.Fatalf("meta = %+v", m)
	}
	if len(m.Purposes) != 2 || len(m.SharedWith) != 1 {
		t.Fatalf("meta lists = %+v", m)
	}
	want := vclock(s).Now().Add(time.Hour)
	if !m.Expiry.Equal(want) {
		t.Fatalf("expiry = %v, want %v", m.Expiry, want)
	}
}

func TestTTLExpiryEndToEnd(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", TTL: time.Minute})
	vclock(s).Advance(2 * time.Minute)
	if _, err := s.Get(ctlCtx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired key read: %v", err)
	}
	// Ghost metadata must be pruned on access.
	if _, err := s.Metadata(ctlCtx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost metadata served: %v", err)
	}
}

func TestGetUserAndIndexes(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "a1", []byte("1"), PutOptions{Owner: "alice", Purposes: []string{"billing"}})
	s.Put(ctlCtx, "a2", []byte("2"), PutOptions{Owner: "alice", Purposes: []string{"marketing"}})
	s.Put(ctlCtx, "b1", []byte("3"), PutOptions{Owner: "bob", Purposes: []string{"billing"}})

	recs, err := s.GetUser(ctlCtx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "a1" || recs[1].Key != "a2" {
		t.Fatalf("recs = %+v", recs)
	}
	keys, err := s.KeysByPurpose(ctlCtx, "billing")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a1" || keys[1] != "b1" {
		t.Fatalf("billing keys = %v", keys)
	}
	ok, err := s.OwnerKeys(ctlCtx, "bob")
	if err != nil || len(ok) != 1 || ok[0] != "b1" {
		t.Fatalf("bob keys = %v, %v", ok, err)
	}
}

func TestAccessReport(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "a1", []byte("1"), PutOptions{
		Owner: "alice", Purposes: []string{"billing"},
		SharedWith: []string{"gw"}, TTL: time.Hour,
	})
	s.Put(ctlCtx, "a2", []byte("2"), PutOptions{
		Owner: "alice", Purposes: []string{"analytics"},
		TTL: 2 * time.Hour, AutomatedDecisions: true,
	})
	rep, err := s.Access(Ctx{Actor: "alice"}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordCount != 2 || !rep.AutomatedDecisions {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Purposes) != 2 || len(rep.Recipients) != 1 {
		t.Fatalf("aggregates = %+v", rep)
	}
	if !rep.LatestExpiry.After(rep.EarliestExpiry) {
		t.Fatalf("expiry bounds = %v, %v", rep.EarliestExpiry, rep.LatestExpiry)
	}
}

func TestExportImportPortability(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "a1", []byte("v1"), PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Hour})
	out, err := s.Export(Ctx{Actor: "alice"}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte("gdprstore-export/v1")) {
		t.Fatal("export missing format marker")
	}
	// A second controller imports the payload.
	s2 := newFullStore(t, nil)
	n, err := s2.ImportExport(ctlCtx, out)
	if err != nil || n != 1 {
		t.Fatalf("import n=%d err=%v", n, err)
	}
	v, err := s2.Get(Ctx{Actor: "controller", Purpose: "billing"}, "a1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("imported value = %q, %v", v, err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	s := newFullStore(t, nil)
	if _, err := s.ImportExport(ctlCtx, []byte("{not an export}")); err == nil {
		t.Fatal("garbage import accepted")
	}
	if _, err := s.ImportExport(ctlCtx, []byte(`{"format":"v999"}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestForget(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "a1", []byte("1"), PutOptions{Owner: "alice"})
	s.Put(ctlCtx, "a2", []byte("2"), PutOptions{Owner: "alice"})
	s.Put(ctlCtx, "b1", []byte("3"), PutOptions{Owner: "bob"})
	n, err := s.Forget(Ctx{Actor: "alice"}, "alice")
	if err != nil || n != 2 {
		t.Fatalf("forget n=%d err=%v", n, err)
	}
	if _, err := s.Get(ctlCtx, "a1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("alice's data survived Forget")
	}
	if _, err := s.Get(ctlCtx, "b1"); err != nil {
		t.Fatalf("bob's data collateral damage: %v", err)
	}
	recs, _ := s.GetUser(ctlCtx, "alice")
	if len(recs) != 0 {
		t.Fatal("owner index still lists forgotten records")
	}
}

func TestForgetDeniedForOtherSubject(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "a1", []byte("1"), PutOptions{Owner: "alice"})
	if _, err := s.Forget(Ctx{Actor: "bob"}, "alice"); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob forgetting alice: %v", err)
	}
}

func TestObjection(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "a1", []byte("1"), PutOptions{Owner: "alice", Purposes: []string{"billing", "marketing"}})
	if err := s.Object(Ctx{Actor: "alice"}, "alice", "marketing"); err != nil {
		t.Fatal(err)
	}
	// Existing record: marketing now denied, billing still fine.
	if _, err := s.Get(Ctx{Actor: "controller", Purpose: "marketing"}, "a1"); !errors.Is(err, ErrPurposeDenied) {
		t.Fatalf("objected purpose allowed: %v", err)
	}
	if _, err := s.Get(Ctx{Actor: "controller", Purpose: "billing"}, "a1"); err != nil {
		t.Fatalf("non-objected purpose denied: %v", err)
	}
	// Future record: objection applies automatically.
	s.Put(ctlCtx, "a2", []byte("2"), PutOptions{Owner: "alice", Purposes: []string{"marketing"}})
	if _, err := s.Get(Ctx{Actor: "controller", Purpose: "marketing"}, "a2"); !errors.Is(err, ErrPurposeDenied) {
		t.Fatalf("standing objection not applied to new record: %v", err)
	}
	// Purpose index respects objections.
	keys, _ := s.KeysByPurpose(ctlCtx, "marketing")
	if len(keys) != 0 {
		t.Fatalf("objected keys still indexed for purpose: %v", keys)
	}
	// Withdraw.
	if err := s.Unobject(Ctx{Actor: "alice"}, "alice", "marketing"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(Ctx{Actor: "controller", Purpose: "marketing"}, "a1"); err != nil {
		t.Fatalf("withdrawn objection still enforced: %v", err)
	}
	if obj := s.Objections("alice"); len(obj) != 0 {
		t.Fatalf("objections = %v", obj)
	}
}

func TestBreachReportACL(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice"})
	from := time.Time{}
	to := vclock(s).Now().Add(time.Hour)
	if _, err := s.Breach(Ctx{Actor: "dpa"}, from, to); err != nil {
		t.Fatalf("regulator denied breach report: %v", err)
	}
	if _, err := s.Breach(Ctx{Actor: "svc"}, from, to); !errors.Is(err, ErrDenied) {
		t.Fatalf("processor allowed breach report: %v", err)
	}
	rep, _ := s.Breach(Ctx{Actor: "controller"}, from, to)
	if rep.AffectedOwners["alice"] == 0 {
		t.Fatalf("report misses alice: %+v", rep)
	}
}

func TestAuditReadsRecorded(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice"})
	s.Get(Ctx{Actor: "controller", Purpose: "admin"}, "k")
	recs, err := s.Trail().Query(auditOpFilter("GET"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("GET audit records = %d, want 1 (strict: every read logged)", len(recs))
	}
}

func TestExpireUpdatesMetadata(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", TTL: time.Hour})
	if err := s.Expire(ctlCtx, "k", 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Metadata(ctlCtx, "k")
	want := vclock(s).Now().Add(2 * time.Hour)
	if !m.Expiry.Equal(want) {
		t.Fatalf("meta expiry %v, want %v", m.Expiry, want)
	}
	if err := s.Expire(ctlCtx, "missing", time.Hour); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaintainPrunesGhosts(t *testing.T) {
	s := newFullStore(t, nil)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", TTL: time.Minute})
	vclock(s).Advance(2 * time.Minute)
	s.Engine().ActiveExpireCycle() // strict strategy: reclaims in engine
	if s.MetaCount() != 1 {
		t.Fatalf("meta count before maintain = %d", s.MetaCount())
	}
	st := s.Maintain()
	if st.GhostMetaPruned != 1 {
		t.Fatalf("pruned = %d", st.GhostMetaPruned)
	}
	if s.MetaCount() != 0 {
		t.Fatal("ghost meta survived maintain")
	}
}

func TestTable1Mapping(t *testing.T) {
	if len(Articles) != 13 {
		t.Fatalf("Table 1 has %d rows, want 13", len(Articles))
	}
	feats := FeaturesOf(Articles)
	// All six features plus the "All" marker must be exercised.
	if len(feats) != 7 {
		t.Fatalf("features covered = %d (%v), want 7", len(feats), feats)
	}
	for _, a := range Articles {
		if a.Number == "" || a.Name == "" || a.Requirement == "" || len(a.Features) == 0 || len(a.Modules) == 0 {
			t.Fatalf("incomplete article row: %+v", a)
		}
	}
	out := FormatTable1()
	for _, want := range []string{"Right to be forgotten", "Timely deletion", "Monitoring", "33, 34"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("Table 1 output missing %q", want)
		}
	}
}

func TestComplianceSpectrumDefaults(t *testing.T) {
	strict := Strict("").normalize()
	if strict.auditMode.String() != "every-op" || strict.strategy != store.ExpiryFastScan || !strict.requireTTL || !strict.enforceACL || !strict.auditReads {
		t.Fatalf("strict defaults wrong: %+v", strict)
	}
	ev := EventualFull("").normalize()
	if ev.auditMode.String() != "batched-1s" {
		t.Fatalf("eventual audit mode = %v", ev.auditMode)
	}
	if ev.strategy != store.ExpiryLazyProbabilistic {
		t.Fatalf("eventual strategy = %v", ev.strategy)
	}
	base := Baseline().normalize()
	if base.Compliant {
		t.Fatal("baseline is compliant")
	}
	if Strict("").Timing.String() != "real-time" || EventualFull("").Timing.String() != "eventual" {
		t.Fatal("timing labels wrong")
	}
	if CapabilityFull.String() != "full" || CapabilityPartial.String() != "partial" {
		t.Fatal("capability labels wrong")
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := newFullStore(t, nil)
	s.Close()
	if err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Get(ctlCtx, "k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

// --- helpers ---

// auditFilter aliases audit.Filter to keep test call sites short.
type auditFilter = audit.Filter

func auditDeniedFilter() (f auditFilter) { f.Outcome = audit.OutcomeDenied; return }

func auditOpFilter(op string) (f auditFilter) { f.Op = op; return }

func tempAOF(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "gdpr.aof")
}
