package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/cryptoutil"
	"gdprstore/internal/store"
)

// Slot migration moves keys between cluster nodes while both stay live.
// The compliance layer's half of the protocol is three primitives:
//
//   - DumpForMigration extracts one key as a portable record: the value
//     decrypted (each node seals under its own keyring, so ciphertext
//     cannot travel), the metadata verbatim, the retention deadline
//     absolute. Records that are crypto-erased but unswept are NOT
//     dumped — migration must never resurrect data a subject asked to be
//     forgotten.
//   - RestoreRecord ingests such a record on the destination through the
//     full compliance path: re-sealed under the destination's keyring (at
//     the destination's current key epoch for the owner, so a FORGETUSER
//     that already reached the destination wins — restore then fails with
//     ERASED instead of resurrecting), re-indexed, journaled, and audited,
//     with metadata (Created, Origin, Objections, Expiry) preserved.
//   - RemoveMigrated deletes the source copy after the destination has
//     acknowledged it, journaling the engine DEL so the source's replicas
//     follow.
//
// The server drives these per key under CLUSTER MIGRATESLOT and writes one
// aggregate audit record per slot on the source (AuditMigration); the
// destination audits each RESTOREKEY — arrival of personal data on a new
// node is a processing event in its own right.

// MigrationRecord is one key's portable form for slot migration. Meta is
// nil for records written without compliance metadata (baseline stores or
// raw SETs); those carry their absolute retention deadline, if any, in
// ExpireAtMs instead.
type MigrationRecord struct {
	Key        string    `json:"key"`
	Value      []byte    `json:"value"`
	Meta       *Metadata `json:"meta,omitempty"`
	ExpireAtMs int64     `json:"expire_at_ms,omitempty"`
}

// EncodeMigrationRecord serializes a record for the wire.
func EncodeMigrationRecord(rec MigrationRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("core: encode migration record: %w", err)
	}
	return b, nil
}

// DecodeMigrationRecord parses a wire-form migration record.
func DecodeMigrationRecord(b []byte) (MigrationRecord, error) {
	var rec MigrationRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return MigrationRecord{}, fmt.Errorf("core: decode migration record: %w", err)
	}
	if rec.Key == "" {
		return MigrationRecord{}, fmt.Errorf("core: migration record without key")
	}
	return rec, nil
}

// AuthorizeMigration checks that the acting principal may drive slot
// migration (an admin operation), auditing a denial.
func (s *Store) AuthorizeMigration(ctx Ctx) error {
	if !s.cfg.Compliant {
		return nil
	}
	return s.check(ctx, acl.OpAdmin, "", "MIGRATESLOT", "")
}

// DumpForMigration extracts key as a portable migration record. ok is
// false when the key does not exist, is crypto-erased awaiting the sweep,
// or belongs to an owner shredded since — none of which migrate. raw is
// the engine's stored bytes at dump time; the caller hands it back to
// RemoveMigrated so a write that lands between dump and removal is
// detected instead of lost.
func (s *Store) DumpForMigration(key string) (rec MigrationRecord, raw []byte, ok bool, err error) {
	ks := s.keyStripeFor(key)
	ks.Lock()
	defer ks.Unlock()
	if s.closed.Load() {
		return rec, nil, false, ErrClosed
	}
	v, exists := s.db.Get(key)
	if !exists {
		return rec, nil, false, nil
	}
	raw = v
	if s.cfg.Compliant {
		if m, hasMeta := s.metaLive(key); hasMeta {
			if s.recordDead(m) {
				return rec, nil, false, nil
			}
			if s.keyring != nil && m.Owner != "" {
				dk, kerr := s.keyring.KeyFor(m.Owner)
				if kerr != nil {
					// Shredded between metaLive and here: erased, not dumped.
					return rec, nil, false, nil
				}
				pt, oerr := openSealed(dk, v, key)
				if oerr != nil {
					return rec, nil, false, oerr
				}
				v = pt
			}
			mc := m.clone()
			return MigrationRecord{Key: key, Value: v, Meta: &mc}, raw, true, nil
		}
	}
	rec = MigrationRecord{Key: key, Value: v}
	switch ttl, status := s.db.TTL(key); status {
	case store.TTLMissing:
		return rec, nil, false, nil
	case store.TTLSet:
		rec.ExpireAtMs = s.cfg.Config.Clock.Now().Add(ttl).UnixMilli()
	}
	return rec, raw, true, nil
}

// RestoreRecord ingests a migration record: the destination half of a slot
// transfer. Metadata-bearing records go through the full compliance path —
// sealed under this node's keyring at the owner's current epoch,
// re-indexed, GMETA-journaled, audited — with the source's metadata
// (Created, Origin, Objections, Expiry, ...) preserved verbatim. A record
// whose owner is crypto-shredded here fails with ErrErased: an erasure
// that raced ahead of the migration wins. A record already past its
// retention deadline is dropped silently — migrating it would resurrect
// overdue data.
func (s *Store) RestoreRecord(ctx Ctx, rec MigrationRecord) error {
	if rec.Meta == nil || !s.cfg.Compliant {
		return s.restoreRaw(rec)
	}
	meta := rec.Meta.clone()
	os := s.ownerStripeFor(meta.Owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	ks := s.keyStripeFor(rec.Key)
	ks.Lock()
	defer ks.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.check(ctx, acl.OpWrite, meta.Owner, "RESTOREKEY", rec.Key); err != nil {
		return err
	}
	stored := rec.Value
	if s.keyring != nil && meta.Owner != "" {
		k, wrapped, created, err := s.keyring.Ensure(meta.Owner)
		if err != nil {
			if err == cryptoutil.ErrUnknownKey {
				return fmt.Errorf("%w: %s", ErrErased, meta.Owner)
			}
			return err
		}
		meta.KeyEpoch = s.keyring.Epoch(meta.Owner)
		if created {
			if err := s.appendLog(opKey, []byte(meta.Owner), wrapped, epochArg(meta.KeyEpoch)); err != nil {
				return err
			}
		}
		sealed, err := cryptoutil.Seal(k, rec.Value, []byte(rec.Key))
		if err != nil {
			return err
		}
		stored = sealed
	} else {
		meta.KeyEpoch = 0
	}
	if meta.Expiry.IsZero() {
		s.db.Set(rec.Key, stored)
	} else {
		ttl := meta.Expiry.Sub(s.cfg.Config.Clock.Now())
		if ttl <= 0 {
			return nil
		}
		s.db.SetEX(rec.Key, stored, ttl)
	}
	mb, err := meta.encode()
	if err != nil {
		return err
	}
	s.ix.put(rec.Key, meta)
	if err := s.appendLog(opMeta, []byte(rec.Key), mb); err != nil {
		return err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "RESTOREKEY", Key: rec.Key, Owner: meta.Owner,
		Purpose: ctx.Purpose, Outcome: audit.OutcomeOK, Detail: "migrated-in",
	})
	return nil
}

// restoreRaw ingests a metadata-less record straight into the engine.
func (s *Store) restoreRaw(rec MigrationRecord) error {
	ks := s.keyStripeFor(rec.Key)
	ks.Lock()
	defer ks.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if rec.ExpireAtMs > 0 {
		ttl := time.UnixMilli(rec.ExpireAtMs).Sub(s.cfg.Config.Clock.Now())
		if ttl <= 0 {
			return nil
		}
		s.db.SetEX(rec.Key, rec.Value, ttl)
	} else {
		s.db.Set(rec.Key, rec.Value)
	}
	return nil
}

// RemoveMigrated deletes the source copy of a key the destination has
// acknowledged — but only if the engine still holds the exact bytes
// dumped (expect). changed reports a write that landed between dump and
// here: the caller must re-dump and re-send instead of deleting the newer
// value. Sealing is nonce-randomized, so any compliant re-write changes
// the stored bytes and is detected. The engine DEL is journaled as usual,
// so the source's replicas and AOF converge; there is no per-key audit
// record — the slot's aggregate AuditMigration entry is the evidence.
func (s *Store) RemoveMigrated(key string, expect []byte) (removed, changed bool) {
	ks := s.keyStripeFor(key)
	ks.Lock()
	defer ks.Unlock()
	if s.closed.Load() {
		return false, false
	}
	v, ok := s.db.Get(key)
	if !ok {
		// Already gone (erased or expired meanwhile): nothing to remove.
		return false, false
	}
	if !bytes.Equal(v, expect) {
		return false, true
	}
	s.db.Del(key)
	s.ix.del(key)
	return true, false
}

// AuditMigration writes the aggregate audit record for one slot
// migration on the source node.
func (s *Store) AuditMigration(ctx Ctx, detail string, ok bool) {
	outcome := audit.OutcomeOK
	if !ok {
		outcome = audit.OutcomeError
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "MIGRATESLOT", Purpose: ctx.Purpose,
		Outcome: outcome, Detail: detail,
	})
}
