package core

import (
	"fmt"
	"strings"
)

// Feature is one of the six storage-system features the paper derives from
// the GDPR articles (§3.1).
type Feature int

// The six features of a GDPR-compliant storage system.
const (
	// FeatureTimelyDeletion: TTLs plus prompt reclamation everywhere.
	FeatureTimelyDeletion Feature = iota
	// FeatureMonitoring: audit trail of all data/control path operations.
	FeatureMonitoring
	// FeatureIndexing: metadata-based access to groups of data.
	FeatureIndexing
	// FeatureAccessControl: fine-grained, dynamic access control.
	FeatureAccessControl
	// FeatureEncryption: encryption at rest and in transit.
	FeatureEncryption
	// FeatureLocation: control over the physical storage location.
	FeatureLocation
	// FeatureAll marks articles (5.2 accountability, 13 consent) whose
	// requirements span every feature.
	FeatureAll
)

// String returns the feature name as used in Table 1.
func (f Feature) String() string {
	switch f {
	case FeatureTimelyDeletion:
		return "Timely deletion"
	case FeatureMonitoring:
		return "Monitoring"
	case FeatureIndexing:
		return "Metadata indexing"
	case FeatureAccessControl:
		return "Access control"
	case FeatureEncryption:
		return "Encryption"
	case FeatureLocation:
		return "Manage data location"
	case FeatureAll:
		return "All"
	default:
		return "Unknown"
	}
}

// Article is one GDPR article row of Table 1, mapped to the storage
// features it requires and to the modules of this repository implementing
// them.
type Article struct {
	// Number is the article number as printed in Table 1 ("5.1", "17",
	// "33, 34", ...).
	Number string
	// Name is the article title.
	Name string
	// Requirement is the key requirement as summarised in Table 1.
	Requirement string
	// Features are the storage features the requirement maps to.
	Features []Feature
	// Modules names the packages of this repository implementing it.
	Modules []string
}

// Articles is Table 1 of the paper: the thirteen GDPR articles that
// significantly impact the design, interfacing, or performance of storage
// systems, mapped to storage features.
var Articles = []Article{
	{
		Number:      "5.1",
		Name:        "Purpose limitation",
		Requirement: "Data must be collected and used for specific purposes",
		Features:    []Feature{FeatureIndexing},
		Modules:     []string{"core (Metadata.Purposes, KeysByPurpose)"},
	},
	{
		Number:      "5.1",
		Name:        "Storage limitation",
		Requirement: "Data should not be stored beyond its purpose",
		Features:    []Feature{FeatureTimelyDeletion},
		Modules:     []string{"store (TTL, expiry cycles)", "core (RequireTTL)"},
	},
	{
		Number:      "5.2",
		Name:        "Accountability",
		Requirement: "Controller must be able to demonstrate compliance",
		Features:    []Feature{FeatureAll},
		Modules:     []string{"audit", "core"},
	},
	{
		Number:      "13",
		Name:        "Conditions for data collection",
		Requirement: "Get user's consent on how their data would be managed",
		Features:    []Feature{FeatureAll},
		Modules:     []string{"core (PutOptions: purposes, TTL, recipients)"},
	},
	{
		Number:      "15",
		Name:        "Right of access by users",
		Requirement: "Provide users a timely access to all their data",
		Features:    []Feature{FeatureIndexing},
		Modules:     []string{"core (GetUser, Access)"},
	},
	{
		Number:      "17",
		Name:        "Right to be forgotten",
		Requirement: "Find and delete groups of data",
		Features:    []Feature{FeatureTimelyDeletion},
		Modules:     []string{"core (Forget)", "aof (Rewrite)", "cryptoutil (Keyring.Shred)"},
	},
	{
		Number:      "20",
		Name:        "Right to data portability",
		Requirement: "Transfer data to other controllers upon request",
		Features:    []Feature{FeatureIndexing},
		Modules:     []string{"core (Export, ImportExport)"},
	},
	{
		Number:      "21",
		Name:        "Right to object",
		Requirement: "Data should not be used for any objected reasons",
		Features:    []Feature{FeatureIndexing},
		Modules:     []string{"core (Object, Metadata.Objections)"},
	},
	{
		Number:      "25",
		Name:        "Protection by design and by default",
		Requirement: "Safeguard and restrict access to data",
		Features:    []Feature{FeatureAccessControl, FeatureEncryption},
		Modules:     []string{"acl", "cryptoutil", "tlsproxy"},
	},
	{
		Number:      "30",
		Name:        "Records of processing activity",
		Requirement: "Store audit logs of all operations",
		Features:    []Feature{FeatureMonitoring},
		Modules:     []string{"audit"},
	},
	{
		Number:      "32",
		Name:        "Security of data",
		Requirement: "Implement appropriate data security measures",
		Features:    []Feature{FeatureAccessControl, FeatureEncryption},
		Modules:     []string{"acl", "cryptoutil", "tlsproxy"},
	},
	{
		Number:      "33, 34",
		Name:        "Notify data breaches",
		Requirement: "Share insights and audit trails from concerned systems",
		Features:    []Feature{FeatureMonitoring},
		Modules:     []string{"audit (Breach)", "core (Breach)"},
	},
	{
		Number:      "46",
		Name:        "Transfers subject to safeguards",
		Requirement: "Control where the data resides",
		Features:    []Feature{FeatureLocation},
		Modules:     []string{"core (AllowedLocations, Metadata.Location)"},
	},
}

// FeaturesOf returns the distinct features across all articles, in
// declaration order.
func FeaturesOf(articles []Article) []Feature {
	seen := make(map[Feature]bool)
	var out []Feature
	for _, a := range articles {
		for _, f := range a.Features {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// FormatTable1 renders the article/feature mapping in the shape of the
// paper's Table 1.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-38s %-58s %s\n", "No.", "GDPR article", "Key requirement", "Storage feature")
	for _, a := range Articles {
		names := make([]string, len(a.Features))
		for i, f := range a.Features {
			names[i] = f.String()
		}
		fmt.Fprintf(&b, "%-7s %-38s %-58s %s\n", a.Number, a.Name, a.Requirement, strings.Join(names, ", "))
	}
	return b.String()
}
