package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/clock"
	"gdprstore/internal/store"
)

// Tests for the compliance half of live slot migration: dump / restore /
// guarded remove. The invariants under test are the ones the cluster
// protocol leans on — metadata travels verbatim, erasures win over
// migration in both directions, and a write racing the move is detected
// instead of lost.

// migrateCfg is an envelope-mode compliant config on a shared virtual
// clock, so both ends of a simulated migration agree on time.
func migrateCfg(clk *clock.Virtual) Config {
	return Config{
		Compliant:    true,
		Capability:   CapabilityPartial,
		AuditEnabled: true,
		Envelope:     true,
		MasterKey:    bytes.Repeat([]byte{0x5a}, 32),
		Clock:        clk,
	}
}

func openMigratePair(t *testing.T) (src, dst *Store, clk *clock.Virtual) {
	t.Helper()
	clk = clock.NewVirtual(time.Unix(1_700_000_000, 0))
	var err error
	if src, err = Open(migrateCfg(clk)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	if dst, err = Open(migrateCfg(clk)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Close() })
	return src, dst, clk
}

func TestMigrationRoundTripPreservesMetadata(t *testing.T) {
	src, dst, clk := openMigratePair(t)
	ctx := Ctx{Actor: "app", Purpose: "service"}
	const key = "pd:{carol}:profile"

	err := src.Put(ctx, key, []byte("carol-data"), PutOptions{
		Owner:    "carol",
		Purposes: []string{"service", "analytics"},
		Origin:   "signup-form",
		TTL:      2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcMeta, err := src.Metadata(ctx, key)
	if err != nil {
		t.Fatal(err)
	}

	rec, raw, ok, err := src.DumpForMigration(key)
	if err != nil || !ok {
		t.Fatalf("dump = ok=%v, %v; want ok", ok, err)
	}
	if string(rec.Value) != "carol-data" {
		t.Fatalf("dumped value = %q, want the plaintext", rec.Value)
	}
	if len(raw) == 0 || bytes.Equal(raw, rec.Value) {
		t.Fatal("raw engine bytes should be the sealed form, not the plaintext")
	}

	// Wire round-trip, then restore on the destination an hour later.
	b, err := EncodeMigrationRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := DecodeMigrationRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	if err := dst.RestoreRecord(ctx, rec2); err != nil {
		t.Fatal(err)
	}

	v, err := dst.Get(ctx, key)
	if err != nil || string(v) != "carol-data" {
		t.Fatalf("restored Get = %q, %v", v, err)
	}
	dstMeta, err := dst.Metadata(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata travels verbatim: same creation time, origin, purposes and
	// absolute retention deadline. Only the key epoch is re-stamped (the
	// value is sealed under the destination's keyring now).
	if !dstMeta.Created.Equal(srcMeta.Created) {
		t.Errorf("Created = %v, want %v", dstMeta.Created, srcMeta.Created)
	}
	if dstMeta.Origin != "signup-form" || len(dstMeta.Purposes) != 2 {
		t.Errorf("metadata lost fields: %+v", dstMeta)
	}
	if !dstMeta.Expiry.Equal(srcMeta.Expiry) {
		t.Errorf("Expiry = %v, want %v", dstMeta.Expiry, srcMeta.Expiry)
	}
	// The remaining TTL reflects the absolute deadline: one of the two
	// hours elapsed in transit.
	if ttl, status := dst.TTL(key); status != store.TTLSet || ttl > time.Hour {
		t.Errorf("restored TTL = %v (%v), want <= 1h remaining", ttl, status)
	}
	// The arrival was audited as its own processing event.
	recs, err := dst.Trail().Query(audit.Filter{Op: "RESTOREKEY", Owner: "carol"})
	if err != nil || len(recs) != 1 {
		t.Fatalf("destination RESTOREKEY audit records = %d, %v; want 1", len(recs), err)
	}
}

func TestMigrationNeverDumpsErased(t *testing.T) {
	src, _, _ := openMigratePair(t)
	ctx := Ctx{Actor: "app", Purpose: "service"}
	const key = "pd:{dave}:profile"
	if err := src.Put(ctx, key, []byte("dave-data"), PutOptions{Owner: "dave"}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Forget(Ctx{Actor: "dave"}, "dave"); err != nil {
		t.Fatal(err)
	}
	// The ciphertext is physically present (lazy sweep) but crypto-erased:
	// migration must not resurrect it.
	if !src.Engine().Exists(key) {
		t.Fatal("test premise broken: ciphertext already swept")
	}
	_, _, ok, err := src.DumpForMigration(key)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("DumpForMigration dumped a crypto-erased record")
	}
}

func TestMigrationRestoreRefusedAfterErasure(t *testing.T) {
	src, dst, _ := openMigratePair(t)
	ctx := Ctx{Actor: "app", Purpose: "service"}
	const key = "pd:{erin}:profile"
	if err := src.Put(ctx, key, []byte("erin-data"), PutOptions{Owner: "erin"}); err != nil {
		t.Fatal(err)
	}
	rec, _, ok, err := src.DumpForMigration(key)
	if err != nil || !ok {
		t.Fatalf("dump = ok=%v, %v", ok, err)
	}

	// The erasure reaches the destination before the record does: the
	// owner's key there is shredded, so the restore must fail ERASED
	// rather than re-create data the subject asked to be forgotten.
	if err := dst.Put(ctx, "pd:{erin}:other", []byte("x"), PutOptions{Owner: "erin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Forget(Ctx{Actor: "erin"}, "erin"); err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreRecord(ctx, rec); !errors.Is(err, ErrErased) {
		t.Fatalf("restore after erasure = %v, want ErrErased", err)
	}
	if v, err := dst.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("refused record is readable: %q, %v", v, err)
	}
}

func TestMigrationRestoreDropsOverdueRecord(t *testing.T) {
	src, dst, clk := openMigratePair(t)
	ctx := Ctx{Actor: "app", Purpose: "service"}
	const key = "pd:{fred}:profile"
	err := src.Put(ctx, key, []byte("fred-data"), PutOptions{Owner: "fred", TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, ok, err := src.DumpForMigration(key)
	if err != nil || !ok {
		t.Fatalf("dump = ok=%v, %v", ok, err)
	}
	// The record's retention deadline passes in transit: restoring it
	// would resurrect overdue data, so it is dropped silently.
	clk.Advance(2 * time.Minute)
	if err := dst.RestoreRecord(ctx, rec); err != nil {
		t.Fatal(err)
	}
	if dst.Engine().Exists(key) {
		t.Fatal("overdue record was restored")
	}
}

func TestMigrationRawRecordKeepsTTL(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	src, err := Open(Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// Baseline stores carry no metadata; the absolute deadline rides in
	// ExpireAtMs instead.
	src.Engine().SetEX("session:42", []byte("blob"), time.Hour)
	rec, raw, ok, err := src.DumpForMigration("session:42")
	if err != nil || !ok || len(raw) == 0 {
		t.Fatalf("dump = ok=%v raw=%d, %v", ok, len(raw), err)
	}
	if rec.Meta != nil || rec.ExpireAtMs == 0 {
		t.Fatalf("raw record = %+v, want no meta and an absolute deadline", rec)
	}
	clk.Advance(30 * time.Minute)
	if err := dst.RestoreRecord(Ctx{}, rec); err != nil {
		t.Fatal(err)
	}
	if ttl, status := dst.TTL("session:42"); status != store.TTLSet || ttl > 30*time.Minute {
		t.Fatalf("restored raw TTL = %v (%v), want <= 30m remaining", ttl, status)
	}

	// A raw record that expired in transit is likewise dropped.
	src.Engine().SetEX("session:43", []byte("blob"), time.Minute)
	rec, _, ok, err = src.DumpForMigration("session:43")
	if err != nil || !ok {
		t.Fatalf("dump = ok=%v, %v", ok, err)
	}
	clk.Advance(2 * time.Minute)
	if err := dst.RestoreRecord(Ctx{}, rec); err != nil {
		t.Fatal(err)
	}
	if dst.Engine().Exists("session:43") {
		t.Fatal("expired raw record was restored")
	}
}

func TestRemoveMigratedDetectsConcurrentWrite(t *testing.T) {
	src, _, _ := openMigratePair(t)
	ctx := Ctx{Actor: "app", Purpose: "service"}
	const key = "pd:{gina}:profile"
	if err := src.Put(ctx, key, []byte("v1"), PutOptions{Owner: "gina"}); err != nil {
		t.Fatal(err)
	}
	_, raw1, ok, err := src.DumpForMigration(key)
	if err != nil || !ok {
		t.Fatalf("dump = ok=%v, %v", ok, err)
	}

	// A write lands between dump and removal. Sealing is nonce-randomized,
	// so even re-writing the same value changes the stored bytes — the
	// guarded remove refuses and reports the change instead of deleting
	// the newer record.
	if err := src.Put(ctx, key, []byte("v2"), PutOptions{Owner: "gina"}); err != nil {
		t.Fatal(err)
	}
	removed, changed := src.RemoveMigrated(key, raw1)
	if removed || !changed {
		t.Fatalf("RemoveMigrated after racing write = removed=%v changed=%v, want changed", removed, changed)
	}
	if v, err := src.Get(ctx, key); err != nil || string(v) != "v2" {
		t.Fatalf("racing write lost: %q, %v", v, err)
	}

	// Re-dump (the protocol's retry) and remove with the fresh bytes.
	_, raw2, ok, err := src.DumpForMigration(key)
	if err != nil || !ok {
		t.Fatalf("re-dump = ok=%v, %v", ok, err)
	}
	removed, changed = src.RemoveMigrated(key, raw2)
	if !removed || changed {
		t.Fatalf("RemoveMigrated with fresh bytes = removed=%v changed=%v, want removed", removed, changed)
	}
	if src.Engine().Exists(key) {
		t.Fatal("source copy still present after guarded remove")
	}

	// Removing an already-gone key is a no-op, not an error.
	removed, changed = src.RemoveMigrated(key, raw2)
	if removed || changed {
		t.Fatalf("RemoveMigrated on missing key = removed=%v changed=%v, want neither", removed, changed)
	}
}
