package core

import (
	"bytes"
	"os"
	"testing"
	"time"

	"gdprstore/internal/backup"
	"gdprstore/internal/clock"
	"gdprstore/internal/replica"
)

func TestForgetPropagatesToReplicas(t *testing.T) {
	for _, mode := range []replica.Mode{replica.Sync, replica.Async} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newFullStore(t, nil)
			if _, err := s.EnableReplication(mode); err != nil {
				t.Fatal(err)
			}
			r1, err := s.AddReplica()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := s.AddReplica()
			if err != nil {
				t.Fatal(err)
			}
			s.Put(ctlCtx, "pd:alice:1", []byte("secret"), PutOptions{Owner: "alice"})
			s.Put(ctlCtx, "pd:bob:1", []byte("other"), PutOptions{Owner: "bob"})
			if mode == replica.Async {
				s.Primary().Flush()
			}
			if !r1.DB.Exists("pd:alice:1") {
				t.Fatal("replication did not deliver the write")
			}
			if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
				t.Fatal(err)
			}
			// Real-time timing flushes replicas inside Forget; verify the
			// Article 17 guarantee on every replica.
			for i, r := range []*replica.Replica{r1, r2} {
				if r.DB.Exists("pd:alice:1") {
					t.Fatalf("replica %d still holds erased data (%s mode)", i, mode)
				}
				if !r.DB.Exists("pd:bob:1") {
					t.Fatalf("replica %d lost unrelated data", i)
				}
			}
		})
	}
}

func TestReplicationRequiresEnable(t *testing.T) {
	s := newFullStore(t, nil)
	if _, err := s.AddReplica(); err == nil {
		t.Fatal("AddReplica without EnableReplication accepted")
	}
	if s.Primary() != nil {
		t.Fatal("phantom primary")
	}
}

func TestEnableReplicationTwiceFails(t *testing.T) {
	s := newFullStore(t, nil)
	if _, err := s.EnableReplication(replica.Sync); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableReplication(replica.Sync); err == nil {
		t.Fatal("double enable accepted")
	}
}

func TestReplicationChainsWithAOF(t *testing.T) {
	// Both the AOF and the replicas must observe every mutation when
	// chained.
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	s, err := Open(persistentCfg(path, vc, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addPrincipals(s)
	if _, err := s.EnableReplication(replica.Sync); err != nil {
		t.Fatal(err)
	}
	r, err := s.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice"})
	if !r.DB.Exists("k") {
		t.Fatal("replica missed the write")
	}
	s.Log().Sync()
	raw, _ := os.ReadFile(path)
	if !bytes.Contains(raw, []byte("k")) {
		t.Fatal("AOF missed the write")
	}
}

func TestForgetRefreshesBackups(t *testing.T) {
	s := newFullStore(t, nil)
	m, err := backup.NewManager(t.TempDir(), nil, s.Config().Clock)
	if err != nil {
		t.Fatal(err)
	}
	s.SetBackupManager(m)
	secret := []byte("alice-backup-payload")
	s.Put(ctlCtx, "pd:alice", secret, PutOptions{Owner: "alice"})
	s.Put(ctlCtx, "pd:bob", []byte("bob-data"), PutOptions{Owner: "bob"})
	if _, err := s.Backup(); err != nil {
		t.Fatal(err)
	}
	vclock(s).Advance(time.Hour)
	if _, err := s.Backup(); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	// Real-time Forget must have refreshed: exactly one generation, free
	// of alice's data.
	gens, _ := m.List()
	if len(gens) != 1 {
		t.Fatalf("generations after Forget = %d, want 1", len(gens))
	}
	raw, _ := os.ReadFile(gens[0])
	if bytes.Contains(raw, secret) {
		t.Fatal("erased data persists in backups after real-time Forget")
	}
	if !bytes.Contains(raw, []byte("bob-data")) {
		t.Fatal("unrelated data lost from refreshed backup")
	}
}

func TestEventualForgetDefersBackupRefresh(t *testing.T) {
	s := newFullStore(t, func(c *Config) { c.Timing = TimingEventual })
	m, err := backup.NewManager(t.TempDir(), nil, s.Config().Clock)
	if err != nil {
		t.Fatal(err)
	}
	s.SetBackupManager(m)
	secret := []byte("deferred-erasure-payload")
	s.Put(ctlCtx, "pd:alice", secret, PutOptions{Owner: "alice"})
	s.Backup()
	s.Forget(Ctx{Actor: "alice"}, "alice")

	gens, _ := m.List()
	raw, _ := os.ReadFile(gens[0])
	if !bytes.Contains(raw, secret) {
		t.Fatal("eventual timing should leave the old backup until Maintain")
	}
	st := s.Maintain()
	if !st.Rewrote {
		t.Fatal("Maintain did not run deferred erasure propagation")
	}
	gens, _ = m.List()
	if len(gens) != 1 {
		t.Fatalf("generations after Maintain = %d", len(gens))
	}
	raw, _ = os.ReadFile(gens[0])
	if bytes.Contains(raw, secret) {
		t.Fatal("erased data persists in backups after Maintain")
	}
}

func TestBackupWithoutManagerFails(t *testing.T) {
	s := newFullStore(t, nil)
	if _, err := s.Backup(); err == nil {
		t.Fatal("Backup without manager accepted")
	}
}
