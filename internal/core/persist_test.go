package core

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/aof"
	"gdprstore/internal/clock"
)

// reopenable builds a persistent full-compliance config over path.
func persistentCfg(path string, vc *clock.Virtual, mutate func(*Config)) Config {
	cfg := Strict("")
	cfg.Clock = vc
	cfg.AOFPath = path
	cfg.AOFSync = Ptr(aof.SyncNo) // durability policy irrelevant to replay tests
	cfg.DefaultTTL = 24 * time.Hour
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func addPrincipals(s *Store) {
	s.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	s.ACL().AddPrincipal(acl.Principal{ID: "alice", Role: acl.RoleSubject})
}

func TestReplayRestoresDataAndMetadata(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(1_000_000, 0))

	s, err := Open(persistentCfg(path, vc, nil))
	if err != nil {
		t.Fatal(err)
	}
	addPrincipals(s)
	s.Put(ctlCtx, "k1", []byte("v1"), PutOptions{Owner: "alice", Purposes: []string{"billing"}, TTL: time.Hour})
	s.Put(ctlCtx, "k2", []byte("v2"), PutOptions{Owner: "alice", Purposes: []string{"billing"}})
	s.Delete(ctlCtx, "k2")
	s.Object(Ctx{Actor: "alice"}, "alice", "marketing")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(persistentCfg(path, vc, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	addPrincipals(s2)

	v, err := s2.Get(Ctx{Actor: "controller", Purpose: "billing"}, "k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("replayed value = %q, %v", v, err)
	}
	if _, err := s2.Get(ctlCtx, "k2"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected by replay")
	}
	m, err := s2.Metadata(ctlCtx, "k1")
	if err != nil || m.Owner != "alice" || len(m.Purposes) != 1 {
		t.Fatalf("replayed metadata = %+v, %v", m, err)
	}
	if obj := s2.Objections("alice"); len(obj) != 1 || obj[0] != "marketing" {
		t.Fatalf("replayed objections = %v", obj)
	}
	// TTL survives replay.
	d, st := s2.TTL("k1")
	if d <= 0 || d > time.Hour {
		t.Fatalf("replayed TTL = %v, %v", d, st)
	}
}

func TestReplayExpiredKeyStaysDead(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	s, _ := Open(persistentCfg(path, vc, nil))
	addPrincipals(s)
	s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", TTL: time.Minute})
	s.Close()

	vc.Advance(time.Hour) // key expires while the store is down
	s2, err := Open(persistentCfg(path, vc, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	addPrincipals(s2)
	if _, err := s2.Get(ctlCtx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("key that expired during downtime served: %v", err)
	}
}

func TestForgetRealTimeCompactsAOF(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	s, _ := Open(persistentCfg(path, vc, nil))
	addPrincipals(s)
	secret := []byte("alice-super-sensitive-payload")
	s.Put(ctlCtx, "a1", secret, PutOptions{Owner: "alice"})
	s.Log().Sync()
	raw, _ := os.ReadFile(path)
	if !bytes.Contains(raw, secret) {
		t.Fatal("sanity: plaintext AOF should contain the payload before erasure")
	}
	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatal(err)
	}
	// Real-time timing: the AOF must already be compacted — no copy of the
	// erased data persists anywhere (§4.3).
	raw, _ = os.ReadFile(path)
	if bytes.Contains(raw, secret) {
		t.Fatal("erased personal data persists in AOF after real-time Forget")
	}
	s.Close()

	s2, _ := Open(persistentCfg(path, vc, nil))
	defer s2.Close()
	addPrincipals(s2)
	if _, err := s2.Get(ctlCtx, "a1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("forgotten key resurrected")
	}
}

func TestForgetEventualDefersCompaction(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	s, _ := Open(persistentCfg(path, vc, func(c *Config) { c.Timing = TimingEventual }))
	addPrincipals(s)
	secret := []byte("bob-payload-to-erase")
	s.Put(ctlCtx, "b1", secret, PutOptions{Owner: "alice"})
	s.Forget(Ctx{Actor: "alice"}, "alice")
	if !s.PendingRewrite() {
		t.Fatal("eventual Forget did not schedule compaction")
	}
	s.Log().Sync()
	raw, _ := os.ReadFile(path)
	if !bytes.Contains(raw, secret) {
		t.Fatal("eventual timing should leave data in AOF until Maintain")
	}
	st := s.Maintain()
	if !st.Rewrote {
		t.Fatal("Maintain did not run the deferred compaction")
	}
	raw, _ = os.ReadFile(path)
	if bytes.Contains(raw, secret) {
		t.Fatal("erased data persists after Maintain compaction")
	}
	s.Close()
}

func TestEnvelopeEncryptionEndToEnd(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	master := bytes.Repeat([]byte{0x42}, 32)
	mk := func(c *Config) {
		c.Envelope = true
		c.MasterKey = master
	}
	s, err := Open(persistentCfg(path, vc, mk))
	if err != nil {
		t.Fatal(err)
	}
	addPrincipals(s)
	secret := []byte("alice-envelope-secret")
	s.Put(ctlCtx, "a1", secret, PutOptions{Owner: "alice"})
	v, err := s.Get(ctlCtx, "a1")
	if err != nil || !bytes.Equal(v, secret) {
		t.Fatalf("get = %q, %v", v, err)
	}
	// The engine and AOF must hold ciphertext only.
	rawVal, _ := s.Engine().Get("a1")
	if bytes.Contains(rawVal, secret) {
		t.Fatal("engine holds plaintext despite envelope encryption")
	}
	s.Log().Sync()
	rawFile, _ := os.ReadFile(path)
	if bytes.Contains(rawFile, secret) {
		t.Fatal("AOF holds plaintext despite envelope encryption")
	}
	s.Close()

	// Restart: wrapped key replays, data decrypts.
	s2, err := Open(persistentCfg(path, vc, mk))
	if err != nil {
		t.Fatal(err)
	}
	addPrincipals(s2)
	v, err = s2.Get(ctlCtx, "a1")
	if err != nil || !bytes.Equal(v, secret) {
		t.Fatalf("after restart get = %q, %v", v, err)
	}

	// Crypto-shredding: Forget destroys the key; even if ciphertext
	// lingered somewhere, it is unreadable; and new writes for alice fail
	// until reinstated.
	s2.Forget(Ctx{Actor: "alice"}, "alice")
	if err := s2.Put(ctlCtx, "a2", []byte("new"), PutOptions{Owner: "alice"}); !errors.Is(err, ErrErased) {
		t.Fatalf("put after shred err = %v", err)
	}
	if err := s2.Reinstate(ctlCtx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(ctlCtx, "a2", []byte("new life"), PutOptions{Owner: "alice"}); err != nil {
		t.Fatalf("put after reinstate: %v", err)
	}
	s2.Close()

	// Restart again: shred+reinstate state replays correctly.
	s3, err := Open(persistentCfg(path, vc, mk))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	addPrincipals(s3)
	v, err = s3.Get(ctlCtx, "a2")
	if err != nil || string(v) != "new life" {
		t.Fatalf("post-reinstate replay = %q, %v", v, err)
	}
	if _, err := s3.Get(ctlCtx, "a1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("forgotten record replayed")
	}
}

func TestAtRestEncryptionAOF(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	key := bytes.Repeat([]byte{0x17}, 32)
	mk := func(c *Config) { c.AtRestKey = key }
	s, err := Open(persistentCfg(path, vc, mk))
	if err != nil {
		t.Fatal(err)
	}
	addPrincipals(s)
	secret := []byte("at-rest-protected-payload")
	s.Put(ctlCtx, "k", secret, PutOptions{Owner: "alice"})
	s.Log().Sync()
	raw, _ := os.ReadFile(path)
	if bytes.Contains(raw, secret) {
		t.Fatal("plaintext on disk despite at-rest key (LUKS stand-in broken)")
	}
	s.Close()
	s2, err := Open(persistentCfg(path, vc, mk))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	addPrincipals(s2)
	v, err := s2.Get(ctlCtx, "k")
	if err != nil || !bytes.Equal(v, secret) {
		t.Fatalf("encrypted replay = %q, %v", v, err)
	}
}

func TestCompactionPreservesState(t *testing.T) {
	path := tempAOF(t)
	vc := clock.NewVirtual(time.Unix(0, 0))
	s, _ := Open(persistentCfg(path, vc, nil))
	addPrincipals(s)
	for i := 0; i < 50; i++ {
		s.Put(ctlCtx, "hot", []byte{byte(i)}, PutOptions{Owner: "alice", TTL: time.Hour})
	}
	s.Object(Ctx{Actor: "alice"}, "alice", "ads")
	before := s.Log().Size()
	if err := s.Compact(ctlCtx); err != nil {
		t.Fatal(err)
	}
	if s.Log().Size() >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, s.Log().Size())
	}
	s.Close()
	s2, _ := Open(persistentCfg(path, vc, nil))
	defer s2.Close()
	addPrincipals(s2)
	v, err := s2.Get(ctlCtx, "hot")
	if err != nil || v[0] != 49 {
		t.Fatalf("post-compaction value = %v, %v", v, err)
	}
	if obj := s2.Objections("alice"); len(obj) != 1 {
		t.Fatalf("objections lost in compaction: %v", obj)
	}
}

func TestEnvelopeRequiresMasterKey(t *testing.T) {
	cfg := Strict("")
	cfg.Envelope = true
	if _, err := Open(cfg); err == nil {
		t.Fatal("envelope without master key accepted")
	}
}
