package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
)

// UserRecord pairs one key the subject owns with its value and metadata.
type UserRecord struct {
	Key      string   `json:"key"`
	Value    []byte   `json:"value"`
	Metadata Metadata `json:"metadata"`
}

// GetUser implements Article 15's right of access: it returns every record
// owned by the subject, decrypted, with its metadata. The metadata index
// makes this a lookup rather than a keyspace scan.
func (s *Store) GetUser(ctx Ctx, owner string) ([]UserRecord, error) {
	if !s.cfg.Compliant {
		return nil, ErrNotCompliant
	}
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.check(ctx, acl.OpRights, owner, "GETUSER", ""); err != nil {
		return nil, err
	}
	recs, err := s.collectOwnerLocked(owner)
	if err != nil {
		return nil, err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "GETUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("records=%d", len(recs)),
	})
	return recs, nil
}

// collectOwnerLocked gathers the owner's records. Callers hold the owner's
// stripe (which freezes the owner's key set); each record is read under
// its key stripe, taken one at a time per the lock-ordering protocol.
func (s *Store) collectOwnerLocked(owner string) ([]UserRecord, error) {
	keys := s.ix.ownerKeys(owner)
	sort.Strings(keys)
	recs := make([]UserRecord, 0, len(keys))
	for _, k := range keys {
		ks := s.keyStripeFor(k)
		ks.Lock()
		m, ok := s.metaLive(k)
		if !ok || m.Owner != owner || s.recordDead(m) {
			// Re-validate ownership under the stripe: the key may have
			// been re-Put by a different subject since the index
			// snapshot, and their record must not leak into this
			// owner's Article 15 report. Crypto-erased records awaiting
			// the sweep are equally invisible — the subject's report
			// must not resurrect data they asked to be forgotten.
			ks.Unlock()
			continue
		}
		v, ok := s.db.Get(k)
		ks.Unlock()
		if !ok {
			continue
		}
		if s.keyring != nil && owner != "" {
			dk, err := s.keyring.KeyFor(owner)
			if err != nil {
				return nil, fmt.Errorf("%w: %s", ErrErased, owner)
			}
			pt, err := openSealed(dk, v, k)
			if err != nil {
				return nil, err
			}
			v = pt
		}
		recs = append(recs, UserRecord{Key: k, Value: v, Metadata: m.clone()})
	}
	return recs, nil
}

// AccessReport is the Article 15 disclosure: purposes of processing,
// recipients, storage periods, origin, and automated decision-making, per
// record and aggregated.
type AccessReport struct {
	Owner       string    `json:"owner"`
	GeneratedAt time.Time `json:"generated_at"`
	RecordCount int       `json:"record_count"`
	// Purposes aggregates the distinct processing purposes in effect.
	Purposes []string `json:"purposes"`
	// Recipients aggregates the distinct disclosure recipients.
	Recipients []string `json:"recipients"`
	// Objections lists the subject's standing objections.
	Objections []string `json:"objections"`
	// EarliestExpiry and LatestExpiry bound the storage periods.
	EarliestExpiry time.Time `json:"earliest_expiry,omitempty"`
	LatestExpiry   time.Time `json:"latest_expiry,omitempty"`
	// AutomatedDecisions reports whether any record feeds automated
	// decision-making (Art. 15(1)(h)).
	AutomatedDecisions bool `json:"automated_decisions"`
	// Records carries the per-record detail.
	Records []UserRecord `json:"records"`
}

// Access builds the Article 15 report for owner.
func (s *Store) Access(ctx Ctx, owner string) (AccessReport, error) {
	recs, err := s.GetUser(ctx, owner)
	if err != nil {
		return AccessReport{}, err
	}
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	objections := s.objectionsOfLocked(os, owner)
	os.mu.Unlock()
	sort.Strings(objections)

	rep := AccessReport{
		Owner:       owner,
		GeneratedAt: s.cfg.Config.Clock.Now(),
		RecordCount: len(recs),
		Objections:  objections,
		Records:     recs,
	}
	pset, rset := map[string]struct{}{}, map[string]struct{}{}
	for _, r := range recs {
		for _, p := range r.Metadata.Purposes {
			pset[p] = struct{}{}
		}
		for _, rc := range r.Metadata.SharedWith {
			rset[rc] = struct{}{}
		}
		if r.Metadata.AutomatedDecisions {
			rep.AutomatedDecisions = true
		}
		e := r.Metadata.Expiry
		if !e.IsZero() {
			if rep.EarliestExpiry.IsZero() || e.Before(rep.EarliestExpiry) {
				rep.EarliestExpiry = e
			}
			if e.After(rep.LatestExpiry) {
				rep.LatestExpiry = e
			}
		}
	}
	for p := range pset {
		rep.Purposes = append(rep.Purposes, p)
	}
	for r := range rset {
		rep.Recipients = append(rep.Recipients, r)
	}
	sort.Strings(rep.Purposes)
	sort.Strings(rep.Recipients)
	return rep, nil
}

// Export implements Article 20's right to data portability: every record
// of the subject serialised in a commonly used, machine-readable format
// (JSON), ready for transmission to another controller.
func (s *Store) Export(ctx Ctx, owner string) ([]byte, error) {
	recs, err := s.GetUser(ctx, owner)
	if err != nil {
		return nil, err
	}
	payload := struct {
		Format  string       `json:"format"`
		Owner   string       `json:"owner"`
		Records []UserRecord `json:"records"`
	}{Format: "gdprstore-export/v1", Owner: owner, Records: recs}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return nil, err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "EXPORTUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("bytes=%d", len(b)),
	})
	return b, nil
}

// ImportExport ingests a portability payload produced by Export (the
// receiving-controller half of Article 20). Records are written with their
// original metadata; the importing context must be permitted to write for
// each record's owner.
func (s *Store) ImportExport(ctx Ctx, payload []byte) (int, error) {
	var in struct {
		Format  string       `json:"format"`
		Owner   string       `json:"owner"`
		Records []UserRecord `json:"records"`
	}
	if err := json.Unmarshal(payload, &in); err != nil {
		return 0, fmt.Errorf("core: import: %w", err)
	}
	if in.Format != "gdprstore-export/v1" {
		return 0, fmt.Errorf("core: import: unknown format %q", in.Format)
	}
	n := 0
	for _, r := range in.Records {
		opts := PutOptions{
			Owner:              r.Metadata.Owner,
			Purposes:           r.Metadata.Purposes,
			Origin:             r.Metadata.Origin,
			SharedWith:         r.Metadata.SharedWith,
			Location:           r.Metadata.Location,
			AutomatedDecisions: r.Metadata.AutomatedDecisions,
		}
		if !r.Metadata.Expiry.IsZero() {
			opts.ExpireAt = r.Metadata.Expiry
		}
		if err := s.Put(ctx, r.Key, r.Value, opts); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Forget implements Article 17's right to be forgotten.
//
// With envelope encryption on, erasure is O(1) in the subject's data
// footprint: the owner's data key is destroyed (crypto-shredding), the
// GSHRED+GFORGET markers are journaled, and the call returns — without
// walking the owner's keys, deleting records, or compacting the AOF. Every
// copy of the ciphertext (engine, AOF history, replicas, backups) is
// unreadable the moment the key is gone, which is what Article 17 requires;
// the background lazy-delete sweep (maintain.go) reclaims the dead
// ciphertext and triggers compaction off the ack path. Real-time timing
// needs no synchronous propagation here either: the shred is the erasure,
// and the markers reach replicas through the ordinary journal stream.
//
// Without a keyring, erasure falls back to the eager path: every record of
// the subject is deleted from the engine and indexes under stripe locks,
// and real-time timing compacts the AOF before returning. It returns the
// number of records erased.
func (s *Store) Forget(ctx Ctx, owner string) (int, error) {
	if !s.cfg.Compliant {
		return 0, ErrNotCompliant
	}
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	if s.closed.Load() {
		os.mu.Unlock()
		return 0, ErrClosed
	}
	if err := s.check(ctx, acl.OpRights, owner, "FORGETUSER", ""); err != nil {
		os.mu.Unlock()
		return 0, err
	}
	if s.keyring != nil {
		return s.forgetShredLocked(ctx, owner, os)
	}
	// The owner stripe freezes the owner's key set (no new Puts for this
	// owner can land); each key is erased under its key stripe, acquired
	// in ascending order per the lock-ordering protocol. Ownership is
	// re-validated under the stripes: between the index snapshot and the
	// stripe acquisition another subject may have re-Put one of these
	// keys, and erasing it here would destroy *their* record.
	keys := s.ix.ownerKeys(owner)
	stripes := s.keyStripesFor(keys)
	s.lockKeyStripes(stripes)
	n := 0
	for _, k := range keys {
		if m, ok := s.ix.get(k); ok && m.Owner == owner {
			n += s.db.Del(k)
			s.ix.del(k)
		}
	}
	s.unlockKeyStripes(stripes)
	// The erasure marker follows the per-key DELs in the journal stream:
	// replicas replay it after the deletions, prune any residual metadata,
	// and audit that the Article 17 erasure reached their copy.
	if err := s.appendLog(opForget, []byte(owner)); err != nil {
		os.mu.Unlock()
		return n, err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "FORGETUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("erased=%d", n),
	})
	os.mu.Unlock()
	s.pendingRewrite.Store(true)
	if s.cfg.Timing == TimingRealTime {
		if err := s.propagateErasure(ctx); err != nil {
			return n, err
		}
	}
	return n, nil
}

// forgetShredLocked is the crypto-shred fast path of Forget. The caller
// holds the owner stripe os; this function releases it. The work is
// constant-time in the owner's key count: one keyring mutation, two journal
// appends, one audit record. The owner's index entries and engine
// ciphertext are left in place for the sweep; every read path treats them
// as already erased via Metadata.KeyEpoch.
func (s *Store) forgetShredLocked(ctx Ctx, owner string, os *ownerStripe) (int, error) {
	n := s.ix.ownerKeyCount(owner)
	epoch := s.keyring.Shred(owner)
	if err := s.appendLog(opShred, []byte(owner), epochArg(epoch)); err != nil {
		os.mu.Unlock()
		return n, err
	}
	if err := s.appendLog(opForget, []byte(owner), []byte(forgetModeShred)); err != nil {
		os.mu.Unlock()
		return n, err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "FORGETUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("erased=%d mode=shred", n),
	})
	os.mu.Unlock()
	if n > 0 {
		s.markErasurePending(owner)
	}
	return n, nil
}

// Reinstate clears an erased subject's crypto-shred mark so the subject can
// return with fresh data under a new key (old ciphertexts stay dead).
func (s *Store) Reinstate(ctx Ctx, owner string) error {
	if !s.cfg.Compliant {
		return ErrNotCompliant
	}
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	if err := s.check(ctx, acl.OpAdmin, owner, "REINSTATE", ""); err != nil {
		return err
	}
	if s.keyring != nil {
		s.keyring.Reinstate(owner)
		if err := s.appendLog(opReinst, []byte(owner)); err != nil {
			return err
		}
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "REINSTATE", Owner: owner,
		Outcome: audit.OutcomeOK,
	})
	return nil
}

// Object implements Article 21: the subject objects to processing of their
// data for the given purpose ("*" objects to everything). The objection
// takes effect immediately on all existing records and automatically
// applies to future ones.
func (s *Store) Object(ctx Ctx, owner, purpose string) error {
	return s.setObjection(ctx, owner, purpose, true)
}

// Unobject withdraws an Article 21 objection.
func (s *Store) Unobject(ctx Ctx, owner, purpose string) error {
	return s.setObjection(ctx, owner, purpose, false)
}

func (s *Store) setObjection(ctx Ctx, owner, purpose string, add bool) error {
	if !s.cfg.Compliant {
		return ErrNotCompliant
	}
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	opName := "OBJECT"
	logOp := opObject
	if !add {
		opName = "UNOBJECT"
		logOp = opUnobj
	}
	if err := s.check(ctx, acl.OpRights, owner, opName, ""); err != nil {
		return err
	}
	if add {
		s.applyObjectionLocked(os, owner, purpose)
	} else {
		s.applyUnobjectionLocked(os, owner, purpose)
	}
	if err := s.appendLog(logOp, []byte(owner), []byte(purpose)); err != nil {
		return err
	}
	// Re-journal the affected records' metadata so replay converges even
	// if the GOBJ record were compacted away.
	for _, k := range s.ix.ownerKeys(owner) {
		ks := s.keyStripeFor(k)
		ks.Lock()
		m, ok := s.ix.get(k)
		ks.Unlock()
		if ok && m.Owner == owner {
			if mb, err := m.encode(); err == nil {
				if err := s.appendLog(opMeta, []byte(k), mb); err != nil {
					return err
				}
			}
		}
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: opName, Owner: owner, Purpose: purpose,
		Outcome: audit.OutcomeOK,
	})
	return nil
}

// applyObjection locks the owner stripe and records the objection; it is
// the AOF-replay entry point (replay is single-threaded, but the stripes
// keep the state containers consistent either way).
func (s *Store) applyObjection(owner, purpose string) {
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	s.applyObjectionLocked(os, owner, purpose)
}

func (s *Store) applyUnobjection(owner, purpose string) {
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	s.applyUnobjectionLocked(os, owner, purpose)
}

// applyObjectionLocked mutates objection state and stamps the objection
// onto the owner's existing records. Callers hold the owner's stripe; each
// record's metadata is rewritten under its key stripe.
func (s *Store) applyObjectionLocked(os *ownerStripe, owner, purpose string) {
	set, ok := os.objections[owner]
	if !ok {
		set = make(map[string]struct{})
		os.objections[owner] = set
	}
	set[purpose] = struct{}{}
	for _, k := range s.ix.ownerKeys(owner) {
		ks := s.keyStripeFor(k)
		ks.Lock()
		m, ok := s.ix.get(k)
		if !ok || m.Owner != owner {
			// The key may have been re-Put by another subject since the
			// index snapshot; their record must not inherit this
			// owner's objection.
			ks.Unlock()
			continue
		}
		found := false
		for _, o := range m.Objections {
			if o == purpose {
				found = true
				break
			}
		}
		if !found {
			m.Objections = append(m.Objections, purpose)
			s.ix.put(k, m)
		}
		ks.Unlock()
	}
}

func (s *Store) applyUnobjectionLocked(os *ownerStripe, owner, purpose string) {
	if set, ok := os.objections[owner]; ok {
		delete(set, purpose)
		if len(set) == 0 {
			delete(os.objections, owner)
		}
	}
	for _, k := range s.ix.ownerKeys(owner) {
		ks := s.keyStripeFor(k)
		ks.Lock()
		m, ok := s.ix.get(k)
		if !ok || m.Owner != owner {
			ks.Unlock()
			continue
		}
		kept := m.Objections[:0]
		for _, o := range m.Objections {
			if o != purpose {
				kept = append(kept, o)
			}
		}
		m.Objections = kept
		s.ix.put(k, m)
		ks.Unlock()
	}
}

// Objections returns the subject's standing objections.
func (s *Store) Objections(owner string) []string {
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	out := s.objectionsOfLocked(os, owner)
	os.mu.Unlock()
	sort.Strings(out)
	return out
}

// KeysByPurpose returns the keys whitelisted for a processing purpose that
// are not objected to — the Art. 21-aware purpose query of §5.1.
func (s *Store) KeysByPurpose(ctx Ctx, purpose string) ([]string, error) {
	if !s.cfg.Compliant {
		return nil, ErrNotCompliant
	}
	if err := s.check(ctx, acl.OpRead, "", "KEYSBYPURPOSE", ""); err != nil {
		return nil, err
	}
	keys := s.ix.purposeKeys(purpose)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		ks := s.keyStripeFor(k)
		ks.Lock()
		m, ok := s.metaLive(k)
		ks.Unlock()
		if !ok || s.recordDead(m) {
			continue
		}
		if m.PermitsPurpose(purpose) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// OwnerKeys returns the keys owned by a data subject.
func (s *Store) OwnerKeys(ctx Ctx, owner string) ([]string, error) {
	if !s.cfg.Compliant {
		return nil, ErrNotCompliant
	}
	os := s.ownerStripeFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	if err := s.check(ctx, acl.OpRead, owner, "OWNERKEYS", ""); err != nil {
		return nil, err
	}
	keys := s.ix.ownerKeys(owner)
	out := keys[:0]
	for _, k := range keys {
		ks := s.keyStripeFor(k)
		ks.Lock()
		m, ok := s.metaLive(k)
		ks.Unlock()
		if ok && m.Owner == owner && !s.recordDead(m) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Breach builds the Articles 33/34 breach report over [from, to).
func (s *Store) Breach(ctx Ctx, from, to time.Time) (audit.BreachReport, error) {
	if s.trail == nil {
		return audit.BreachReport{}, ErrNotCompliant
	}
	if err := s.check(ctx, acl.OpAudit, "", "BREACH", ""); err != nil {
		return audit.BreachReport{}, err
	}
	return s.trail.Breach(from, to)
}
