package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
)

// UserRecord pairs one key the subject owns with its value and metadata.
type UserRecord struct {
	Key      string   `json:"key"`
	Value    []byte   `json:"value"`
	Metadata Metadata `json:"metadata"`
}

// GetUser implements Article 15's right of access: it returns every record
// owned by the subject, decrypted, with its metadata. The metadata index
// makes this a lookup rather than a keyspace scan.
func (s *Store) GetUser(ctx Ctx, owner string) ([]UserRecord, error) {
	if !s.cfg.Compliant {
		return nil, ErrNotCompliant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.check(ctx, acl.OpRights, owner, "GETUSER", ""); err != nil {
		return nil, err
	}
	recs, err := s.collectOwnerLocked(owner)
	if err != nil {
		return nil, err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "GETUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("records=%d", len(recs)),
	})
	return recs, nil
}

func (s *Store) collectOwnerLocked(owner string) ([]UserRecord, error) {
	keys := s.ix.ownerKeys(owner)
	sort.Strings(keys)
	recs := make([]UserRecord, 0, len(keys))
	for _, k := range keys {
		m, ok := s.metaLive(k)
		if !ok {
			continue
		}
		v, ok := s.db.Get(k)
		if !ok {
			continue
		}
		if s.keyring != nil && owner != "" {
			dk, err := s.keyring.KeyFor(owner)
			if err != nil {
				return nil, fmt.Errorf("%w: %s", ErrErased, owner)
			}
			pt, err := openSealed(dk, v, k)
			if err != nil {
				return nil, err
			}
			v = pt
		}
		recs = append(recs, UserRecord{Key: k, Value: v, Metadata: m.clone()})
	}
	return recs, nil
}

// AccessReport is the Article 15 disclosure: purposes of processing,
// recipients, storage periods, origin, and automated decision-making, per
// record and aggregated.
type AccessReport struct {
	Owner       string    `json:"owner"`
	GeneratedAt time.Time `json:"generated_at"`
	RecordCount int       `json:"record_count"`
	// Purposes aggregates the distinct processing purposes in effect.
	Purposes []string `json:"purposes"`
	// Recipients aggregates the distinct disclosure recipients.
	Recipients []string `json:"recipients"`
	// Objections lists the subject's standing objections.
	Objections []string `json:"objections"`
	// EarliestExpiry and LatestExpiry bound the storage periods.
	EarliestExpiry time.Time `json:"earliest_expiry,omitempty"`
	LatestExpiry   time.Time `json:"latest_expiry,omitempty"`
	// AutomatedDecisions reports whether any record feeds automated
	// decision-making (Art. 15(1)(h)).
	AutomatedDecisions bool `json:"automated_decisions"`
	// Records carries the per-record detail.
	Records []UserRecord `json:"records"`
}

// Access builds the Article 15 report for owner.
func (s *Store) Access(ctx Ctx, owner string) (AccessReport, error) {
	recs, err := s.GetUser(ctx, owner)
	if err != nil {
		return AccessReport{}, err
	}
	s.mu.Lock()
	var objections []string
	for p := range s.objections[owner] {
		objections = append(objections, p)
	}
	s.mu.Unlock()
	sort.Strings(objections)

	rep := AccessReport{
		Owner:       owner,
		GeneratedAt: s.cfg.Config.Clock.Now(),
		RecordCount: len(recs),
		Objections:  objections,
		Records:     recs,
	}
	pset, rset := map[string]struct{}{}, map[string]struct{}{}
	for _, r := range recs {
		for _, p := range r.Metadata.Purposes {
			pset[p] = struct{}{}
		}
		for _, rc := range r.Metadata.SharedWith {
			rset[rc] = struct{}{}
		}
		if r.Metadata.AutomatedDecisions {
			rep.AutomatedDecisions = true
		}
		e := r.Metadata.Expiry
		if !e.IsZero() {
			if rep.EarliestExpiry.IsZero() || e.Before(rep.EarliestExpiry) {
				rep.EarliestExpiry = e
			}
			if e.After(rep.LatestExpiry) {
				rep.LatestExpiry = e
			}
		}
	}
	for p := range pset {
		rep.Purposes = append(rep.Purposes, p)
	}
	for r := range rset {
		rep.Recipients = append(rep.Recipients, r)
	}
	sort.Strings(rep.Purposes)
	sort.Strings(rep.Recipients)
	return rep, nil
}

// Export implements Article 20's right to data portability: every record
// of the subject serialised in a commonly used, machine-readable format
// (JSON), ready for transmission to another controller.
func (s *Store) Export(ctx Ctx, owner string) ([]byte, error) {
	recs, err := s.GetUser(ctx, owner)
	if err != nil {
		return nil, err
	}
	payload := struct {
		Format  string       `json:"format"`
		Owner   string       `json:"owner"`
		Records []UserRecord `json:"records"`
	}{Format: "gdprstore-export/v1", Owner: owner, Records: recs}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return nil, err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "EXPORTUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("bytes=%d", len(b)),
	})
	return b, nil
}

// ImportExport ingests a portability payload produced by Export (the
// receiving-controller half of Article 20). Records are written with their
// original metadata; the importing context must be permitted to write for
// each record's owner.
func (s *Store) ImportExport(ctx Ctx, payload []byte) (int, error) {
	var in struct {
		Format  string       `json:"format"`
		Owner   string       `json:"owner"`
		Records []UserRecord `json:"records"`
	}
	if err := json.Unmarshal(payload, &in); err != nil {
		return 0, fmt.Errorf("core: import: %w", err)
	}
	if in.Format != "gdprstore-export/v1" {
		return 0, fmt.Errorf("core: import: unknown format %q", in.Format)
	}
	n := 0
	for _, r := range in.Records {
		opts := PutOptions{
			Owner:              r.Metadata.Owner,
			Purposes:           r.Metadata.Purposes,
			Origin:             r.Metadata.Origin,
			SharedWith:         r.Metadata.SharedWith,
			Location:           r.Metadata.Location,
			AutomatedDecisions: r.Metadata.AutomatedDecisions,
		}
		if !r.Metadata.Expiry.IsZero() {
			opts.ExpireAt = r.Metadata.Expiry
		}
		if err := s.Put(ctx, r.Key, r.Value, opts); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Forget implements Article 17's right to be forgotten: it erases every
// record of the subject from the engine and indexes, crypto-shreds the
// subject's data key when envelope encryption is on, and — under real-time
// timing — compacts the AOF before returning so no copy persists in any
// subsystem. It returns the number of records erased.
func (s *Store) Forget(ctx Ctx, owner string) (int, error) {
	if !s.cfg.Compliant {
		return 0, ErrNotCompliant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if err := s.check(ctx, acl.OpRights, owner, "FORGETUSER", ""); err != nil {
		return 0, err
	}
	keys := s.ix.ownerKeys(owner)
	n := s.db.Del(keys...)
	for _, k := range keys {
		s.ix.del(k)
	}
	if s.keyring != nil {
		s.keyring.Shred(owner)
		if err := s.appendLog(opShred, []byte(owner)); err != nil {
			return n, err
		}
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "FORGETUSER", Owner: owner, Purpose: ctx.Purpose,
		Outcome: audit.OutcomeOK, Detail: fmt.Sprintf("erased=%d", n),
	})
	s.pendingRewrite = true
	if s.cfg.Timing == TimingRealTime {
		if err := s.propagateErasureLocked(ctx); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Reinstate clears an erased subject's crypto-shred mark so the subject can
// return with fresh data under a new key (old ciphertexts stay dead).
func (s *Store) Reinstate(ctx Ctx, owner string) error {
	if !s.cfg.Compliant {
		return ErrNotCompliant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(ctx, acl.OpAdmin, owner, "REINSTATE", ""); err != nil {
		return err
	}
	if s.keyring != nil {
		s.keyring.Reinstate(owner)
		if err := s.appendLog(opReinst, []byte(owner)); err != nil {
			return err
		}
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "REINSTATE", Owner: owner,
		Outcome: audit.OutcomeOK,
	})
	return nil
}

// Object implements Article 21: the subject objects to processing of their
// data for the given purpose ("*" objects to everything). The objection
// takes effect immediately on all existing records and automatically
// applies to future ones.
func (s *Store) Object(ctx Ctx, owner, purpose string) error {
	return s.setObjection(ctx, owner, purpose, true)
}

// Unobject withdraws an Article 21 objection.
func (s *Store) Unobject(ctx Ctx, owner, purpose string) error {
	return s.setObjection(ctx, owner, purpose, false)
}

func (s *Store) setObjection(ctx Ctx, owner, purpose string, add bool) error {
	if !s.cfg.Compliant {
		return ErrNotCompliant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	opName := "OBJECT"
	logOp := opObject
	if !add {
		opName = "UNOBJECT"
		logOp = opUnobj
	}
	if err := s.check(ctx, acl.OpRights, owner, opName, ""); err != nil {
		return err
	}
	if add {
		s.applyObjection(owner, purpose)
	} else {
		s.applyUnobjection(owner, purpose)
	}
	if err := s.appendLog(logOp, []byte(owner), []byte(purpose)); err != nil {
		return err
	}
	// Re-journal the affected records' metadata so replay converges even
	// if the GOBJ record were compacted away.
	for _, k := range s.ix.ownerKeys(owner) {
		if m, ok := s.ix.get(k); ok {
			if mb, err := m.encode(); err == nil {
				if err := s.appendLog(opMeta, []byte(k), mb); err != nil {
					return err
				}
			}
		}
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: opName, Owner: owner, Purpose: purpose,
		Outcome: audit.OutcomeOK,
	})
	return nil
}

// applyObjection mutates objection state; callers hold s.mu (or are in
// single-threaded replay).
func (s *Store) applyObjection(owner, purpose string) {
	set, ok := s.objections[owner]
	if !ok {
		set = make(map[string]struct{})
		s.objections[owner] = set
	}
	set[purpose] = struct{}{}
	for _, k := range s.ix.ownerKeys(owner) {
		m, ok := s.ix.get(k)
		if !ok {
			continue
		}
		found := false
		for _, o := range m.Objections {
			if o == purpose {
				found = true
				break
			}
		}
		if !found {
			m.Objections = append(m.Objections, purpose)
			s.ix.put(k, m)
		}
	}
}

func (s *Store) applyUnobjection(owner, purpose string) {
	if set, ok := s.objections[owner]; ok {
		delete(set, purpose)
		if len(set) == 0 {
			delete(s.objections, owner)
		}
	}
	for _, k := range s.ix.ownerKeys(owner) {
		m, ok := s.ix.get(k)
		if !ok {
			continue
		}
		kept := m.Objections[:0]
		for _, o := range m.Objections {
			if o != purpose {
				kept = append(kept, o)
			}
		}
		m.Objections = kept
		s.ix.put(k, m)
	}
}

// Objections returns the subject's standing objections.
func (s *Store) Objections(owner string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for p := range s.objections[owner] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// KeysByPurpose returns the keys whitelisted for a processing purpose that
// are not objected to — the Art. 21-aware purpose query of §5.1.
func (s *Store) KeysByPurpose(ctx Ctx, purpose string) ([]string, error) {
	if !s.cfg.Compliant {
		return nil, ErrNotCompliant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(ctx, acl.OpRead, "", "KEYSBYPURPOSE", ""); err != nil {
		return nil, err
	}
	keys := s.ix.purposeKeys(purpose)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		m, ok := s.metaLive(k)
		if !ok {
			continue
		}
		if m.PermitsPurpose(purpose) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// OwnerKeys returns the keys owned by a data subject.
func (s *Store) OwnerKeys(ctx Ctx, owner string) ([]string, error) {
	if !s.cfg.Compliant {
		return nil, ErrNotCompliant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(ctx, acl.OpRead, owner, "OWNERKEYS", ""); err != nil {
		return nil, err
	}
	keys := s.ix.ownerKeys(owner)
	out := keys[:0]
	for _, k := range keys {
		if _, ok := s.metaLive(k); ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Breach builds the Articles 33/34 breach report over [from, to).
func (s *Store) Breach(ctx Ctx, from, to time.Time) (audit.BreachReport, error) {
	if s.trail == nil {
		return audit.BreachReport{}, ErrNotCompliant
	}
	if err := s.check(ctx, acl.OpAudit, "", "BREACH", ""); err != nil {
		return audit.BreachReport{}, err
	}
	return s.trail.Breach(from, to)
}
