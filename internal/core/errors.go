package core

import "errors"

// Errors returned by the compliance layer. They are distinguishable with
// errors.Is so callers (and the RESP server) can map them to outcomes.
var (
	// ErrNotFound reports a missing (or expired) key.
	ErrNotFound = errors.New("core: key not found")
	// ErrDenied reports an access-control rejection (Art. 25/32).
	ErrDenied = errors.New("core: access denied")
	// ErrPurposeDenied reports a purpose-limitation rejection: the stated
	// purpose is not consented to, or has been objected to (Art. 5/21).
	ErrPurposeDenied = errors.New("core: purpose not permitted")
	// ErrNoOwner reports a write of personal data without a data subject.
	ErrNoOwner = errors.New("core: record has no owner")
	// ErrNoTTL reports a write without a retention bound under full
	// compliance (Art. 5 storage limitation).
	ErrNoTTL = errors.New("core: record has no retention bound (TTL required)")
	// ErrLocationDenied reports a write to a disallowed region (Art. 46).
	ErrLocationDenied = errors.New("core: storage location not permitted")
	// ErrErased reports an operation against an owner whose data was
	// erased and whose key was crypto-shredded (Art. 17).
	ErrErased = errors.New("core: owner data erased (key shredded)")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("core: store closed")
	// ErrNotCompliant reports a GDPR operation against a store running in
	// baseline (non-compliant) mode.
	ErrNotCompliant = errors.New("core: store is running in baseline mode")
)
