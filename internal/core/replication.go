package core

import (
	"errors"
	"fmt"

	"gdprstore/internal/audit"
	"gdprstore/internal/backup"
	"gdprstore/internal/replica"
	"gdprstore/internal/store"
)

// rechainJournal rebuilds the engine's journal chain from the attached
// legs: the AOF, the in-process replica fan-out, and the network
// replication hub, in that order. Callers hold gmu.
func (s *Store) rechainJournal() {
	var legs []store.Journal
	if s.log != nil {
		legs = append(legs, store.JournalFunc(s.log.Append))
	}
	if s.primary != nil {
		legs = append(legs, s.primary)
	}
	if s.hub != nil {
		legs = append(legs, s.hub)
	}
	s.db.SetJournal(store.NewMultiJournal(legs...))
}

// EnableReplication creates a journal fan-out in the given mode and chains
// it after the AOF, so every engine mutation — including expiry-generated
// deletions — streams to replicas. Call before attaching replicas.
func (s *Store) EnableReplication(mode replica.Mode) (*replica.Primary, error) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.primary != nil {
		return nil, errors.New("core: replication already enabled")
	}
	s.primary = replica.NewPrimary(mode, 0)
	s.rechainJournal()
	return s.primary, nil
}

// EnableStreamReplication attaches (or returns the already attached)
// network replication hub: from this call on, every engine mutation and
// every compliance control record is RESP-encoded into the hub's stream,
// ready for replicas to PSYNC. Enabled lazily — a server that never serves
// a replica keeps the engine's no-journal fast path (when it also has no
// AOF). Idempotent.
func (s *Store) EnableStreamReplication(opts replica.HubOptions) (*replica.Hub, error) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.hub != nil {
		return s.hub, nil
	}
	s.hub = replica.NewHub(opts)
	s.streamJ.Store(s.hub)
	s.rechainJournal()
	s.auditOp(audit.Record{
		Actor: "system:replication", Op: "ENABLESTREAM", Outcome: audit.OutcomeOK,
	})
	return s.hub, nil
}

// Hub returns the network replication hub, or nil if stream replication
// has not been enabled.
func (s *Store) Hub() *replica.Hub {
	return s.streamJ.Load()
}

// StreamSnapshot implements replica.SnapshotProvider over the full
// compliance state: it quiesces the whole store, invokes cut() at the
// consistent point (where the hub registers the new link), then emits a
// FLUSHALL followed by the complete record sequence — dataset, metadata,
// objections, keyring — in the AOF record format. A replica that applies
// the payload and then tails the stream from the cut offset converges on
// the primary's state, including everything Article 17 has erased (the
// snapshot is generated from post-erasure state, so erased data never
// crosses the wire).
func (s *Store) StreamSnapshot(emit func(name string, args ...[]byte) error, cut func()) error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	if cut != nil {
		cut()
	}
	if err := emit("FLUSHALL"); err != nil {
		return err
	}
	return s.snapshotAll(emit)
}

// AddReplica seeds a fresh replica from the current dataset and attaches
// it to the stream. Writes concurrent with attachment may be applied
// twice, which the replica tolerates (ops are idempotent).
func (s *Store) AddReplica() (*replica.Replica, error) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if s.primary == nil {
		return nil, errors.New("core: replication not enabled")
	}
	rdb := store.New(store.Options{Clock: s.cfg.Config.Clock, Seed: s.cfg.Seed + 1})
	r, err := s.primary.Attach(s.db, rdb)
	if err != nil {
		return nil, err
	}
	s.auditOp(audit.Record{
		Actor: "system:replication", Op: "ADDREPLICA", Outcome: audit.OutcomeOK,
	})
	return r, nil
}

// Primary returns the replication fan-out, or nil if replication is off.
func (s *Store) Primary() *replica.Primary {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	return s.primary
}

// SetBackupManager registers a backup manager whose generations the store
// keeps consistent with erasure: real-time Forget refreshes the backups
// synchronously; eventual timing defers the refresh to Maintain.
func (s *Store) SetBackupManager(m *backup.Manager) {
	s.gmu.Lock()
	s.backups = m
	s.gmu.Unlock()
}

// Backup writes a new backup generation now.
func (s *Store) Backup() (string, error) {
	s.gmu.Lock()
	m := s.backups
	s.gmu.Unlock()
	if m == nil {
		return "", errors.New("core: no backup manager registered")
	}
	path, err := m.Create(s.db)
	if err != nil {
		return "", err
	}
	s.auditOp(audit.Record{
		Actor: "system:backup", Op: "BACKUP", Outcome: audit.OutcomeOK, Detail: path,
	})
	return path, nil
}

// propagateErasure completes an Article 17 erasure across the subsystems
// beyond the main engine: the AOF (compaction), the replicas (drain the
// stream), and the backups (refresh generations). It is whole-store work:
// the caller must hold no stripe locks, because it acquires them all. In
// eventual timing the work is deferred to Maintain via pendingRewrite.
func (s *Store) propagateErasure(ctx Ctx) error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		// Close won the race to the global locks; the erasure's data-path
		// work is done, and the owed compaction stays in pendingRewrite.
		return nil
	}
	return s.propagateErasureLocked(ctx)
}

// propagateErasureLocked is propagateErasure's body; callers hold the
// whole-store lock (lockAll).
func (s *Store) propagateErasureLocked(ctx Ctx) error {
	if err := s.rewriteLocked(ctx); err != nil {
		return err
	}
	if s.primary != nil {
		s.primary.Flush()
	}
	if s.backups != nil {
		if _, removed, err := s.backups.Refresh(s.db); err != nil {
			return fmt.Errorf("core: backup refresh: %w", err)
		} else if removed > 0 {
			s.auditOp(audit.Record{
				Actor: ctx.Actor, Op: "BACKUPREFRESH", Outcome: audit.OutcomeOK,
				Detail: fmt.Sprintf("purged=%d", removed),
			})
		}
	}
	return nil
}
