package core

import (
	"fmt"

	"gdprstore/internal/audit"
	"gdprstore/internal/backup"
	"gdprstore/internal/replica"
	"gdprstore/internal/store"
)

// EnableReplication creates a journal fan-out in the given mode and chains
// it after the AOF, so every engine mutation — including expiry-generated
// deletions — streams to replicas. Call before attaching replicas.
func (s *Store) EnableReplication(mode replica.Mode) (*replica.Primary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.primary != nil {
		return nil, fmt.Errorf("core: replication already enabled")
	}
	s.primary = replica.NewPrimary(mode, 0)
	var legs []store.Journal
	if s.log != nil {
		legs = append(legs, store.JournalFunc(s.log.Append))
	}
	legs = append(legs, s.primary)
	j, err := replica.Chain(legs...)
	if err != nil {
		return nil, err
	}
	s.db.SetJournal(j)
	return s.primary, nil
}

// AddReplica seeds a fresh replica from the current dataset and attaches
// it to the stream. Writes concurrent with attachment may be applied
// twice, which the replica tolerates (ops are idempotent).
func (s *Store) AddReplica() (*replica.Replica, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.primary == nil {
		return nil, fmt.Errorf("core: replication not enabled")
	}
	rdb := store.New(store.Options{Clock: s.cfg.Config.Clock, Seed: s.cfg.Seed + 1})
	r, err := s.primary.Attach(s.db, rdb)
	if err != nil {
		return nil, err
	}
	s.auditOp(audit.Record{
		Actor: "system:replication", Op: "ADDREPLICA", Outcome: audit.OutcomeOK,
	})
	return r, nil
}

// Primary returns the replication fan-out, or nil if replication is off.
func (s *Store) Primary() *replica.Primary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// SetBackupManager registers a backup manager whose generations the store
// keeps consistent with erasure: real-time Forget refreshes the backups
// synchronously; eventual timing defers the refresh to Maintain.
func (s *Store) SetBackupManager(m *backup.Manager) {
	s.mu.Lock()
	s.backups = m
	s.mu.Unlock()
}

// Backup writes a new backup generation now.
func (s *Store) Backup() (string, error) {
	s.mu.Lock()
	m := s.backups
	s.mu.Unlock()
	if m == nil {
		return "", fmt.Errorf("core: no backup manager registered")
	}
	path, err := m.Create(s.db)
	if err != nil {
		return "", err
	}
	s.auditOp(audit.Record{
		Actor: "system:backup", Op: "BACKUP", Outcome: audit.OutcomeOK, Detail: path,
	})
	return path, nil
}

// propagateErasureLocked completes an Article 17 erasure across the
// subsystems beyond the main engine: the AOF (compaction), the replicas
// (drain the stream), and the backups (refresh generations). Callers hold
// s.mu. In eventual timing the work is deferred to Maintain via
// pendingRewrite.
func (s *Store) propagateErasureLocked(ctx Ctx) error {
	if err := s.rewriteLocked(ctx); err != nil {
		return err
	}
	if s.primary != nil {
		s.primary.Flush()
	}
	if s.backups != nil {
		if _, removed, err := s.backups.Refresh(s.db); err != nil {
			return fmt.Errorf("core: backup refresh: %w", err)
		} else if removed > 0 {
			s.auditOp(audit.Record{
				Actor: ctx.Actor, Op: "BACKUPREFRESH", Outcome: audit.OutcomeOK,
				Detail: fmt.Sprintf("purged=%d", removed),
			})
		}
	}
	return nil
}
