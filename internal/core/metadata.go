package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Metadata is the per-record GDPR metadata the compliance layer maintains
// alongside each value. It captures everything Article 15 obliges the
// controller to report back to the data subject: processing purposes,
// recipients, the storage period, and automated decision-making; plus the
// origin (Art. 14), objections (Art. 21), and storage location (Art. 46).
type Metadata struct {
	// Owner is the data subject the record belongs to. Required.
	Owner string `json:"owner"`
	// Purposes whitelists the processing purposes the subject consented to
	// (Art. 5 purpose limitation, Art. 13).
	Purposes []string `json:"purposes,omitempty"`
	// Objections blacklists purposes the subject has objected to
	// (Art. 21); an objection overrides a listed purpose.
	Objections []string `json:"objections,omitempty"`
	// Origin records where the data was obtained (Art. 14-15).
	Origin string `json:"origin,omitempty"`
	// SharedWith lists recipients to whom the record was disclosed
	// (Art. 15(1)(c)).
	SharedWith []string `json:"shared_with,omitempty"`
	// Expiry is the retention deadline (Art. 5 storage limitation). Zero
	// means no bound, which full compliance rejects.
	Expiry time.Time `json:"expiry,omitempty"`
	// Location is the region the record is stored in (Art. 46).
	Location string `json:"location,omitempty"`
	// AutomatedDecisions marks use in automated decision-making,
	// disclosed under Art. 15(1)(h) and restricted by Art. 22.
	AutomatedDecisions bool `json:"automated_decisions,omitempty"`
	// Created is when the record was first stored.
	Created time.Time `json:"created"`
	// KeyEpoch is the owner's keyring epoch the value was sealed under
	// (envelope mode). A record whose epoch is older than the keyring's
	// current epoch was crypto-shredded: its key is destroyed and the
	// ciphertext merely awaits the lazy-delete sweep.
	KeyEpoch uint64 `json:"key_epoch,omitempty"`
}

// clone returns a deep copy so callers cannot mutate indexed state.
func (m Metadata) clone() Metadata {
	c := m
	c.Purposes = append([]string(nil), m.Purposes...)
	c.Objections = append([]string(nil), m.Objections...)
	c.SharedWith = append([]string(nil), m.SharedWith...)
	return c
}

// PermitsPurpose reports whether processing under the given purpose is
// permitted: it must be whitelisted and not objected to. The empty purpose
// is never permitted on records with purpose restrictions.
func (m Metadata) PermitsPurpose(purpose string) bool {
	for _, o := range m.Objections {
		if o == purpose || o == "*" {
			return false
		}
	}
	for _, p := range m.Purposes {
		if p == purpose || p == "*" {
			return true
		}
	}
	return false
}

func (m Metadata) encode() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("core: encode metadata: %w", err)
	}
	return b, nil
}

func decodeMetadata(b []byte) (Metadata, error) {
	var m Metadata
	if err := json.Unmarshal(b, &m); err != nil {
		return Metadata{}, fmt.Errorf("core: decode metadata: %w", err)
	}
	return m, nil
}

// metaIndex maintains the secondary indexes the paper's "metadata
// indexing" feature calls for: find all keys of a subject (Art. 15/17/20)
// and all keys processable under a purpose (Art. 21) without scanning the
// keyspace.
//
// The index is internally lock-striped so metadata writes for unrelated
// keys/owners never contend: the primary key→Metadata map is sharded by
// key, the owner and purpose association sets by owner/purpose. Each shard
// lock is held only for the individual map operation. The index therefore
// guarantees memory safety and per-map consistency on its own; compound
// read-modify-write invariants (e.g. "engine value and metadata agree for
// key k") are the caller's job, which Store provides via its key/owner
// stripe locks. Between put's primary-map update and its association
// updates, a reader of a *different* owner/purpose set may briefly miss an
// entry being re-indexed — callers that need a stable owner view hold that
// owner's stripe, which serialises all re-indexing for the owner's keys.
type metaIndex struct {
	meta      []metaShard
	byOwner   []assocShard
	byPurpose []assocShard
}

// metaShard is one stripe of the key→Metadata map.
type metaShard struct {
	mu sync.Mutex
	m  map[string]Metadata
}

// assocShard is one stripe of a string→key-set association index.
type assocShard struct {
	mu sync.Mutex
	m  map[string]map[string]struct{}
}

func newMetaIndex() *metaIndex {
	ix := &metaIndex{
		meta:      make([]metaShard, stripeCount),
		byOwner:   make([]assocShard, stripeCount),
		byPurpose: make([]assocShard, stripeCount),
	}
	for i := 0; i < stripeCount; i++ {
		ix.meta[i].m = make(map[string]Metadata)
		ix.byOwner[i].m = make(map[string]map[string]struct{})
		ix.byPurpose[i].m = make(map[string]map[string]struct{})
	}
	return ix
}

func (ix *metaIndex) metaShardFor(key string) *metaShard {
	return &ix.meta[stripeIndex(key)]
}

func (sh *assocShard) add(name, key string) {
	if name == "" {
		return
	}
	sh.mu.Lock()
	set, ok := sh.m[name]
	if !ok {
		set = make(map[string]struct{})
		sh.m[name] = set
	}
	set[key] = struct{}{}
	sh.mu.Unlock()
}

func (sh *assocShard) remove(name, key string) {
	sh.mu.Lock()
	if set, ok := sh.m[name]; ok {
		delete(set, key)
		if len(set) == 0 {
			delete(sh.m, name)
		}
	}
	sh.mu.Unlock()
}

// keys returns the member keys of name's set, in unspecified order.
func (sh *assocShard) keys(name string) []string {
	sh.mu.Lock()
	set := sh.m[name]
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sh.mu.Unlock()
	return out
}

func (ix *metaIndex) put(key string, m Metadata) {
	ms := ix.metaShardFor(key)
	ms.mu.Lock()
	old, had := ms.m[key]
	ms.m[key] = m
	ms.mu.Unlock()
	if had {
		ix.unindex(key, old)
	}
	ix.byOwner[stripeIndex(m.Owner)].add(m.Owner, key)
	for _, p := range m.Purposes {
		ix.byPurpose[stripeIndex(p)].add(p, key)
	}
}

func (ix *metaIndex) get(key string) (Metadata, bool) {
	ms := ix.metaShardFor(key)
	ms.mu.Lock()
	m, ok := ms.m[key]
	ms.mu.Unlock()
	return m, ok
}

func (ix *metaIndex) del(key string) {
	ms := ix.metaShardFor(key)
	ms.mu.Lock()
	m, ok := ms.m[key]
	delete(ms.m, key)
	ms.mu.Unlock()
	if ok {
		ix.unindex(key, m)
	}
}

func (ix *metaIndex) unindex(key string, m Metadata) {
	if m.Owner != "" {
		ix.byOwner[stripeIndex(m.Owner)].remove(m.Owner, key)
	}
	for _, p := range m.Purposes {
		ix.byPurpose[stripeIndex(p)].remove(p, key)
	}
}

// ownerKeys returns the keys owned by owner, in unspecified order.
func (ix *metaIndex) ownerKeys(owner string) []string {
	return ix.byOwner[stripeIndex(owner)].keys(owner)
}

// ownerKeyCount returns how many keys the index currently attributes to
// owner without materialising the key slice — the O(1) cardinality the
// crypto-shred fast path reports as its erasure count.
func (ix *metaIndex) ownerKeyCount(owner string) int {
	sh := &ix.byOwner[stripeIndex(owner)]
	sh.mu.Lock()
	n := len(sh.m[owner])
	sh.mu.Unlock()
	return n
}

// purposeKeys returns the keys whitelisted for purpose.
func (ix *metaIndex) purposeKeys(purpose string) []string {
	return ix.byPurpose[stripeIndex(purpose)].keys(purpose)
}

// rangeMeta calls fn for every (key, metadata) entry, one shard at a time.
// fn must not call back into the index for the same shard (it may read
// other entries via get). Entries added or removed concurrently may or may
// not be visited — callers that need a stable view hold Store.lockAll.
func (ix *metaIndex) rangeMeta(fn func(key string, m Metadata) bool) {
	for i := range ix.meta {
		sh := &ix.meta[i]
		sh.mu.Lock()
		for k, m := range sh.m {
			if !fn(k, m) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// clear empties every shard in place. Unlike swapping in a fresh index,
// clearing keeps the *metaIndex pointer stable, so a live replication
// apply of FLUSHALL is safe against concurrent readers holding the store's
// ix field.
func (ix *metaIndex) clear() {
	for i := 0; i < stripeCount; i++ {
		ix.meta[i].mu.Lock()
		ix.meta[i].m = make(map[string]Metadata)
		ix.meta[i].mu.Unlock()
		ix.byOwner[i].mu.Lock()
		ix.byOwner[i].m = make(map[string]map[string]struct{})
		ix.byOwner[i].mu.Unlock()
		ix.byPurpose[i].mu.Lock()
		ix.byPurpose[i].m = make(map[string]map[string]struct{})
		ix.byPurpose[i].mu.Unlock()
	}
}

func (ix *metaIndex) len() int {
	n := 0
	for i := range ix.meta {
		ix.meta[i].mu.Lock()
		n += len(ix.meta[i].m)
		ix.meta[i].mu.Unlock()
	}
	return n
}
