package core

import (
	"encoding/json"
	"fmt"
	"time"
)

// Metadata is the per-record GDPR metadata the compliance layer maintains
// alongside each value. It captures everything Article 15 obliges the
// controller to report back to the data subject: processing purposes,
// recipients, the storage period, and automated decision-making; plus the
// origin (Art. 14), objections (Art. 21), and storage location (Art. 46).
type Metadata struct {
	// Owner is the data subject the record belongs to. Required.
	Owner string `json:"owner"`
	// Purposes whitelists the processing purposes the subject consented to
	// (Art. 5 purpose limitation, Art. 13).
	Purposes []string `json:"purposes,omitempty"`
	// Objections blacklists purposes the subject has objected to
	// (Art. 21); an objection overrides a listed purpose.
	Objections []string `json:"objections,omitempty"`
	// Origin records where the data was obtained (Art. 14-15).
	Origin string `json:"origin,omitempty"`
	// SharedWith lists recipients to whom the record was disclosed
	// (Art. 15(1)(c)).
	SharedWith []string `json:"shared_with,omitempty"`
	// Expiry is the retention deadline (Art. 5 storage limitation). Zero
	// means no bound, which full compliance rejects.
	Expiry time.Time `json:"expiry,omitempty"`
	// Location is the region the record is stored in (Art. 46).
	Location string `json:"location,omitempty"`
	// AutomatedDecisions marks use in automated decision-making,
	// disclosed under Art. 15(1)(h) and restricted by Art. 22.
	AutomatedDecisions bool `json:"automated_decisions,omitempty"`
	// Created is when the record was first stored.
	Created time.Time `json:"created"`
}

// clone returns a deep copy so callers cannot mutate indexed state.
func (m Metadata) clone() Metadata {
	c := m
	c.Purposes = append([]string(nil), m.Purposes...)
	c.Objections = append([]string(nil), m.Objections...)
	c.SharedWith = append([]string(nil), m.SharedWith...)
	return c
}

// PermitsPurpose reports whether processing under the given purpose is
// permitted: it must be whitelisted and not objected to. The empty purpose
// is never permitted on records with purpose restrictions.
func (m Metadata) PermitsPurpose(purpose string) bool {
	for _, o := range m.Objections {
		if o == purpose || o == "*" {
			return false
		}
	}
	for _, p := range m.Purposes {
		if p == purpose || p == "*" {
			return true
		}
	}
	return false
}

func (m Metadata) encode() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("core: encode metadata: %w", err)
	}
	return b, nil
}

func decodeMetadata(b []byte) (Metadata, error) {
	var m Metadata
	if err := json.Unmarshal(b, &m); err != nil {
		return Metadata{}, fmt.Errorf("core: decode metadata: %w", err)
	}
	return m, nil
}

// metaIndex maintains the secondary indexes the paper's "metadata
// indexing" feature calls for: find all keys of a subject (Art. 15/17/20)
// and all keys processable under a purpose (Art. 21) without scanning the
// keyspace. It is owned by Store and guarded by Store.mu.
type metaIndex struct {
	meta      map[string]Metadata
	byOwner   map[string]map[string]struct{}
	byPurpose map[string]map[string]struct{}
}

func newMetaIndex() *metaIndex {
	return &metaIndex{
		meta:      make(map[string]Metadata),
		byOwner:   make(map[string]map[string]struct{}),
		byPurpose: make(map[string]map[string]struct{}),
	}
}

func (ix *metaIndex) put(key string, m Metadata) {
	if old, ok := ix.meta[key]; ok {
		ix.unindex(key, old)
	}
	ix.meta[key] = m
	if m.Owner != "" {
		set, ok := ix.byOwner[m.Owner]
		if !ok {
			set = make(map[string]struct{})
			ix.byOwner[m.Owner] = set
		}
		set[key] = struct{}{}
	}
	for _, p := range m.Purposes {
		set, ok := ix.byPurpose[p]
		if !ok {
			set = make(map[string]struct{})
			ix.byPurpose[p] = set
		}
		set[key] = struct{}{}
	}
}

func (ix *metaIndex) get(key string) (Metadata, bool) {
	m, ok := ix.meta[key]
	return m, ok
}

func (ix *metaIndex) del(key string) {
	if m, ok := ix.meta[key]; ok {
		ix.unindex(key, m)
		delete(ix.meta, key)
	}
}

func (ix *metaIndex) unindex(key string, m Metadata) {
	if set, ok := ix.byOwner[m.Owner]; ok {
		delete(set, key)
		if len(set) == 0 {
			delete(ix.byOwner, m.Owner)
		}
	}
	for _, p := range m.Purposes {
		if set, ok := ix.byPurpose[p]; ok {
			delete(set, key)
			if len(set) == 0 {
				delete(ix.byPurpose, p)
			}
		}
	}
}

// ownerKeys returns the keys owned by owner, in unspecified order.
func (ix *metaIndex) ownerKeys(owner string) []string {
	set := ix.byOwner[owner]
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// purposeKeys returns the keys whitelisted for purpose.
func (ix *metaIndex) purposeKeys(purpose string) []string {
	set := ix.byPurpose[purpose]
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

func (ix *metaIndex) len() int { return len(ix.meta) }
