package core

import (
	"errors"
	"fmt"

	"gdprstore/internal/audit"
)

// This file is the record-apply surface shared by the two consumers of the
// journal stream: AOF replay at Open (single-threaded, before the store is
// shared) and the live network replication link (one applier goroutine,
// concurrent with local reads). Both must interpret every record type the
// primary can emit — the engine's data-plane records (SET/SETEX/DEL/...)
// and the compliance layer's control records (GMETA/GOBJ/GSHRED/GFORGET/...)
// — identically, or a replica's state would drift from what a primary
// restart reconstructs.

// applyRecord applies one journal record without re-journaling it. It is
// safe for a single applier goroutine running concurrently with readers:
// the metadata index is internally lock-striped, objection state takes the
// owner stripe, and the engine applies under its shard locks.
func (s *Store) applyRecord(name string, args [][]byte) error {
	switch name {
	case opMeta:
		if len(args) != 2 {
			return errors.New("core: replay GMETA: need 2 args")
		}
		m, err := decodeMetadata(args[1])
		if err != nil {
			return err
		}
		s.ix.put(string(args[0]), m)
		return nil
	case opMetaBatch:
		if len(args) < 2 {
			return errors.New("core: replay GMETAB: need 2+ args")
		}
		m, err := decodeMetadata(args[0])
		if err != nil {
			return err
		}
		for _, k := range args[1:] {
			s.ix.put(string(k), m.clone())
		}
		return nil
	case opObject:
		if len(args) != 2 {
			return errors.New("core: replay GOBJ: need 2 args")
		}
		s.applyObjection(string(args[0]), string(args[1]))
		return nil
	case opUnobj:
		if len(args) != 2 {
			return errors.New("core: replay GUNOBJ: need 2 args")
		}
		s.applyUnobjection(string(args[0]), string(args[1]))
		return nil
	case opKey:
		if len(args) != 2 && len(args) != 3 {
			return errors.New("core: replay GKEY: need 2 or 3 args")
		}
		if s.keyring == nil {
			return nil // envelope disabled this run; ignore
		}
		if len(args) == 3 {
			// Epoch-carrying form: pin the keyring epoch exactly so replayed
			// records' KeyEpoch stamps still match their sealing key.
			epoch, err := parseEpoch(args[2])
			if err != nil {
				return fmt.Errorf("core: replay GKEY: %w", err)
			}
			return s.keyring.ImportAt(string(args[0]), args[1], epoch)
		}
		return s.keyring.Import(string(args[0]), args[1])
	case opShred:
		if len(args) != 1 && len(args) != 2 {
			return errors.New("core: replay GSHRED: need 1 or 2 args")
		}
		if s.keyring == nil {
			return nil
		}
		owner := string(args[0])
		if len(args) == 2 {
			// Epoch-carrying form: idempotent — re-applying the same shred
			// (live link after replay, or a compacted snapshot) cannot
			// advance the epoch past what the primary recorded.
			epoch, err := parseEpoch(args[1])
			if err != nil {
				return fmt.Errorf("core: replay GSHRED: %w", err)
			}
			s.keyring.ShredAt(owner, epoch)
		} else {
			s.keyring.Shred(owner)
		}
		// Any of the owner's records already applied are now dead; queue
		// them for this copy's own lazy-delete sweep (on replicas the
		// primary's sweep DELs will also arrive and make this a no-op).
		if s.ix.ownerKeyCount(owner) > 0 {
			s.markErasurePending(owner)
		}
		return nil
	case opReinst:
		if len(args) != 1 {
			return errors.New("core: replay GREINST: need 1 arg")
		}
		if s.keyring != nil {
			s.keyring.Reinstate(string(args[0]))
		}
		return nil
	case opForget:
		if len(args) != 1 && len(args) != 2 {
			return errors.New("core: replay GFORGET: need 1 or 2 args")
		}
		owner := string(args[0])
		if len(args) == 2 && string(args[1]) == forgetModeShred {
			// Crypto-shred fast path: no DELs preceded this marker — the
			// paired GSHRED already made the owner's records dead, and the
			// sweep reclaims them. Do NOT prune the index here: the entries'
			// epoch stamps are what lets the sweep (and snapshotAll) find
			// the dead ciphertext to physically remove.
			if s.keyring != nil && s.ix.ownerKeyCount(owner) > 0 {
				s.markErasurePending(owner)
			}
			return nil
		}
		// Eager-mode marker: the erasure's DELs precede it in the stream;
		// pruning the owner's remaining index entries here is defensive
		// (e.g. metadata whose DEL was compacted away) and makes the marker
		// idempotent.
		for _, k := range s.ix.ownerKeys(owner) {
			if m, ok := s.ix.get(k); ok && m.Owner == owner {
				s.ix.del(k)
			}
		}
		return nil
	case "DEL":
		for _, a := range args {
			s.ix.del(string(a))
		}
		return s.db.Apply(name, args)
	case "FLUSHALL":
		s.ix.clear()
		return s.db.Apply(name, args)
	default:
		return s.db.Apply(name, args)
	}
}

// ApplyReplicated implements replica.Applier: it applies one record
// received over a replication link, and audits the erasure-relevant
// control records so the replica's own audit trail evidences that Article
// 17 erasure reached this copy — the convergence auditors ask for.
func (s *Store) ApplyReplicated(name string, args [][]byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	err := s.applyRecord(name, args)
	if err != nil {
		return fmt.Errorf("core: apply replicated %s: %w", name, err)
	}
	switch name {
	case opForget:
		s.auditOp(audit.Record{
			Actor: "system:replication", Op: "FORGETUSER", Owner: string(args[0]),
			Outcome: audit.OutcomeOK, Detail: "erasure replicated from primary",
		})
	case opShred:
		s.auditOp(audit.Record{
			Actor: "system:replication", Op: "SHRED", Owner: string(args[0]),
			Outcome: audit.OutcomeOK, Detail: "crypto-shred replicated from primary",
		})
	case "FLUSHALL":
		s.auditOp(audit.Record{
			Actor: "system:replication", Op: "FLUSHALL", Outcome: audit.OutcomeOK,
			Detail: "keyspace reset by replication stream",
		})
	}
	return nil
}
