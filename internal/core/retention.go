package core

import (
	"time"
)

// RetentionPolicy implements §3.1's observation that GDPR "allows TTL to
// be either a static time or a policy criterion that can be objectively
// evaluated": instead of a single TTL knob, retention can be derived from
// the record's processing purposes.
//
// The effective deadline for a record is the *minimum* across:
//
//   - the writer-requested TTL (if any),
//   - each of the record's purposes' policy durations (a record held for
//     several purposes must honour the shortest — storage limitation binds
//     per purpose),
//   - the policy default (if the record has no covered purpose),
//   - the absolute cap.
//
// A record whose every applicable bound is zero has unbounded retention,
// which full compliance rejects at write time.
type RetentionPolicy struct {
	// PerPurpose maps a processing purpose to its maximum retention.
	PerPurpose map[string]time.Duration
	// Default applies when no purpose of the record is in PerPurpose.
	Default time.Duration
	// Cap bounds every record regardless of purpose; 0 means no cap.
	Cap time.Duration
}

// Effective computes the retention bound for a record with the given
// purposes and writer-requested TTL (0 = unspecified). It returns 0 when
// no bound applies.
func (p *RetentionPolicy) Effective(purposes []string, requested time.Duration) time.Duration {
	if p == nil {
		return requested
	}
	bound := time.Duration(0)
	tighten := func(d time.Duration) {
		if d > 0 && (bound == 0 || d < bound) {
			bound = d
		}
	}
	tighten(requested)
	covered := false
	for _, purpose := range purposes {
		if d, ok := p.PerPurpose[purpose]; ok {
			covered = true
			tighten(d)
		}
	}
	if !covered {
		tighten(p.Default)
	}
	tighten(p.Cap)
	return bound
}

// SetRetentionPolicy installs (or clears, with nil) the purpose-based
// retention policy. It affects subsequent writes; existing deadlines are
// not retrofitted (use Expire for that). The policy pointer is swapped
// atomically, so in-flight writes use either the old or the new policy in
// full — never a mix.
func (s *Store) SetRetentionPolicy(p *RetentionPolicy) {
	s.retention.Store(p)
}

// RetentionFor reports the bound the current configuration would apply to
// a record with the given purposes and requested TTL — useful for consent
// screens that must tell the subject "the period for which the personal
// data will be stored" (Art. 13).
func (s *Store) RetentionFor(purposes []string, requested time.Duration) time.Duration {
	d := s.retention.Load().Effective(purposes, requested)
	if d == 0 {
		d = s.cfg.DefaultTTL
	}
	return d
}

// effectiveDeadline resolves a write's retention deadline under the
// policy, the request, and the config default.
func (s *Store) effectiveDeadline(opts PutOptions, purposes []string) time.Time {
	p := s.retention.Load()
	if !opts.ExpireAt.IsZero() {
		// An absolute deadline still respects the policy cap.
		if p != nil {
			if d := p.Effective(purposes, 0); d > 0 {
				capped := s.cfg.Config.Clock.Now().Add(d)
				if capped.Before(opts.ExpireAt) {
					return capped
				}
			}
		}
		return opts.ExpireAt
	}
	d := p.Effective(purposes, opts.TTL)
	if d == 0 {
		d = s.cfg.DefaultTTL
	}
	if d == 0 {
		return time.Time{}
	}
	return s.cfg.Config.Clock.Now().Add(d)
}

// RetentionStats is a point-in-time view of retention enforcement — the
// compliance analogue of replication lag. A compliant store promises that
// records vanish when their storage-limitation deadline passes; these
// numbers say how far physical reclamation currently trails that promise.
// Surfaced through INFO retention and the ops server's lag gauges.
type RetentionStats struct {
	// TrackedDeadlines counts keys carrying a retention deadline (TTL).
	TrackedDeadlines int
	// OverdueRecords counts keys past their deadline but still physically
	// present (invisible to reads, but occupying storage).
	OverdueRecords int
	// Lag is the age of the oldest overdue deadline; 0 when nothing is
	// overdue.
	Lag time.Duration
	// ExpiredTotal is the cumulative count of keys reclaimed by expiry.
	ExpiredTotal uint64
	// ExpirerRunning reports whether the background active-expire loop is
	// active.
	ExpirerRunning bool
}

// RetentionStats reports the current retention-enforcement state.
func (s *Store) RetentionStats() RetentionStats {
	overdue, oldest := s.db.RetentionLag()
	return RetentionStats{
		TrackedDeadlines: s.db.ExpireLen(),
		OverdueRecords:   overdue,
		Lag:              oldest,
		ExpiredTotal:     s.db.ExpiredCount(),
		ExpirerRunning:   s.expirer.Running(),
	}
}
