package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/aof"
	"gdprstore/internal/audit"
	"gdprstore/internal/backup"
	"gdprstore/internal/cryptoutil"
	"gdprstore/internal/replica"
	"gdprstore/internal/store"
)

// Journal record types appended by the compliance layer alongside the
// engine's SET/SETEX/DEL records. They reconstruct GDPR state on replay.
const (
	opMeta      = "GMETA"   // GMETA key metadataJSON
	opMetaBatch = "GMETAB"  // GMETAB metadataJSON key1 key2 ... (batch writes)
	opObject    = "GOBJ"    // GOBJ owner purpose
	opUnobj     = "GUNOBJ"  // GUNOBJ owner purpose
	opKey       = "GKEY"    // GKEY owner wrappedDataKey [epoch]
	opShred     = "GSHRED"  // GSHRED owner [epoch] (key destroyed, epoch advanced)
	opReinst    = "GREINST" // GREINST owner
	opForget    = "GFORGET" // GFORGET owner [mode] (Article 17 erasure marker)
)

// forgetModeShred is the GFORGET mode argument emitted by the crypto-shred
// fast path: the marker records that erasure was effected by destroying the
// owner's key, and that the owner's ciphertext is reclaimed lazily by the
// sweep rather than by DELs preceding the marker.
const forgetModeShred = "shred"

// Ctx identifies who is performing an operation and why — the two
// dimensions GDPR conditions every access on.
type Ctx struct {
	// Actor is the authenticated principal issuing the operation.
	Actor string
	// Purpose is the declared processing purpose (Art. 5).
	Purpose string
}

// PutOptions carries the GDPR metadata for a write.
type PutOptions struct {
	// Owner is the data subject; required for personal data under full
	// compliance.
	Owner string
	// Purposes whitelists processing purposes. Defaults to the writing
	// context's purpose when empty.
	Purposes []string
	// TTL is the retention bound relative to now. Mutually exclusive with
	// ExpireAt; ExpireAt wins if both are set.
	TTL time.Duration
	// ExpireAt is the absolute retention deadline.
	ExpireAt time.Time
	// Origin records where the data came from.
	Origin string
	// SharedWith lists recipients the record is disclosed to.
	SharedWith []string
	// Location is the storage region; defaults to Config.DefaultLocation.
	Location string
	// AutomatedDecisions marks use in automated decision-making.
	AutomatedDecisions bool
}

// Store is a GDPR-compliant key-value store: the engine plus metadata
// indexing, auditing, access control, encryption, retention and location
// policy, configured to a point on the compliance spectrum.
//
// Concurrency: the store uses striped locking (see locks.go) so operations
// for different data subjects, and key operations in different stripes,
// proceed in parallel; whole-store operations (compaction, maintenance,
// close) quiesce every stripe in deterministic order.
type Store struct {
	cfg normalized

	// gmu orders whole-store operations (rewrite/snapshot, replication
	// topology, backup manager, close) ahead of the stripes; see locks.go
	// for the full lock-ordering protocol.
	gmu    sync.Mutex
	owners []*ownerStripe
	keys   [stripeCount]sync.Mutex

	db      *store.DB
	ix      *metaIndex
	trail   *audit.Trail
	log     *aof.Log
	acl     *acl.List
	keyring *cryptoutil.Keyring
	expirer *store.Expirer

	// primary, hub and backups are guarded by gmu. streamJ mirrors hub
	// behind an atomic pointer so the hot appendLog path can reach the
	// replication stream without taking gmu.
	primary *replica.Primary
	hub     *replica.Hub
	streamJ atomic.Pointer[replica.Hub]
	backups *backup.Manager

	retention      atomic.Pointer[RetentionPolicy]
	pendingRewrite atomic.Bool
	closed         atomic.Bool

	// erasure tracks crypto-shredded owners whose dead ciphertext awaits
	// the lazy-delete sweep, plus sweep statistics (see maintain.go). Its
	// mutex is a leaf lock in the ordering protocol: it is only ever taken
	// with no stripe held, or after a single key stripe.
	erasure erasureState
}

// erasureState is the bookkeeping behind O(1) erasure: which owners were
// shredded but still have ciphertext in the engine, and what the sweep has
// reclaimed so far.
type erasureState struct {
	mu      sync.Mutex
	pending map[string]time.Time // owner -> when the shred was observed

	reclaimed uint64 // records physically deleted by sweeps
	drained   uint64 // owners whose dead ciphertext is fully reclaimed
	cycles    uint64 // sweep cycles run
	lastCycle time.Duration

	// loop state for the background sweeper goroutine (StartSweeper).
	loopMu  sync.Mutex
	stopped chan struct{}
	done    chan struct{}
}

// Open builds a Store from the configuration, replaying any existing AOF.
func Open(cfg Config) (*Store, error) {
	n := cfg.normalize()
	s := &Store{
		cfg:    n,
		ix:     newMetaIndex(),
		owners: newOwnerStripes(),
	}
	s.erasure.pending = make(map[string]time.Time)
	s.db = store.New(store.Options{
		Clock:        n.Config.Clock,
		Seed:         n.Seed,
		Strategy:     n.strategy,
		JournalReads: n.JournalReads,
		Shards:       n.Shards,
	})
	s.acl = acl.New(n.Config.Clock)
	s.acl.SetEnforce(n.Config.Compliant && n.enforceACL)

	if n.Envelope {
		if len(n.MasterKey) != cryptoutil.BlockCipherKeySize {
			return nil, errors.New("core: envelope encryption requires a 32-byte MasterKey")
		}
		kr, err := cryptoutil.NewKeyring(n.MasterKey)
		if err != nil {
			return nil, err
		}
		s.keyring = kr
	}

	if n.AOFPath != "" {
		if err := s.replay(n.AOFPath, n.AtRestKey); err != nil {
			return nil, err
		}
		log, err := aof.Open(n.AOFPath, aof.Options{Policy: n.aofSync, Key: n.AtRestKey})
		if err != nil {
			return nil, err
		}
		s.log = log
		// The engine journals every mutation — including expiry-generated
		// deletions — straight into the AOF.
		s.db.SetJournal(store.JournalFunc(log.Append))
	}

	if n.Config.Compliant && n.AuditEnabled {
		opts := audit.Options{
			Path:         n.AuditPath,
			Mode:         n.auditMode,
			Key:          n.AtRestKey,
			Clock:        n.Config.Clock,
			Workers:      n.AuditWorkers,
			QueueDepth:   n.AuditQueueDepth,
			Backpressure: n.auditBP,
			DrainTimeout: n.AuditDrainTimeout,
		}
		if n.AuditMask {
			mk, err := auditMaskKey(n)
			if err != nil {
				if s.log != nil {
					s.log.Close()
				}
				return nil, err
			}
			opts.MaskKey = mk
		}
		if n.AuditSocket != "" {
			sock, err := audit.NewSocketSink(n.AuditSocket)
			if err != nil {
				if s.log != nil {
					s.log.Close()
				}
				return nil, err
			}
			opts.ExtraSinks = append(opts.ExtraSinks, sock)
		}
		t, err := audit.Open(opts)
		if err != nil {
			if s.log != nil {
				s.log.Close()
			}
			return nil, err
		}
		s.trail = t
	}

	s.expirer = store.NewExpirer(s.db)
	return s, nil
}

// auditMaskKey resolves the pseudonymization key: explicit key, else the
// at-rest key, else a fresh random per-process key (pseudonyms then do not
// survive a restart, which is still a valid — if stricter — posture: old
// trail lines become permanently unresolvable).
func auditMaskKey(n normalized) ([]byte, error) {
	if len(n.AuditMaskKey) > 0 {
		return n.AuditMaskKey, nil
	}
	if len(n.AtRestKey) > 0 {
		return n.AtRestKey, nil
	}
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("core: audit mask key: %w", err)
	}
	return k, nil
}

// replay runs before the store is shared, so it needs no stripe locks; the
// index and objection stripes are still internally consistent because
// replay is single-threaded. The record interpretation is applyRecord
// (replicated.go), shared with the live replication link.
func (s *Store) replay(path string, key []byte) error {
	_, err := aof.Load(path, key, s.applyRecord)
	if err != nil {
		return err
	}
	// Drop metadata for keys that did not survive the replay, and rediscover
	// crypto-shredded ciphertext that replayed back in: records sealed under
	// a destroyed key epoch re-enter the sweep's pending set so reclamation
	// resumes where the previous process left off.
	var ghosts []string
	s.ix.rangeMeta(func(k string, m Metadata) bool {
		if !s.db.Exists(k) {
			ghosts = append(ghosts, k)
		} else if s.recordDead(m) {
			s.markErasurePending(m.Owner)
		}
		return true
	})
	for _, k := range ghosts {
		s.ix.del(k)
	}
	return nil
}

// appendLog journals a compliance-layer record to the AOF and mirrors it
// to the replication stream, so control-plane records (metadata, shreds,
// erasure markers) reach replicas in the same per-key order as the engine
// records they follow — both are emitted while the caller still holds the
// key/owner stripe. A nil log with no stream attached is a no-op.
func (s *Store) appendLog(name string, args ...[]byte) error {
	if h := s.streamJ.Load(); h != nil {
		_ = h.AppendOp(name, args...)
	}
	if s.log == nil {
		return nil
	}
	return s.log.Append(name, args...)
}

// auditOp records an audit entry; a nil trail is a no-op.
func (s *Store) auditOp(r audit.Record) {
	if s.trail == nil {
		return
	}
	// Audit failures must not fail the data path; the trail retains its
	// own LastErr for health checks, and strict deployments alert on it.
	_, _ = s.trail.Append(r)
}

// check runs an ACL decision and audits denials.
func (s *Store) check(ctx Ctx, op acl.OpClass, owner, opName, key string) error {
	d := s.acl.Check(ctx.Actor, op, owner, ctx.Purpose)
	if d.Allowed {
		return nil
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: opName, Key: key, Owner: owner,
		Purpose: ctx.Purpose, Outcome: audit.OutcomeDenied, Detail: d.Reason,
	})
	return fmt.Errorf("%w: %s", ErrDenied, d.Reason)
}

// objectionsOfLocked returns the standing objections of owner. Callers
// hold owner's stripe.
func (s *Store) objectionsOfLocked(os *ownerStripe, owner string) []string {
	var out []string
	for p := range os.objections[owner] {
		out = append(out, p)
	}
	return out
}

// Put stores personal data under key with the supplied GDPR metadata.
func (s *Store) Put(ctx Ctx, key string, value []byte, opts PutOptions) error {
	if !s.cfg.Compliant {
		s.db.Set(key, value)
		return nil
	}
	os := s.ownerStripeFor(opts.Owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	ks := s.keyStripeFor(key)
	ks.Lock()
	defer ks.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.check(ctx, acl.OpWrite, opts.Owner, "PUT", key); err != nil {
		return err
	}

	full := s.cfg.Capability == CapabilityFull
	if full && opts.Owner == "" {
		return ErrNoOwner
	}

	purposes := opts.Purposes
	if len(purposes) == 0 && ctx.Purpose != "" {
		purposes = []string{ctx.Purpose}
	}

	// Retention bound (Art. 5 storage limitation): the tightest of the
	// requested TTL, the purpose-based retention policy, and the default.
	deadline := s.effectiveDeadline(opts, purposes)
	if s.cfg.requireTTL && deadline.IsZero() {
		return ErrNoTTL
	}

	// Location policy (Art. 46).
	loc := opts.Location
	if loc == "" {
		loc = s.cfg.DefaultLocation
	}
	if len(s.cfg.AllowedLocations) > 0 && full {
		ok := false
		for _, a := range s.cfg.AllowedLocations {
			if a == loc {
				ok = true
				break
			}
		}
		if !ok {
			s.auditOp(audit.Record{
				Actor: ctx.Actor, Op: "PUT", Key: key, Owner: opts.Owner,
				Purpose: ctx.Purpose, Outcome: audit.OutcomeDenied,
				Detail: "location " + loc + " not permitted",
			})
			return fmt.Errorf("%w: %q", ErrLocationDenied, loc)
		}
	}

	meta := Metadata{
		Owner:              opts.Owner,
		Purposes:           purposes,
		Origin:             opts.Origin,
		SharedWith:         append([]string(nil), opts.SharedWith...),
		Expiry:             deadline,
		Location:           loc,
		AutomatedDecisions: opts.AutomatedDecisions,
		Created:            s.cfg.Config.Clock.Now(),
	}
	// Standing objections of this owner apply to new records immediately.
	meta.Objections = append(meta.Objections, s.objectionsOfLocked(os, opts.Owner)...)

	stored := value
	if s.keyring != nil && opts.Owner != "" {
		k, wrapped, created, err := s.keyring.Ensure(opts.Owner)
		if err != nil {
			if err == cryptoutil.ErrUnknownKey {
				return fmt.Errorf("%w: %s", ErrErased, opts.Owner)
			}
			return err
		}
		// The owner stripe is held, so no Forget can advance the epoch
		// between Ensure and here: the record is stamped with the epoch of
		// the key it is sealed under.
		meta.KeyEpoch = s.keyring.Epoch(opts.Owner)
		if created {
			if err := s.appendLog(opKey, []byte(opts.Owner), wrapped, epochArg(meta.KeyEpoch)); err != nil {
				return err
			}
		}
		sealed, err := cryptoutil.Seal(k, value, []byte(key))
		if err != nil {
			return err
		}
		stored = sealed
	}

	if deadline.IsZero() {
		s.db.Set(key, stored)
	} else {
		s.db.SetEX(key, stored, deadline.Sub(s.cfg.Config.Clock.Now()))
	}
	mb, err := meta.encode()
	if err != nil {
		return err
	}
	s.ix.put(key, meta)
	if err := s.appendLog(opMeta, []byte(key), mb); err != nil {
		return err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "PUT", Key: key, Owner: opts.Owner,
		Purpose: ctx.Purpose, Outcome: audit.OutcomeOK,
	})
	return nil
}

// Get reads the value at key, enforcing purpose limitation and access
// control, and auditing the read when the configuration demands it. The
// enforcement body is getLocked, shared with GetBatch.
func (s *Store) Get(ctx Ctx, key string) ([]byte, error) {
	if !s.cfg.Compliant {
		v, ok := s.db.Get(key)
		if !ok {
			return nil, ErrNotFound
		}
		return v, nil
	}
	ks := s.keyStripeFor(key)
	ks.Lock()
	defer ks.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	v, owner, err := s.getLocked(ctx, key)
	if err != nil {
		if errors.Is(err, ErrNotFound) && s.cfg.auditReads {
			s.auditOp(audit.Record{
				Actor: ctx.Actor, Op: "GET", Key: key, Owner: owner,
				Purpose: ctx.Purpose, Outcome: audit.OutcomeMissing,
			})
		}
		return nil, err
	}
	if s.cfg.auditReads {
		s.auditOp(audit.Record{
			Actor: ctx.Actor, Op: "GET", Key: key, Owner: owner,
			Purpose: ctx.Purpose, Outcome: audit.OutcomeOK,
		})
	}
	return v, nil
}

// Delete removes key. Under real-time timing the AOF is compacted before
// returning, so the deleted data does not persist in the log (§4.3).
func (s *Store) Delete(ctx Ctx, key string) error {
	if !s.cfg.Compliant {
		if s.db.Del(key) == 0 {
			return ErrNotFound
		}
		return nil
	}
	ks := s.keyStripeFor(key)
	ks.Lock()
	if s.closed.Load() {
		ks.Unlock()
		return ErrClosed
	}
	meta, _ := s.metaLive(key)
	if err := s.check(ctx, acl.OpWrite, meta.Owner, "DEL", key); err != nil {
		ks.Unlock()
		return err
	}
	n := s.db.Del(key)
	s.ix.del(key)
	outcome := audit.OutcomeOK
	if n == 0 {
		outcome = audit.OutcomeMissing
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "DEL", Key: key, Owner: meta.Owner,
		Purpose: ctx.Purpose, Outcome: outcome,
	})
	ks.Unlock()
	if n == 0 {
		return ErrNotFound
	}
	s.pendingRewrite.Store(true)
	if s.cfg.Timing == TimingRealTime {
		// The compaction is whole-store work: it re-acquires the global
		// locks itself, after the key stripe is released. Unlike Forget,
		// a single-key delete compacts only the AOF (the pre-stripe
		// behavior); backup refresh and replica drains stay with the
		// owner-wide erasure path and Maintain.
		s.lockAll()
		defer s.unlockAll()
		if s.closed.Load() {
			// Close won the race to the global locks; the delete itself
			// succeeded, and the owed compaction stays in pendingRewrite.
			return nil
		}
		return s.rewriteLocked(ctx)
	}
	return nil
}

// metaLive returns key's metadata if the key still exists in the engine;
// ghost metadata (key expired underneath) is pruned. Callers hold key's
// stripe.
func (s *Store) metaLive(key string) (Metadata, bool) {
	m, ok := s.ix.get(key)
	if !ok {
		return Metadata{}, false
	}
	if !s.db.Exists(key) {
		s.ix.del(key)
		return Metadata{}, false
	}
	return m, true
}

// Metadata returns the GDPR metadata for key.
func (s *Store) Metadata(ctx Ctx, key string) (Metadata, error) {
	if !s.cfg.Compliant {
		return Metadata{}, ErrNotCompliant
	}
	ks := s.keyStripeFor(key)
	ks.Lock()
	defer ks.Unlock()
	m, ok := s.metaLive(key)
	if !ok || s.recordDead(m) {
		return Metadata{}, ErrNotFound
	}
	if err := s.check(ctx, acl.OpRead, m.Owner, "GETMETA", key); err != nil {
		return Metadata{}, err
	}
	return m.clone(), nil
}

// TTL returns the remaining retention time for key.
func (s *Store) TTL(key string) (time.Duration, store.TTLStatus) {
	return s.db.TTL(key)
}

// Expire updates the retention deadline for key (controller operation).
func (s *Store) Expire(ctx Ctx, key string, ttl time.Duration) error {
	if !s.cfg.Compliant {
		if !s.db.Expire(key, ttl) {
			return ErrNotFound
		}
		return nil
	}
	ks := s.keyStripeFor(key)
	ks.Lock()
	defer ks.Unlock()
	m, _ := s.metaLive(key)
	if err := s.check(ctx, acl.OpWrite, m.Owner, "EXPIRE", key); err != nil {
		return err
	}
	if !s.db.Expire(key, ttl) {
		return ErrNotFound
	}
	if mm, ok := s.ix.get(key); ok {
		mm.Expiry = s.cfg.Config.Clock.Now().Add(ttl)
		s.ix.put(key, mm)
		if mb, err := mm.encode(); err == nil {
			if err := s.appendLog(opMeta, []byte(key), mb); err != nil {
				return err
			}
		}
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "EXPIRE", Key: key, Owner: m.Owner,
		Purpose: ctx.Purpose, Outcome: audit.OutcomeOK,
	})
	return nil
}

// FlushAll removes every key and all compliance metadata as one atomic
// cut: the engine journals a single FLUSHALL record (replicas and AOF
// replay observe the same reset via applyRecord), and the metadata index
// is cleared in the same critical section so the live store never serves
// ghost metadata for a flushed keyspace.
func (s *Store) FlushAll() {
	s.lockAll()
	defer s.unlockAll()
	s.db.FlushAll()
	s.ix.clear()
}

// Exists reports whether key is present and unexpired.
func (s *Store) Exists(key string) bool { return s.db.Exists(key) }

// Len returns the number of live keys.
func (s *Store) Len() int { return s.db.Len() }

// ACL exposes the access-control list for principal and grant management.
func (s *Store) ACL() *acl.List { return s.acl }

// Trail exposes the audit trail (nil when auditing is disabled).
func (s *Store) Trail() *audit.Trail { return s.trail }

// Engine exposes the underlying storage engine. Benchmarks and the Figure 2
// experiment use it to drive expiry cycles directly.
func (s *Store) Engine() *store.DB { return s.db }

// Log exposes the AOF (nil when persistence is disabled).
func (s *Store) Log() *aof.Log { return s.log }

// Config returns the store's (normalized-inputs) configuration.
func (s *Store) Config() Config { return s.cfg.Config }

// StartExpirer launches the background active-expiry loop (wall clock).
func (s *Store) StartExpirer() { s.expirer.Run() }

// StopExpirer halts the background active-expiry loop.
func (s *Store) StopExpirer() { s.expirer.Stop() }

// Expirer returns the expiry driver, for step-wise (virtual time) control.
func (s *Store) Expirer() *store.Expirer { return s.expirer }

// ExpiryCycle runs one active-expiry cycle and audits a summary record.
// GDPR deletion work is itself a processing activity worth evidencing.
func (s *Store) ExpiryCycle() store.CycleStats {
	st := s.db.ActiveExpireCycle()
	if st.Expired > 0 {
		s.auditOp(audit.Record{
			Actor: "system:expiry", Op: "EXPIRECYCLE",
			Outcome: audit.OutcomeOK,
			Detail:  fmt.Sprintf("reclaimed=%d sampled=%d loops=%d", st.Expired, st.Sampled, st.Loops),
		})
	}
	return st
}

// Close flushes and releases every subsystem. closed is flipped first so
// new operations bounce; the lockAll barrier then waits out the operations
// already holding stripes, after which no goroutine can reach the log or
// trail.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.lockAll()
	primary := s.primary
	hub := s.hub
	s.unlockAll()
	s.expirer.Stop()
	s.StopSweeper()
	if primary != nil {
		primary.Close()
	}
	if hub != nil {
		hub.Close()
	}
	var first error
	if s.log != nil {
		if err := s.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.trail != nil {
		if err := s.trail.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
