package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/acl"
	"gdprstore/internal/testutil"
)

// TestConcurrentMixedOperations hammers the compliance layer from many
// goroutines and then checks the core consistency invariants:
//
//  1. every metadata entry refers to a key the engine still has (after one
//     Maintain pass prunes expiry ghosts);
//  2. every owner-index entry round-trips through GetUser;
//  3. forgotten owners have no surviving records.
func TestConcurrentMixedOperations(t *testing.T) {
	s := newFullStore(t, nil)
	const owners = 8
	for i := 0; i < owners; i++ {
		s.ACL().AddPrincipal(acl.Principal{ID: fmt.Sprintf("owner%d", i), Role: acl.RoleSubject})
	}

	var wg sync.WaitGroup
	for g := 0; g < owners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := fmt.Sprintf("owner%d", g)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("pd:%s:%d", owner, i%20)
				switch i % 7 {
				case 0, 1, 2:
					if err := s.Put(ctlCtx, key, []byte("v"), PutOptions{
						Owner: owner, Purposes: []string{"p"}, TTL: time.Hour,
					}); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 3, 4:
					s.Get(Ctx{Actor: "controller", Purpose: "p"}, key)
				case 5:
					s.Delete(ctlCtx, key)
				case 6:
					if i%49 == 6 {
						s.Object(Ctx{Actor: owner}, owner, "ads")
						s.Unobject(Ctx{Actor: owner}, owner, "ads")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s.Maintain()

	// Invariant 1: no ghost metadata after maintenance.
	var ghost string
	s.ix.rangeMeta(func(k string, _ Metadata) bool {
		if !s.db.Exists(k) {
			ghost = k
			return false
		}
		return true
	})
	if ghost != "" {
		t.Fatalf("ghost metadata for %q after Maintain", ghost)
	}
	// Invariant 2: owner index agrees with metadata, in both directions.
	s.ix.rangeMeta(func(k string, m Metadata) bool {
		if m.Owner == "" {
			return true
		}
		for _, ok := range s.ix.ownerKeys(m.Owner) {
			if ok == k {
				return true
			}
		}
		t.Errorf("key %q (owner %q) missing from owner index", k, m.Owner)
		return true
	})
	for i := 0; i < owners; i++ {
		owner := fmt.Sprintf("owner%d", i)
		for _, k := range s.ix.ownerKeys(owner) {
			m, ok := s.ix.get(k)
			if !ok || m.Owner != owner {
				t.Fatalf("owner index inconsistent: %q -> %q", owner, k)
			}
		}
	}

	// Invariant 3: forgetting an owner leaves nothing behind.
	if _, err := s.Forget(ctlCtx, "owner0"); err != nil {
		t.Fatal(err)
	}
	recs, err := s.GetUser(ctlCtx, "owner0")
	if err != nil || len(recs) != 0 {
		t.Fatalf("owner0 records after forget: %d, %v", len(recs), err)
	}
}

func TestConcurrentRightsAndWrites(t *testing.T) {
	// Rights operations racing data-path writes must never error with
	// anything but the benign set, and the store must stay consistent.
	s := newFullStore(t, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("pd:alice:%d", i%10)
			s.Put(ctlCtx, key, []byte("v"), PutOptions{Owner: "alice", Purposes: []string{"p"}})
			i++
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := s.GetUser(ctlCtx, "alice"); err != nil {
			t.Fatalf("GetUser under write load: %v", err)
		}
		if _, err := s.Export(ctlCtx, "alice"); err != nil {
			t.Fatalf("Export under write load: %v", err)
		}
	}
	if _, err := s.Forget(Ctx{Actor: "alice"}, "alice"); err != nil {
		t.Fatalf("Forget under write load: %v", err)
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentExpiryAndAccess(t *testing.T) {
	// The engine's expirer runs concurrently with compliance-layer reads
	// in production; exercise that interleaving on the wall clock.
	cfg := Strict("")
	cfg.DefaultTTL = 24 * time.Hour
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ACL().AddPrincipal(acl.Principal{ID: "controller", Role: acl.RoleController})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		ttl := time.Duration(1+i%5) * time.Millisecond
		if i%2 == 0 {
			ttl = time.Hour
		}
		if err := s.Put(ctlCtx, key, []byte("v"), PutOptions{Owner: "alice", TTL: ttl}); err != nil {
			t.Fatal(err)
		}
	}
	s.StartExpirer()
	defer s.StopExpirer()
	testutil.Eventually(t, 10*time.Second, 0, func() bool {
		for i := 0; i < 100; i++ {
			s.Get(ctlCtx, fmt.Sprintf("k%d", i))
		}
		return s.Engine().ExpiredCount() >= 250
	}, "expirer never reclaimed the short-TTL keys")
	st := s.Maintain()
	_ = st
	// All short-TTL keys must eventually be gone; long-TTL ones intact.
	for i := 0; i < 500; i += 2 {
		if !s.Engine().Exists(fmt.Sprintf("k%d", i)) {
			t.Fatalf("long-TTL key k%d vanished", i)
		}
	}
}
