package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/cryptoutil"
)

func openSealed(key, sealed []byte, recordKey string) ([]byte, error) {
	return cryptoutil.Open(key, sealed, []byte(recordKey))
}

// epochArg encodes a keyring epoch for a journal record argument.
func epochArg(e uint64) []byte {
	return []byte(strconv.FormatUint(e, 10))
}

// parseEpoch decodes an epoch journal argument.
func parseEpoch(b []byte) (uint64, error) {
	return strconv.ParseUint(string(b), 10, 64)
}

// recordDead reports whether m's record is crypto-erased: sealed under a
// keyring epoch whose key has since been destroyed. Dead records are
// invisible to every read path and are reclaimed by the lazy-delete sweep.
func (s *Store) recordDead(m Metadata) bool {
	if s.keyring == nil || m.Owner == "" {
		return false
	}
	return !s.keyring.RecordLive(m.Owner, m.KeyEpoch)
}

// KeyVisible reports whether key is currently visible to clients: a key
// whose record was crypto-erased but not yet swept is not. Keyspace-level
// commands (SCAN, KEYS) filter through this so the sweep's laziness never
// shows.
func (s *Store) KeyVisible(key string) bool {
	if s.keyring == nil {
		return true
	}
	m, ok := s.ix.get(key)
	if !ok {
		return true
	}
	return !s.recordDead(m)
}

// markErasurePending registers owner with the lazy-delete sweep: the owner
// was crypto-shredded and dead ciphertext may remain in the engine.
func (s *Store) markErasurePending(owner string) {
	now := s.cfg.Config.Clock.Now()
	s.erasure.mu.Lock()
	if _, ok := s.erasure.pending[owner]; !ok {
		s.erasure.pending[owner] = now
	}
	s.erasure.mu.Unlock()
}

// SweepStats reports what one lazy-delete sweep cycle did.
type SweepStats struct {
	// Scanned counts index entries examined for deadness.
	Scanned int
	// Reclaimed counts dead records physically deleted (engine + index).
	Reclaimed int
	// OwnersDrained counts owners whose dead ciphertext was fully
	// reclaimed, removing them from the pending set.
	OwnersDrained int
}

// ErasureSweepCycle runs one budgeted lazy-delete cycle: for each
// crypto-shredded owner still pending, it walks the owner's indexed keys
// and physically deletes those sealed under a destroyed key epoch. The
// budget caps deletions per cycle (scanning live entries is cheap; the
// deletions carry journal appends and replication traffic), so a single
// cycle never stalls foreground traffic for long.
//
// The cycle takes one key stripe at a time and no owner stripe, which
// respects the locks.go ordering and lets foreground Puts/Gets interleave
// freely. An owner is drained only when a full walk of its keys found no
// remaining dead records — owners reinstated mid-sweep (whose new records
// carry the live epoch) drain naturally once their dead residue is gone.
func (s *Store) ErasureSweepCycle() SweepStats {
	var st SweepStats
	if s.keyring == nil || s.closed.Load() {
		return st
	}
	start := time.Now()
	budget := s.cfg.sweepBudget
	s.erasure.mu.Lock()
	owners := make([]string, 0, len(s.erasure.pending))
	for o := range s.erasure.pending {
		owners = append(owners, o)
	}
	s.erasure.mu.Unlock()
	sort.Strings(owners)
	halted := false
	for _, owner := range owners {
		if halted || st.Reclaimed >= budget {
			break
		}
		keys := s.ix.ownerKeys(owner)
		sort.Strings(keys)
		complete := true
		for _, k := range keys {
			if st.Reclaimed >= budget {
				complete = false
				break
			}
			ks := s.keyStripeFor(k)
			ks.Lock()
			if s.closed.Load() {
				ks.Unlock()
				complete, halted = false, true
				break
			}
			// Re-validate under the stripe: the key may have been deleted,
			// re-owned, or rewritten under a live epoch since the walk began.
			if m, ok := s.ix.get(k); ok && m.Owner == owner && s.recordDead(m) {
				s.db.Del(k)
				s.ix.del(k)
				st.Reclaimed++
			}
			ks.Unlock()
			st.Scanned++
		}
		if complete {
			s.erasure.mu.Lock()
			delete(s.erasure.pending, owner)
			s.erasure.mu.Unlock()
			st.OwnersDrained++
		}
	}
	if st.Reclaimed > 0 {
		// The reclaimed ciphertext still sits in AOF history; owe a
		// compaction so it stops persisting (snapshotAll filters dead
		// records, so the rewrite drops it even if more sweeping remains).
		s.pendingRewrite.Store(true)
	}
	s.erasure.mu.Lock()
	s.erasure.cycles++
	s.erasure.reclaimed += uint64(st.Reclaimed)
	s.erasure.drained += uint64(st.OwnersDrained)
	s.erasure.lastCycle = time.Since(start)
	s.erasure.mu.Unlock()
	return st
}

// DrainErasure runs sweep cycles until no shredded owner remains pending;
// a synchronous backstop for tests and shutdown-style flows. Returns the
// accumulated stats.
func (s *Store) DrainErasure() SweepStats {
	var total SweepStats
	for {
		st := s.ErasureSweepCycle()
		total.Scanned += st.Scanned
		total.Reclaimed += st.Reclaimed
		total.OwnersDrained += st.OwnersDrained
		s.erasure.mu.Lock()
		n := len(s.erasure.pending)
		s.erasure.mu.Unlock()
		if n == 0 || (st.Reclaimed == 0 && st.OwnersDrained == 0) {
			return total
		}
	}
}

// StartSweeper launches the background lazy-delete sweeper, which runs
// ErasureSweepCycle every ErasureSweepInterval. It is a no-op without a
// keyring (no envelope encryption → nothing to shred) or when already
// running. Replicas must not start a sweeper: the primary's sweep deletes
// replicate through the journal stream.
func (s *Store) StartSweeper() {
	if s.keyring == nil {
		return
	}
	e := &s.erasure
	e.loopMu.Lock()
	defer e.loopMu.Unlock()
	if e.stopped != nil {
		return
	}
	e.stopped = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stopped, e.done
	interval := s.cfg.sweepInterval
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if s.closed.Load() {
					return
				}
				s.ErasureSweepCycle()
			}
		}
	}()
}

// StopSweeper stops the background sweeper and waits for it to exit.
// Safe to call when the sweeper never ran.
func (s *Store) StopSweeper() {
	e := &s.erasure
	e.loopMu.Lock()
	stop, done := e.stopped, e.done
	e.stopped, e.done = nil, nil
	e.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ErasureStats is a point-in-time view of crypto-shredding and the
// lazy-delete sweep, surfaced through INFO erasure.
type ErasureStats struct {
	// Enabled reports whether envelope encryption (and therefore O(1)
	// crypto-shredding) is active.
	Enabled bool
	// ShreddedOwners counts owners whose data key is currently destroyed.
	ShreddedOwners int
	// PendingOwners counts shredded owners whose dead ciphertext the sweep
	// has not fully reclaimed yet.
	PendingOwners int
	// PendingRecords counts index entries still attributed to pending
	// owners (an upper bound on dead records: a reinstated owner's live
	// records are included until the owner drains).
	PendingRecords int
	// Reclaimed is the total records physically deleted by sweeps.
	Reclaimed uint64
	// SweepCycles is the total sweep cycles run.
	SweepCycles uint64
	// OwnersDrained is the total owners fully reclaimed.
	OwnersDrained uint64
	// SweepLag is the age of the oldest still-pending shred — how far the
	// physical reclamation trails the logical erasure.
	SweepLag time.Duration
	// LastCycle is the duration of the most recent sweep cycle.
	LastCycle time.Duration
	// SweeperRunning reports whether the background sweeper goroutine is
	// active.
	SweeperRunning bool
}

// ErasureStats reports the current crypto-shredding/sweep state.
func (s *Store) ErasureStats() ErasureStats {
	var st ErasureStats
	if s.keyring == nil {
		return st
	}
	st.Enabled = true
	st.ShreddedOwners = s.keyring.ShredCount()
	now := s.cfg.Config.Clock.Now()
	s.erasure.mu.Lock()
	st.PendingOwners = len(s.erasure.pending)
	var oldest time.Time
	pending := make([]string, 0, len(s.erasure.pending))
	for o, at := range s.erasure.pending {
		pending = append(pending, o)
		if oldest.IsZero() || at.Before(oldest) {
			oldest = at
		}
	}
	st.Reclaimed = s.erasure.reclaimed
	st.SweepCycles = s.erasure.cycles
	st.OwnersDrained = s.erasure.drained
	st.LastCycle = s.erasure.lastCycle
	s.erasure.mu.Unlock()
	for _, o := range pending {
		st.PendingRecords += s.ix.ownerKeyCount(o)
	}
	if !oldest.IsZero() && now.After(oldest) {
		st.SweepLag = now.Sub(oldest)
	}
	s.erasure.loopMu.Lock()
	st.SweeperRunning = s.erasure.stopped != nil
	s.erasure.loopMu.Unlock()
	return st
}

// reclaimErasedLocked fully reclaims every pending owner's dead records.
// Callers hold the whole-store lock (lockAll), so no stripe juggling is
// needed; this is Maintain's backstop when no background sweeper runs.
func (s *Store) reclaimErasedLocked() int {
	if s.keyring == nil {
		return 0
	}
	s.erasure.mu.Lock()
	owners := make([]string, 0, len(s.erasure.pending))
	for o := range s.erasure.pending {
		owners = append(owners, o)
	}
	s.erasure.mu.Unlock()
	n := 0
	drained := 0
	for _, owner := range owners {
		for _, k := range s.ix.ownerKeys(owner) {
			if m, ok := s.ix.get(k); ok && m.Owner == owner && s.recordDead(m) {
				s.db.Del(k)
				s.ix.del(k)
				n++
			}
		}
		s.erasure.mu.Lock()
		delete(s.erasure.pending, owner)
		s.erasure.mu.Unlock()
		drained++
	}
	if n > 0 || drained > 0 {
		s.erasure.mu.Lock()
		s.erasure.reclaimed += uint64(n)
		s.erasure.drained += uint64(drained)
		s.erasure.mu.Unlock()
	}
	return n
}

// snapshotAll emits the commands that reconstruct the full compliance
// state: the dataset (SET/SETEX), metadata (GMETA), standing objections
// (GOBJ), and the envelope keyring (GKEY/GSHRED, with key epochs). Callers
// hold the whole-store lock (lockAll), so the cut is globally consistent.
//
// Crypto-erased records the sweep has not reclaimed yet are omitted — both
// their engine values and their metadata — so a compaction purges dead
// ciphertext from the AOF even while the in-memory sweep is still running.
func (s *Store) snapshotAll(emit func(name string, args ...[]byte) error) error {
	err := s.db.Snapshot(func(name string, args ...[]byte) error {
		if s.keyring != nil && len(args) > 0 {
			if m, ok := s.ix.get(string(args[0])); ok && s.recordDead(m) {
				return nil
			}
		}
		return emit(name, args...)
	})
	if err != nil {
		return err
	}
	var emitErr error
	s.ix.rangeMeta(func(k string, m Metadata) bool {
		if !s.db.Exists(k) || s.recordDead(m) {
			return true
		}
		mb, err := m.encode()
		if err != nil {
			emitErr = err
			return false
		}
		if err := emit(opMeta, []byte(k), mb); err != nil {
			emitErr = err
			return false
		}
		return true
	})
	if emitErr != nil {
		return emitErr
	}
	for _, os := range s.owners {
		for owner, set := range os.objections {
			for p := range set {
				if err := emit(opObject, []byte(owner), []byte(p)); err != nil {
					return err
				}
			}
		}
	}
	if s.keyring != nil {
		wrapped, err := s.keyring.ExportAll()
		if err != nil {
			return err
		}
		epochs := s.keyring.Epochs()
		for owner, w := range wrapped {
			if err := emit(opKey, []byte(owner), w, epochArg(epochs[owner])); err != nil {
				return err
			}
		}
		for _, owner := range s.keyring.ShreddedOwners() {
			if err := emit(opShred, []byte(owner), epochArg(epochs[owner])); err != nil {
				return err
			}
		}
	}
	return nil
}

// rewriteLocked compacts the AOF so deleted/erased personal data stops
// persisting in the log. Callers hold the whole-store lock (lockAll).
func (s *Store) rewriteLocked(ctx Ctx) error {
	if s.log == nil {
		s.pendingRewrite.Store(false)
		return nil
	}
	before := s.log.Size()
	if err := s.log.Rewrite(s.snapshotAll); err != nil {
		return fmt.Errorf("core: aof compaction: %w", err)
	}
	s.pendingRewrite.Store(false)
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "REWRITE", Outcome: audit.OutcomeOK,
		Detail: fmt.Sprintf("bytes=%d->%d", before, s.log.Size()),
	})
	return nil
}

// Compact forces an AOF compaction now, regardless of timing mode.
func (s *Store) Compact(ctx Ctx) error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.rewriteLocked(ctx)
}

// MaintStats reports what one maintenance pass did.
type MaintStats struct {
	// GhostMetaPruned counts metadata entries dropped because the engine
	// had already expired their keys.
	GhostMetaPruned int
	// GrantsPurged counts expired ACL grants removed.
	GrantsPurged int
	// ErasedReclaimed counts crypto-shredded records physically deleted by
	// this pass (the backstop for deployments without a background sweeper).
	ErasedReclaimed int
	// Rewrote reports whether a deferred AOF compaction ran.
	Rewrote bool
	// Took is the wall duration of the pass.
	Took time.Duration
}

// Maintain runs one background maintenance pass: it prunes ghost metadata
// left behind by engine-side expiry, purges expired grants, and performs
// any deferred AOF compaction (the "eventual" half of the compliance
// spectrum — erasure work postponed off the critical path lands here).
func (s *Store) Maintain() MaintStats {
	start := time.Now()
	var st MaintStats
	s.lockAll()
	var ghosts []string
	s.ix.rangeMeta(func(k string, _ Metadata) bool {
		if !s.db.Exists(k) {
			ghosts = append(ghosts, k)
		}
		return true
	})
	for _, k := range ghosts {
		s.ix.del(k)
		st.GhostMetaPruned++
	}
	st.GrantsPurged = s.acl.PurgeExpired()
	st.ErasedReclaimed = s.reclaimErasedLocked()
	if st.ErasedReclaimed > 0 {
		s.pendingRewrite.Store(true)
	}
	if s.pendingRewrite.Load() {
		if err := s.propagateErasureLocked(Ctx{Actor: "system:maintenance"}); err == nil {
			st.Rewrote = true
		}
	}
	s.unlockAll()
	st.Took = time.Since(start)
	return st
}

// PendingRewrite reports whether an AOF compaction is owed (eventual
// timing defers it to Maintain).
func (s *Store) PendingRewrite() bool {
	return s.pendingRewrite.Load()
}

// MetaCount returns the number of metadata entries currently indexed
// (including ghosts not yet pruned); for tests and introspection.
func (s *Store) MetaCount() int {
	return s.ix.len()
}
