package core

import (
	"fmt"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/cryptoutil"
)

func openSealed(key, sealed []byte, recordKey string) ([]byte, error) {
	return cryptoutil.Open(key, sealed, []byte(recordKey))
}

// snapshotAll emits the commands that reconstruct the full compliance
// state: the dataset (SET/SETEX), metadata (GMETA), standing objections
// (GOBJ), and the envelope keyring (GKEY/GSHRED). Callers hold the
// whole-store lock (lockAll), so the cut is globally consistent.
func (s *Store) snapshotAll(emit func(name string, args ...[]byte) error) error {
	if err := s.db.Snapshot(emit); err != nil {
		return err
	}
	var emitErr error
	s.ix.rangeMeta(func(k string, m Metadata) bool {
		if !s.db.Exists(k) {
			return true
		}
		mb, err := m.encode()
		if err != nil {
			emitErr = err
			return false
		}
		if err := emit(opMeta, []byte(k), mb); err != nil {
			emitErr = err
			return false
		}
		return true
	})
	if emitErr != nil {
		return emitErr
	}
	for _, os := range s.owners {
		for owner, set := range os.objections {
			for p := range set {
				if err := emit(opObject, []byte(owner), []byte(p)); err != nil {
					return err
				}
			}
		}
	}
	if s.keyring != nil {
		wrapped, err := s.keyring.ExportAll()
		if err != nil {
			return err
		}
		for owner, w := range wrapped {
			if err := emit(opKey, []byte(owner), w); err != nil {
				return err
			}
		}
		for _, owner := range s.keyring.ShreddedOwners() {
			if err := emit(opShred, []byte(owner)); err != nil {
				return err
			}
		}
	}
	return nil
}

// rewriteLocked compacts the AOF so deleted/erased personal data stops
// persisting in the log. Callers hold the whole-store lock (lockAll).
func (s *Store) rewriteLocked(ctx Ctx) error {
	if s.log == nil {
		s.pendingRewrite.Store(false)
		return nil
	}
	before := s.log.Size()
	if err := s.log.Rewrite(s.snapshotAll); err != nil {
		return fmt.Errorf("core: aof compaction: %w", err)
	}
	s.pendingRewrite.Store(false)
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "REWRITE", Outcome: audit.OutcomeOK,
		Detail: fmt.Sprintf("bytes=%d->%d", before, s.log.Size()),
	})
	return nil
}

// Compact forces an AOF compaction now, regardless of timing mode.
func (s *Store) Compact(ctx Ctx) error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.rewriteLocked(ctx)
}

// MaintStats reports what one maintenance pass did.
type MaintStats struct {
	// GhostMetaPruned counts metadata entries dropped because the engine
	// had already expired their keys.
	GhostMetaPruned int
	// GrantsPurged counts expired ACL grants removed.
	GrantsPurged int
	// Rewrote reports whether a deferred AOF compaction ran.
	Rewrote bool
	// Took is the wall duration of the pass.
	Took time.Duration
}

// Maintain runs one background maintenance pass: it prunes ghost metadata
// left behind by engine-side expiry, purges expired grants, and performs
// any deferred AOF compaction (the "eventual" half of the compliance
// spectrum — erasure work postponed off the critical path lands here).
func (s *Store) Maintain() MaintStats {
	start := time.Now()
	var st MaintStats
	s.lockAll()
	var ghosts []string
	s.ix.rangeMeta(func(k string, _ Metadata) bool {
		if !s.db.Exists(k) {
			ghosts = append(ghosts, k)
		}
		return true
	})
	for _, k := range ghosts {
		s.ix.del(k)
		st.GhostMetaPruned++
	}
	st.GrantsPurged = s.acl.PurgeExpired()
	if s.pendingRewrite.Load() {
		if err := s.propagateErasureLocked(Ctx{Actor: "system:maintenance"}); err == nil {
			st.Rewrote = true
		}
	}
	s.unlockAll()
	st.Took = time.Since(start)
	return st
}

// PendingRewrite reports whether an AOF compaction is owed (eventual
// timing defers it to Maintain).
func (s *Store) PendingRewrite() bool {
	return s.pendingRewrite.Load()
}

// MetaCount returns the number of metadata entries currently indexed
// (including ghosts not yet pruned); for tests and introspection.
func (s *Store) MetaCount() int {
	return s.ix.len()
}
