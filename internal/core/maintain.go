package core

import (
	"fmt"
	"time"

	"gdprstore/internal/audit"
	"gdprstore/internal/cryptoutil"
)

func openSealed(key, sealed []byte, recordKey string) ([]byte, error) {
	return cryptoutil.Open(key, sealed, []byte(recordKey))
}

// snapshotAll emits the commands that reconstruct the full compliance
// state: the dataset (SET/SETEX), metadata (GMETA), standing objections
// (GOBJ), and the envelope keyring (GKEY/GSHRED). Callers hold s.mu.
func (s *Store) snapshotAll(emit func(name string, args ...[]byte) error) error {
	if err := s.db.Snapshot(emit); err != nil {
		return err
	}
	for k, m := range s.ix.meta {
		if !s.db.Exists(k) {
			continue
		}
		mb, err := m.encode()
		if err != nil {
			return err
		}
		if err := emit(opMeta, []byte(k), mb); err != nil {
			return err
		}
	}
	for owner, set := range s.objections {
		for p := range set {
			if err := emit(opObject, []byte(owner), []byte(p)); err != nil {
				return err
			}
		}
	}
	if s.keyring != nil {
		wrapped, err := s.keyring.ExportAll()
		if err != nil {
			return err
		}
		for owner, w := range wrapped {
			if err := emit(opKey, []byte(owner), w); err != nil {
				return err
			}
		}
		for _, owner := range s.keyring.ShreddedOwners() {
			if err := emit(opShred, []byte(owner)); err != nil {
				return err
			}
		}
	}
	return nil
}

// rewriteLocked compacts the AOF so deleted/erased personal data stops
// persisting in the log. Callers hold s.mu.
func (s *Store) rewriteLocked(ctx Ctx) error {
	if s.log == nil {
		s.pendingRewrite = false
		return nil
	}
	before := s.log.Size()
	if err := s.log.Rewrite(s.snapshotAll); err != nil {
		return fmt.Errorf("core: aof compaction: %w", err)
	}
	s.pendingRewrite = false
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "REWRITE", Outcome: audit.OutcomeOK,
		Detail: fmt.Sprintf("bytes=%d->%d", before, s.log.Size()),
	})
	return nil
}

// Compact forces an AOF compaction now, regardless of timing mode.
func (s *Store) Compact(ctx Ctx) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.rewriteLocked(ctx)
}

// MaintStats reports what one maintenance pass did.
type MaintStats struct {
	// GhostMetaPruned counts metadata entries dropped because the engine
	// had already expired their keys.
	GhostMetaPruned int
	// GrantsPurged counts expired ACL grants removed.
	GrantsPurged int
	// Rewrote reports whether a deferred AOF compaction ran.
	Rewrote bool
	// Took is the wall duration of the pass.
	Took time.Duration
}

// Maintain runs one background maintenance pass: it prunes ghost metadata
// left behind by engine-side expiry, purges expired grants, and performs
// any deferred AOF compaction (the "eventual" half of the compliance
// spectrum — erasure work postponed off the critical path lands here).
func (s *Store) Maintain() MaintStats {
	start := time.Now()
	var st MaintStats
	s.mu.Lock()
	for k := range s.ix.meta {
		if !s.db.Exists(k) {
			s.ix.del(k)
			st.GhostMetaPruned++
		}
	}
	st.GrantsPurged = s.acl.PurgeExpired()
	if s.pendingRewrite {
		if err := s.propagateErasureLocked(Ctx{Actor: "system:maintenance"}); err == nil {
			st.Rewrote = true
		}
	}
	s.mu.Unlock()
	st.Took = time.Since(start)
	return st
}

// PendingRewrite reports whether an AOF compaction is owed (eventual
// timing defers it to Maintain).
func (s *Store) PendingRewrite() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingRewrite
}

// MetaCount returns the number of metadata entries currently indexed
// (including ghosts not yet pruned); for tests and introspection.
func (s *Store) MetaCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.len()
}
