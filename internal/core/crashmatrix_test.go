package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"gdprstore/internal/aof"
	"gdprstore/internal/clock"
)

// The crash-recovery matrix: for every combination of engine shard count
// and AOF fsync policy, a scripted workload is interrupted at a series of
// kill points; at each one the on-disk journal (as of the last sync) is
// copied aside — a crash-consistent image — and reopened, and the replayed
// store must match the live store exactly: keyspace, values, retention
// deadlines, GDPR metadata and standing objections. The shard count must
// also be invisible: shards=1 and shards=16 replay to identical state.

// crashDump renders the store's observable state as a canonical string.
func crashDump(t *testing.T, st *Store) string {
	t.Helper()
	keys := st.Engine().Keys("*")
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		v, ok := st.Engine().Get(k)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "key %s=%s", k, v)
		if dl, has := st.Engine().Deadline(k); has {
			fmt.Fprintf(&b, " ttl=%s", dl.UTC().Format(time.RFC3339Nano))
		}
		if m, err := st.Metadata(Ctx{Actor: "auditor"}, k); err == nil {
			fmt.Fprintf(&b, " owner=%s purposes=%s objections=%s",
				m.Owner, strings.Join(m.Purposes, ","), strings.Join(m.Objections, ","))
		}
		b.WriteString("\n")
	}
	for _, owner := range []string{"alice", "bob", "carol"} {
		if obj := st.Objections(owner); len(obj) > 0 {
			fmt.Fprintf(&b, "objections %s=%s\n", owner, strings.Join(obj, ","))
		}
	}
	return b.String()
}

// crashScript is the workload; each step is one kill point.
func crashScript(t *testing.T, st *Store) []func() {
	t.Helper()
	ctx := Ctx{Actor: "app", Purpose: "service"}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	return []func(){
		func() {
			for i := 0; i < 16; i++ {
				owner := "alice"
				if i%2 == 1 {
					owner = "bob"
				}
				must(st.Put(ctx, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i)),
					PutOptions{Owner: owner, Purposes: []string{"service"}}))
			}
		},
		func() {
			entries := make([]BatchEntry, 8)
			for i := range entries {
				entries[i] = BatchEntry{Key: fmt.Sprintf("batch%02d", i), Value: []byte("bv")}
			}
			must(st.PutBatch(ctx, entries, PutOptions{Owner: "carol", Purposes: []string{"service"}}))
		},
		func() {
			must(st.Put(ctx, "retained", []byte("short"), PutOptions{
				Owner: "alice", Purposes: []string{"service"}, TTL: time.Hour}))
		},
		func() { must(st.Delete(ctx, "k02")) },
		func() { must(st.Object(ctx, "alice", "ads")) },
		func() {
			if _, err := st.Forget(ctx, "bob"); err != nil {
				t.Fatal(err)
			}
		},
		func() { must(st.Expire(ctx, "k04", 30*time.Minute)) },
		func() {
			must(st.Put(ctx, "k00", []byte("rewritten"), PutOptions{
				Owner: "carol", Purposes: []string{"billing"}}))
		},
	}
}

func crashCfg(path string, vc *clock.Virtual, shards int, policy aof.SyncPolicy) Config {
	return Config{
		Compliant:  true,
		Capability: CapabilityPartial,
		AOFPath:    path,
		AOFSync:    Ptr(policy),
		Clock:      vc,
		Shards:     shards,
	}
}

// copyFile copies the current on-disk journal to a fresh directory.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryMatrix(t *testing.T) {
	policies := []aof.SyncPolicy{aof.SyncAlways, aof.SyncEverySec, aof.SyncNo}
	// finalDumps[policy][shards] — the end state must also agree across
	// shard counts for every policy.
	finalDumps := make(map[aof.SyncPolicy]map[int]string)
	for _, policy := range policies {
		finalDumps[policy] = make(map[int]string)
	}
	for _, shards := range []int{1, 16} {
		for _, policy := range policies {
			t.Run(fmt.Sprintf("shards=%d/sync=%s", shards, policy), func(t *testing.T) {
				dir := t.TempDir()
				vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
				live, err := Open(crashCfg(filepath.Join(dir, "live.aof"), vc, shards, policy))
				if err != nil {
					t.Fatal(err)
				}
				defer live.Close()

				for i, step := range crashScript(t, live) {
					step()
					// Crash-consistent image: everything synced so far. For
					// everysec/no this is what survives a crash after the
					// last (explicit or periodic) sync — the matrix pins
					// that replaying it reproduces the live state exactly.
					if err := live.Log().Sync(); err != nil {
						t.Fatal(err)
					}
					killDir := t.TempDir()
					killPath := filepath.Join(killDir, "live.aof")
					copyFile(t, filepath.Join(dir, "live.aof"), killPath)

					reopened, err := Open(crashCfg(killPath, vc, shards, policy))
					if err != nil {
						t.Fatalf("kill point %d: reopen: %v", i, err)
					}
					want := crashDump(t, live)
					got := crashDump(t, reopened)
					reopened.Close()
					if got != want {
						t.Fatalf("kill point %d: replayed state diverged\n--- live ---\n%s--- replayed ---\n%s",
							i, want, got)
					}
					if i == 7 {
						finalDumps[policy][shards] = got
					}
				}
			})
		}
	}
	for _, policy := range policies {
		one, sixteen := finalDumps[policy][1], finalDumps[policy][16]
		if one == "" || sixteen == "" {
			t.Fatalf("sync=%s: missing final dumps (subtest failed?)", policy)
		}
		if one != sixteen {
			t.Errorf("sync=%s: shards=1 and shards=16 replay to different state\n--- 1 ---\n%s--- 16 ---\n%s",
				policy, one, sixteen)
		}
	}
}

// TestCrashTornTailRecovery pins the torn-write contract: truncating the
// journal at arbitrary byte boundaries (a crash mid-append) must still
// reopen cleanly, and the surviving keys must be exactly a prefix of the
// write order with their correct values — no corruption, no resurrection,
// no reordering.
func TestCrashTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	path := filepath.Join(dir, "torn.aof")
	st, err := Open(crashCfg(path, vc, 16, aof.SyncNo))
	if err != nil {
		t.Fatal(err)
	}
	ctx := Ctx{Actor: "app", Purpose: "service"}
	var order []string
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("torn%02d", i)
		order = append(order, k)
		if err := st.Put(ctx, k, []byte("val-"+k), PutOptions{Owner: "dora", Purposes: []string{"service"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Log().Sync(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, cut := range []int{len(full), len(full) - 1, len(full) - 7, len(full) / 2, len(full) / 4, 3, 0} {
		if cut < 0 {
			continue
		}
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			tornPath := filepath.Join(t.TempDir(), "torn.aof")
			if err := os.WriteFile(tornPath, full[:cut], 0o600); err != nil {
				t.Fatal(err)
			}
			re, err := Open(crashCfg(tornPath, vc, 16, aof.SyncNo))
			if err != nil {
				t.Fatalf("torn journal rejected: %v", err)
			}
			defer re.Close()
			present := 0
			for i, k := range order {
				if re.Engine().Exists(k) {
					if present != i {
						t.Fatalf("key %s present but earlier key missing: survivors are not a prefix", k)
					}
					v, _ := re.Engine().Get(k)
					if string(v) != "val-"+k {
						t.Fatalf("key %s corrupted: %q", k, v)
					}
					present++
				}
			}
			if cut == len(full) && present != len(order) {
				t.Fatalf("untruncated replay lost keys: %d/%d", present, len(order))
			}
		})
	}
}
