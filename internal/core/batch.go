package core

import (
	"errors"
	"fmt"

	"gdprstore/internal/acl"
	"gdprstore/internal/audit"
	"gdprstore/internal/cryptoutil"
)

// The batch operations amortise the per-operation compliance overhead the
// paper measures (metadata writes, audit records, AOF appends, lock
// round-trips): a batch of N keys takes the store lock once, appends to the
// AOF once (MSET/MSETEX for the data, GMETAB for the metadata), and emits
// one audit record, instead of paying each cost N times.

// BatchEntry is one key/value pair of a batch write.
type BatchEntry struct {
	Key   string
	Value []byte
}

// BatchGetResult is one positional result of GetBatch. Err is nil for a
// successful read, ErrNotFound for a missing key, and a policy error
// (ErrPurposeDenied, ErrDenied, ErrErased) when that key was refused.
type BatchGetResult struct {
	Value []byte
	Err   error
}

// PutBatch stores every entry under the supplied GDPR metadata (shared by
// the whole batch, like a bulk import of records for one data subject). It
// is the amortised form of calling Put once per entry: one lock
// acquisition, one ACL decision, one retention/location resolution, one
// AOF data record, one metadata record, one audit record.
func (s *Store) PutBatch(ctx Ctx, entries []BatchEntry, opts PutOptions) error {
	if len(entries) == 0 {
		return nil
	}
	keys := make([]string, len(entries))
	vals := make([][]byte, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
		vals[i] = e.Value
	}
	if !s.cfg.Compliant {
		s.db.SetBatch(keys, vals)
		return nil
	}
	// Owner stripe first, then every distinct key stripe in ascending
	// order — the multi-key acquisition protocol of locks.go. Holding all
	// the batch's key stripes keeps the batch atomic with respect to
	// per-key operations on its keys.
	os := s.ownerStripeFor(opts.Owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	stripes := s.keyStripesFor(keys)
	s.lockKeyStripes(stripes)
	defer s.unlockKeyStripes(stripes)
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.check(ctx, acl.OpWrite, opts.Owner, "MPUT", keys[0]); err != nil {
		return err
	}

	full := s.cfg.Capability == CapabilityFull
	if full && opts.Owner == "" {
		return ErrNoOwner
	}

	purposes := opts.Purposes
	if len(purposes) == 0 && ctx.Purpose != "" {
		purposes = []string{ctx.Purpose}
	}

	deadline := s.effectiveDeadline(opts, purposes)
	if s.cfg.requireTTL && deadline.IsZero() {
		return ErrNoTTL
	}

	loc := opts.Location
	if loc == "" {
		loc = s.cfg.DefaultLocation
	}
	if len(s.cfg.AllowedLocations) > 0 && full {
		ok := false
		for _, a := range s.cfg.AllowedLocations {
			if a == loc {
				ok = true
				break
			}
		}
		if !ok {
			s.auditOp(audit.Record{
				Actor: ctx.Actor, Op: "MPUT", Key: keys[0], Owner: opts.Owner,
				Purpose: ctx.Purpose, Outcome: audit.OutcomeDenied,
				Detail: "location " + loc + " not permitted",
			})
			return fmt.Errorf("%w: %q", ErrLocationDenied, loc)
		}
	}

	meta := Metadata{
		Owner:              opts.Owner,
		Purposes:           purposes,
		Origin:             opts.Origin,
		SharedWith:         append([]string(nil), opts.SharedWith...),
		Expiry:             deadline,
		Location:           loc,
		AutomatedDecisions: opts.AutomatedDecisions,
		Created:            s.cfg.Config.Clock.Now(),
	}
	meta.Objections = append(meta.Objections, s.objectionsOfLocked(os, opts.Owner)...)

	stored := vals
	if s.keyring != nil && opts.Owner != "" {
		k, wrapped, created, err := s.keyring.Ensure(opts.Owner)
		if err != nil {
			if err == cryptoutil.ErrUnknownKey {
				return fmt.Errorf("%w: %s", ErrErased, opts.Owner)
			}
			return err
		}
		// Stamped under the owner stripe, like Put: no Forget can advance
		// the epoch between Ensure and the seal below.
		meta.KeyEpoch = s.keyring.Epoch(opts.Owner)
		if created {
			if err := s.appendLog(opKey, []byte(opts.Owner), wrapped, epochArg(meta.KeyEpoch)); err != nil {
				return err
			}
		}
		stored = make([][]byte, len(vals))
		for i, v := range vals {
			sealed, err := cryptoutil.Seal(k, v, []byte(keys[i]))
			if err != nil {
				return err
			}
			stored[i] = sealed
		}
	}

	if deadline.IsZero() {
		s.db.SetBatch(keys, stored)
	} else {
		s.db.SetBatchEX(keys, stored, deadline)
	}
	mb, err := meta.encode()
	if err != nil {
		return err
	}
	// One GMETAB record covers the whole batch: the shared metadata once,
	// then the key list.
	logArgs := make([][]byte, 0, len(keys)+1)
	logArgs = append(logArgs, mb)
	for _, k := range keys {
		s.ix.put(k, meta.clone())
		logArgs = append(logArgs, []byte(k))
	}
	if err := s.appendLog(opMetaBatch, logArgs...); err != nil {
		return err
	}
	s.auditOp(audit.Record{
		Actor: ctx.Actor, Op: "MPUT", Key: keys[0], Owner: opts.Owner,
		Purpose: ctx.Purpose, Outcome: audit.OutcomeOK,
		Detail: fmt.Sprintf("batch=%d", len(keys)),
	})
	return nil
}

// GetBatch reads every key under one lock acquisition, enforcing purpose
// limitation and access control per key. Results are positional; a refused
// or missing key does not fail the rest of the batch. Denials are audited
// individually (they are evidence); successful reads are audited once for
// the whole batch when read auditing is on.
func (s *Store) GetBatch(ctx Ctx, keys []string) ([]BatchGetResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([]BatchGetResult, len(keys))
	if !s.cfg.Compliant {
		vals, present := s.db.GetBatch(keys)
		for i := range keys {
			if present[i] {
				out[i].Value = vals[i]
			} else {
				out[i].Err = ErrNotFound
			}
		}
		return out, nil
	}
	served, missing := 0, 0
	for i, key := range keys {
		// Each key is read under its own stripe; the batch as a whole is
		// not an atomic snapshot (per-key reads never were, either). The
		// closed check happens under the stripe so Close's lockAll
		// barrier can wait this read out, like every other data-path op.
		ks := s.keyStripeFor(key)
		ks.Lock()
		if s.closed.Load() {
			ks.Unlock()
			return nil, ErrClosed
		}
		v, _, err := s.getLocked(ctx, key)
		ks.Unlock()
		out[i] = BatchGetResult{Value: v, Err: err}
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrNotFound):
			missing++
		}
	}
	if s.cfg.auditReads {
		// Denials were already audited per key by getLocked; this record
		// summarises the data that was actually served (or found missing).
		outcome := audit.OutcomeOK
		if served == 0 {
			outcome = audit.OutcomeMissing
		}
		s.auditOp(audit.Record{
			Actor: ctx.Actor, Op: "MGET", Key: keys[0],
			Purpose: ctx.Purpose, Outcome: outcome,
			Detail: fmt.Sprintf("batch=%d served=%d missing=%d denied=%d",
				len(keys), served, missing, len(keys)-served-missing),
		})
	}
	return out, nil
}

// getLocked is the shared single-key read body — ACL check, purpose
// limitation, ghost-metadata cleanup, decryption — used by both Get and
// GetBatch. Callers hold key's stripe and handle read auditing; denials
// are audited here (they are evidence regardless of the calling path). The
// owner is returned for the caller's audit records.
func (s *Store) getLocked(ctx Ctx, key string) (value []byte, owner string, err error) {
	meta, hasMeta := s.metaLive(key)
	owner = meta.Owner
	if hasMeta && s.recordDead(meta) {
		// Crypto-erased but not yet reclaimed by the sweep: the record is
		// already gone for Article 17 purposes, so serve exactly what a
		// completed sweep would.
		return nil, owner, ErrNotFound
	}
	if err := s.check(ctx, acl.OpRead, owner, "GET", key); err != nil {
		return nil, owner, err
	}
	if hasMeta && s.cfg.Capability == CapabilityFull {
		if !meta.PermitsPurpose(ctx.Purpose) {
			s.auditOp(audit.Record{
				Actor: ctx.Actor, Op: "GET", Key: key, Owner: owner,
				Purpose: ctx.Purpose, Outcome: audit.OutcomeDenied,
				Detail: "purpose not permitted",
			})
			return nil, owner, fmt.Errorf("%w: %q", ErrPurposeDenied, ctx.Purpose)
		}
	}
	v, ok := s.db.Get(key)
	if !ok {
		s.ix.del(key) // ghost metadata from lazy expiry
		return nil, owner, ErrNotFound
	}
	if s.keyring != nil && owner != "" {
		k, err := s.keyring.KeyFor(owner)
		if err != nil {
			return nil, owner, fmt.Errorf("%w: %s", ErrErased, owner)
		}
		pt, err := cryptoutil.Open(k, v, []byte(key))
		if err != nil {
			return nil, owner, err
		}
		v = pt
	}
	return v, owner, nil
}
