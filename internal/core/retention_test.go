package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRetentionPolicyEffective(t *testing.T) {
	p := &RetentionPolicy{
		PerPurpose: map[string]time.Duration{
			"billing":   90 * 24 * time.Hour,
			"analytics": 30 * 24 * time.Hour,
		},
		Default: 7 * 24 * time.Hour,
		Cap:     365 * 24 * time.Hour,
	}
	cases := []struct {
		name      string
		purposes  []string
		requested time.Duration
		want      time.Duration
	}{
		{"single purpose", []string{"billing"}, 0, 90 * 24 * time.Hour},
		{"two purposes take the tighter", []string{"billing", "analytics"}, 0, 30 * 24 * time.Hour},
		{"request tighter than policy", []string{"billing"}, time.Hour, time.Hour},
		{"request looser than policy", []string{"billing"}, 1000 * 24 * time.Hour, 90 * 24 * time.Hour},
		{"uncovered purpose uses default", []string{"support"}, 0, 7 * 24 * time.Hour},
		{"no purposes uses default", nil, 0, 7 * 24 * time.Hour},
		{"cap binds huge requests", []string{"support"}, 9000 * 24 * time.Hour, 7 * 24 * time.Hour},
	}
	for _, c := range cases {
		if got := p.Effective(c.purposes, c.requested); got != c.want {
			t.Errorf("%s: Effective = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetentionPolicyNilAndEmpty(t *testing.T) {
	var p *RetentionPolicy
	if got := p.Effective([]string{"x"}, time.Hour); got != time.Hour {
		t.Fatalf("nil policy = %v", got)
	}
	empty := &RetentionPolicy{}
	if got := empty.Effective([]string{"x"}, 0); got != 0 {
		t.Fatalf("empty policy unbounded = %v", got)
	}
	if got := empty.Effective([]string{"x"}, time.Hour); got != time.Hour {
		t.Fatalf("empty policy passthrough = %v", got)
	}
}

func TestRetentionPolicyMonotone(t *testing.T) {
	// Property: Effective never exceeds the cap (when set) nor any
	// applicable per-purpose bound.
	f := func(reqSecs uint32, billingSecs, capSecs uint16) bool {
		p := &RetentionPolicy{
			PerPurpose: map[string]time.Duration{"billing": time.Duration(billingSecs) * time.Second},
			Cap:        time.Duration(capSecs) * time.Second,
		}
		got := p.Effective([]string{"billing"}, time.Duration(reqSecs)*time.Second)
		if p.Cap > 0 && got > p.Cap {
			return false
		}
		if b := p.PerPurpose["billing"]; b > 0 && got > b {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPutHonoursRetentionPolicy(t *testing.T) {
	s := newFullStore(t, func(c *Config) { c.DefaultTTL = 0 })
	s.SetRetentionPolicy(&RetentionPolicy{
		PerPurpose: map[string]time.Duration{"analytics": time.Hour},
		Default:    48 * time.Hour,
	})
	// Purpose-covered record gets the purpose bound even with a looser
	// request.
	err := s.Put(ctlCtx, "a", []byte("v"), PutOptions{
		Owner: "alice", Purposes: []string{"analytics"}, TTL: 100 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.TTL("a")
	if d != time.Hour {
		t.Fatalf("analytics TTL = %v, want 1h (policy must tighten)", d)
	}
	// Uncovered record gets the default.
	if err := s.Put(ctlCtx, "b", []byte("v"), PutOptions{Owner: "alice", Purposes: []string{"support"}}); err != nil {
		t.Fatal(err)
	}
	d, _ = s.TTL("b")
	if d != 48*time.Hour {
		t.Fatalf("default TTL = %v, want 48h", d)
	}
	// Metadata mirrors the effective deadline.
	m, _ := s.Metadata(ctlCtx, "a")
	want := vclock(s).Now().Add(time.Hour)
	if !m.Expiry.Equal(want) {
		t.Fatalf("meta expiry = %v, want %v", m.Expiry, want)
	}
}

func TestPolicySatisfiesRequireTTL(t *testing.T) {
	// With a policy default in place, writes without explicit TTLs are
	// acceptable under full compliance.
	s := newFullStore(t, func(c *Config) { c.DefaultTTL = 0 })
	if err := s.Put(ctlCtx, "x", []byte("v"), PutOptions{Owner: "alice"}); !errors.Is(err, ErrNoTTL) {
		t.Fatalf("pre-policy err = %v", err)
	}
	s.SetRetentionPolicy(&RetentionPolicy{Default: time.Hour})
	if err := s.Put(ctlCtx, "x", []byte("v"), PutOptions{Owner: "alice"}); err != nil {
		t.Fatalf("policy-backed write rejected: %v", err)
	}
}

func TestPolicyCapsAbsoluteDeadline(t *testing.T) {
	s := newFullStore(t, nil)
	s.SetRetentionPolicy(&RetentionPolicy{Cap: time.Hour})
	farFuture := vclock(s).Now().Add(1000 * time.Hour)
	if err := s.Put(ctlCtx, "k", []byte("v"), PutOptions{Owner: "alice", ExpireAt: farFuture}); err != nil {
		t.Fatal(err)
	}
	d, _ := s.TTL("k")
	if d > time.Hour {
		t.Fatalf("cap did not bind ExpireAt: TTL = %v", d)
	}
}

func TestRetentionForDisclosure(t *testing.T) {
	s := newFullStore(t, nil)
	s.SetRetentionPolicy(&RetentionPolicy{
		PerPurpose: map[string]time.Duration{"billing": 2 * time.Hour},
	})
	if got := s.RetentionFor([]string{"billing"}, 0); got != 2*time.Hour {
		t.Fatalf("RetentionFor = %v", got)
	}
	// Falls back to config default for uncovered purposes.
	if got := s.RetentionFor([]string{"other"}, 0); got != 24*time.Hour {
		t.Fatalf("RetentionFor default = %v", got)
	}
}
