// Package clock provides a time source abstraction so that time-driven
// subsystems (TTL expiry, audit batching, AOF fsync-every-second) can run
// against either the wall clock or a deterministic virtual clock.
//
// The virtual clock is what lets this repository reproduce Figure 2 of the
// paper — an experiment that takes ~3 hours of wall time on real Redis — in
// milliseconds: the lazy probabilistic expiry algorithm's erasure delay is a
// function of the number of 100 ms cycles executed, not of real time, so
// advancing a simulated clock preserves the measured delay exactly.
package clock

import (
	"sync"
	"time"
)

// Clock is a minimal time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Sleeper is implemented by clocks that can block a caller. The wall clock
// sleeps for real; the virtual clock advances itself instead.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Wall is the real time source backed by time.Now.
type Wall struct{}

// NewWall returns the wall-clock time source.
func NewWall() *Wall { return &Wall{} }

// Now implements Clock.
func (*Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (*Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Sleeper by blocking for d.
func (*Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. The zero value is not usable; use
// NewVirtual. Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration {
	return v.Now().Sub(t)
}

// Advance moves the clock forward by d. Negative durations are ignored so
// the clock is monotonic.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Sleep implements Sleeper by advancing the clock — a virtual sleeper never
// blocks, which is what makes simulated experiments fast.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Set jumps the clock to t if t is not before the current time.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

var _ Clock = (*Wall)(nil)
var _ Clock = (*Virtual)(nil)
var _ Sleeper = (*Wall)(nil)
var _ Sleeper = (*Virtual)(nil)
