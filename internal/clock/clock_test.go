package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallNow(t *testing.T) {
	w := NewWall()
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestWallSince(t *testing.T) {
	w := NewWall()
	start := w.Now()
	if d := w.Since(start); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestVirtualAdvance(t *testing.T) {
	start := time.Date(2019, 5, 16, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", v.Now(), start)
	}
	v.Advance(90 * time.Second)
	want := start.Add(90 * time.Second)
	if !v.Now().Equal(want) {
		t.Fatalf("after Advance Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualNegativeAdvanceIgnored(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	v.Advance(-time.Hour)
	if !v.Now().Equal(start) {
		t.Fatalf("negative advance moved the clock to %v", v.Now())
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Hour) // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if got := v.Now(); !got.Equal(time.Unix(3600, 0)) {
		t.Fatalf("Sleep advanced to %v, want %v", got, time.Unix(3600, 0))
	}
}

func TestVirtualSetMonotonic(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	v.Set(time.Unix(50, 0)) // backwards: ignored
	if !v.Now().Equal(time.Unix(100, 0)) {
		t.Fatalf("Set moved clock backwards to %v", v.Now())
	}
	v.Set(time.Unix(200, 0))
	if !v.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Set failed to move clock forward, now %v", v.Now())
	}
}

func TestVirtualSince(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	mark := v.Now()
	v.Advance(42 * time.Second)
	if d := v.Since(mark); d != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", d)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Unix(10, 0)
	if !v.Now().Equal(want) {
		t.Fatalf("concurrent advances lost updates: now %v, want %v", v.Now(), want)
	}
}
