package audit

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestPipelineStress exercises every moving part of the pipeline at once —
// concurrent appenders across policies, queries racing the workers, stat
// snapshots, and a Close racing it all — primarily for the CI race job
// (`go test -race ./...`), which runs it against the full worker pool.
func TestPipelineStress(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mode   SyncMode
		policy Backpressure
	}{
		{"batched-block", SyncBatched, BackpressureBlock},
		{"strict-block", SyncEveryOp, BackpressureBlock},
		{"none-drop", SyncNone, BackpressureDrop},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := Open(Options{
				Path:         filepath.Join(t.TempDir(), "audit.log"),
				Mode:         tc.mode,
				Workers:      4,
				QueueDepth:   64,
				Backpressure: tc.policy,
				MaskKey:      []byte("stress-mask"),
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Appenders.
			for i := 0; i < 6; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_, err := tr.Append(Record{Actor: "stress", Op: "SET", Key: "k", Owner: "o", Outcome: OutcomeOK})
						if err != nil && !errors.Is(err, ErrDropped) {
							if errors.Is(err, ErrClosed) {
								return
							}
							t.Errorf("append: %v", err)
							return
						}
					}
				}()
			}
			// Readers racing the workers.
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := tr.Query(Filter{Owner: "o"}); err != nil &&
							!errors.Is(err, ErrDrainTimeout) {
							t.Errorf("query: %v", err)
							return
						}
						_ = tr.Stats()
					}
				}()
			}
			time.Sleep(30 * time.Millisecond)
			if err := tr.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			close(stop)
			wg.Wait()
			st := tr.Stats()
			if st.Processed != st.Enqueued {
				t.Fatalf("processed %d != enqueued %d after close", st.Processed, st.Enqueued)
			}
		})
	}
}
