package audit

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"gdprstore/internal/cryptoutil"
)

// Filter selects audit records. Zero-valued fields match everything.
type Filter struct {
	// From/To bound the record timestamp: From inclusive, To exclusive.
	// Zero times are unbounded.
	From, To time.Time
	// Actor matches the issuing principal exactly.
	Actor string
	// Owner matches the affected data subject exactly.
	Owner string
	// Key matches the affected key exactly.
	Key string
	// Op matches the operation name exactly.
	Op string
	// Outcome matches the operation outcome exactly.
	Outcome Outcome
}

// Match reports whether r passes the filter.
func (f Filter) Match(r Record) bool {
	if !f.From.IsZero() && r.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !r.Time.Before(f.To) {
		return false
	}
	if f.Actor != "" && r.Actor != f.Actor {
		return false
	}
	if f.Owner != "" && r.Owner != f.Owner {
		return false
	}
	if f.Key != "" && r.Key != f.Key {
		return false
	}
	if f.Op != "" && r.Op != f.Op {
		return false
	}
	if f.Outcome != "" && r.Outcome != f.Outcome {
		return false
	}
	return true
}

// Query returns matching records in sequence order. It serves from the
// durable file when the trail is file-backed (so results are complete
// even past the memory cap), falling back to the in-memory ring
// otherwise. The pipeline is drained first so a query observes every
// record appended before the call, and pseudonymized fields are resolved
// back through the engine-held masker table — the query path is inside
// the engine, so filters match on real keys and owners while every sink
// (and the file itself) holds pseudonyms only.
func (t *Trail) Query(f Filter) ([]Record, error) {
	var out []Record
	err := t.Scan(func(r Record) error {
		if f.Match(r) {
			out = append(out, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if out == nil {
		out = make([]Record, 0)
	}
	return out, nil
}

// Scan streams every record in the trail through fn in log order,
// unmasking pseudonymized fields where the engine still holds the
// mapping.
func (t *Trail) Scan(fn func(Record) error) error {
	if err := t.barrier(); err != nil {
		return err
	}
	emit := fn
	if t.masker != nil {
		emit = func(r Record) error { return fn(t.masker.Unmask(r)) }
	}
	if t.file == nil {
		if t.mem == nil {
			return nil
		}
		for _, r := range t.mem.Records() {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}
	// Flush buffered bytes (no fsync needed — the scan only requires
	// read visibility, not durability).
	if err := t.file.Flush(); err != nil {
		t.setErr(err)
		return err
	}
	return scanFile(t.file.Path(), t.file.key, emit)
}

func scanFile(path string, key []byte, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("audit: scan: %w", err)
	}
	defer f.Close()
	var src io.Reader = f
	if key != nil {
		c, cerr := cryptoutil.NewOffsetCipher(key)
		if cerr != nil {
			return cerr
		}
		src = cryptoutil.NewReader(f, c)
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// A torn tail line is tolerated (crash mid-append); corruption
			// mid-file is not.
			if !sc.Scan() {
				return nil
			}
			return fmt.Errorf("audit: corrupt record: %w", err)
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return sc.Err()
}

// BreachReport aggregates the audit evidence a controller must produce
// within 72 hours of a breach (Articles 33/34): which subjects' data was
// touched, by whom, through which operations, over the incident window.
type BreachReport struct {
	// Window is the [From, To) interval examined.
	From, To time.Time
	// Records is the total number of audited operations in the window.
	Records int
	// AffectedOwners maps each data subject to the number of operations
	// that touched their data.
	AffectedOwners map[string]int
	// Actors maps each principal to its operation count in the window.
	Actors map[string]int
	// Ops maps operation names to counts.
	Ops map[string]int
	// Denied is the number of denied operations (attempted violations).
	Denied int
}

// Breach builds a BreachReport for the given window.
func (t *Trail) Breach(from, to time.Time) (BreachReport, error) {
	rep := BreachReport{
		From:           from,
		To:             to,
		AffectedOwners: make(map[string]int),
		Actors:         make(map[string]int),
		Ops:            make(map[string]int),
	}
	recs, err := t.Query(Filter{From: from, To: to})
	if err != nil {
		return rep, err
	}
	for _, r := range recs {
		rep.Records++
		if r.Owner != "" {
			rep.AffectedOwners[r.Owner]++
		}
		if r.Actor != "" {
			rep.Actors[r.Actor]++
		}
		rep.Ops[r.Op]++
		if r.Outcome == OutcomeDenied {
			rep.Denied++
		}
	}
	return rep, nil
}
