package audit

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gdprstore/internal/clock"
)

func tempTrail(t *testing.T, opts Options) *Trail {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "audit.log")
	}
	tr, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestAppendAssignsSeqAndTime(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1000, 0))
	tr := tempTrail(t, Options{Clock: vc})
	r1, err := tr.Append(Record{Actor: "a", Op: "GET", Outcome: OutcomeOK})
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(time.Second)
	r2, _ := tr.Append(Record{Actor: "a", Op: "SET", Outcome: OutcomeOK})
	if r1.Seq != 1 || r2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", r1.Seq, r2.Seq)
	}
	if !r2.Time.After(r1.Time) {
		t.Fatal("timestamps not monotone")
	}
}

func TestSeqRecoveredAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	tr, _ := Open(Options{Path: path})
	tr.Append(Record{Op: "A", Outcome: OutcomeOK})
	tr.Append(Record{Op: "B", Outcome: OutcomeOK})
	tr.Close()
	tr2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	r, _ := tr2.Append(Record{Op: "C", Outcome: OutcomeOK})
	if r.Seq != 3 {
		t.Fatalf("resumed seq = %d, want 3", r.Seq)
	}
}

func TestQueryFilters(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	tr := tempTrail(t, Options{Clock: vc})
	tr.Append(Record{Actor: "svc1", Op: "GET", Key: "k1", Owner: "alice", Outcome: OutcomeOK})
	vc.Advance(time.Minute)
	tr.Append(Record{Actor: "svc2", Op: "SET", Key: "k2", Owner: "bob", Outcome: OutcomeOK})
	vc.Advance(time.Minute)
	tr.Append(Record{Actor: "svc1", Op: "DEL", Key: "k1", Owner: "alice", Outcome: OutcomeDenied})

	byActor, err := tr.Query(Filter{Actor: "svc1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byActor) != 2 {
		t.Fatalf("actor filter: %d records", len(byActor))
	}
	byOwner, _ := tr.Query(Filter{Owner: "bob"})
	if len(byOwner) != 1 || byOwner[0].Op != "SET" {
		t.Fatalf("owner filter: %+v", byOwner)
	}
	byOutcome, _ := tr.Query(Filter{Outcome: OutcomeDenied})
	if len(byOutcome) != 1 || byOutcome[0].Op != "DEL" {
		t.Fatalf("outcome filter: %+v", byOutcome)
	}
	window, _ := tr.Query(Filter{From: time.Unix(30, 0), To: time.Unix(90, 0)})
	if len(window) != 1 || window[0].Op != "SET" {
		t.Fatalf("window filter: %+v", window)
	}
}

func TestQueryServesBeyondMemoryCap(t *testing.T) {
	tr := tempTrail(t, Options{MemoryCap: 4})
	for i := 0; i < 20; i++ {
		tr.Append(Record{Op: fmt.Sprintf("OP%d", i), Outcome: OutcomeOK})
	}
	all, err := tr.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("file-backed query returned %d, want 20 (memory cap must not truncate)", len(all))
	}
	if all[0].Op != "OP0" || all[19].Op != "OP19" {
		t.Fatal("records out of order")
	}
}

func TestInMemoryTrail(t *testing.T) {
	tr, err := Open(Options{}) // no path
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Append(Record{Op: "GET", Outcome: OutcomeOK})
	got, err := tr.Query(Filter{})
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
	if tr.Size() != 0 {
		t.Fatal("in-memory trail reported file size")
	}
}

func TestEncryptedTrail(t *testing.T) {
	key := bytes.Repeat([]byte{5}, 32)
	path := filepath.Join(t.TempDir(), "audit.enc")
	tr, err := Open(Options{Path: path, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(Record{Actor: "svc", Op: "GET", Key: "super-secret-key-name", Outcome: OutcomeOK})
	tr.Sync()
	raw, _ := os.ReadFile(path)
	if bytes.Contains(raw, []byte("super-secret-key-name")) {
		t.Fatal("plaintext key name visible in encrypted trail")
	}
	got, err := tr.Query(Filter{})
	if err != nil || len(got) != 1 {
		t.Fatalf("query over encrypted trail: %v, %v", got, err)
	}
	tr.Close()

	tr2, err := Open(Options{Path: path, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Seq() != 1 {
		t.Fatalf("seq after encrypted reopen = %d", tr2.Seq())
	}
}

func TestSyncEveryOpCounts(t *testing.T) {
	tr := tempTrail(t, Options{Mode: SyncEveryOp})
	tr.Append(Record{Op: "A", Outcome: OutcomeOK})
	tr.Append(Record{Op: "B", Outcome: OutcomeOK})
	if tr.Syncs() != 2 {
		t.Fatalf("syncs = %d, want 2", tr.Syncs())
	}
}

func TestScanOrder(t *testing.T) {
	tr := tempTrail(t, Options{})
	for i := 0; i < 10; i++ {
		tr.Append(Record{Op: fmt.Sprintf("OP%d", i), Outcome: OutcomeOK})
	}
	var seqs []uint64
	if err := tr.Scan(func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("scan order broken at %d: %v", i, seqs)
		}
	}
}

func TestBreachReport(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	tr := tempTrail(t, Options{Clock: vc})
	tr.Append(Record{Actor: "attacker", Op: "GET", Owner: "alice", Outcome: OutcomeOK})
	tr.Append(Record{Actor: "attacker", Op: "GET", Owner: "bob", Outcome: OutcomeOK})
	tr.Append(Record{Actor: "attacker", Op: "DEL", Owner: "bob", Outcome: OutcomeDenied})
	vc.Advance(time.Hour)
	tr.Append(Record{Actor: "normal", Op: "GET", Owner: "carol", Outcome: OutcomeOK})

	rep, err := tr.Breach(time.Unix(0, 0), time.Unix(1800, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 3 {
		t.Fatalf("records = %d, want 3", rep.Records)
	}
	if rep.AffectedOwners["alice"] != 1 || rep.AffectedOwners["bob"] != 2 {
		t.Fatalf("owners = %v", rep.AffectedOwners)
	}
	if rep.Denied != 1 {
		t.Fatalf("denied = %d", rep.Denied)
	}
	if rep.Actors["attacker"] != 3 {
		t.Fatalf("actors = %v", rep.Actors)
	}
	if _, ok := rep.AffectedOwners["carol"]; ok {
		t.Fatal("out-of-window record included")
	}
}

func TestConcurrentAppendsUniqueSeqs(t *testing.T) {
	tr := tempTrail(t, Options{})
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r, err := tr.Append(Record{Op: "X", Outcome: OutcomeOK})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if seen[r.Seq] {
					t.Errorf("duplicate seq %d", r.Seq)
				}
				seen[r.Seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if tr.Seq() != 800 {
		t.Fatalf("final seq = %d", tr.Seq())
	}
}

func TestAppendAfterClose(t *testing.T) {
	tr, _ := Open(Options{})
	tr.Close()
	if _, err := tr.Append(Record{Op: "X"}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	tr, _ := Open(Options{Path: path})
	tr.Append(Record{Op: "A", Outcome: OutcomeOK})
	tr.Append(Record{Op: "B", Outcome: OutcomeOK})
	tr.Close()
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-5], 0o600) // torn final line
	tr2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer tr2.Close()
	got, err := tr2.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Op != "A" {
		t.Fatalf("torn-tail query = %+v", got)
	}
}

func TestModeStrings(t *testing.T) {
	if SyncEveryOp.String() != "every-op" || SyncBatched.String() != "batched-1s" || SyncNone.String() != "none" {
		t.Fatal("mode names wrong")
	}
}
