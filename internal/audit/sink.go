package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"gdprstore/internal/cryptoutil"
)

// Sink consumes serialized audit records. The pipeline's workers call
// Write once per record with both the decoded record and its JSONL
// serialization (no trailing newline), so in-engine sinks can keep the
// struct and export sinks can forward bytes without re-marshalling.
// Implementations must be safe for concurrent use: the pipeline runs
// several workers against one sink.
type Sink interface {
	// Write appends one record.
	Write(r Record, line []byte) error
	// Sync forces everything written so far to stable storage (or the
	// remote end). Strict mode calls it before acknowledging an append.
	Sync() error
	// Close releases the sink after a final flush.
	Close() error
}

// FileSink persists records as (optionally encrypted) JSONL — the same
// on-disk format the pre-pipeline Trail wrote, so existing trails replay
// and new trails stay readable by scanFile.
type FileSink struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	dirty bool
	size  int64
	syncs uint64
	path  string
	key   []byte
}

// NewFileSink opens or appends to the trail file at path. A non-nil key
// encrypts the file at rest (32 bytes, AES-CTR keyed by byte offset).
func NewFileSink(path string, key []byte) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("audit: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: stat: %w", err)
	}
	s := &FileSink{f: f, size: st.Size(), path: path, key: key}
	var w io.Writer = f
	if key != nil {
		c, err := cryptoutil.NewOffsetCipher(key)
		if err != nil {
			f.Close()
			return nil, err
		}
		w = cryptoutil.NewWriter(f, c, st.Size())
	}
	s.w = bufio.NewWriterSize(w, 64*1024)
	return s, nil
}

// Write appends one serialized record.
func (s *FileSink) Write(_ Record, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("audit: file sink closed")
	}
	n, err := s.w.Write(line)
	s.size += int64(n)
	if err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	s.size++
	s.dirty = true
	return nil
}

// Flush pushes buffered bytes to the OS without forcing an fsync — enough
// for a reader of the file to observe them.
func (s *FileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil || !s.dirty {
		return nil
	}
	return s.w.Flush()
}

// Sync flushes and fsyncs.
func (s *FileSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *FileSink) syncLocked() error {
	if s.f == nil || !s.dirty {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	s.syncs++
	return nil
}

// Close flushes, fsyncs and closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	errSync := s.syncLocked()
	errClose := s.f.Close()
	s.f = nil
	if errSync != nil {
		return errSync
	}
	return errClose
}

// Size returns the logical file size in bytes.
func (s *FileSink) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Syncs returns the number of fsyncs issued.
func (s *FileSink) Syncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// Path returns the trail file path.
func (s *FileSink) Path() string { return s.path }

// recoverTailWindow bounds how far back RecoverLastSeq reads. Records are
// small (a few hundred bytes) and pipeline reordering is bounded by
// workers × batch size, so the highest sequence number always sits well
// inside the final megabyte.
const recoverTailWindow = 1 << 20

// RecoverLastSeq returns the highest sequence number persisted in the
// trail file at path, reading only the final recoverTailWindow bytes
// instead of scanning the whole file (O(1) startup on large trails). A
// missing file returns 0. Torn tail lines (crash mid-append) are skipped;
// because pipeline workers may complete out of order, the maximum seq in
// the window is returned, not the last line's.
func RecoverLastSeq(path string, key []byte) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("audit: recover: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("audit: recover: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return 0, nil
	}
	off := int64(0)
	if size > recoverTailWindow {
		off = size - recoverTailWindow
	}
	buf := make([]byte, size-off)
	if _, err := f.ReadAt(buf, off); err != nil && !errors.Is(err, io.EOF) {
		return 0, fmt.Errorf("audit: recover: %w", err)
	}
	if key != nil {
		c, err := cryptoutil.NewOffsetCipher(key)
		if err != nil {
			return 0, err
		}
		c.Apply(buf, off)
	}
	if off > 0 {
		// The window almost surely starts mid-line; drop the fragment.
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			buf = buf[i+1:]
		} else {
			buf = nil
		}
	}
	var last uint64
	for len(buf) > 0 {
		line := buf
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			line, buf = buf[:i], buf[i+1:]
		} else {
			buf = nil // torn tail (no newline): still try to parse
		}
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn or corrupt line; seq recovery is best-effort max
		}
		if r.Seq > last {
			last = r.Seq
		}
	}
	return last, nil
}

// MemSink keeps a bounded ring of the most recent records in memory — the
// in-engine sink query.go serves from when the trail has no file, and the
// fast tail for diagnostics when it does.
type MemSink struct {
	mu  sync.Mutex
	buf []Record
	cap int
}

// NewMemSink returns a ring bounded to capacity records.
func NewMemSink(capacity int) *MemSink {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &MemSink{cap: capacity}
}

// Write appends the record, evicting the oldest half in one copy when the
// ring is full (amortised O(1)).
func (s *MemSink) Write(r Record, _ []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) >= s.cap {
		half := len(s.buf) / 2
		copy(s.buf, s.buf[half:])
		s.buf = s.buf[:len(s.buf)-half]
	}
	s.buf = append(s.buf, r)
	return nil
}

// Sync is a no-op: memory is as durable as it gets.
func (s *MemSink) Sync() error { return nil }

// Close is a no-op.
func (s *MemSink) Close() error { return nil }

// Records returns a copy of the retained tail.
func (s *MemSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.buf...)
}

// MultiSink fans every call out to all children. Errors do not short-
// circuit: every child sees every record, and the joined error is
// reported so one failing export sink cannot silence the durable one.
type MultiSink struct {
	sinks []Sink
}

// NewMultiSink composes sinks; nils are skipped.
func NewMultiSink(sinks ...Sink) *MultiSink {
	m := &MultiSink{}
	for _, s := range sinks {
		if s != nil {
			m.sinks = append(m.sinks, s)
		}
	}
	return m
}

// Write fans out to every child.
func (m *MultiSink) Write(r Record, line []byte) error {
	var errs []error
	for _, s := range m.sinks {
		if err := s.Write(r, line); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Sync fans out to every child.
func (m *MultiSink) Sync() error {
	var errs []error
	for _, s := range m.sinks {
		if err := s.Sync(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close fans out to every child.
func (m *MultiSink) Close() error {
	var errs []error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
