package audit

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Socket sink tuning. Dial and write bound how long a worker can stall on
// a dead collector; the backoff caps how hard a flapping collector is
// re-dialled.
const (
	socketDialTimeout  = 2 * time.Second
	socketWriteTimeout = 5 * time.Second
	socketBackoffMin   = 100 * time.Millisecond
	socketBackoffMax   = 30 * time.Second
)

// SocketSink exports the trail as line-delimited JSON over a stream
// socket (a SIEM / log-collector feed). It is deliberately best-effort:
// a write failure closes the connection, the next write re-dials behind
// exponential backoff, and lines offered while disconnected are counted
// (Dropped) and reported as errors for the pipeline's sink-error counter
// — the durable FileSink, not the export feed, is the compliance record.
//
// Records reaching a SocketSink have already passed the Masker (when one
// is configured), so the external collector never sees raw PII.
type SocketSink struct {
	network string
	addr    string

	mu       sync.Mutex
	conn     net.Conn
	nextDial time.Time
	backoff  time.Duration
	dropped  uint64
	closed   bool
}

// NewSocketSink parses spec — "tcp://host:port" or "unix:///path" — and
// returns a sink that connects lazily on first write.
func NewSocketSink(spec string) (*SocketSink, error) {
	var network, addr string
	switch {
	case strings.HasPrefix(spec, "tcp://"):
		network, addr = "tcp", strings.TrimPrefix(spec, "tcp://")
	case strings.HasPrefix(spec, "unix://"):
		network, addr = "unix", strings.TrimPrefix(spec, "unix://")
	default:
		return nil, fmt.Errorf("audit: socket sink spec %q: want tcp://host:port or unix:///path", spec)
	}
	if addr == "" {
		return nil, fmt.Errorf("audit: socket sink spec %q: empty address", spec)
	}
	return &SocketSink{network: network, addr: addr, backoff: socketBackoffMin}, nil
}

// Write sends one line. Disconnected with backoff pending, the line is
// dropped and an error returned (counted, never blocking the pipeline
// beyond the dial/write timeouts).
func (s *SocketSink) Write(_ Record, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("audit: socket sink closed")
	}
	if s.conn == nil {
		if time.Now().Before(s.nextDial) {
			s.dropped++
			return fmt.Errorf("audit: socket sink %s://%s disconnected (backoff)", s.network, s.addr)
		}
		conn, err := net.DialTimeout(s.network, s.addr, socketDialTimeout)
		if err != nil {
			s.dropped++
			s.deferRedialLocked()
			return fmt.Errorf("audit: socket sink dial: %w", err)
		}
		s.conn = conn
		s.backoff = socketBackoffMin
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(socketWriteTimeout))
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := s.conn.Write(buf); err != nil {
		s.conn.Close()
		s.conn = nil
		s.dropped++
		s.deferRedialLocked()
		return fmt.Errorf("audit: socket sink write: %w", err)
	}
	return nil
}

// deferRedialLocked schedules the next dial attempt with exponential
// backoff.
func (s *SocketSink) deferRedialLocked() {
	s.nextDial = time.Now().Add(s.backoff)
	s.backoff *= 2
	if s.backoff > socketBackoffMax {
		s.backoff = socketBackoffMax
	}
}

// Sync is a no-op: the line protocol has no flush beyond the write.
func (s *SocketSink) Sync() error { return nil }

// Close closes the connection.
func (s *SocketSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.conn = nil
	return err
}

// Dropped returns how many lines were lost to disconnection.
func (s *SocketSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
